file(REMOVE_RECURSE
  "CMakeFiles/lazyxml_join.dir/path_stack.cc.o"
  "CMakeFiles/lazyxml_join.dir/path_stack.cc.o.d"
  "CMakeFiles/lazyxml_join.dir/stack_tree.cc.o"
  "CMakeFiles/lazyxml_join.dir/stack_tree.cc.o.d"
  "liblazyxml_join.a"
  "liblazyxml_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazyxml_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
