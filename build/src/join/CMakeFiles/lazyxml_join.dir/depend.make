# Empty dependencies file for lazyxml_join.
# This may be replaced when dependencies are built.
