
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/join/path_stack.cc" "src/join/CMakeFiles/lazyxml_join.dir/path_stack.cc.o" "gcc" "src/join/CMakeFiles/lazyxml_join.dir/path_stack.cc.o.d"
  "/root/repo/src/join/stack_tree.cc" "src/join/CMakeFiles/lazyxml_join.dir/stack_tree.cc.o" "gcc" "src/join/CMakeFiles/lazyxml_join.dir/stack_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lazyxml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
