file(REMOVE_RECURSE
  "liblazyxml_join.a"
)
