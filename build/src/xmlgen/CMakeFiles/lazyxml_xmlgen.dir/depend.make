# Empty dependencies file for lazyxml_xmlgen.
# This may be replaced when dependencies are built.
