file(REMOVE_RECURSE
  "CMakeFiles/lazyxml_xmlgen.dir/chopper.cc.o"
  "CMakeFiles/lazyxml_xmlgen.dir/chopper.cc.o.d"
  "CMakeFiles/lazyxml_xmlgen.dir/join_workload.cc.o"
  "CMakeFiles/lazyxml_xmlgen.dir/join_workload.cc.o.d"
  "CMakeFiles/lazyxml_xmlgen.dir/synthetic_generator.cc.o"
  "CMakeFiles/lazyxml_xmlgen.dir/synthetic_generator.cc.o.d"
  "CMakeFiles/lazyxml_xmlgen.dir/xmark_generator.cc.o"
  "CMakeFiles/lazyxml_xmlgen.dir/xmark_generator.cc.o.d"
  "liblazyxml_xmlgen.a"
  "liblazyxml_xmlgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazyxml_xmlgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
