
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xmlgen/chopper.cc" "src/xmlgen/CMakeFiles/lazyxml_xmlgen.dir/chopper.cc.o" "gcc" "src/xmlgen/CMakeFiles/lazyxml_xmlgen.dir/chopper.cc.o.d"
  "/root/repo/src/xmlgen/join_workload.cc" "src/xmlgen/CMakeFiles/lazyxml_xmlgen.dir/join_workload.cc.o" "gcc" "src/xmlgen/CMakeFiles/lazyxml_xmlgen.dir/join_workload.cc.o.d"
  "/root/repo/src/xmlgen/synthetic_generator.cc" "src/xmlgen/CMakeFiles/lazyxml_xmlgen.dir/synthetic_generator.cc.o" "gcc" "src/xmlgen/CMakeFiles/lazyxml_xmlgen.dir/synthetic_generator.cc.o.d"
  "/root/repo/src/xmlgen/xmark_generator.cc" "src/xmlgen/CMakeFiles/lazyxml_xmlgen.dir/xmark_generator.cc.o" "gcc" "src/xmlgen/CMakeFiles/lazyxml_xmlgen.dir/xmark_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lazyxml_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/lazyxml_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
