file(REMOVE_RECURSE
  "liblazyxml_xmlgen.a"
)
