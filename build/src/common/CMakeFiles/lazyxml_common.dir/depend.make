# Empty dependencies file for lazyxml_common.
# This may be replaced when dependencies are built.
