file(REMOVE_RECURSE
  "CMakeFiles/lazyxml_common.dir/bignum.cc.o"
  "CMakeFiles/lazyxml_common.dir/bignum.cc.o.d"
  "CMakeFiles/lazyxml_common.dir/logging.cc.o"
  "CMakeFiles/lazyxml_common.dir/logging.cc.o.d"
  "CMakeFiles/lazyxml_common.dir/random.cc.o"
  "CMakeFiles/lazyxml_common.dir/random.cc.o.d"
  "CMakeFiles/lazyxml_common.dir/serial.cc.o"
  "CMakeFiles/lazyxml_common.dir/serial.cc.o.d"
  "CMakeFiles/lazyxml_common.dir/status.cc.o"
  "CMakeFiles/lazyxml_common.dir/status.cc.o.d"
  "CMakeFiles/lazyxml_common.dir/strings.cc.o"
  "CMakeFiles/lazyxml_common.dir/strings.cc.o.d"
  "liblazyxml_common.a"
  "liblazyxml_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazyxml_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
