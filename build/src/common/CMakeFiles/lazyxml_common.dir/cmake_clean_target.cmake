file(REMOVE_RECURSE
  "liblazyxml_common.a"
)
