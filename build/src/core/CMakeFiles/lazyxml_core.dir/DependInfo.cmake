
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/element_index.cc" "src/core/CMakeFiles/lazyxml_core.dir/element_index.cc.o" "gcc" "src/core/CMakeFiles/lazyxml_core.dir/element_index.cc.o.d"
  "/root/repo/src/core/lazy_database.cc" "src/core/CMakeFiles/lazyxml_core.dir/lazy_database.cc.o" "gcc" "src/core/CMakeFiles/lazyxml_core.dir/lazy_database.cc.o.d"
  "/root/repo/src/core/lazy_join.cc" "src/core/CMakeFiles/lazyxml_core.dir/lazy_join.cc.o" "gcc" "src/core/CMakeFiles/lazyxml_core.dir/lazy_join.cc.o.d"
  "/root/repo/src/core/path_query.cc" "src/core/CMakeFiles/lazyxml_core.dir/path_query.cc.o" "gcc" "src/core/CMakeFiles/lazyxml_core.dir/path_query.cc.o.d"
  "/root/repo/src/core/segment.cc" "src/core/CMakeFiles/lazyxml_core.dir/segment.cc.o" "gcc" "src/core/CMakeFiles/lazyxml_core.dir/segment.cc.o.d"
  "/root/repo/src/core/snapshot.cc" "src/core/CMakeFiles/lazyxml_core.dir/snapshot.cc.o" "gcc" "src/core/CMakeFiles/lazyxml_core.dir/snapshot.cc.o.d"
  "/root/repo/src/core/tag_list.cc" "src/core/CMakeFiles/lazyxml_core.dir/tag_list.cc.o" "gcc" "src/core/CMakeFiles/lazyxml_core.dir/tag_list.cc.o.d"
  "/root/repo/src/core/twig_query.cc" "src/core/CMakeFiles/lazyxml_core.dir/twig_query.cc.o" "gcc" "src/core/CMakeFiles/lazyxml_core.dir/twig_query.cc.o.d"
  "/root/repo/src/core/update_log.cc" "src/core/CMakeFiles/lazyxml_core.dir/update_log.cc.o" "gcc" "src/core/CMakeFiles/lazyxml_core.dir/update_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lazyxml_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/lazyxml_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/join/CMakeFiles/lazyxml_join.dir/DependInfo.cmake"
  "/root/repo/build/src/xmlgen/CMakeFiles/lazyxml_xmlgen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
