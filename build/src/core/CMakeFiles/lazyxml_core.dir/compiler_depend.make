# Empty compiler generated dependencies file for lazyxml_core.
# This may be replaced when dependencies are built.
