file(REMOVE_RECURSE
  "CMakeFiles/lazyxml_core.dir/element_index.cc.o"
  "CMakeFiles/lazyxml_core.dir/element_index.cc.o.d"
  "CMakeFiles/lazyxml_core.dir/lazy_database.cc.o"
  "CMakeFiles/lazyxml_core.dir/lazy_database.cc.o.d"
  "CMakeFiles/lazyxml_core.dir/lazy_join.cc.o"
  "CMakeFiles/lazyxml_core.dir/lazy_join.cc.o.d"
  "CMakeFiles/lazyxml_core.dir/path_query.cc.o"
  "CMakeFiles/lazyxml_core.dir/path_query.cc.o.d"
  "CMakeFiles/lazyxml_core.dir/segment.cc.o"
  "CMakeFiles/lazyxml_core.dir/segment.cc.o.d"
  "CMakeFiles/lazyxml_core.dir/snapshot.cc.o"
  "CMakeFiles/lazyxml_core.dir/snapshot.cc.o.d"
  "CMakeFiles/lazyxml_core.dir/tag_list.cc.o"
  "CMakeFiles/lazyxml_core.dir/tag_list.cc.o.d"
  "CMakeFiles/lazyxml_core.dir/twig_query.cc.o"
  "CMakeFiles/lazyxml_core.dir/twig_query.cc.o.d"
  "CMakeFiles/lazyxml_core.dir/update_log.cc.o"
  "CMakeFiles/lazyxml_core.dir/update_log.cc.o.d"
  "liblazyxml_core.a"
  "liblazyxml_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazyxml_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
