file(REMOVE_RECURSE
  "liblazyxml_core.a"
)
