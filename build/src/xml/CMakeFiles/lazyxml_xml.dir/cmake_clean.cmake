file(REMOVE_RECURSE
  "CMakeFiles/lazyxml_xml.dir/parser.cc.o"
  "CMakeFiles/lazyxml_xml.dir/parser.cc.o.d"
  "CMakeFiles/lazyxml_xml.dir/scanner.cc.o"
  "CMakeFiles/lazyxml_xml.dir/scanner.cc.o.d"
  "CMakeFiles/lazyxml_xml.dir/tag_dict.cc.o"
  "CMakeFiles/lazyxml_xml.dir/tag_dict.cc.o.d"
  "liblazyxml_xml.a"
  "liblazyxml_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazyxml_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
