# Empty dependencies file for lazyxml_xml.
# This may be replaced when dependencies are built.
