file(REMOVE_RECURSE
  "liblazyxml_xml.a"
)
