file(REMOVE_RECURSE
  "liblazyxml_labeling.a"
)
