
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/labeling/ordpath.cc" "src/labeling/CMakeFiles/lazyxml_labeling.dir/ordpath.cc.o" "gcc" "src/labeling/CMakeFiles/lazyxml_labeling.dir/ordpath.cc.o.d"
  "/root/repo/src/labeling/prime_labeling.cc" "src/labeling/CMakeFiles/lazyxml_labeling.dir/prime_labeling.cc.o" "gcc" "src/labeling/CMakeFiles/lazyxml_labeling.dir/prime_labeling.cc.o.d"
  "/root/repo/src/labeling/primes.cc" "src/labeling/CMakeFiles/lazyxml_labeling.dir/primes.cc.o" "gcc" "src/labeling/CMakeFiles/lazyxml_labeling.dir/primes.cc.o.d"
  "/root/repo/src/labeling/relabeling_index.cc" "src/labeling/CMakeFiles/lazyxml_labeling.dir/relabeling_index.cc.o" "gcc" "src/labeling/CMakeFiles/lazyxml_labeling.dir/relabeling_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lazyxml_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/lazyxml_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
