file(REMOVE_RECURSE
  "CMakeFiles/lazyxml_labeling.dir/ordpath.cc.o"
  "CMakeFiles/lazyxml_labeling.dir/ordpath.cc.o.d"
  "CMakeFiles/lazyxml_labeling.dir/prime_labeling.cc.o"
  "CMakeFiles/lazyxml_labeling.dir/prime_labeling.cc.o.d"
  "CMakeFiles/lazyxml_labeling.dir/primes.cc.o"
  "CMakeFiles/lazyxml_labeling.dir/primes.cc.o.d"
  "CMakeFiles/lazyxml_labeling.dir/relabeling_index.cc.o"
  "CMakeFiles/lazyxml_labeling.dir/relabeling_index.cc.o.d"
  "liblazyxml_labeling.a"
  "liblazyxml_labeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazyxml_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
