# Empty compiler generated dependencies file for lazyxml_labeling.
# This may be replaced when dependencies are built.
