
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/dblp_feed.cpp" "examples/CMakeFiles/dblp_feed.dir/dblp_feed.cpp.o" "gcc" "examples/CMakeFiles/dblp_feed.dir/dblp_feed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lazyxml_core.dir/DependInfo.cmake"
  "/root/repo/build/src/labeling/CMakeFiles/lazyxml_labeling.dir/DependInfo.cmake"
  "/root/repo/build/src/join/CMakeFiles/lazyxml_join.dir/DependInfo.cmake"
  "/root/repo/build/src/xmlgen/CMakeFiles/lazyxml_xmlgen.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/lazyxml_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lazyxml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
