# Empty dependencies file for dblp_feed.
# This may be replaced when dependencies are built.
