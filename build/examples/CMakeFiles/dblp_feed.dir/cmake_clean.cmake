file(REMOVE_RECURSE
  "CMakeFiles/dblp_feed.dir/dblp_feed.cpp.o"
  "CMakeFiles/dblp_feed.dir/dblp_feed.cpp.o.d"
  "dblp_feed"
  "dblp_feed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblp_feed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
