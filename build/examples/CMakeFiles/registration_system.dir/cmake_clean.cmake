file(REMOVE_RECURSE
  "CMakeFiles/registration_system.dir/registration_system.cpp.o"
  "CMakeFiles/registration_system.dir/registration_system.cpp.o.d"
  "registration_system"
  "registration_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/registration_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
