# Empty compiler generated dependencies file for registration_system.
# This may be replaced when dependencies are built.
