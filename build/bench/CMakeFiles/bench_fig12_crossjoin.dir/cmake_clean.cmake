file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_crossjoin.dir/bench_fig12_crossjoin.cc.o"
  "CMakeFiles/bench_fig12_crossjoin.dir/bench_fig12_crossjoin.cc.o.d"
  "bench_fig12_crossjoin"
  "bench_fig12_crossjoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_crossjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
