file(REMOVE_RECURSE
  "CMakeFiles/bench_labelsize.dir/bench_labelsize.cc.o"
  "CMakeFiles/bench_labelsize.dir/bench_labelsize.cc.o.d"
  "bench_labelsize"
  "bench_labelsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_labelsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
