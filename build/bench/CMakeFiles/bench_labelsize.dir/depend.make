# Empty dependencies file for bench_labelsize.
# This may be replaced when dependencies are built.
