# Empty dependencies file for bench_fig17_element_insert.
# This may be replaced when dependencies are built.
