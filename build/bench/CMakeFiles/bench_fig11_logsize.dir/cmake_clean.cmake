file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_logsize.dir/bench_fig11_logsize.cc.o"
  "CMakeFiles/bench_fig11_logsize.dir/bench_fig11_logsize.cc.o.d"
  "bench_fig11_logsize"
  "bench_fig11_logsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_logsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
