file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_segments.dir/bench_fig13_segments.cc.o"
  "CMakeFiles/bench_fig13_segments.dir/bench_fig13_segments.cc.o.d"
  "bench_fig13_segments"
  "bench_fig13_segments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_segments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
