# Empty compiler generated dependencies file for bench_fig15_xmark.
# This may be replaced when dependencies are built.
