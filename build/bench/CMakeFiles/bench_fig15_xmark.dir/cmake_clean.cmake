file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_xmark.dir/bench_fig15_xmark.cc.o"
  "CMakeFiles/bench_fig15_xmark.dir/bench_fig15_xmark.cc.o.d"
  "bench_fig15_xmark"
  "bench_fig15_xmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_xmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
