# Empty dependencies file for lazyxml_tests.
# This may be replaced when dependencies are built.
