
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/btree/btree_bulkload_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/btree/btree_bulkload_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/btree/btree_bulkload_test.cc.o.d"
  "/root/repo/tests/btree/btree_property_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/btree/btree_property_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/btree/btree_property_test.cc.o.d"
  "/root/repo/tests/btree/btree_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/btree/btree_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/btree/btree_test.cc.o.d"
  "/root/repo/tests/common/bignum_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/common/bignum_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/common/bignum_test.cc.o.d"
  "/root/repo/tests/common/random_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/common/random_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/common/random_test.cc.o.d"
  "/root/repo/tests/common/result_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/common/result_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/common/result_test.cc.o.d"
  "/root/repo/tests/common/serial_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/common/serial_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/common/serial_test.cc.o.d"
  "/root/repo/tests/common/status_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/common/status_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/common/status_test.cc.o.d"
  "/root/repo/tests/common/strings_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/common/strings_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/common/strings_test.cc.o.d"
  "/root/repo/tests/core/compaction_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/core/compaction_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/core/compaction_test.cc.o.d"
  "/root/repo/tests/core/concurrent_database_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/core/concurrent_database_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/core/concurrent_database_test.cc.o.d"
  "/root/repo/tests/core/element_index_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/core/element_index_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/core/element_index_test.cc.o.d"
  "/root/repo/tests/core/lazy_database_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/core/lazy_database_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/core/lazy_database_test.cc.o.d"
  "/root/repo/tests/core/lazy_join_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/core/lazy_join_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/core/lazy_join_test.cc.o.d"
  "/root/repo/tests/core/path_query_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/core/path_query_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/core/path_query_test.cc.o.d"
  "/root/repo/tests/core/segment_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/core/segment_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/core/segment_test.cc.o.d"
  "/root/repo/tests/core/snapshot_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/core/snapshot_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/core/snapshot_test.cc.o.d"
  "/root/repo/tests/core/tag_list_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/core/tag_list_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/core/tag_list_test.cc.o.d"
  "/root/repo/tests/core/twig_query_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/core/twig_query_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/core/twig_query_test.cc.o.d"
  "/root/repo/tests/core/update_log_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/core/update_log_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/core/update_log_test.cc.o.d"
  "/root/repo/tests/integration/end_to_end_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/integration/end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/integration/end_to_end_test.cc.o.d"
  "/root/repo/tests/integration/paper_scenarios_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/integration/paper_scenarios_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/integration/paper_scenarios_test.cc.o.d"
  "/root/repo/tests/integration/random_ops_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/integration/random_ops_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/integration/random_ops_test.cc.o.d"
  "/root/repo/tests/join/path_stack_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/join/path_stack_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/join/path_stack_test.cc.o.d"
  "/root/repo/tests/join/stack_tree_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/join/stack_tree_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/join/stack_tree_test.cc.o.d"
  "/root/repo/tests/labeling/ordpath_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/labeling/ordpath_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/labeling/ordpath_test.cc.o.d"
  "/root/repo/tests/labeling/prime_labeling_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/labeling/prime_labeling_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/labeling/prime_labeling_test.cc.o.d"
  "/root/repo/tests/labeling/primes_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/labeling/primes_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/labeling/primes_test.cc.o.d"
  "/root/repo/tests/labeling/relabeling_index_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/labeling/relabeling_index_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/labeling/relabeling_index_test.cc.o.d"
  "/root/repo/tests/xml/parser_fuzz_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/xml/parser_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/xml/parser_fuzz_test.cc.o.d"
  "/root/repo/tests/xml/parser_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/xml/parser_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/xml/parser_test.cc.o.d"
  "/root/repo/tests/xml/scanner_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/xml/scanner_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/xml/scanner_test.cc.o.d"
  "/root/repo/tests/xml/tag_dict_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/xml/tag_dict_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/xml/tag_dict_test.cc.o.d"
  "/root/repo/tests/xmlgen/chopper_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/xmlgen/chopper_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/xmlgen/chopper_test.cc.o.d"
  "/root/repo/tests/xmlgen/join_workload_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/xmlgen/join_workload_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/xmlgen/join_workload_test.cc.o.d"
  "/root/repo/tests/xmlgen/synthetic_generator_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/xmlgen/synthetic_generator_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/xmlgen/synthetic_generator_test.cc.o.d"
  "/root/repo/tests/xmlgen/xmark_generator_test.cc" "tests/CMakeFiles/lazyxml_tests.dir/xmlgen/xmark_generator_test.cc.o" "gcc" "tests/CMakeFiles/lazyxml_tests.dir/xmlgen/xmark_generator_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lazyxml_core.dir/DependInfo.cmake"
  "/root/repo/build/src/labeling/CMakeFiles/lazyxml_labeling.dir/DependInfo.cmake"
  "/root/repo/build/src/join/CMakeFiles/lazyxml_join.dir/DependInfo.cmake"
  "/root/repo/build/src/xmlgen/CMakeFiles/lazyxml_xmlgen.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/lazyxml_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lazyxml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
