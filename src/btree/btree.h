// An in-memory B+-tree.
//
// Backs both the element index (composite (tid,sid,start,end,level) keys,
// paper §3.4) and the SB-tree over segment ids (paper §3.2). Values live in
// the leaves; leaves are doubly chained for range scans. Keys are unique.
//
// The tree is a class template so the two indexes share one audited
// implementation; node capacities are runtime options so benches can sweep
// fan-out.

#ifndef LAZYXML_BTREE_BTREE_H_
#define LAZYXML_BTREE_BTREE_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace lazyxml {

/// Runtime knobs for a BTree instance.
struct BTreeOptions {
  /// Maximum records per leaf node (>= 2).
  size_t leaf_capacity = 64;
  /// Maximum children per internal node (>= 3).
  size_t internal_capacity = 64;
};

/// Shape of one node, surfaced to external auditors (src/check/) without
/// exposing the private node type. `keys`/`children`/`values` are counts.
struct BTreeNodeInfo {
  bool is_leaf = false;
  bool is_root = false;
  size_t depth = 0;  ///< 0 for the root.
  size_t keys = 0;
  size_t children = 0;  ///< 0 for leaves.
  size_t values = 0;    ///< 0 for internal nodes.
  bool underflow = false;
  bool overflow = false;
};

/// A unique-key in-memory B+-tree with ordered iteration.
///
/// \tparam Key     totally ordered by \p Compare
/// \tparam Value   any movable type
/// \tparam Compare strict weak order over Key (default std::less)
template <typename Key, typename Value, typename Compare = std::less<Key>>
class BTree {
  struct Node;

 public:
  /// Constructs an empty tree.
  explicit BTree(BTreeOptions options = {}, Compare cmp = Compare())
      : options_(options), cmp_(cmp) {
    LAZYXML_CHECK(options_.leaf_capacity >= 2);
    LAZYXML_CHECK(options_.internal_capacity >= 3);
    root_ = std::make_unique<Node>(/*is_leaf=*/true);
    first_leaf_ = root_.get();
    last_leaf_ = root_.get();
  }

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;
  BTree(BTree&&) = default;
  BTree& operator=(BTree&&) = default;

  /// Forward iterator over (key, value) records in key order. Invalidated
  /// by any mutation of the tree.
  class Iterator {
   public:
    Iterator() = default;

    /// True while the iterator points at a record.
    bool Valid() const { return leaf_ != nullptr && index_ < leaf_->keys.size(); }

    /// Key at the cursor; requires Valid().
    const Key& key() const { return leaf_->keys[index_]; }

    /// Value at the cursor; requires Valid().
    Value& value() const { return leaf_->values[index_]; }

    /// Advances to the next record (possibly becoming invalid).
    void Next() {
      LAZYXML_DCHECK(Valid());
      ++index_;
      if (index_ >= leaf_->keys.size()) {
        leaf_ = leaf_->next;
        index_ = 0;
      }
    }

    bool operator==(const Iterator& o) const {
      if (!Valid() && !o.Valid()) return true;
      return leaf_ == o.leaf_ && index_ == o.index_;
    }
    bool operator!=(const Iterator& o) const { return !(*this == o); }

   private:
    friend class BTree;
    Iterator(Node* leaf, size_t index) : leaf_(leaf), index_(index) {
      // Normalize an off-the-end position within a leaf.
      while (leaf_ != nullptr && index_ >= leaf_->keys.size()) {
        leaf_ = leaf_->next;
        index_ = 0;
        if (leaf_ == nullptr) break;
        if (!leaf_->keys.empty()) break;
      }
    }

    Node* leaf_ = nullptr;
    size_t index_ = 0;
  };

  /// Inserts a new record; AlreadyExists if the key is present.
  Status Insert(const Key& key, Value value) {
    InsertResult r = InsertRec(root_.get(), key, std::move(value),
                               /*assign=*/false);
    if (r.duplicate) return Status::AlreadyExists("duplicate key");
    FinishInsert(std::move(r));
    ++size_;
    return Status::OK();
  }

  /// Inserts records sorted strictly ascending by key, descending once
  /// per leaf *run* instead of once per key: consecutive records that land
  /// in the same leaf are placed in one visit, and the descent only
  /// restarts from the root when a split propagates all the way up. The
  /// resulting tree holds exactly the records a sequential Insert loop
  /// would (tree *shape* may differ — both shapes satisfy every
  /// invariant). AlreadyExists on a duplicate key; records consumed
  /// before the duplicate stay inserted, matching the sequential loop.
  Status InsertSortedBatch(std::vector<std::pair<Key, Value>> sorted) {
    for (size_t i = 1; i < sorted.size(); ++i) {
      if (!cmp_(sorted[i - 1].first, sorted[i].first)) {
        return Status::InvalidArgument(
            "InsertSortedBatch requires strictly ascending keys");
      }
    }
    size_t i = 0;
    while (i < sorted.size()) {
      // Each call consumes at least one record or reports the duplicate,
      // so the loop terminates.
      InsertResult r = InsertBatchRec(root_.get(), sorted, &i, nullptr);
      if (r.duplicate) return Status::AlreadyExists("duplicate key");
      FinishInsert(std::move(r));
    }
    return Status::OK();
  }

  /// Inserts or overwrites. Returns true iff a new record was created.
  bool InsertOrAssign(const Key& key, Value value) {
    InsertResult r = InsertRec(root_.get(), key, std::move(value),
                               /*assign=*/true);
    if (r.duplicate) return false;
    FinishInsert(std::move(r));
    ++size_;
    return true;
  }

  /// Pointer to the value for `key`, or nullptr. The pointer is valid
  /// until the next mutation.
  Value* Find(const Key& key) {
    Node* n = root_.get();
    while (!n->is_leaf) n = n->children[ChildIndex(n, key)].get();
    const size_t i = LowerBoundIndex(n, key);
    if (i < n->keys.size() && !cmp_(key, n->keys[i])) return &n->values[i];
    return nullptr;
  }
  const Value* Find(const Key& key) const {
    return const_cast<BTree*>(this)->Find(key);
  }

  /// True iff `key` is present.
  bool Contains(const Key& key) const { return Find(key) != nullptr; }

  /// Removes a record; NotFound if absent.
  Status Erase(const Key& key) {
    bool erased = false;
    EraseRec(root_.get(), key, &erased);
    if (!erased) return Status::NotFound("key not in tree");
    --size_;
    // Collapse a root with a single child.
    while (!root_->is_leaf && root_->keys.empty()) {
      std::unique_ptr<Node> child = std::move(root_->children[0]);
      root_ = std::move(child);
    }
    return Status::OK();
  }

  /// Iterator at the first record.
  Iterator Begin() const { return Iterator(first_leaf_, 0); }

  /// Invalid iterator (end of scan).
  Iterator End() const { return Iterator(nullptr, 0); }

  /// First record with key >= `key` (or End()).
  Iterator LowerBound(const Key& key) const {
    Node* n = root_.get();
    while (!n->is_leaf) n = n->children[ChildIndex(n, key)].get();
    return Iterator(n, LowerBoundIndex(n, key));
  }

  /// First record with key > `key` (or End()).
  Iterator UpperBound(const Key& key) const {
    Iterator it = LowerBound(key);
    if (it.Valid() && !cmp_(key, it.key()) && !cmp_(it.key(), key)) it.Next();
    return it;
  }

  /// Visits every record in [lo, hi) in order; `fn` returning false stops
  /// the scan early.
  void ScanRange(const Key& lo, const Key& hi,
                 const std::function<bool(const Key&, Value&)>& fn) const {
    for (Iterator it = LowerBound(lo); it.Valid(); it.Next()) {
      if (!cmp_(it.key(), hi)) break;
      if (!fn(it.key(), it.value())) break;
    }
  }

  /// Number of records.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Height of the tree (1 for a lone leaf).
  size_t height() const {
    size_t h = 1;
    const Node* n = root_.get();
    while (!n->is_leaf) {
      n = n->children[0].get();
      ++h;
    }
    return h;
  }

  /// Removes everything.
  void Clear() {
    root_ = std::make_unique<Node>(/*is_leaf=*/true);
    first_leaf_ = root_.get();
    last_leaf_ = root_.get();
    size_ = 0;
  }

  /// Bulk-loads the tree from records sorted strictly ascending by key,
  /// replacing any current content. O(n): leaves are packed left to
  /// right and internal levels built bottom-up — much faster than n
  /// individual inserts (used by LS-mode freezes and index rebuilds).
  Status BuildFrom(std::vector<std::pair<Key, Value>> sorted) {
    for (size_t i = 1; i < sorted.size(); ++i) {
      if (!cmp_(sorted[i - 1].first, sorted[i].first)) {
        return Status::InvalidArgument(
            "BuildFrom requires strictly ascending keys");
      }
    }
    Clear();
    if (sorted.empty()) return Status::OK();
    // Pack leaves; if the tail would underflow, rebalance the last two.
    std::vector<std::unique_ptr<Node>> level;
    std::vector<Key> level_first;  // smallest key under each node
    const size_t cap = options_.leaf_capacity;
    for (size_t i = 0; i < sorted.size();) {
      size_t take = std::min(cap, sorted.size() - i);
      const size_t left_after = sorted.size() - i - take;
      if (left_after > 0 && left_after < MinLeafKeys()) {
        take = sorted.size() - i - MinLeafKeys();  // leave a legal tail
      }
      auto leaf = std::make_unique<Node>(/*is_leaf=*/true);
      leaf->keys.reserve(take);
      leaf->values.reserve(take);
      for (size_t k = 0; k < take; ++k, ++i) {
        leaf->keys.push_back(std::move(sorted[i].first));
        leaf->values.push_back(std::move(sorted[i].second));
      }
      if (!level.empty()) {
        level.back()->next = leaf.get();
        leaf->prev = level.back().get();
      }
      level_first.push_back(leaf->keys.front());
      level.push_back(std::move(leaf));
    }
    first_leaf_ = level.front().get();
    last_leaf_ = level.back().get();
    size_ = sorted.size();
    // Build internal levels until one node remains.
    while (level.size() > 1) {
      std::vector<std::unique_ptr<Node>> parents;
      std::vector<Key> parents_first;
      const size_t icap = options_.internal_capacity;
      for (size_t i = 0; i < level.size();) {
        size_t take = std::min(icap, level.size() - i);
        const size_t left_after = level.size() - i - take;
        if (left_after > 0 && left_after < MinInternalChildren()) {
          take = level.size() - i - MinInternalChildren();
        }
        auto parent = std::make_unique<Node>(/*is_leaf=*/false);
        parents_first.push_back(level_first[i]);
        for (size_t k = 0; k < take; ++k, ++i) {
          if (k > 0) parent->keys.push_back(level_first[i]);
          parent->children.push_back(std::move(level[i]));
        }
        parents.push_back(std::move(parent));
      }
      level = std::move(parents);
      level_first = std::move(parents_first);
    }
    root_ = std::move(level.front());
    return Status::OK();
  }

  /// Approximate heap footprint in bytes (for the Fig. 11 space study).
  size_t MemoryBytes() const { return MemoryBytesRec(root_.get()); }

  /// The comparator in use (for external auditors re-checking key order).
  const Compare& key_comp() const { return cmp_; }

  /// The options this tree was built with.
  const BTreeOptions& options() const { return options_; }

  /// Preorder walk over the node shapes, without exposing node internals.
  /// `fn` returning false stops the walk early. Used by the consistency
  /// scrubber to grade occupancy/fanout violations per node instead of
  /// failing on the first one.
  void VisitNodes(const std::function<bool(const BTreeNodeInfo&)>& fn) const {
    VisitNodesRec(root_.get(), /*depth=*/0, fn);
  }

  /// Verifies every structural invariant; used by tests after random
  /// operation sequences. Returns Internal on the first violation.
  Status CheckInvariants() const {
    size_t counted = 0;
    const Key* prev = nullptr;
    LAZYXML_RETURN_NOT_OK(
        CheckRec(root_.get(), /*is_root=*/true, nullptr, nullptr, &counted,
                 &prev));
    LAZYXML_CHECK_OR_INTERNAL(counted == size_, "size mismatch");
    // Leaf chain must cover exactly the records, in order.
    size_t chained = 0;
    const Key* last = nullptr;
    for (const Node* leaf = first_leaf_; leaf != nullptr; leaf = leaf->next) {
      LAZYXML_CHECK_OR_INTERNAL(leaf->is_leaf, "non-leaf in chain");
      for (const Key& k : leaf->keys) {
        if (last != nullptr) {
          LAZYXML_CHECK_OR_INTERNAL(cmp_(*last, k), "chain out of order");
        }
        last = &k;
        ++chained;
      }
    }
    LAZYXML_CHECK_OR_INTERNAL(chained == size_, "leaf chain size mismatch");
    return Status::OK();
  }

 private:
  struct Node {
    explicit Node(bool leaf) : is_leaf(leaf) {}
    bool is_leaf;
    std::vector<Key> keys;
    std::vector<std::unique_ptr<Node>> children;  // internal: keys.size()+1
    std::vector<Value> values;                    // leaf: keys.size()
    Node* next = nullptr;                         // leaf chain
    Node* prev = nullptr;
  };

  struct InsertResult {
    bool duplicate = false;
    // When a split propagates: the separator and the new right sibling.
    bool split = false;
    Key separator{};
    std::unique_ptr<Node> right;
  };

  size_t LowerBoundIndex(const Node* n, const Key& key) const {
    return static_cast<size_t>(
        std::lower_bound(n->keys.begin(), n->keys.end(), key, cmp_) -
        n->keys.begin());
  }

  // Child to descend into: first separator > key goes left of it; equal
  // separators route right (separator is the smallest key of the right
  // subtree).
  size_t ChildIndex(const Node* n, const Key& key) const {
    return static_cast<size_t>(
        std::upper_bound(n->keys.begin(), n->keys.end(), key, cmp_) -
        n->keys.begin());
  }

  void FinishInsert(InsertResult r) {
    if (!r.split) return;
    auto new_root = std::make_unique<Node>(/*is_leaf=*/false);
    new_root->keys.push_back(std::move(r.separator));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(r.right));
    root_ = std::move(new_root);
  }

  InsertResult InsertRec(Node* n, const Key& key, Value value, bool assign) {
    InsertResult out;
    if (n->is_leaf) {
      const size_t i = LowerBoundIndex(n, key);
      if (i < n->keys.size() && !cmp_(key, n->keys[i])) {
        if (assign) n->values[i] = std::move(value);
        out.duplicate = true;
        return out;
      }
      n->keys.insert(n->keys.begin() + i, key);
      n->values.insert(n->values.begin() + i, std::move(value));
      if (n->keys.size() > options_.leaf_capacity) SplitLeaf(n, &out);
      return out;
    }
    const size_t ci = ChildIndex(n, key);
    InsertResult child = InsertRec(n->children[ci].get(), key,
                                   std::move(value), assign);
    if (child.duplicate) {
      out.duplicate = true;
      return out;
    }
    if (child.split) {
      n->keys.insert(n->keys.begin() + ci, std::move(child.separator));
      n->children.insert(n->children.begin() + ci + 1, std::move(child.right));
      if (n->children.size() > options_.internal_capacity) {
        SplitInternal(n, &out);
      }
    }
    return out;
  }

  // Consumes the run of sorted[*i..] that belongs under `n` — keys below
  // *hi (the subtree's exclusive upper bound; nullptr = unbounded).
  // Returns when the run is exhausted, the next key falls outside the
  // subtree, or a split propagates to the caller (the top-level loop then
  // re-descends for the remainder). Consumes >= 1 record per call.
  InsertResult InsertBatchRec(Node* n,
                              std::vector<std::pair<Key, Value>>& sorted,
                              size_t* i, const Key* hi) {
    InsertResult out;
    if (n->is_leaf) {
      // One leaf-run descent: every instantiation shares the registry
      // instrument, so the counter reads as "runs across all trees".
      LAZYXML_METRIC_COUNTER(leaf_runs_counter, "btree.batch_leaf_runs");
      leaf_runs_counter.Increment();
      while (*i < sorted.size() &&
             (hi == nullptr || cmp_(sorted[*i].first, *hi))) {
        const Key& key = sorted[*i].first;
        const size_t pos = LowerBoundIndex(n, key);
        if (pos < n->keys.size() && !cmp_(key, n->keys[pos])) {
          out.duplicate = true;
          return out;
        }
        n->keys.insert(n->keys.begin() + pos, key);
        n->values.insert(n->values.begin() + pos,
                         std::move(sorted[*i].second));
        ++*i;
        ++size_;
        if (n->keys.size() > options_.leaf_capacity) {
          SplitLeaf(n, &out);
          return out;
        }
      }
      return out;
    }
    while (*i < sorted.size() &&
           (hi == nullptr || cmp_(sorted[*i].first, *hi))) {
      const size_t ci = ChildIndex(n, sorted[*i].first);
      const Key* child_hi = ci < n->keys.size() ? &n->keys[ci] : hi;
      InsertResult child =
          InsertBatchRec(n->children[ci].get(), sorted, i, child_hi);
      if (child.duplicate) return child;
      if (child.split) {
        n->keys.insert(n->keys.begin() + ci, std::move(child.separator));
        n->children.insert(n->children.begin() + ci + 1,
                           std::move(child.right));
        if (n->children.size() > options_.internal_capacity) {
          SplitInternal(n, &out);
          return out;
        }
      }
    }
    return out;
  }

  void SplitLeaf(Node* n, InsertResult* out) {
    LAZYXML_METRIC_COUNTER(leaf_splits_counter, "btree.leaf_splits");
    leaf_splits_counter.Increment();
    const size_t mid = n->keys.size() / 2;
    auto right = std::make_unique<Node>(/*is_leaf=*/true);
    right->keys.assign(std::make_move_iterator(n->keys.begin() + mid),
                       std::make_move_iterator(n->keys.end()));
    right->values.assign(std::make_move_iterator(n->values.begin() + mid),
                         std::make_move_iterator(n->values.end()));
    n->keys.resize(mid);
    n->values.resize(mid);
    // Splice into leaf chain.
    right->next = n->next;
    right->prev = n;
    if (n->next != nullptr) n->next->prev = right.get();
    n->next = right.get();
    if (last_leaf_ == n) last_leaf_ = right.get();
    out->split = true;
    out->separator = right->keys.front();
    out->right = std::move(right);
  }

  void SplitInternal(Node* n, InsertResult* out) {
    LAZYXML_METRIC_COUNTER(internal_splits_counter, "btree.internal_splits");
    internal_splits_counter.Increment();
    // Move the upper half of children to a new right node; the median key
    // moves up as the separator.
    const size_t mid_key = n->keys.size() / 2;
    auto right = std::make_unique<Node>(/*is_leaf=*/false);
    out->separator = std::move(n->keys[mid_key]);
    right->keys.assign(std::make_move_iterator(n->keys.begin() + mid_key + 1),
                       std::make_move_iterator(n->keys.end()));
    right->children.assign(
        std::make_move_iterator(n->children.begin() + mid_key + 1),
        std::make_move_iterator(n->children.end()));
    n->keys.resize(mid_key);
    n->children.resize(mid_key + 1);
    out->split = true;
    out->right = std::move(right);
  }

  size_t MinLeafKeys() const { return options_.leaf_capacity / 2; }
  size_t MinInternalChildren() const {
    return (options_.internal_capacity + 1) / 2;
  }

  // Erases `key` under `n`; on return the caller rebalances `n`'s children
  // if one underflowed.
  void EraseRec(Node* n, const Key& key, bool* erased) {
    if (n->is_leaf) {
      const size_t i = LowerBoundIndex(n, key);
      if (i < n->keys.size() && !cmp_(key, n->keys[i])) {
        n->keys.erase(n->keys.begin() + i);
        n->values.erase(n->values.begin() + i);
        *erased = true;
      }
      return;
    }
    const size_t ci = ChildIndex(n, key);
    Node* child = n->children[ci].get();
    EraseRec(child, key, erased);
    if (!*erased) return;
    const bool underflow =
        child->is_leaf ? child->keys.size() < MinLeafKeys()
                       : child->children.size() < MinInternalChildren();
    if (underflow) Rebalance(n, ci);
  }

  // Fixes an underflowing child `ci` of internal node `n` by borrowing from
  // a sibling or merging with one.
  void Rebalance(Node* n, size_t ci) {
    Node* child = n->children[ci].get();
    Node* left = ci > 0 ? n->children[ci - 1].get() : nullptr;
    Node* right = ci + 1 < n->children.size() ? n->children[ci + 1].get()
                                              : nullptr;
    if (child->is_leaf) {
      if (left != nullptr && left->keys.size() > MinLeafKeys()) {
        // Borrow rightmost record of left sibling.
        child->keys.insert(child->keys.begin(), std::move(left->keys.back()));
        child->values.insert(child->values.begin(),
                             std::move(left->values.back()));
        left->keys.pop_back();
        left->values.pop_back();
        n->keys[ci - 1] = child->keys.front();
        return;
      }
      if (right != nullptr && right->keys.size() > MinLeafKeys()) {
        // Borrow leftmost record of right sibling.
        child->keys.push_back(std::move(right->keys.front()));
        child->values.push_back(std::move(right->values.front()));
        right->keys.erase(right->keys.begin());
        right->values.erase(right->values.begin());
        n->keys[ci] = right->keys.front();
        return;
      }
      // Merge with a sibling (prefer left so indices shift predictably).
      if (left != nullptr) {
        MergeLeaves(n, ci - 1);
      } else if (right != nullptr) {
        MergeLeaves(n, ci);
      }
      return;
    }
    // Internal child.
    if (left != nullptr && left->children.size() > MinInternalChildren()) {
      // Rotate through the parent separator.
      child->keys.insert(child->keys.begin(), std::move(n->keys[ci - 1]));
      n->keys[ci - 1] = std::move(left->keys.back());
      left->keys.pop_back();
      child->children.insert(child->children.begin(),
                             std::move(left->children.back()));
      left->children.pop_back();
      return;
    }
    if (right != nullptr && right->children.size() > MinInternalChildren()) {
      child->keys.push_back(std::move(n->keys[ci]));
      n->keys[ci] = std::move(right->keys.front());
      right->keys.erase(right->keys.begin());
      child->children.push_back(std::move(right->children.front()));
      right->children.erase(right->children.begin());
      return;
    }
    if (left != nullptr) {
      MergeInternal(n, ci - 1);
    } else if (right != nullptr) {
      MergeInternal(n, ci);
    }
  }

  // Merges leaf children li and li+1 of `n` into li.
  void MergeLeaves(Node* n, size_t li) {
    Node* l = n->children[li].get();
    Node* r = n->children[li + 1].get();
    l->keys.insert(l->keys.end(), std::make_move_iterator(r->keys.begin()),
                   std::make_move_iterator(r->keys.end()));
    l->values.insert(l->values.end(),
                     std::make_move_iterator(r->values.begin()),
                     std::make_move_iterator(r->values.end()));
    l->next = r->next;
    if (r->next != nullptr) r->next->prev = l;
    if (last_leaf_ == r) last_leaf_ = l;
    n->keys.erase(n->keys.begin() + li);
    n->children.erase(n->children.begin() + li + 1);
  }

  // Merges internal children li and li+1 of `n` into li, pulling down the
  // separator between them.
  void MergeInternal(Node* n, size_t li) {
    Node* l = n->children[li].get();
    Node* r = n->children[li + 1].get();
    l->keys.push_back(std::move(n->keys[li]));
    l->keys.insert(l->keys.end(), std::make_move_iterator(r->keys.begin()),
                   std::make_move_iterator(r->keys.end()));
    l->children.insert(l->children.end(),
                       std::make_move_iterator(r->children.begin()),
                       std::make_move_iterator(r->children.end()));
    n->keys.erase(n->keys.begin() + li);
    n->children.erase(n->children.begin() + li + 1);
  }

  bool VisitNodesRec(const Node* n, size_t depth,
                     const std::function<bool(const BTreeNodeInfo&)>& fn)
      const {
    BTreeNodeInfo info;
    info.is_leaf = n->is_leaf;
    info.is_root = (n == root_.get());
    info.depth = depth;
    info.keys = n->keys.size();
    info.children = n->children.size();
    info.values = n->values.size();
    if (n->is_leaf) {
      info.underflow = !info.is_root && n->keys.size() < MinLeafKeys();
      info.overflow = n->keys.size() > options_.leaf_capacity;
    } else {
      info.underflow =
          !info.is_root && n->children.size() < MinInternalChildren();
      info.overflow = n->children.size() > options_.internal_capacity;
    }
    if (!fn(info)) return false;
    for (const auto& c : n->children) {
      if (!VisitNodesRec(c.get(), depth + 1, fn)) return false;
    }
    return true;
  }

  size_t MemoryBytesRec(const Node* n) const {
    size_t bytes = sizeof(Node) + n->keys.capacity() * sizeof(Key) +
                   n->values.capacity() * sizeof(Value) +
                   n->children.capacity() * sizeof(std::unique_ptr<Node>);
    for (const auto& c : n->children) bytes += MemoryBytesRec(c.get());
    return bytes;
  }

  Status CheckRec(const Node* n, bool is_root, const Key* lo, const Key* hi,
                  size_t* counted, const Key** prev) const {
    // Keys strictly ascending within the node and within (lo, hi].
    for (size_t i = 0; i < n->keys.size(); ++i) {
      if (i > 0) {
        LAZYXML_CHECK_OR_INTERNAL(cmp_(n->keys[i - 1], n->keys[i]),
                                  "node keys out of order");
      }
      if (lo != nullptr) {
        LAZYXML_CHECK_OR_INTERNAL(!cmp_(n->keys[i], *lo),
                                  "key below subtree lower bound");
      }
      if (hi != nullptr) {
        LAZYXML_CHECK_OR_INTERNAL(cmp_(n->keys[i], *hi),
                                  "key above subtree upper bound");
      }
    }
    if (n->is_leaf) {
      LAZYXML_CHECK_OR_INTERNAL(n->values.size() == n->keys.size(),
                                "leaf arity mismatch");
      if (!is_root) {
        LAZYXML_CHECK_OR_INTERNAL(n->keys.size() >= MinLeafKeys(),
                                  "leaf underflow");
      }
      LAZYXML_CHECK_OR_INTERNAL(n->keys.size() <= options_.leaf_capacity,
                                "leaf overflow");
      for (const Key& k : n->keys) {
        if (*prev != nullptr) {
          LAZYXML_CHECK_OR_INTERNAL(cmp_(**prev, k), "global order violated");
        }
        *prev = &k;
        ++*counted;
      }
      return Status::OK();
    }
    LAZYXML_CHECK_OR_INTERNAL(n->children.size() == n->keys.size() + 1,
                              "internal arity mismatch");
    if (!is_root) {
      LAZYXML_CHECK_OR_INTERNAL(n->children.size() >= MinInternalChildren(),
                                "internal underflow");
    }
    LAZYXML_CHECK_OR_INTERNAL(n->children.size() <= options_.internal_capacity,
                              "internal overflow");
    for (size_t i = 0; i < n->children.size(); ++i) {
      const Key* clo = i == 0 ? lo : &n->keys[i - 1];
      const Key* chi = i == n->keys.size() ? hi : &n->keys[i];
      LAZYXML_RETURN_NOT_OK(
          CheckRec(n->children[i].get(), false, clo, chi, counted, prev));
    }
    return Status::OK();
  }

  BTreeOptions options_;
  Compare cmp_;
  std::unique_ptr<Node> root_;
  Node* first_leaf_ = nullptr;
  Node* last_leaf_ = nullptr;
  size_t size_ = 0;
};

}  // namespace lazyxml

#endif  // LAZYXML_BTREE_BTREE_H_
