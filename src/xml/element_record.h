// ElementRecord: the positional label of one element.
//
// Positions are byte offsets in the text the element was parsed from. In
// the lazy scheme those offsets are *local* to the segment and frozen at
// insertion time (paper §3.4: key = (tid, sid, start, end, LevelNum)); in
// the baselines they are global and mutable.

#ifndef LAZYXML_XML_ELEMENT_RECORD_H_
#define LAZYXML_XML_ELEMENT_RECORD_H_

#include <cstdint>
#include <tuple>

#include "xml/tag_dict.h"

namespace lazyxml {

/// One element's positional label.
///
/// `start` is the offset of the '<' of the start tag; `end` is the offset
/// one past the '>' of the end tag (or of the self-closing tag). An element
/// a contains b iff a.start < b.start && a.end > b.end — simple integer
/// comparisons, the property interval labeling exists for.
struct ElementRecord {
  TagId tid = kInvalidTagId;
  uint64_t start = 0;
  uint64_t end = 0;
  uint32_t level = 0;  ///< Depth; the outermost parsed element has level 1.

  /// Containment test (strict ancestor-of).
  bool Contains(const ElementRecord& other) const {
    return start < other.start && end > other.end;
  }

  /// Document-order comparison (by start offset; ancestors sort before
  /// their descendants, which matches preorder).
  bool operator<(const ElementRecord& other) const {
    return std::tie(start, end) < std::tie(other.start, other.end);
  }
  bool operator==(const ElementRecord& other) const {
    return tid == other.tid && start == other.start && end == other.end &&
           level == other.level;
  }
};

}  // namespace lazyxml

#endif  // LAZYXML_XML_ELEMENT_RECORD_H_
