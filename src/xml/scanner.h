// XmlScanner: a pull (StAX-style) tokenizer over XML text.
//
// Non-validating, namespace-oblivious, entity-oblivious — the lazy scheme
// only needs tag names and byte-accurate tag boundaries. Attributes are
// scanned over but not materialized (the paper treats attributes as
// subelements; generators here emit subelements directly).

#ifndef LAZYXML_XML_SCANNER_H_
#define LAZYXML_XML_SCANNER_H_

#include <cstdint>
#include <string_view>

#include "common/result.h"

namespace lazyxml {

/// Token kinds produced by XmlScanner.
enum class XmlTokenKind {
  kStartTag,     ///< <name ...>   (self_closing == false)
  kEmptyTag,     ///< <name ... /> (a start+end in one token)
  kEndTag,       ///< </name>
  kText,         ///< character data between tags
  kComment,      ///< <!-- ... -->
  kProcessing,   ///< <? ... ?>
  kDoctype,      ///< <!DOCTYPE ...> (also any other <!...> construct)
  kCData,        ///< <![CDATA[ ... ]]>
  kEndOfInput,
};

/// One scanned token. `name` is only meaningful for tag tokens; `begin` /
/// `end` are byte offsets of the whole token in the input.
struct XmlToken {
  XmlTokenKind kind = XmlTokenKind::kEndOfInput;
  std::string_view name;  ///< tag name for Start/Empty/End tags
  uint64_t begin = 0;     ///< offset of the first byte of the token
  uint64_t end = 0;       ///< offset one past the last byte of the token
};

/// Streaming tokenizer. The input view must outlive the scanner; returned
/// token names alias the input.
class XmlScanner {
 public:
  /// Scans `text` from offset 0. `base_offset` is added to every reported
  /// position, so a segment can be scanned in its local coordinates while
  /// reporting super-document positions (or vice versa).
  explicit XmlScanner(std::string_view text, uint64_t base_offset = 0)
      : text_(text), base_(base_offset) {}

  /// Produces the next token, or ParseError on malformed markup.
  /// kEndOfInput is returned exactly once at the end.
  Result<XmlToken> Next();

  /// Byte offset of the scan cursor (without base offset).
  uint64_t cursor() const { return pos_; }

 private:
  Result<XmlToken> ScanMarkup();
  Result<XmlToken> ScanTag();

  std::string_view text_;
  uint64_t base_;
  uint64_t pos_ = 0;
  bool done_ = false;
};

/// True for characters allowed to start an XML name (ASCII subset).
bool IsNameStartChar(char c);

/// True for characters allowed inside an XML name (ASCII subset).
bool IsNameChar(char c);

}  // namespace lazyxml

#endif  // LAZYXML_XML_SCANNER_H_
