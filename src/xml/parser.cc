#include "xml/parser.h"

#include <algorithm>

#include "common/strings.h"
#include "obs/metrics.h"
#include "xml/scanner.h"

namespace lazyxml {

namespace {

bool IsAllWhitespace(std::string_view s) {
  for (char c : s) {
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return false;
  }
  return true;
}

}  // namespace

Result<ParsedFragment> ParseFragment(std::string_view text, TagDict* dict,
                                     const ParseOptions& options) {
  LAZYXML_METRIC_COUNTER(fragments_counter, "xml.parse.fragments");
  LAZYXML_METRIC_COUNTER(bytes_counter, "xml.parse.bytes");
  LAZYXML_METRIC_COUNTER(elements_counter, "xml.parse.elements");
  LAZYXML_METRIC_COUNTER(errors_counter, "xml.parse.errors");
  if (dict == nullptr) {
    return Status::InvalidArgument("ParseFragment: null dictionary");
  }
  fragments_counter.Increment();
  bytes_counter.Add(text.size());
  if (options.max_document_bytes != 0 &&
      text.size() > options.max_document_bytes) {
    errors_counter.Increment();
    return Status::InvalidArgument(
        StringPrintf("document of %zu bytes exceeds the %llu-byte limit",
                     text.size(),
                     static_cast<unsigned long long>(
                         options.max_document_bytes)));
  }
  ParsedFragment out;
  // Count every element the parse produced even when a later token makes
  // the fragment fail: errors_counter disambiguates, and partial counts
  // are what make "bytes parsed per error" a useful ratio.
  struct ElementTally {
    obs::Counter& elements;
    obs::Counter& errors;
    const ParsedFragment& frag;
    bool ok = false;
    ~ElementTally() {
      elements.Add(frag.records.size());
      if (!ok) errors.Increment();
    }
  } tally{elements_counter, errors_counter, out};
  XmlScanner scanner(text, options.base_offset);

  // Open-element stack: index into out.records plus the tag name bytes for
  // the end-tag match (names alias `text`, which outlives the parse).
  struct Open {
    size_t record_index;
    std::string_view name;
  };
  std::vector<Open> stack;

  for (;;) {
    LAZYXML_ASSIGN_OR_RETURN(XmlToken tok, scanner.Next());
    if (tok.kind == XmlTokenKind::kEndOfInput) break;
    switch (tok.kind) {
      case XmlTokenKind::kStartTag:
      case XmlTokenKind::kEmptyTag: {
        if (stack.size() >= options.max_depth) {
          return Status::ParseError(
              StringPrintf("maximum depth %u exceeded", options.max_depth));
        }
        if (options.max_name_bytes != 0 &&
            tok.name.size() > options.max_name_bytes) {
          return Status::InvalidArgument(StringPrintf(
              "tag name of %zu bytes exceeds the %llu-byte limit",
              tok.name.size(),
              static_cast<unsigned long long>(options.max_name_bytes)));
        }
        // The token spans "<name ...>" / "<name .../>"; everything past
        // the name besides the brackets is the (skipped) attribute text.
        const uint64_t token_bytes = tok.end - tok.begin;
        const uint64_t fixed_bytes =
            tok.name.size() + (tok.kind == XmlTokenKind::kEmptyTag ? 3 : 2);
        const uint64_t attr_bytes =
            token_bytes > fixed_bytes ? token_bytes - fixed_bytes : 0;
        if (options.max_tag_attr_bytes != 0 &&
            attr_bytes > options.max_tag_attr_bytes) {
          return Status::InvalidArgument(StringPrintf(
              "attribute section of %llu bytes exceeds the %llu-byte limit",
              static_cast<unsigned long long>(attr_bytes),
              static_cast<unsigned long long>(options.max_tag_attr_bytes)));
        }
        ElementRecord rec;
        rec.tid = dict->Intern(tok.name);
        rec.start = tok.begin;
        rec.level =
            options.base_level + static_cast<uint32_t>(stack.size()) + 1;
        out.max_level = std::max(out.max_level, rec.level);
        if (stack.empty()) {
          ++out.root_count;
          if (options.require_single_root && out.root_count > 1) {
            return Status::ParseError("multiple top-level elements");
          }
        }
        out.records.push_back(rec);
        if (tok.kind == XmlTokenKind::kEmptyTag) {
          out.records.back().end = tok.end;
        } else {
          stack.push_back(Open{out.records.size() - 1, tok.name});
        }
        break;
      }
      case XmlTokenKind::kEndTag: {
        if (options.max_name_bytes != 0 &&
            tok.name.size() > options.max_name_bytes) {
          return Status::InvalidArgument(StringPrintf(
              "tag name of %zu bytes exceeds the %llu-byte limit",
              tok.name.size(),
              static_cast<unsigned long long>(options.max_name_bytes)));
        }
        if (stack.empty()) {
          return Status::ParseError(
              StringPrintf("unmatched end tag </%.*s>",
                           static_cast<int>(tok.name.size()),
                           tok.name.data()));
        }
        if (stack.back().name != tok.name) {
          return Status::ParseError(StringPrintf(
              "mismatched end tag: expected </%.*s>, found </%.*s>",
              static_cast<int>(stack.back().name.size()),
              stack.back().name.data(), static_cast<int>(tok.name.size()),
              tok.name.data()));
        }
        out.records[stack.back().record_index].end = tok.end;
        stack.pop_back();
        break;
      }
      case XmlTokenKind::kText: {
        if (stack.empty() && !options.allow_top_level_text) {
          const uint64_t local_begin = tok.begin - options.base_offset;
          const std::string_view content =
              text.substr(static_cast<size_t>(local_begin),
                          static_cast<size_t>(tok.end - tok.begin));
          if (!IsAllWhitespace(content)) {
            return Status::ParseError("character data outside any element");
          }
        }
        break;
      }
      case XmlTokenKind::kComment:
      case XmlTokenKind::kProcessing:
      case XmlTokenKind::kDoctype:
      case XmlTokenKind::kCData:
        break;  // Structure-irrelevant; positions don't index into these.
      case XmlTokenKind::kEndOfInput:
        break;  // unreachable
    }
  }
  if (!stack.empty()) {
    return Status::ParseError(
        StringPrintf("%zu unclosed element(s); first is <%.*s>", stack.size(),
                     static_cast<int>(stack.back().name.size()),
                     stack.back().name.data()));
  }

  // Records were appended in start-tag order == ascending start offset ==
  // document order; no sort needed. Collect the distinct tags.
  out.distinct_tags.reserve(8);
  for (const ElementRecord& r : out.records) out.distinct_tags.push_back(r.tid);
  std::sort(out.distinct_tags.begin(), out.distinct_tags.end());
  out.distinct_tags.erase(
      std::unique(out.distinct_tags.begin(), out.distinct_tags.end()),
      out.distinct_tags.end());
  tally.ok = true;
  return out;
}

bool IsWellFormedDocument(std::string_view text) {
  TagDict dict;
  ParseOptions opts;
  opts.require_single_root = true;
  return ParseFragment(text, &dict, opts).ok();
}

}  // namespace lazyxml
