#include "xml/tag_dict.h"

namespace lazyxml {

TagId TagDict::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  const TagId tid = static_cast<TagId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), tid);
  return tid;
}

Result<TagId> TagDict::Lookup(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) {
    return Status::NotFound("unknown tag: " + std::string(name));
  }
  return it->second;
}

std::string_view TagDict::Name(TagId tid) const {
  if (tid >= names_.size()) return {};
  return names_[tid];
}

size_t TagDict::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& n : names_) bytes += n.capacity() + sizeof(std::string);
  bytes += ids_.size() * (sizeof(std::string) + sizeof(TagId) + 16);
  return bytes;
}

}  // namespace lazyxml
