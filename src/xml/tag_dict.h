// Tag dictionary: interns element names to dense integer tag ids (tid).
// The element index and the tag-list key everything by tid (paper §3.2,
// §3.4); names appear only at the API boundary.

#ifndef LAZYXML_XML_TAG_DICT_H_
#define LAZYXML_XML_TAG_DICT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace lazyxml {

/// Dense integer identifier for an element tag name.
using TagId = uint32_t;

/// Sentinel for "no tag".
inline constexpr TagId kInvalidTagId = 0xffffffffu;

/// Bidirectional tag-name <-> TagId map. Ids are assigned densely from 0 in
/// first-seen order and never recycled.
class TagDict {
 public:
  TagDict() = default;
  TagDict(const TagDict&) = delete;
  TagDict& operator=(const TagDict&) = delete;

  /// Returns the id for `name`, interning it if new.
  TagId Intern(std::string_view name);

  /// Returns the id for `name`; NotFound if it was never interned.
  Result<TagId> Lookup(std::string_view name) const;

  /// The name for an id; empty view for out-of-range ids.
  std::string_view Name(TagId tid) const;

  /// Number of distinct tags (the paper's T).
  size_t size() const { return names_.size(); }

  /// Approximate heap footprint.
  size_t MemoryBytes() const;

 private:
  std::unordered_map<std::string, TagId> ids_;
  std::vector<std::string> names_;
};

}  // namespace lazyxml

#endif  // LAZYXML_XML_TAG_DICT_H_
