#include "xml/scanner.h"

#include "common/strings.h"

namespace lazyxml {

bool IsNameStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

Result<XmlToken> XmlScanner::Next() {
  if (pos_ >= text_.size()) {
    if (done_) {
      return Status::ParseError("scan past end of input");
    }
    done_ = true;
    XmlToken t;
    t.kind = XmlTokenKind::kEndOfInput;
    t.begin = t.end = base_ + pos_;
    return t;
  }
  if (text_[pos_] == '<') return ScanMarkup();
  // Character data up to the next '<' or end of input.
  XmlToken t;
  t.kind = XmlTokenKind::kText;
  t.begin = base_ + pos_;
  while (pos_ < text_.size() && text_[pos_] != '<') ++pos_;
  t.end = base_ + pos_;
  return t;
}

Result<XmlToken> XmlScanner::ScanMarkup() {
  const uint64_t start = pos_;
  // pos_ points at '<'.
  if (pos_ + 1 >= text_.size()) {
    return Status::ParseError(
        StringPrintf("dangling '<' at offset %llu",
                     static_cast<unsigned long long>(base_ + pos_)));
  }
  const char c = text_[pos_ + 1];
  if (c == '?') {
    // Processing instruction: scan to "?>".
    size_t close = text_.find("?>", pos_ + 2);
    if (close == std::string_view::npos) {
      return Status::ParseError("unterminated processing instruction");
    }
    XmlToken t;
    t.kind = XmlTokenKind::kProcessing;
    t.begin = base_ + start;
    pos_ = close + 2;
    t.end = base_ + pos_;
    return t;
  }
  if (c == '!') {
    if (text_.substr(pos_, 4) == "<!--") {
      size_t close = text_.find("-->", pos_ + 4);
      if (close == std::string_view::npos) {
        return Status::ParseError("unterminated comment");
      }
      XmlToken t;
      t.kind = XmlTokenKind::kComment;
      t.begin = base_ + start;
      pos_ = close + 3;
      t.end = base_ + pos_;
      return t;
    }
    if (text_.substr(pos_, 9) == "<![CDATA[") {
      size_t close = text_.find("]]>", pos_ + 9);
      if (close == std::string_view::npos) {
        return Status::ParseError("unterminated CDATA section");
      }
      XmlToken t;
      t.kind = XmlTokenKind::kCData;
      t.begin = base_ + start;
      pos_ = close + 3;
      t.end = base_ + pos_;
      return t;
    }
    // <!DOCTYPE ...> or other declaration: scan to matching '>' honoring
    // nested '[' ... ']' internal subsets.
    size_t p = pos_ + 2;
    int bracket_depth = 0;
    while (p < text_.size()) {
      if (text_[p] == '[') ++bracket_depth;
      if (text_[p] == ']') --bracket_depth;
      if (text_[p] == '>' && bracket_depth <= 0) break;
      ++p;
    }
    if (p >= text_.size()) {
      return Status::ParseError("unterminated <! declaration");
    }
    XmlToken t;
    t.kind = XmlTokenKind::kDoctype;
    t.begin = base_ + start;
    pos_ = p + 1;
    t.end = base_ + pos_;
    return t;
  }
  return ScanTag();
}

Result<XmlToken> XmlScanner::ScanTag() {
  const uint64_t start = pos_;
  size_t p = pos_ + 1;
  const bool is_end_tag = p < text_.size() && text_[p] == '/';
  if (is_end_tag) ++p;
  if (p >= text_.size() || !IsNameStartChar(text_[p])) {
    return Status::ParseError(
        StringPrintf("invalid tag name at offset %llu",
                     static_cast<unsigned long long>(base_ + p)));
  }
  const size_t name_begin = p;
  while (p < text_.size() && IsNameChar(text_[p])) ++p;
  const std::string_view name = text_.substr(name_begin, p - name_begin);
  // Scan attributes/whitespace until '>'; quoted values may contain '>'.
  bool self_closing = false;
  while (p < text_.size()) {
    const char c = text_[p];
    if (c == '"' || c == '\'') {
      size_t close = text_.find(c, p + 1);
      if (close == std::string_view::npos) {
        return Status::ParseError("unterminated attribute value");
      }
      p = close + 1;
      continue;
    }
    if (c == '/' && p + 1 < text_.size() && text_[p + 1] == '>') {
      self_closing = true;
      p += 2;
      break;
    }
    if (c == '>') {
      ++p;
      break;
    }
    if (c == '<') {
      return Status::ParseError(
          StringPrintf("'<' inside tag at offset %llu",
                       static_cast<unsigned long long>(base_ + p)));
    }
    ++p;
  }
  if (p > text_.size() ||
      (text_[p - 1] != '>')) {
    return Status::ParseError("unterminated tag");
  }
  if (is_end_tag && self_closing) {
    return Status::ParseError("'</name/>' is not a valid tag");
  }
  XmlToken t;
  t.kind = is_end_tag ? XmlTokenKind::kEndTag
                      : (self_closing ? XmlTokenKind::kEmptyTag
                                      : XmlTokenKind::kStartTag);
  t.name = name;
  t.begin = base_ + start;
  pos_ = p;
  t.end = base_ + pos_;
  return t;
}

}  // namespace lazyxml
