// Document/fragment parser: turns XML text into positional ElementRecords
// (byte-accurate start/end offsets + depth), checking well-formedness.
//
// This is what runs when a segment is inserted: the segment text is parsed
// once, its records go to the element index with *local* offsets, and its
// distinct tags go to the tag-list (paper §3.3–3.4).

#ifndef LAZYXML_XML_PARSER_H_
#define LAZYXML_XML_PARSER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/element_record.h"
#include "xml/tag_dict.h"

namespace lazyxml {

/// Parser knobs.
struct ParseOptions {
  /// When false, a fragment with more than one top-level element is a
  /// ParseError. Segments in the paper are valid documents (single root),
  /// but the super document body is naturally multi-rooted.
  bool require_single_root = false;

  /// When false, non-whitespace character data outside any element is a
  /// ParseError.
  bool allow_top_level_text = false;

  /// Nesting guard against pathological inputs. The parser itself is
  /// iterative (its stack is a vector), so this can be generous; deeply
  /// nested ER-tree experiments chain tens of thousands of elements.
  uint32_t max_depth = 1 << 20;

  // Resource guards. Untrusted input must not be able to force the
  // parser (or the dictionaries and indexes fed from it) into unbounded
  // allocations; exceeding any guard is InvalidArgument — the input is
  // being *rejected by policy*, distinct from ParseError (malformed XML).
  // 0 disables a guard.

  /// Longest permitted tag name in bytes.
  uint64_t max_name_bytes = 64 * 1024;

  /// Longest permitted attribute section of a single tag in bytes (the
  /// scanner skips attributes, so this caps the skipped span).
  uint64_t max_tag_attr_bytes = 1 << 20;

  /// Largest permitted input in bytes, checked before scanning starts.
  uint64_t max_document_bytes = 0;

  /// Added to every element's level: the depth of the insertion point in
  /// the super document, so segment records carry absolute LevelNum
  /// (paper §3.4).
  uint32_t base_level = 0;

  /// Added to every element's start/end offset.
  uint64_t base_offset = 0;
};

/// Result of parsing one document or fragment.
struct ParsedFragment {
  /// Records in document order (ascending start offset).
  std::vector<ElementRecord> records;
  /// Number of top-level elements.
  uint32_t root_count = 0;
  /// Deepest element level encountered (includes base_level).
  uint32_t max_level = 0;
  /// Distinct tag ids present, ascending.
  std::vector<TagId> distinct_tags;
};

/// Parses `text`, interning tag names into `dict`.
///
/// Checks: tags balanced and properly nested, names valid, markup
/// terminated, depth bounded, root arity per options. Positions reported
/// are `base_offset`-shifted byte offsets into `text`.
Result<ParsedFragment> ParseFragment(std::string_view text, TagDict* dict,
                                     const ParseOptions& options = {});

/// Convenience: true iff `text` parses as a well-formed single-rooted
/// document.
bool IsWellFormedDocument(std::string_view text);

}  // namespace lazyxml

#endif  // LAZYXML_XML_PARSER_H_
