// Client: a small synchronous library speaking the lazyxml wire protocol
// (server/wire.h) and command language (server/command.h). One Client is
// one session on the server; it is not thread-safe — use one Client per
// thread (the server interleaves sessions, not requests of a session).
//
// Fault tolerance (docs/SERVER.md "Error taxonomy"):
//   * every blocking step — connect, write, read — is bounded by a
//     poll(2) wait, so no call can hang past its deadline;
//   * CallWithRetry reconnects and retries with exponential backoff and
//     deterministic jitter. Server-replied `ERR Unavailable` /
//     `ERR DeadlineExceeded` are always retryable (the engine never saw
//     the request); transport-level failures (reset, timeout, mid-frame
//     close) are retried only for idempotent commands — queries, CHECK,
//     METRICS — unless retry_mutations opts mutating verbs in.
//
// Used by the lazyxml_client CLI, bench_server's swarm, and the server
// tests; scriptable clients (CI e2e) speak the same bytes from python.

#ifndef LAZYXML_SERVER_CLIENT_H_
#define LAZYXML_SERVER_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/socket.h"
#include "server/command.h"
#include "server/wire.h"

namespace lazyxml {
namespace server {

/// Exponential backoff between retry attempts: delay(k) =
/// min(initial_ms * multiplier^(k-1), max_ms), scaled by a uniform
/// factor in [1 - jitter, 1] drawn from a seeded PRNG (deterministic
/// per Client, so chaos tests replay byte-identically).
struct BackoffPolicy {
  uint32_t initial_ms = 10;
  double multiplier = 2.0;
  uint32_t max_ms = 500;
  double jitter = 0.5;
};

struct ClientOptions {
  WireLimits wire;
  /// Bound on establishing a connection. <= 0 waits forever.
  int connect_timeout_ms = 5000;
  /// Bound on each individual read/write wait. <= 0 waits forever.
  int io_timeout_ms = 10000;
  /// Bound on one whole request/response round trip. <= 0 = unlimited.
  int call_timeout_ms = 30000;
  /// Total tries per CallWithRetry (1 = no retry).
  int max_attempts = 4;
  BackoffPolicy backoff;
  /// Retry mutating commands on *transport* failure too. Off by default:
  /// a LOAD whose response was lost may have committed, and retrying
  /// would apply it twice.
  bool retry_mutations = false;
  /// Seed for backoff jitter (deterministic tests).
  uint64_t jitter_seed = 0x5eedULL;
};

class Client {
 public:
  static Result<Client> ConnectTcpEndpoint(const std::string& host,
                                           uint16_t port,
                                           ClientOptions options = {});
  static Result<Client> ConnectUnixEndpoint(const std::string& path,
                                            ClientOptions options = {});

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  bool connected() const { return fd_.valid(); }
  const ClientOptions& options() const { return options_; }

  /// Sends one raw command payload and waits for the response frame.
  /// One attempt, no reconnect. The Status is about transport/protocol
  /// failure; a server-side ERR comes back as an ok Result whose
  /// ParsedResponse has ok == false. Every transport Status is typed:
  /// DeadlineExceeded (a timeout fired), Unavailable (peer gone),
  /// IOError (this host's stack broke — not retryable).
  Result<ParsedResponse> Call(std::string_view payload);

  /// Like Call, but folds a server-side ERR into the Status.
  Result<ParsedResponse> CallChecked(std::string_view payload);

  /// Call with automatic reconnect + exponential backoff. `idempotent`
  /// declares the command safe to re-send after a transport failure
  /// whose outcome is unknown. Folds server-side ERR into the Status
  /// (after retrying the retryable ones).
  Result<ParsedResponse> CallWithRetry(std::string_view payload,
                                       bool idempotent);

  /// Drops the current connection (if any) and dials the remembered
  /// endpoint again. Counted in client.reconnects_total.
  Status Reconnect();

  // -- Convenience wrappers ---------------------------------------------------
  // Queries / probes ride CallWithRetry as idempotent; mutations retry
  // only server-typed rejections (plus transport failures when
  // retry_mutations is set).

  /// LOAD: appends a document; returns the sid from "SID n GP n LEN n".
  Result<uint64_t> Load(std::string_view xml);
  Result<uint64_t> Insert(uint64_t gp, std::string_view xml);
  Status Remove(uint64_t gp, uint64_t length);
  Status BatchBegin();
  Status BatchAdd(bool insert, uint64_t gp, uint64_t length,
                  std::string_view xml);
  /// Returns the applied-op count from "APPLIED n ...".
  Result<uint64_t> BatchCommit();
  Status BatchAbort();
  /// Returns the match count; `rows_out` (optional) receives the listed
  /// "sid start" body rows.
  Result<uint64_t> Path(std::string_view expr,
                        std::vector<std::pair<uint64_t, uint64_t>>* rows_out =
                            nullptr);
  Result<uint64_t> Twig(std::string_view expr,
                        std::vector<std::pair<uint64_t, uint64_t>>* rows_out =
                            nullptr);
  /// XPATH: rows are "start end" pairs in global coordinates.
  Result<uint64_t> Xpath(std::string_view expr,
                         std::vector<std::pair<uint64_t, uint64_t>>* rows_out =
                             nullptr);
  Status Freeze();
  Status Compact();
  /// Returns the full CHECK response ("ERRORS n WARNINGS m" + report).
  Result<ParsedResponse> Check();
  /// METRICS TEXT or METRICS JSON; returns the dump body.
  Result<std::string> Metrics(bool json);
  /// QUIT; the server closes the connection after replying. A peer
  /// close that races the BYE is success — the session is down either
  /// way (regression-tested: graceful shutdown must not surface errors).
  Status Quit();

 private:
  struct Endpoint {
    bool tcp = false;
    std::string host;
    uint16_t port = 0;
    std::string path;
  };

  Client(UniqueFd fd, ClientOptions options, Endpoint endpoint);

  Status WriteAll(std::string_view bytes,
                  std::chrono::steady_clock::time_point deadline);
  /// min(io_timeout, time to `deadline`) in ms; -1 = wait forever.
  int WaitBudgetMs(std::chrono::steady_clock::time_point deadline) const;
  void SleepBackoff(int attempt);

  UniqueFd fd_;
  ClientOptions options_;
  Endpoint endpoint_;
  FrameDecoder decoder_;
  Random jitter_rng_;
};

}  // namespace server
}  // namespace lazyxml

#endif  // LAZYXML_SERVER_CLIENT_H_
