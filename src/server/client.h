// Client: a small blocking library speaking the lazyxml wire protocol
// (server/wire.h) and command language (server/command.h). One Client is
// one session on the server; it is not thread-safe — use one Client per
// thread (the server interleaves sessions, not requests of a session).
//
// Used by the lazyxml_client CLI, bench_server's swarm, and the server
// tests; scriptable clients (CI e2e) speak the same bytes from python.

#ifndef LAZYXML_SERVER_CLIENT_H_
#define LAZYXML_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/socket.h"
#include "server/command.h"
#include "server/wire.h"

namespace lazyxml {
namespace server {

class Client {
 public:
  static Result<Client> ConnectTcpEndpoint(const std::string& host,
                                           uint16_t port,
                                           WireLimits limits = {});
  static Result<Client> ConnectUnixEndpoint(const std::string& path,
                                            WireLimits limits = {});

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  bool connected() const { return fd_.valid(); }

  /// Sends one raw command payload and waits for the response frame.
  /// The Status is about transport/protocol failure; a server-side ERR
  /// comes back as an ok Result whose ParsedResponse has ok == false.
  Result<ParsedResponse> Call(std::string_view payload);

  /// Like Call, but folds a server-side ERR into the Status.
  Result<ParsedResponse> CallChecked(std::string_view payload);

  // -- Convenience wrappers (all CallChecked) ---------------------------------

  /// LOAD: appends a document; returns the sid from "SID n GP n LEN n".
  Result<uint64_t> Load(std::string_view xml);
  Result<uint64_t> Insert(uint64_t gp, std::string_view xml);
  Status Remove(uint64_t gp, uint64_t length);
  Status BatchBegin();
  Status BatchAdd(bool insert, uint64_t gp, uint64_t length,
                  std::string_view xml);
  /// Returns the applied-op count from "APPLIED n ...".
  Result<uint64_t> BatchCommit();
  Status BatchAbort();
  /// Returns the match count; `rows_out` (optional) receives the listed
  /// "sid start" body rows.
  Result<uint64_t> Path(std::string_view expr,
                        std::vector<std::pair<uint64_t, uint64_t>>* rows_out =
                            nullptr);
  Result<uint64_t> Twig(std::string_view expr,
                        std::vector<std::pair<uint64_t, uint64_t>>* rows_out =
                            nullptr);
  Status Freeze();
  Status Compact();
  /// Returns the full CHECK response ("ERRORS n WARNINGS m" + report).
  Result<ParsedResponse> Check();
  /// METRICS TEXT or METRICS JSON; returns the dump body.
  Result<std::string> Metrics(bool json);
  /// QUIT; the server closes the connection after replying.
  Status Quit();

 private:
  Client(UniqueFd fd, WireLimits limits)
      : fd_(std::move(fd)), limits_(limits), decoder_(limits) {}

  Status WriteAll(std::string_view bytes);

  UniqueFd fd_;
  WireLimits limits_;
  FrameDecoder decoder_;
};

}  // namespace server
}  // namespace lazyxml

#endif  // LAZYXML_SERVER_CLIENT_H_
