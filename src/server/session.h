// SessionContext: the per-client state the server keeps between
// requests — identity, the pending BATCH buffer, and per-session query
// limits. A session lives exactly as long as its connection: an abrupt
// disconnect destroys the context, so a half-built batch is simply
// dropped without ever touching the database (no sid is burned, no WAL
// record written — tested in tests/server/session_test.cc).
//
// Threading: a session is only ever touched by its connection's single
// in-flight request (the server dispatches one request per session at a
// time) and by the event-loop thread between requests, so it needs no
// internal locking.

#ifndef LAZYXML_SERVER_SESSION_H_
#define LAZYXML_SERVER_SESSION_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/update_batch.h"

namespace lazyxml {
namespace server {

/// Per-session resource and result caps ("query options" a client gets,
/// as opposed to the database-global QueryOptions).
struct SessionLimits {
  /// Ops a BATCH may buffer before COMMIT.
  size_t max_batch_ops = 65536;
  /// Total text bytes a BATCH may buffer.
  size_t max_batch_bytes = 64u << 20;
  /// Element rows listed in a PATH/TWIG response body (the count in the
  /// status line is always exact).
  size_t max_result_elements = 1000;
};

class SessionContext {
 public:
  SessionContext(uint64_t id, SessionLimits limits)
      : id_(id), limits_(limits) {}
  SessionContext(const SessionContext&) = delete;
  SessionContext& operator=(const SessionContext&) = delete;

  uint64_t id() const { return id_; }
  const SessionLimits& limits() const { return limits_; }

  // -- BATCH buffering ---------------------------------------------------------

  bool in_batch() const { return in_batch_; }
  size_t pending_ops() const { return pending_.size(); }
  size_t pending_bytes() const { return pending_bytes_; }

  /// BATCH BEGIN. Fails if a batch is already open.
  Status BeginBatch();

  /// Buffers one op; returns the op's 0-based position in the batch.
  /// Fails when no batch is open or a cap is hit (the batch stays open —
  /// the client may still COMMIT or ABORT what fit).
  Result<size_t> BufferOp(UpdateOp op);

  /// BATCH COMMIT: closes the batch and hands the ops to the caller.
  std::vector<UpdateOp> TakeBatch();

  /// BATCH ABORT: discards the buffer. Returns how many ops died.
  size_t AbortBatch();

  // -- Bookkeeping -------------------------------------------------------------

  uint64_t requests_served = 0;
  /// Requests answered `ERR Unavailable` by admission control before
  /// reaching the engine (overload shedding).
  uint64_t requests_shed = 0;
  /// Requests answered `ERR DeadlineExceeded` because their budget ran
  /// out while they waited in the dispatch queue.
  uint64_t requests_expired = 0;

  /// One-line activity summary for reap/drain diagnostics, e.g.
  /// "served 12, shed 1, expired 0, batch open (3 ops)".
  std::string DescribeActivity() const;

 private:
  const uint64_t id_;
  const SessionLimits limits_;
  bool in_batch_ = false;
  std::vector<UpdateOp> pending_;
  size_t pending_bytes_ = 0;
};

}  // namespace server
}  // namespace lazyxml

#endif  // LAZYXML_SERVER_SESSION_H_
