// The lazyxml server's text command language (docs/SERVER.md).
//
// A request frame's payload is one command: a first line of the form
// "VERB [args...]" plus, for commands that carry a document, a body — the
// bytes after the first '\n'. Responses are text too: a status line
// "OK [detail]" or "ERR <Code> <message>", then an optional body.
//
//   LOAD\n<xml>           insert a document at the end of the super doc
//   INSERT <gp>\n<xml>    insert a segment at global position gp
//   REMOVE <gp> <len>     remove the region [gp, gp+len)
//   BATCH BEGIN           start buffering INSERT/REMOVE into the session
//   BATCH COMMIT          apply the buffered batch atomically (one lock,
//                         one WAL group commit)
//   BATCH ABORT           discard the buffered batch
//   PATH <expr>           path query, e.g. PATH person//profile/interest
//   TWIG <expr>           twig query, e.g. TWIG person[profile]//watch
//   XPATH <expr>          XPath-subset query (wildcards, nested
//                         predicates), e.g. XPATH //person[.//watch]/*
//   FREEZE                LS mode: freeze the update log now
//   COMPACT               collapse every top-level segment (CompactAll)
//   CHECK                 run the consistency scrubber, report findings
//   METRICS [TEXT|JSON]   dump the process-wide metrics registry
//   QUIT                  say goodbye and close the connection

#ifndef LAZYXML_SERVER_COMMAND_H_
#define LAZYXML_SERVER_COMMAND_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace lazyxml {
namespace server {

class ServerEngine;
class SessionContext;

enum class CommandKind : uint8_t {
  kLoad,
  kInsert,
  kRemove,
  kBatchBegin,
  kBatchCommit,
  kBatchAbort,
  kPath,
  kTwig,
  kXPath,
  kFreeze,
  kCompact,
  kCheck,
  kMetrics,
  kQuit,
};

/// Stable lowercase name ("load", "batch_commit", ...) — used as the
/// server.cmd.<name> metric suffix and in traces.
std::string_view CommandKindName(CommandKind kind);

/// Which per-request deadline budget a command draws from
/// (ServerOptions::Deadlines). Queries are cheap and latency-sensitive;
/// updates may group-commit; admin verbs (FREEZE/COMPACT/CHECK) can
/// legitimately run long.
enum class DeadlineClass : uint8_t {
  kQuery = 0,
  kUpdate = 1,
  kAdmin = 2,
};

DeadlineClass DeadlineClassOf(CommandKind kind);

/// "query" / "update" / "admin" — for error messages and docs.
std::string_view DeadlineClassName(DeadlineClass cls);

/// One parsed command.
struct Command {
  CommandKind kind = CommandKind::kQuit;
  uint64_t gp = 0;           ///< INSERT / REMOVE
  uint64_t length = 0;       ///< REMOVE
  std::string expr;          ///< PATH / TWIG / XPATH expression
  std::string body;          ///< LOAD / INSERT document text
  bool metrics_json = false; ///< METRICS JSON
};

/// Caps on the command grammar (the wire cap bounds the body already).
struct CommandLimits {
  size_t max_command_line_bytes = 4096;
  size_t max_expr_bytes = 1024;
};

/// Parses one request payload. InvalidArgument on grammar violations.
Result<Command> ParseCommand(std::string_view payload,
                             const CommandLimits& limits = {});

/// Builds a success response payload: "OK[ detail]" + optional body.
std::string OkResponse(std::string_view detail = {},
                       std::string_view body = {});

/// Builds a failure response payload: "ERR <Code> <message>" (newlines
/// in the message flattened so the status line stays one line).
std::string ErrorResponse(const Status& status);

/// A response payload split back into its parts (client side).
struct ParsedResponse {
  bool ok = false;
  std::string code;    ///< status-code name on ERR ("Corruption", ...)
  std::string detail;  ///< OK detail or ERR message
  std::string body;    ///< bytes after the status line

  /// Reconstructs a Status from an ERR response (OK when ok).
  Status ToStatus() const;
};

/// Splits a response payload. Fails only on a malformed status line.
Result<ParsedResponse> ParseResponse(std::string_view payload);

/// What executing one command produced.
struct ExecuteOutcome {
  std::string response;  ///< response payload to frame back
  bool close = false;    ///< QUIT: close the connection after sending
  bool error = false;    ///< response is an ERR (for server.request_errors)
};

/// Executes `cmd` against the engine within `session` (batch buffering,
/// per-session limits). Thread-safe across sessions: the engine
/// serializes internally; the session is only ever touched by its one
/// in-flight request.
ExecuteOutcome ExecuteCommand(ServerEngine* engine, SessionContext* session,
                              const Command& cmd);

}  // namespace server
}  // namespace lazyxml

#endif  // LAZYXML_SERVER_COMMAND_H_
