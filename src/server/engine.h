// ServerEngine: the one database handle the server's command executor
// talks to, uniform over the two deployment shapes:
//
//   in-memory   wraps ConcurrentLazyDatabase directly — its
//               writer-priority TicketSharedMutex discipline is exactly
//               what concurrent sessions need;
//   durable     wraps DurableLazyDatabase (which is deliberately not
//               thread-safe; storage/durable_database.h) and applies the
//               *same* locking discipline here: updates and maintenance
//               exclusive, queries shared in LD mode, exclusive in LS
//               mode (where a query journals the freeze, i.e. mutates).
//
// Command execution (server/command.cc) calls only this class, so the
// wire/command layers never care which shape is behind them.

#ifndef LAZYXML_SERVER_ENGINE_H_
#define LAZYXML_SERVER_ENGINE_H_

#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>

#include "check/checker.h"
#include "common/result.h"
#include "common/ticket_rwlock.h"
#include "core/concurrent_database.h"
#include "core/lazy_database.h"
#include "core/path_query.h"
#include "core/twig_query.h"
#include "core/update_batch.h"
#include "obs/metrics.h"
#include "query/xpath.h"
#include "storage/durable_database.h"

namespace lazyxml {
namespace server {

struct ServerEngineOptions {
  /// In-memory database tuning (mode, tree options, query options).
  LazyDatabaseOptions db;
  /// Non-empty: open a DurableLazyDatabase on this directory instead of
  /// an in-memory ConcurrentLazyDatabase.
  std::string data_dir;
  /// Durable-mode knobs (wal sync policy etc.); `durable.db` is
  /// overwritten by `db` so the two shapes share one tuning block.
  DurableOptions durable;
  /// In-memory shape only: split each BATCH into chunks of at most this
  /// many ops with the write lock dropped between chunks, so queries and
  /// open read views are admitted mid-batch instead of stalling behind a
  /// bulk load (docs/MVCC.md). 0 = apply each batch whole. Ignored in
  /// durable mode, where the WAL batch record is deliberately atomic.
  size_t batch_chunk_ops = 0;
};

class ServerEngine {
 public:
  /// Builds the in-memory engine or opens the durable directory.
  static Result<std::unique_ptr<ServerEngine>> Open(ServerEngineOptions options);

  ServerEngine(const ServerEngine&) = delete;
  ServerEngine& operator=(const ServerEngine&) = delete;

  bool durable() const { return dur_ != nullptr; }

  // -- Updates (exclusive) ----------------------------------------------------

  /// LOAD: insert at the current end of the super document, atomically
  /// with reading that end. `*gp_out` receives the position used.
  Result<SegmentId> Append(std::string_view text, uint64_t* gp_out);

  Result<SegmentId> Insert(std::string_view text, uint64_t gp);
  Status Remove(uint64_t gp, uint64_t length);
  Status ApplyBatch(std::span<const UpdateOp> ops, BatchStats* stats_out);
  Status Compact();
  Status Freeze();

  // -- Queries ----------------------------------------------------------------

  Result<PathQueryResult> Path(std::string_view expr);
  Result<TwigQueryResult> Twig(std::string_view expr);
  Result<XPathResult> Xpath(std::string_view expr);

  // -- Introspection ----------------------------------------------------------

  /// Full consistency scrub (in durable mode including the WAL/snapshot
  /// cross-check). Exclusive: scrubbing a moving store reports phantoms.
  Result<check::CheckReport> Check();

  LazyDatabaseStats Stats();
  obs::MetricsSnapshot Metrics() const {
    return obs::MetricsRegistry::Global().Snapshot();
  }

 private:
  explicit ServerEngine(std::unique_ptr<ConcurrentLazyDatabase> mem)
      : mem_(std::move(mem)) {}
  ServerEngine(std::unique_ptr<DurableLazyDatabase> dur, bool lazy_static)
      : dur_(std::move(dur)), dur_lazy_static_(lazy_static) {}

  // Exactly one of the two is set.
  std::unique_ptr<ConcurrentLazyDatabase> mem_;
  std::unique_ptr<DurableLazyDatabase> dur_;
  /// Durable-mode lock (same discipline as ConcurrentLazyDatabase).
  TicketSharedMutex dur_mu_;
  bool dur_lazy_static_ = false;
};

}  // namespace server
}  // namespace lazyxml

#endif  // LAZYXML_SERVER_ENGINE_H_
