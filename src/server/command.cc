#include "server/command.h"

#include <algorithm>
#include <array>
#include <charconv>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "obs/metrics.h"
#include "server/engine.h"
#include "server/session.h"

namespace lazyxml {
namespace server {

namespace {

/// Splits the first line off `payload`: returns the line, leaves the
/// body (bytes after the '\n', possibly empty) in `*body`.
std::string_view SplitFirstLine(std::string_view payload,
                                std::string_view* body) {
  const size_t nl = payload.find('\n');
  if (nl == std::string_view::npos) {
    *body = std::string_view();
    return payload;
  }
  *body = payload.substr(nl + 1);
  return payload.substr(0, nl);
}

/// Tokenizes a command line on single spaces, dropping empty tokens
/// (tolerates repeated spaces and a trailing '\r').
std::vector<std::string_view> Tokens(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i > start) out.push_back(line.substr(start, i - start));
  }
  return out;
}

Result<uint64_t> ParseU64(std::string_view token, const char* what) {
  uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), v);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return Status::InvalidArgument(std::string(what) + " is not a number: '" +
                                   std::string(token) + "'");
  }
  return v;
}

Status WrongArity(std::string_view verb, const char* usage) {
  return Status::InvalidArgument("usage: " + std::string(usage) +
                                 " (malformed " + std::string(verb) + ")");
}

/// The rest of the line after the verb, trimmed — PATH/TWIG expressions
/// may not contain spaces (the grammars have none), but be forgiving
/// about surrounding whitespace.
Result<std::string> ExprArg(const std::vector<std::string_view>& tokens,
                            const CommandLimits& limits, const char* usage) {
  if (tokens.size() != 2) return WrongArity(tokens[0], usage);
  if (tokens[1].size() > limits.max_expr_bytes) {
    return Status::InvalidArgument(
        "expression exceeds the cap of " +
        std::to_string(limits.max_expr_bytes) + " bytes");
  }
  return std::string(tokens[1]);
}

}  // namespace

std::string_view CommandKindName(CommandKind kind) {
  switch (kind) {
    case CommandKind::kLoad: return "load";
    case CommandKind::kInsert: return "insert";
    case CommandKind::kRemove: return "remove";
    case CommandKind::kBatchBegin: return "batch_begin";
    case CommandKind::kBatchCommit: return "batch_commit";
    case CommandKind::kBatchAbort: return "batch_abort";
    case CommandKind::kPath: return "path";
    case CommandKind::kTwig: return "twig";
    case CommandKind::kXPath: return "xpath";
    case CommandKind::kFreeze: return "freeze";
    case CommandKind::kCompact: return "compact";
    case CommandKind::kCheck: return "check";
    case CommandKind::kMetrics: return "metrics";
    case CommandKind::kQuit: return "quit";
  }
  return "unknown";
}

DeadlineClass DeadlineClassOf(CommandKind kind) {
  switch (kind) {
    case CommandKind::kPath:
    case CommandKind::kTwig:
    case CommandKind::kXPath:
    case CommandKind::kMetrics:
      return DeadlineClass::kQuery;
    case CommandKind::kLoad:
    case CommandKind::kInsert:
    case CommandKind::kRemove:
    case CommandKind::kBatchBegin:
    case CommandKind::kBatchCommit:
    case CommandKind::kBatchAbort:
      return DeadlineClass::kUpdate;
    case CommandKind::kFreeze:
    case CommandKind::kCompact:
    case CommandKind::kCheck:
    case CommandKind::kQuit:
      return DeadlineClass::kAdmin;
  }
  return DeadlineClass::kAdmin;
}

std::string_view DeadlineClassName(DeadlineClass cls) {
  switch (cls) {
    case DeadlineClass::kQuery: return "query";
    case DeadlineClass::kUpdate: return "update";
    case DeadlineClass::kAdmin: return "admin";
  }
  return "unknown";
}

Result<Command> ParseCommand(std::string_view payload,
                             const CommandLimits& limits) {
  std::string_view body;
  const std::string_view line = SplitFirstLine(payload, &body);
  if (line.size() > limits.max_command_line_bytes) {
    return Status::InvalidArgument(
        "command line exceeds the cap of " +
        std::to_string(limits.max_command_line_bytes) + " bytes");
  }
  const std::vector<std::string_view> tokens = Tokens(line);
  if (tokens.empty()) return Status::InvalidArgument("empty command");
  const std::string_view verb = tokens[0];

  Command cmd;
  if (verb == "LOAD") {
    if (tokens.size() != 1) return WrongArity(verb, "LOAD\\n<xml>");
    if (body.empty()) {
      return Status::InvalidArgument("LOAD requires a document body");
    }
    cmd.kind = CommandKind::kLoad;
    cmd.body = std::string(body);
    return cmd;
  }
  if (verb == "INSERT") {
    if (tokens.size() != 2) return WrongArity(verb, "INSERT <gp>\\n<xml>");
    LAZYXML_ASSIGN_OR_RETURN(cmd.gp, ParseU64(tokens[1], "gp"));
    if (body.empty()) {
      return Status::InvalidArgument("INSERT requires a document body");
    }
    cmd.kind = CommandKind::kInsert;
    cmd.body = std::string(body);
    return cmd;
  }
  if (verb == "REMOVE") {
    if (tokens.size() != 3) return WrongArity(verb, "REMOVE <gp> <length>");
    LAZYXML_ASSIGN_OR_RETURN(cmd.gp, ParseU64(tokens[1], "gp"));
    LAZYXML_ASSIGN_OR_RETURN(cmd.length, ParseU64(tokens[2], "length"));
    cmd.kind = CommandKind::kRemove;
    return cmd;
  }
  if (verb == "BATCH") {
    if (tokens.size() != 2) {
      return WrongArity(verb, "BATCH BEGIN|COMMIT|ABORT");
    }
    if (tokens[1] == "BEGIN") cmd.kind = CommandKind::kBatchBegin;
    else if (tokens[1] == "COMMIT") cmd.kind = CommandKind::kBatchCommit;
    else if (tokens[1] == "ABORT") cmd.kind = CommandKind::kBatchAbort;
    else return WrongArity(verb, "BATCH BEGIN|COMMIT|ABORT");
    return cmd;
  }
  if (verb == "PATH") {
    LAZYXML_ASSIGN_OR_RETURN(cmd.expr,
                             ExprArg(tokens, limits, "PATH <expr>"));
    cmd.kind = CommandKind::kPath;
    return cmd;
  }
  if (verb == "TWIG") {
    LAZYXML_ASSIGN_OR_RETURN(cmd.expr,
                             ExprArg(tokens, limits, "TWIG <expr>"));
    cmd.kind = CommandKind::kTwig;
    return cmd;
  }
  if (verb == "XPATH") {
    LAZYXML_ASSIGN_OR_RETURN(cmd.expr,
                             ExprArg(tokens, limits, "XPATH <expr>"));
    cmd.kind = CommandKind::kXPath;
    return cmd;
  }
  if (verb == "FREEZE" || verb == "COMPACT" || verb == "CHECK" ||
      verb == "QUIT") {
    if (tokens.size() != 1) {
      return WrongArity(verb, std::string(verb).c_str());
    }
    if (verb == "FREEZE") cmd.kind = CommandKind::kFreeze;
    else if (verb == "COMPACT") cmd.kind = CommandKind::kCompact;
    else if (verb == "CHECK") cmd.kind = CommandKind::kCheck;
    else cmd.kind = CommandKind::kQuit;
    return cmd;
  }
  if (verb == "METRICS") {
    if (tokens.size() > 2) return WrongArity(verb, "METRICS [TEXT|JSON]");
    cmd.kind = CommandKind::kMetrics;
    if (tokens.size() == 2) {
      if (tokens[1] == "JSON") cmd.metrics_json = true;
      else if (tokens[1] != "TEXT") {
        return WrongArity(verb, "METRICS [TEXT|JSON]");
      }
    }
    return cmd;
  }
  return Status::InvalidArgument("unknown command verb '" + std::string(verb) +
                                 "'");
}

std::string OkResponse(std::string_view detail, std::string_view body) {
  std::string out = "OK";
  if (!detail.empty()) {
    out.push_back(' ');
    out.append(detail);
  }
  if (!body.empty()) {
    out.push_back('\n');
    out.append(body);
  }
  return out;
}

std::string ErrorResponse(const Status& status) {
  std::string msg = status.message();
  for (char& c : msg) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return "ERR " + std::string(StatusCodeToString(status.code())) + " " + msg;
}

Status ParsedResponse::ToStatus() const {
  if (ok) return Status::OK();
  if (code == "InvalidArgument") return Status::InvalidArgument(detail);
  if (code == "NotFound") return Status::NotFound(detail);
  if (code == "AlreadyExists") return Status::AlreadyExists(detail);
  if (code == "OutOfRange") return Status::OutOfRange(detail);
  if (code == "Corruption") return Status::Corruption(detail);
  if (code == "NotSupported") return Status::NotSupported(detail);
  if (code == "ParseError") return Status::ParseError(detail);
  if (code == "IOError") return Status::IOError(detail);
  if (code == "DeadlineExceeded") return Status::DeadlineExceeded(detail);
  if (code == "Unavailable") return Status::Unavailable(detail);
  return Status::Internal(code + ": " + detail);
}

Result<ParsedResponse> ParseResponse(std::string_view payload) {
  std::string_view body;
  std::string_view line = SplitFirstLine(payload, &body);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  ParsedResponse out;
  out.body = std::string(body);
  if (line == "OK" || StartsWith(line, "OK ")) {
    out.ok = true;
    if (line.size() > 3) out.detail = std::string(line.substr(3));
    return out;
  }
  if (StartsWith(line, "ERR ")) {
    const std::string_view rest = line.substr(4);
    const size_t sp = rest.find(' ');
    out.ok = false;
    out.code = std::string(rest.substr(0, sp));
    if (sp != std::string_view::npos) {
      out.detail = std::string(rest.substr(sp + 1));
    }
    if (out.code.empty()) {
      return Status::Corruption("response status line carries no code");
    }
    return out;
  }
  return Status::Corruption("response payload has no OK/ERR status line");
}

namespace {

/// Per-command instruments, resolved once (dynamic names cannot use the
/// LAZYXML_METRIC_* function-local-static macros).
struct CmdInstruments {
  obs::Counter* count;
  obs::Histogram* us;
};

CmdInstruments& InstrumentsFor(CommandKind kind) {
  static std::array<CmdInstruments, 14> all = [] {
    std::array<CmdInstruments, 14> a{};
    auto& reg = obs::MetricsRegistry::Global();
    for (size_t i = 0; i < a.size(); ++i) {
      const std::string base =
          "server.cmd." +
          std::string(CommandKindName(static_cast<CommandKind>(i)));
      a[i].count = &reg.GetCounter(base);
      a[i].us = &reg.GetHistogram(base + "_us");
    }
    return a;
  }();
  return all[static_cast<size_t>(kind)];
}

ExecuteOutcome Fail(const Status& status) {
  ExecuteOutcome out;
  out.response = ErrorResponse(status);
  out.error = true;
  return out;
}

ExecuteOutcome RunCommand(ServerEngine* engine, SessionContext* session,
                          const Command& cmd) {
  ExecuteOutcome out;
  switch (cmd.kind) {
    case CommandKind::kLoad: {
      if (session->in_batch()) {
        return Fail(Status::InvalidArgument(
            "LOAD inside a batch is not supported (its position depends on "
            "ops not applied yet); use INSERT <gp>"));
      }
      uint64_t gp = 0;
      auto r = engine->Append(cmd.body, &gp);
      if (!r.ok()) return Fail(r.status());
      out.response = OkResponse(
          StringPrintf("SID %llu GP %llu LEN %zu",
                       static_cast<unsigned long long>(r.ValueOrDie()),
                       static_cast<unsigned long long>(gp), cmd.body.size()));
      return out;
    }
    case CommandKind::kInsert: {
      if (session->in_batch()) {
        auto q = session->BufferOp(UpdateOp::Insert(cmd.body, cmd.gp));
        if (!q.ok()) return Fail(q.status());
        out.response = OkResponse(
            StringPrintf("QUEUED %zu", q.ValueOrDie() + 1));
        return out;
      }
      auto r = engine->Insert(cmd.body, cmd.gp);
      if (!r.ok()) return Fail(r.status());
      out.response = OkResponse(StringPrintf(
          "SID %llu", static_cast<unsigned long long>(r.ValueOrDie())));
      return out;
    }
    case CommandKind::kRemove: {
      if (session->in_batch()) {
        auto q = session->BufferOp(UpdateOp::Remove(cmd.gp, cmd.length));
        if (!q.ok()) return Fail(q.status());
        out.response = OkResponse(
            StringPrintf("QUEUED %zu", q.ValueOrDie() + 1));
        return out;
      }
      Status s = engine->Remove(cmd.gp, cmd.length);
      if (!s.ok()) return Fail(s);
      out.response = OkResponse();
      return out;
    }
    case CommandKind::kBatchBegin: {
      Status s = session->BeginBatch();
      if (!s.ok()) return Fail(s);
      out.response = OkResponse("BATCH");
      return out;
    }
    case CommandKind::kBatchCommit: {
      if (!session->in_batch()) {
        return Fail(Status::InvalidArgument("no batch open"));
      }
      const std::vector<UpdateOp> ops = session->TakeBatch();
      BatchStats stats;
      Status s = engine->ApplyBatch(ops, &stats);
      if (!s.ok()) {
        // Prefix semantics (core/lazy_database.h): report how far it got.
        return Fail(s.WithContext(StringPrintf(
            "batch failed after %zu/%zu ops", stats.applied, stats.ops)));
      }
      std::string sids;
      for (SegmentId sid : stats.sids) {
        if (!sids.empty()) sids.push_back(' ');
        sids += std::to_string(sid);
      }
      out.response = OkResponse(
          StringPrintf("APPLIED %zu CANCELLED %zu", stats.applied,
                       stats.cancelled_pairs),
          sids.empty() ? std::string() : "SIDS " + sids);
      return out;
    }
    case CommandKind::kBatchAbort: {
      if (!session->in_batch()) {
        return Fail(Status::InvalidArgument("no batch open"));
      }
      LAZYXML_METRIC_COUNTER(aborted, "server.batches_aborted");
      aborted.Increment();
      out.response =
          OkResponse(StringPrintf("DISCARDED %zu", session->AbortBatch()));
      return out;
    }
    case CommandKind::kPath: {
      auto r = engine->Path(cmd.expr);
      if (!r.ok()) return Fail(r.status());
      const PathQueryResult& pr = r.ValueOrDie();
      std::string body;
      const size_t cap = session->limits().max_result_elements;
      const size_t listed = std::min(cap, pr.elements.size());
      for (size_t i = 0; i < listed; ++i) {
        body += StringPrintf(
            "%llu %llu\n",
            static_cast<unsigned long long>(pr.elements[i].sid),
            static_cast<unsigned long long>(pr.elements[i].start));
      }
      out.response = OkResponse(
          StringPrintf("COUNT %zu PAIRS %llu LISTED %zu", pr.elements.size(),
                       static_cast<unsigned long long>(pr.intermediate_pairs),
                       listed),
          body);
      return out;
    }
    case CommandKind::kTwig: {
      auto r = engine->Twig(cmd.expr);
      if (!r.ok()) return Fail(r.status());
      const TwigQueryResult& tr = r.ValueOrDie();
      std::string body;
      const size_t cap = session->limits().max_result_elements;
      const size_t listed = std::min(cap, tr.elements.size());
      for (size_t i = 0; i < listed; ++i) {
        body += StringPrintf(
            "%llu %llu\n",
            static_cast<unsigned long long>(tr.elements[i].sid),
            static_cast<unsigned long long>(tr.elements[i].start));
      }
      out.response = OkResponse(
          StringPrintf("COUNT %zu JOINS %llu LISTED %zu", tr.elements.size(),
                       static_cast<unsigned long long>(tr.joins), listed),
          body);
      return out;
    }
    case CommandKind::kXPath: {
      auto r = engine->Xpath(cmd.expr);
      if (!r.ok()) return Fail(r.status());
      const XPathResult& xr = r.ValueOrDie();
      std::string body;
      const size_t cap = session->limits().max_result_elements;
      const size_t listed = std::min(cap, xr.elements.size());
      for (size_t i = 0; i < listed; ++i) {
        body += StringPrintf(
            "%llu %llu\n",
            static_cast<unsigned long long>(xr.elements[i].start),
            static_cast<unsigned long long>(xr.elements[i].end));
      }
      out.response = OkResponse(
          StringPrintf(
              "COUNT %zu JOINS %llu PAIRS %llu PRUNED %llu SKIPPED %llu "
              "EMPTYPROOF %d LISTED %zu",
              xr.elements.size(),
              static_cast<unsigned long long>(xr.joins_executed),
              static_cast<unsigned long long>(xr.intermediate_pairs),
              static_cast<unsigned long long>(xr.segments_pruned),
              static_cast<unsigned long long>(xr.elements_skipped),
              xr.summary_empty ? 1 : 0, listed),
          body);
      return out;
    }
    case CommandKind::kFreeze: {
      Status s = engine->Freeze();
      if (!s.ok()) return Fail(s);
      out.response = OkResponse();
      return out;
    }
    case CommandKind::kCompact: {
      Status s = engine->Compact();
      if (!s.ok()) return Fail(s);
      out.response = OkResponse();
      return out;
    }
    case CommandKind::kCheck: {
      auto r = engine->Check();
      if (!r.ok()) return Fail(r.status());
      const check::CheckReport& report = r.ValueOrDie();
      out.response = OkResponse(
          StringPrintf("ERRORS %zu WARNINGS %zu", report.errors(),
                       report.warnings()),
          report.errors() + report.warnings() == 0 ? std::string_view()
                                                   : report.ToString());
      return out;
    }
    case CommandKind::kMetrics: {
      const obs::MetricsSnapshot snap = engine->Metrics();
      out.response = OkResponse(
          cmd.metrics_json ? "JSON" : "TEXT",
          cmd.metrics_json ? snap.ExportJson() : snap.ExportText());
      return out;
    }
    case CommandKind::kQuit: {
      out.response = OkResponse("BYE");
      out.close = true;
      return out;
    }
  }
  return Fail(Status::Internal("unhandled command kind"));
}

}  // namespace

ExecuteOutcome ExecuteCommand(ServerEngine* engine, SessionContext* session,
                              const Command& cmd) {
  LAZYXML_METRIC_HISTOGRAM(request_us, "server.request_us");
  CmdInstruments& per_cmd = InstrumentsFor(cmd.kind);
  per_cmd.count->Increment();
  ExecuteOutcome out;
  {
    obs::ScopedLatency overall(request_us);
    obs::ScopedLatency cmd_latency(*per_cmd.us);
    out = RunCommand(engine, session, cmd);
  }
  ++session->requests_served;
  return out;
}

}  // namespace server
}  // namespace lazyxml
