// Server: the network front door. Accepts TCP and/or unix-socket
// connections, frames requests with the wire protocol (server/wire.h),
// and dispatches each session's commands onto a work-stealing ThreadPool
// while one event-loop thread owns all socket I/O.
//
// Concurrency model (docs/SERVER.md):
//   * one event-loop thread: accept, read, frame-decode, write;
//   * at most ONE in-flight request per session (commands of a session
//     execute in order; BATCH state needs that), so a slow query on one
//     connection never blocks another session — their requests run on
//     other pool workers and the engine's reader-writer lock does the
//     interleaving;
//   * backpressure instead of unbounded buffering: a session whose
//     request queue or response buffer exceeds its bound stops being
//     read (the kernel's TCP window then pushes back on the client);
//   * teardown: Stop() closes the listeners first, lets in-flight
//     requests drain (their responses are flushed best-effort), then
//     closes every connection and joins the loop — repeated
//     Start/Stop in one process is leak-free.

#ifndef LAZYXML_SERVER_SERVER_H_
#define LAZYXML_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/socket.h"
#include "common/thread_pool.h"
#include "server/command.h"
#include "server/session.h"
#include "server/wire.h"

namespace lazyxml {
namespace server {

class ServerEngine;

struct ServerOptions {
  /// Listen on this unix-socket path when non-empty.
  std::string unix_path;
  /// Listen on tcp_host:tcp_port when `tcp` is true; port 0 picks an
  /// ephemeral port (read back with Server::tcp_port()).
  bool tcp = false;
  std::string tcp_host = "127.0.0.1";
  uint16_t tcp_port = 0;

  /// Sessions beyond this cap are sent an error frame and closed.
  size_t max_connections = 256;
  /// Decoded-but-unexecuted requests per session before its socket
  /// stops being read.
  size_t max_pending_requests = 8;
  /// Unwritten response bytes per session before its socket stops
  /// being read.
  size_t max_output_buffer_bytes = 8u << 20;
  /// Bytes pulled per read() call.
  size_t read_chunk_bytes = 64u << 10;

  WireLimits wire;
  CommandLimits command;
  SessionLimits session;

  /// Per-request deadlines in milliseconds by command class; 0 disables
  /// a class. The budget starts the moment the request frame is decoded
  /// — a request still waiting past its budget when a worker picks it up
  /// is answered `ERR DeadlineExceeded` without ever touching the
  /// engine, so a backlog cannot snowball into work nobody wants.
  struct Deadlines {
    uint32_t query_ms = 30000;   ///< PATH / TWIG / METRICS
    uint32_t update_ms = 60000;  ///< LOAD / INSERT / REMOVE / BATCH *
    uint32_t admin_ms = 0;       ///< FREEZE / COMPACT / CHECK / QUIT
  };
  Deadlines deadline;

  /// Admission control (overload shedding). When the total
  /// decoded-but-unanswered requests across every session, or the total
  /// buffered response bytes, sit at or above a watermark, each newly
  /// decoded request is answered `ERR Unavailable` in arrival order
  /// instead of being queued for execution — a typed, retryable
  /// rejection, never a silent drop. 0 disables a watermark.
  size_t shed_pending_requests = 4096;
  size_t shed_buffered_bytes = 512u << 20;

  /// Reap a session with no traffic, no queued or executing request, and
  /// no unsent output for this long (one best-effort `ERR Unavailable`
  /// frame, then close). 0 = never. Driven off the Poller::Wait timeout
  /// via a min-heap of session deadlines — no reaper thread.
  uint32_t idle_timeout_ms = 0;
  /// Close a session whose pending output makes no progress for this
  /// long — a slow or dead client pinning buffer memory. 0 = never.
  uint32_t write_stall_timeout_ms = 0;
  /// How long Stop() keeps flushing already-computed responses before
  /// closing sockets (in-flight requests are always answered first).
  uint32_t drain_timeout_ms = 1000;
  /// When > 0, applied to each accepted socket as SO_SNDBUF — a tuning /
  /// testing knob that makes slow-client write stalls reproducible.
  int socket_send_buffer_bytes = 0;

  /// Worker threads executing requests. 0 = the process-wide
  /// ThreadPool::Shared(); > 0 = a pool owned (and drained) by this
  /// server.
  size_t num_threads = 0;

  /// Use the portable poll(2) poller even where epoll is available
  /// (tests exercise both backends).
  bool force_poll = false;
};

class Server {
 public:
  /// The engine must outlive the server.
  Server(ServerEngine* engine, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the configured listeners and starts the event loop.
  /// InvalidArgument when no listener is configured or already running.
  Status Start();

  /// Stops accepting, drains in-flight requests, closes every
  /// connection, joins the loop thread. Idempotent; Start() may be
  /// called again afterwards.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The TCP port actually bound (after Start with tcp enabled).
  uint16_t tcp_port() const { return bound_tcp_port_; }
  const std::string& unix_path() const { return options_.unix_path; }

  /// Live sessions (event-loop-thread view; approximate from outside).
  size_t active_sessions() const {
    return active_sessions_.load(std::memory_order_acquire);
  }

 private:
  class Poller;
  class PollPoller;
#ifdef __linux__
  class EpollPoller;
#endif
  struct Connection;
  struct Completion {
    uint64_t conn_id = 0;
    std::string response;
    bool close = false;
  };

  struct SessionDeadline {
    std::chrono::steady_clock::time_point when;
    uint64_t conn_id = 0;
    bool operator>(const SessionDeadline& other) const {
      return when > other.when;
    }
  };

  void EventLoop();
  void AcceptAll(int listen_fd);
  bool DrainDecoder(Connection* conn, std::string* error_payload);
  /// Pushes a heap entry for `conn`'s earliest idle / write-stall
  /// deadline (at most one live entry per connection).
  void ArmSessionDeadline(Connection* conn);
  /// Reaps every session whose deadline has truly expired; stale heap
  /// entries re-arm themselves. Runs on the loop thread each wakeup.
  void RunReaper();
  /// Poll timeout to the nearest session deadline (-1 = no deadline).
  int NextReaperTimeoutMs() const;
  /// Bounded best-effort flush of buffered responses at shutdown.
  void DrainOutputsBeforeExit();
  void HandleReadable(Connection* conn);
  void HandleWritable(Connection* conn);
  void DispatchNext(Connection* conn);
  void ProcessCompletions();
  void EnqueueResponse(Connection* conn, std::string_view payload);
  void FlushOutput(Connection* conn);
  void UpdateInterest(Connection* conn);
  void CloseConnection(Connection* conn, bool abrupt);
  void ReapDead();
  void CloseListeners();
  void Wake() { PokeWakePipe(wake_.write_end.get()); }

  ServerEngine* const engine_;
  ServerOptions options_;

  ThreadPool* pool_ = nullptr;
  std::unique_ptr<ThreadPool> owned_pool_;

  UniqueFd tcp_listener_;
  UniqueFd unix_listener_;
  uint16_t bound_tcp_port_ = 0;
  WakePipe wake_;
  std::unique_ptr<Poller> poller_;

  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  bool listeners_closed_ = false;

  // Event-loop-thread state.
  std::map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_conn_id_ = 16;  // ids below 16 tag listeners + wake pipe
  std::atomic<size_t> active_sessions_{0};

  // Admission-control totals, maintained incrementally by the loop
  // thread (decode / dispatch / enqueue / flush / close).
  size_t pending_requests_total_ = 0;
  size_t buffered_out_total_ = 0;

  // Min-heap of session idle / write-stall deadlines. Entries are lazy:
  // a popped entry whose connection has been active since simply re-arms
  // at the new deadline.
  std::priority_queue<SessionDeadline, std::vector<SessionDeadline>,
                      std::greater<SessionDeadline>>
      session_deadlines_;

  // Worker → event-loop handoff. inflight_ counts dispatched requests
  // whose completion has not yet been *pushed*; the loop only exits once
  // it reaches 0 with the queue drained, which (because workers push and
  // decrement under done_mu_, then never touch the server again) makes
  // join-then-destruct safe even with the shared pool.
  std::mutex done_mu_;
  std::vector<Completion> done_;
  size_t inflight_ = 0;
};

}  // namespace server
}  // namespace lazyxml

#endif  // LAZYXML_SERVER_SERVER_H_
