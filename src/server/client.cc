#include "server/client.h"

#include <charconv>
#include <cmath>
#include <thread>
#include <utility>

#include "common/strings.h"
#include "obs/metrics.h"

namespace lazyxml {
namespace server {

namespace {

/// Pulls the numeric value following `key` out of an OK detail line like
/// "SID 7 GP 1024 LEN 33".
Result<uint64_t> DetailField(std::string_view detail, std::string_view key) {
  size_t pos = 0;
  while (pos < detail.size()) {
    while (pos < detail.size() && detail[pos] == ' ') ++pos;
    size_t end = detail.find(' ', pos);
    if (end == std::string_view::npos) end = detail.size();
    std::string_view token = detail.substr(pos, end - pos);
    pos = end + 1;
    if (token != key) continue;
    while (pos < detail.size() && detail[pos] == ' ') ++pos;
    end = detail.find(' ', pos);
    if (end == std::string_view::npos) end = detail.size();
    std::string_view num = detail.substr(pos, end - pos);
    uint64_t value = 0;
    auto [p, ec] = std::from_chars(num.data(), num.data() + num.size(), value);
    if (ec != std::errc() || p != num.data() + num.size()) {
      return Status::InvalidArgument("malformed numeric field '" +
                                     std::string(key) + "' in response '" +
                                     std::string(detail) + "'");
    }
    return value;
  }
  return Status::InvalidArgument("field '" + std::string(key) +
                                 "' missing from response '" +
                                 std::string(detail) + "'");
}

/// Parses the "sid start" rows of a PATH/TWIG response body.
Status ParseRows(std::string_view body,
                 std::vector<std::pair<uint64_t, uint64_t>>* rows_out) {
  for (std::string_view line : Split(body, '\n')) {
    if (line.empty()) continue;
    const size_t sp = line.find(' ');
    if (sp == std::string_view::npos) {
      return Status::InvalidArgument("malformed result row '" +
                                     std::string(line) + "'");
    }
    uint64_t sid = 0;
    uint64_t start = 0;
    std::string_view a = line.substr(0, sp);
    std::string_view b = line.substr(sp + 1);
    auto [pa, ea] = std::from_chars(a.data(), a.data() + a.size(), sid);
    auto [pb, eb] = std::from_chars(b.data(), b.data() + b.size(), start);
    if (ea != std::errc() || eb != std::errc() ||
        pa != a.data() + a.size() || pb != b.data() + b.size()) {
      return Status::InvalidArgument("malformed result row '" +
                                     std::string(line) + "'");
    }
    rows_out->emplace_back(sid, start);
  }
  return Status::OK();
}

}  // namespace

using Clock = std::chrono::steady_clock;

Client::Client(UniqueFd fd, ClientOptions options, Endpoint endpoint)
    : fd_(std::move(fd)),
      options_(std::move(options)),
      endpoint_(std::move(endpoint)),
      decoder_(options_.wire),
      jitter_rng_(options_.jitter_seed) {}

Result<Client> Client::ConnectTcpEndpoint(const std::string& host,
                                          uint16_t port,
                                          ClientOptions options) {
  LAZYXML_ASSIGN_OR_RETURN(
      UniqueFd fd, ConnectTcpTimed(host, port, options.connect_timeout_ms));
  Endpoint ep;
  ep.tcp = true;
  ep.host = host;
  ep.port = port;
  return Client(std::move(fd), std::move(options), std::move(ep));
}

Result<Client> Client::ConnectUnixEndpoint(const std::string& path,
                                           ClientOptions options) {
  LAZYXML_ASSIGN_OR_RETURN(
      UniqueFd fd, ConnectUnixTimed(path, options.connect_timeout_ms));
  Endpoint ep;
  ep.path = path;
  return Client(std::move(fd), std::move(options), std::move(ep));
}

Status Client::Reconnect() {
  LAZYXML_METRIC_COUNTER(reconnects, "client.reconnects_total");
  fd_.reset();
  decoder_ = FrameDecoder(options_.wire);  // a fresh byte stream
  Result<UniqueFd> fd =
      endpoint_.tcp
          ? ConnectTcpTimed(endpoint_.host, endpoint_.port,
                            options_.connect_timeout_ms)
          : ConnectUnixTimed(endpoint_.path, options_.connect_timeout_ms);
  if (!fd.ok()) return fd.status();
  fd_ = std::move(fd).ValueOrDie();
  reconnects.Increment();
  return Status::OK();
}

int Client::WaitBudgetMs(Clock::time_point deadline) const {
  int budget = options_.io_timeout_ms > 0 ? options_.io_timeout_ms : -1;
  if (deadline != Clock::time_point::max()) {
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - Clock::now())
                    .count();
    // Never 0: WaitReadable/WaitWritable treat <= 0 as "wait forever".
    if (left < 1) left = 1;
    if (budget < 0 || left < budget) budget = static_cast<int>(left);
  }
  return budget;
}

Status Client::WriteAll(std::string_view bytes, Clock::time_point deadline) {
  LAZYXML_METRIC_COUNTER(timeouts, "client.timeouts_total");
  size_t off = 0;
  while (off < bytes.size()) {
    auto w = WriteSome(fd_.get(), bytes.data() + off, bytes.size() - off);
    if (!w.ok()) {
      fd_.reset();
      return w.status();
    }
    off += w.ValueOrDie().n;
    if (off == bytes.size()) break;
    if (w.ValueOrDie().would_block) {
      const int budget = WaitBudgetMs(deadline);
      auto ready = WaitWritable(fd_.get(), budget);
      if (!ready.ok()) {
        fd_.reset();
        return ready.status();
      }
      if (!ready.ValueOrDie()) {
        // The frame is part-sent: this connection's byte stream is
        // poisoned, drop it so a retry starts clean.
        timeouts.Increment();
        fd_.reset();
        return Status::DeadlineExceeded("write timed out after " +
                                        std::to_string(budget) + "ms");
      }
    }
  }
  return Status::OK();
}

Result<ParsedResponse> Client::Call(std::string_view payload) {
  LAZYXML_METRIC_COUNTER(timeouts, "client.timeouts_total");
  if (!fd_.valid()) {
    return Status::Unavailable("client is not connected");
  }
  const Clock::time_point deadline =
      options_.call_timeout_ms > 0
          ? Clock::now() + std::chrono::milliseconds(options_.call_timeout_ms)
          : Clock::time_point::max();
  LAZYXML_ASSIGN_OR_RETURN(
      std::string frame,
      EncodeFrame(FrameType::kRequest, payload, options_.wire));
  LAZYXML_RETURN_NOT_OK(WriteAll(frame, deadline));
  char buf[4096];
  for (;;) {
    auto next = decoder_.Next();
    LAZYXML_RETURN_NOT_OK(next.status());
    if (next.ValueOrDie().has_value()) {
      Frame f = std::move(next.ValueOrDie().value());
      if (f.type != FrameType::kResponse) {
        return Status::InvalidArgument("server sent a non-response frame");
      }
      return ParseResponse(f.payload);
    }
    auto r = ReadSome(fd_.get(), buf, sizeof buf);
    if (!r.ok()) {
      fd_.reset();
      return r.status();
    }
    if (r.ValueOrDie().n > 0) {
      decoder_.Feed(std::string_view(buf, r.ValueOrDie().n));
      continue;
    }
    if (r.ValueOrDie().eof) {
      fd_.reset();
      return Status::Unavailable("server closed the connection mid-response");
    }
    if (r.ValueOrDie().would_block) {
      const int budget = WaitBudgetMs(deadline);
      auto ready = WaitReadable(fd_.get(), budget);
      if (!ready.ok()) {
        fd_.reset();
        return ready.status();
      }
      if (!ready.ValueOrDie()) {
        // An unread response may still arrive later and would desync
        // request/response matching — poison the connection.
        timeouts.Increment();
        fd_.reset();
        return Status::DeadlineExceeded("response timed out after " +
                                        std::to_string(budget) + "ms");
      }
    }
  }
}

Result<ParsedResponse> Client::CallChecked(std::string_view payload) {
  LAZYXML_ASSIGN_OR_RETURN(ParsedResponse resp, Call(payload));
  if (!resp.ok) return resp.ToStatus();
  return resp;
}

void Client::SleepBackoff(int attempt) {
  const BackoffPolicy& b = options_.backoff;
  double delay = static_cast<double>(b.initial_ms) *
                 std::pow(b.multiplier, attempt - 1);
  if (delay > b.max_ms) delay = b.max_ms;
  if (b.jitter > 0) delay *= 1.0 - b.jitter * jitter_rng_.NextDouble();
  if (delay < 1) delay = 1;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int64_t>(delay)));
}

Result<ParsedResponse> Client::CallWithRetry(std::string_view payload,
                                             bool idempotent) {
  LAZYXML_METRIC_COUNTER(retries, "client.retries_total");
  const int attempts = options_.max_attempts > 0 ? options_.max_attempts : 1;
  Status last = Status::Unavailable("no attempt made");
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      retries.Increment();
      SleepBackoff(attempt - 1);
    }
    if (!fd_.valid()) {
      last = Reconnect();
      if (!last.ok()) continue;
    }
    auto r = Call(payload);
    if (r.ok()) {
      const ParsedResponse& resp = r.ValueOrDie();
      if (!resp.ok) {
        Status server_status = resp.ToStatus();
        // Typed server rejections (shed / expired in queue) happen
        // before the engine runs, so re-sending is safe even for
        // mutations.
        if (server_status.IsUnavailable() ||
            server_status.IsDeadlineExceeded()) {
          last = std::move(server_status);
          continue;
        }
        return server_status;  // a real error: surface it
      }
      return r;
    }
    last = r.status();
    // Transport failure: the request's fate is unknown — it may have
    // executed and only the response was lost. Only idempotent commands
    // (or explicit opt-in) may re-send.
    const bool retryable_transport =
        last.IsUnavailable() || last.IsDeadlineExceeded() || last.IsIOError();
    if (!retryable_transport) return last;
    if (!idempotent && !options_.retry_mutations) return last;
  }
  return last;
}

Result<uint64_t> Client::Load(std::string_view xml) {
  std::string payload = "LOAD\n";
  payload.append(xml);
  LAZYXML_ASSIGN_OR_RETURN(ParsedResponse resp,
                           CallWithRetry(payload, /*idempotent=*/false));
  return DetailField(resp.detail, "SID");
}

Result<uint64_t> Client::Insert(uint64_t gp, std::string_view xml) {
  std::string payload = "INSERT " + std::to_string(gp) + "\n";
  payload.append(xml);
  LAZYXML_ASSIGN_OR_RETURN(ParsedResponse resp,
                           CallWithRetry(payload, /*idempotent=*/false));
  return DetailField(resp.detail, "SID");
}

Status Client::Remove(uint64_t gp, uint64_t length) {
  return CallWithRetry("REMOVE " + std::to_string(gp) + " " +
                           std::to_string(length),
                       /*idempotent=*/false)
      .status();
}

// BATCH verbs are session state, not engine state, but a reconnect
// silently discards an open batch — so they never retry on transport
// failure either (a fresh connection would accept BATCH COMMIT with an
// empty buffer and lie about it).
Status Client::BatchBegin() { return CallChecked("BATCH BEGIN").status(); }

Status Client::BatchAdd(bool insert, uint64_t gp, uint64_t length,
                        std::string_view xml) {
  if (insert) {
    std::string payload = "INSERT " + std::to_string(gp) + "\n";
    payload.append(xml);
    return CallChecked(payload).status();
  }
  return Remove(gp, length);
}

Result<uint64_t> Client::BatchCommit() {
  LAZYXML_ASSIGN_OR_RETURN(ParsedResponse resp, CallChecked("BATCH COMMIT"));
  return DetailField(resp.detail, "APPLIED");
}

Status Client::BatchAbort() { return CallChecked("BATCH ABORT").status(); }

Result<uint64_t> Client::Path(
    std::string_view expr,
    std::vector<std::pair<uint64_t, uint64_t>>* rows_out) {
  LAZYXML_ASSIGN_OR_RETURN(
      ParsedResponse resp,
      CallWithRetry("PATH " + std::string(expr), /*idempotent=*/true));
  if (rows_out != nullptr) {
    LAZYXML_RETURN_NOT_OK(ParseRows(resp.body, rows_out));
  }
  return DetailField(resp.detail, "COUNT");
}

Result<uint64_t> Client::Twig(
    std::string_view expr,
    std::vector<std::pair<uint64_t, uint64_t>>* rows_out) {
  LAZYXML_ASSIGN_OR_RETURN(
      ParsedResponse resp,
      CallWithRetry("TWIG " + std::string(expr), /*idempotent=*/true));
  if (rows_out != nullptr) {
    LAZYXML_RETURN_NOT_OK(ParseRows(resp.body, rows_out));
  }
  return DetailField(resp.detail, "COUNT");
}

Result<uint64_t> Client::Xpath(
    std::string_view expr,
    std::vector<std::pair<uint64_t, uint64_t>>* rows_out) {
  LAZYXML_ASSIGN_OR_RETURN(
      ParsedResponse resp,
      CallWithRetry("XPATH " + std::string(expr), /*idempotent=*/true));
  if (rows_out != nullptr) {
    LAZYXML_RETURN_NOT_OK(ParseRows(resp.body, rows_out));
  }
  return DetailField(resp.detail, "COUNT");
}

Status Client::Freeze() { return CallChecked("FREEZE").status(); }

Status Client::Compact() { return CallChecked("COMPACT").status(); }

Result<ParsedResponse> Client::Check() {
  return CallWithRetry("CHECK", /*idempotent=*/true);
}

Result<std::string> Client::Metrics(bool json) {
  LAZYXML_ASSIGN_OR_RETURN(
      ParsedResponse resp,
      CallWithRetry(json ? "METRICS JSON" : "METRICS TEXT",
                    /*idempotent=*/true));
  return std::move(resp.body);
}

Status Client::Quit() {
  if (!fd_.valid()) return Status::OK();  // already torn down
  Status s = CallChecked("QUIT").status();
  // A server shutting down can close the socket before (or instead of)
  // the BYE reply — ECONNRESET/EPIPE/eof here all mean the session is
  // down, which is exactly what QUIT asked for.
  if (s.IsUnavailable()) s = Status::OK();
  fd_.reset();
  return s;
}

}  // namespace server
}  // namespace lazyxml
