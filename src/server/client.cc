#include "server/client.h"

#include <charconv>
#include <utility>

#include "common/strings.h"

namespace lazyxml {
namespace server {

namespace {

/// Pulls the numeric value following `key` out of an OK detail line like
/// "SID 7 GP 1024 LEN 33".
Result<uint64_t> DetailField(std::string_view detail, std::string_view key) {
  size_t pos = 0;
  while (pos < detail.size()) {
    while (pos < detail.size() && detail[pos] == ' ') ++pos;
    size_t end = detail.find(' ', pos);
    if (end == std::string_view::npos) end = detail.size();
    std::string_view token = detail.substr(pos, end - pos);
    pos = end + 1;
    if (token != key) continue;
    while (pos < detail.size() && detail[pos] == ' ') ++pos;
    end = detail.find(' ', pos);
    if (end == std::string_view::npos) end = detail.size();
    std::string_view num = detail.substr(pos, end - pos);
    uint64_t value = 0;
    auto [p, ec] = std::from_chars(num.data(), num.data() + num.size(), value);
    if (ec != std::errc() || p != num.data() + num.size()) {
      return Status::InvalidArgument("malformed numeric field '" +
                                     std::string(key) + "' in response '" +
                                     std::string(detail) + "'");
    }
    return value;
  }
  return Status::InvalidArgument("field '" + std::string(key) +
                                 "' missing from response '" +
                                 std::string(detail) + "'");
}

/// Parses the "sid start" rows of a PATH/TWIG response body.
Status ParseRows(std::string_view body,
                 std::vector<std::pair<uint64_t, uint64_t>>* rows_out) {
  for (std::string_view line : Split(body, '\n')) {
    if (line.empty()) continue;
    const size_t sp = line.find(' ');
    if (sp == std::string_view::npos) {
      return Status::InvalidArgument("malformed result row '" +
                                     std::string(line) + "'");
    }
    uint64_t sid = 0;
    uint64_t start = 0;
    std::string_view a = line.substr(0, sp);
    std::string_view b = line.substr(sp + 1);
    auto [pa, ea] = std::from_chars(a.data(), a.data() + a.size(), sid);
    auto [pb, eb] = std::from_chars(b.data(), b.data() + b.size(), start);
    if (ea != std::errc() || eb != std::errc() ||
        pa != a.data() + a.size() || pb != b.data() + b.size()) {
      return Status::InvalidArgument("malformed result row '" +
                                     std::string(line) + "'");
    }
    rows_out->emplace_back(sid, start);
  }
  return Status::OK();
}

}  // namespace

Result<Client> Client::ConnectTcpEndpoint(const std::string& host,
                                          uint16_t port, WireLimits limits) {
  LAZYXML_ASSIGN_OR_RETURN(UniqueFd fd, ConnectTcp(host, port));
  return Client(std::move(fd), limits);
}

Result<Client> Client::ConnectUnixEndpoint(const std::string& path,
                                           WireLimits limits) {
  LAZYXML_ASSIGN_OR_RETURN(UniqueFd fd, ConnectUnix(path));
  return Client(std::move(fd), limits);
}

Status Client::WriteAll(std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    auto w = WriteSome(fd_.get(), bytes.data() + off, bytes.size() - off);
    LAZYXML_RETURN_NOT_OK(w.status());
    // The socket is blocking, so would_block cannot persist; a zero-byte
    // non-blocking write would loop, guard anyway.
    if (w.ValueOrDie().n == 0 && w.ValueOrDie().would_block) {
      return Status::IOError("short write on blocking client socket");
    }
    off += w.ValueOrDie().n;
  }
  return Status::OK();
}

Result<ParsedResponse> Client::Call(std::string_view payload) {
  if (!fd_.valid()) {
    return Status::InvalidArgument("client is not connected");
  }
  LAZYXML_ASSIGN_OR_RETURN(
      std::string frame, EncodeFrame(FrameType::kRequest, payload, limits_));
  LAZYXML_RETURN_NOT_OK(WriteAll(frame));
  char buf[4096];
  for (;;) {
    auto next = decoder_.Next();
    LAZYXML_RETURN_NOT_OK(next.status());
    if (next.ValueOrDie().has_value()) {
      Frame f = std::move(next.ValueOrDie().value());
      if (f.type != FrameType::kResponse) {
        return Status::InvalidArgument("server sent a non-response frame");
      }
      return ParseResponse(f.payload);
    }
    auto r = ReadSome(fd_.get(), buf, sizeof buf);
    LAZYXML_RETURN_NOT_OK(r.status());
    if (r.ValueOrDie().n > 0) {
      decoder_.Feed(std::string_view(buf, r.ValueOrDie().n));
      continue;
    }
    if (r.ValueOrDie().eof) {
      fd_.reset();
      return Status::IOError("server closed the connection mid-response");
    }
  }
}

Result<ParsedResponse> Client::CallChecked(std::string_view payload) {
  LAZYXML_ASSIGN_OR_RETURN(ParsedResponse resp, Call(payload));
  if (!resp.ok) return resp.ToStatus();
  return resp;
}

Result<uint64_t> Client::Load(std::string_view xml) {
  std::string payload = "LOAD\n";
  payload.append(xml);
  LAZYXML_ASSIGN_OR_RETURN(ParsedResponse resp, CallChecked(payload));
  return DetailField(resp.detail, "SID");
}

Result<uint64_t> Client::Insert(uint64_t gp, std::string_view xml) {
  std::string payload = "INSERT " + std::to_string(gp) + "\n";
  payload.append(xml);
  LAZYXML_ASSIGN_OR_RETURN(ParsedResponse resp, CallChecked(payload));
  return DetailField(resp.detail, "SID");
}

Status Client::Remove(uint64_t gp, uint64_t length) {
  return CallChecked("REMOVE " + std::to_string(gp) + " " +
                     std::to_string(length))
      .status();
}

Status Client::BatchBegin() { return CallChecked("BATCH BEGIN").status(); }

Status Client::BatchAdd(bool insert, uint64_t gp, uint64_t length,
                        std::string_view xml) {
  if (insert) {
    std::string payload = "INSERT " + std::to_string(gp) + "\n";
    payload.append(xml);
    return CallChecked(payload).status();
  }
  return Remove(gp, length);
}

Result<uint64_t> Client::BatchCommit() {
  LAZYXML_ASSIGN_OR_RETURN(ParsedResponse resp, CallChecked("BATCH COMMIT"));
  return DetailField(resp.detail, "APPLIED");
}

Status Client::BatchAbort() { return CallChecked("BATCH ABORT").status(); }

Result<uint64_t> Client::Path(
    std::string_view expr,
    std::vector<std::pair<uint64_t, uint64_t>>* rows_out) {
  LAZYXML_ASSIGN_OR_RETURN(ParsedResponse resp,
                           CallChecked("PATH " + std::string(expr)));
  if (rows_out != nullptr) {
    LAZYXML_RETURN_NOT_OK(ParseRows(resp.body, rows_out));
  }
  return DetailField(resp.detail, "COUNT");
}

Result<uint64_t> Client::Twig(
    std::string_view expr,
    std::vector<std::pair<uint64_t, uint64_t>>* rows_out) {
  LAZYXML_ASSIGN_OR_RETURN(ParsedResponse resp,
                           CallChecked("TWIG " + std::string(expr)));
  if (rows_out != nullptr) {
    LAZYXML_RETURN_NOT_OK(ParseRows(resp.body, rows_out));
  }
  return DetailField(resp.detail, "COUNT");
}

Status Client::Freeze() { return CallChecked("FREEZE").status(); }

Status Client::Compact() { return CallChecked("COMPACT").status(); }

Result<ParsedResponse> Client::Check() { return CallChecked("CHECK"); }

Result<std::string> Client::Metrics(bool json) {
  LAZYXML_ASSIGN_OR_RETURN(
      ParsedResponse resp,
      CallChecked(json ? std::string_view("METRICS JSON")
                       : std::string_view("METRICS TEXT")));
  return std::move(resp.body);
}

Status Client::Quit() {
  Status s = CallChecked("QUIT").status();
  fd_.reset();
  return s;
}

}  // namespace server
}  // namespace lazyxml
