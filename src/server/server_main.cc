// lazyxml_server: the network front door as a binary.
//
//   lazyxml_server --socket /tmp/lazyxml.sock
//   lazyxml_server --tcp 127.0.0.1:7788 --data-dir /var/lib/lazyxml
//                  --sync every-record --threads 4 --mode ld
//
// Runs until SIGINT/SIGTERM, then drains in-flight requests and exits 0.

#include <csignal>
#include <ctime>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "server/engine.h"
#include "server/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "  --socket <path>        listen on a unix-domain socket\n"
               "  --tcp <host:port>      listen on TCP (port 0 = ephemeral)\n"
               "  --data-dir <dir>       durable database directory\n"
               "                         (omitted: in-memory database)\n"
               "  --mode <ld|ls>         lazy-dynamic or lazy-static "
               "(new stores)\n"
               "  --sync <never|every-record|batch>  WAL sync policy\n"
               "  --batch-chunk-ops <n>  split BATCH into n-op chunks so "
               "queries run mid-batch\n"
               "                         (in-memory only; 0 = atomic batch)\n"
               "  --threads <n>          own worker pool of n threads\n"
               "                         (0 = shared process pool)\n"
               "  --max-connections <n>  session cap (default 256)\n"
               "  --force-poll           use poll(2) even where epoll exists\n"
               "  --deadline-query-ms <n>   query budget (0 = none)\n"
               "  --deadline-update-ms <n>  update budget (0 = none)\n"
               "  --deadline-admin-ms <n>   admin budget (0 = none)\n"
               "  --shed-pending <n>     shed above n queued requests "
               "(0 = off)\n"
               "  --shed-bytes <n>       shed above n buffered response "
               "bytes (0 = off)\n"
               "  --idle-timeout-ms <n>  reap idle sessions (0 = never)\n"
               "  --write-stall-ms <n>   drop stalled slow clients "
               "(0 = never)\n"
               "  --drain-ms <n>         shutdown response-flush budget\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lazyxml;
  using namespace lazyxml::server;

  ServerOptions options;
  ServerEngineOptions engine_options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      options.unix_path = need_value("--socket");
    } else if (arg == "--tcp") {
      const std::string hp = need_value("--tcp");
      const size_t colon = hp.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--tcp wants host:port, got '%s'\n", hp.c_str());
        return 2;
      }
      options.tcp = true;
      options.tcp_host = hp.substr(0, colon);
      options.tcp_port =
          static_cast<uint16_t>(std::atoi(hp.c_str() + colon + 1));
    } else if (arg == "--data-dir") {
      engine_options.data_dir = need_value("--data-dir");
    } else if (arg == "--mode") {
      const std::string mode = need_value("--mode");
      if (mode == "ld") {
        engine_options.db.mode = LogMode::kLazyDynamic;
      } else if (mode == "ls") {
        engine_options.db.mode = LogMode::kLazyStatic;
      } else {
        std::fprintf(stderr, "--mode wants ld or ls, got '%s'\n",
                     mode.c_str());
        return 2;
      }
    } else if (arg == "--sync") {
      const std::string sync = need_value("--sync");
      if (sync == "never") {
        engine_options.durable.wal.sync_policy = WalSyncPolicy::kNever;
      } else if (sync == "every-record") {
        engine_options.durable.wal.sync_policy = WalSyncPolicy::kEveryRecord;
      } else if (sync == "batch") {
        engine_options.durable.wal.sync_policy = WalSyncPolicy::kBatchBytes;
      } else {
        std::fprintf(stderr,
                     "--sync wants never|every-record|batch, got '%s'\n",
                     sync.c_str());
        return 2;
      }
    } else if (arg == "--batch-chunk-ops") {
      engine_options.batch_chunk_ops = static_cast<size_t>(
          std::atoll(need_value("--batch-chunk-ops")));
    } else if (arg == "--threads") {
      options.num_threads = static_cast<size_t>(
          std::atoi(need_value("--threads")));
    } else if (arg == "--max-connections") {
      options.max_connections = static_cast<size_t>(
          std::atoi(need_value("--max-connections")));
    } else if (arg == "--force-poll") {
      options.force_poll = true;
    } else if (arg == "--deadline-query-ms") {
      options.deadline.query_ms = static_cast<uint32_t>(
          std::atoi(need_value("--deadline-query-ms")));
    } else if (arg == "--deadline-update-ms") {
      options.deadline.update_ms = static_cast<uint32_t>(
          std::atoi(need_value("--deadline-update-ms")));
    } else if (arg == "--deadline-admin-ms") {
      options.deadline.admin_ms = static_cast<uint32_t>(
          std::atoi(need_value("--deadline-admin-ms")));
    } else if (arg == "--shed-pending") {
      options.shed_pending_requests = static_cast<size_t>(
          std::atoll(need_value("--shed-pending")));
    } else if (arg == "--shed-bytes") {
      options.shed_buffered_bytes = static_cast<size_t>(
          std::atoll(need_value("--shed-bytes")));
    } else if (arg == "--idle-timeout-ms") {
      options.idle_timeout_ms = static_cast<uint32_t>(
          std::atoi(need_value("--idle-timeout-ms")));
    } else if (arg == "--write-stall-ms") {
      options.write_stall_timeout_ms = static_cast<uint32_t>(
          std::atoi(need_value("--write-stall-ms")));
    } else if (arg == "--drain-ms") {
      options.drain_timeout_ms = static_cast<uint32_t>(
          std::atoi(need_value("--drain-ms")));
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  if (options.unix_path.empty() && !options.tcp) {
    std::fprintf(stderr, "need --socket and/or --tcp\n");
    Usage(argv[0]);
    return 2;
  }

  auto engine = ServerEngine::Open(engine_options);
  if (!engine.ok()) {
    LAZYXML_LOG(Error) << "engine open failed: "
                       << engine.status().ToString();
    return 1;
  }

  Server srv(engine.ValueOrDie().get(), options);
  Status s = srv.Start();
  if (!s.ok()) {
    LAZYXML_LOG(Error) << "server start failed: " << s.ToString();
    return 1;
  }
  if (!options.unix_path.empty()) {
    LAZYXML_LOG(Info) << "listening on unix socket " << options.unix_path;
  }
  if (options.tcp) {
    LAZYXML_LOG(Info) << "listening on " << options.tcp_host << ":"
                      << srv.tcp_port();
  }
  LAZYXML_LOG(Info) << (engine.ValueOrDie()->durable()
                            ? "durable database at " + engine_options.data_dir
                            : std::string("in-memory database"));

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_stop == 0) {
    struct timespec ts{0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  LAZYXML_LOG(Info) << "shutting down";
  srv.Stop();
  return 0;
}
