#include "server/wire.h"

#include <cstring>

#include "common/crc32c.h"

namespace lazyxml {
namespace server {

namespace {

void PutU32(std::string* out, uint32_t v) {
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
               static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out->append(b, 4);
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

}  // namespace

Result<std::string> EncodeFrame(FrameType type, std::string_view payload,
                                const WireLimits& limits) {
  if (payload.size() > limits.max_payload_bytes) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(payload.size()) +
        " bytes exceeds the wire cap of " +
        std::to_string(limits.max_payload_bytes));
  }
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&out, kWireMagic);
  out.push_back(static_cast<char>(kWireVersion));
  out.push_back(static_cast<char>(type));
  out.push_back(0);  // flags lo
  out.push_back(0);  // flags hi
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, crc32c::Mask(crc32c::Value(payload)));
  out.append(payload);
  return out;
}

Result<std::optional<Frame>> FrameDecoder::Next() {
  if (!failed_.ok()) return failed_;
  auto fail = [this](Status s) -> Result<std::optional<Frame>> {
    failed_ = std::move(s);
    return failed_;
  };

  if (buffered_bytes() < kFrameHeaderBytes) return std::optional<Frame>();
  const char* h = buf_.data() + pos_;

  // Header validation before any payload is waited for: a corrupt header
  // must not make the decoder buffer an attacker-chosen length.
  if (GetU32(h) != kWireMagic) {
    return fail(Status::Corruption("wire frame: bad magic"));
  }
  const uint8_t version = static_cast<uint8_t>(h[4]);
  if (version != kWireVersion) {
    return fail(Status::NotSupported(
        "wire frame: unsupported version " + std::to_string(version)));
  }
  const uint8_t type = static_cast<uint8_t>(h[5]);
  if (type != static_cast<uint8_t>(FrameType::kRequest) &&
      type != static_cast<uint8_t>(FrameType::kResponse)) {
    return fail(Status::Corruption("wire frame: unknown frame type " +
                                   std::to_string(type)));
  }
  if (h[6] != 0 || h[7] != 0) {
    return fail(Status::Corruption("wire frame: nonzero reserved flags"));
  }
  const uint32_t len = GetU32(h + 8);
  if (len > limits_.max_payload_bytes) {
    return fail(Status::InvalidArgument(
        "wire frame: payload length " + std::to_string(len) +
        " exceeds the cap of " + std::to_string(limits_.max_payload_bytes)));
  }
  if (buffered_bytes() < kFrameHeaderBytes + len) return std::optional<Frame>();

  const char* payload = buf_.data() + pos_ + kFrameHeaderBytes;
  const uint32_t expect = crc32c::Unmask(GetU32(h + 12));
  if (crc32c::Value(payload, len) != expect) {
    return fail(Status::Corruption("wire frame: payload CRC mismatch"));
  }

  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.assign(payload, len);
  pos_ += kFrameHeaderBytes + len;
  // Compact once the consumed prefix dominates, so a long-lived
  // connection does not grow its buffer without bound.
  if (pos_ > 4096 && pos_ * 2 >= buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return std::optional<Frame>(std::move(frame));
}

}  // namespace server
}  // namespace lazyxml
