// lazyxml_client: command-line client for lazyxml_server.
//
//   lazyxml_client --socket /tmp/lazyxml.sock PATH 'person//interest'
//   lazyxml_client --tcp 127.0.0.1:7788 LOAD @doc.xml
//   echo 'METRICS TEXT' | lazyxml_client --socket /tmp/lazyxml.sock -
//
// One invocation = one session. Commands come from the argv tail (one
// command; a body argument starting with '@' reads a file, '-' reads
// stdin) or, with a lone '-', line-by-line from stdin where a trailing
// '\' continues the payload onto a body read until a '.' line — handy
// for scripted sessions (examples/server_session.sh).

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "server/client.h"

namespace {

using lazyxml::Result;
using lazyxml::Status;
using lazyxml::server::Client;
using lazyxml::server::ParsedResponse;

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--socket <path> | --tcp <host:port>) <command...>\n"
               "       %s (--socket <path> | --tcp <host:port>) -\n"
               "  command args are joined with spaces; an argument '@file'\n"
               "  becomes the payload body from that file, '-' the body\n"
               "  from stdin. With a lone '-', commands are read from\n"
               "  stdin one per line ('\\' continues into a body ended by\n"
               "  a '.' line).\n",
               argv0, argv0);
}

/// Sends one payload, prints the response like a REPL would.
/// Returns false when the response was an ERR.
bool RunOne(Client& client, const std::string& payload) {
  Result<ParsedResponse> r = client.Call(payload);
  if (!r.ok()) {
    std::fprintf(stderr, "transport error: %s\n",
                 r.status().ToString().c_str());
    std::exit(1);
  }
  const ParsedResponse& resp = r.ValueOrDie();
  if (resp.ok) {
    std::printf("OK%s%s\n", resp.detail.empty() ? "" : " ",
                resp.detail.c_str());
  } else {
    std::printf("ERR %s %s\n", resp.code.c_str(), resp.detail.c_str());
  }
  if (!resp.body.empty()) {
    std::fwrite(resp.body.data(), 1, resp.body.size(), stdout);
    if (resp.body.back() != '\n') std::printf("\n");
  }
  return resp.ok;
}

Result<std::string> BodyArg(const std::string& arg) {
  if (arg == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    return ss.str();
  }
  return lazyxml::ReadFileToString(arg.substr(1));
}

}  // namespace

int main(int argc, char** argv) {
  std::string unix_path;
  std::string tcp_host;
  uint16_t tcp_port = 0;
  bool use_tcp = false;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      unix_path = argv[++i];
    } else if (arg == "--tcp" && i + 1 < argc) {
      const std::string hp = argv[++i];
      const size_t colon = hp.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--tcp wants host:port\n");
        return 2;
      }
      use_tcp = true;
      tcp_host = hp.substr(0, colon);
      tcp_port = static_cast<uint16_t>(std::atoi(hp.c_str() + colon + 1));
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      break;  // start of the command words
    }
  }
  if ((unix_path.empty() && !use_tcp) || i >= argc) {
    Usage(argv[0]);
    return 2;
  }

  Result<Client> conn =
      use_tcp ? Client::ConnectTcpEndpoint(tcp_host, tcp_port)
              : Client::ConnectUnixEndpoint(unix_path);
  if (!conn.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 conn.status().ToString().c_str());
    return 1;
  }
  Client client = std::move(conn).ValueOrDie();

  if (std::string(argv[i]) == "-" && i == argc - 1) {
    // Scripted session from stdin.
    bool all_ok = true;
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::string payload = line;
      if (!payload.empty() && payload.back() == '\\') {
        payload.pop_back();
        payload.push_back('\n');
        std::string body_line;
        while (std::getline(std::cin, body_line) && body_line != ".") {
          payload.append(body_line);
          payload.push_back('\n');
        }
        if (!payload.empty() && payload.back() == '\n') payload.pop_back();
      }
      if (!RunOne(client, payload)) all_ok = false;
    }
    return all_ok ? 0 : 1;
  }

  // Single command from argv: words joined by spaces, one optional
  // trailing body argument ('@file' or '-').
  std::string payload;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if ((arg.size() > 1 && arg[0] == '@') || (arg == "-" && i == argc - 1)) {
      auto body = BodyArg(arg);
      if (!body.ok()) {
        std::fprintf(stderr, "reading body failed: %s\n",
                     body.status().ToString().c_str());
        return 1;
      }
      payload.push_back('\n');
      payload.append(body.ValueOrDie());
      break;
    }
    if (!payload.empty()) payload.push_back(' ');
    payload.append(arg);
  }
  return RunOne(client, payload) ? 0 : 1;
}
