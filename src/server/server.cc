#include "server/server.h"

#include <poll.h>
#include <sys/socket.h>
#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "common/file_io.h"
#include "obs/metrics.h"
#include "server/engine.h"

namespace lazyxml {
namespace server {

namespace {
constexpr uint64_t kWakeTag = 0;
constexpr uint64_t kTcpTag = 1;
constexpr uint64_t kUnixTag = 2;

using Clock = std::chrono::steady_clock;

int64_t MsUntil(Clock::time_point when, Clock::time_point now) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(when - now)
      .count();
}
}  // namespace

// ---------------------------------------------------------------------------
// Pollers: one interface, an epoll backend (Linux) and a portable poll(2)
// backend. Both are level-triggered — the read/write handlers consume as
// much as the socket offers, so level semantics never spin.

class Server::Poller {
 public:
  struct Event {
    uint64_t tag = 0;
    bool readable = false;
    bool writable = false;
    bool error = false;
  };
  virtual ~Poller() = default;
  virtual Status Add(int fd, uint64_t tag, bool read, bool write) = 0;
  virtual Status Update(int fd, uint64_t tag, bool read, bool write) = 0;
  virtual void Remove(int fd) = 0;
  /// timeout_ms < 0 blocks. EINTR yields an empty event list.
  virtual Result<std::vector<Event>> Wait(int timeout_ms) = 0;
};

class Server::PollPoller : public Server::Poller {
 public:
  Status Add(int fd, uint64_t tag, bool read, bool write) override {
    fds_[fd] = {tag, Mask(read, write)};
    return Status::OK();
  }
  Status Update(int fd, uint64_t tag, bool read, bool write) override {
    fds_[fd] = {tag, Mask(read, write)};
    return Status::OK();
  }
  void Remove(int fd) override { fds_.erase(fd); }

  Result<std::vector<Event>> Wait(int timeout_ms) override {
    std::vector<pollfd> pfds;
    pfds.reserve(fds_.size());
    for (const auto& [fd, reg] : fds_) {
      pfds.push_back(pollfd{fd, reg.second, 0});
    }
    const int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
    std::vector<Event> out;
    if (rc < 0) {
      if (errno == EINTR) return out;
      return Status::IOError("poll: " + std::string(std::strerror(errno)));
    }
    for (const pollfd& p : pfds) {
      if (p.revents == 0) continue;
      auto it = fds_.find(p.fd);
      if (it == fds_.end()) continue;
      Event ev;
      ev.tag = it->second.first;
      ev.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
      ev.writable = (p.revents & POLLOUT) != 0;
      ev.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
      out.push_back(ev);
    }
    return out;
  }

 private:
  static short Mask(bool read, bool write) {
    short m = 0;
    if (read) m |= POLLIN;
    if (write) m |= POLLOUT;
    return m;
  }
  std::map<int, std::pair<uint64_t, short>> fds_;
};

#ifdef __linux__
class Server::EpollPoller : public Server::Poller {
 public:
  static Result<std::unique_ptr<Poller>> Create() {
    int fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (fd < 0) {
      return Status::IOError("epoll_create1: " +
                             std::string(std::strerror(errno)));
    }
    auto p = std::unique_ptr<EpollPoller>(new EpollPoller());
    p->epfd_.reset(fd);
    return std::unique_ptr<Poller>(std::move(p));
  }

  Status Add(int fd, uint64_t tag, bool read, bool write) override {
    return Ctl(EPOLL_CTL_ADD, fd, tag, read, write);
  }
  Status Update(int fd, uint64_t tag, bool read, bool write) override {
    return Ctl(EPOLL_CTL_MOD, fd, tag, read, write);
  }
  void Remove(int fd) override {
    epoll_event ev{};
    (void)::epoll_ctl(epfd_.get(), EPOLL_CTL_DEL, fd, &ev);
  }

  Result<std::vector<Event>> Wait(int timeout_ms) override {
    epoll_event evs[64];
    const int rc = ::epoll_wait(epfd_.get(), evs, 64, timeout_ms);
    std::vector<Event> out;
    if (rc < 0) {
      if (errno == EINTR) return out;
      return Status::IOError("epoll_wait: " +
                             std::string(std::strerror(errno)));
    }
    out.reserve(static_cast<size_t>(rc));
    for (int i = 0; i < rc; ++i) {
      Event ev;
      ev.tag = evs[i].data.u64;
      ev.readable = (evs[i].events & (EPOLLIN | EPOLLHUP | EPOLLRDHUP)) != 0;
      ev.writable = (evs[i].events & EPOLLOUT) != 0;
      ev.error = (evs[i].events & EPOLLERR) != 0;
      out.push_back(ev);
    }
    return out;
  }

 private:
  EpollPoller() = default;
  Status Ctl(int op, int fd, uint64_t tag, bool read, bool write) {
    epoll_event ev{};
    ev.data.u64 = tag;
    if (read) ev.events |= EPOLLIN | EPOLLRDHUP;
    if (write) ev.events |= EPOLLOUT;
    if (::epoll_ctl(epfd_.get(), op, fd, &ev) != 0) {
      return Status::IOError("epoll_ctl: " +
                             std::string(std::strerror(errno)));
    }
    return Status::OK();
  }
  UniqueFd epfd_;
};
#endif  // __linux__

// ---------------------------------------------------------------------------
// Connection

struct Server::Connection {
  Connection(uint64_t id_in, UniqueFd fd_in, const ServerOptions& options)
      : id(id_in),
        fd(std::move(fd_in)),
        session(id_in, options.session),
        decoder(options.wire) {}

  const uint64_t id;
  UniqueFd fd;
  SessionContext session;
  FrameDecoder decoder;

  /// One decoded-but-unanswered request. `arrival` starts the deadline
  /// budget; `shed` marks a request admission control already rejected —
  /// its ERR Unavailable response is emitted at dispatch, in order, so
  /// response/request correlation survives overload.
  struct PendingRequest {
    std::string payload;
    Clock::time_point arrival;
    bool shed = false;
  };

  /// Decoded request payloads not yet dispatched (bounded by
  /// max_pending_requests via read pausing).
  std::deque<PendingRequest> requests;
  /// True while one request of this session runs on the pool.
  bool executing = false;

  std::string out;
  size_t out_pos = 0;

  bool want_close = false;  ///< close once the output buffer drains
  bool dead = false;        ///< fd closed; object reaped when !executing
  bool read_interest = true;
  bool write_interest = false;
  bool paused_for_backpressure = false;

  // Reaper bookkeeping (loop thread only).
  Clock::time_point last_activity{};       ///< bytes read / request done
  Clock::time_point last_write_progress{}; ///< output bytes accepted
  /// Earliest armed heap entry; max() = none. Bounds the heap to one
  /// live entry per connection.
  Clock::time_point armed_deadline = Clock::time_point::max();
};

// ---------------------------------------------------------------------------
// Server

Server::Server(ServerEngine* engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already running");
  }
  if (!options_.tcp && options_.unix_path.empty()) {
    return Status::InvalidArgument(
        "no listener configured (need a TCP address or a unix-socket path)");
  }
  stop_requested_.store(false, std::memory_order_release);
  listeners_closed_ = false;

  auto fail = [this](Status s) {
    tcp_listener_.reset();
    unix_listener_.reset();
    wake_.read_end.reset();
    wake_.write_end.reset();
    poller_.reset();
    return s;
  };

  if (options_.tcp) {
    auto l = ListenTcp(options_.tcp_host, options_.tcp_port);
    if (!l.ok()) return fail(l.status());
    tcp_listener_ = std::move(l).ValueOrDie();
    Status s = SetNonBlocking(tcp_listener_.get());
    if (!s.ok()) return fail(s);
    auto port = LocalPort(tcp_listener_.get());
    if (!port.ok()) return fail(port.status());
    bound_tcp_port_ = port.ValueOrDie();
  }
  if (!options_.unix_path.empty()) {
    auto l = ListenUnix(options_.unix_path);
    if (!l.ok()) return fail(l.status());
    unix_listener_ = std::move(l).ValueOrDie();
    Status s = SetNonBlocking(unix_listener_.get());
    if (!s.ok()) return fail(s);
  }

  auto wp = CreateWakePipe();
  if (!wp.ok()) return fail(wp.status());
  wake_ = std::move(wp).ValueOrDie();

#ifdef __linux__
  if (!options_.force_poll) {
    auto p = EpollPoller::Create();
    if (!p.ok()) return fail(p.status());
    poller_ = std::move(p).ValueOrDie();
  }
#endif
  if (poller_ == nullptr) poller_ = std::make_unique<PollPoller>();

  Status s = poller_->Add(wake_.read_end.get(), kWakeTag, true, false);
  if (s.ok() && tcp_listener_.valid()) {
    s = poller_->Add(tcp_listener_.get(), kTcpTag, true, false);
  }
  if (s.ok() && unix_listener_.valid()) {
    s = poller_->Add(unix_listener_.get(), kUnixTag, true, false);
  }
  if (!s.ok()) return fail(s);

  if (options_.num_threads > 0) {
    owned_pool_ = std::make_unique<ThreadPool>(options_.num_threads);
    pool_ = owned_pool_.get();
  } else {
    pool_ = ThreadPool::Shared();
  }

  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread(&Server::EventLoop, this);
  return Status::OK();
}

void Server::Stop() {
  stop_requested_.store(true, std::memory_order_release);
  if (wake_.write_end.valid()) Wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  // The loop exits only after inflight_ == 0 with the completion queue
  // drained, and a worker's last server access is inside that same
  // critical section — so past this point no pool task can touch us.
  // Draining an owned pool additionally bounds worker lifetime to Stop.
  if (owned_pool_ != nullptr) owned_pool_->WaitIdle();
  connections_.clear();
  poller_.reset();
  tcp_listener_.reset();
  unix_listener_.reset();
  wake_.read_end.reset();
  wake_.write_end.reset();
  if (!options_.unix_path.empty()) {
    (void)RemoveFileIfExists(options_.unix_path);
  }
  owned_pool_.reset();
  pool_ = nullptr;
  active_sessions_.store(0, std::memory_order_release);
  done_.clear();
  inflight_ = 0;
  pending_requests_total_ = 0;
  buffered_out_total_ = 0;
  session_deadlines_ = {};
  listeners_closed_ = false;
  running_.store(false, std::memory_order_release);
}

void Server::CloseListeners() {
  if (listeners_closed_) return;
  listeners_closed_ = true;
  if (tcp_listener_.valid()) {
    poller_->Remove(tcp_listener_.get());
    tcp_listener_.reset();
  }
  if (unix_listener_.valid()) {
    poller_->Remove(unix_listener_.get());
    unix_listener_.reset();
  }
}

void Server::EventLoop() {
  for (;;) {
    ProcessCompletions();
    RunReaper();
    ReapDead();
    if (stop_requested_.load(std::memory_order_acquire)) {
      CloseListeners();
      bool drained;
      {
        std::lock_guard<std::mutex> l(done_mu_);
        drained = inflight_ == 0 && done_.empty();
      }
      if (drained) break;
    }
    int timeout_ms = NextReaperTimeoutMs();
    if (stop_requested_.load(std::memory_order_acquire) &&
        (timeout_ms < 0 || timeout_ms > 20)) {
      timeout_ms = 20;
    }
    auto events = poller_->Wait(timeout_ms);
    if (!events.ok()) break;  // poller broke; drain via the stop path
    for (const Poller::Event& ev : events.ValueOrDie()) {
      if (ev.tag == kWakeTag) {
        DrainWakePipe(wake_.read_end.get());
        continue;
      }
      if (ev.tag == kTcpTag) {
        if (!listeners_closed_) AcceptAll(tcp_listener_.get());
        continue;
      }
      if (ev.tag == kUnixTag) {
        if (!listeners_closed_) AcceptAll(unix_listener_.get());
        continue;
      }
      auto it = connections_.find(ev.tag);
      if (it == connections_.end()) continue;
      Connection* conn = it->second.get();
      if (conn->dead) continue;
      if (ev.error) {
        CloseConnection(conn, /*abrupt=*/true);
        continue;
      }
      if (ev.writable) HandleWritable(conn);
      if (ev.readable && !conn->dead) HandleReadable(conn);
    }
  }
  // Drain path: every in-flight request has been answered into its
  // output buffer by now; give the buffers a bounded window to reach
  // the sockets, then close everything.
  DrainOutputsBeforeExit();
  for (auto& [id, conn] : connections_) {
    if (!conn->dead) {
      CloseConnection(conn.get(), /*abrupt=*/false);
    }
  }
  connections_.clear();
}

void Server::DrainOutputsBeforeExit() {
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options_.drain_timeout_ms);
  for (;;) {
    bool pending = false;
    for (auto& [id, conn] : connections_) {
      if (conn->dead) continue;
      FlushOutput(conn.get());
      if (!conn->dead && conn->out.size() > conn->out_pos) pending = true;
    }
    if (!pending || Clock::now() >= deadline) break;
    // Brief nap instead of re-registering writable interest: shutdown is
    // not a hot path, and the bound above keeps Stop() prompt.
    (void)::poll(nullptr, 0, 2);
  }
}

void Server::AcceptAll(int listen_fd) {
  LAZYXML_METRIC_COUNTER(accepted, "server.connections_accepted");
  LAZYXML_METRIC_COUNTER(rejected, "server.connections_rejected");
  for (;;) {
    auto r = AcceptConnection(listen_fd);
    if (!r.ok()) return;  // listener failure; the loop keeps serving
    UniqueFd fd = std::move(r).ValueOrDie();
    if (!fd.valid()) return;  // no more pending connections

    size_t live = 0;
    for (const auto& [id, c] : connections_) {
      if (!c->dead) ++live;
    }
    if (live >= options_.max_connections) {
      rejected.Increment();
      // A proper error frame, then close: the client sees a clean
      // rejection instead of an unexplained hangup. One best-effort
      // write — the socket is still blocking and the frame is tiny.
      auto frame = EncodeFrame(
          FrameType::kResponse,
          ErrorResponse(Status::InvalidArgument(
              "connection limit reached (" +
              std::to_string(options_.max_connections) + " sessions)")),
          options_.wire);
      if (frame.ok()) {
        const std::string& bytes = frame.ValueOrDie();
        (void)WriteSome(fd.get(), bytes.data(), bytes.size());
      }
      continue;  // fd closes via RAII
    }

    if (!SetNonBlocking(fd.get()).ok()) continue;
    if (options_.socket_send_buffer_bytes > 0) {
      (void)::setsockopt(fd.get(), SOL_SOCKET, SO_SNDBUF,
                         &options_.socket_send_buffer_bytes,
                         sizeof(options_.socket_send_buffer_bytes));
    }
    const uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>(id, std::move(fd), options_);
    if (!poller_->Add(conn->fd.get(), id, true, false).ok()) continue;
    accepted.Increment();
    active_sessions_.fetch_add(1, std::memory_order_acq_rel);
    conn->last_activity = Clock::now();
    conn->last_write_progress = conn->last_activity;
    Connection* raw = conn.get();
    connections_.emplace(id, std::move(conn));
    ArmSessionDeadline(raw);
  }
}

/// Pulls complete frames out of the decoder into the request queue, up
/// to the per-session bound. Returns false on a fatal protocol error
/// (`*error_payload` then holds the ERR response to send before close).
bool Server::DrainDecoder(Connection* conn, std::string* error_payload) {
  LAZYXML_METRIC_COUNTER(shed_total, "server.shed_total");
  while (conn->requests.size() < options_.max_pending_requests) {
    auto fr = conn->decoder.Next();
    if (!fr.ok()) {
      *error_payload = ErrorResponse(fr.status());
      return false;
    }
    if (!fr.ValueOrDie().has_value()) return true;
    Frame frame = std::move(fr.ValueOrDie().value());
    if (frame.type != FrameType::kRequest) {
      *error_payload =
          ErrorResponse(Status::InvalidArgument("expected a request frame"));
      return false;
    }
    Connection::PendingRequest req;
    req.payload = std::move(frame.payload);
    req.arrival = Clock::now();
    // Admission control: over a watermark, the request is marked shed at
    // decode time and answered ERR Unavailable at dispatch time — the
    // response still goes out in arrival order, so clients can correlate
    // it, and the engine never sees the work.
    const bool over_pending =
        options_.shed_pending_requests > 0 &&
        pending_requests_total_ >= options_.shed_pending_requests;
    const bool over_bytes =
        options_.shed_buffered_bytes > 0 &&
        buffered_out_total_ >= options_.shed_buffered_bytes;
    if (over_pending || over_bytes) {
      req.shed = true;
      shed_total.Increment();
      ++conn->session.requests_shed;
    }
    conn->requests.push_back(std::move(req));
    ++pending_requests_total_;
  }
  return true;
}

void Server::HandleReadable(Connection* conn) {
  if (stop_requested_.load(std::memory_order_acquire)) return;
  LAZYXML_METRIC_COUNTER(bytes_read, "server.bytes_read");
  LAZYXML_METRIC_COUNTER(protocol_errors, "server.protocol_errors");
  if (conn->want_close) return;
  std::vector<char> buf(options_.read_chunk_bytes);
  for (;;) {
    // Respect backpressure even mid-read: once the queue or output
    // buffer is at its bound, leave the rest in the kernel.
    if (conn->requests.size() >= options_.max_pending_requests ||
        conn->out.size() - conn->out_pos > options_.max_output_buffer_bytes) {
      break;
    }
    auto r = ReadSome(conn->fd.get(), buf.data(), buf.size());
    if (!r.ok()) {
      CloseConnection(conn, /*abrupt=*/true);
      return;
    }
    const ReadOutcome& ro = r.ValueOrDie();
    if (ro.n > 0) {
      bytes_read.Add(ro.n);
      conn->last_activity = Clock::now();
      conn->decoder.Feed(std::string_view(buf.data(), ro.n));
      std::string error_payload;
      if (!DrainDecoder(conn, &error_payload)) {
        protocol_errors.Increment();
        EnqueueResponse(conn, error_payload);
        conn->want_close = true;
        break;
      }
    }
    if (ro.eof) {
      // Peer is gone. If responses are still buffered this was abrupt;
      // either way nothing more arrives.
      CloseConnection(conn, /*abrupt=*/!conn->want_close);
      return;
    }
    if (ro.would_block) break;
  }
  DispatchNext(conn);
  FlushOutput(conn);
  if (conn->dead) return;
  if (conn->want_close && conn->out.size() == conn->out_pos &&
      !conn->executing) {
    CloseConnection(conn, /*abrupt=*/false);
    return;
  }
  UpdateInterest(conn);
}

void Server::HandleWritable(Connection* conn) {
  FlushOutput(conn);
  if (conn->dead) return;
  if (conn->want_close && conn->out.size() == conn->out_pos &&
      !conn->executing) {
    CloseConnection(conn, /*abrupt=*/false);
    return;
  }
  UpdateInterest(conn);
}

void Server::DispatchNext(Connection* conn) {
  if (conn->executing || conn->dead || conn->want_close) return;
  if (stop_requested_.load(std::memory_order_acquire)) return;

  // Requests admission control already rejected are answered here, in
  // arrival order, without a pool round-trip. Answering sheds can empty
  // the queue while complete frames still sit in the decoder (reading
  // pauses at the queue cap, so no readable event is coming and no
  // worker completion is in flight to pull them) — drain again before
  // concluding there is nothing to do.
  while (true) {
    while (!conn->requests.empty() && conn->requests.front().shed) {
      conn->requests.pop_front();
      --pending_requests_total_;
      EnqueueResponse(
          conn, ErrorResponse(Status::Unavailable(
                    "server overloaded, retry with backoff (pending=" +
                    std::to_string(pending_requests_total_) + " buffered=" +
                    std::to_string(buffered_out_total_) + "B)")));
    }
    if (!conn->requests.empty()) break;
    std::string error_payload;
    if (!DrainDecoder(conn, &error_payload)) {
      LAZYXML_METRIC_COUNTER(protocol_errors, "server.protocol_errors");
      protocol_errors.Increment();
      EnqueueResponse(conn, error_payload);
      conn->want_close = true;
      return;
    }
    if (conn->requests.empty()) return;  // decoder truly dry (or partial)
  }

  std::string payload = std::move(conn->requests.front().payload);
  const Clock::time_point arrival = conn->requests.front().arrival;
  conn->requests.pop_front();
  --pending_requests_total_;
  conn->executing = true;
  {
    std::lock_guard<std::mutex> l(done_mu_);
    ++inflight_;
  }
  // The worker touches only the engine, this session (no other request
  // of the session can run concurrently), and the completion queue. The
  // Connection object outlives the task: it is reaped only when a
  // completion for it has been processed (executing back to false).
  pool_->Submit([this, id = conn->id, session = &conn->session,
                 payload = std::move(payload), arrival]() {
    LAZYXML_METRIC_COUNTER(requests, "server.requests");
    LAZYXML_METRIC_COUNTER(request_errors, "server.request_errors");
    LAZYXML_METRIC_COUNTER(deadline_exceeded,
                           "server.deadline_exceeded_total");
    requests.Increment();
    Completion done;
    done.conn_id = id;
    auto parsed = ParseCommand(payload, options_.command);
    if (!parsed.ok()) {
      request_errors.Increment();
      done.response = ErrorResponse(parsed.status());
    } else {
      // Deadline gate: the budget is per command class and covers queue
      // wait. An expired request dies here — parsed but never executed.
      const DeadlineClass cls = DeadlineClassOf(parsed.ValueOrDie().kind);
      uint32_t budget_ms = 0;
      switch (cls) {
        case DeadlineClass::kQuery: budget_ms = options_.deadline.query_ms; break;
        case DeadlineClass::kUpdate: budget_ms = options_.deadline.update_ms; break;
        case DeadlineClass::kAdmin: budget_ms = options_.deadline.admin_ms; break;
      }
      const int64_t waited_ms = MsUntil(Clock::now(), arrival);
      if (budget_ms > 0 && waited_ms > static_cast<int64_t>(budget_ms)) {
        deadline_exceeded.Increment();
        request_errors.Increment();
        ++session->requests_expired;
        done.response = ErrorResponse(Status::DeadlineExceeded(
            std::string(CommandKindName(parsed.ValueOrDie().kind)) +
            " waited " + std::to_string(waited_ms) + "ms, over the " +
            std::string(DeadlineClassName(cls)) + " budget of " +
            std::to_string(budget_ms) + "ms"));
      } else {
        ExecuteOutcome out = ExecuteCommand(engine_, session,
                                            parsed.ValueOrDie());
        if (out.error) request_errors.Increment();
        done.response = std::move(out.response);
        done.close = out.close;
      }
    }
    {
      // Push, decrement, and wake under one lock: the event loop's exit
      // check (inflight_ == 0 && done_.empty()) can then never pass
      // while this task still has server state to touch.
      std::lock_guard<std::mutex> l(done_mu_);
      done_.push_back(std::move(done));
      --inflight_;
      Wake();
    }
  });
}

void Server::ProcessCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> l(done_mu_);
    batch.swap(done_);
  }
  for (Completion& done : batch) {
    auto it = connections_.find(done.conn_id);
    if (it == connections_.end()) continue;
    Connection* conn = it->second.get();
    conn->executing = false;
    if (conn->dead) continue;  // reaped by ReapDead
    conn->last_activity = Clock::now();
    EnqueueResponse(conn, done.response);
    if (done.close) conn->want_close = true;
    if (!conn->want_close) {
      // The queue may have been full; frames can be waiting inside the
      // decoder even without new socket readability.
      std::string error_payload;
      if (!DrainDecoder(conn, &error_payload)) {
        LAZYXML_METRIC_COUNTER(protocol_errors, "server.protocol_errors");
        protocol_errors.Increment();
        EnqueueResponse(conn, error_payload);
        conn->want_close = true;
      }
      DispatchNext(conn);
    }
    FlushOutput(conn);
    if (conn->dead) continue;
    if (conn->want_close && conn->out.size() == conn->out_pos &&
        !conn->executing) {
      CloseConnection(conn, /*abrupt=*/false);
      continue;
    }
    UpdateInterest(conn);
  }
}

void Server::EnqueueResponse(Connection* conn, std::string_view payload) {
  if (conn->dead) return;
  auto frame = EncodeFrame(FrameType::kResponse, payload, options_.wire);
  if (!frame.ok()) {
    // The payload itself blew the wire cap (huge query result). Tell the
    // client in-band instead of silently dropping the response.
    frame = EncodeFrame(
        FrameType::kResponse,
        ErrorResponse(Status::InvalidArgument(
            "response of " + std::to_string(payload.size()) +
            " bytes exceeds the wire cap; narrow the query or raise "
            "--wire-cap")),
        options_.wire);
    if (!frame.ok()) return;
  }
  if (conn->out.size() == conn->out_pos) {
    // Output transitions empty → pending: the write-stall clock starts
    // now, not at the last time this client drained something.
    conn->last_write_progress = Clock::now();
  }
  conn->out.append(frame.ValueOrDie());
  buffered_out_total_ += frame.ValueOrDie().size();
  ArmSessionDeadline(conn);
}

void Server::FlushOutput(Connection* conn) {
  if (conn->dead) return;
  const size_t remaining = conn->out.size() - conn->out_pos;
  if (remaining == 0) return;
  LAZYXML_METRIC_COUNTER(bytes_written, "server.bytes_written");
  auto w = WriteSome(conn->fd.get(), conn->out.data() + conn->out_pos,
                     remaining);
  if (!w.ok()) {
    CloseConnection(conn, /*abrupt=*/true);
    return;
  }
  bytes_written.Add(w.ValueOrDie().n);
  conn->out_pos += w.ValueOrDie().n;
  buffered_out_total_ -= std::min(buffered_out_total_,
                                  static_cast<size_t>(w.ValueOrDie().n));
  if (w.ValueOrDie().n > 0) conn->last_write_progress = Clock::now();
  if (conn->out_pos == conn->out.size()) {
    conn->out.clear();
    conn->out_pos = 0;
  }
}

void Server::UpdateInterest(Connection* conn) {
  if (conn->dead) return;
  LAZYXML_METRIC_COUNTER(pauses, "server.backpressure_pauses");
  const bool queue_full =
      conn->requests.size() >= options_.max_pending_requests ||
      conn->out.size() - conn->out_pos > options_.max_output_buffer_bytes;
  const bool want_read = !conn->want_close && !queue_full;
  const bool want_write = conn->out.size() > conn->out_pos;
  if (queue_full && !conn->paused_for_backpressure) {
    pauses.Increment();
    conn->paused_for_backpressure = true;
  } else if (!queue_full) {
    conn->paused_for_backpressure = false;
  }
  if (want_read == conn->read_interest && want_write == conn->write_interest) {
    return;
  }
  conn->read_interest = want_read;
  conn->write_interest = want_write;
  (void)poller_->Update(conn->fd.get(), conn->id, want_read, want_write);
}

void Server::CloseConnection(Connection* conn, bool abrupt) {
  if (conn->dead) return;
  LAZYXML_METRIC_COUNTER(closed, "server.connections_closed");
  LAZYXML_METRIC_COUNTER(abrupt_disconnects, "server.disconnects_abrupt");
  LAZYXML_METRIC_COUNTER(batches_discarded, "server.batches_discarded");
  closed.Increment();
  if (abrupt) abrupt_disconnects.Increment();
  if (conn->session.in_batch()) {
    // The pending batch dies with the session — it was never applied,
    // so no sid was burned and the store is untouched (I-SRV-BATCH).
    batches_discarded.Increment();
  }
  poller_->Remove(conn->fd.get());
  conn->fd.reset();
  conn->dead = true;
  pending_requests_total_ -=
      std::min(pending_requests_total_, conn->requests.size());
  buffered_out_total_ -=
      std::min(buffered_out_total_, conn->out.size() - conn->out_pos);
  conn->requests.clear();
  conn->out.clear();
  conn->out_pos = 0;
  active_sessions_.fetch_sub(1, std::memory_order_acq_rel);
}

void Server::ArmSessionDeadline(Connection* conn) {
  if (conn->dead) return;
  auto candidate = Clock::time_point::max();
  if (options_.idle_timeout_ms > 0) {
    candidate = conn->last_activity +
                std::chrono::milliseconds(options_.idle_timeout_ms);
  }
  if (options_.write_stall_timeout_ms > 0 &&
      conn->out.size() > conn->out_pos) {
    candidate = std::min(
        candidate, conn->last_write_progress + std::chrono::milliseconds(
                                                   options_.write_stall_timeout_ms));
  }
  if (candidate == Clock::time_point::max()) return;
  // An earlier live entry already covers this connection; it re-arms on
  // pop. Keeps the heap at ~1 entry per connection.
  if (candidate >= conn->armed_deadline) return;
  conn->armed_deadline = candidate;
  session_deadlines_.push(SessionDeadline{candidate, conn->id});
}

int Server::NextReaperTimeoutMs() const {
  if (session_deadlines_.empty()) return -1;
  int64_t ms = MsUntil(session_deadlines_.top().when, Clock::now());
  if (ms < 0) ms = 0;
  if (ms > 60000) ms = 60000;
  // Round up: waking a hair early would spin on a not-yet-expired top.
  return static_cast<int>(ms) + 1;
}

void Server::RunReaper() {
  if (session_deadlines_.empty()) return;
  LAZYXML_METRIC_COUNTER(reaped_idle, "server.sessions_reaped_idle");
  LAZYXML_METRIC_COUNTER(reaped_slow, "server.sessions_reaped_slow");
  const auto now = Clock::now();
  while (!session_deadlines_.empty() &&
         session_deadlines_.top().when <= now) {
    const SessionDeadline entry = session_deadlines_.top();
    session_deadlines_.pop();
    auto it = connections_.find(entry.conn_id);
    if (it == connections_.end()) continue;
    Connection* conn = it->second.get();
    if (conn->dead) continue;
    if (entry.when != conn->armed_deadline) continue;  // superseded entry
    conn->armed_deadline = Clock::time_point::max();

    if (options_.write_stall_timeout_ms > 0 &&
        conn->out.size() > conn->out_pos &&
        now >= conn->last_write_progress +
                   std::chrono::milliseconds(options_.write_stall_timeout_ms)) {
      // Slow or dead client pinning output memory: nothing to say to it
      // (its receive path is the problem), just cut it loose.
      reaped_slow.Increment();
      CloseConnection(conn, /*abrupt=*/true);
      continue;
    }

    const bool idle_eligible = !conn->executing && conn->requests.empty() &&
                               conn->out.size() == conn->out_pos &&
                               !conn->want_close;
    if (options_.idle_timeout_ms > 0 && idle_eligible &&
        now >= conn->last_activity +
                   std::chrono::milliseconds(options_.idle_timeout_ms)) {
      reaped_idle.Increment();
      // One best-effort goodbye frame: a live-but-quiet client gets a
      // typed, retryable reason instead of a bare FIN.
      auto frame = EncodeFrame(
          FrameType::kResponse,
          ErrorResponse(Status::Unavailable(
              "idle session reaped after " +
              std::to_string(options_.idle_timeout_ms) + "ms (" +
              conn->session.DescribeActivity() + ")")),
          options_.wire);
      if (frame.ok()) {
        (void)WriteSome(conn->fd.get(), frame.ValueOrDie().data(),
                        frame.ValueOrDie().size());
      }
      CloseConnection(conn, /*abrupt=*/false);
      continue;
    }

    // The deadline moved (activity since arming): re-arm at the new one.
    ArmSessionDeadline(conn);
  }
}

void Server::ReapDead() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->second->dead && !it->second->executing) {
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace server
}  // namespace lazyxml
