#include "server/session.h"

#include <string>

namespace lazyxml {
namespace server {

Status SessionContext::BeginBatch() {
  if (in_batch_) {
    return Status::InvalidArgument(
        "BATCH BEGIN while a batch is already open (COMMIT or ABORT first)");
  }
  in_batch_ = true;
  pending_.clear();
  pending_bytes_ = 0;
  return Status::OK();
}

Result<size_t> SessionContext::BufferOp(UpdateOp op) {
  if (!in_batch_) {
    return Status::InvalidArgument("no batch open (BATCH BEGIN first)");
  }
  if (pending_.size() >= limits_.max_batch_ops) {
    return Status::InvalidArgument(
        "batch op cap reached (" + std::to_string(limits_.max_batch_ops) +
        " ops buffered)");
  }
  if (pending_bytes_ + op.text.size() > limits_.max_batch_bytes) {
    return Status::InvalidArgument(
        "batch byte cap reached (" + std::to_string(limits_.max_batch_bytes) +
        " bytes)");
  }
  pending_bytes_ += op.text.size();
  pending_.push_back(std::move(op));
  return pending_.size() - 1;
}

std::vector<UpdateOp> SessionContext::TakeBatch() {
  in_batch_ = false;
  pending_bytes_ = 0;
  return std::move(pending_);
}

size_t SessionContext::AbortBatch() {
  const size_t n = pending_.size();
  in_batch_ = false;
  pending_.clear();
  pending_bytes_ = 0;
  return n;
}

std::string SessionContext::DescribeActivity() const {
  std::string out = "served " + std::to_string(requests_served);
  out += ", shed " + std::to_string(requests_shed);
  out += ", expired " + std::to_string(requests_expired);
  if (in_batch_) {
    out += ", batch open (" + std::to_string(pending_.size()) + " ops)";
  }
  return out;
}

}  // namespace server
}  // namespace lazyxml
