// Wire protocol for the lazyxml server: length-prefixed, CRC-checked
// binary frames carrying text payloads (commands out, responses back).
//
// Frame layout (little-endian, 16-byte header; docs/SERVER.md):
//
//   offset  size  field
//   0       4     magic 0x4C585731 ("LXW1" read as bytes 31 57 58 4C)
//   4       1     version (kWireVersion)
//   5       1     frame type (FrameType: 1 request, 2 response)
//   6       2     flags (reserved, must be zero)
//   8       4     payload length N (capped by WireLimits)
//   12      4     masked CRC32C of the payload (common/crc32c.h masking,
//                 same scheme as the WAL frames)
//   16      N     payload bytes
//
// Decoding applies the ParseOptions resource-guard philosophy: every
// header field is validated before a single payload byte is buffered
// beyond the cap, so a malicious length can never balloon memory, and a
// bit-flipped header or payload is rejected as a *fatal* protocol error
// (the connection is closed — framing can no longer be trusted).

#ifndef LAZYXML_SERVER_WIRE_H_
#define LAZYXML_SERVER_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"

namespace lazyxml {
namespace server {

inline constexpr uint32_t kWireMagic = 0x4C585731;  // "LXW1"
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 16;

/// Who is speaking. A server rejects anything but kRequest; a client
/// rejects anything but kResponse.
enum class FrameType : uint8_t {
  kRequest = 1,
  kResponse = 2,
};

/// Hard resource caps on the framing layer.
struct WireLimits {
  /// Maximum payload bytes per frame. Oversized lengths are rejected
  /// from the header alone, before any payload is read.
  uint32_t max_payload_bytes = 16u << 20;
};

/// Encodes one frame. InvalidArgument when the payload exceeds the cap.
Result<std::string> EncodeFrame(FrameType type, std::string_view payload,
                                const WireLimits& limits = {});

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kRequest;
  std::string payload;
};

/// Incremental frame decoder over an arbitrary byte-chunk stream.
///
/// Feed() buffers bytes; Next() yields complete frames. Three outcomes:
///   OK + frame      a complete, CRC-verified frame;
///   OK + nullopt    need more bytes;
///   error Status    fatal protocol violation (bad magic/version/flags/
///                   type, oversized length, CRC mismatch) — the caller
///                   must drop the connection, resync is impossible.
/// After an error every further Next() returns the same error.
class FrameDecoder {
 public:
  explicit FrameDecoder(WireLimits limits = {}) : limits_(limits) {}

  void Feed(std::string_view bytes) { buf_.append(bytes.data(), bytes.size()); }

  Result<std::optional<Frame>> Next();

  /// Bytes buffered but not yet consumed by a returned frame.
  size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  WireLimits limits_;
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix, compacted as frames complete
  Status failed_;   // sticky fatal error
};

}  // namespace server
}  // namespace lazyxml

#endif  // LAZYXML_SERVER_WIRE_H_
