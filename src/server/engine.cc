#include "server/engine.h"

#include <mutex>
#include <utility>

namespace lazyxml {
namespace server {

Result<std::unique_ptr<ServerEngine>> ServerEngine::Open(
    ServerEngineOptions options) {
  if (options.data_dir.empty()) {
    auto mem = std::make_unique<ConcurrentLazyDatabase>(options.db);
    mem->SetBatchChunkOps(options.batch_chunk_ops);
    return std::unique_ptr<ServerEngine>(new ServerEngine(std::move(mem)));
  }
  options.durable.db = options.db;
  LAZYXML_ASSIGN_OR_RETURN(
      std::unique_ptr<DurableLazyDatabase> dur,
      DurableLazyDatabase::Open(options.data_dir, options.durable));
  // The effective mode comes from the opened database (an existing
  // directory's snapshot wins over the requested options).
  const bool lazy_static =
      dur->database().update_log().mode() == LogMode::kLazyStatic;
  return std::unique_ptr<ServerEngine>(
      new ServerEngine(std::move(dur), lazy_static));
}

Result<SegmentId> ServerEngine::Append(std::string_view text,
                                       uint64_t* gp_out) {
  if (mem_ != nullptr) return mem_->AppendDocument(text, gp_out);
  std::unique_lock lock(dur_mu_);
  const uint64_t gp = dur_->database().update_log().super_document_length();
  auto r = dur_->InsertSegment(text, gp);
  dur_->database().InvalidateScanCache();
  if (r.ok() && gp_out != nullptr) *gp_out = gp;
  return r;
}

Result<SegmentId> ServerEngine::Insert(std::string_view text, uint64_t gp) {
  if (mem_ != nullptr) return mem_->InsertSegment(text, gp);
  std::unique_lock lock(dur_mu_);
  auto r = dur_->InsertSegment(text, gp);
  dur_->database().InvalidateScanCache();
  return r;
}

Status ServerEngine::Remove(uint64_t gp, uint64_t length) {
  if (mem_ != nullptr) return mem_->RemoveSegment(gp, length);
  std::unique_lock lock(dur_mu_);
  Status s = dur_->RemoveSegment(gp, length);
  dur_->database().InvalidateScanCache();
  return s;
}

Status ServerEngine::ApplyBatch(std::span<const UpdateOp> ops,
                                BatchStats* stats_out) {
  if (mem_ != nullptr) return mem_->ApplyBatch(ops, stats_out);
  std::unique_lock lock(dur_mu_);
  Status s = dur_->ApplyBatch(ops, stats_out);
  dur_->database().InvalidateScanCache();
  return s;
}

Status ServerEngine::Compact() {
  if (mem_ != nullptr) return mem_->CompactAll();
  std::unique_lock lock(dur_mu_);
  Status s = dur_->CompactAll();
  dur_->database().InvalidateScanCache();
  return s;
}

Status ServerEngine::Freeze() {
  if (mem_ != nullptr) {
    mem_->Freeze();
    return Status::OK();
  }
  std::unique_lock lock(dur_mu_);
  return dur_->Freeze();
}

Result<PathQueryResult> ServerEngine::Path(std::string_view expr) {
  if (mem_ != nullptr) return mem_->Path(expr);
  if (dur_lazy_static_) {
    // An LS query freezes (and journals the freeze point) — exclusive.
    std::unique_lock lock(dur_mu_);
    LAZYXML_RETURN_NOT_OK(dur_->Freeze());
    return EvaluatePath(&dur_->database(), expr);
  }
  std::shared_lock lock(dur_mu_);
  return EvaluatePath(&dur_->database(), expr);
}

Result<TwigQueryResult> ServerEngine::Twig(std::string_view expr) {
  if (mem_ != nullptr) return mem_->Twig(expr);
  if (dur_lazy_static_) {
    std::unique_lock lock(dur_mu_);
    LAZYXML_RETURN_NOT_OK(dur_->Freeze());
    return EvaluateTwig(&dur_->database(), expr);
  }
  std::shared_lock lock(dur_mu_);
  return EvaluateTwig(&dur_->database(), expr);
}

Result<XPathResult> ServerEngine::Xpath(std::string_view expr) {
  if (mem_ != nullptr) return mem_->Xpath(expr);
  if (dur_lazy_static_) {
    std::unique_lock lock(dur_mu_);
    LAZYXML_RETURN_NOT_OK(dur_->Freeze());
    return EvaluateXPath(&dur_->database(), expr);
  }
  std::shared_lock lock(dur_mu_);
  return EvaluateXPath(&dur_->database(), expr);
}

Result<check::CheckReport> ServerEngine::Check() {
  check::Checker checker;
  if (mem_ != nullptr) {
    return mem_->WithExclusive(
        [&checker](LazyDatabase& db) { return checker.Check(db); });
  }
  std::unique_lock lock(dur_mu_);
  return checker.Check(*dur_);
}

LazyDatabaseStats ServerEngine::Stats() {
  if (mem_ != nullptr) return mem_->Stats();
  std::shared_lock lock(dur_mu_);
  return dur_->database().Stats();
}

}  // namespace server
}  // namespace lazyxml
