#include "common/status.h"

namespace lazyxml {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return Status();
  Status s;
  s.state_.reset(new State{code(), std::string(context) + ": " + message()});
  return s;
}

}  // namespace lazyxml
