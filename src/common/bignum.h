// Arbitrary-precision unsigned integers.
//
// Substrate for the PRIME labeling baseline (Wu/Lee/Hsu, ICDE 2004): node
// labels are products of primes along the root path and the order table
// stores simultaneous-congruence (CRT) values, both of which overflow
// machine words almost immediately. Only the operations PRIME needs are
// provided; this is not a general bignum library.

#ifndef LAZYXML_COMMON_BIGNUM_H_
#define LAZYXML_COMMON_BIGNUM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace lazyxml {

/// Unsigned big integer in base 2^32 (little-endian limbs, no leading zero
/// limb except for the value zero which has no limbs).
class BigUint {
 public:
  /// Zero.
  BigUint() = default;

  /// From a machine word.
  explicit BigUint(uint64_t v);

  /// Parses a decimal string ("123456..."). Fails on empty input or
  /// non-digit characters.
  static Result<BigUint> FromDecimalString(std::string_view s);

  /// Decimal rendering; "0" for zero.
  std::string ToDecimalString() const;

  /// True iff the value is zero.
  bool IsZero() const { return limbs_.empty(); }

  /// Number of significant bits (0 for zero).
  size_t BitLength() const;

  /// The low 64 bits (truncating). Mostly for tests.
  uint64_t Low64() const;

  /// True iff the value fits in 64 bits.
  bool FitsUint64() const { return limbs_.size() <= 2; }

  // -- Arithmetic -----------------------------------------------------------

  BigUint operator+(const BigUint& other) const;

  /// Subtraction; requires *this >= other (checked, aborts otherwise —
  /// negative values cannot arise in PRIME).
  BigUint operator-(const BigUint& other) const;

  BigUint operator*(const BigUint& other) const;

  /// Multiplication by a machine word.
  BigUint MulSmall(uint64_t m) const;

  /// Quotient and remainder; `divisor` must be nonzero.
  static Result<std::pair<BigUint, BigUint>> DivMod(const BigUint& dividend,
                                                    const BigUint& divisor);

  /// Remainder modulo a machine word; `m` must be nonzero.
  Result<uint64_t> ModSmall(uint64_t m) const;

  /// True iff `divisor` (nonzero) divides *this exactly. The PRIME
  /// ancestor test: label(desc) divisible by label(anc).
  Result<bool> DivisibleBy(const BigUint& divisor) const;

  // -- Comparisons ----------------------------------------------------------

  int Compare(const BigUint& other) const;
  bool operator==(const BigUint& other) const { return Compare(other) == 0; }
  bool operator!=(const BigUint& other) const { return Compare(other) != 0; }
  bool operator<(const BigUint& other) const { return Compare(other) < 0; }
  bool operator<=(const BigUint& other) const { return Compare(other) <= 0; }
  bool operator>(const BigUint& other) const { return Compare(other) > 0; }
  bool operator>=(const BigUint& other) const { return Compare(other) >= 0; }

  /// Approximate heap footprint, for the space experiments.
  size_t MemoryBytes() const { return limbs_.capacity() * sizeof(uint32_t); }

 private:
  void Trim();
  BigUint ShiftLeftBits(size_t bits) const;

  std::vector<uint32_t> limbs_;
};

/// Solves the simultaneous congruences x ≡ residues[i] (mod primes[i]) for
/// pairwise-distinct primes, returning the unique x in [0, Π primes).
/// This is the "simultaneous congruence value" PRIME recomputes on insert.
Result<BigUint> CrtSolve(const std::vector<uint64_t>& primes,
                         const std::vector<uint64_t>& residues);

/// Modular inverse of a mod m (m prime or gcd(a,m)==1); fails if the
/// inverse does not exist.
Result<uint64_t> ModInverse(uint64_t a, uint64_t m);

/// (a * b) mod m without overflow for 64-bit operands.
uint64_t MulMod64(uint64_t a, uint64_t b, uint64_t m);

}  // namespace lazyxml

#endif  // LAZYXML_COMMON_BIGNUM_H_
