#include "common/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace lazyxml {

namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

// Failures meaning "the peer is gone / refusing" rather than "this host's
// I/O stack broke" are Unavailable: a retry against a restarted or
// less-loaded server can legitimately succeed.
Status PeerErrno(const char* what) {
  if (errno == ECONNRESET || errno == EPIPE || errno == ECONNREFUSED ||
      errno == ECONNABORTED || errno == ENOTCONN || errno == ETIMEDOUT) {
    return Status::Unavailable(std::string(what) + ": " +
                               std::strerror(errno));
  }
  return Errno(what);
}

Result<UniqueFd> NewSocket(int domain) {
  int fd = ::socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  return UniqueFd(fd);
}

Result<sockaddr_in> TcpAddress(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  return addr;
}

Result<sockaddr_un> UnixAddress(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        "unix socket path empty or longer than sockaddr_un allows: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

void UniqueFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Result<UniqueFd> ListenTcp(const std::string& host, uint16_t port,
                           int backlog) {
  LAZYXML_ASSIGN_OR_RETURN(sockaddr_in addr, TcpAddress(host, port));
  LAZYXML_ASSIGN_OR_RETURN(UniqueFd fd, NewSocket(AF_INET));
  int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (::listen(fd.get(), backlog) != 0) return Errno("listen");
  return fd;
}

Result<UniqueFd> ListenUnix(const std::string& path, int backlog) {
  LAZYXML_ASSIGN_OR_RETURN(sockaddr_un addr, UnixAddress(path));
  // A stale socket file from a crashed server blocks bind; nothing else
  // legitimately lives at a configured socket path.
  (void)::unlink(path.c_str());
  LAZYXML_ASSIGN_OR_RETURN(UniqueFd fd, NewSocket(AF_UNIX));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (::listen(fd.get(), backlog) != 0) return Errno("listen");
  return fd;
}

Result<UniqueFd> ConnectTcp(const std::string& host, uint16_t port) {
  LAZYXML_ASSIGN_OR_RETURN(sockaddr_in addr, TcpAddress(host, port));
  LAZYXML_ASSIGN_OR_RETURN(UniqueFd fd, NewSocket(AF_INET));
  int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Errno("connect");
  return fd;
}

Result<UniqueFd> ConnectUnix(const std::string& path) {
  LAZYXML_ASSIGN_OR_RETURN(sockaddr_un addr, UnixAddress(path));
  LAZYXML_ASSIGN_OR_RETURN(UniqueFd fd, NewSocket(AF_UNIX));
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Errno("connect");
  return fd;
}

namespace {

// Finishes a non-blocking connect under a deadline: poll for
// writability, then read SO_ERROR for the actual verdict.
Result<UniqueFd> FinishTimedConnect(UniqueFd fd, int rc, int timeout_ms) {
  if (rc != 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      return PeerErrno("connect");
    }
    LAZYXML_ASSIGN_OR_RETURN(bool ready,
                             WaitWritable(fd.get(), timeout_ms));
    if (!ready) return Status::DeadlineExceeded("connect timed out");
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      return Errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      errno = err;
      return PeerErrno("connect");
    }
  }
  return fd;
}

}  // namespace

Result<UniqueFd> ConnectTcpTimed(const std::string& host, uint16_t port,
                                 int timeout_ms) {
  LAZYXML_ASSIGN_OR_RETURN(sockaddr_in addr, TcpAddress(host, port));
  LAZYXML_ASSIGN_OR_RETURN(UniqueFd fd, NewSocket(AF_INET));
  int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  LAZYXML_RETURN_NOT_OK(SetNonBlocking(fd.get()));
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  return FinishTimedConnect(std::move(fd), rc, timeout_ms);
}

Result<UniqueFd> ConnectUnixTimed(const std::string& path, int timeout_ms) {
  LAZYXML_ASSIGN_OR_RETURN(sockaddr_un addr, UnixAddress(path));
  LAZYXML_ASSIGN_OR_RETURN(UniqueFd fd, NewSocket(AF_UNIX));
  LAZYXML_RETURN_NOT_OK(SetNonBlocking(fd.get()));
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  return FinishTimedConnect(std::move(fd), rc, timeout_ms);
}

Result<UniqueFd> AcceptConnection(int listen_fd) {
  for (;;) {
    int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) {
      int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return UniqueFd(fd);
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return UniqueFd();
    // ECONNABORTED: the peer gave up between connect and accept — not a
    // listener failure, just nothing to hand out.
    if (errno == ECONNABORTED) return UniqueFd();
    return Errno("accept");
  }
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::OK();
}

Status SetBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK) != 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::OK();
}

namespace {

// poll(2) for `events` with EINTR retried against the remaining budget.
// POLLERR/POLLHUP count as ready: the follow-up read/write surfaces the
// real error (or eof), which is what callers want to observe.
Result<bool> WaitFor(int fd, short events, int timeout_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms > 0 ? timeout_ms : 0);
  for (;;) {
    int budget = -1;
    if (timeout_ms > 0) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - std::chrono::steady_clock::now())
                      .count();
      budget = left > 0 ? static_cast<int>(left) : 0;
    }
    pollfd pfd{fd, events, 0};
    int rc = ::poll(&pfd, 1, budget);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    return Errno("poll");
  }
}

}  // namespace

Result<bool> WaitReadable(int fd, int timeout_ms) {
  return WaitFor(fd, POLLIN, timeout_ms);
}

Result<bool> WaitWritable(int fd, int timeout_ms) {
  return WaitFor(fd, POLLOUT, timeout_ms);
}

Result<ReadOutcome> ReadSome(int fd, char* buf, size_t cap) {
  ReadOutcome out;
  for (;;) {
    ssize_t n = ::read(fd, buf, cap);
    if (n > 0) {
      out.n = static_cast<size_t>(n);
      return out;
    }
    if (n == 0) {
      out.eof = true;
      return out;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      out.would_block = true;
      return out;
    }
    return PeerErrno("read");
  }
}

Result<WriteOutcome> WriteSome(int fd, const char* buf, size_t len) {
  WriteOutcome out;
  while (out.n < len) {
    ssize_t n = ::send(fd, buf + out.n, len - out.n, MSG_NOSIGNAL);
    if (n > 0) {
      out.n += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      out.would_block = true;
      return out;
    }
    return PeerErrno("send");
  }
  return out;
}

Result<WakePipe> CreateWakePipe() {
  int fds[2];
  if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) != 0) return Errno("pipe2");
  WakePipe p;
  p.read_end.reset(fds[0]);
  p.write_end.reset(fds[1]);
  return p;
}

void PokeWakePipe(int write_fd) {
  char b = 1;
  // EAGAIN means the pipe already holds unread wake bytes — the loop
  // will wake; any other failure is ignorable for a pure wakeup.
  (void)!::write(write_fd, &b, 1);
}

void DrainWakePipe(int read_fd) {
  char buf[256];
  while (::read(read_fd, buf, sizeof(buf)) > 0) {
  }
}

}  // namespace lazyxml
