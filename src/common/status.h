// Status: error propagation without exceptions, in the style of
// RocksDB/Arrow. Library code returns Status (or Result<T>) instead of
// throwing; callers chain with LAZYXML_RETURN_NOT_OK.

#ifndef LAZYXML_COMMON_STATUS_H_
#define LAZYXML_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace lazyxml {

/// Machine-readable category of a failure.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller passed something malformed.
  kNotFound = 2,          ///< Key / segment / tag does not exist.
  kAlreadyExists = 3,     ///< Duplicate insertion.
  kOutOfRange = 4,        ///< Position outside the super document.
  kCorruption = 5,        ///< Internal invariant violated / bad input data.
  kNotSupported = 6,      ///< Feature intentionally unimplemented.
  kParseError = 7,        ///< XML text is not well formed.
  kInternal = 8,          ///< Bug in this library.
  kIOError = 9,           ///< Filesystem / device failure (durability layer).
  kDeadlineExceeded = 10, ///< A time budget ran out before the work started
                          ///< or finished (server request deadlines, client
                          ///< I/O timeouts). Retryable.
  kUnavailable = 11,      ///< The peer exists but cannot serve right now:
                          ///< overload shedding, a reset/closed connection.
                          ///< Retryable (see docs/SERVER.md "Error taxonomy").
};

/// Returns a stable human-readable name ("InvalidArgument", ...) for a code.
std::string_view StatusCodeToString(StatusCode code);

/// An OK-or-error value. Cheap to pass around: the OK state carries no
/// allocation; error states carry a small heap payload with code + message.
///
/// Typical use:
/// \code
///   Status s = index.Insert(rec);
///   if (!s.ok()) return s;
/// \endcode
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(const Status& other)
      : state_(other.state_ ? new State(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      state_.reset(other.state_ ? new State(*other.state_) : nullptr);
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Constructs an OK status (explicit spelling).
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return state_ == nullptr; }

  /// The status code; kOk when ok().
  StatusCode code() const {
    return state_ ? state_->code : StatusCode::kOk;
  }

  /// The error message; empty when ok().
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Prepends context ("while inserting segment 7: ...") to the message.
  /// OK statuses stay OK.
  Status WithContext(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };

  Status(StatusCode code, std::string msg)
      : state_(new State{code, std::move(msg)}) {}

  std::unique_ptr<State> state_;  // nullptr means OK.
};

}  // namespace lazyxml

/// Propagates a non-OK Status from the current function.
#define LAZYXML_RETURN_NOT_OK(expr)                 \
  do {                                              \
    ::lazyxml::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                      \
  } while (false)

/// Returns Status::Internal if `cond` is false. For internal invariants.
#define LAZYXML_CHECK_OR_INTERNAL(cond, msg)        \
  do {                                              \
    if (!(cond)) return ::lazyxml::Status::Internal(msg); \
  } while (false)

#endif  // LAZYXML_COMMON_STATUS_H_
