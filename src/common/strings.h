// Small string helpers shared across modules. Deliberately minimal: only
// what the library actually needs (no kitchen-sink StringUtil).

#ifndef LAZYXML_COMMON_STRINGS_H_
#define LAZYXML_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lazyxml {

/// Joins `parts` with `sep`: Join({"0","1","2"}, ".") == "0.1.2".
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Joins integer ids with `sep`: JoinIds({0,1,2}, ".") == "0.1.2".
std::string JoinIds(const std::vector<uint64_t>& ids, std::string_view sep);

/// Splits on a single character; empty input yields an empty vector.
std::vector<std::string_view> Split(std::string_view s, char sep);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True iff `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Human-readable byte count: "12.3 KB", "1.8 MB".
std::string HumanBytes(uint64_t bytes);

/// Escapes XML-special characters (& < > " ') in character content.
std::string XmlEscape(std::string_view s);

}  // namespace lazyxml

#endif  // LAZYXML_COMMON_STRINGS_H_
