#include "common/random.h"

#include <cmath>

namespace lazyxml {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: used only to expand the user seed into the 128-bit state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  s0_ = SplitMix64(&sm);
  s1_ = SplitMix64(&sm);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;  // All-zero state is a fixed point.
}

uint64_t Random::Next() {
  const uint64_t a = s0_;
  uint64_t b = s1_;
  const uint64_t result = Rotl(a + b, 17) + a;
  b ^= a;
  s0_ = Rotl(a, 49) ^ b ^ (b << 21);
  s1_ = Rotl(b, 28);
  return result;
}

uint64_t Random::Uniform(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Random::UniformRange(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Random::Zipf(uint64_t n, double theta) {
  if (n <= 1) return 0;
  // Inverse-CDF on the (approximate) continuous Zipf distribution; accurate
  // enough for workload skew and avoids precomputing n harmonic terms.
  const double alpha = 1.0 - theta;
  const double zeta_n = (std::pow(static_cast<double>(n), alpha) - 1.0) / alpha;
  const double u = NextDouble();
  const double x = std::pow(u * alpha * zeta_n + 1.0, 1.0 / alpha) - 1.0;
  uint64_t rank = static_cast<uint64_t>(x);
  if (rank >= n) rank = n - 1;
  return rank;
}

}  // namespace lazyxml
