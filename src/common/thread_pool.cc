#include "common/thread_pool.h"

#include <algorithm>

#include "obs/metrics.h"

namespace lazyxml {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> l(wake_mu_);
    stop_.store(true, std::memory_order_release);
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

size_t ThreadPool::DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

namespace {
std::atomic<ThreadPool*> g_shared_override{nullptr};
}  // namespace

ThreadPool* ThreadPool::Shared() {
  if (ThreadPool* o = g_shared_override.load(std::memory_order_acquire)) {
    return o;
  }
  // Leaked on purpose: joining workers from a static destructor races
  // with other static teardown; the OS reclaims the threads at exit.
  static ThreadPool* const shared = new ThreadPool(DefaultThreadCount());
  return shared;
}

void ThreadPool::SetSharedForTesting(ThreadPool* pool) {
  g_shared_override.store(pool, std::memory_order_release);
}

void ThreadPool::Submit(std::function<void()> fn) {
  const size_t i =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  {
    std::lock_guard<std::mutex> l(workers_[i]->mu);
    workers_[i]->deque.push_back(std::move(fn));
  }
  {
    // Increment under wake_mu_: a worker that just evaluated the wait
    // predicate false is already blocked when we get the lock, so the
    // notify below cannot be lost between its check and its sleep.
    std::lock_guard<std::mutex> l(wake_mu_);
    pending_.fetch_add(1, std::memory_order_release);
  }
  wake_cv_.notify_one();
}

bool ThreadPool::TryRunOneTask(size_t self) {
  LAZYXML_METRIC_COUNTER(tasks_counter, "thread_pool.tasks_run");
  LAZYXML_METRIC_COUNTER(steals_counter, "thread_pool.steals");
  std::function<void()> task;
  // Own deque first, newest task (LIFO keeps the working set warm).
  {
    Worker& w = *workers_[self];
    std::lock_guard<std::mutex> l(w.mu);
    if (!w.deque.empty()) {
      task = std::move(w.deque.back());
      w.deque.pop_back();
    }
  }
  // Steal a victim's *oldest* task (FIFO: big, early-submitted work moves
  // first, the standard stealing discipline).
  if (!task) {
    for (size_t k = 1; k < workers_.size() && !task; ++k) {
      Worker& v = *workers_[(self + k) % workers_.size()];
      std::lock_guard<std::mutex> l(v.mu);
      if (!v.deque.empty()) {
        task = std::move(v.deque.front());
        v.deque.pop_front();
        steals_counter.Increment();
      }
    }
  }
  if (!task) return false;
  tasks_counter.Increment();
  // pending_ counts *unclaimed* tasks (it only gates worker sleep);
  // decrementing before running avoids a shutdown busy-spin where idle
  // workers see pending > 0 for a task already running elsewhere. The
  // active_ increment comes first so WaitIdle never observes both zero
  // while this task is live.
  active_.fetch_add(1, std::memory_order_acq_rel);
  pending_.fetch_sub(1, std::memory_order_release);
  task();
  if (active_.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
      pending_.load(std::memory_order_acquire) == 0) {
    std::lock_guard<std::mutex> l(wake_mu_);
    idle_cv_.notify_all();
  }
  return true;
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> l(wake_mu_);
  idle_cv_.wait(l, [this] {
    return pending_.load(std::memory_order_acquire) == 0 &&
           active_.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::WorkerLoop(size_t self) {
  for (;;) {
    if (TryRunOneTask(self)) continue;
    std::unique_lock<std::mutex> l(wake_mu_);
    wake_cv_.wait(l, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  LAZYXML_METRIC_COUNTER(pfor_counter, "thread_pool.parallel_fors");
  LAZYXML_METRIC_COUNTER(pfor_items_counter, "thread_pool.parallel_for_items");
  pfor_counter.Increment();
  pfor_items_counter.Add(n);
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  struct Batch {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto batch = std::make_shared<Batch>();
  auto drain = [batch, n, &fn] {
    for (;;) {
      const size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      fn(i);
      if (batch->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> l(batch->mu);
        batch->cv.notify_all();
      }
    }
  };
  // One runner per worker is enough: each runner drains the shared
  // counter. The caller is the (num_threads+1)-th runner — it always
  // participates, so ParallelFor completes even on a saturated pool.
  const size_t runners = std::min(n - 1, num_threads());
  for (size_t r = 0; r < runners; ++r) {
    // The std::function copy captures the batch keep-alive but must not
    // capture `fn` by reference past return — runners that lose the race
    // for iterations exit immediately, and the caller only returns once
    // done == n, at which point no runner can touch `fn` again: a runner
    // either claimed an index < n before (and bumped done after fn), or
    // sees next >= n and never dereferences fn.
    Submit([drain] { drain(); });
  }
  drain();
  if (batch->done.load(std::memory_order_acquire) != n) {
    std::unique_lock<std::mutex> l(batch->mu);
    batch->cv.wait(l, [&] {
      return batch->done.load(std::memory_order_acquire) == n;
    });
  }
}

}  // namespace lazyxml
