// TicketSharedMutex: a writer-priority reader/writer lock with a FIFO
// ticket gate for writers. std::shared_mutex implementations are allowed
// to prefer readers, so a sustained stream of overlapping readers can
// starve writers indefinitely (the liveness hazard previously documented
// in core/concurrent_database.h). Here a writer takes a ticket on
// arrival; from that moment new readers wait, so the writer gets in as
// soon as in-flight readers drain, and writers proceed in arrival order.
// Sustained writers can conversely hold readers out — the right bias for
// an update log, where updates are short and queries are the long tail.
//
// Satisfies SharedLockable, so std::shared_lock / std::unique_lock work.

#ifndef LAZYXML_COMMON_TICKET_RWLOCK_H_
#define LAZYXML_COMMON_TICKET_RWLOCK_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace lazyxml {

class TicketSharedMutex {
 public:
  TicketSharedMutex() = default;
  TicketSharedMutex(const TicketSharedMutex&) = delete;
  TicketSharedMutex& operator=(const TicketSharedMutex&) = delete;

  // -- Exclusive (writer) ------------------------------------------------------

  void lock() {
    std::unique_lock<std::mutex> l(mu_);
    const uint64_t ticket = next_writer_ticket_++;
    cv_.wait(l, [&] {
      return ticket == writer_serving_ && readers_ == 0 && !writer_active_;
    });
    writer_active_ = true;
  }

  bool try_lock() {
    std::unique_lock<std::mutex> l(mu_);
    if (readers_ != 0 || writer_active_ ||
        next_writer_ticket_ != writer_serving_) {
      return false;
    }
    ++next_writer_ticket_;
    writer_active_ = true;
    return true;
  }

  void unlock() {
    std::unique_lock<std::mutex> l(mu_);
    writer_active_ = false;
    ++writer_serving_;
    cv_.notify_all();
  }

  // -- Shared (reader) ---------------------------------------------------------

  void lock_shared() {
    std::unique_lock<std::mutex> l(mu_);
    // Wait while a writer is active *or pending*: pending writers close
    // the gate to new readers (that is the fairness fix).
    cv_.wait(l, [&] {
      return !writer_active_ && next_writer_ticket_ == writer_serving_;
    });
    ++readers_;
  }

  bool try_lock_shared() {
    std::unique_lock<std::mutex> l(mu_);
    if (writer_active_ || next_writer_ticket_ != writer_serving_) {
      return false;
    }
    ++readers_;
    return true;
  }

  void unlock_shared() {
    std::unique_lock<std::mutex> l(mu_);
    if (--readers_ == 0) cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  uint64_t next_writer_ticket_ = 0;  // next ticket to hand to a writer
  uint64_t writer_serving_ = 0;      // ticket currently admitted
  uint64_t readers_ = 0;             // active shared holders
  bool writer_active_ = false;
};

}  // namespace lazyxml

#endif  // LAZYXML_COMMON_TICKET_RWLOCK_H_
