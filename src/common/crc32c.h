// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum guarding WAL record frames (storage/) — chosen over plain
// CRC32 for its better error-detection properties and because it is what
// LevelDB/RocksDB-style logs use, so the framing is familiar. Uses the
// SSE4.2 crc32 instruction when the compiler targets it, else a
// slicing-by-4 table implementation.

#ifndef LAZYXML_COMMON_CRC32C_H_
#define LAZYXML_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace lazyxml {
namespace crc32c {

/// Extends `crc` (the checksum of some prior bytes) with `data[0,n)`.
uint32_t Extend(uint32_t crc, const void* data, size_t n);

/// Checksum of `data[0,n)`.
inline uint32_t Value(const void* data, size_t n) {
  return Extend(0, data, n);
}

inline uint32_t Value(std::string_view s) { return Value(s.data(), s.size()); }

/// A CRC stored right next to the bytes it covers would checksum to a
/// fixed point if the data were itself a string of CRCs (and an
/// all-zeroes frame would carry a valid zero CRC in some schemes).
/// Masking (rotate + constant, as in LevelDB) breaks both: stored CRCs
/// are always masked.
inline constexpr uint32_t kMaskDelta = 0xa282ead8u;

inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

inline uint32_t Unmask(uint32_t masked) {
  const uint32_t rot = masked - kMaskDelta;
  return (rot >> 17) | (rot << 15);
}

}  // namespace crc32c
}  // namespace lazyxml

#endif  // LAZYXML_COMMON_CRC32C_H_
