#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace lazyxml {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string JoinIds(const std::vector<uint64_t>& ids, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(std::to_string(ids[i]));
  }
  return out;
}

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  if (s.empty()) return out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string StringPrintf(const char* format, ...) {
  va_list ap;
  va_start(ap, format);
  va_list ap_copy;
  va_copy(ap_copy, ap);
  const int needed = std::vsnprintf(nullptr, 0, format, ap);
  va_end(ap);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, ap_copy);
  }
  va_end(ap_copy);
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  if (u == 0) return StringPrintf("%llu B", static_cast<unsigned long long>(bytes));
  return StringPrintf("%.1f %s", v, units[u]);
}

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace lazyxml
