// Bounds-checked binary encoding helpers for snapshot files: fixed-width
// little-endian integers and length-prefixed byte strings. Readers return
// Status on truncation/corruption instead of reading garbage.

#ifndef LAZYXML_COMMON_SERIAL_H_
#define LAZYXML_COMMON_SERIAL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace lazyxml {

/// Appends binary fields to an owned buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Adopts `reuse`'s allocation as the output buffer (cleared first).
  /// Encode-into-member-buffer paths use this to stay allocation-free
  /// across calls: TakeBuffer() the result back into the same string.
  explicit ByteWriter(std::string reuse) : buf_(std::move(reuse)) {
    buf_.clear();
  }

  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// Length-prefixed (u64) byte string.
  void PutString(std::string_view s);

  const std::string& buffer() const { return buf_; }
  std::string TakeBuffer() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Reads binary fields from a view; every read is bounds-checked.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  /// Length-prefixed byte string (copies out).
  Result<std::string> GetString();

  /// Bytes not yet consumed.
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Need(size_t n) const;

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace lazyxml

#endif  // LAZYXML_COMMON_SERIAL_H_
