// POSIX socket helpers with Status error reporting, for the network
// server (src/server/). Mirrors the file_io.h philosophy: thin RAII over
// raw descriptors, every failure surfaced as a Status instead of errno
// spelunking at call sites. Error taxonomy: address problems are
// InvalidArgument, everything else the OS refuses is IOError.
//
// All sockets are created close-on-exec. Listener and connection
// descriptors used by the event loop are switched to non-blocking by the
// caller (SetNonBlocking); the client library keeps its socket blocking.

#ifndef LAZYXML_COMMON_SOCKET_H_
#define LAZYXML_COMMON_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "common/result.h"

namespace lazyxml {

/// Owns one file descriptor; closes it on destruction. Moveable.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset(other.fd_);
      other.fd_ = -1;
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Releases ownership without closing.
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the current descriptor (if any) and adopts `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Binds and listens on `host:port` (numeric host, e.g. "127.0.0.1").
/// Port 0 asks the OS for an ephemeral port — read it back with
/// LocalPort. SO_REUSEADDR is set so rapid restart works.
Result<UniqueFd> ListenTcp(const std::string& host, uint16_t port,
                           int backlog = 128);

/// Binds and listens on unix-domain socket `path`, unlinking a stale
/// socket file at that path first. InvalidArgument when the path exceeds
/// sockaddr_un limits.
Result<UniqueFd> ListenUnix(const std::string& path, int backlog = 128);

/// Connects (blocking) to a TCP listener.
Result<UniqueFd> ConnectTcp(const std::string& host, uint16_t port);

/// Connects (blocking) to a unix-domain listener.
Result<UniqueFd> ConnectUnix(const std::string& path);

/// Connects to a TCP listener with a bounded wait: non-blocking
/// connect(2), poll for writability, then SO_ERROR. The returned fd is
/// left NON-blocking (callers pair it with WaitReadable/WaitWritable).
/// timeout_ms <= 0 waits forever. Timeout → DeadlineExceeded; refused /
/// reset → Unavailable.
Result<UniqueFd> ConnectTcpTimed(const std::string& host, uint16_t port,
                                 int timeout_ms);

/// ConnectTcpTimed for a unix-domain listener.
Result<UniqueFd> ConnectUnixTimed(const std::string& path, int timeout_ms);

/// Accepts one pending connection from a (non-blocking) listener.
/// OK with an invalid fd means "no connection pending" (EAGAIN).
Result<UniqueFd> AcceptConnection(int listen_fd);

/// The port a TCP socket is bound to (after ListenTcp with port 0).
Result<uint16_t> LocalPort(int fd);

/// Switches `fd` to non-blocking mode.
Status SetNonBlocking(int fd);

/// Switches `fd` back to blocking mode.
Status SetBlocking(int fd);

/// Blocks until `fd` is readable (or has an error/hangup pending, which
/// a subsequent read will surface), at most `timeout_ms` milliseconds.
/// Returns true when ready, false on timeout. timeout_ms <= 0 waits
/// forever. EINTR is retried with the remaining budget.
Result<bool> WaitReadable(int fd, int timeout_ms);

/// WaitReadable for writability.
Result<bool> WaitWritable(int fd, int timeout_ms);

/// Outcome of one non-blocking read.
struct ReadOutcome {
  size_t n = 0;             ///< bytes read into the buffer
  bool eof = false;         ///< peer closed its write side
  bool would_block = false; ///< nothing available right now
};

/// Reads up to `cap` bytes. EINTR is retried; EAGAIN comes back as
/// would_block, a zero-byte read as eof, ECONNRESET as Unavailable,
/// anything else as IOError.
Result<ReadOutcome> ReadSome(int fd, char* buf, size_t cap);

/// Outcome of one non-blocking write.
struct WriteOutcome {
  size_t n = 0;             ///< bytes accepted by the kernel
  bool would_block = false; ///< send buffer full before all `n` requested
};

/// Writes up to `len` bytes. EINTR retried, EAGAIN → would_block,
/// EPIPE/ECONNRESET (peer gone: retryable against a restarted server) →
/// Unavailable, anything else → IOError. SIGPIPE is suppressed
/// (MSG_NOSIGNAL).
Result<WriteOutcome> WriteSome(int fd, const char* buf, size_t len);

/// A non-blocking self-wake pipe: write end poked by worker threads,
/// read end registered with the event loop's poller.
struct WakePipe {
  UniqueFd read_end;
  UniqueFd write_end;
};
Result<WakePipe> CreateWakePipe();

/// Writes one byte to the pipe (coalescing: a full pipe is success —
/// the loop is already scheduled to wake).
void PokeWakePipe(int write_fd);

/// Drains every pending byte from the pipe's read end.
void DrainWakePipe(int read_fd);

}  // namespace lazyxml

#endif  // LAZYXML_COMMON_SOCKET_H_
