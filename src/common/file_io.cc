#include "common/file_io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace lazyxml {

namespace {

Status ErrnoStatus(const std::string& context, const std::string& path,
                   int err) {
  const std::string msg = context + " " + path + ": " + std::strerror(err);
  if (err == ENOENT) return Status::NotFound(msg);
  return Status::IOError(msg);
}

/// The directory component of `path` ("." when there is none).
std::string DirnameOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status WriteAll(int fd, const char* data, size_t n, const std::string& path) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path, errno);
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return ErrnoStatus("stat", path, errno);
  }
  return static_cast<uint64_t>(st.st_size);
}

Result<std::string> ReadFileToString(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("open", path, errno);
  std::string out;
  struct stat st;
  if (::fstat(fd, &st) == 0 && st.st_size > 0) {
    out.reserve(static_cast<size_t>(st.st_size));
  }
  char buf[1 << 16];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return ErrnoStatus("read", path, err);
    }
    if (r == 0) break;
    out.append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  return out;
}

Status WriteFileAtomic(const std::string& path, std::string_view data,
                       bool sync) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoStatus("open", tmp, errno);
  Status s = WriteAll(fd, data.data(), data.size(), tmp);
  if (s.ok() && sync && ::fsync(fd) != 0) {
    s = ErrnoStatus("fsync", tmp, errno);
  }
  if (::close(fd) != 0 && s.ok()) {
    s = ErrnoStatus("close", tmp, errno);
  }
  if (!s.ok()) {
    ::unlink(tmp.c_str());
    return s;
  }
  LAZYXML_RETURN_NOT_OK(RenameFile(tmp, path));
  if (sync) return SyncDirectory(DirnameOf(path));
  return Status::OK();
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoStatus("unlink", path, errno);
  }
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoStatus("rename", from + " -> " + to, errno);
  }
  return Status::OK();
}

Status TruncateFile(const std::string& path, uint64_t size) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("open", path, errno);
  Status s;
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    s = ErrnoStatus("fstat", path, errno);
  } else if (static_cast<uint64_t>(st.st_size) < size) {
    s = Status::InvalidArgument("truncate would extend " + path);
  } else if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    s = ErrnoStatus("ftruncate", path, errno);
  } else if (::fsync(fd) != 0) {
    s = ErrnoStatus("fsync", path, errno);
  }
  ::close(fd);
  return s;
}

Status CreateDirIfMissing(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return ErrnoStatus("mkdir", path, errno);
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListDirectory(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return ErrnoStatus("opendir", path, errno);
  std::vector<std::string> out;
  while (struct dirent* e = ::readdir(dir)) {
    const std::string_view name = e->d_name;
    if (name == "." || name == "..") continue;
    out.emplace_back(name);
  }
  ::closedir(dir);
  return out;
}

Status SyncDirectory(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("open dir", path, errno);
  Status s;
  if (::fsync(fd) != 0) s = ErrnoStatus("fsync dir", path, errno);
  ::close(fd);
  return s;
}

Result<std::unique_ptr<AppendFile>> AppendFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(),
                        O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoStatus("open", path, errno);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return ErrnoStatus("fstat", path, err);
  }
  return std::unique_ptr<AppendFile>(
      new AppendFile(path, fd, static_cast<uint64_t>(st.st_size)));
}

AppendFile::~AppendFile() { Close(); }

Status AppendFile::Append(std::string_view data) {
  if (fd_ < 0) return Status::IOError("append to closed file: " + path_);
  LAZYXML_RETURN_NOT_OK(WriteAll(fd_, data.data(), data.size(), path_));
  size_ += data.size();
  return Status::OK();
}

Status AppendFile::Sync() {
  if (fd_ < 0) return Status::IOError("sync of closed file: " + path_);
  if (::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync", path_, errno);
  return Status::OK();
}

Status AppendFile::Close() {
  if (fd_ < 0) return Status::OK();
  const int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) return ErrnoStatus("close", path_, errno);
  return Status::OK();
}

}  // namespace lazyxml
