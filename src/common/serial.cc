#include "common/serial.h"

#include "common/strings.h"

namespace lazyxml {

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void ByteWriter::PutString(std::string_view s) {
  PutU64(s.size());
  buf_.append(s);
}

Status ByteReader::Need(size_t n) const {
  if (pos_ + n > data_.size()) {
    return Status::Corruption(
        StringPrintf("snapshot truncated: need %zu bytes at offset %zu of "
                     "%zu",
                     n, pos_, data_.size()));
  }
  return Status::OK();
}

Result<uint8_t> ByteReader::GetU8() {
  LAZYXML_RETURN_NOT_OK(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> ByteReader::GetU32() {
  LAZYXML_RETURN_NOT_OK(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::GetU64() {
  LAZYXML_RETURN_NOT_OK(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<std::string> ByteReader::GetString() {
  LAZYXML_ASSIGN_OR_RETURN(uint64_t len, GetU64());
  if (len > data_.size()) {
    return Status::Corruption("snapshot string length exceeds file size");
  }
  LAZYXML_RETURN_NOT_OK(Need(len));
  std::string out(data_.substr(pos_, len));
  pos_ += len;
  return out;
}

}  // namespace lazyxml
