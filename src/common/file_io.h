// POSIX file helpers with Status error reporting, for the durability
// layer (core/snapshot.cc, storage/). Error taxonomy: a path that does
// not exist is NotFound; any other filesystem failure is IOError; data
// problems (bad bytes in a file that reads fine) are the caller's
// Corruption. Durable writes go through WriteFileAtomic: write to a
// sibling temp file, fsync it, rename over the target, fsync the
// directory — a crash leaves either the old file or the new one, never a
// torn mixture.

#ifndef LAZYXML_COMMON_FILE_IO_H_
#define LAZYXML_COMMON_FILE_IO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace lazyxml {

/// True iff `path` exists (any file type).
bool FileExists(const std::string& path);

/// The file's size in bytes. NotFound if missing.
Result<uint64_t> FileSize(const std::string& path);

/// Reads the whole file. NotFound if missing, IOError on read failure.
Result<std::string> ReadFileToString(const std::string& path);

/// Atomically replaces `path` with `data` (temp file + fsync + rename +
/// directory fsync). When `sync` is false the fsyncs are skipped (fast,
/// for tests and non-durable output); atomicity via rename still holds.
Status WriteFileAtomic(const std::string& path, std::string_view data,
                       bool sync = true);

/// Deletes `path`. OK if it does not exist.
Status RemoveFileIfExists(const std::string& path);

/// Renames `from` to `to`, replacing `to` if present.
Status RenameFile(const std::string& from, const std::string& to);

/// Truncates `path` to `size` bytes and fsyncs it (WAL tail repair).
/// NotFound if missing; InvalidArgument if the file is already shorter.
Status TruncateFile(const std::string& path, uint64_t size);

/// Creates directory `path` (one level). OK if it already exists.
Status CreateDirIfMissing(const std::string& path);

/// Entry names in `path` (excluding "." and ".."), unsorted.
Result<std::vector<std::string>> ListDirectory(const std::string& path);

/// fsyncs a directory so renames/creates inside it are durable.
Status SyncDirectory(const std::string& path);

/// An append-only file handle (the WAL's write side). Writes go straight
/// to the OS (no user-space buffer): a record is in the page cache when
/// Append returns and on stable storage after Sync.
class AppendFile {
 public:
  /// Opens `path` for appending, creating it if missing.
  static Result<std::unique_ptr<AppendFile>> Open(const std::string& path);

  ~AppendFile();
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  Status Append(std::string_view data);

  /// fdatasync.
  Status Sync();

  /// Closes the descriptor; further calls fail. Idempotent.
  Status Close();

  /// Bytes in the file (initial size + appends through this handle).
  uint64_t size() const { return size_; }

  const std::string& path() const { return path_; }

 private:
  AppendFile(std::string path, int fd, uint64_t size)
      : path_(std::move(path)), fd_(fd), size_(size) {}

  std::string path_;
  int fd_;
  uint64_t size_;
};

}  // namespace lazyxml

#endif  // LAZYXML_COMMON_FILE_IO_H_
