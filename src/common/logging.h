// Minimal leveled logging + debug assertions.
//
// The library itself logs nothing at INFO by default; examples and benches
// use LAZYXML_LOG for progress lines. LAZYXML_DCHECK compiles out in
// release builds (it guards internal invariants only, never input
// validation — inputs are validated with Status returns).

#ifndef LAZYXML_COMMON_LOGGING_H_
#define LAZYXML_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace lazyxml {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Writes one formatted line to stderr: "[LEVEL file:line] message".
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

/// Stream-style collector so call sites can write `... << x << y`.
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

[[noreturn]] void FatalCheckFailure(const char* file, int line,
                                    const char* expr);

}  // namespace internal
}  // namespace lazyxml

#define LAZYXML_LOG(level)                                      \
  ::lazyxml::internal::LogStream(::lazyxml::LogLevel::k##level, \
                                 __FILE__, __LINE__)

/// Hard invariant check, active in all builds. Use sparingly (corruption
/// would otherwise propagate silently).
#define LAZYXML_CHECK(expr)                                              \
  do {                                                                   \
    if (!(expr))                                                         \
      ::lazyxml::internal::FatalCheckFailure(__FILE__, __LINE__, #expr); \
  } while (false)

/// Debug-only invariant check.
#ifdef NDEBUG
#define LAZYXML_DCHECK(expr) \
  do {                       \
  } while (false)
#else
#define LAZYXML_DCHECK(expr) LAZYXML_CHECK(expr)
#endif

#endif  // LAZYXML_COMMON_LOGGING_H_
