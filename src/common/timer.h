// Wall-clock stopwatch used by the benchmark harnesses.

#ifndef LAZYXML_COMMON_TIMER_H_
#define LAZYXML_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace lazyxml {

/// A simple monotonic stopwatch. Start() resets; Elapsed*() read without
/// stopping, so one timer can bracket several phases.
class Stopwatch {
 public:
  Stopwatch() { Start(); }

  /// (Re)starts the stopwatch.
  void Start() { start_ = Clock::now(); }

  /// Nanoseconds since the last Start().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Microseconds since the last Start().
  int64_t ElapsedMicros() const { return ElapsedNanos() / 1000; }

  /// Milliseconds since the last Start(), as a double for table output.
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

  /// Seconds since the last Start().
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lazyxml

#endif  // LAZYXML_COMMON_TIMER_H_
