#include "common/chaos_socket.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/random.h"

namespace lazyxml {

namespace {

using Clock = std::chrono::steady_clock;

constexpr size_t kPipeBufferCap = 64 * 1024;

// Per-connection seed mix: distinct streams per connection, stable
// across runs for the same (proxy seed, accept index).
uint64_t ConnSeed(uint64_t proxy_seed, uint64_t conn_id) {
  return proxy_seed ^ ((conn_id + 1) * 0x9E3779B97F4A7C15ULL);
}

}  // namespace

std::string_view ChaosFaultKindName(ChaosProxy::FaultKind kind) {
  switch (kind) {
    case ChaosProxy::FaultKind::kSplit:
      return "split";
    case ChaosProxy::FaultKind::kStall:
      return "stall";
    case ChaosProxy::FaultKind::kTrickle:
      return "trickle";
    case ChaosProxy::FaultKind::kClose:
      return "close";
    case ChaosProxy::FaultKind::kRst:
      return "rst";
  }
  return "unknown";
}

// One forwarding direction of a proxied connection.
struct ChaosProxy::Pipe {
  std::string buf;         // bytes read from src, not yet written to dst
  size_t pos = 0;          // write cursor into buf
  uint64_t forwarded = 0;  // total bytes delivered to dst
  uint64_t next_fault_at = 0;
  FaultKind next_kind = FaultKind::kSplit;
  bool fault_armed = false;
  Clock::time_point stall_until{};
  bool stalled = false;
  uint32_t trickle_left = 0;
  bool src_eof = false;
  bool dst_shutdown = false;
};

struct ChaosProxy::Conn {
  Conn(uint64_t id_in, UniqueFd client_in, UniqueFd server_in, uint64_t seed)
      : id(id_in),
        client(std::move(client_in)),
        server(std::move(server_in)),
        rng(seed) {}

  uint64_t id;
  UniqueFd client;
  UniqueFd server;
  Random rng;
  Pipe c2s;
  Pipe s2c;
  bool dead = false;
};

ChaosProxy::ChaosProxy(Options options, UniqueFd listener,
                       std::string backend_path, uint16_t backend_port)
    : options_(options),
      listener_(std::move(listener)),
      backend_path_(std::move(backend_path)),
      backend_port_(backend_port) {}

Result<std::unique_ptr<ChaosProxy>> ChaosProxy::StartUnix(
    const std::string& listen_path, const std::string& backend_path,
    const Options& options) {
  LAZYXML_ASSIGN_OR_RETURN(UniqueFd listener, ListenUnix(listen_path));
  LAZYXML_RETURN_NOT_OK(SetNonBlocking(listener.get()));
  std::unique_ptr<ChaosProxy> proxy(
      new ChaosProxy(options, std::move(listener), backend_path, 0));
  LAZYXML_ASSIGN_OR_RETURN(proxy->wake_, CreateWakePipe());
  proxy->thread_ = std::thread(&ChaosProxy::Run, proxy.get());
  return proxy;
}

Result<std::unique_ptr<ChaosProxy>> ChaosProxy::StartTcp(
    uint16_t listen_port, uint16_t backend_port, const Options& options) {
  LAZYXML_ASSIGN_OR_RETURN(UniqueFd listener,
                           ListenTcp("127.0.0.1", listen_port));
  LAZYXML_RETURN_NOT_OK(SetNonBlocking(listener.get()));
  LAZYXML_ASSIGN_OR_RETURN(uint16_t bound, LocalPort(listener.get()));
  std::unique_ptr<ChaosProxy> proxy(
      new ChaosProxy(options, std::move(listener), "", backend_port));
  proxy->listen_port_ = bound;
  LAZYXML_ASSIGN_OR_RETURN(proxy->wake_, CreateWakePipe());
  proxy->thread_ = std::thread(&ChaosProxy::Run, proxy.get());
  return proxy;
}

ChaosProxy::~ChaosProxy() { Stop(); }

void ChaosProxy::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_requested_) {
      // Already stopping/stopped; fall through to the join below so a
      // concurrent Stop still waits for the thread.
    }
    stop_requested_ = true;
  }
  if (wake_.write_end.valid()) PokeWakePipe(wake_.write_end.get());
  if (thread_.joinable()) thread_.join();
}

std::vector<ChaosProxy::FaultEvent> ChaosProxy::Schedule() const {
  std::lock_guard<std::mutex> lock(mu_);
  return schedule_;
}

uint64_t ChaosProxy::connections_accepted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return accepted_snapshot_;
}

void ChaosProxy::ArmNextFault(Conn& conn, Pipe& pipe) {
  uint64_t lo = options_.min_fault_gap_bytes;
  uint64_t hi = options_.max_fault_gap_bytes;
  if (hi < lo) hi = lo;
  uint64_t gap = lo + conn.rng.Uniform(hi - lo + 1);
  if (gap == 0) gap = 1;
  pipe.next_fault_at = pipe.forwarded + gap;

  uint64_t total = options_.weight_split + options_.weight_stall +
                   options_.weight_trickle + options_.weight_close +
                   options_.weight_rst;
  if (total == 0) {
    pipe.fault_armed = false;
    return;
  }
  uint64_t r = conn.rng.Uniform(total);
  if (r < options_.weight_split) {
    pipe.next_kind = FaultKind::kSplit;
  } else if ((r -= options_.weight_split) < options_.weight_stall) {
    pipe.next_kind = FaultKind::kStall;
  } else if ((r -= options_.weight_stall) < options_.weight_trickle) {
    pipe.next_kind = FaultKind::kTrickle;
  } else if ((r -= options_.weight_trickle) < options_.weight_close) {
    pipe.next_kind = FaultKind::kClose;
  } else {
    pipe.next_kind = FaultKind::kRst;
  }
  pipe.fault_armed = true;
}

void ChaosProxy::KillConn(Conn& conn, bool rst) {
  if (rst && conn.client.valid()) {
    // SO_LINGER with zero timeout turns close() into an RST: the client
    // observes ECONNRESET instead of an orderly FIN.
    struct linger lin;
    lin.l_onoff = 1;
    lin.l_linger = 0;
    (void)::setsockopt(conn.client.get(), SOL_SOCKET, SO_LINGER, &lin,
                       sizeof(lin));
  }
  conn.client.reset();
  conn.server.reset();
  conn.dead = true;
}

// Moves bytes src → buf → dst for one direction. Returns false when the
// connection was terminated by a fault or a peer error.
bool ChaosProxy::ServicePipe(Conn& conn, Pipe& pipe, Direction dir) {
  int src = dir == Direction::kClientToServer ? conn.client.get()
                                              : conn.server.get();
  int dst = dir == Direction::kClientToServer ? conn.server.get()
                                              : conn.client.get();
  if (src < 0 || dst < 0) return false;

  if (pipe.stalled) {
    if (Clock::now() < pipe.stall_until) return true;
    pipe.stalled = false;
  }

  // Refill from src while there is buffer room.
  if (!pipe.src_eof && pipe.buf.size() - pipe.pos < kPipeBufferCap) {
    char tmp[16 * 1024];
    auto r = ReadSome(src, tmp, sizeof(tmp));
    if (!r.ok()) {
      KillConn(conn, false);
      return false;
    }
    if (r.ValueOrDie().eof) pipe.src_eof = true;
    if (r.ValueOrDie().n > 0) pipe.buf.append(tmp, r.ValueOrDie().n);
  }
  if (pipe.pos > 0 && pipe.pos == pipe.buf.size()) {
    pipe.buf.clear();
    pipe.pos = 0;
  }

  size_t avail = pipe.buf.size() - pipe.pos;
  if (avail == 0) {
    if (pipe.src_eof && !pipe.dst_shutdown) {
      (void)::shutdown(dst, SHUT_WR);
      pipe.dst_shutdown = true;
    }
    return true;
  }

  size_t cap = avail;
  if (pipe.fault_armed) {
    uint64_t until_fault = pipe.next_fault_at - pipe.forwarded;
    if (until_fault < cap) cap = static_cast<size_t>(until_fault);
  }
  if (pipe.trickle_left > 0 && cap > 1) cap = 1;

  auto w = WriteSome(dst, pipe.buf.data() + pipe.pos, cap);
  if (!w.ok()) {
    KillConn(conn, false);
    return false;
  }
  pipe.pos += w.ValueOrDie().n;
  pipe.forwarded += w.ValueOrDie().n;
  if (pipe.trickle_left > 0 && w.ValueOrDie().n > 0) --pipe.trickle_left;

  if (pipe.fault_armed && pipe.forwarded == pipe.next_fault_at) {
    FaultKind kind = pipe.next_kind;
    {
      std::lock_guard<std::mutex> lock(mu_);
      schedule_.push_back(FaultEvent{conn.id, dir, pipe.forwarded, kind});
    }
    ArmNextFault(conn, pipe);
    switch (kind) {
      case FaultKind::kSplit:
        // The write above was already capped at the fault offset; the
        // remaining bytes go out on a later tick in a separate send —
        // a forced mid-frame boundary.
        break;
      case FaultKind::kStall:
        pipe.stalled = true;
        pipe.stall_until =
            Clock::now() + std::chrono::milliseconds(options_.stall_ms);
        break;
      case FaultKind::kTrickle:
        pipe.trickle_left = options_.trickle_bytes;
        break;
      case FaultKind::kClose:
        KillConn(conn, false);
        return false;
      case FaultKind::kRst:
        KillConn(conn, true);
        return false;
    }
  }
  return true;
}

void ChaosProxy::ServiceConn(Conn& conn) {
  if (conn.dead) return;
  if (!ServicePipe(conn, conn.c2s, Direction::kClientToServer)) return;
  if (!ServicePipe(conn, conn.s2c, Direction::kServerToClient)) return;
  if (conn.c2s.dst_shutdown && conn.s2c.dst_shutdown) {
    conn.client.reset();
    conn.server.reset();
    conn.dead = true;
  }
}

void ChaosProxy::Run() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_requested_) break;
    }

    std::vector<pollfd> pfds;
    pfds.push_back(pollfd{wake_.read_end.get(), POLLIN, 0});
    pfds.push_back(pollfd{listener_.get(), POLLIN, 0});
    for (const auto& conn : conns_) {
      if (conn->dead) continue;
      pfds.push_back(pollfd{conn->client.get(), POLLIN, 0});
      pfds.push_back(pollfd{conn->server.get(), POLLIN, 0});
    }
    // A short tick (rather than event-exact timers) services stalls,
    // trickles, and retries of full send buffers; chaos tests are not
    // latency-sensitive.
    (void)::poll(pfds.data(), pfds.size(), 5);
    DrainWakePipe(wake_.read_end.get());

    // Accept every pending client and dial the backend for each.
    for (;;) {
      auto accepted = AcceptConnection(listener_.get());
      if (!accepted.ok() || !accepted.ValueOrDie().valid()) break;
      Result<UniqueFd> backend =
          backend_path_.empty()
              ? ConnectTcp("127.0.0.1", backend_port_)
              : ConnectUnix(backend_path_);
      if (!backend.ok()) {
        // Backend down: drop the client on the floor — from its side
        // this is indistinguishable from a crashed server.
        continue;
      }
      (void)SetNonBlocking(accepted.ValueOrDie().get());
      (void)SetNonBlocking(backend.ValueOrDie().get());
      uint64_t id = accepted_++;
      auto conn = std::make_unique<Conn>(id, std::move(accepted.ValueOrDie()),
                                         std::move(backend.ValueOrDie()),
                                         ConnSeed(options_.seed, id));
      ArmNextFault(*conn, conn->c2s);
      ArmNextFault(*conn, conn->s2c);
      conns_.push_back(std::move(conn));
      std::lock_guard<std::mutex> lock(mu_);
      accepted_snapshot_ = accepted_;
    }

    for (auto& conn : conns_) ServiceConn(*conn);
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const std::unique_ptr<Conn>& c) {
                                  return c->dead;
                                }),
                 conns_.end());
  }
  conns_.clear();
}

}  // namespace lazyxml
