// ThreadPool: a reusable work-stealing thread pool for query execution.
//
// Each worker owns a deque; Submit distributes tasks round-robin, a
// worker pops its own deque LIFO (cache-warm) and steals FIFO from a
// victim when empty (oldest task first, the classic work-stealing
// discipline). ParallelFor additionally lets the *calling* thread claim
// iterations, so a pool is never a deadlock hazard for nested or
// re-entrant use: the caller always makes progress on its own batch even
// when every worker is busy with somebody else's.
//
// The pool is deliberately small and dependency-free (std::thread only):
// query parallelism in this codebase is fork/join over pre-partitioned
// ranges (core/parallel_join.h), not a general task graph.

#ifndef LAZYXML_COMMON_THREAD_POOL_H_
#define LAZYXML_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lazyxml {

/// A fixed-size work-stealing thread pool.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queues: every task submitted before destruction is run
  /// before the workers exit.
  ~ThreadPool();

  /// Number of worker threads (>= 1).
  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `fn` for asynchronous execution. Thread-safe.
  void Submit(std::function<void()> fn);

  /// Runs `fn(0) ... fn(n-1)`, distributing iterations over the workers
  /// *and* the calling thread; returns when all `n` calls completed.
  /// Iterations are claimed dynamically (atomic counter), so uneven
  /// per-iteration cost self-balances. Thread-safe and re-entrant: a task
  /// running on a worker may itself call ParallelFor.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Blocks until every task submitted so far has finished running (both
  /// queued and claimed-but-executing tasks). Tasks submitted by other
  /// threads *while* waiting extend the wait — this is a drain barrier
  /// for shutdown ordering (the server's Stop uses it on an owned pool),
  /// not a phase barrier. Must not be called from a pool worker.
  void WaitIdle();

  /// A good default worker count for this machine.
  static size_t DefaultThreadCount();

  /// The process-wide shared pool (DefaultThreadCount workers), created
  /// on first use and intentionally leaked — workers must not be join'd
  /// during static destruction. All databases configured with
  /// num_threads == 0 execute on this one pool, so a process with many
  /// databases runs DefaultThreadCount workers total, not per database
  /// (docs/PARALLELISM.md). Never destroyed; safe to call concurrently.
  static ThreadPool* Shared();

  /// Tests only: substitutes `pool` for the shared pool (nullptr
  /// restores the real one). The caller keeps ownership and must
  /// outlive every database using the override. Not thread-safe
  /// against concurrent Shared() users mid-swap.
  static void SetSharedForTesting(ThreadPool* pool);

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> deque;
  };

  void WorkerLoop(size_t self);
  /// Pops from own deque (back) or steals from a victim (front).
  bool TryRunOneTask(size_t self);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::condition_variable idle_cv_;
  std::atomic<size_t> next_queue_{0};
  std::atomic<uint64_t> pending_{0};
  /// Claimed tasks currently executing. Incremented BEFORE the matching
  /// pending_ decrement so pending_ + active_ never transiently reads 0
  /// while a task is live (WaitIdle's predicate depends on that).
  std::atomic<uint64_t> active_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace lazyxml

#endif  // LAZYXML_COMMON_THREAD_POOL_H_
