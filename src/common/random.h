// Deterministic, seedable PRNG used by generators, tests and benches.
// Everything in this repo that is "random" goes through Xoroshiro128pp so
// runs are reproducible from a seed.

#ifndef LAZYXML_COMMON_RANDOM_H_
#define LAZYXML_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace lazyxml {

/// xoroshiro128++ by Blackman & Vigna: small, fast, high quality, and —
/// unlike std::mt19937 — bit-identical across standard libraries.
class Random {
 public:
  /// Seeds the generator; the same seed yields the same stream everywhere.
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next 64 uniformly random bits.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound == 0 returns 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Zipfian rank in [0, n) with exponent `theta`; rank 0 is hottest.
  /// Used for skewed tag selection in generators.
  uint64_t Zipf(uint64_t n, double theta);

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace lazyxml

#endif  // LAZYXML_COMMON_RANDOM_H_
