#include "common/crc32c.h"

#include <array>

#if defined(__SSE4_2__)
#include <nmmintrin.h>
#endif

namespace lazyxml {
namespace crc32c {

namespace {

constexpr uint32_t kPoly = 0x82f63b78u;  // reflected Castagnoli

// Slicing-by-4 tables: table_[0] is the classic byte-at-a-time table;
// table_[k][b] is the CRC of byte b followed by k zero bytes.
struct Tables {
  std::array<std::array<uint32_t, 256>, 4> t{};

  constexpr Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xff];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xff];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xff];
    }
  }
};

constexpr Tables kTables;

uint32_t ExtendSoftware(uint32_t crc, const uint8_t* p, size_t n) {
  uint32_t c = crc;
  while (n >= 4) {
    c ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
    c = kTables.t[3][c & 0xff] ^ kTables.t[2][(c >> 8) & 0xff] ^
        kTables.t[1][(c >> 16) & 0xff] ^ kTables.t[0][c >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    c = (c >> 8) ^ kTables.t[0][(c ^ *p++) & 0xff];
  }
  return c;
}

#if defined(__SSE4_2__)
uint32_t ExtendHardware(uint32_t crc, const uint8_t* p, size_t n) {
  uint32_t c = crc;
#if defined(__x86_64__)
  uint64_t c64 = c;
  while (n >= 8) {
    uint64_t chunk;
    __builtin_memcpy(&chunk, p, 8);
    c64 = _mm_crc32_u64(c64, chunk);
    p += 8;
    n -= 8;
  }
  c = static_cast<uint32_t>(c64);
#endif
  while (n >= 4) {
    uint32_t chunk;
    __builtin_memcpy(&chunk, p, 4);
    c = _mm_crc32_u32(c, chunk);
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    c = _mm_crc32_u8(c, *p++);
  }
  return c;
}
#endif

}  // namespace

uint32_t Extend(uint32_t crc, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint32_t c = crc ^ 0xffffffffu;
#if defined(__SSE4_2__)
  return ExtendHardware(c, p, n) ^ 0xffffffffu;
#else
  return ExtendSoftware(c, p, n) ^ 0xffffffffu;
#endif
}

}  // namespace crc32c
}  // namespace lazyxml
