// Result<T>: a value-or-Status, in the style of arrow::Result.

#ifndef LAZYXML_COMMON_RESULT_H_
#define LAZYXML_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace lazyxml {

/// Holds either a T (success) or a non-OK Status (failure).
///
/// \code
///   Result<TagId> r = dict.Intern("person");
///   if (!r.ok()) return r.status();
///   TagId tid = r.ValueOrDie();
/// \endcode
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status: failure. An OK status is a caller bug
  /// and is converted to an Internal error.
  Result(Status status) {  // NOLINT(runtime/explicit)
    if (status.ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    } else {
      repr_ = std::move(status);
    }
  }

  /// True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The failure status, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// The held value. Must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// The held value, or `fallback` on failure.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace lazyxml

/// Evaluates a Result-returning expression; on failure propagates its
/// status, on success binds the value to `lhs`.
#define LAZYXML_ASSIGN_OR_RETURN(lhs, expr)            \
  LAZYXML_ASSIGN_OR_RETURN_IMPL_(                      \
      LAZYXML_CONCAT_(_result_, __LINE__), lhs, expr)

#define LAZYXML_CONCAT_INNER_(a, b) a##b
#define LAZYXML_CONCAT_(a, b) LAZYXML_CONCAT_INNER_(a, b)
#define LAZYXML_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).ValueOrDie()

#endif  // LAZYXML_COMMON_RESULT_H_
