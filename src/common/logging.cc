#include "common/logging.h"

#include <atomic>

namespace lazyxml {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message) {
  if (static_cast<int>(level) < g_log_level.load(std::memory_order_relaxed)) {
    return;
  }
  // Strip directories from __FILE__ for readability.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line,
               message.c_str());
}

void FatalCheckFailure(const char* file, int line, const char* expr) {
  LogMessage(LogLevel::kError, file, line,
             std::string("CHECK failed: ") + expr);
  std::abort();
}

}  // namespace internal
}  // namespace lazyxml
