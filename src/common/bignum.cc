#include "common/bignum.h"

#include <algorithm>

#include "common/logging.h"

namespace lazyxml {

BigUint::BigUint(uint64_t v) {
  if (v != 0) {
    limbs_.push_back(static_cast<uint32_t>(v & 0xffffffffu));
    if (v >> 32) limbs_.push_back(static_cast<uint32_t>(v >> 32));
  }
}

void BigUint::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

size_t BigUint::BitLength() const {
  if (limbs_.empty()) return 0;
  uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

uint64_t BigUint::Low64() const {
  uint64_t v = 0;
  if (!limbs_.empty()) v = limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<uint64_t>(limbs_[1]) << 32;
  return v;
}

int BigUint::Compare(const BigUint& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigUint BigUint::operator+(const BigUint& other) const {
  BigUint out;
  const size_t n = std::max(limbs_.size(), other.limbs_.size());
  out.limbs_.reserve(n + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < other.limbs_.size()) sum += other.limbs_[i];
    out.limbs_.push_back(static_cast<uint32_t>(sum & 0xffffffffu));
    carry = sum >> 32;
  }
  if (carry) out.limbs_.push_back(static_cast<uint32_t>(carry));
  return out;
}

BigUint BigUint::operator-(const BigUint& other) const {
  LAZYXML_CHECK(Compare(other) >= 0);
  BigUint out;
  out.limbs_.reserve(limbs_.size());
  int64_t borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    int64_t diff = static_cast<int64_t>(limbs_[i]) - borrow;
    if (i < other.limbs_.size()) diff -= other.limbs_[i];
    if (diff < 0) {
      diff += (int64_t{1} << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_.push_back(static_cast<uint32_t>(diff));
  }
  out.Trim();
  return out;
}

BigUint BigUint::operator*(const BigUint& other) const {
  if (IsZero() || other.IsZero()) return BigUint();
  BigUint out;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    const uint64_t a = limbs_[i];
    for (size_t j = 0; j < other.limbs_.size(); ++j) {
      uint64_t cur = out.limbs_[i + j] + a * other.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    size_t k = i + other.limbs_.size();
    while (carry) {
      uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  out.Trim();
  return out;
}

BigUint BigUint::MulSmall(uint64_t m) const {
  return *this * BigUint(m);
}

BigUint BigUint::ShiftLeftBits(size_t bits) const {
  if (IsZero() || bits == 0) {
    BigUint out = *this;
    if (bits == 0) return out;
  }
  if (IsZero()) return BigUint();
  const size_t limb_shift = bits / 32;
  const size_t bit_shift = bits % 32;
  BigUint out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    const uint64_t v = static_cast<uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<uint32_t>(v & 0xffffffffu);
    out.limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(v >> 32);
  }
  out.Trim();
  return out;
}

Result<std::pair<BigUint, BigUint>> BigUint::DivMod(const BigUint& dividend,
                                                    const BigUint& divisor) {
  if (divisor.IsZero()) {
    return Status::InvalidArgument("BigUint division by zero");
  }
  if (dividend.Compare(divisor) < 0) {
    return std::make_pair(BigUint(), dividend);
  }
  if (divisor.FitsUint64()) {
    // Fast path: single-word divisor, one pass over the limbs.
    const uint64_t d = divisor.Low64();
    BigUint quotient;
    quotient.limbs_.assign(dividend.limbs_.size(), 0);
    unsigned __int128 rem = 0;
    for (size_t i = dividend.limbs_.size(); i-- > 0;) {
      rem = (rem << 32) | dividend.limbs_[i];
      quotient.limbs_[i] = static_cast<uint32_t>(rem / d);
      rem %= d;
    }
    quotient.Trim();
    return std::make_pair(std::move(quotient),
                          BigUint(static_cast<uint64_t>(rem)));
  }
  // Binary long division: O(bits) shift-subtract passes. Slower than Knuth
  // algorithm D but simple and fast enough for PRIME-sized operands.
  const size_t shift = dividend.BitLength() - divisor.BitLength();
  BigUint remainder = dividend;
  BigUint quotient;
  quotient.limbs_.assign(shift / 32 + 1, 0);
  for (size_t s = shift + 1; s-- > 0;) {
    BigUint shifted = divisor.ShiftLeftBits(s);
    if (remainder.Compare(shifted) >= 0) {
      remainder = remainder - shifted;
      quotient.limbs_[s / 32] |= (uint32_t{1} << (s % 32));
    }
  }
  quotient.Trim();
  return std::make_pair(std::move(quotient), std::move(remainder));
}

Result<uint64_t> BigUint::ModSmall(uint64_t m) const {
  if (m == 0) return Status::InvalidArgument("BigUint mod zero");
  // Horner over limbs, high to low: r = (r * 2^32 + limb) mod m, using
  // 128-bit intermediates.
  unsigned __int128 r = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    r = ((r << 32) | limbs_[i]) % m;
  }
  return static_cast<uint64_t>(r);
}

Result<bool> BigUint::DivisibleBy(const BigUint& divisor) const {
  if (divisor.IsZero()) {
    return Status::InvalidArgument("divisibility by zero");
  }
  if (divisor.FitsUint64()) {
    LAZYXML_ASSIGN_OR_RETURN(uint64_t r, ModSmall(divisor.Low64()));
    return r == 0;
  }
  LAZYXML_ASSIGN_OR_RETURN(auto qr, DivMod(*this, divisor));
  return qr.second.IsZero();
}

Result<BigUint> BigUint::FromDecimalString(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty decimal string");
  BigUint out;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("non-digit in decimal string");
    }
    out = out.MulSmall(10) + BigUint(static_cast<uint64_t>(c - '0'));
  }
  return out;
}

std::string BigUint::ToDecimalString() const {
  if (IsZero()) return "0";
  // Repeated division by 10^9 (chunks of 9 digits).
  std::vector<uint32_t> work(limbs_.begin(), limbs_.end());
  std::string out;
  constexpr uint64_t kChunk = 1000000000ull;
  while (!work.empty()) {
    uint64_t rem = 0;
    for (size_t i = work.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | work[i];
      work[i] = static_cast<uint32_t>(cur / kChunk);
      rem = cur % kChunk;
    }
    while (!work.empty() && work.back() == 0) work.pop_back();
    char buf[16];
    if (work.empty()) {
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(rem));
    } else {
      std::snprintf(buf, sizeof(buf), "%09llu",
                    static_cast<unsigned long long>(rem));
    }
    out.insert(0, buf);
  }
  return out;
}

uint64_t MulMod64(uint64_t a, uint64_t b, uint64_t m) {
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % m);
}

Result<uint64_t> ModInverse(uint64_t a, uint64_t m) {
  if (m == 0) return Status::InvalidArgument("ModInverse: zero modulus");
  // Extended Euclid on signed 128-bit to avoid overflow.
  __int128 t = 0, new_t = 1;
  __int128 r = m, new_r = a % m;
  while (new_r != 0) {
    __int128 q = r / new_r;
    __int128 tmp = t - q * new_t;
    t = new_t;
    new_t = tmp;
    tmp = r - q * new_r;
    r = new_r;
    new_r = tmp;
  }
  if (r != 1) {
    return Status::InvalidArgument("ModInverse: not invertible");
  }
  if (t < 0) t += m;
  return static_cast<uint64_t>(t);
}

Result<BigUint> CrtSolve(const std::vector<uint64_t>& primes,
                         const std::vector<uint64_t>& residues) {
  if (primes.size() != residues.size()) {
    return Status::InvalidArgument("CrtSolve: size mismatch");
  }
  if (primes.empty()) {
    return Status::InvalidArgument("CrtSolve: empty system");
  }
  BigUint modulus(1);
  for (uint64_t p : primes) {
    if (p == 0) return Status::InvalidArgument("CrtSolve: zero modulus");
    modulus = modulus.MulSmall(p);
  }
  BigUint x;  // zero
  for (size_t i = 0; i < primes.size(); ++i) {
    // M_i = M / p_i; term = r_i * M_i * (M_i^{-1} mod p_i).
    LAZYXML_ASSIGN_OR_RETURN(auto qr, BigUint::DivMod(modulus,
                                                      BigUint(primes[i])));
    const BigUint& mi = qr.first;
    LAZYXML_ASSIGN_OR_RETURN(uint64_t mi_mod_p, mi.ModSmall(primes[i]));
    LAZYXML_ASSIGN_OR_RETURN(uint64_t inv, ModInverse(mi_mod_p, primes[i]));
    const uint64_t coeff = MulMod64(residues[i] % primes[i], inv, primes[i]);
    x = x + mi.MulSmall(coeff);
  }
  LAZYXML_ASSIGN_OR_RETURN(auto xr, BigUint::DivMod(x, modulus));
  return xr.second;
}

}  // namespace lazyxml
