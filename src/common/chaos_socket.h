// ChaosProxy: a seeded, deterministic socket fault injector for tests.
//
// The proxy sits between a client and a real server (both over unix
// sockets or TCP) and forwards bytes — except where its fault schedule
// says otherwise. Faults are drawn from a per-connection xoroshiro128++
// stream seeded from (options.seed, connection index), and every fault
// fires at a byte *offset* in the forwarded stream, never at a wall
//-clock time. That makes the schedule a pure function of the seed and
// the bytes the endpoints actually exchange: the same seed and the same
// client workload produce the same faults at the same positions, no
// matter how the OS chunks reads — the property the determinism test in
// tests/server/chaos_test.cc asserts on the recorded schedule.
//
// Injected faults:
//   kSplit   — force a write boundary at this offset (partial write /
//              mid-frame delivery; the bytes after it arrive later)
//   kStall   — hold this direction for stall_ms (read stall)
//   kTrickle — deliver the next trickle_bytes one byte per loop tick
//   kClose   — orderly FIN of both sides mid-stream
//   kRst     — SO_LINGER(0) + close: the client sees ECONNRESET
//
// This is the socket-layer sibling of the WAL's byte-level fault
// harness (PR 1): same philosophy — deterministic, replayable damage —
// one layer up the stack.

#ifndef LAZYXML_COMMON_CHAOS_SOCKET_H_
#define LAZYXML_COMMON_CHAOS_SOCKET_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/socket.h"

namespace lazyxml {

class ChaosProxy {
 public:
  enum class FaultKind : uint8_t {
    kSplit = 0,
    kStall = 1,
    kTrickle = 2,
    kClose = 3,
    kRst = 4,
  };

  enum class Direction : uint8_t {
    kClientToServer = 0,
    kServerToClient = 1,
  };

  /// One applied fault, recorded in accept order. Two runs with the same
  /// seed and client workload produce identical schedules.
  struct FaultEvent {
    uint64_t conn = 0;      ///< connection index, counted from 0 in accept order
    Direction dir = Direction::kClientToServer;
    uint64_t offset = 0;    ///< forwarded-byte offset the fault fired at
    FaultKind kind = FaultKind::kSplit;
  };

  struct Options {
    uint64_t seed = 1;
    /// A fault fires every Uniform[min_fault_gap_bytes, max_fault_gap_bytes]
    /// forwarded bytes, per direction.
    uint32_t min_fault_gap_bytes = 64;
    uint32_t max_fault_gap_bytes = 2048;
    int stall_ms = 20;           ///< duration of a kStall
    uint32_t trickle_bytes = 16; ///< bytes delivered one-per-tick by kTrickle
    /// Relative weights for the fault kinds; a zero weight disables the
    /// kind. kClose/kRst terminate the connection, so tests that need
    /// long-lived streams set those to zero.
    uint32_t weight_split = 4;
    uint32_t weight_stall = 2;
    uint32_t weight_trickle = 2;
    uint32_t weight_close = 1;
    uint32_t weight_rst = 1;
  };

  /// Listens on unix socket `listen_path`; each accepted connection
  /// dials backend `backend_path`. Runs its own poll thread.
  static Result<std::unique_ptr<ChaosProxy>> StartUnix(
      const std::string& listen_path, const std::string& backend_path,
      const Options& options);

  /// Listens on 127.0.0.1:`listen_port` (0 = ephemeral, see listen_port());
  /// each accepted connection dials 127.0.0.1:`backend_port`.
  static Result<std::unique_ptr<ChaosProxy>> StartTcp(
      uint16_t listen_port, uint16_t backend_port, const Options& options);

  ~ChaosProxy();
  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Stops the poll thread and closes every connection. Idempotent.
  void Stop();

  /// The port StartTcp actually bound (when listen_port was 0).
  uint16_t listen_port() const { return listen_port_; }

  /// Snapshot of every fault applied so far, in application order.
  std::vector<FaultEvent> Schedule() const;

  /// Connections accepted so far.
  uint64_t connections_accepted() const;

 private:
  ChaosProxy(Options options, UniqueFd listener, std::string backend_path,
             uint16_t backend_port);

  struct Pipe;
  struct Conn;

  void Run();
  void ServiceConn(Conn& conn);
  bool ServicePipe(Conn& conn, Pipe& pipe, Direction dir);
  void ArmNextFault(Conn& conn, Pipe& pipe);
  void KillConn(Conn& conn, bool rst);

  Options options_;
  UniqueFd listener_;
  std::string backend_path_;  // empty → TCP backend
  uint16_t backend_port_ = 0;
  uint16_t listen_port_ = 0;

  WakePipe wake_;
  std::thread thread_;
  std::vector<std::unique_ptr<Conn>> conns_;
  uint64_t accepted_ = 0;
  bool stop_requested_ = false;

  mutable std::mutex mu_;  // guards schedule_, accepted_snapshot_, stop flag
  std::vector<FaultEvent> schedule_;
  uint64_t accepted_snapshot_ = 0;
};

/// Stable names for logs/tests ("split", "stall", ...).
std::string_view ChaosFaultKindName(ChaosProxy::FaultKind kind);

}  // namespace lazyxml

#endif  // LAZYXML_COMMON_CHAOS_SOCKET_H_
