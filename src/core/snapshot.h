// Snapshot persistence for LazyDatabase.
//
// The paper keeps the update log purely in memory and relies on
// maintenance-hours rebuilds (§1); a store anyone deploys also wants to
// survive a restart. A snapshot serializes the full logical state — tag
// dictionary, ER-tree geometry (with gaps and nesting summaries), element
// records and tag-list entries — into one self-describing binary blob,
// and loads back into an equivalent database (same sids, same frozen
// coordinates, same query results). Corrupted or truncated input yields
// Status::Corruption, never UB.

#ifndef LAZYXML_CORE_SNAPSHOT_H_
#define LAZYXML_CORE_SNAPSHOT_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "core/lazy_database.h"

namespace lazyxml {

/// Serializes the database into a snapshot blob.
Result<std::string> SerializeDatabase(const LazyDatabase& db);

/// Reconstructs a database from a snapshot blob. The maintenance mode is
/// taken from the snapshot; `options` supplies the B+-tree tuning.
Result<std::unique_ptr<LazyDatabase>> DeserializeDatabase(
    std::string_view data, const LazyDatabaseOptions& options = {});

/// Serialize + write to `path` atomically (temp file + fsync + rename):
/// a crash mid-save leaves the previous snapshot intact, never a torn
/// file. Non-IO failure modes come from SerializeDatabase.
Status SaveSnapshot(const LazyDatabase& db, const std::string& path);

/// Read `path` + deserialize. Error taxonomy: NotFound when the file
/// does not exist, IOError when it cannot be read, Corruption (from
/// deserialization) when its bytes are bad.
Result<std::unique_ptr<LazyDatabase>> LoadSnapshot(
    const std::string& path, const LazyDatabaseOptions& options = {});

}  // namespace lazyxml

#endif  // LAZYXML_CORE_SNAPSHOT_H_
