// QueryFacade: the read-side surface the query evaluators run against.
//
// EvaluatePath / EvaluateTwig / EvaluateXPath and the canonicalization
// helpers only ever *read* the store: they look tags up, walk the tag
// list of a frozen log, fetch element scans, issue structural joins and
// convert lazy identities to global offsets. This interface captures
// exactly that surface so the same evaluators execute against either
//
//   * the live database (LazyDatabase implements the virtuals directly),
//   * a snapshot-isolated read view pinned at a historical mutation
//     epoch (core/read_view.h, docs/MVCC.md).
//
// The global-coordinate helpers (ToGlobalPair, JoinGlobal,
// MaterializeGlobalElements) are implemented here once, in terms of the
// virtuals — their only inputs are the log geometry, the tag list and
// the element scans, all of which the facade provides.

#ifndef LAZYXML_CORE_QUERY_FACADE_H_
#define LAZYXML_CORE_QUERY_FACADE_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/lazy_join.h"
#include "core/scan_cache.h"
#include "core/update_log.h"
#include "join/global_element.h"
#include "query/path_summary.h"
#include "xml/tag_dict.h"

namespace lazyxml {

/// Read-only query surface over one consistent state of the lazy store.
class QueryFacade {
 public:
  virtual ~QueryFacade() = default;

  /// Performs any deferred pre-query work (LS freeze, compact/summary
  /// builds). A no-op on an already-serviceable state — and always a
  /// no-op on a snapshot view, whose state is immutable by construction.
  virtual void Freeze() = 0;

  /// The update log of this state. Must be serviceable after Freeze().
  virtual const UpdateLog& update_log() const = 0;

  /// The tag dictionary. Tag ids are assigned densely and never recycled,
  /// so a snapshot view may share the live dictionary: tags interned
  /// after the pinned epoch simply have no entries in the snapshot's tag
  /// list, which matches replay semantics (unknown tag == empty result).
  virtual const TagDict& tag_dict() const = 0;

  /// The path summary for this state, or nullptr when disabled or stale
  /// (consult-only; see query/path_summary.h).
  virtual const PathSummary* path_summary() const = 0;

  /// One (tag, segment) element scan of this state.
  virtual ElementScan GetScan(TagId tid, SegmentId sid) = 0;

  /// Lazy-Join of `ancestor_tag` // `descendant_tag` over this state.
  virtual Result<LazyJoinResult> JoinByName(
      std::string_view ancestor_tag, std::string_view descendant_tag,
      const LazyJoinOptions& options = {}) = 0;

  // -- Generic helpers over the virtuals ---------------------------------------

  /// Canonicalizes one lazy pair to global start offsets.
  Result<JoinPair> ToGlobalPair(const LazyJoinPair& pair) const {
    const UpdateLog& log = update_log();
    SegmentNode* a = log.NodeOf(pair.ancestor_sid);
    SegmentNode* d = log.NodeOf(pair.descendant_sid);
    if (a == nullptr || d == nullptr) {
      return Status::NotFound("join pair references a dead segment");
    }
    return JoinPair{a->FrozenToGlobal(pair.ancestor_start, true),
                    d->FrozenToGlobal(pair.descendant_start, true)};
  }

  /// Same join, results canonicalized to global start offsets and sorted
  /// (for cross-implementation comparisons).
  Result<std::vector<JoinPair>> JoinGlobal(std::string_view ancestor_tag,
                                           std::string_view descendant_tag,
                                           const LazyJoinOptions& options = {});

  /// All elements with `tag` in global coordinates, document order — the
  /// input a traditional (STD) join consumes.
  Result<std::vector<GlobalElement>> MaterializeGlobalElements(
      std::string_view tag);
};

}  // namespace lazyxml

#endif  // LAZYXML_CORE_QUERY_FACADE_H_
