// ParallelLazyJoin: the partitioned multi-threaded Lazy-Join executor.
//
// The descendant tag-list SL_D is split into contiguous round ranges in a
// single linear geometry pre-pass (core/lazy_join_internal.h), each range
// seeded with the exact kernel state a serial run would have entering its
// first round: the ancestor cursor and the live ancestor stack, both pure
// functions of the round index. Every partition then runs the unmodified
// serial kernel into a private LazyJoinResult; buffers are concatenated
// in partition (= document) order, so the output is byte-identical to the
// serial LazyJoin — same pairs, same order. See docs/PARALLELISM.md for
// the equivalence argument.
//
// Partition boundaries prefer *stack-reset points* (rounds where the
// serial stack is provably empty, so the seed is trivially empty) when
// one falls near the even split; otherwise the seed stack is
// reconstructed, which costs each boundary at most one extra scan fetch
// per live stack level (served by the shared ElementScanCache when
// configured).

#ifndef LAZYXML_CORE_PARALLEL_JOIN_H_
#define LAZYXML_CORE_PARALLEL_JOIN_H_

#include <cstddef>
#include <cstdint>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/element_index.h"
#include "core/lazy_join.h"
#include "core/scan_cache.h"
#include "core/update_log.h"
#include "xml/tag_dict.h"

namespace lazyxml {

/// Facade-level query execution knobs (plumbed through LazyDatabase /
/// DurableLazyDatabase into every join).
struct QueryOptions {
  /// Worker threads for join execution. 1 = serial (no pool);
  /// 0 = ThreadPool::DefaultThreadCount().
  size_t num_threads = 1;
  /// Byte budget of the shared element-scan cache. 0 disables it.
  size_t cache_bytes = 0;
  /// Serve join element scans from the succinct frozen index
  /// (core/compact_index.h) instead of the B+-tree. Built lazily at
  /// Freeze()/first join and kept while the database is unmutated; join
  /// output is byte-identical either way (A/B measurement flag).
  bool use_compact_index = false;
  /// Consult the path summary (query/path_summary.h) before each join:
  /// provably-empty joins return without touching a tag list, other
  /// joins scan only summary-qualified segments. Output is byte-identical
  /// either way (A/B measurement flag; see docs/PATH_SUMMARY.md).
  bool use_path_summary = true;
};

/// Tuning for the partitioned executor.
struct ParallelJoinOptions {
  LazyJoinOptions join;
  /// Target partitions per pool thread (over-decomposition so dynamic
  /// claiming load-balances skewed partitions).
  size_t tasks_per_thread = 4;
  /// Never split below this many descendant rounds per partition.
  size_t min_rounds_per_task = 8;
};

/// Joins `ancestor_tid` // `descendant_tid` like LazyJoin, executing
/// partitions on `pool` (serial when pool is null or single-threaded) and
/// reading element scans through `cache` when non-null (`cache_epoch` is
/// the database mutation epoch the caller observed; see
/// core/scan_cache.h). When `compact` is non-null, scans are decoded from
/// it instead of the B+-tree (see core/lazy_join.h). When `versions` is
/// non-null (pinned-epoch view queries, docs/MVCC.md), tree-store scan
/// reads consult it first so lists retired after the view's epoch are
/// served from their captured pre-images. Output is byte-identical to the
/// serial LazyJoin in either representation.
Result<LazyJoinResult> ParallelLazyJoin(
    const UpdateLog& log, const ElementIndex& index, TagId ancestor_tid,
    TagId descendant_tid, const ParallelJoinOptions& options = {},
    ThreadPool* pool = nullptr, ElementScanCache* cache = nullptr,
    uint64_t cache_epoch = 0, const CompactElementIndex* compact = nullptr,
    const ScanVersionSource* versions = nullptr);

}  // namespace lazyxml

#endif  // LAZYXML_CORE_PARALLEL_JOIN_H_
