#include "core/update_log.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"
#include "obs/metrics.h"

namespace lazyxml {

const char* LogModeName(LogMode mode) {
  switch (mode) {
    case LogMode::kLazyDynamic:
      return "LD";
    case LogMode::kLazyStatic:
      return "LS";
  }
  return "?";
}

UpdateLog::UpdateLog() : UpdateLog(Options{}) {}

UpdateLog::UpdateLog(Options options)
    : options_(options),
      sb_tree_(options.sb_tree_options),
      tag_list_(options.mode == LogMode::kLazyDynamic) {
  auto root = std::make_unique<SegmentNode>();
  root->sid = kRootSegmentId;
  root_ = root.get();
  nodes_.emplace(kRootSegmentId, std::move(root));
  if (options_.mode == LogMode::kLazyDynamic) {
    LAZYXML_CHECK(sb_tree_.Insert(kRootSegmentId, root_).ok());
  } else {
    sb_dirty_ = true;
  }
}

Result<UpdateLog::InsertInfo> UpdateLog::AddSegment(uint64_t gp,
                                                    uint64_t length) {
  if (length == 0) {
    return Status::InvalidArgument("cannot insert an empty segment");
  }
  if (gp > root_->l) {
    return Status::OutOfRange(StringPrintf(
        "insert position %llu beyond super document length %llu",
        static_cast<unsigned long long>(gp),
        static_cast<unsigned long long>(root_->l)));
  }
  // Step 1 (paper Fig. 5, AddNewSegment_Start): shift the global position
  // of every segment starting at or after the insertion point. (The paper
  // says strictly after; at-the-point segments must shift too, or two
  // segments would share a position.)
  for (auto& [sid, node] : nodes_) {
    if (node.get() != root_ && node->gp >= gp) node->gp += length;
  }
  // Step 2: descend the ER-tree growing lengths, to the deepest segment
  // whose interior contains the insertion point.
  SegmentNode* parent = root_;
  parent->l += length;
  for (;;) {
    SegmentNode* next = nullptr;
    // Children are ordered by gp; the candidate is the last child
    // starting before the point.
    auto it = std::upper_bound(
        parent->children.begin(), parent->children.end(), gp,
        [](uint64_t g, const SegmentNode* c) { return g < c->gp; });
    if (it != parent->children.begin()) {
      SegmentNode* cand = *(it - 1);
      // cand->l has not been grown yet, so its span is still the
      // pre-insertion one; interior containment is exactly the paper's
      // "is an ancestor of new" test specialized to a zero-width point.
      if (cand->ContainsPoint(gp)) next = cand;
    }
    if (next == nullptr) break;
    parent = next;
    parent->l += length;
  }
  // Step 3: local (frozen) position within the parent — Definition 2,
  // generalized to survive deletions via the gap map.
  const uint64_t frozen_point = parent->FrozenPos(gp);

  auto owned = std::make_unique<SegmentNode>();
  SegmentNode* node = owned.get();
  node->sid = next_sid_++;
  node->gp = gp;
  node->l = length;
  node->lp = frozen_point;
  node->parent = parent;
  auto pos = std::upper_bound(
      parent->children.begin(), parent->children.end(), gp,
      [](uint64_t g, const SegmentNode* c) { return g < c->gp; });
  parent->children.insert(pos, node);
  nodes_.emplace(node->sid, std::move(owned));
  if (options_.mode == LogMode::kLazyDynamic) {
    LAZYXML_RETURN_NOT_OK(sb_tree_.Insert(node->sid, node));
  } else {
    sb_dirty_ = true;
  }

  LAZYXML_METRIC_COUNTER(segments_counter, "update_log.segments_created");
  segments_counter.Increment();

  InsertInfo info;
  info.sid = node->sid;
  info.node = node;
  info.parent = parent;
  info.frozen_point = frozen_point;
  for (SegmentNode* n = node; n != nullptr; n = n->parent) {
    info.path.push_back(n->sid);
  }
  std::reverse(info.path.begin(), info.path.end());
  return info;
}

void UpdateLog::CollectSubtree(const SegmentNode* node,
                               RemovalEffects* out) const {
  out->full.push_back(
      RemovalEffects::FullRemoval{node->sid, node->distinct_tags});
  for (const SegmentNode* c : node->children) CollectSubtree(c, out);
}

Status UpdateLog::CollectRec(const SegmentNode* node, uint64_t lo,
                             uint64_t hi, RemovalEffects* out) const {
  // [lo, hi) is already clamped to this node's span.
  const uint64_t a = node->FrozenPos(lo);
  const uint64_t b = node->FrozenPos(hi);
  if (a < b) {
    out->partial.push_back(RemovalEffects::PartialRemoval{
        node->sid, a, b, node->distinct_tags});
  }
  for (const SegmentNode* c : node->children) {
    if (c->end() <= lo || c->gp >= hi) continue;  // disjoint
    if (lo <= c->gp && c->end() <= hi) {
      CollectSubtree(c, out);  // fully removed (black nodes, Fig. 6)
    } else {
      LAZYXML_RETURN_NOT_OK(
          CollectRec(c, std::max(lo, c->gp), std::min(hi, c->end()), out));
    }
  }
  return Status::OK();
}

Result<UpdateLog::RemovalEffects> UpdateLog::CollectRemovalEffects(
    uint64_t gp, uint64_t length) const {
  if (length == 0) {
    return Status::InvalidArgument("cannot remove an empty region");
  }
  if (gp + length > root_->l) {
    return Status::OutOfRange(StringPrintf(
        "removal [%llu, %llu) beyond super document length %llu",
        static_cast<unsigned long long>(gp),
        static_cast<unsigned long long>(gp + length),
        static_cast<unsigned long long>(root_->l)));
  }
  RemovalEffects out;
  out.gp = gp;
  out.length = length;
  LAZYXML_RETURN_NOT_OK(CollectRec(root_, gp, gp + length, &out));
  // Straddle resolutions: partial removals are exactly the segments whose
  // frozen span the removed region cuts through rather than covers.
  LAZYXML_METRIC_COUNTER(full_counter, "update_log.removals_full");
  LAZYXML_METRIC_COUNTER(partial_counter, "update_log.removals_partial");
  full_counter.Add(out.full.size());
  partial_counter.Add(out.partial.size());
  return out;
}

Status UpdateLog::ApplyRec(
    SegmentNode* node, uint64_t lo, uint64_t hi,
    const std::unordered_map<SegmentId, std::pair<uint64_t, uint64_t>>&
        partial_by_sid) {
  node->l -= hi - lo;
  auto gap = partial_by_sid.find(node->sid);
  if (gap != partial_by_sid.end()) {
    node->AddGap(gap->second.first, gap->second.second);
  }
  // Recurse into partially-overlapped children using pre-removal
  // coordinates; fully-contained children are detached afterwards.
  for (SegmentNode* c : node->children) {
    if (c->end() <= lo || c->gp >= hi) continue;
    if (lo <= c->gp && c->end() <= hi) continue;  // full removal
    const uint64_t clo = std::max(lo, c->gp);
    const uint64_t chi = std::min(hi, c->end());
    LAZYXML_RETURN_NOT_OK(ApplyRec(c, clo, chi, partial_by_sid));
  }
  return Status::OK();
}

void UpdateLog::DeleteSubtree(SegmentNode* node) {
  // Children vectors die with their owners; erase bottom-up.
  for (SegmentNode* c : node->children) DeleteSubtree(c);
  if (options_.mode == LogMode::kLazyDynamic) {
    LAZYXML_CHECK(sb_tree_.Erase(node->sid).ok());
  } else {
    sb_dirty_ = true;
  }
  nodes_.erase(node->sid);
}

Status UpdateLog::ApplyRemoval(const RemovalEffects& effects) {
  const uint64_t lo = effects.gp;
  const uint64_t hi = effects.gp + effects.length;
  if (hi > root_->l) {
    return Status::OutOfRange("removal effects stale: region beyond document");
  }
  std::unordered_map<SegmentId, std::pair<uint64_t, uint64_t>> partial_by_sid;
  for (const auto& p : effects.partial) {
    partial_by_sid.emplace(p.sid, std::make_pair(p.frozen_begin,
                                                 p.frozen_end));
  }
  // Phase 1: lengths, gaps, right-intersection starts (pre-shift coords).
  LAZYXML_RETURN_NOT_OK(ApplyRec(root_, lo, hi, partial_by_sid));
  // Phase 2: detach and delete fully-removed subtrees.
  for (const auto& f : effects.full) {
    SegmentNode* node = NodeOf(f.sid);
    if (node == nullptr) continue;  // deleted with an ancestor already
    SegmentNode* parent = node->parent;
    if (parent != nullptr) {
      auto it = std::find(parent->children.begin(), parent->children.end(),
                          node);
      if (it != parent->children.end()) parent->children.erase(it);
    }
    DeleteSubtree(node);
  }
  // Phase 3: global position sweep. Survivors starting at or after the
  // removed region shift left by its length (paper Fig. 7,
  // RemoveSegment_Start; >= so a segment starting exactly at the region
  // end moves too). Survivors starting *inside* the region are
  // right-intersected at some depth — their surviving suffix begins where
  // the removal began. (Fig. 7 lines 17-20 intend this; the printed
  // arithmetic is self-referential, and a per-level fix-up would misplace
  // nested right intersections, so one global sweep settles everything.)
  for (auto& [sid, node] : nodes_) {
    if (node.get() == root_) continue;
    if (node->gp >= hi) {
      node->gp -= effects.length;
    } else if (node->gp > lo) {
      node->gp = lo;
    }
  }
  return Status::OK();
}

Result<SegmentNode*> UpdateLog::RestoreSegment(SegmentId sid,
                                               SegmentId parent_sid,
                                               uint64_t gp, uint64_t l,
                                               uint64_t lp,
                                               uint32_t base_level) {
  if (sid == kRootSegmentId) {
    return Status::InvalidArgument("cannot restore the dummy root");
  }
  if (nodes_.count(sid) > 0) {
    return Status::Corruption("snapshot restores a duplicate segment id");
  }
  SegmentNode* parent = NodeOf(parent_sid);
  if (parent == nullptr) {
    return Status::Corruption("snapshot references a missing parent");
  }
  if (!parent->children.empty() &&
      parent->children.back()->end() > gp) {
    return Status::Corruption("snapshot children out of position order");
  }
  auto owned = std::make_unique<SegmentNode>();
  SegmentNode* node = owned.get();
  node->sid = sid;
  node->gp = gp;
  node->l = l;
  node->lp = lp;
  node->base_level = base_level;
  node->parent = parent;
  parent->children.push_back(node);
  nodes_.emplace(sid, std::move(owned));
  if (options_.mode == LogMode::kLazyDynamic) {
    LAZYXML_RETURN_NOT_OK(sb_tree_.Insert(sid, node));
  } else {
    sb_dirty_ = true;
  }
  if (sid >= next_sid_) next_sid_ = sid + 1;
  // The dummy root's length is the super-document length; restoring a
  // top-level segment implies the root already spans it (the snapshot
  // stores the root length explicitly via RestoreRootLength).
  return node;
}

Status UpdateLog::RestoreNextSid(SegmentId next_sid) {
  if (next_sid < next_sid_) {
    return Status::Corruption("snapshot next_sid below restored segments");
  }
  next_sid_ = next_sid;
  return Status::OK();
}

Result<UpdateLog::InsertInfo> UpdateLog::CollapseSubtree(SegmentId sid) {
  SegmentNode* old_node = NodeOf(sid);
  if (old_node == nullptr) {
    return Status::NotFound("segment does not exist");
  }
  if (old_node == root_) {
    return Status::InvalidArgument("cannot collapse the dummy root");
  }
  auto owned = std::make_unique<SegmentNode>();
  SegmentNode* node = owned.get();
  node->sid = next_sid_++;
  node->gp = old_node->gp;
  node->l = old_node->l;
  node->lp = old_node->lp;
  node->base_level = old_node->base_level;
  node->parent = old_node->parent;

  SegmentNode* parent = old_node->parent;
  auto it = std::find(parent->children.begin(), parent->children.end(),
                      old_node);
  LAZYXML_CHECK_OR_INTERNAL(it != parent->children.end(),
                            "collapse target missing from its parent");
  *it = node;
  DeleteSubtree(old_node);
  nodes_.emplace(node->sid, std::move(owned));
  if (options_.mode == LogMode::kLazyDynamic) {
    LAZYXML_RETURN_NOT_OK(sb_tree_.Insert(node->sid, node));
  } else {
    sb_dirty_ = true;
  }

  LAZYXML_METRIC_COUNTER(collapsed_counter, "update_log.segments_collapsed");
  collapsed_counter.Increment();

  InsertInfo info;
  info.sid = node->sid;
  info.node = node;
  info.parent = parent;
  info.frozen_point = node->lp;
  for (SegmentNode* n = node; n != nullptr; n = n->parent) {
    info.path.push_back(n->sid);
  }
  std::reverse(info.path.begin(), info.path.end());
  return info;
}

Result<SegmentNode*> UpdateLog::FindSegment(SegmentId sid) const {
  if (options_.mode == LogMode::kLazyStatic && sb_dirty_) {
    return Status::Internal("LS update log queried before Freeze()");
  }
  SegmentNode* const* found = sb_tree_.Find(sid);
  if (found == nullptr) {
    return Status::NotFound(StringPrintf(
        "segment %llu not in SB-tree", static_cast<unsigned long long>(sid)));
  }
  return *found;
}

uint64_t UpdateLog::GlobalPositionOf(SegmentId sid) const {
  SegmentNode* n = NodeOf(sid);
  LAZYXML_CHECK(n != nullptr);
  return n->gp;
}

SegmentNode* UpdateLog::NodeOf(SegmentId sid) const {
  auto it = nodes_.find(sid);
  return it == nodes_.end() ? nullptr : it->second.get();
}

Result<std::vector<SegmentId>> UpdateLog::PathOf(SegmentId sid) const {
  SegmentNode* n = NodeOf(sid);
  if (n == nullptr) {
    return Status::NotFound("segment does not exist");
  }
  std::vector<SegmentId> path;
  for (; n != nullptr; n = n->parent) path.push_back(n->sid);
  std::reverse(path.begin(), path.end());
  return path;
}

void UpdateLog::Freeze() {
  if (options_.mode == LogMode::kLazyDynamic) return;
  if (sb_dirty_) {
    // "The B+-tree [is] generated from scratch just before querying"
    // (paper §5.1) — bulk-loaded in one pass.
    std::vector<std::pair<SegmentId, SegmentNode*>> sorted;
    sorted.reserve(nodes_.size());
    for (auto& [sid, node] : nodes_) sorted.emplace_back(sid, node.get());
    std::sort(sorted.begin(), sorted.end());
    LAZYXML_CHECK(sb_tree_.BuildFrom(std::move(sorted)).ok());
    sb_dirty_ = false;
  }
  tag_list_.Freeze(*this);
}

std::unique_ptr<UpdateLog> UpdateLog::Clone() const {
  LAZYXML_CHECK(frozen());
  auto clone = std::make_unique<UpdateLog>(options_);
  clone->nodes_.clear();  // drop the constructor's fresh root
  std::unordered_map<const SegmentNode*, SegmentNode*> remap;
  remap.reserve(nodes_.size());
  for (const auto& [sid, node] : nodes_) {
    auto copy = std::make_unique<SegmentNode>(*node);
    remap.emplace(node.get(), copy.get());
    clone->nodes_.emplace(sid, std::move(copy));
  }
  for (auto& [sid, node] : clone->nodes_) {
    if (node->parent != nullptr) node->parent = remap.at(node->parent);
    for (SegmentNode*& child : node->children) child = remap.at(child);
  }
  clone->root_ = remap.at(root_);
  clone->next_sid_ = next_sid_;
  clone->tag_list_ = tag_list_;
  std::vector<std::pair<SegmentId, SegmentNode*>> sorted;
  sorted.reserve(clone->nodes_.size());
  for (auto& [sid, node] : clone->nodes_) sorted.emplace_back(sid, node.get());
  std::sort(sorted.begin(), sorted.end());
  LAZYXML_CHECK(clone->sb_tree_.BuildFrom(std::move(sorted)).ok());
  clone->sb_dirty_ = false;
  return clone;
}

size_t UpdateLog::SbTreeMemoryBytes() const {
  size_t bytes = sb_tree_.MemoryBytes();
  for (const auto& [sid, node] : nodes_) bytes += node->MemoryBytes();
  return bytes;
}

Status UpdateLog::CheckRec(const SegmentNode* node, size_t* counted) const {
  ++*counted;
  uint64_t children_width = 0;
  const SegmentNode* prev = nullptr;
  for (const SegmentNode* c : node->children) {
    LAZYXML_CHECK_OR_INTERNAL(c->parent == node, "broken parent link");
    LAZYXML_CHECK_OR_INTERNAL(c->gp >= node->gp && c->end() <= node->end(),
                              "child outside parent span");
    if (prev != nullptr) {
      LAZYXML_CHECK_OR_INTERNAL(prev->end() <= c->gp,
                                "children overlap or out of order");
      LAZYXML_CHECK_OR_INTERNAL(prev->lp <= c->lp,
                                "child frozen positions out of order");
    }
    children_width += c->l;
    prev = c;
    LAZYXML_RETURN_NOT_OK(CheckRec(c, counted));
  }
  LAZYXML_CHECK_OR_INTERNAL(children_width <= node->l,
                            "children wider than parent");
  // Gaps disjoint and ascending.
  for (size_t i = 1; i < node->gaps.size(); ++i) {
    LAZYXML_CHECK_OR_INTERNAL(node->gaps[i - 1].end < node->gaps[i].begin,
                              "gaps overlap or touch");
  }
  LAZYXML_CHECK_OR_INTERNAL(nodes_.count(node->sid) == 1,
                            "tree node missing from ownership map");
  return Status::OK();
}

Status UpdateLog::CheckInvariants() const {
  size_t counted = 0;
  LAZYXML_RETURN_NOT_OK(CheckRec(root_, &counted));
  LAZYXML_CHECK_OR_INTERNAL(counted == nodes_.size(),
                            "unreachable segments in ownership map");
  if (options_.mode == LogMode::kLazyDynamic || !sb_dirty_) {
    LAZYXML_CHECK_OR_INTERNAL(sb_tree_.size() == nodes_.size(),
                              "SB-tree out of sync with segments");
    LAZYXML_RETURN_NOT_OK(sb_tree_.CheckInvariants());
  }
  return Status::OK();
}

}  // namespace lazyxml
