// ConcurrentLazyDatabase: a thread-safe facade over LazyDatabase.
//
// The paper names concurrency as future work (§6). This wrapper provides
// the sound baseline a deployment needs: a reader-writer lock where
// structural updates and maintenance are exclusive and queries run
// concurrently. One subtlety: in LS mode a "query" performs the deferred
// freeze (sorting the tag-list, building the segment B+-tree), i.e. it
// mutates — so LS queries take the exclusive lock, while LD queries,
// which touch nothing mutable, share it. Segment-granular locking
// (disjoint segments commute) is the natural next refinement.
//
// Liveness: the lock is a TicketSharedMutex (common/ticket_rwlock.h),
// a writer-priority ticket gate — a pending writer closes admission to
// new readers, so an unbounded stream of overlapping readers can no
// longer starve updates (std::shared_mutex gave no such guarantee and
// reader-preferring implementations starved writers in practice).

#ifndef LAZYXML_CORE_CONCURRENT_DATABASE_H_
#define LAZYXML_CORE_CONCURRENT_DATABASE_H_

#include <mutex>
#include <shared_mutex>
#include <string_view>

#include "common/result.h"
#include "common/ticket_rwlock.h"
#include "core/lazy_database.h"
#include "core/path_query.h"
#include "core/twig_query.h"
#include "query/xpath.h"

namespace lazyxml {

/// Thread-safe lazy XML database.
class ConcurrentLazyDatabase {
 public:
  explicit ConcurrentLazyDatabase(LazyDatabaseOptions options = {})
      : db_(options), lazy_static_(options.mode == LogMode::kLazyStatic) {}
  ConcurrentLazyDatabase(const ConcurrentLazyDatabase&) = delete;
  ConcurrentLazyDatabase& operator=(const ConcurrentLazyDatabase&) = delete;

  // -- Updates (exclusive) ----------------------------------------------------
  //
  // Each writer eagerly purges the shared element-scan cache while it
  // holds the exclusive lock. The epoch keying alone already guarantees
  // no stale scan is ever served (the mutation bumps the epoch before any
  // reader can re-acquire the lock); the purge reclaims the memory of the
  // now-unreachable entries instead of letting them age out of the LRU.

  Result<SegmentId> InsertSegment(std::string_view text, uint64_t gp) {
    std::unique_lock lock(mu_);
    auto r = db_.InsertSegment(text, gp);
    db_.InvalidateScanCache();
    return r;
  }

  Status RemoveSegment(uint64_t gp, uint64_t length) {
    std::unique_lock lock(mu_);
    auto r = db_.RemoveSegment(gp, length);
    db_.InvalidateScanCache();
    return r;
  }

  /// Applies the whole batch under ONE writer-priority lock acquisition
  /// (and one cache purge) — N singleton updates would pay the ticket
  /// gate N times and drain readers between every op.
  Result<BatchStats> ApplyBatch(std::span<const UpdateOp> ops) {
    std::unique_lock lock(mu_);
    auto r = db_.ApplyBatch(ops);
    db_.InvalidateScanCache();
    return r;
  }

  /// Stats-out form: `*stats_out` covers exactly the applied prefix even
  /// when the batch fails (core/lazy_database.h).
  Status ApplyBatch(std::span<const UpdateOp> ops, BatchStats* stats_out) {
    std::unique_lock lock(mu_);
    Status s = db_.ApplyBatch(ops, stats_out);
    db_.InvalidateScanCache();
    return s;
  }

  Status CompactAll() {
    std::unique_lock lock(mu_);
    auto r = db_.CompactAll();
    db_.InvalidateScanCache();
    return r;
  }

  /// Inserts `text` at the current end of the super document under ONE
  /// exclusive acquisition (the server's LOAD: append a whole document).
  /// Reading the length and inserting separately would race concurrent
  /// writers into a stale position. `*gp_out` (optional) receives the
  /// position used.
  Result<SegmentId> AppendDocument(std::string_view text,
                                   uint64_t* gp_out = nullptr) {
    std::unique_lock lock(mu_);
    const uint64_t gp = db_.update_log().super_document_length();
    auto r = db_.InsertSegment(text, gp);
    db_.InvalidateScanCache();
    if (r.ok() && gp_out != nullptr) *gp_out = gp;
    return r;
  }

  /// Performs the LS-mode freeze eagerly (exclusive: it sorts the
  /// tag-list and builds the segment B+-tree). No-op when already frozen
  /// or in LD mode, matching LazyDatabase::Freeze.
  void Freeze() {
    std::unique_lock lock(mu_);
    db_.Freeze();
  }

  // -- Queries (shared in LD; exclusive in LS, where they freeze) -----------

  Result<LazyJoinResult> JoinByName(std::string_view anc,
                                    std::string_view desc,
                                    const LazyJoinOptions& options = {}) {
    if (lazy_static_) {
      std::unique_lock lock(mu_);
      return db_.JoinByName(anc, desc, options);
    }
    std::shared_lock lock(mu_);
    return db_.JoinByName(anc, desc, options);
  }

  Result<std::vector<JoinPair>> JoinGlobal(std::string_view anc,
                                           std::string_view desc,
                                           const LazyJoinOptions& options = {}) {
    if (lazy_static_) {
      std::unique_lock lock(mu_);
      return db_.JoinGlobal(anc, desc, options);
    }
    std::shared_lock lock(mu_);
    return db_.JoinGlobal(anc, desc, options);
  }

  Result<PathQueryResult> Path(std::string_view expr) {
    if (lazy_static_) {
      std::unique_lock lock(mu_);
      return EvaluatePath(&db_, expr);
    }
    std::shared_lock lock(mu_);
    return EvaluatePath(&db_, expr);
  }

  Result<TwigQueryResult> Twig(std::string_view expr) {
    if (lazy_static_) {
      std::unique_lock lock(mu_);
      return EvaluateTwig(&db_, expr);
    }
    std::shared_lock lock(mu_);
    return EvaluateTwig(&db_, expr);
  }

  /// XPath-subset query (query/xpath.h). The evaluator only CONSULTS
  /// the epoch-gated path summary (it never rebuilds one), so the
  /// shared-lock path is race-free in LD mode; callers must link
  /// lazyxml_query.
  Result<XPathResult> Xpath(std::string_view expr) {
    if (lazy_static_) {
      std::unique_lock lock(mu_);
      return EvaluateXPath(&db_, expr);
    }
    std::shared_lock lock(mu_);
    return EvaluateXPath(&db_, expr);
  }

  LazyDatabaseStats Stats() {
    std::shared_lock lock(mu_);
    return db_.Stats();
  }

  /// Snapshot of the process-wide metrics registry (docs/OBSERVABILITY.md).
  /// Lock-free: the registry snapshots its own sharded atomics, so a
  /// monitoring thread never contends with queries or writers.
  obs::MetricsSnapshot Metrics() const {
    return obs::MetricsRegistry::Global().Snapshot();
  }

  Status CheckInvariants() {
    std::shared_lock lock(mu_);
    return db_.CheckInvariants();
  }

  /// Reconfigures join threading + scan caching (exclusive: the pool and
  /// cache are rebuilt).
  void SetQueryOptions(const QueryOptions& query) {
    std::unique_lock lock(mu_);
    db_.SetQueryOptions(query);
  }

  /// Runs `fn(LazyDatabase&)` under the exclusive lock and returns its
  /// result — the safe form of the escape hatch below for callers that
  /// need direct access while other threads are live (the server's CHECK
  /// command runs the scrubber through this).
  template <typename Fn>
  auto WithExclusive(Fn&& fn) {
    std::unique_lock lock(mu_);
    return fn(db_);
  }

  /// Exclusive access escape hatch for bulk setup (single-threaded phases).
  LazyDatabase& UnsynchronizedAccess() { return db_; }

 private:
  TicketSharedMutex mu_;
  LazyDatabase db_;
  const bool lazy_static_;
};

}  // namespace lazyxml

#endif  // LAZYXML_CORE_CONCURRENT_DATABASE_H_
