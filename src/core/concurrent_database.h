// ConcurrentLazyDatabase: a thread-safe facade over LazyDatabase.
//
// The paper names concurrency as future work (§6). This wrapper provides
// the sound baseline a deployment needs: a reader-writer lock where
// structural updates and maintenance are exclusive and queries run
// concurrently. Queries route by LazyDatabase::QueryNeedsExclusive():
// they share the lock whenever the state is already serviceable and take
// it exclusively only while deferred pre-query work is pending — an LS
// freeze, a stale compact index or path summary rebuild. In particular
// an LS database pays one exclusive freeze after a write burst and every
// later query runs shared (queries no longer serialize forever just
// because the *mode* is LS).
//
// Snapshot isolation (docs/MVCC.md): OpenView() pins the current state
// and returns a ReadView whose queries all observe exactly that state —
// even while later writers commit. Combined with SetBatchChunkOps, which
// splits large ApplyBatch calls into bounded chunks with the lock
// dropped between them, readers are admitted *during* a bulk load
// instead of stalling behind it.
//
// Liveness: the lock is a TicketSharedMutex (common/ticket_rwlock.h),
// a writer-priority ticket gate — a pending writer closes admission to
// new readers, so an unbounded stream of overlapping readers can no
// longer starve updates (std::shared_mutex gave no such guarantee and
// reader-preferring implementations starved writers in practice).

#ifndef LAZYXML_CORE_CONCURRENT_DATABASE_H_
#define LAZYXML_CORE_CONCURRENT_DATABASE_H_

#include <algorithm>
#include <atomic>
#include <mutex>
#include <shared_mutex>
#include <string_view>
#include <utility>

#include "common/result.h"
#include "common/strings.h"
#include "common/ticket_rwlock.h"
#include "core/lazy_database.h"
#include "core/path_query.h"
#include "core/read_view.h"
#include "core/twig_query.h"
#include "query/xpath.h"

namespace lazyxml {

/// Thread-safe lazy XML database.
class ConcurrentLazyDatabase {
 public:
  explicit ConcurrentLazyDatabase(LazyDatabaseOptions options = {})
      : db_(options) {}
  ConcurrentLazyDatabase(const ConcurrentLazyDatabase&) = delete;
  ConcurrentLazyDatabase& operator=(const ConcurrentLazyDatabase&) = delete;

 private:
  /// Caller holds the exclusive lock. See the class comment on updates.
  void MaybePurgeLocked(uint64_t epoch_before) {
    if (db_.mutation_epoch() != epoch_before && !db_.HasOpenViews()) {
      db_.InvalidateScanCache();
    }
  }

  /// Shared-lock fast path when no deferred pre-query work is pending;
  /// exclusive fallback performs it (Freeze) and runs the query while
  /// still holding the lock. (Defined before its callers: the deduced
  /// `auto` return type needs the body visible at each call site.)
  template <typename Fn>
  auto ReadQuery(Fn&& fn) {
    {
      std::shared_lock lock(mu_);
      if (!db_.QueryNeedsExclusive()) return fn(db_);
    }
    std::unique_lock lock(mu_);
    db_.Freeze();
    return fn(db_);
  }

 public:

  // -- Updates (exclusive) ----------------------------------------------------
  //
  // Each writer eagerly purges the shared element-scan cache while it
  // holds the exclusive lock — but only when the write actually advanced
  // the mutation epoch (a rejected op provably changed nothing, so every
  // cached scan is still valid and purging it would only cost the next
  // reader its hits) and no read view is open (views serve their pinned
  // epoch through the same cache; the epoch keying already guarantees
  // correctness either way, the purge is purely a memory-reclaim).

  Result<SegmentId> InsertSegment(std::string_view text, uint64_t gp) {
    std::unique_lock lock(mu_);
    const uint64_t before = db_.mutation_epoch();
    auto r = db_.InsertSegment(text, gp);
    MaybePurgeLocked(before);
    return r;
  }

  Status RemoveSegment(uint64_t gp, uint64_t length) {
    std::unique_lock lock(mu_);
    const uint64_t before = db_.mutation_epoch();
    auto r = db_.RemoveSegment(gp, length);
    MaybePurgeLocked(before);
    return r;
  }

  /// Applies the batch as one or more exclusive acquisitions. With
  /// chunking off (the default) the whole batch runs under ONE
  /// writer-priority acquisition — N singleton updates would pay the
  /// ticket gate N times. With SetBatchChunkOps(n > 0) the batch is
  /// split into chunks of at most n ops and the lock is dropped between
  /// chunks, so pending readers (including open ReadViews, which observe
  /// none of the chunks) are admitted mid-batch. Prefix semantics
  /// compose across chunks (I-BATCH): on a failure the applied prefix —
  /// full chunks plus the failing chunk's applied prefix — stays, and
  /// `*stats_out` covers exactly that prefix. Note a cancelling
  /// insert/remove pair split across a chunk boundary is applied
  /// structurally rather than short-circuited (same final state; the
  /// cancelled_pairs stat may differ from the unchunked run).
  Result<BatchStats> ApplyBatch(std::span<const UpdateOp> ops) {
    BatchStats stats;
    LAZYXML_RETURN_NOT_OK(ApplyBatch(ops, &stats));
    return stats;
  }

  /// Stats-out form: `*stats_out` covers exactly the applied prefix even
  /// when the batch fails (core/lazy_database.h).
  Status ApplyBatch(std::span<const UpdateOp> ops, BatchStats* stats_out) {
    const size_t chunk = batch_chunk_ops_.load(std::memory_order_relaxed);
    if (chunk == 0 || ops.size() <= chunk) {
      std::unique_lock lock(mu_);
      const uint64_t before = db_.mutation_epoch();
      Status s = db_.ApplyBatch(ops, stats_out);
      MaybePurgeLocked(before);
      return s;
    }
    BatchStats total;
    total.ops = ops.size();
    total.sids.assign(ops.size(), 0);
    Status status;
    for (size_t off = 0; off < ops.size() && status.ok(); off += chunk) {
      const size_t n = std::min(chunk, ops.size() - off);
      BatchStats cs;
      {
        std::unique_lock lock(mu_);
        const uint64_t before = db_.mutation_epoch();
        status = db_.ApplyBatch(ops.subspan(off, n), &cs);
        MaybePurgeLocked(before);
      }  // lock dropped: queued readers are admitted before the next chunk
      total.applied += cs.applied;
      total.cancelled_pairs += cs.cancelled_pairs;
      total.index_flushes += cs.index_flushes;
      total.index_records += cs.index_records;
      for (size_t i = 0; i < cs.sids.size(); ++i) {
        total.sids[off + i] = cs.sids[i];
      }
      if (!status.ok()) {
        status = status.WithContext(
            StringPrintf("applying batch chunk at offset %zu", off));
      }
    }
    if (stats_out != nullptr) *stats_out = total;
    return status;
  }

  /// Chunk size for ApplyBatch; 0 (the default) applies each batch whole
  /// under one acquisition. Takes effect on the next ApplyBatch call.
  void SetBatchChunkOps(size_t ops_per_chunk) {
    batch_chunk_ops_.store(ops_per_chunk, std::memory_order_relaxed);
  }
  size_t batch_chunk_ops() const {
    return batch_chunk_ops_.load(std::memory_order_relaxed);
  }

  Status CompactAll() {
    std::unique_lock lock(mu_);
    const uint64_t before = db_.mutation_epoch();
    auto r = db_.CompactAll();
    MaybePurgeLocked(before);
    return r;
  }

  /// Inserts `text` at the current end of the super document under ONE
  /// exclusive acquisition (the server's LOAD: append a whole document).
  /// Reading the length and inserting separately would race concurrent
  /// writers into a stale position. `*gp_out` (optional) receives the
  /// position used.
  Result<SegmentId> AppendDocument(std::string_view text,
                                   uint64_t* gp_out = nullptr) {
    std::unique_lock lock(mu_);
    const uint64_t gp = db_.update_log().super_document_length();
    const uint64_t before = db_.mutation_epoch();
    auto r = db_.InsertSegment(text, gp);
    MaybePurgeLocked(before);
    if (r.ok() && gp_out != nullptr) *gp_out = gp;
    return r;
  }

  /// Performs the deferred pre-query work eagerly (exclusive: LS freeze,
  /// compact/summary builds). No-op when nothing is pending, matching
  /// LazyDatabase::Freeze.
  void Freeze() {
    std::unique_lock lock(mu_);
    db_.Freeze();
  }

  // -- Queries (shared once serviceable; exclusive only to freeze) -----------

  Result<LazyJoinResult> JoinByName(std::string_view anc,
                                    std::string_view desc,
                                    const LazyJoinOptions& options = {}) {
    return ReadQuery(
        [&](LazyDatabase& db) { return db.JoinByName(anc, desc, options); });
  }

  Result<std::vector<JoinPair>> JoinGlobal(std::string_view anc,
                                           std::string_view desc,
                                           const LazyJoinOptions& options = {}) {
    return ReadQuery(
        [&](LazyDatabase& db) { return db.JoinGlobal(anc, desc, options); });
  }

  Result<PathQueryResult> Path(std::string_view expr) {
    return ReadQuery([&](LazyDatabase& db) { return EvaluatePath(&db, expr); });
  }

  Result<TwigQueryResult> Twig(std::string_view expr) {
    return ReadQuery([&](LazyDatabase& db) { return EvaluateTwig(&db, expr); });
  }

  /// XPath-subset query (query/xpath.h). The evaluator only CONSULTS
  /// the epoch-gated path summary (it never rebuilds one), so the
  /// shared-lock path is race-free; callers must link lazyxml_query.
  Result<XPathResult> Xpath(std::string_view expr) {
    return ReadQuery(
        [&](LazyDatabase& db) { return EvaluateXPath(&db, expr); });
  }

  /// Pins the current state and returns a snapshot-isolated ReadView
  /// (docs/MVCC.md): every query through the view observes exactly the
  /// pinned state, even while later writers (including chunked batches)
  /// commit. Shared-lock fast path when the state is serviceable;
  /// exclusive only to perform the deferred freeze first.
  Result<ReadView> OpenView() {
    {
      std::shared_lock lock(mu_);
      if (!db_.QueryNeedsExclusive()) {
        LAZYXML_ASSIGN_OR_RETURN(std::unique_ptr<SnapshotReader> reader,
                                 db_.OpenReadView());
        return ReadView(&mu_, std::move(reader));
      }
    }
    std::unique_lock lock(mu_);
    LAZYXML_ASSIGN_OR_RETURN(std::unique_ptr<SnapshotReader> reader,
                             db_.OpenReadView());
    return ReadView(&mu_, std::move(reader));
  }

  LazyDatabaseStats Stats() {
    std::shared_lock lock(mu_);
    return db_.Stats();
  }

  /// MVCC counters (open views, retained/retired versions); lock-free —
  /// MvccState is internally synchronized.
  MvccStats MvccStatsSnapshot() const { return db_.mvcc().Stats(); }

  /// Snapshot of the process-wide metrics registry (docs/OBSERVABILITY.md).
  /// Lock-free: the registry snapshots its own sharded atomics, so a
  /// monitoring thread never contends with queries or writers.
  obs::MetricsSnapshot Metrics() const {
    return obs::MetricsRegistry::Global().Snapshot();
  }

  Status CheckInvariants() {
    std::shared_lock lock(mu_);
    return db_.CheckInvariants();
  }

  /// Reconfigures join threading + scan caching (exclusive: the pool and
  /// cache are rebuilt).
  void SetQueryOptions(const QueryOptions& query) {
    std::unique_lock lock(mu_);
    db_.SetQueryOptions(query);
  }

  /// Runs `fn(LazyDatabase&)` under the exclusive lock and returns its
  /// result — the safe form of the escape hatch below for callers that
  /// need direct access while other threads are live (the server's CHECK
  /// command runs the scrubber through this).
  template <typename Fn>
  auto WithExclusive(Fn&& fn) {
    std::unique_lock lock(mu_);
    return fn(db_);
  }

  /// Exclusive access escape hatch for bulk setup (single-threaded phases).
  LazyDatabase& UnsynchronizedAccess() { return db_; }

 private:
  TicketSharedMutex mu_;
  LazyDatabase db_;
  std::atomic<size_t> batch_chunk_ops_{0};
};

}  // namespace lazyxml

#endif  // LAZYXML_CORE_CONCURRENT_DATABASE_H_
