// UpdateCapture: observation hook for the logical update stream of a
// LazyDatabase. The durability layer (storage/durable_database.h)
// implements it to append one write-ahead-log record per successful
// primitive operation; anything else that wants the op stream
// (replication, change feeds) can implement it too.
//
// Contract: LazyDatabase invokes the hook *after* the in-memory apply
// succeeds, so captured operations are always valid and replaying them
// in order against an equal starting state reproduces the exact same
// database (same sids — they are assigned sequentially — and same frozen
// coordinates). A non-OK return propagates out of the mutating call;
// the in-memory state keeps the op (the caller decides whether a
// capture failure is fatal).
//
// Compound operations decompose into primitives: ApplyPlan captures one
// OnInsertSegment per step and CompactAll one OnCollapseSubtree per
// top-level segment, so a replayer only needs the three callbacks below.

#ifndef LAZYXML_CORE_UPDATE_CAPTURE_H_
#define LAZYXML_CORE_UPDATE_CAPTURE_H_

#include <cstdint>
#include <string_view>

#include "common/status.h"
#include "core/segment.h"

namespace lazyxml {

class UpdateCapture {
 public:
  virtual ~UpdateCapture() = default;

  /// Segment `text` was inserted at global position `gp` and received id
  /// `sid`. Replay must observe the same sid (divergence check).
  virtual Status OnInsertSegment(SegmentId sid, std::string_view text,
                                 uint64_t gp) = 0;

  /// The region [gp, gp+length) was removed.
  virtual Status OnRemoveRange(uint64_t gp, uint64_t length) = 0;

  /// Subtree `old_sid` was collapsed into fresh segment `new_sid`.
  virtual Status OnCollapseSubtree(SegmentId old_sid, SegmentId new_sid) = 0;

  /// ApplyBatch is starting a batch of `size` primitive operations. The
  /// per-op callbacks that follow — up to the matching OnBatchEnd — may
  /// be buffered and made durable together: the batch is prefix-durable,
  /// so a crash inside it loses a suffix of ops, never a middle one.
  virtual Status OnBatchBegin(size_t size) {
    (void)size;
    return Status::OK();
  }

  /// The batch is over (also called when the batch stopped early on an
  /// op error, covering the successfully applied prefix). Buffered
  /// records must be flushed before returning OK.
  virtual Status OnBatchEnd() { return Status::OK(); }
};

}  // namespace lazyxml

#endif  // LAZYXML_CORE_UPDATE_CAPTURE_H_
