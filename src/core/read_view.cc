#include "core/read_view.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace lazyxml {

namespace {

void SetViewsOpenGauge(size_t open) {
  LAZYXML_METRIC_GAUGE(views_gauge, "mvcc.views_open");
  views_gauge.Set(static_cast<double>(open));
}

}  // namespace

std::shared_ptr<const ReadSnapshot> MvccState::Pin(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = snapshots_.find(epoch);
  if (it == snapshots_.end()) return nullptr;
  ++open_[epoch];
  size_t open = 0;
  for (const auto& [e, n] : open_) open += n;
  SetViewsOpenGauge(open);
  return it->second;
}

std::shared_ptr<const ReadSnapshot> MvccState::PinNew(
    std::shared_ptr<const ReadSnapshot> snap) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = snapshots_.emplace(snap->epoch, snap);
  // A concurrent OpenReadView may have registered this epoch first; its
  // snapshot is canonical and the duplicate clone is dropped.
  ++open_[it->first];
  size_t open = 0;
  for (const auto& [e, n] : open_) open += n;
  SetViewsOpenGauge(open);
  return it->second;
}

void MvccState::Unpin(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_.find(epoch);
  if (it == open_.end()) return;  // defensive: unmatched unpin
  if (--it->second == 0) open_.erase(it);
  if (open_.empty()) poisoned_ = false;
  ReclaimLocked();
  size_t open = 0;
  for (const auto& [e, n] : open_) open += n;
  SetViewsOpenGauge(open);
}

bool MvccState::HasOpenViews() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !open_.empty();
}

void MvccState::CaptureScan(TagId tid, SegmentId sid, uint64_t retire_epoch,
                            ElementScan pre_image) {
  std::lock_guard<std::mutex> lock(mu_);
  if (open_.empty()) return;
  auto& chain = versions_[{tid, sid}];
  // Capture-once per (key, epoch): the first capture of an epoch holds
  // the epoch-start state; a later touch of the same list within the
  // same epoch (one batch) must not overwrite it.
  if (!chain.empty() && chain.back().retire_epoch >= retire_epoch) return;
  chain.push_back(Version{retire_epoch, std::move(pre_image)});
  ++versions_retired_total_;
  LAZYXML_METRIC_COUNTER(retired_counter, "mvcc.versions_retired_total");
  retired_counter.Increment();
}

ElementScan MvccState::VersionedScanAt(TagId tid, SegmentId sid,
                                       uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = versions_.find({tid, sid});
  if (it == versions_.end()) return nullptr;
  // Smallest retire epoch > `epoch`: chains ascend by retire epoch.
  const auto& chain = it->second;
  auto vit = std::upper_bound(
      chain.begin(), chain.end(), epoch,
      [](uint64_t e, const Version& v) { return e < v.retire_epoch; });
  if (vit == chain.end()) return nullptr;
  return vit->scan;
}

void MvccState::Poison() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_.empty()) poisoned_ = true;
}

bool MvccState::poisoned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return poisoned_;
}

void MvccState::ReclaimLocked() {
  LAZYXML_METRIC_HISTOGRAM(reclaim_hist, "mvcc.reclaim_us");
  obs::ScopedLatency reclaim_latency(reclaim_hist);
  // A version with retire epoch R serves exactly the views pinned at
  // epochs < R, so it survives iff the oldest open epoch is < R.
  const uint64_t min_open =
      open_.empty() ? UINT64_MAX : open_.begin()->first;
  for (auto it = versions_.begin(); it != versions_.end();) {
    auto& chain = it->second;
    size_t drop = 0;
    while (drop < chain.size() && chain[drop].retire_epoch <= min_open) {
      ++drop;
    }
    if (drop > 0) {
      versions_reclaimed_total_ += drop;
      chain.erase(chain.begin(), chain.begin() + drop);
    }
    it = chain.empty() ? versions_.erase(it) : std::next(it);
  }
  for (auto it = snapshots_.begin(); it != snapshots_.end();) {
    it = open_.count(it->first) == 0 ? snapshots_.erase(it) : std::next(it);
  }
}

MvccStats MvccState::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  MvccStats s;
  for (const auto& [epoch, n] : open_) s.views_open += n;
  s.epochs_pinned = snapshots_.size();
  for (const auto& [key, chain] : versions_) s.versions_live += chain.size();
  s.versions_retired_total = versions_retired_total_;
  s.versions_reclaimed_total = versions_reclaimed_total_;
  s.poisoned = poisoned_;
  return s;
}

Status MvccState::CheckInvariants() const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t min_open =
      open_.empty() ? UINT64_MAX : open_.begin()->first;
  for (const auto& [key, chain] : versions_) {
    if (chain.empty()) {
      return Status::Internal("I-MVCC: empty version chain retained");
    }
    uint64_t prev = 0;
    for (const Version& v : chain) {
      if (v.scan == nullptr) {
        return Status::Internal("I-MVCC: null pre-image in version chain");
      }
      if (v.retire_epoch <= prev) {
        return Status::Internal(
            "I-MVCC: version chain not strictly ascending");
      }
      prev = v.retire_epoch;
      if (v.retire_epoch <= min_open) {
        return Status::Internal(
            "I-MVCC: retained version no open view can need");
      }
    }
  }
  for (const auto& [epoch, count] : open_) {
    if (count == 0) {
      return Status::Internal("I-MVCC: zero-count open epoch entry");
    }
  }
  for (const auto& [epoch, snap] : snapshots_) {
    if (open_.count(epoch) == 0) {
      return Status::Internal("I-MVCC: cached snapshot with no open view");
    }
    if (snap == nullptr || snap->log == nullptr || snap->dict == nullptr ||
        snap->epoch != epoch) {
      return Status::Internal("I-MVCC: inconsistent cached snapshot");
    }
  }
  return Status::OK();
}

SnapshotReader::~SnapshotReader() { mvcc_->Unpin(snap_->epoch); }

ElementScan SnapshotReader::GetScan(TagId tid, SegmentId sid) {
  // Cache entries at the pinned epoch were recorded from exactly the
  // pinned state (by the live facade when current, or by an earlier view
  // query), so a hit is always safe to serve.
  if (cache_ != nullptr) {
    if (ElementScan hit = cache_->Get(tid, sid, snap_->epoch)) return hit;
  }
  ElementScan scan = ScanAt(tid, sid);
  if (scan == nullptr) {
    // Untouched since the pinned epoch: the live index is still exact.
    scan = std::make_shared<std::vector<LocalElement>>(
        live_index_->GetElements(tid, sid));
  }
  if (cache_ != nullptr) cache_->Put(tid, sid, snap_->epoch, scan);
  return scan;
}

Result<LazyJoinResult> SnapshotReader::JoinByName(
    std::string_view ancestor_tag, std::string_view descendant_tag,
    const LazyJoinOptions& options) {
  if (mvcc_->poisoned()) {
    return Status::Internal(
        "read view invalidated: the database was mutated out of band "
        "(mutable_* bypass) while this view was open");
  }
  auto a = snap_->dict->Lookup(ancestor_tag);
  auto d = snap_->dict->Lookup(descendant_tag);
  if (!a.ok() || !d.ok()) return LazyJoinResult{};  // unknown tag: empty
  const TagId atid = a.ValueOrDie();
  const TagId dtid = d.ValueOrDie();

  // Same summary pruning as the live JoinByName, against the snapshot's
  // copied summary (fresh at the pinned epoch by construction).
  JoinPrune prune;
  if (const PathSummary* ps = path_summary()) {
    prune = ps->ComputeJoinPrune(atid, dtid, options.parent_child);
  }
  LazyJoinOptions jopts = options;
  if (prune.usable) {
    if (prune.provably_empty) {
      LazyJoinResult out;
      for (const TagListEntry& e : snap_->log->tag_list().EntriesFor(atid)) {
        ++out.stats.segments_pruned;
        out.stats.elements_skipped += e.count;
      }
      for (const TagListEntry& e : snap_->log->tag_list().EntriesFor(dtid)) {
        ++out.stats.segments_pruned;
        out.stats.elements_skipped += e.count;
      }
      LAZYXML_METRIC_COUNTER(pruned_joins, "query.joins_pruned_total");
      LAZYXML_METRIC_COUNTER(pruned_segs, "query.segments_pruned_total");
      LAZYXML_METRIC_COUNTER(skipped, "query.elements_skipped_total");
      pruned_joins.Increment();
      pruned_segs.Add(out.stats.segments_pruned);
      skipped.Add(out.stats.elements_skipped);
      return out;
    }
    jopts.ancestor_sid_filter = &prune.ancestor_sids;
    jopts.descendant_sid_filter = &prune.descendant_sids;
  }
  ParallelJoinOptions popts;
  popts.join = jopts;
  // The snapshot carries a compact index only when one was built at
  // exactly the pinned epoch; it then covers every scan and the version
  // source is never consulted (compact indexes are immutable).
  return ParallelLazyJoin(*snap_->log, *live_index_, atid, dtid, popts,
                          pool_, cache_, snap_->epoch,
                          query_options_.use_compact_index
                              ? snap_->compact.get()
                              : nullptr,
                          this);
}

}  // namespace lazyxml
