#include "core/parallel_join.h"

#include <algorithm>
#include <utility>

#include "core/lazy_join_internal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lazyxml {
namespace internal {

std::vector<PartitionSeed> PartitionRounds(const JoinContext& ctx,
                                           size_t max_parts) {
  const size_t n = ctx.sl_d.entries.size();
  std::vector<PartitionSeed> seeds;
  if (max_parts <= 1 || n <= 1) {
    PartitionSeed whole;
    whole.d_end = n;
    seeds.push_back(std::move(whole));
    return seeds;
  }
  const size_t parts = std::min(max_parts, n);

  // Pass 1: mark stack-reset rounds — rounds the serial kernel enters
  // with an empty stack. Segments nest or are disjoint, so the stack is
  // empty exactly when sd->gp has passed the end of every consumed
  // live-pushed A-segment; a running max of those ends decides it in one
  // linear walk. Mirrors Step 2's skip rules (disjoint; childless under
  // optimize_stack) — filter-emptiness is unknowable without fetching, so
  // such segments count as live here, which only makes reset detection
  // conservative and seeds at worst slightly larger (extra seeded entries
  // with empty filtered scans emit nothing; see docs/PARALLELISM.md).
  std::vector<uint8_t> is_reset(n, 0);
  {
    size_t ia = 0;
    uint64_t max_live_end = 0;
    for (size_t id = 0; id < n; ++id) {
      const SegmentNode* sd = ctx.sl_d.nodes[id];
      if (sd->gp >= max_live_end) is_reset[id] = 1;
      while (ia < ctx.sl_a.nodes.size() && ctx.sl_a.nodes[ia]->gp < sd->gp) {
        const SegmentNode* sa = ctx.sl_a.nodes[ia];
        ++ia;
        if (!sa->ContainsSegment(*sd)) continue;
        if (ctx.options.optimize_stack && sa->children.empty()) continue;
        max_live_end = std::max(max_live_end, sa->end());
      }
    }
  }

  // Boundaries: even splits, snapped to the nearest reset round within a
  // quarter-chunk window (reset seeds are free — no reconstruction).
  const size_t window = std::max<size_t>(1, (n / parts) / 4);
  std::vector<size_t> bounds;
  bounds.reserve(parts - 1);
  for (size_t p = 1; p < parts; ++p) {
    const size_t cand = p * n / parts;
    const size_t floor_id = bounds.empty() ? 1 : bounds.back() + 1;
    if (cand < floor_id || cand >= n) continue;
    size_t chosen = cand;
    const size_t lo = std::max(floor_id, cand > window ? cand - window : 1);
    const size_t hi = std::min(n - 1, cand + window);
    size_t best_dist = window + 1;
    for (size_t id = lo; id <= hi; ++id) {
      if (!is_reset[id]) continue;
      const size_t dist = id > cand ? id - cand : cand - id;
      if (dist < best_dist) {
        best_dist = dist;
        chosen = id;
      }
    }
    bounds.push_back(chosen);
  }

  // Pass 2: replay the stack geometry once more, snapshotting (ia, live
  // stack) at each boundary *after* that round's pops (the kernel state
  // entering the round; its own re-pop is then a no-op).
  struct Mark {
    size_t round = 0;
    size_t ia = 0;
    std::vector<size_t> stack;  // SL_A indices, bottom first
  };
  std::vector<Mark> marks;
  marks.reserve(bounds.size() + 1);
  marks.push_back(Mark{});
  {
    size_t ia = 0;
    std::vector<size_t> gstack;
    size_t bi = 0;
    for (size_t id = 0; id < n && bi < bounds.size(); ++id) {
      const SegmentNode* sd = ctx.sl_d.nodes[id];
      while (!gstack.empty() &&
             sd->gp >= ctx.sl_a.nodes[gstack.back()]->end()) {
        gstack.pop_back();
      }
      if (id == bounds[bi]) {
        marks.push_back(Mark{id, ia, gstack});
        ++bi;
      }
      while (ia < ctx.sl_a.nodes.size() && ctx.sl_a.nodes[ia]->gp < sd->gp) {
        const SegmentNode* sa = ctx.sl_a.nodes[ia];
        ++ia;
        if (!sa->ContainsSegment(*sd)) continue;
        if (ctx.options.optimize_stack && sa->children.empty()) continue;
        gstack.push_back(ia - 1);
      }
    }
  }

  seeds.reserve(marks.size());
  for (size_t i = 0; i < marks.size(); ++i) {
    PartitionSeed seed;
    seed.d_begin = marks[i].round;
    seed.d_end = i + 1 < marks.size() ? marks[i + 1].round : n;
    seed.ia_begin = marks[i].ia;
    seed.live_stack = std::move(marks[i].stack);
    seeds.push_back(std::move(seed));
  }
  return seeds;
}

}  // namespace internal

Result<LazyJoinResult> ParallelLazyJoin(
    const UpdateLog& log, const ElementIndex& index, TagId ancestor_tid,
    TagId descendant_tid, const ParallelJoinOptions& options,
    ThreadPool* pool, ElementScanCache* cache, uint64_t cache_epoch,
    const CompactElementIndex* compact, const ScanVersionSource* versions) {
  obs::TraceSpan query_span("join.query");
  LAZYXML_METRIC_COUNTER(queries_counter, "join.queries");
  LAZYXML_METRIC_COUNTER(partitions_counter, "join.partitions");
  LAZYXML_METRIC_HISTOGRAM(query_hist, "join.query_us");
  queries_counter.Increment();
  obs::ScopedLatency query_latency(query_hist);
  internal::JoinContext ctx;
  bool empty = false;
  {
    obs::TraceSpan prepare_span("join.prepare");
    LAZYXML_RETURN_NOT_OK(internal::PrepareJoinContext(
        log, index, ancestor_tid, descendant_tid, options.join, cache,
        cache_epoch, compact, &ctx, &empty, versions));
  }
  LazyJoinResult out;
  out.stats.segments_pruned = ctx.segments_pruned;
  out.stats.elements_skipped = ctx.elements_skipped;
  if (empty) return out;

  const size_t n = ctx.sl_d.entries.size();
  size_t max_parts = 1;
  if (pool != nullptr && pool->num_threads() > 1) {
    const size_t by_threads = pool->num_threads() * options.tasks_per_thread;
    const size_t by_rounds =
        std::max<size_t>(1, n / std::max<size_t>(1, options.min_rounds_per_task));
    max_parts = std::min(by_threads, by_rounds);
  }
  std::vector<internal::PartitionSeed> seeds;
  {
    obs::TraceSpan seed_span("join.partition_seed");
    seeds = internal::PartitionRounds(ctx, max_parts);
  }
  partitions_counter.Add(seeds.size());

  if (seeds.size() == 1) {
    obs::TraceSpan rounds_span("join.rounds");
    LAZYXML_RETURN_NOT_OK(internal::RunJoinPartition(ctx, seeds[0], &out));
    return out;
  }

  std::vector<LazyJoinResult> locals(seeds.size());
  std::vector<Status> statuses(seeds.size());
  {
    obs::TraceSpan rounds_span("join.rounds");
    pool->ParallelFor(seeds.size(), [&](size_t i) {
      statuses[i] = internal::RunJoinPartition(ctx, seeds[i], &locals[i]);
    });
  }
  for (const Status& st : statuses) LAZYXML_RETURN_NOT_OK(st);

  obs::TraceSpan splice_span("join.splice");
  size_t total_pairs = 0;
  for (const LazyJoinResult& r : locals) total_pairs += r.pairs.size();
  out.pairs.reserve(total_pairs);
  for (LazyJoinResult& r : locals) {
    out.pairs.insert(out.pairs.end(),
                     std::make_move_iterator(r.pairs.begin()),
                     std::make_move_iterator(r.pairs.end()));
    out.stats.cross_segment_pairs += r.stats.cross_segment_pairs;
    out.stats.in_segment_pairs += r.stats.in_segment_pairs;
    out.stats.segments_pushed += r.stats.segments_pushed;
    out.stats.segments_skipped += r.stats.segments_skipped;
    out.stats.elements_fetched += r.stats.elements_fetched;
    out.stats.scan_cache_hits += r.stats.scan_cache_hits;
    out.stats.blocks_skipped += r.stats.blocks_skipped;
  }
  out.stats.partitions = seeds.size();
  return out;
}

}  // namespace lazyxml
