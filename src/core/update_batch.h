// UpdateBatch: a value type describing a sequence of primitive updates
// for LazyDatabase::ApplyBatch. The batch is applied with EXACTLY the
// observable effect of calling InsertSegment/RemoveSegment one by one
// in order (same sids, same frozen coordinates, same serialized
// snapshot bytes, same error on the first failing op) while amortizing
// per-op costs: one scan-cache epoch bump, one element-index flush per
// insert run, one WAL write + sync per batch, one writer lock per batch
// (docs/DESIGN.md "Batched ingestion", docs/INVARIANTS.md I-BATCH).

#ifndef LAZYXML_CORE_UPDATE_BATCH_H_
#define LAZYXML_CORE_UPDATE_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/segment.h"

namespace lazyxml {

/// One primitive update. Fields unused by the kind are zero / empty.
struct UpdateOp {
  enum class Kind : uint8_t { kInsert, kRemove };

  Kind kind = Kind::kInsert;
  std::string text;     ///< insert: segment text
  uint64_t gp = 0;      ///< insert / remove: global position
  uint64_t length = 0;  ///< remove: width of the removed region

  static UpdateOp Insert(std::string text, uint64_t gp) {
    UpdateOp op;
    op.kind = Kind::kInsert;
    op.text = std::move(text);
    op.gp = gp;
    return op;
  }
  static UpdateOp Remove(uint64_t gp, uint64_t length) {
    UpdateOp op;
    op.kind = Kind::kRemove;
    op.gp = gp;
    op.length = length;
    return op;
  }
};

/// Builder for a batch of ops; pass ops() to ApplyBatch.
class UpdateBatch {
 public:
  UpdateBatch& Insert(std::string text, uint64_t gp) {
    ops_.push_back(UpdateOp::Insert(std::move(text), gp));
    return *this;
  }
  UpdateBatch& Remove(uint64_t gp, uint64_t length) {
    ops_.push_back(UpdateOp::Remove(gp, length));
    return *this;
  }

  const std::vector<UpdateOp>& ops() const { return ops_; }
  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }
  void clear() { ops_.clear(); }

 private:
  std::vector<UpdateOp> ops_;
};

/// What ApplyBatch did, for observability and tests. When the batch
/// fails, the counters cover EXACTLY the applied prefix: the rejected
/// op contributes no applied count, no cancelled pair, no index-flush
/// or index-record counts, and its sids slot is 0 (even though the sid
/// itself is burned inside the database so that a retry of the suffix
/// assigns the same later sids as sequential application would).
/// `ops` alone is descriptive — always the full batch size.
struct BatchStats {
  size_t ops = 0;              ///< ops in the batch (even the unapplied ones)
  size_t applied = 0;          ///< ops fully applied (== ops on success)
  size_t cancelled_pairs = 0;  ///< insert-then-remove pairs short-circuited
  size_t index_flushes = 0;    ///< deferred element-index batch applies
  size_t index_records = 0;    ///< element records applied across flushes
  /// sids[i] is the sid assigned to op i if it was a fully-applied
  /// insert (including a cancelled one — its sid is burned to keep
  /// later sids identical to sequential application), 0 for removes
  /// and for a rejected final op.
  std::vector<SegmentId> sids;
};

}  // namespace lazyxml

#endif  // LAZYXML_CORE_UPDATE_BATCH_H_
