// CompactElementIndex: the succinct post-Freeze representation of the
// element index that the Lazy-Join kernels scan directly.
//
// After Freeze() the per-(tag, segment) element lists are immutable, yet
// the B+-tree stores them as full-width (start, end, level) records in
// heap leaves — pointer-chasing and cache-missing through data that is
// highly compressible (Maneth & Sebastian, "Fast and Tiny Structural
// Self-Indexes for XML", PAPERS.md). This module re-packs each list into
// a columnar byte stream:
//
//   * `start` — lists are start-sorted and starts are unique, so the
//     stream stores varint deltas (strictly positive between records;
//     the first start of each block lives in the block header);
//   * `end`   — stored as the zigzag-varint extent `end - start` (small
//     for leaves, bounded by the segment for the root);
//   * `level` — plain varint (tiny: document depth).
//
// Records are grouped into blocks of at most kCompactBlockTargetBytes
// encoded bytes / kCompactBlockMaxRecords records, each carrying a skip
// header (first_start, max_end, count). The headers alone answer "can
// any element of this block straddle splice position p?" — a block with
// no p in (first_start, max_end) provably holds no straddler, so the
// straddle filter skips it without decoding a single record. Both caps
// bound the decode working set, so one block always fits a fixed-size
// buffer.
//
// Format invariants (checked by DecodeBlock / Validate, fuzzed by
// fuzz/fuzz_compact.cc, proven equal to the tree by the scrubber's
// I-COMPACT validator in check/database_check.h):
//   B1. header.count in [1, kCompactBlockMaxRecords];
//   B2. record starts strictly increase within a block and across
//       consecutive blocks (header.first_start of block b+1 is greater
//       than the last start of block b);
//   B3. every extent is > 0 (end > start) and every level fits uint32;
//   B4. a block's encoded bytes decode to exactly header.count records
//       with no bytes left over;
//   B5. header.max_end equals the maximum decoded end of the block.
//
// See docs/COMPACT_INDEX.md for the full write-up, including the
// serial-equivalence argument for block cursors in the join kernels.

#ifndef LAZYXML_CORE_COMPACT_INDEX_H_
#define LAZYXML_CORE_COMPACT_INDEX_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/serial.h"
#include "core/element_index.h"
#include "core/segment.h"
#include "xml/tag_dict.h"

namespace lazyxml {

/// Target encoded bytes per block; a block closes at the first record
/// boundary at or past this size.
inline constexpr size_t kCompactBlockTargetBytes = 4096;
/// Hard per-block record cap (trips before the byte cap on very dense
/// streams); bounds the decode buffer a cursor needs.
inline constexpr size_t kCompactBlockMaxRecords = 1024;

namespace compactenc {

/// LEB128-style base-128 varint append.
void PutVarint(std::vector<uint8_t>* out, uint64_t v);

/// Bounds-checked varint read: advances *p past the encoding on success.
/// Fails on truncation and on encodings longer than 10 bytes. Dispatches
/// to a SWAR fast path (one 8-byte load locates the terminator, three
/// shift-mask folds gather the 7-bit groups) when at least 8 bytes
/// remain; falls back to the scalar loop near the buffer tail, for
/// 9-10-byte encodings, and on big-endian targets.
bool GetVarint(const uint8_t** p, const uint8_t* end, uint64_t* v);

/// The portable scalar decode loop — same contract as GetVarint. Kept
/// callable so bench_compact_index can report the scalar-vs-SWAR delta.
bool GetVarintScalar(const uint8_t** p, const uint8_t* end, uint64_t* v);

inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace compactenc

/// Skip header of one encoded block (invariants B1–B5 above).
struct CompactBlockHeader {
  uint64_t first_start = 0;  ///< start of the block's first record
  uint64_t max_end = 0;      ///< max end over the block's records
  uint64_t byte_offset = 0;  ///< offset of the block's bytes in the stream
  uint32_t count = 0;        ///< records in the block
  uint32_t byte_len = 0;     ///< encoded length of the block
};

/// One (tag, segment) element list in compact columnar form. Immutable
/// after Encode; shared by const handle.
class CompactTagScan {
 public:
  /// Encodes `elems` (strictly ascending start, end > start — the order
  /// ElementIndex::GetElements returns). InvalidArgument otherwise.
  static Result<CompactTagScan> Encode(std::span<const LocalElement> elems);

  uint64_t count() const { return count_; }
  size_t num_blocks() const { return headers_.size(); }
  const CompactBlockHeader& header(size_t b) const { return headers_[b]; }
  std::span<const CompactBlockHeader> headers() const { return headers_; }
  std::span<const uint8_t> bytes() const { return bytes_; }

  /// Actual heap footprint of the compact representation (what the scan
  /// cache charges for a compressed entry).
  size_t MemoryBytes() const {
    return sizeof(CompactTagScan) +
           headers_.capacity() * sizeof(CompactBlockHeader) +
           bytes_.capacity();
  }

  /// Decodes block `b` into out[0 .. header(b).count). The caller's
  /// buffer must hold at least kCompactBlockMaxRecords records.
  /// Corruption on any invariant violation (B1–B5).
  Status DecodeBlock(size_t b, LocalElement* out) const;

  /// Decodes every block, appending to `*out`.
  Status DecodeAll(std::vector<LocalElement>* out) const;

  /// Full structural validation: decodes every block and re-checks the
  /// cross-block ordering invariant (B2). Cheap relative to a rebuild.
  Status Validate() const;

  /// Serialization for the snapshot's compact section (core/snapshot.cc).
  void SerializeTo(ByteWriter* w) const;
  static Result<CompactTagScan> DeserializeFrom(ByteReader* r);

 private:
  CompactTagScan() = default;

  std::vector<CompactBlockHeader> headers_;
  std::vector<uint8_t> bytes_;
  uint64_t count_ = 0;
};

/// Shareable immutable handle to one compact list.
using CompactScanHandle = std::shared_ptr<const CompactTagScan>;

/// The compact element index: every (tid, sid) list of the frozen
/// B+-tree index, re-encoded. Built by LazyDatabase::Freeze() when
/// QueryOptions::use_compact_index is set; record-for-record equal to
/// the tree (invariant I-COMPACT, enforced by check::CheckDatabase).
class CompactElementIndex {
 public:
  /// Re-encodes every list of `index` (one ForEachRecord pass — records
  /// arrive grouped by (tid, sid) in ascending start order).
  static Result<std::shared_ptr<const CompactElementIndex>> Build(
      const ElementIndex& index);

  /// The compact list for (tid, sid); nullptr when the index holds no
  /// such records (an empty list).
  CompactScanHandle GetList(TagId tid, SegmentId sid) const {
    auto it = lists_.find({tid, sid});
    return it == lists_.end() ? nullptr : it->second;
  }

  uint64_t total_records() const { return total_records_; }
  size_t num_lists() const { return lists_.size(); }

  /// Heap footprint of the whole compact index (headers + streams + map).
  size_t MemoryBytes() const;

  /// Visits every list in ascending (tid, sid) order (deterministic, for
  /// the scrubber and serialization). `fn` returning false stops.
  void ForEachList(
      const std::function<bool(TagId, SegmentId, const CompactTagScan&)>& fn)
      const;

  /// Snapshot section (core/snapshot.cc, format v3).
  void SerializeTo(ByteWriter* w) const;
  /// Deserializes and fully validates (every block decoded once), so an
  /// installed compact index never fails to decode later.
  static Result<std::shared_ptr<const CompactElementIndex>> DeserializeFrom(
      ByteReader* r);

 private:
  CompactElementIndex() = default;

  /// Ordered map: GetList is O(log lists) — negligible next to a decode —
  /// and iteration order is the deterministic (tid, sid) order that the
  /// scrubber and snapshot serialization depend on.
  std::map<std::pair<TagId, SegmentId>, CompactScanHandle> lists_;
  uint64_t total_records_ = 0;
};

}  // namespace lazyxml

#endif  // LAZYXML_CORE_COMPACT_INDEX_H_
