// SegmentNode: one XML segment of the super document, i.e. one leaf of the
// SB-tree / node of the ER-tree (paper §3.1-3.2).
//
// Coordinate systems
// ------------------
// Every segment has two coordinate systems:
//  * global: current byte offsets in the super document; `gp` and `l`
//    change as segments are inserted/removed around and inside it.
//  * frozen (local): byte offsets in the segment's text *as it was at
//    insertion time*. Element labels (paper §3.4) and child local
//    positions `lp` (paper Def. 2) live here and never change.
// The divergence between the two is fully described by (a) the child
// segments spliced in (each contributes +child.l of global width at frozen
// position child.lp) and (b) the *gaps* — frozen intervals whose text was
// later removed (each contributes -gap width). The paper tracks (a)
// explicitly and is silent about (b) for partial deletions (its Def. 2
// invariance argument only covers whole-segment sibling updates); gaps are
// the missing piece that keeps frozen coordinates consistent after
// deletions that remove part of a segment's own text.

#ifndef LAZYXML_CORE_SEGMENT_H_
#define LAZYXML_CORE_SEGMENT_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "xml/tag_dict.h"

namespace lazyxml {

/// Unique segment identifier, assigned by the system at insertion
/// (paper §3.2). Id 0 is the dummy root.
using SegmentId = uint64_t;

/// The dummy root's id.
inline constexpr SegmentId kRootSegmentId = 0;

/// A frozen interval of a segment's original text that has been removed.
struct FrozenGap {
  uint64_t begin = 0;  ///< frozen offset of the first removed byte
  uint64_t end = 0;    ///< frozen offset one past the last removed byte

  uint64_t width() const { return end - begin; }
};

/// One element of the segment's nesting summary: frozen interval, parent
/// link and absolute level, in document (preorder/start) order.
///
/// The summary answers "how deep is frozen offset f?" in O(log n + depth)
/// — the LevelNum derivation the paper leaves implicit (§3.4 keys carry
/// LevelNum but §3.3 assumes an insertion arrives as only position +
/// length, so the depth of the splice point must be computed). It needs
/// no maintenance on deletions: a removed element lies entirely inside a
/// removed frozen interval, so it can never again contain a reachable
/// splice point and the stale entry is harmless.
struct NestingEntry {
  uint64_t start = 0;
  uint64_t end = 0;
  /// Index of the parent entry within the summary; kNoParentEntry at top.
  uint32_t parent = 0xffffffffu;
  /// Absolute level in the super document.
  uint32_t level = 0;
  /// Tag of the element (kNoEntryTag on entries restored from pre-v4
  /// snapshots whose element record no longer exists — such entries are
  /// stale, i.e. never on the ancestor chain of a reachable offset).
  TagId tid = 0xffffffffu;
};

inline constexpr uint32_t kNoParentEntry = 0xffffffffu;
inline constexpr TagId kNoEntryTag = 0xffffffffu;

/// One segment (ER-tree node / SB-tree leaf).
struct SegmentNode {
  SegmentId sid = 0;
  uint64_t gp = 0;  ///< global position (offset of first byte, current)
  uint64_t l = 0;   ///< current global width, incl. nested child segments
  uint64_t lp = 0;  ///< frozen position within the parent (paper Def. 2)
  /// Absolute depth of the splice point: the level of the innermost
  /// element containing this segment's text. Elements of this segment
  /// have absolute level = base_level + their level within the segment.
  uint32_t base_level = 0;

  SegmentNode* parent = nullptr;
  /// Child segments ordered by global position (equivalently by lp).
  std::vector<SegmentNode*> children;
  /// Removed frozen intervals, disjoint, ascending.
  std::vector<FrozenGap> gaps;
  /// Distinct tags among this segment's *own* elements (ascending tid).
  std::vector<TagId> distinct_tags;
  /// Nesting summary of this segment's own elements, start-ordered.
  std::vector<NestingEntry> summary;

  /// Global offset one past the segment's last byte.
  uint64_t end() const { return gp + l; }

  /// True iff the global point `g` lies strictly inside this segment
  /// (insertion at either boundary belongs to the parent).
  bool ContainsPoint(uint64_t g) const { return gp < g && g < end(); }

  /// True iff this segment properly contains the global range
  /// [other_gp, other_gp + other_l) (paper Def. 1).
  bool ContainsRange(uint64_t other_gp, uint64_t other_l) const {
    return gp < other_gp && end() > other_gp + other_l;
  }
  bool ContainsSegment(const SegmentNode& other) const {
    return ContainsRange(other.gp, other.l);
  }

  /// Converts a global point inside this segment (but inside no child) to
  /// frozen coordinates; a point inside a child segment maps to the
  /// child's splice position (its lp). `g` must be in [gp, end()].
  uint64_t FrozenPos(uint64_t g) const;

  /// Converts a frozen offset to the current global offset, resolving the
  /// splices and gaps before it. For element *start* offsets pass
  /// `include_splice_at_boundary=true` (a child spliced exactly at the
  /// start offset sits before the element and pushes it right); for
  /// element *end* offsets (one past the close tag) pass `false` (a child
  /// spliced exactly there is a following sibling).
  uint64_t FrozenToGlobal(uint64_t frozen,
                          bool include_splice_at_boundary) const;

  /// Sum of the widths of gaps entirely before frozen offset `f`.
  uint64_t GapWidthBefore(uint64_t f) const;

  /// Records a removed frozen interval, merging with existing gaps.
  void AddGap(uint64_t begin, uint64_t end);

  /// Level of the innermost own element whose frozen interval strictly
  /// contains `f`, or `fallback` when no own element contains it.
  uint32_t LevelAt(uint64_t f, uint32_t fallback) const;

  /// Tags of the own elements whose frozen intervals strictly contain
  /// `f`, outermost first — the within-segment suffix of the root-to-tag
  /// path of a splice point at `f` (query/path_summary.h).
  std::vector<TagId> AncestorTagsAt(uint64_t f) const;

  /// Approximate heap footprint of this node (for Fig. 11; excludes the
  /// nesting summary, which is element- not segment-proportional and is
  /// accounted separately).
  size_t MemoryBytes() const {
    return sizeof(SegmentNode) + children.capacity() * sizeof(SegmentNode*) +
           gaps.capacity() * sizeof(FrozenGap) +
           distinct_tags.capacity() * sizeof(TagId);
  }

  /// Heap footprint of the nesting summary.
  size_t SummaryMemoryBytes() const {
    return summary.capacity() * sizeof(NestingEntry);
  }
};

}  // namespace lazyxml

#endif  // LAZYXML_CORE_SEGMENT_H_
