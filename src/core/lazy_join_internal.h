// Internal machinery shared by the serial Lazy-Join (core/lazy_join.h)
// and the partitioned parallel executor (core/parallel_join.h). Not part
// of the stable API.
//
// The serial §4.2 kernel is factored into a *partition runner*: it joins
// a contiguous range of descendant tag-list rounds given (a) the ancestor
// cursor position at the range start and (b) the ancestor segments whose
// stack entries are live when the range starts (the "seed stack"). The
// full serial join is the special case {all rounds, cursor 0, empty
// seed}. Because all cross-round state of the kernel — the ancestor
// stack, its cached splice positions, and the prune cursors — is a pure
// function of the round index (see docs/PARALLELISM.md for the argument),
// seeded partitions emit pair-for-pair exactly what the serial kernel
// emits for the same rounds, and concatenating partition outputs in round
// order reproduces the serial output byte-identically.
//
// Supporting casts:
//  * SegmentResolver — batched FindSegment: one SB-tree descent per
//    distinct sid per query instead of one per loop round;
//  * SpliceMemo — memoizes splice-position lookups per tag-list path
//    (the FindSplicePos linear rescan becomes one hash build + O(1)
//    probes);
//  * ScanFetcher — element-scan reads through the shared
//    ElementScanCache when configured, with a per-query two-slot
//    fallback that covers the in-segment -> push reuse and self-join
//    double fetches the one-entry fetch_cache used to miss.

#ifndef LAZYXML_CORE_LAZY_JOIN_INTERNAL_H_
#define LAZYXML_CORE_LAZY_JOIN_INTERNAL_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/compact_index.h"
#include "core/element_index.h"
#include "core/lazy_join.h"
#include "core/scan_cache.h"
#include "core/tag_list.h"
#include "core/update_log.h"

namespace lazyxml {
namespace internal {

/// A tag-list with every entry's SegmentNode* resolved up front.
struct ResolvedEntries {
  std::span<const TagListEntry> entries;
  /// Parallel to `entries`.
  std::vector<const SegmentNode*> nodes;
};

/// Batched sid -> SegmentNode* resolution (one SB-tree descent per
/// distinct sid, shared by every loop round of the query).
class SegmentResolver {
 public:
  /// Resolves every entry sid and every sid on every entry path.
  Status ResolveList(const UpdateLog& log,
                     std::span<const TagListEntry> entries,
                     ResolvedEntries* out);

  /// Previously resolved node, or nullptr.
  const SegmentNode* Lookup(SegmentId sid) const {
    auto it = map_.find(sid);
    return it == map_.end() ? nullptr : it->second;
  }

 private:
  std::unordered_map<SegmentId, const SegmentNode*> map_;
};

/// Memoized splice-position lookup: for the path last queried, holds a
/// hash from ancestor sid to the splice position of that ancestor's
/// child on the path (paper Prop. 3's P value). One linear build per
/// path, O(1) per probe — replaces a linear rescan per probe.
class SpliceMemo {
 public:
  explicit SpliceMemo(const SegmentResolver* resolver)
      : resolver_(resolver) {}

  /// Splice position of `anc`'s child on `path`; false if `anc` is not
  /// an inner node of the path.
  bool Find(const std::vector<SegmentId>& path, SegmentId anc,
            uint64_t* p_out);

 private:
  const SegmentResolver* resolver_;
  const std::vector<SegmentId>* path_ = nullptr;  // memo key (identity)
  std::unordered_map<SegmentId, uint64_t> pos_;
};

/// A lazily decoding cursor over one compact list: materializes one
/// block at a time into a bounded buffer (kCompactBlockMaxRecords
/// records), so an unfiltered stack entry never holds a whole decoded
/// list. Indexing is by record position — the same positions the
/// materialized scan has — so the kernel's loops, prune cursors and
/// partition seeds are identical under either representation (the
/// serial-equivalence argument of docs/PARALLELISM.md carries over
/// verbatim; see docs/COMPACT_INDEX.md).
class BlockCursor {
 public:
  BlockCursor() = default;
  /// `fetched` (may be null) accumulates records decoded from the store,
  /// mirroring LazyJoinStats::elements_fetched semantics lazily: only
  /// blocks actually touched count.
  explicit BlockCursor(CompactScanHandle scan, uint64_t* fetched = nullptr);

  size_t size() const { return size_; }

  /// Element at record position `i` (< size()); decodes the containing
  /// block only when `i` leaves the currently buffered block.
  const LocalElement& At(size_t i) {
    if (i >= cur_lo_ && i < cur_hi_) return buf_[i - cur_lo_];
    return Load(i);
  }

 private:
  const LocalElement& Load(size_t i);

  CompactScanHandle scan_;
  uint64_t* fetched_ = nullptr;
  std::vector<uint64_t> prefix_;  ///< cumulative record count per block
  std::vector<LocalElement> buf_;
  size_t size_ = 0;
  size_t cur_lo_ = 0;
  size_t cur_hi_ = 0;  ///< record range of the buffered block (empty: 0,0)
};

/// Element-scan reads for one partition run: shared cache first (when
/// configured), then a two-slot per-query fallback (one slot per tag
/// role), then the backing store — the element-index B+-tree, or the
/// compact index when `compact` is non-null. Only store reads (tree
/// scans / block decodes) count into `stats->elements_fetched`; any
/// cache hit counts into `stats->scan_cache_hits`.
///
/// In compact mode raw lists are decoded straight from the compact
/// index (which is itself in memory — re-caching them would duplicate
/// bytes), and straddle-filtered lists are cached *compressed*
/// (re-encoded blocks under ScanKind::kStraddle), so the shared cache's
/// effective capacity in records grows by the compression ratio.
class ScanFetcher {
 public:
  /// `versions` (may be null) overrides tree-store reads for pinned-epoch
  /// view queries (docs/MVCC.md): a list retired after the view's epoch is
  /// served from the version store instead of the live index. Compact-mode
  /// reads never consult it — a snapshot only carries a compact index that
  /// was built at exactly its epoch, and compact indexes are immutable.
  ScanFetcher(const ElementIndex* index, ElementScanCache* cache,
              uint64_t epoch, const CompactElementIndex* compact = nullptr,
              const ScanVersionSource* versions = nullptr)
      : index_(index),
        cache_(cache),
        epoch_(epoch),
        compact_(compact),
        versions_(versions) {}

  ElementScan Fetch(TagId tid, SegmentId sid, LazyJoinStats* stats);

  /// The Fig. 9 push filter of `seg`'s scan (elements straddling at least
  /// one child splice position), shared through the cache under
  /// ScanKind::kStraddle — the filtered scan is a pure function of
  /// (tid, sid) at a fixed epoch, so partitions seeding the same segment
  /// compute it once instead of once each. In compact mode the filter
  /// consults each block's skip header first and skips provably
  /// straddler-free blocks without decoding them
  /// (stats->blocks_skipped / join.blocks_skipped_total).
  ElementScan FetchFiltered(TagId tid, const SegmentNode& seg,
                            LazyJoinStats* stats);

  /// A block-at-a-time cursor over the raw (tid, sid) list (compact mode
  /// only; the unfiltered ablation path uses it for stack entries).
  BlockCursor FetchCursor(TagId tid, SegmentId sid, LazyJoinStats* stats);

 private:
  const ElementIndex* index_;
  ElementScanCache* cache_;
  uint64_t epoch_;
  const CompactElementIndex* compact_;
  const ScanVersionSource* versions_;
  struct Slot {
    TagId tid = 0;
    SegmentId sid = 0;
    ElementScan scan;
  };
  Slot slots_[2];
};

/// Everything a partition runner needs, prepared once per query.
struct JoinContext {
  const UpdateLog* log = nullptr;
  const ElementIndex* index = nullptr;
  /// Non-null selects compact scans (QueryOptions::use_compact_index).
  /// Must be record-for-record equal to *index (invariant I-COMPACT) —
  /// the join output is then byte-identical under either representation.
  const CompactElementIndex* compact = nullptr;
  TagId ancestor_tid = 0;
  TagId descendant_tid = 0;
  LazyJoinOptions options;
  ElementScanCache* cache = nullptr;  ///< may be null
  uint64_t cache_epoch = 0;
  /// Non-null for pinned-epoch view queries: overrides tree-store scan
  /// reads for (tag, sid) lists retired after the epoch (docs/MVCC.md).
  const ScanVersionSource* versions = nullptr;
  SegmentResolver resolver;
  ResolvedEntries sl_a;
  ResolvedEntries sl_d;
  /// Backing storage for the filtered entry spans when a sid filter is
  /// set (sl_a/sl_d.entries then view these instead of the tag-list).
  std::vector<TagListEntry> filtered_a;
  std::vector<TagListEntry> filtered_d;
  /// Filter accounting, set by PrepareJoinContext (the drivers copy it
  /// into the result stats — it is per-query, not per-partition).
  uint64_t segments_pruned = 0;
  uint64_t elements_skipped = 0;
};

/// Validates log state (frozen, sorted) and batch-resolves both lists.
/// `*empty` is set when either list is empty (join output is empty).
Status PrepareJoinContext(const UpdateLog& log, const ElementIndex& index,
                          TagId ancestor_tid, TagId descendant_tid,
                          const LazyJoinOptions& options,
                          ElementScanCache* cache, uint64_t cache_epoch,
                          const CompactElementIndex* compact,
                          JoinContext* ctx, bool* empty,
                          const ScanVersionSource* versions = nullptr);

/// One partition of descendant rounds plus the kernel state at its start.
struct PartitionSeed {
  size_t d_begin = 0;  ///< first descendant round of the partition
  size_t d_end = 0;    ///< one past the last round
  size_t ia_begin = 0; ///< ancestor cursor at d_begin (serial-equivalent)
  /// Indices into sl_a of ancestor segments whose stack entries are live
  /// entering round d_begin, outermost (stack bottom) first. Empty at a
  /// stack-reset point.
  std::vector<size_t> live_stack;
};

/// Runs rounds [seed.d_begin, seed.d_end): reconstructs the seed stack,
/// then executes the serial kernel. Appends pairs (in the serial,
/// descendant-round-major order) and adds stats into `*out`.
Status RunJoinPartition(const JoinContext& ctx, const PartitionSeed& seed,
                        LazyJoinResult* out);

/// Splits the descendant rounds into at most `max_parts` contiguous
/// partitions of roughly equal round count, each with its
/// serial-equivalent seed. Boundaries snap to nearby stack-reset points
/// (provably empty seed stacks) when one falls close enough; otherwise
/// the live stack is reconstructed from the linear geometry pre-pass.
/// Returns a single whole-range partition when max_parts <= 1.
std::vector<PartitionSeed> PartitionRounds(const JoinContext& ctx,
                                           size_t max_parts);

}  // namespace internal
}  // namespace lazyxml

#endif  // LAZYXML_CORE_LAZY_JOIN_INTERNAL_H_
