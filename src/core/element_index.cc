#include "core/element_index.h"

#include <algorithm>

namespace lazyxml {

Status ElementIndex::InsertRecords(SegmentId sid,
                                   std::span<const ElementRecord> records) {
  if (records.empty()) return Status::OK();
  // Parser output is in preorder (ascending start) but interleaves tags;
  // one sort puts it in key order for the batched tree apply.
  std::vector<std::pair<Key, Val>> sorted;
  sorted.reserve(records.size());
  for (const ElementRecord& r : records) {
    sorted.emplace_back(Key{r.tid, sid, r.start}, Val{r.end, r.level});
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return tree_.InsertSortedBatch(std::move(sorted));
}

Status ElementIndex::InsertRecordsBatch(
    std::span<const ElementIndexRecord> records) {
  if (records.empty()) return Status::OK();
  std::vector<std::pair<Key, Val>> sorted;
  sorted.reserve(records.size());
  for (const ElementIndexRecord& r : records) {
    sorted.emplace_back(Key{r.tid, r.sid, r.start}, Val{r.end, r.level});
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return tree_.InsertSortedBatch(std::move(sorted));
}

Status ElementIndex::BuildFrom(std::vector<ElementIndexRecord> records) {
  std::vector<std::pair<Key, Val>> sorted;
  sorted.reserve(records.size());
  for (const ElementIndexRecord& r : records) {
    sorted.emplace_back(Key{r.tid, r.sid, r.start}, Val{r.end, r.level});
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return tree_.BuildFrom(std::move(sorted));
}

std::vector<LocalElement> ElementIndex::GetElements(TagId tid,
                                                    SegmentId sid) const {
  std::vector<LocalElement> out;
  const Key lo{tid, sid, 0};
  const Key hi{tid, sid + 1, 0};
  tree_.ScanRange(lo, hi, [&out](const Key& k, Val& v) {
    out.push_back(LocalElement{k.start, v.end, v.level});
    return true;
  });
  return out;
}

uint64_t ElementIndex::CountElements(TagId tid, SegmentId sid) const {
  uint64_t n = 0;
  const Key lo{tid, sid, 0};
  const Key hi{tid, sid + 1, 0};
  tree_.ScanRange(lo, hi, [&n](const Key&, Val&) {
    ++n;
    return true;
  });
  return n;
}

bool ElementIndex::FindInnermostContaining(SegmentId sid,
                                           std::span<const TagId> tags,
                                           uint64_t f,
                                           LocalElement* out) const {
  bool found = false;
  LocalElement best;
  for (TagId tid : tags) {
    const Key lo{tid, sid, 0};
    const Key hi{tid, sid + 1, 0};
    // The innermost container has the greatest start among elements with
    // start < f < end; a linear scan bounded by start < f suffices (the
    // index has no end-ordered access path, mirroring the paper).
    tree_.ScanRange(lo, hi, [&](const Key& k, Val& v) {
      if (k.start >= f) return false;
      if (v.end > f && (!found || k.start > best.start)) {
        best = LocalElement{k.start, v.end, v.level};
        found = true;
      }
      return true;
    });
  }
  if (found && out != nullptr) *out = best;
  return found;
}

Result<RemovedCounts> ElementIndex::DeleteSegment(SegmentId sid,
                                                  std::span<const TagId> tags) {
  RemovedCounts counts;
  for (TagId tid : tags) {
    std::vector<Key> doomed;
    const Key lo{tid, sid, 0};
    const Key hi{tid, sid + 1, 0};
    tree_.ScanRange(lo, hi, [&doomed, tid, sid](const Key& k, Val&) {
      doomed.push_back(Key{tid, sid, k.start});
      return true;
    });
    for (const Key& k : doomed) {
      LAZYXML_RETURN_NOT_OK(tree_.Erase(k));
    }
    if (!doomed.empty()) counts[tid] = doomed.size();
  }
  return counts;
}

Result<RemovedCounts> ElementIndex::DeleteRange(SegmentId sid,
                                                std::span<const TagId> tags,
                                                uint64_t begin, uint64_t end) {
  // Two passes so a straddle anywhere aborts before anything is deleted.
  std::vector<std::pair<TagId, Key>> doomed;
  for (TagId tid : tags) {
    const Key lo{tid, sid, 0};
    const Key hi{tid, sid + 1, 0};
    Status straddle = Status::OK();
    tree_.ScanRange(lo, hi, [&](const Key& k, Val& v) {
      const bool starts_inside = k.start >= begin && k.start < end;
      const bool ends_inside = v.end > begin && v.end <= end;
      if (starts_inside && ends_inside) {
        doomed.emplace_back(tid, Key{tid, sid, k.start});
      } else if (starts_inside != ends_inside &&
                 !(k.start < begin && v.end > end)) {
        straddle = Status::Corruption(
            "removal range splits an element record");
        return false;
      }
      return true;
    });
    LAZYXML_RETURN_NOT_OK(straddle);
  }
  RemovedCounts counts;
  for (const auto& [tid, k] : doomed) {
    LAZYXML_RETURN_NOT_OK(tree_.Erase(k));
    ++counts[tid];
  }
  return counts;
}

}  // namespace lazyxml
