#include "core/query_facade.h"

#include <algorithm>

namespace lazyxml {

Result<std::vector<JoinPair>> QueryFacade::JoinGlobal(
    std::string_view ancestor_tag, std::string_view descendant_tag,
    const LazyJoinOptions& options) {
  LAZYXML_ASSIGN_OR_RETURN(LazyJoinResult lazy,
                           JoinByName(ancestor_tag, descendant_tag, options));
  std::vector<JoinPair> out;
  out.reserve(lazy.pairs.size());
  for (const LazyJoinPair& p : lazy.pairs) {
    LAZYXML_ASSIGN_OR_RETURN(JoinPair g, ToGlobalPair(p));
    out.push_back(g);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<GlobalElement>> QueryFacade::MaterializeGlobalElements(
    std::string_view tag) {
  Freeze();
  const UpdateLog& log = update_log();
  auto tid_r = tag_dict().Lookup(tag);
  if (!tid_r.ok()) return std::vector<GlobalElement>{};
  const TagId tid = tid_r.ValueOrDie();
  std::vector<GlobalElement> out;
  for (const TagListEntry& e : log.tag_list().EntriesFor(tid)) {
    SegmentNode* node = log.NodeOf(e.sid());
    if (node == nullptr) {
      return Status::Internal("tag-list references a dead segment");
    }
    ElementScan scan = GetScan(tid, e.sid());
    for (const LocalElement& el : *scan) {
      out.push_back(GlobalElement{node->FrozenToGlobal(el.start, true),
                                  node->FrozenToGlobal(el.end, false),
                                  el.level});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace lazyxml
