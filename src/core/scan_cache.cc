#include "core/scan_cache.h"

#include "obs/metrics.h"

namespace lazyxml {

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

// Registry mirror of the per-instance counters, aggregated across every
// cache in the process (per-instance/per-shard breakdowns stay on the
// instance via Stats()/PerShardStats()).
struct RegistryMirror {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& insertions;
  obs::Counter& evictions;
  obs::Counter& invalidations;
  obs::Counter& admission_rejects;
  static RegistryMirror& Get() {
    auto& r = obs::MetricsRegistry::Global();
    static RegistryMirror* const m = new RegistryMirror{
        r.GetCounter("scan_cache.hits"),
        r.GetCounter("scan_cache.misses"),
        r.GetCounter("scan_cache.insertions"),
        r.GetCounter("scan_cache.evictions"),
        r.GetCounter("scan_cache.invalidations"),
        r.GetCounter("scan_cache.admission_rejects")};
    return *m;
  }
};

constexpr auto kRelaxed = std::memory_order_relaxed;

}  // namespace

ElementScanCache::ElementScanCache(ElementScanCacheOptions options)
    : options_(options) {
  const size_t n = RoundUpPow2(options_.shards == 0 ? 1 : options_.shards);
  shard_mask_ = n - 1;
  per_shard_budget_ = options_.capacity_bytes / n;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

ElementScan ElementScanCache::Get(TagId tid, SegmentId sid, uint64_t epoch,
                                  ScanKind kind) {
  const Key key{tid, sid, epoch, static_cast<uint32_t>(kind)};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> l(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    shard.misses.fetch_add(1, kRelaxed);
    RegistryMirror::Get().misses.Increment();
    return nullptr;
  }
  shard.hits.fetch_add(1, kRelaxed);
  RegistryMirror::Get().hits.Increment();
  // Move to the front of the LRU ring.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->scan;
}

CompactScanHandle ElementScanCache::GetCompact(TagId tid, SegmentId sid,
                                               uint64_t epoch, ScanKind kind) {
  const Key key{tid, sid, epoch,
                static_cast<uint32_t>(kind) | kCompactKindBit};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> l(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    shard.misses.fetch_add(1, kRelaxed);
    RegistryMirror::Get().misses.Increment();
    return nullptr;
  }
  shard.hits.fetch_add(1, kRelaxed);
  RegistryMirror::Get().hits.Increment();
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->compact;
}

void ElementScanCache::Put(TagId tid, SegmentId sid, uint64_t epoch,
                           ElementScan scan, ScanKind kind) {
  if (scan == nullptr) return;
  Entry entry;
  entry.key = Key{tid, sid, epoch, static_cast<uint32_t>(kind)};
  entry.bytes = ElementScanBytes(*scan) + sizeof(Entry);
  entry.scan = std::move(scan);
  PutEntry(std::move(entry));
}

void ElementScanCache::PutCompact(TagId tid, SegmentId sid, uint64_t epoch,
                                  CompactScanHandle scan, ScanKind kind) {
  if (scan == nullptr) return;
  Entry entry;
  entry.key =
      Key{tid, sid, epoch, static_cast<uint32_t>(kind) | kCompactKindBit};
  // Charge what is actually resident: the encoded blocks and their skip
  // headers, not count * sizeof(LocalElement) — the budget then admits
  // more records by exactly the compression ratio.
  entry.bytes = scan->MemoryBytes() + sizeof(Entry);
  entry.compact = std::move(scan);
  PutEntry(std::move(entry));
}

void ElementScanCache::PutEntry(Entry entry) {
  const size_t bytes = entry.bytes;
  if (bytes > per_shard_budget_) return;  // would evict a whole shard
  const Key key = entry.key;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> l(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    // Racing fill of the same scan: keep the incumbent, refresh recency.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  // Pressure starts at a high-water mark below the hard budget: testing
  // against the budget itself would let the evict-one/admit-one cycle
  // churn freely right at the boundary.
  const size_t high_water =
      per_shard_budget_ - per_shard_budget_ / kAdmissionSample;
  if (shard.bytes + bytes > high_water &&
      (shard.admission_tick++ % kAdmissionSample) != 0) {
    // Admission sampling under eviction pressure: a cyclic scan over a
    // working set larger than the budget would otherwise evict on every
    // fill and hit on none (LRU's worst case — measurably slower than no
    // cache at all). Admitting one candidate in kAdmissionSample keeps
    // the churn bounded and leaves residents in place long enough to be
    // re-hit on the next pass.
    shard.admission_rejects.fetch_add(1, kRelaxed);
    RegistryMirror::Get().admission_rejects.Increment();
    return;
  }
  shard.lru.push_front(std::move(entry));
  shard.map.emplace(key, shard.lru.begin());
  shard.bytes += bytes;
  shard.insertions.fetch_add(1, kRelaxed);
  RegistryMirror::Get().insertions.Increment();
  uint64_t evicted = 0;
  while (shard.bytes > per_shard_budget_ && shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.map.erase(victim.key);
    shard.lru.pop_back();
    ++evicted;
  }
  if (evicted > 0) {
    shard.evictions.fetch_add(evicted, kRelaxed);
    RegistryMirror::Get().evictions.Add(evicted);
  }
}

void ElementScanCache::Invalidate() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> l(shard->mu);
    const uint64_t purged = shard->lru.size();
    shard->invalidations.fetch_add(purged, kRelaxed);
    if (purged > 0) RegistryMirror::Get().invalidations.Add(purged);
    shard->lru.clear();
    shard->map.clear();
    shard->bytes = 0;
  }
}

ElementScanCacheStats ElementScanCache::Stats() const {
  ElementScanCacheStats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> l(shard->mu);
    out.hits += shard->hits.load(kRelaxed);
    out.misses += shard->misses.load(kRelaxed);
    out.insertions += shard->insertions.load(kRelaxed);
    out.evictions += shard->evictions.load(kRelaxed);
    out.invalidations += shard->invalidations.load(kRelaxed);
    out.admission_rejects += shard->admission_rejects.load(kRelaxed);
    out.bytes_used += shard->bytes;
    out.entries += shard->lru.size();
  }
  return out;
}

std::vector<ElementScanCacheStats> ElementScanCache::PerShardStats() const {
  std::vector<ElementScanCacheStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> l(shard->mu);
    ElementScanCacheStats s;
    s.hits = shard->hits.load(kRelaxed);
    s.misses = shard->misses.load(kRelaxed);
    s.insertions = shard->insertions.load(kRelaxed);
    s.evictions = shard->evictions.load(kRelaxed);
    s.invalidations = shard->invalidations.load(kRelaxed);
    s.admission_rejects = shard->admission_rejects.load(kRelaxed);
    s.bytes_used = shard->bytes;
    s.entries = shard->lru.size();
    out.push_back(s);
  }
  return out;
}

}  // namespace lazyxml
