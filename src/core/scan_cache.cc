#include "core/scan_cache.h"

namespace lazyxml {

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

ElementScanCache::ElementScanCache(ElementScanCacheOptions options)
    : options_(options) {
  const size_t n = RoundUpPow2(options_.shards == 0 ? 1 : options_.shards);
  shard_mask_ = n - 1;
  per_shard_budget_ = options_.capacity_bytes / n;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

ElementScan ElementScanCache::Get(TagId tid, SegmentId sid, uint64_t epoch,
                                  ScanKind kind) {
  const Key key{tid, sid, epoch, static_cast<uint32_t>(kind)};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> l(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  // Move to the front of the LRU ring.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->scan;
}

void ElementScanCache::Put(TagId tid, SegmentId sid, uint64_t epoch,
                           ElementScan scan, ScanKind kind) {
  if (scan == nullptr) return;
  const size_t bytes = ElementScanBytes(*scan) + sizeof(Entry);
  if (bytes > per_shard_budget_) return;  // would evict a whole shard
  const Key key{tid, sid, epoch, static_cast<uint32_t>(kind)};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> l(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    // Racing fill of the same scan: keep the incumbent, refresh recency.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  // Pressure starts at a high-water mark below the hard budget: testing
  // against the budget itself would let the evict-one/admit-one cycle
  // churn freely right at the boundary.
  const size_t high_water =
      per_shard_budget_ - per_shard_budget_ / kAdmissionSample;
  if (shard.bytes + bytes > high_water &&
      (shard.admission_tick++ % kAdmissionSample) != 0) {
    // Admission sampling under eviction pressure: a cyclic scan over a
    // working set larger than the budget would otherwise evict on every
    // fill and hit on none (LRU's worst case — measurably slower than no
    // cache at all). Admitting one candidate in kAdmissionSample keeps
    // the churn bounded and leaves residents in place long enough to be
    // re-hit on the next pass.
    ++shard.admission_rejects;
    return;
  }
  shard.lru.push_front(Entry{key, std::move(scan), bytes});
  shard.map.emplace(key, shard.lru.begin());
  shard.bytes += bytes;
  ++shard.insertions;
  while (shard.bytes > per_shard_budget_ && shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.map.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void ElementScanCache::Invalidate() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> l(shard->mu);
    shard->invalidations += shard->lru.size();
    shard->lru.clear();
    shard->map.clear();
    shard->bytes = 0;
  }
}

ElementScanCacheStats ElementScanCache::Stats() const {
  ElementScanCacheStats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> l(shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.insertions += shard->insertions;
    out.evictions += shard->evictions;
    out.invalidations += shard->invalidations;
    out.admission_rejects += shard->admission_rejects;
    out.bytes_used += shard->bytes;
    out.entries += shard->lru.size();
  }
  return out;
}

std::vector<ElementScanCacheStats> ElementScanCache::PerShardStats() const {
  std::vector<ElementScanCacheStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> l(shard->mu);
    ElementScanCacheStats s;
    s.hits = shard->hits;
    s.misses = shard->misses;
    s.insertions = shard->insertions;
    s.evictions = shard->evictions;
    s.invalidations = shard->invalidations;
    s.admission_rejects = shard->admission_rejects;
    s.bytes_used = shard->bytes;
    s.entries = shard->lru.size();
    out.push_back(s);
  }
  return out;
}

}  // namespace lazyxml
