// Snapshot-isolated reads (MVCC-lite) over the lazy log — docs/MVCC.md.
//
// A ReadView pins the database state at one mutation epoch E and answers
// every query against exactly that state while writers proceed. The
// design exploits two properties of the lazy scheme:
//
//  * Element-index lists are write-once, delete-only: a (tag, segment)
//    list is created whole when its segment is inserted and afterwards
//    only ever shrinks (partial removal) or dies (full removal /
//    collapse). A list untouched since epoch E therefore *is* its
//    epoch-E state — the live index serves it verbatim — and a list
//    touched after E only needs its pre-image captured once, at the
//    first post-E mutation (MvccState::CaptureScan).
//  * Everything else a query consults — the ER-tree geometry, the
//    tag-list, the path summary — is O(N-segments) to copy, the same
//    asymptotic cost the write path already pays per positional update
//    for its gp sweep (UpdateLog::Clone).
//
// So a snapshot is: a cloned update log + the shared tag dictionary
// (append-only; tags interned after E have no tag-list entries in the
// clone, which matches replay semantics) + an optional copied path
// summary and shared compact index when those were fresh at pin time.
// Scans come from the live element index, overridden per (tag, segment)
// by the captured pre-images (SnapshotReader implements ScanVersionSource
// and is threaded into the join kernels).
//
// Reclamation is deferred: retired versions and cached snapshots are
// dropped as soon as no open view can still need them (Unpin/Capture
// both sweep). Out-of-band mutation through the mutable_* accessors
// bypasses capture, so it *poisons* open views — their queries fail with
// Internal instead of returning silently wrong data; the poison clears
// when every view closes.

#ifndef LAZYXML_CORE_READ_VIEW_H_
#define LAZYXML_CORE_READ_VIEW_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "common/ticket_rwlock.h"
#include "core/compact_index.h"
#include "core/element_index.h"
#include "core/parallel_join.h"
#include "core/path_query.h"
#include "core/query_facade.h"
#include "core/scan_cache.h"
#include "core/twig_query.h"
#include "core/update_log.h"
#include "query/path_summary.h"
#include "query/xpath.h"
#include "xml/tag_dict.h"

namespace lazyxml {

/// Point-in-time MVCC counters (mvcc.* metric rows mirror these;
/// docs/OBSERVABILITY.md).
struct MvccStats {
  size_t views_open = 0;      ///< open SnapshotReaders across all epochs
  size_t epochs_pinned = 0;   ///< distinct epochs with a cached snapshot
  size_t versions_live = 0;   ///< retired pre-images currently retained
  uint64_t versions_retired_total = 0;   ///< pre-images captured, lifetime
  uint64_t versions_reclaimed_total = 0; ///< pre-images dropped, lifetime
  bool poisoned = false;      ///< a mutable_* bypass hit open views
};

/// One immutable pinned state. Owned via shared_ptr so concurrent
/// OpenReadView calls at the same epoch share one clone.
struct ReadSnapshot {
  uint64_t epoch = 0;
  std::unique_ptr<const UpdateLog> log;
  /// The *live* dictionary, shared: tag ids are dense and never recycled,
  /// and tags interned after `epoch` have no entries in the cloned
  /// tag-list (unknown tag == empty result, exactly replay semantics).
  const TagDict* dict = nullptr;
  /// Deep copy of the path summary iff it was fresh at pin time (the
  /// live one is maintained in place and cannot be shared).
  std::unique_ptr<const PathSummary> summary;
  /// The compact index iff it was built at exactly `epoch` (immutable
  /// once built — rebuilds swap the pointer, so sharing is safe).
  std::shared_ptr<const CompactElementIndex> compact;
};

/// Version store + view registry. One per LazyDatabase; internally
/// synchronized (its mutex is never held while acquiring any database
/// lock, so view teardown can never deadlock against a writer).
class MvccState {
 public:
  MvccState() = default;
  MvccState(const MvccState&) = delete;
  MvccState& operator=(const MvccState&) = delete;

  /// Pins the cached snapshot for `epoch` (incrementing its open count)
  /// or returns nullptr when none exists — the caller then builds one
  /// and calls PinNew.
  std::shared_ptr<const ReadSnapshot> Pin(uint64_t epoch);

  /// Registers `snap` as the snapshot of its epoch and pins it. If a
  /// concurrent caller registered one first, that canonical snapshot is
  /// pinned and returned instead (the duplicate clone is discarded).
  std::shared_ptr<const ReadSnapshot> PinNew(
      std::shared_ptr<const ReadSnapshot> snap);

  /// Drops one pin at `epoch`; reclaims versions and snapshots no open
  /// view can still need. Clears the poison flag when the last view
  /// closes.
  void Unpin(uint64_t epoch);

  /// True when any view is open (writers consult this before paying for
  /// a pre-image copy).
  bool HasOpenViews() const;

  /// Records the pre-image of (tid, sid) about to be mutated by the
  /// writer that bumped the epoch to `retire_epoch`. Captures at most
  /// once per (key, epoch): within one epoch the first capture holds the
  /// epoch-start state and later touches of the same list are skipped.
  /// No-op when no view is open.
  void CaptureScan(TagId tid, SegmentId sid, uint64_t retire_epoch,
                   ElementScan pre_image);

  /// The (tid, sid) scan as of `epoch`: the captured version with the
  /// smallest retire epoch > `epoch`, or nullptr when the list is
  /// untouched since `epoch` (the live index is then exact).
  ElementScan VersionedScanAt(TagId tid, SegmentId sid,
                              uint64_t epoch) const;

  /// Marks every open view poisoned (out-of-band mutation bypassed
  /// capture). No-op when no view is open.
  void Poison();
  bool poisoned() const;

  MvccStats Stats() const;

  /// I-MVCC: version chains strictly ascending and non-null; every
  /// retained version justified by an open view at an older epoch (with
  /// no views open, the store must be empty); cached snapshots exactly
  /// the open epochs, each internally consistent.
  Status CheckInvariants() const;

 private:
  struct Version {
    uint64_t retire_epoch = 0;  ///< first epoch whose state excludes this
    ElementScan scan;           ///< the list's state before that epoch
  };

  /// Drops versions/snapshots no open view can need. Caller holds mu_.
  void ReclaimLocked();

  mutable std::mutex mu_;
  std::map<uint64_t, size_t> open_;  ///< epoch -> open view count
  std::map<uint64_t, std::shared_ptr<const ReadSnapshot>> snapshots_;
  std::map<std::pair<TagId, SegmentId>, std::vector<Version>> versions_;
  uint64_t versions_retired_total_ = 0;
  uint64_t versions_reclaimed_total_ = 0;
  bool poisoned_ = false;
};

/// The QueryFacade of one pinned snapshot — unlocked; LazyDatabase hands
/// these out (OpenReadView) and ReadView adds the locking. Unpins in the
/// destructor. Must not outlive the database.
class SnapshotReader final : public QueryFacade, public ScanVersionSource {
 public:
  SnapshotReader(MvccState* mvcc, std::shared_ptr<const ReadSnapshot> snap,
                 const ElementIndex* live_index, ElementScanCache* cache,
                 ThreadPool* pool, const QueryOptions& query_options)
      : mvcc_(mvcc),
        snap_(std::move(snap)),
        live_index_(live_index),
        cache_(cache),
        pool_(pool),
        query_options_(query_options) {}
  ~SnapshotReader() override;
  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  /// The pinned mutation epoch.
  uint64_t epoch() const { return snap_->epoch; }

  // -- QueryFacade -------------------------------------------------------------

  void Freeze() override {}  // a snapshot is immutable by construction
  const UpdateLog& update_log() const override { return *snap_->log; }
  const TagDict& tag_dict() const override { return *snap_->dict; }
  const PathSummary* path_summary() const override {
    return query_options_.use_path_summary ? snap_->summary.get() : nullptr;
  }
  ElementScan GetScan(TagId tid, SegmentId sid) override;
  Result<LazyJoinResult> JoinByName(
      std::string_view ancestor_tag, std::string_view descendant_tag,
      const LazyJoinOptions& options = {}) override;

  // -- ScanVersionSource -------------------------------------------------------

  ElementScan ScanAt(TagId tid, SegmentId sid) const override {
    return mvcc_->VersionedScanAt(tid, sid, snap_->epoch);
  }

 private:
  MvccState* mvcc_;
  std::shared_ptr<const ReadSnapshot> snap_;
  const ElementIndex* live_index_;
  ElementScanCache* cache_;  ///< may be null
  ThreadPool* pool_;         ///< may be null (serial)
  QueryOptions query_options_;
};

/// The public consistent-read handle (ConcurrentLazyDatabase::OpenView):
/// a SnapshotReader plus the database's reader-writer lock. Every query
/// takes one shared acquisition for its own duration — the view holds no
/// lock between queries, so a pending writer is admitted between any two
/// view queries (this is what lets readers complete *during* a chunked
/// ApplyBatch). Closing the view (destruction) takes no database lock at
/// all; MvccState is internally synchronized.
class ReadView {
 public:
  /// An empty (closed) view; assigning one over a live view closes it.
  ReadView() = default;
  ReadView(TicketSharedMutex* mu, std::unique_ptr<SnapshotReader> reader)
      : mu_(mu), reader_(std::move(reader)) {}
  ReadView(ReadView&&) = default;
  ReadView& operator=(ReadView&&) = default;

  /// False once closed (moved-from or default-constructed).
  bool open() const { return reader_ != nullptr; }

  uint64_t epoch() const { return reader_->epoch(); }

  Result<LazyJoinResult> JoinByName(std::string_view anc,
                                    std::string_view desc,
                                    const LazyJoinOptions& options = {}) {
    std::shared_lock lock(*mu_);
    return reader_->JoinByName(anc, desc, options);
  }

  Result<std::vector<JoinPair>> JoinGlobal(
      std::string_view anc, std::string_view desc,
      const LazyJoinOptions& options = {}) {
    std::shared_lock lock(*mu_);
    return reader_->JoinGlobal(anc, desc, options);
  }

  Result<std::vector<GlobalElement>> MaterializeGlobalElements(
      std::string_view tag) {
    std::shared_lock lock(*mu_);
    return reader_->MaterializeGlobalElements(tag);
  }

  Result<PathQueryResult> Path(std::string_view expr) {
    std::shared_lock lock(*mu_);
    return EvaluatePath(reader_.get(), expr);
  }

  Result<TwigQueryResult> Twig(std::string_view expr) {
    std::shared_lock lock(*mu_);
    return EvaluateTwig(reader_.get(), expr);
  }

  /// XPath-subset query; callers must link lazyxml_query (the evaluator
  /// lives there — same pattern as ConcurrentLazyDatabase::Xpath).
  Result<XPathResult> Xpath(std::string_view expr) {
    std::shared_lock lock(*mu_);
    return EvaluateXPath(reader_.get(), expr);
  }

  /// Runs `fn(QueryFacade&)` against the snapshot under one shared
  /// acquisition (for composite reads that must not interleave with a
  /// writer's chunks).
  template <typename Fn>
  auto Query(Fn&& fn) {
    std::shared_lock lock(*mu_);
    return fn(static_cast<QueryFacade&>(*reader_));
  }

 private:
  TicketSharedMutex* mu_ = nullptr;
  std::unique_ptr<SnapshotReader> reader_;
};

}  // namespace lazyxml

#endif  // LAZYXML_CORE_READ_VIEW_H_
