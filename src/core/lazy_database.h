// LazyDatabase: the user-facing facade over the lazy XML store — update
// log (SB-tree + tag-list), element index and tag dictionary — exposing
// the paper's two operations (insert/remove a segment given only its
// global position and length/text, §3.3) and segment-aware structural
// joins (§4).
//
// Typical use:
// \code
//   LazyDatabase db;                                 // LD mode
//   auto sid = db.InsertSegment(xml_text, /*gp=*/0); // batch insert
//   auto result = db.JoinByName("person", "phone");  // A//D join
// \endcode

#ifndef LAZYXML_CORE_LAZY_DATABASE_H_
#define LAZYXML_CORE_LAZY_DATABASE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/compact_index.h"
#include "core/element_index.h"
#include "core/lazy_join.h"
#include "core/parallel_join.h"
#include "core/query_facade.h"
#include "core/read_view.h"
#include "core/scan_cache.h"
#include "core/update_batch.h"
#include "core/update_capture.h"
#include "core/update_log.h"
#include "join/global_element.h"
#include "obs/metrics.h"
#include "query/path_summary.h"
#include "xml/tag_dict.h"
#include "xmlgen/join_workload.h"

namespace lazyxml {

/// Facade configuration.
struct LazyDatabaseOptions {
  /// LD (fully incremental) vs LS (freeze before query) — paper §5.1.
  LogMode mode = LogMode::kLazyDynamic;
  BTreeOptions element_index_options;
  BTreeOptions sb_tree_options;
  /// Query execution: join worker threads + shared scan cache.
  QueryOptions query;
};

/// Space/size snapshot (drives Fig. 11).
struct LazyDatabaseStats {
  size_t num_segments = 0;
  size_t num_elements = 0;
  size_t num_tags = 0;
  uint64_t super_document_length = 0;
  size_t sb_tree_bytes = 0;
  size_t tag_list_bytes = 0;
  size_t element_index_bytes = 0;

  size_t update_log_bytes() const { return sb_tree_bytes + tag_list_bytes; }
};

/// The lazy XML database.
class LazyDatabase : public QueryFacade {
 public:
  explicit LazyDatabase(LazyDatabaseOptions options = {});
  LazyDatabase(const LazyDatabase&) = delete;
  LazyDatabase& operator=(const LazyDatabase&) = delete;

  // -- Updates (paper §3.3) --------------------------------------------------

  /// Inserts segment `text` (a well-formed single-rooted document) at
  /// global position `gp` of the super document. Returns the new sid.
  Result<SegmentId> InsertSegment(std::string_view text, uint64_t gp);

  /// Removes the region [gp, gp+length) — any combination of containment
  /// and left/right intersection with existing segments (paper Fig. 6) as
  /// long as no element is split.
  Status RemoveSegment(uint64_t gp, uint64_t length);

  /// Applies `ops` in order with exactly the observable effect of the
  /// equivalent InsertSegment/RemoveSegment calls — same sids, same
  /// frozen coordinates, same serialized snapshot, same first error —
  /// while amortizing per-op costs: the scan-cache epoch is bumped once,
  /// element-index inserts of consecutive insertions are deferred into
  /// one sorted-batch tree apply (bulk load when the index is empty),
  /// immediately-adjacent insert/remove pairs that exactly cancel are
  /// short-circuited (their sid is still burned and both ops are still
  /// captured, so WAL replay stays sid-exact), and the update capture is
  /// told the batch boundaries so the durability layer can write one
  /// WAL batch + one sync. On an op failure the preceding ops remain
  /// fully applied (prefix semantics, like a sequential loop).
  Result<BatchStats> ApplyBatch(std::span<const UpdateOp> ops);

  /// Same, but fills `*stats_out` (if non-null) even when the batch
  /// fails: the counters then cover exactly the applied prefix — the
  /// rejected op contributes no applied count, no cancelled pair, no
  /// index-insert counts, and its sids slot stays 0 (its sid is still
  /// burned inside the database so later sids match sequential apply).
  Status ApplyBatch(std::span<const UpdateOp> ops, BatchStats* stats_out);

  /// Applies a whole insertion plan (generator / chopper output) through
  /// the batched path — one pure-insert ApplyBatch.
  Status ApplyPlan(std::span<const SegmentInsertion> plan);

  // -- Maintenance (paper §1 "maintenance hours", §5.3 collapse) -------------

  /// Collapses segment `sid` and all its descendants into one fresh
  /// segment spanning the same text: element records are re-keyed into
  /// the new segment's (current-global-relative) frozen coordinates, the
  /// tag-list is rewritten, the old subtree leaves the SB-tree. Reduces N
  /// where query overhead has grown (paper §5.3). Returns the new sid.
  Result<SegmentId> CollapseSubtree(SegmentId sid);

  /// Collapses every top-level segment: afterwards the update log holds
  /// one segment per document under the dummy root — the "update log can
  /// be periodically cleared" maintenance action of §1.
  Status CompactAll();

  // -- Queries (paper §4) ------------------------------------------------------

  /// Lazy-Join of `ancestor_tag` // `descendant_tag`. Unknown tags yield
  /// an empty result. In LS mode this triggers the freeze (sorting the
  /// tag-list and building the sid B+-tree) — the cost the LS curves pay
  /// at query time in §5.3.
  Result<LazyJoinResult> JoinByName(std::string_view ancestor_tag,
                                    std::string_view descendant_tag,
                                    const LazyJoinOptions& options = {}) override;

  // JoinGlobal / MaterializeGlobalElements / ToGlobalPair are inherited
  // from QueryFacade, implemented once over the virtuals below.

  /// LS mode: performs the pre-query work explicitly (benches time it).
  /// When QueryOptions::use_compact_index is set this includes building
  /// the succinct frozen element index (rebuilt only after mutations).
  void Freeze() override;

  // -- Snapshot-isolated reads (docs/MVCC.md) ----------------------------------

  /// Pins the current state and returns its reader. The state must be
  /// (or is made, via Freeze) query-serviceable first, so in concurrent
  /// use the caller routes through the QueryNeedsExclusive predicate
  /// (ConcurrentLazyDatabase::OpenView does). The reader answers every
  /// query as of this exact epoch while later writes proceed; it must
  /// not outlive the database.
  Result<std::unique_ptr<SnapshotReader>> OpenReadView();

  /// True when a query (or OpenReadView) would have to mutate the facade
  /// first: LS log not frozen / tag-list unsorted, or an enabled compact
  /// index or path summary is stale for the current epoch. Concurrent
  /// wrappers use this to route reads to the exclusive lock exactly when
  /// the deferred work is pending — afterwards reads share the lock
  /// again (the post-freeze downgrade fix).
  bool QueryNeedsExclusive() const;

  /// True when any read view is currently open.
  bool HasOpenViews() const { return mvcc_.HasOpenViews(); }

  /// The MVCC version store / view registry (stats + I-MVCC scrubber).
  const MvccState& mvcc() const { return mvcc_; }

  // -- Query execution ---------------------------------------------------------

  /// Reconfigures join threading + scan caching (benches sweep this).
  /// Not thread-safe against concurrent queries.
  void SetQueryOptions(const QueryOptions& query);
  const QueryOptions& query_options() const { return options_.query; }

  /// One (tag, segment) element scan, served from the shared scan cache
  /// at the current mutation epoch when configured (always safe: a stale
  /// epoch can never match).
  ElementScan GetScan(TagId tid, SegmentId sid) override;

  /// Monotonic counter bumped by every mutating facade operation; scan
  /// cache entries are keyed by it (core/scan_cache.h).
  uint64_t mutation_epoch() const { return mutation_epoch_; }

  /// Eagerly drops every cached scan (the epoch keying already prevents
  /// stale reads; this reclaims the memory — ConcurrentLazyDatabase calls
  /// it under its exclusive lock).
  void InvalidateScanCache() {
    if (scan_cache_ != nullptr) scan_cache_->Invalidate();
  }

  /// Cache introspection for tests/benches; nullptr when disabled.
  const ElementScanCache* scan_cache() const { return scan_cache_.get(); }

  // -- Introspection -----------------------------------------------------------

  const UpdateLog& update_log() const override { return log_; }
  const ElementIndex& element_index() const { return index_; }
  const TagDict& tag_dict() const override { return dict_; }

  /// The succinct frozen element index, or nullptr when none has been
  /// built for the *current* mutation epoch (any mutation stales it; it
  /// is rebuilt by the next Freeze()/join with use_compact_index set).
  const CompactElementIndex* compact_index() const {
    return compact_built_epoch_ == mutation_epoch_ ? compact_index_.get()
                                                   : nullptr;
  }

  /// Installs an externally built compact index for the current state
  /// (snapshot restore; also how tests inject a mismatching index to
  /// exercise the scrubber). The caller asserts it is record-for-record
  /// equal to element_index() — CheckInvariants verifies (I-COMPACT).
  void AdoptCompactIndex(std::shared_ptr<const CompactElementIndex> compact);

  /// The path summary (DataGuide), or nullptr when disabled
  /// (QueryOptions::use_path_summary) or stale for the current mutation
  /// epoch. Incremental maintenance keeps it fresh through every facade
  /// update in steady state; it goes stale only after a mutable_*
  /// bypass, a failed mid-mutation op, or an unattributable structure
  /// (pre-v4 snapshot entries) — a stale summary silently disables
  /// pruning, it is never consulted (see docs/PATH_SUMMARY.md).
  const PathSummary* path_summary() const override {
    return options_.query.use_path_summary && summary_ != nullptr &&
                   summary_built_epoch_ == mutation_epoch_
               ? summary_.get()
               : nullptr;
  }

  /// Builds (or rebuilds, after the summary went stale) the path summary
  /// when QueryOptions::use_path_summary is set; no-op otherwise. Called
  /// from Freeze(), SetQueryOptions and snapshot restore — deliberately
  /// NOT from the join path, which runs under ConcurrentLazyDatabase's
  /// shared lock and must never mutate the facade.
  Status EnsurePathSummary();

  /// Builds a summary from a live traversal of the ER-tree + element
  /// index (the I-SUMMARY scrubber compares this against the maintained
  /// one via PathSummary::CanonicalLines).
  static Result<std::unique_ptr<PathSummary>> BuildPathSummary(
      const UpdateLog& log, const ElementIndex& index);

  /// Mutable access for snapshot restore (core/snapshot.h); not part of
  /// the stable API — going around the facade invalidates its invariants
  /// unless you restore a complete consistent state. Each accessor bumps
  /// the mutation epoch so cached scans recorded before the bypass can
  /// never be served afterwards, and poisons any open read view — a
  /// bypass mutation cannot capture pre-images, so views pinned before
  /// it would otherwise read silently inconsistent state (docs/MVCC.md).
  UpdateLog& mutable_update_log() {
    ++mutation_epoch_;
    mvcc_.Poison();
    return log_;
  }
  ElementIndex& mutable_element_index() {
    ++mutation_epoch_;
    mvcc_.Poison();
    return index_;
  }
  TagDict& mutable_tag_dict() {
    ++mutation_epoch_;
    mvcc_.Poison();
    return dict_;
  }

  /// Registers an observer of the logical update stream (durability /
  /// replication; see core/update_capture.h). Pass nullptr to detach.
  /// The capture must outlive the database or be detached first.
  void set_update_capture(UpdateCapture* capture) { capture_ = capture; }
  UpdateCapture* update_capture() const { return capture_; }

  LazyDatabaseStats Stats() const;

  /// Snapshot of the process-wide metrics registry (docs/OBSERVABILITY.md).
  /// The registry is process-global: counters cover every database in the
  /// process, not just this one. Exposed on the facade so callers hold one
  /// handle for both data and observability.
  obs::MetricsSnapshot Metrics() const;

  /// Deep integrity check: ER-tree structure, both B+-trees, tag-list
  /// counts vs element-index counts. For tests.
  Status CheckInvariants() const;

 private:
  /// InsertSegment minus the epoch bump / capture / paranoid check
  /// (ApplyBatch performs those per batch). When `deferred` is non-null
  /// the element-index records are appended there instead of applied —
  /// legal because nothing on the insert path reads the element index,
  /// so a run of inserts can flush once via InsertRecordsBatch.
  /// `*mutated` (may be null) is set just before the first structural
  /// mutation: a failure with it still false provably changed nothing,
  /// so the wrapper rolls the epoch bump back and cached scans survive.
  Result<SegmentId> InsertSegmentImpl(std::string_view text, uint64_t gp,
                                      std::vector<ElementIndexRecord>* deferred,
                                      bool* mutated);

  /// RemoveSegment minus the epoch bump / capture / paranoid check.
  /// Same `*mutated` contract as InsertSegmentImpl.
  Status RemoveSegmentImpl(uint64_t gp, uint64_t length, bool* mutated);

  /// Builds (or rebuilds, after mutations) the compact index when
  /// QueryOptions::use_compact_index is set; no-op otherwise. Updates the
  /// index.frozen_{raw,compact}_bytes gauges on build.
  Status EnsureCompactIndex();

  // -- Path-summary incremental maintenance ------------------------------------
  //
  // Wrappers call SummaryBeginMutation() right after bumping the epoch
  // (arming tracking iff the summary was fresh before the bump) and
  // SummaryCommit() before returning (re-stamping the summary iff
  // tracking survived). The Impl methods disarm tracking just before
  // their first structural mutation and re-arm it only after successful
  // maintenance, so any failure between mutation and maintenance leaves
  // the summary stale — never wrong.

  void SummaryBeginMutation() {
    summary_track_ = options_.query.use_path_summary && summary_ != nullptr &&
                     summary_built_epoch_ + 1 == mutation_epoch_;
  }
  void SummaryCommit() {
    if (summary_track_) summary_built_epoch_ = mutation_epoch_;
    summary_track_ = false;
  }

  /// Summary node of a splice point: the parent segment's context node
  /// extended along the parent's own-element chain containing `lp`.
  /// kNoNode when unattributable (stale pre-v4 entries).
  uint32_t SummaryContextOf(const SegmentNode& parent, uint64_t lp);

  /// Attributes every nesting-summary entry of `seg` under context node
  /// `ctx` and records the segment context. False when unattributable
  /// (the caller then leaves the summary stale).
  bool SummaryAddSegment(const SegmentNode& seg, uint32_t ctx);

  /// Summary node of the live element starting at frozen `start` of
  /// `seg`, or kNoNode.
  uint32_t SummaryNodeOfElement(const SegmentNode& seg, uint64_t start);

  LazyDatabaseOptions options_;
  UpdateLog log_;
  ElementIndex index_;
  TagDict dict_;
  UpdateCapture* capture_ = nullptr;
  uint64_t mutation_epoch_ = 0;
  /// Pool joins run on: ThreadPool::Shared() when num_threads == 0,
  /// `owned_pool_` for an explicit count > 1, null (serial) for 1.
  ThreadPool* query_pool_ = nullptr;
  std::unique_ptr<ThreadPool> owned_pool_;
  std::unique_ptr<ElementScanCache> scan_cache_;  // null when cache_bytes == 0
  /// Succinct frozen element index (core/compact_index.h), fresh iff
  /// compact_built_epoch_ == mutation_epoch_. shared_ptr: a snapshot
  /// serializer or in-flight query may outlive a rebuild.
  std::shared_ptr<const CompactElementIndex> compact_index_;
  uint64_t compact_built_epoch_ = 0;
  /// The path summary (query/path_summary.h), fresh iff
  /// summary_built_epoch_ == mutation_epoch_ (see path_summary()).
  std::unique_ptr<PathSummary> summary_;
  uint64_t summary_built_epoch_ = 0;
  /// Armed per mutating op; see SummaryBeginMutation/SummaryCommit.
  bool summary_track_ = false;
  /// MVCC version store + view registry (docs/MVCC.md). Internally
  /// synchronized; writers capture retired (tag, segment) pre-images
  /// into it when views are open.
  MvccState mvcc_;
};

}  // namespace lazyxml

#endif  // LAZYXML_CORE_LAZY_DATABASE_H_
