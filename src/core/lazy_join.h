// Lazy-Join (paper §4.2, Fig. 9): the segment-aware structural join.
//
// Works directly on the update log: merges the two *segment* lists from
// the tag-list (not element lists), keeps a stack of ancestor segments,
// and uses Proposition 3 to generate cross-segment joins — an A-element
// `a` of segment S is an ancestor of every element of a descendant
// segment T iff a's frozen interval straddles P_T^S, the splice position
// of S's child on the path to T. In-segment joins run Stack-Tree-Desc on
// the frozen local coordinates. Elements are identified by
// (segment id, frozen start); nothing global is ever computed, which is
// why updates never invalidate query structures.
//
// Optimizations (paper Fig. 9, toggleable for the ablation bench):
//  * segments without child segments are never pushed (they cannot host
//    cross joins);
//  * pushed segments keep only elements that straddle at least one child
//    splice position;
//  * stack-top elements ending before the current splice position are
//    pruned (splice positions only grow, so they are dead for good);
//  * P values for non-top stack entries are cached at push time (the path
//    from a stack entry to any future descendant segment enters through
//    the same child while the entry above it remains on the stack).

#ifndef LAZYXML_CORE_LAZY_JOIN_H_
#define LAZYXML_CORE_LAZY_JOIN_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "core/element_index.h"
#include "core/update_log.h"
#include "xml/tag_dict.h"

namespace lazyxml {

class CompactElementIndex;  // core/compact_index.h

/// Lazy-Join knobs.
struct LazyJoinOptions {
  /// Emit only parent-child pairs (containment + level difference 1).
  /// Note: the paper restricts parent-child cross joins to the stack top
  /// via Proposition 3(1); an element of a *grandparent* segment can be a
  /// direct parent when the intermediate segment splices at top level, so
  /// this implementation checks every stack entry and filters by level,
  /// which is correct in that edge case too.
  bool parent_child = false;
  /// The Fig. 9 stack optimizations; off = the unoptimized §4.2 variant
  /// (ablation).
  bool optimize_stack = true;
  /// Path-summary pruning (query/path_summary.h): when non-null, only
  /// tag-list entries whose sid is in the set are scanned. The caller
  /// (LazyDatabase::JoinByName) derives the sets from a *fresh* summary,
  /// which proves entries outside them cannot contribute a pair — the
  /// pruned output is byte-identical to the unpruned one (the dropped
  /// entries' relative order is unchanged, and the kernel's stack
  /// geometry over the survivors is the same laminar family; see
  /// docs/PATH_SUMMARY.md). Both sets must outlive the join call.
  const std::unordered_set<SegmentId>* ancestor_sid_filter = nullptr;
  const std::unordered_set<SegmentId>* descendant_sid_filter = nullptr;
};

/// One join result in lazy coordinates: elements identified by
/// (segment id, frozen start offset).
struct LazyJoinPair {
  SegmentId ancestor_sid = 0;
  uint64_t ancestor_start = 0;
  SegmentId descendant_sid = 0;
  uint64_t descendant_start = 0;

  bool operator==(const LazyJoinPair& o) const {
    return ancestor_sid == o.ancestor_sid &&
           ancestor_start == o.ancestor_start &&
           descendant_sid == o.descendant_sid &&
           descendant_start == o.descendant_start;
  }
};

/// Join instrumentation (drives the §5.3 analyses).
///
/// `elements_fetched` counts records actually read out of the element
/// index; scans served by the shared ElementScanCache or the per-query
/// fetch slots count into `scan_cache_hits` instead (so a self-join no
/// longer double-counts the list it reads under both roles).
struct LazyJoinStats {
  uint64_t cross_segment_pairs = 0;
  uint64_t in_segment_pairs = 0;
  uint64_t segments_pushed = 0;
  uint64_t segments_skipped = 0;  ///< A-segments never pushed
  uint64_t elements_fetched = 0;  ///< element-index records read/decoded
  uint64_t scan_cache_hits = 0;   ///< scans served without an index read
  uint64_t blocks_skipped = 0;    ///< compact blocks skipped by header test
  uint64_t partitions = 1;        ///< executor partitions (1 = serial)
  /// Tag-list entries dropped by the path-summary sid filters before any
  /// scan was fetched (both roles), and the element occurrences those
  /// entries carried (elements the pruned run will never fetch).
  uint64_t segments_pruned = 0;
  uint64_t elements_skipped = 0;
};

/// Result of a Lazy-Join.
struct LazyJoinResult {
  std::vector<LazyJoinPair> pairs;
  LazyJoinStats stats;
};

/// Joins `ancestor_tid` // `descendant_tid` over the log + element index.
/// The log must be serviceable (LD always; LS after Freeze()).
///
/// When `compact` is non-null, element scans are decoded from it instead
/// of the B+-tree; it must be record-for-record equal to `index`
/// (invariant I-COMPACT, see docs/COMPACT_INDEX.md), under which the
/// output is byte-identical to the tree-scan run.
Result<LazyJoinResult> LazyJoin(const UpdateLog& log,
                                const ElementIndex& index,
                                TagId ancestor_tid, TagId descendant_tid,
                                const LazyJoinOptions& options = {},
                                const CompactElementIndex* compact = nullptr);

}  // namespace lazyxml

#endif  // LAZYXML_CORE_LAZY_JOIN_H_
