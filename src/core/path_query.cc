#include "core/path_query.h"

#include <algorithm>
#include <unordered_set>

#include "common/strings.h"
#include "xml/scanner.h"

namespace lazyxml {

namespace {

struct RefHash {
  size_t operator()(const LazyElementRef& r) const {
    return std::hash<uint64_t>()(r.sid * 0x9e3779b97f4a7c15ull ^ r.start);
  }
};

}  // namespace

Result<std::vector<PathStep>> ParsePathExpression(std::string_view expr) {
  std::vector<PathStep> steps;
  size_t i = 0;
  bool next_axis_descendant = true;
  bool axis_seen = false;
  while (i < expr.size()) {
    if (expr[i] == '/') {
      if (axis_seen && steps.empty()) {
        return Status::InvalidArgument("path may start with at most one axis");
      }
      if (i + 1 < expr.size() && expr[i + 1] == '/') {
        next_axis_descendant = true;
        i += 2;
      } else {
        next_axis_descendant = false;
        i += 1;
      }
      axis_seen = true;
      if (i >= expr.size() || expr[i] == '/') {
        return Status::InvalidArgument("empty path step");
      }
      continue;
    }
    const size_t begin = i;
    if (!IsNameStartChar(expr[i])) {
      return Status::InvalidArgument(
          StringPrintf("invalid tag character at offset %zu", i));
    }
    while (i < expr.size() && IsNameChar(expr[i])) ++i;
    if (i < expr.size() && expr[i] != '/') {
      return Status::InvalidArgument(
          StringPrintf("invalid character '%c' in path", expr[i]));
    }
    PathStep step;
    step.tag.assign(expr.substr(begin, i - begin));
    step.descendant_axis = next_axis_descendant;
    steps.push_back(std::move(step));
    axis_seen = false;
  }
  if (steps.empty()) {
    return Status::InvalidArgument("empty path expression");
  }
  return steps;
}

Result<PathQueryResult> EvaluatePath(QueryFacade* db,
                                     const std::vector<PathStep>& steps,
                                     const LazyJoinOptions& options) {
  if (db == nullptr) {
    return Status::InvalidArgument("EvaluatePath: null database");
  }
  if (steps.empty()) {
    return Status::InvalidArgument("EvaluatePath: empty path");
  }
  PathQueryResult out;

  if (steps.size() == 1) {
    // Single step: every element of the tag, straight off the tag-list +
    // element index.
    db->Freeze();
    auto tid = db->tag_dict().Lookup(steps[0].tag);
    if (!tid.ok()) return out;  // unknown tag: empty result
    for (const TagListEntry& e :
         db->update_log().tag_list().EntriesFor(tid.ValueOrDie())) {
      ElementScan scan = db->GetScan(tid.ValueOrDie(), e.sid());
      for (const LocalElement& el : *scan) {
        out.elements.push_back(LazyElementRef{e.sid(), el.start});
      }
    }
    std::sort(out.elements.begin(), out.elements.end());
    return out;
  }

  // Pipeline of binary joins: after stage i, `frontier` holds the
  // elements matching the path prefix ending at step i.
  std::unordered_set<LazyElementRef, RefHash> frontier;
  bool frontier_is_everything = true;  // step 0 imposes no upper filter
  for (size_t i = 1; i < steps.size(); ++i) {
    LazyJoinOptions jopts = options;
    jopts.parent_child = !steps[i].descendant_axis;
    LAZYXML_ASSIGN_OR_RETURN(
        LazyJoinResult joined,
        db->JoinByName(steps[i - 1].tag, steps[i].tag, jopts));
    out.intermediate_pairs += joined.pairs.size();
    std::unordered_set<LazyElementRef, RefHash> next;
    for (const LazyJoinPair& p : joined.pairs) {
      const LazyElementRef anc{p.ancestor_sid, p.ancestor_start};
      if (frontier_is_everything || frontier.count(anc) > 0) {
        next.insert(LazyElementRef{p.descendant_sid, p.descendant_start});
      }
    }
    frontier = std::move(next);
    frontier_is_everything = false;
    if (frontier.empty()) break;  // no matches can appear downstream
  }
  out.elements.assign(frontier.begin(), frontier.end());
  std::sort(out.elements.begin(), out.elements.end());
  return out;
}

Result<PathQueryResult> EvaluatePath(QueryFacade* db, std::string_view expr,
                                     const LazyJoinOptions& options) {
  LAZYXML_ASSIGN_OR_RETURN(std::vector<PathStep> steps,
                           ParsePathExpression(expr));
  return EvaluatePath(db, steps, options);
}

Result<std::vector<GlobalElement>> EvaluatePathHolistic(
    QueryFacade* db, const std::vector<PathStep>& steps) {
  if (db == nullptr) {
    return Status::InvalidArgument("EvaluatePathHolistic: null database");
  }
  std::vector<PathStackStep> prepared(steps.size());
  for (size_t i = 0; i < steps.size(); ++i) {
    LAZYXML_ASSIGN_OR_RETURN(prepared[i].elements,
                             db->MaterializeGlobalElements(steps[i].tag));
    prepared[i].descendant_axis = steps[i].descendant_axis;
  }
  LAZYXML_ASSIGN_OR_RETURN(PathStackResult r, PathStack(prepared));
  return std::move(r.matches);
}

Result<std::vector<GlobalElement>> EvaluatePathHolistic(
    QueryFacade* db, std::string_view expr) {
  LAZYXML_ASSIGN_OR_RETURN(std::vector<PathStep> steps,
                           ParsePathExpression(expr));
  return EvaluatePathHolistic(db, steps);
}

}  // namespace lazyxml
