// TagList: the inverted list mapping element tags to the segments that
// contain them (paper §3.2, Fig. 4).
//
// For every tag id, the list holds one entry per segment with ≥1 element
// of that tag. An entry stores the segment's *path* — the sid chain from
// the dummy root down to the segment in the ER-tree — plus the number of
// occurrences of the tag in the segment (used at deletion time to decide
// when the entry dies, paper §3.3). Lists are ordered by the segments'
// current global positions; updates shift positions but never reorder
// surviving entries, so the order is maintained with ordinary binary
// searches against live positions.
//
// Two maintenance modes (paper §5.1):
//  * sorted (LD, lazy dynamic): entries inserted in position order;
//  * unsorted (LS, lazy static): entries appended; Freeze() sorts all
//    lists at query time — cheaper updates, costlier first query.

#ifndef LAZYXML_CORE_TAG_LIST_H_
#define LAZYXML_CORE_TAG_LIST_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/result.h"
#include "core/segment.h"
#include "xml/tag_dict.h"

namespace lazyxml {

/// Resolves a segment id to its current global position. Implemented by
/// UpdateLog; injected so TagList stays independently testable.
class SegmentGpResolver {
 public:
  virtual ~SegmentGpResolver() = default;
  /// Current global position of `sid`. `sid` must exist.
  virtual uint64_t GlobalPositionOf(SegmentId sid) const = 0;
  /// True iff `sid` currently exists.
  virtual bool SegmentExists(SegmentId sid) const = 0;
};

/// One tag-list entry: a segment (identified by the last sid of `path`)
/// that contains `count` elements of the list's tag.
struct TagListEntry {
  /// Root-to-segment sid chain in the ER-tree (paper Fig. 4).
  std::vector<SegmentId> path;
  /// Occurrences of the tag in the segment.
  uint64_t count = 0;

  SegmentId sid() const { return path.back(); }
};

/// The tag-list.
class TagList {
 public:
  /// `keep_sorted=true` is the LD mode; false is LS (call Freeze() before
  /// reading).
  explicit TagList(bool keep_sorted = true) : keep_sorted_(keep_sorted) {}

  /// Adds an entry for (tid, path.back()) with `count` occurrences.
  /// `path` must be the full root path (front() == kRootSegmentId chain).
  Status AddEntry(TagId tid, std::vector<SegmentId> path, uint64_t count,
                  const SegmentGpResolver& resolver);

  /// Subtracts `removed` occurrences from the (tid, sid) entry, erasing it
  /// when the count reaches zero. NotFound if absent, InvalidArgument if
  /// over-subtracted.
  Status RemoveOccurrences(TagId tid, SegmentId sid, uint64_t removed,
                           const SegmentGpResolver& resolver);

  /// Drops every entry whose segment is `sid` across all tags (used when a
  /// whole segment dies and per-tag counts are already known to vanish).
  void DropSegment(SegmentId sid);

  /// The list for `tid`, ordered by current global position (must be
  /// sorted: LD always, LS after Freeze()).
  std::span<const TagListEntry> EntriesFor(TagId tid) const;

  /// LS mode: sorts every list by current global position. No-op in LD.
  void Freeze(const SegmentGpResolver& resolver);

  /// True if lists are ordered (LD, or LS after Freeze with no appends
  /// since).
  bool sorted() const { return keep_sorted_ || frozen_clean_; }

  /// Visits every entry (tests / integrity checks); `fn` returning false
  /// stops the walk.
  void ForEachEntry(
      const std::function<bool(TagId, const TagListEntry&)>& fn) const;

  /// Number of tags with a non-empty list.
  size_t num_tags() const;

  /// Total entries across all lists.
  size_t num_entries() const;

  /// Approximate heap footprint (the paper's O(T N^2) structure, Fig. 11).
  size_t MemoryBytes() const;

  /// Removes everything.
  void Clear();

 private:
  std::vector<TagListEntry>& ListFor(TagId tid);

  bool keep_sorted_;
  bool frozen_clean_ = false;
  std::vector<std::vector<TagListEntry>> lists_;  // indexed by tid
};

}  // namespace lazyxml

#endif  // LAZYXML_CORE_TAG_LIST_H_
