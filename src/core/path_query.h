// Path-expression evaluation over the lazy store.
//
// Structural joins are "a core operation in optimizing XML path queries"
// (paper §1): a path like person//profile/interest decomposes into a
// pipeline of binary structural joins whose intermediate results chain by
// element identity. This module provides that pipeline over Lazy-Join:
// a tiny path parser ("a//b/c", '/' = child axis, '//' = descendant
// axis) and an evaluator returning the matching final-step elements in
// lazy (segment id, frozen start) identity.

#ifndef LAZYXML_CORE_PATH_QUERY_H_
#define LAZYXML_CORE_PATH_QUERY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/query_facade.h"
#include "join/path_stack.h"

namespace lazyxml {

/// One step of a parsed path expression.
struct PathStep {
  std::string tag;
  /// True for '//' (ancestor-descendant), false for '/' (parent-child).
  /// The flag describes the axis *leading into* this step; it is ignored
  /// on the first step (which selects all elements of the tag).
  bool descendant_axis = true;
};

/// Parses "a//b/c" (a leading "//" or "/" is allowed and ignored for the
/// first step). Fails on empty steps or malformed separators.
Result<std::vector<PathStep>> ParsePathExpression(std::string_view expr);

/// An element in lazy identity.
struct LazyElementRef {
  SegmentId sid = 0;
  uint64_t start = 0;

  bool operator<(const LazyElementRef& o) const {
    return sid != o.sid ? sid < o.sid : start < o.start;
  }
  bool operator==(const LazyElementRef& o) const {
    return sid == o.sid && start == o.start;
  }
};

/// Result of a path query.
struct PathQueryResult {
  /// Matching final-step elements, deduplicated, sorted by (sid, start).
  std::vector<LazyElementRef> elements;
  /// Join pairs produced across all pipeline stages (work measure).
  uint64_t intermediate_pairs = 0;
};

/// Evaluates a parsed path over `db` by chaining Lazy-Joins.
Result<PathQueryResult> EvaluatePath(QueryFacade* db,
                                     const std::vector<PathStep>& steps,
                                     const LazyJoinOptions& options = {});

/// Convenience: parse + evaluate.
Result<PathQueryResult> EvaluatePath(QueryFacade* db, std::string_view expr,
                                     const LazyJoinOptions& options = {});

/// Alternative strategy: evaluates the path holistically with PathStack
/// (Bruno et al. [2]) over element lists materialized in global
/// coordinates — one merge pass, no intermediate pair lists. Returns the
/// matching final-step elements with global labels. Used as a
/// cross-check and raced against the pipeline in bench_ablation.
Result<std::vector<GlobalElement>> EvaluatePathHolistic(
    QueryFacade* db, const std::vector<PathStep>& steps);
Result<std::vector<GlobalElement>> EvaluatePathHolistic(
    QueryFacade* db, std::string_view expr);

}  // namespace lazyxml

#endif  // LAZYXML_CORE_PATH_QUERY_H_
