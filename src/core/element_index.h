// ElementIndex: the B+-tree of element records (paper §3.4).
//
// The paper keys the tree by the full tuple (tid, sid, start, end,
// LevelNum); since an element is already univocally identified by
// (sid, start), we key by (tid, sid, start) and carry (end, level) as the
// value — same ordering, same scans, smaller comparisons. `start`/`end`
// are the element's *frozen local* offsets in its segment; they are never
// touched by later updates, which is the whole point of the lazy scheme.

#ifndef LAZYXML_CORE_ELEMENT_INDEX_H_
#define LAZYXML_CORE_ELEMENT_INDEX_H_

#include <cstdint>
#include <map>
#include <span>
#include <tuple>
#include <vector>

#include "btree/btree.h"
#include "common/result.h"
#include "core/segment.h"
#include "xml/element_record.h"
#include "xml/tag_dict.h"

namespace lazyxml {

/// One element in a segment's frozen coordinates.
struct LocalElement {
  uint64_t start = 0;
  uint64_t end = 0;
  uint32_t level = 0;  ///< absolute level in the super document

  bool Contains(const LocalElement& o) const {
    return start < o.start && end > o.end;
  }
  bool operator==(const LocalElement& o) const {
    return start == o.start && end == o.end && level == o.level;
  }
};

/// Per-tag counts of deleted records, reported to the tag-list.
using RemovedCounts = std::map<TagId, uint64_t>;

/// One element-index record in key order, surfaced to external auditors
/// (src/check/) without exposing the private key layout.
struct ElementIndexRecord {
  TagId tid = 0;
  SegmentId sid = 0;
  uint64_t start = 0;
  uint64_t end = 0;
  uint32_t level = 0;
};

/// The element index.
class ElementIndex {
 public:
  explicit ElementIndex(BTreeOptions options = {}) : tree_(options) {}

  /// Indexes a parsed segment's records (local offsets, absolute levels).
  /// Internally sorts into key order and applies one sorted-batch tree
  /// insert (one descent per leaf run) instead of one descent per record.
  Status InsertRecords(SegmentId sid, std::span<const ElementRecord> records);

  /// Indexes records spanning several segments/tags in one sorted-batch
  /// tree apply — the flush path of LazyDatabase::ApplyBatch, which
  /// defers the index work of a run of consecutive inserts. Holds exactly
  /// the same records as per-segment InsertRecords calls would.
  Status InsertRecordsBatch(std::span<const ElementIndexRecord> records);

  /// Replaces the whole index with `records` via the bottom-up B+-tree
  /// bulk load (fresh builds: snapshot restore, initial document load).
  /// Records may arrive in any order; duplicates are InvalidArgument.
  Status BuildFrom(std::vector<ElementIndexRecord> records);

  /// All (tid, sid) elements in ascending frozen start order.
  std::vector<LocalElement> GetElements(TagId tid, SegmentId sid) const;

  /// Number of (tid, sid) elements.
  uint64_t CountElements(TagId tid, SegmentId sid) const;

  /// Innermost element of (any tag in `tags`, sid) strictly containing
  /// frozen offset `f`; returns false if none. Used to find the depth of
  /// a splice point.
  bool FindInnermostContaining(SegmentId sid, std::span<const TagId> tags,
                               uint64_t f, LocalElement* out) const;

  /// Deletes every record of segment `sid` (whose tags are `tags`);
  /// returns per-tag deletion counts (paper §3.4: needed to decide which
  /// tag-list paths to drop).
  Result<RemovedCounts> DeleteSegment(SegmentId sid,
                                      std::span<const TagId> tags);

  /// Deletes records of `sid` lying entirely inside the frozen interval
  /// [begin, end); per-tag counts returned. A record straddling the
  /// boundary means the removal splits an element: Corruption.
  Result<RemovedCounts> DeleteRange(SegmentId sid,
                                    std::span<const TagId> tags,
                                    uint64_t begin, uint64_t end);

  /// Total records.
  size_t size() const { return tree_.size(); }

  /// Approximate heap footprint.
  size_t MemoryBytes() const { return tree_.MemoryBytes(); }

  /// Structural invariants of the backing tree (tests).
  Status CheckInvariants() const { return tree_.CheckInvariants(); }

  /// Visits every record in (tid, sid, start) key order; `fn` returning
  /// false stops the walk. For the consistency scrubber.
  void ForEachRecord(
      const std::function<bool(const ElementIndexRecord&)>& fn) const {
    for (auto it = tree_.Begin(); it.Valid(); it.Next()) {
      const Key& k = it.key();
      const Val& v = it.value();
      if (!fn(ElementIndexRecord{k.tid, k.sid, k.start, v.end, v.level})) {
        return;
      }
    }
  }

  /// Preorder shape walk over the backing tree's nodes (occupancy audit).
  void VisitTreeNodes(
      const std::function<bool(const BTreeNodeInfo&)>& fn) const {
    tree_.VisitNodes(fn);
  }

 private:
  struct Key {
    TagId tid = 0;
    SegmentId sid = 0;
    uint64_t start = 0;
    bool operator<(const Key& o) const {
      return std::tie(tid, sid, start) < std::tie(o.tid, o.sid, o.start);
    }
  };
  struct Val {
    uint64_t end = 0;
    uint32_t level = 0;
  };

  BTree<Key, Val> tree_;
};

}  // namespace lazyxml

#endif  // LAZYXML_CORE_ELEMENT_INDEX_H_
