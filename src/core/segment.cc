#include "core/segment.h"

#include <algorithm>

#include "common/logging.h"

namespace lazyxml {

uint64_t SegmentNode::FrozenPos(uint64_t g) const {
  LAZYXML_DCHECK(g >= gp && g <= end());
  // Walk splice/gap events in frozen order, consuming actual (current)
  // width until the target offset is reached.
  uint64_t remaining = g - gp;  // actual width still to consume
  uint64_t frozen = 0;
  size_t ci = 0;
  size_t gi = 0;
  for (;;) {
    const bool has_child = ci < children.size();
    const bool has_gap = gi < gaps.size();
    if (!has_child && !has_gap) break;
    // Next event position in frozen coordinates; children win ties (their
    // spliced text physically precedes a gap recorded at the same point).
    const uint64_t child_pos =
        has_child ? children[ci]->lp : ~uint64_t{0};
    const uint64_t gap_pos = has_gap ? gaps[gi].begin : ~uint64_t{0};
    if (child_pos <= gap_pos) {
      const uint64_t span = child_pos - frozen;  // own text before event
      if (remaining < span) return frozen + remaining;
      remaining -= span;
      frozen = child_pos;
      const uint64_t cl = children[ci]->l;
      if (remaining < cl) return frozen;  // inside the child: its splice
      remaining -= cl;
      ++ci;
    } else {
      const uint64_t span = gap_pos - frozen;
      if (remaining < span) return frozen + remaining;
      remaining -= span;
      frozen = gaps[gi].end;  // the gap has zero current width
      ++gi;
    }
  }
  return frozen + remaining;
}

uint64_t SegmentNode::GapWidthBefore(uint64_t f) const {
  uint64_t w = 0;
  for (const FrozenGap& g : gaps) {
    if (g.end <= f) {
      w += g.width();
    } else if (g.begin < f) {
      w += f - g.begin;  // partially before (boundary case)
    } else {
      break;
    }
  }
  return w;
}

uint64_t SegmentNode::FrozenToGlobal(uint64_t frozen,
                                     bool include_splice_at_boundary) const {
  uint64_t actual = frozen - GapWidthBefore(frozen);
  for (const SegmentNode* c : children) {
    if (c->lp < frozen || (include_splice_at_boundary && c->lp == frozen)) {
      actual += c->l;
    } else if (c->lp > frozen) {
      break;
    }
  }
  return gp + actual;
}

uint32_t SegmentNode::LevelAt(uint64_t f, uint32_t fallback) const {
  // Last entry starting strictly before f.
  auto it = std::lower_bound(
      summary.begin(), summary.end(), f,
      [](const NestingEntry& e, uint64_t target) { return e.start < target; });
  if (it == summary.begin()) return fallback;
  uint32_t j = static_cast<uint32_t>(it - summary.begin()) - 1;
  // Walk the ancestor chain; the first entry spanning f is the innermost
  // container (removed elements never span a reachable offset).
  while (j != kNoParentEntry) {
    if (summary[j].end > f) return summary[j].level;
    j = summary[j].parent;
  }
  return fallback;
}

std::vector<TagId> SegmentNode::AncestorTagsAt(uint64_t f) const {
  std::vector<TagId> tags;
  auto it = std::lower_bound(
      summary.begin(), summary.end(), f,
      [](const NestingEntry& e, uint64_t target) { return e.start < target; });
  if (it == summary.begin()) return tags;
  uint32_t j = static_cast<uint32_t>(it - summary.begin()) - 1;
  // Same walk as LevelAt, but once the innermost container is found every
  // entry further up the chain contains f too (intervals nest).
  while (j != kNoParentEntry) {
    if (summary[j].end > f) {
      for (; j != kNoParentEntry; j = summary[j].parent) {
        tags.push_back(summary[j].tid);
      }
      std::reverse(tags.begin(), tags.end());
      return tags;
    }
    j = summary[j].parent;
  }
  return tags;
}

void SegmentNode::AddGap(uint64_t begin, uint64_t end) {
  if (begin >= end) return;
  FrozenGap g{begin, end};
  // Insert keeping gaps sorted, then merge overlapping/adjacent runs.
  auto it = std::lower_bound(
      gaps.begin(), gaps.end(), g,
      [](const FrozenGap& a, const FrozenGap& b) { return a.begin < b.begin; });
  it = gaps.insert(it, g);
  // Merge left.
  size_t i = static_cast<size_t>(it - gaps.begin());
  if (i > 0 && gaps[i - 1].end >= gaps[i].begin) {
    gaps[i - 1].end = std::max(gaps[i - 1].end, gaps[i].end);
    gaps.erase(gaps.begin() + static_cast<ptrdiff_t>(i));
    --i;
  }
  // Merge right (possibly several).
  while (i + 1 < gaps.size() && gaps[i].end >= gaps[i + 1].begin) {
    gaps[i].end = std::max(gaps[i].end, gaps[i + 1].end);
    gaps.erase(gaps.begin() + static_cast<ptrdiff_t>(i) + 1);
  }
}

}  // namespace lazyxml
