// UpdateLog: the in-memory structure at the heart of the lazy scheme
// (paper §3) — the SB-tree (a B+-tree over segment ids whose leaves form
// the ER-tree of segment containment) plus the tag-list.
//
// Update semantics follow the paper's Figures 5 and 7, with three fixes
// the pseudo-code needs to be executable:
//  * insertions at a position equal to an existing segment's start shift
//    that segment too (Fig. 5 line 1 says strictly greater, which would
//    leave two segments claiming one position);
//  * Fig. 7's right-intersection bookkeeping (lines 17-20) is
//    self-referential as printed; the intended semantics — the surviving
//    suffix of the child starts where the removed region started — is what
//    is implemented;
//  * removals that take part of a segment's own text leave *gaps* in its
//    frozen coordinate space; these are tracked per segment (see
//    segment.h) so local positions stay consistent, which the paper's
//    Definition 2 invariance argument silently assumes.
//
// LS vs LD (paper §5.1): in lazy-dynamic mode the sid B+-tree and the
// tag-list are maintained on every update; in lazy-static mode updates
// only maintain the ER-tree and append unsorted tag-list entries, and
// Freeze() builds the B+-tree and sorts the lists just before querying.

#ifndef LAZYXML_CORE_UPDATE_LOG_H_
#define LAZYXML_CORE_UPDATE_LOG_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "btree/btree.h"
#include "common/result.h"
#include "core/segment.h"
#include "core/tag_list.h"

namespace lazyxml {

/// Maintenance mode (paper §5.1).
enum class LogMode {
  kLazyDynamic,  ///< LD: everything incrementally maintained
  kLazyStatic,   ///< LS: ER-tree only; Freeze() finishes before queries
};

/// Human-readable mode name ("LD"/"LS").
const char* LogModeName(LogMode mode);

/// The update log.
class UpdateLog : public SegmentGpResolver {
 public:
  struct Options {
    LogMode mode = LogMode::kLazyDynamic;
    BTreeOptions sb_tree_options;
  };

  UpdateLog();  // default options
  explicit UpdateLog(Options options);
  UpdateLog(const UpdateLog&) = delete;
  UpdateLog& operator=(const UpdateLog&) = delete;

  /// Outcome of AddSegment, with everything the caller (LazyDatabase)
  /// needs to index the segment's elements and update the tag-list.
  struct InsertInfo {
    SegmentId sid = 0;
    SegmentNode* node = nullptr;
    SegmentNode* parent = nullptr;
    /// Root-to-new-segment sid chain (the tag-list path, paper Fig. 4).
    std::vector<SegmentId> path;
    /// Frozen splice offset within the parent (== node->lp).
    uint64_t frozen_point = 0;
  };

  /// Registers a segment of `length` characters inserted at global
  /// position `gp` (paper Fig. 5): shifts affected global positions,
  /// finds the parent segment, computes the local position, creates the
  /// node. The caller fills in base_level / distinct_tags afterwards.
  Result<InsertInfo> AddSegment(uint64_t gp, uint64_t length);

  /// What a removal of [gp, gp+length) touches. Computed as a pure
  /// pre-pass so the element index can be cleaned with frozen intervals
  /// before the tree is mutated.
  struct RemovalEffects {
    /// Segments whose text lies entirely inside the removed region
    /// (paper Fig. 6 black nodes), with their distinct tags.
    struct FullRemoval {
      SegmentId sid;
      std::vector<TagId> tags;
    };
    /// Segments losing part of their own text (gray nodes): the frozen
    /// interval [begin, end) removed from them.
    struct PartialRemoval {
      SegmentId sid;
      uint64_t frozen_begin;
      uint64_t frozen_end;
      std::vector<TagId> tags;
    };
    std::vector<FullRemoval> full;
    std::vector<PartialRemoval> partial;
    uint64_t gp = 0;
    uint64_t length = 0;
  };

  /// Pre-pass for a removal; the log is not modified.
  Result<RemovalEffects> CollectRemovalEffects(uint64_t gp,
                                               uint64_t length) const;

  /// Snapshot restore: re-creates segment `sid` with explicit geometry
  /// under `parent_sid` (which must already exist), appending it as the
  /// parent's next child — callers restore in ER-tree preorder with
  /// siblings in position order. Bypasses the positional insertion
  /// algorithm; the caller fills gaps/tags/summary on the returned node.
  Result<SegmentNode*> RestoreSegment(SegmentId sid, SegmentId parent_sid,
                                      uint64_t gp, uint64_t l, uint64_t lp,
                                      uint32_t base_level);

  /// Snapshot restore: sets the super-document (dummy root) length.
  void RestoreRootLength(uint64_t length) { root_->l = length; }

  /// The sid the next insertion will receive. Persisted in snapshots
  /// (format v2) so a restored database assigns the exact same sids as
  /// the original would — removal of the highest-sid segment otherwise
  /// makes max(sid)+1 diverge from the true counter, and WAL replay
  /// (storage/recovery.h) depends on sid-exact determinism.
  SegmentId next_sid() const { return next_sid_; }

  /// Snapshot restore: forces the sid counter. Must not move it below
  /// the current value (that could re-issue a live sid).
  Status RestoreNextSid(SegmentId next_sid);

  /// Consumes and returns the next sid without creating a segment.
  /// ApplyBatch uses this for a cancelled insert/remove pair: the
  /// structural work is skipped, but the sid the insert would have
  /// taken must still be burned so every later insert in the batch
  /// receives the exact sid the sequential application would assign.
  SegmentId AllocateSid() { return next_sid_++; }

  /// Replaces segment `sid`'s whole subtree with one fresh leaf segment
  /// covering the same global range (no children, no gaps) — the
  /// structural half of collapsing nested segments (paper §5.3: "nested
  /// segments can be collapsed together in order to reduce the overall
  /// number of segments"). The caller re-keys element records and
  /// tag-list entries. Fails on the dummy root.
  Result<InsertInfo> CollapseSubtree(SegmentId sid);

  /// Applies a removal previously collected by CollectRemovalEffects
  /// (paper Fig. 7 semantics): shortens/gaps intersected segments, deletes
  /// contained subtrees, shifts later global positions.
  Status ApplyRemoval(const RemovalEffects& effects);

  /// The segment for `sid` via the SB-tree (the structure the paper's
  /// queries pay for). In LS mode the log must be frozen first.
  Result<SegmentNode*> FindSegment(SegmentId sid) const;

  /// The dummy root (sid 0, paper §3.1).
  SegmentNode* root() const { return root_; }

  /// SegmentGpResolver: current global position of `sid` (internal
  /// bookkeeping path; always fresh in both modes).
  uint64_t GlobalPositionOf(SegmentId sid) const override;
  bool SegmentExists(SegmentId sid) const override {
    return nodes_.count(sid) > 0;
  }

  /// Internal (always-fresh) lookup; prefer FindSegment on query paths.
  SegmentNode* NodeOf(SegmentId sid) const;

  /// Root-to-segment sid chain.
  Result<std::vector<SegmentId>> PathOf(SegmentId sid) const;

  /// Number of real segments (the paper's N; excludes the dummy root).
  size_t num_segments() const { return nodes_.size() - 1; }

  /// Total super-document length in characters.
  uint64_t super_document_length() const { return root_->l; }

  LogMode mode() const { return options_.mode; }

  /// The tag-list (caller maintains it via LazyDatabase).
  TagList& tag_list() { return tag_list_; }
  const TagList& tag_list() const { return tag_list_; }

  /// LS mode: builds the sid B+-tree and sorts the tag-list. No-op in LD.
  void Freeze();

  /// Deep copy of the whole log: every segment node (with parent/child
  /// links re-targeted at the copies), the tag-list, the sid counter and
  /// a bulk-rebuilt sid B+-tree. The log must be frozen — clones back
  /// MVCC read snapshots (docs/MVCC.md), which are only pinned on frozen,
  /// query-serviceable state. O(N) in segments + tag-list entries, the
  /// same asymptotic cost as one positional update's gp sweep.
  std::unique_ptr<UpdateLog> Clone() const;

  /// True when FindSegment / tag-list reads are serviceable.
  bool frozen() const {
    return options_.mode == LogMode::kLazyDynamic || !sb_dirty_;
  }

  /// Approximate SB-tree footprint: B+-tree nodes plus ER-tree leaves
  /// (Fig. 11's "SB-tree" series).
  size_t SbTreeMemoryBytes() const;

  /// Approximate tag-list footprint (Fig. 11's "tag-list" series).
  size_t TagListMemoryBytes() const { return tag_list_.MemoryBytes(); }

  /// Verifies ER-tree structural invariants: child ordering/disjointness,
  /// span containment, parent links, length accounting, SB-tree/ownership
  /// agreement. For tests.
  Status CheckInvariants() const;

  /// Visits every registered segment (including the dummy root) in
  /// unspecified order — including nodes that are *not* reachable from the
  /// root, which is exactly what the consistency scrubber needs to see.
  /// `fn` returning false stops the walk.
  void ForEachSegment(
      const std::function<bool(const SegmentNode&)>& fn) const {
    for (const auto& [sid, node] : nodes_) {
      if (!fn(*node)) return;
    }
  }

  /// Preorder shape walk over the sid B+-tree's nodes. Only meaningful
  /// when frozen() (in LS mode the tree may be stale before Freeze()).
  void VisitSbTreeNodes(
      const std::function<bool(const BTreeNodeInfo&)>& fn) const {
    sb_tree_.VisitNodes(fn);
  }

 private:
  Status CollectRec(const SegmentNode* node, uint64_t lo, uint64_t hi,
                    RemovalEffects* out) const;
  void CollectSubtree(const SegmentNode* node, RemovalEffects* out) const;
  Status ApplyRec(SegmentNode* node, uint64_t lo, uint64_t hi,
                  const std::unordered_map<SegmentId,
                                           std::pair<uint64_t, uint64_t>>&
                      partial_by_sid);
  void DeleteSubtree(SegmentNode* node);
  Status CheckRec(const SegmentNode* node, size_t* counted) const;

  Options options_;
  std::unordered_map<SegmentId, std::unique_ptr<SegmentNode>> nodes_;
  BTree<SegmentId, SegmentNode*> sb_tree_;
  bool sb_dirty_ = false;
  TagList tag_list_;
  SegmentNode* root_ = nullptr;
  SegmentId next_sid_ = 1;
};

}  // namespace lazyxml

#endif  // LAZYXML_CORE_UPDATE_LOG_H_
