#include "core/lazy_join.h"

#include <algorithm>

#include "join/global_element.h"
#include "join/stack_tree.h"

namespace lazyxml {

namespace {

// Splice position of `anc`'s child on the path to the segment `path` ends
// at; 0 + false if `anc` is not on the path (not an ancestor).
bool FindSplicePos(const UpdateLog& log, const std::vector<SegmentId>& path,
                   SegmentId anc, uint64_t* p_out) {
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    if (path[i] == anc) {
      auto node = log.FindSegment(path[i + 1]);
      if (!node.ok()) return false;
      *p_out = node.ValueOrDie()->lp;
      return true;
    }
  }
  return false;
}

struct StackEntry {
  const SegmentNode* seg = nullptr;
  std::vector<LocalElement> elems;  // A-elements, frozen order
  size_t live = 0;                  // prune cursor into elems
  uint64_t cached_p = 0;            // splice pos toward the entry above
  bool has_cached_p = false;
};

}  // namespace

Result<LazyJoinResult> LazyJoin(const UpdateLog& log,
                                const ElementIndex& index, TagId ancestor_tid,
                                TagId descendant_tid,
                                const LazyJoinOptions& options) {
  if (!log.frozen()) {
    return Status::Internal("LazyJoin on an unfrozen LS update log");
  }
  if (!log.tag_list().sorted()) {
    return Status::Internal("LazyJoin on an unsorted tag-list");
  }
  LazyJoinResult out;
  const auto sl_a = log.tag_list().EntriesFor(ancestor_tid);
  const auto sl_d = log.tag_list().EntriesFor(descendant_tid);
  if (sl_a.empty() || sl_d.empty()) return out;

  std::vector<StackEntry> stack;
  size_t ia = 0;
  // One-entry cache: an in-segment join's A-scan is immediately reused by
  // the push attempt of the same segment on the next round.
  SegmentId fetch_cache_sid = ~SegmentId{0};
  std::vector<LocalElement> fetch_cache;

  for (size_t id = 0; id < sl_d.size(); ++id) {
    const TagListEntry& de = sl_d[id];
    LAZYXML_ASSIGN_OR_RETURN(SegmentNode * sd, log.FindSegment(de.sid()));

    // Step 1 (pop): segments ending at or before sd's start are done —
    // SL_D is position-ordered, so they can never contain a later segment.
    while (!stack.empty() && sd->gp >= stack.back().seg->end()) {
      stack.pop_back();
    }

    // Step 2 (push): consume A-segments positioned before sd. Each either
    // contains sd (candidate ancestor: push) or is disjoint (skip — it
    // ends before sd starts, so it ends before everything later too).
    while (ia < sl_a.size()) {
      const TagListEntry& ae = sl_a[ia];
      LAZYXML_ASSIGN_OR_RETURN(SegmentNode * sa, log.FindSegment(ae.sid()));
      if (sa->gp >= sd->gp) break;
      ++ia;
      if (!sa->ContainsSegment(*sd)) {
        ++out.stats.segments_skipped;
        continue;
      }
      if (options.optimize_stack && sa->children.empty()) {
        // No child segments: no descendant segments, no cross joins.
        ++out.stats.segments_skipped;
        continue;
      }
      std::vector<LocalElement> elems;
      if (fetch_cache_sid == ae.sid()) {
        elems = std::move(fetch_cache);
        fetch_cache_sid = ~SegmentId{0};
      } else {
        elems = index.GetElements(ancestor_tid, ae.sid());
        out.stats.elements_fetched += elems.size();
      }
      if (options.optimize_stack) {
        // Keep only elements straddling at least one child splice
        // position — the only ones Proposition 3(2) can ever satisfy.
        std::vector<uint64_t> splices;
        splices.reserve(sa->children.size());
        for (const SegmentNode* c : sa->children) splices.push_back(c->lp);
        std::erase_if(elems, [&splices](const LocalElement& a) {
          auto it = std::upper_bound(splices.begin(), splices.end(), a.start);
          return it == splices.end() || *it >= a.end;
        });
        if (elems.empty()) {
          ++out.stats.segments_skipped;
          continue;
        }
      }
      if (!stack.empty()) {
        // Cache the splice position of the previous top toward the new
        // top: every future descendant segment handled while the new top
        // lives enters the previous top through this same child. Also
        // prune previous-top elements that end at or before it — splice
        // positions only grow, so they are dead.
        StackEntry& below = stack.back();
        uint64_t p = 0;
        if (FindSplicePos(log, ae.path, below.seg->sid, &p)) {
          below.cached_p = p;
          below.has_cached_p = true;
          if (options.optimize_stack) {
            while (below.live < below.elems.size() &&
                   below.elems[below.live].end <= p) {
              ++below.live;
            }
          }
        }
      }
      StackEntry entry;
      entry.seg = sa;
      entry.elems = std::move(elems);
      stack.push_back(std::move(entry));
      ++out.stats.segments_pushed;
    }

    // Step 3 (join generation): every stack entry contains sd; emit cross
    // joins by Proposition 3(2), then in-segment joins if sd itself also
    // carries A-elements.
    std::vector<LocalElement> delems;
    bool delems_loaded = false;
    auto load_delems = [&]() {
      if (!delems_loaded) {
        delems = index.GetElements(descendant_tid, de.sid());
        out.stats.elements_fetched += delems.size();
        delems_loaded = true;
      }
    };

    for (size_t si = 0; si < stack.size(); ++si) {
      StackEntry& e = stack[si];
      uint64_t p = 0;
      if (si + 1 < stack.size()) {
        if (!e.has_cached_p) continue;
        p = e.cached_p;
      } else {
        if (!FindSplicePos(log, de.path, e.seg->sid, &p)) continue;
      }
      const bool is_top = (si + 1 == stack.size());
      for (size_t ei = e.live; ei < e.elems.size(); ++ei) {
        const LocalElement& a = e.elems[ei];
        if (a.start >= p) break;  // frozen order: no later element straddles
        if (a.end <= p) {
          if (options.optimize_stack && is_top && ei == e.live) {
            ++e.live;  // dead for every future splice position too
          }
          continue;
        }
        load_delems();
        for (const LocalElement& d : delems) {
          if (options.parent_child && a.level + 1 != d.level) continue;
          out.pairs.push_back(LazyJoinPair{e.seg->sid, a.start, de.sid(),
                                           d.start});
          ++out.stats.cross_segment_pairs;
        }
      }
    }

    // In-segment joins: sd appears in SL_A too iff the current A cursor
    // points at the very same segment (both lists are position-ordered).
    if (ia < sl_a.size() && sl_a[ia].sid() == de.sid()) {
      std::vector<LocalElement> aelems =
          index.GetElements(ancestor_tid, de.sid());
      out.stats.elements_fetched += aelems.size();
      load_delems();
      // Frozen local coordinates nest properly within one segment, so any
      // traditional structural join applies (paper §4.2); Stack-Tree-Desc
      // is used as in the paper, directly over the frozen coordinates.
      const SegmentId sid = de.sid();
      StackTreeDescVisit(
          aelems, delems, options.parent_child,
          [&out, sid](const LocalElement& a, const LocalElement& d) {
            out.pairs.push_back(LazyJoinPair{sid, a.start, sid, d.start});
            ++out.stats.in_segment_pairs;
          });
      // Keep the scan for the Step 2 push attempt of the same segment.
      fetch_cache_sid = sid;
      fetch_cache = std::move(aelems);
      // Do not advance ia: the same segment is also a cross-join ancestor
      // candidate for later descendant segments (Step 2 next round).
    }
  }
  return out;
}

}  // namespace lazyxml
