#include "core/lazy_join.h"

#include <algorithm>
#include <utility>

#include "core/lazy_join_internal.h"
#include "join/global_element.h"
#include "join/stack_tree.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lazyxml {
namespace internal {

Status SegmentResolver::ResolveList(const UpdateLog& log,
                                    std::span<const TagListEntry> entries,
                                    ResolvedEntries* out) {
  out->entries = entries;
  out->nodes.clear();
  out->nodes.reserve(entries.size());
  for (const TagListEntry& e : entries) {
    // path[0] is the dummy root and is never a splice child nor a tag-list
    // sid, so it needs no node.
    for (size_t i = 1; i < e.path.size(); ++i) {
      const SegmentId sid = e.path[i];
      if (map_.find(sid) != map_.end()) continue;
      LAZYXML_ASSIGN_OR_RETURN(SegmentNode * node, log.FindSegment(sid));
      map_.emplace(sid, node);
    }
    out->nodes.push_back(Lookup(e.sid()));
  }
  return Status::OK();
}

bool SpliceMemo::Find(const std::vector<SegmentId>& path, SegmentId anc,
                      uint64_t* p_out) {
  if (path_ != &path) {
    // New path: rebuild the inner-node -> child-splice map. Tag-list paths
    // are stable for the lifetime of a frozen query, so pointer identity
    // is a sound memo key.
    path_ = &path;
    pos_.clear();
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      const SegmentNode* child = resolver_->Lookup(path[i + 1]);
      if (child == nullptr) break;  // unresolved tail: probes there fail
      pos_.emplace(path[i], child->lp);
    }
  }
  auto it = pos_.find(anc);
  if (it == pos_.end()) return false;
  *p_out = it->second;
  return true;
}

BlockCursor::BlockCursor(CompactScanHandle scan, uint64_t* fetched)
    : scan_(std::move(scan)), fetched_(fetched) {
  if (scan_ == nullptr || scan_->count() == 0) return;
  size_ = scan_->count();
  prefix_.reserve(scan_->num_blocks());
  uint64_t running = 0;
  for (size_t b = 0; b < scan_->num_blocks(); ++b) {
    running += scan_->header(b).count;
    prefix_.push_back(running);
  }
  buf_.resize(kCompactBlockMaxRecords);
}

const LocalElement& BlockCursor::Load(size_t i) {
  LAZYXML_CHECK(scan_ != nullptr && i < size_);
  const size_t b = static_cast<size_t>(
      std::upper_bound(prefix_.begin(), prefix_.end(), i) - prefix_.begin());
  {
    LAZYXML_METRIC_HISTOGRAM(decode_hist, "compact.decode_us");
    obs::ScopedLatency decode_latency(decode_hist);
    // The compact index is validated at build / snapshot load (invariant
    // I-COMPACT), so a decode failure here is memory corruption, not bad
    // input — fail hard rather than emit a wrong join.
    LAZYXML_CHECK(scan_->DecodeBlock(b, buf_.data()).ok());
  }
  const CompactBlockHeader& hdr = scan_->header(b);
  cur_hi_ = prefix_[b];
  cur_lo_ = cur_hi_ - hdr.count;
  // Store-read accounting mirrors ScanFetcher::Fetch: a decoded block is
  // a real backing-store read (see lazy_join.h on elements_fetched).
  if (fetched_ != nullptr) *fetched_ += hdr.count;
  LAZYXML_METRIC_COUNTER(fetched_counter, "join.elements_fetched");
  fetched_counter.Add(hdr.count);
  return buf_[i - cur_lo_];
}

ElementScan ScanFetcher::Fetch(TagId tid, SegmentId sid,
                               LazyJoinStats* stats) {
  // One slot per tag role: slot 0 serves the first tid seen (both roles of
  // a self-join collapse onto it), slot 1 the other.
  Slot& slot =
      (slots_[0].scan == nullptr || slots_[0].tid == tid) ? slots_[0]
                                                          : slots_[1];
  if (slot.scan != nullptr && slot.tid == tid && slot.sid == sid) {
    ++stats->scan_cache_hits;
    return slot.scan;
  }
  if (compact_ != nullptr) {
    // Compact mode: decode the whole list from the in-memory compact
    // store. Decoded raw lists go through the shared cache exactly like
    // tree-mode scans: a hot list is then decoded once per epoch, so at
    // an equal cache budget compact-scan joins run the same hit path as
    // tree-scan joins — the cache budget, not the representation, bounds
    // how much decoded data stays resident next to the compressed index.
    if (cache_ != nullptr) {
      if (ElementScan hit = cache_->Get(tid, sid, epoch_)) {
        ++stats->scan_cache_hits;
        slot = Slot{tid, sid, hit};
        return hit;
      }
    }
    auto fresh = std::make_shared<std::vector<LocalElement>>();
    if (CompactScanHandle list = compact_->GetList(tid, sid)) {
      LAZYXML_METRIC_HISTOGRAM(decode_hist, "compact.decode_us");
      obs::ScopedLatency decode_latency(decode_hist);
      LAZYXML_CHECK(list->DecodeAll(fresh.get()).ok());
    }
    LAZYXML_METRIC_COUNTER(fetched_counter, "join.elements_fetched");
    fetched_counter.Add(fresh->size());
    stats->elements_fetched += fresh->size();
    ElementScan scan = std::move(fresh);
    if (cache_ != nullptr) cache_->Put(tid, sid, epoch_, scan);
    slot = Slot{tid, sid, scan};
    return scan;
  }
  if (cache_ != nullptr) {
    if (ElementScan hit = cache_->Get(tid, sid, epoch_)) {
      ++stats->scan_cache_hits;
      slot = Slot{tid, sid, hit};
      return hit;
    }
  }
  // Pinned-epoch view queries: a list retired after the view's epoch is
  // served from the version store's pre-image; untouched lists fall
  // through to the live index (docs/MVCC.md). Both count as store reads.
  ElementScan fresh;
  if (versions_ != nullptr) fresh = versions_->ScanAt(tid, sid);
  if (fresh == nullptr) {
    fresh = std::make_shared<std::vector<LocalElement>>(
        index_->GetElements(tid, sid));
  }
  // The registry mirrors LazyJoinStats here, at the single point a real
  // index read happens — the same place the per-query counter increments,
  // so the two can never drift (the elements_fetched double-count class).
  LAZYXML_METRIC_COUNTER(fetched_counter, "join.elements_fetched");
  fetched_counter.Add(fresh->size());
  stats->elements_fetched += fresh->size();
  ElementScan scan = std::move(fresh);
  if (cache_ != nullptr) cache_->Put(tid, sid, epoch_, scan);
  slot = Slot{tid, sid, scan};
  return scan;
}

ElementScan ScanFetcher::FetchFiltered(TagId tid, const SegmentNode& seg,
                                       LazyJoinStats* stats) {
  if (cache_ != nullptr) {
    if (compact_ != nullptr) {
      // Compact mode caches filtered scans *compressed* — the budget then
      // admits more straddler lists by the compression ratio.
      if (CompactScanHandle hit =
              cache_->GetCompact(tid, seg.sid, epoch_, ScanKind::kStraddle)) {
        ++stats->scan_cache_hits;
        auto decoded = std::make_shared<std::vector<LocalElement>>();
        LAZYXML_METRIC_HISTOGRAM(decode_hist, "compact.decode_us");
        obs::ScopedLatency decode_latency(decode_hist);
        LAZYXML_CHECK(hit->DecodeAll(decoded.get()).ok());
        return decoded;
      }
    } else if (ElementScan hit =
                   cache_->Get(tid, seg.sid, epoch_, ScanKind::kStraddle)) {
      ++stats->scan_cache_hits;
      return hit;
    }
  }
  LAZYXML_METRIC_COUNTER(straddle_counter, "join.straddle_filters");
  straddle_counter.Increment();
  std::vector<uint64_t> splices;
  splices.reserve(seg.children.size());
  for (const SegmentNode* c : seg.children) splices.push_back(c->lp);
  auto filtered = std::make_shared<std::vector<LocalElement>>();

  if (compact_ != nullptr) {
    // Filter block-at-a-time straight off the compressed stream. A
    // straddler needs some splice p with start < p < end; every record of
    // a block has start >= header.first_start and end <= header.max_end,
    // so a block can only hold one if some splice lies in the open
    // interval (first_start, max_end) — otherwise skip it undecoded.
    if (CompactScanHandle list = compact_->GetList(tid, seg.sid);
        list != nullptr && !splices.empty()) {
      LAZYXML_METRIC_COUNTER(skip_counter, "join.blocks_skipped_total");
      LAZYXML_METRIC_COUNTER(fetched_counter, "join.elements_fetched");
      LAZYXML_METRIC_HISTOGRAM(decode_hist, "compact.decode_us");
      LocalElement buf[kCompactBlockMaxRecords];
      for (size_t b = 0; b < list->num_blocks(); ++b) {
        const CompactBlockHeader& hdr = list->header(b);
        auto it = std::upper_bound(splices.begin(), splices.end(),
                                   hdr.first_start);
        if (it == splices.end() || *it >= hdr.max_end) {
          ++stats->blocks_skipped;
          skip_counter.Increment();
          continue;
        }
        {
          obs::ScopedLatency decode_latency(decode_hist);
          LAZYXML_CHECK(list->DecodeBlock(b, buf).ok());
        }
        fetched_counter.Add(hdr.count);
        stats->elements_fetched += hdr.count;
        for (uint32_t i = 0; i < hdr.count; ++i) {
          const LocalElement& a = buf[i];
          auto jt = std::upper_bound(splices.begin(), splices.end(), a.start);
          if (jt != splices.end() && *jt < a.end) filtered->push_back(a);
        }
      }
    }
    ElementScan scan = std::move(filtered);
    if (cache_ != nullptr) {
      // Re-encode the (typically tiny) straddler list; filtered scans are
      // strictly-ascending sub-sequences of a valid list, so Encode cannot
      // fail on them.
      auto encoded = CompactTagScan::Encode(*scan);
      LAZYXML_CHECK(encoded.ok());
      cache_->PutCompact(tid, seg.sid, epoch_,
                         std::make_shared<const CompactTagScan>(
                             std::move(encoded).ValueOrDie()),
                         ScanKind::kStraddle);
    }
    return scan;
  }

  ElementScan raw = Fetch(tid, seg.sid, stats);
  for (const LocalElement& a : *raw) {
    auto it = std::upper_bound(splices.begin(), splices.end(), a.start);
    if (it != splices.end() && *it < a.end) filtered->push_back(a);
  }
  ElementScan scan = std::move(filtered);
  if (cache_ != nullptr) {
    cache_->Put(tid, seg.sid, epoch_, scan, ScanKind::kStraddle);
  }
  return scan;
}

BlockCursor ScanFetcher::FetchCursor(TagId tid, SegmentId sid,
                                     LazyJoinStats* stats) {
  LAZYXML_DCHECK(compact_ != nullptr);
  return BlockCursor(compact_->GetList(tid, sid), &stats->elements_fetched);
}

Status PrepareJoinContext(const UpdateLog& log, const ElementIndex& index,
                          TagId ancestor_tid, TagId descendant_tid,
                          const LazyJoinOptions& options,
                          ElementScanCache* cache, uint64_t cache_epoch,
                          const CompactElementIndex* compact,
                          JoinContext* ctx, bool* empty,
                          const ScanVersionSource* versions) {
  if (!log.frozen()) {
    return Status::Internal("LazyJoin on an unfrozen LS update log");
  }
  if (!log.tag_list().sorted()) {
    return Status::Internal("LazyJoin on an unsorted tag-list");
  }
  ctx->log = &log;
  ctx->index = &index;
  ctx->compact = compact;
  ctx->ancestor_tid = ancestor_tid;
  ctx->descendant_tid = descendant_tid;
  ctx->options = options;
  ctx->cache = cache;
  ctx->cache_epoch = cache_epoch;
  ctx->versions = versions;
  std::span<const TagListEntry> sl_a = log.tag_list().EntriesFor(ancestor_tid);
  std::span<const TagListEntry> sl_d = log.tag_list().EntriesFor(descendant_tid);
  // Path-summary sid filters: drop entries whose segment provably cannot
  // contribute a pair, before anything is resolved or fetched. The
  // survivors keep their tag-list order, so the kernel sees the same
  // laminar segment geometry minus pairless segments — output is
  // byte-identical to the unpruned run (docs/PATH_SUMMARY.md).
  const auto apply_filter = [ctx](std::span<const TagListEntry> list,
                                  const std::unordered_set<SegmentId>* keep,
                                  std::vector<TagListEntry>* storage) {
    if (keep == nullptr) return list;
    storage->reserve(list.size());
    for (const TagListEntry& e : list) {
      if (keep->count(e.sid()) != 0) {
        storage->push_back(e);
      } else {
        ++ctx->segments_pruned;
        ctx->elements_skipped += e.count;
      }
    }
    return std::span<const TagListEntry>(*storage);
  };
  sl_a = apply_filter(sl_a, options.ancestor_sid_filter, &ctx->filtered_a);
  sl_d = apply_filter(sl_d, options.descendant_sid_filter, &ctx->filtered_d);
  if (ctx->segments_pruned > 0) {
    LAZYXML_METRIC_COUNTER(pruned_counter, "query.segments_pruned_total");
    LAZYXML_METRIC_COUNTER(skipped_counter, "query.elements_skipped_total");
    pruned_counter.Add(ctx->segments_pruned);
    skipped_counter.Add(ctx->elements_skipped);
  }
  *empty = sl_a.empty() || sl_d.empty();
  if (*empty) return Status::OK();
  LAZYXML_RETURN_NOT_OK(ctx->resolver.ResolveList(log, sl_a, &ctx->sl_a));
  LAZYXML_RETURN_NOT_OK(ctx->resolver.ResolveList(log, sl_d, &ctx->sl_d));
  return Status::OK();
}

namespace {

struct StackEntry {
  const SegmentNode* seg = nullptr;
  /// Materialized scan: unfiltered tree scan, or the straddle-filtered
  /// list under optimize_stack (both modes). Never mutated, so it is safe
  /// to share across partitions and queries; the prune state lives in
  /// `live`, per entry. Null when the entry reads through `cursor`.
  ElementScan scan;
  /// Compact-mode unfiltered entry: block-at-a-time decoding cursor
  /// (positions match the materialized scan record-for-record, so the
  /// loops below are representation-agnostic).
  BlockCursor cursor;
  size_t live = 0;        // prune cursor into the element positions
  uint64_t cached_p = 0;  // splice pos toward the entry above
  bool has_cached_p = false;

  size_t count() const { return scan != nullptr ? scan->size() : cursor.size(); }
  const LocalElement& At(size_t i) {
    return scan != nullptr ? (*scan)[i] : cursor.At(i);
  }
};

// Fetches + (when optimizing) straddle-filters the stack entry for SL_A
// index `idx` (the serial Fig. 9 push filter: keep only elements
// straddling at least one child splice position).
StackEntry MakeStackEntry(const JoinContext& ctx, ScanFetcher* fetcher,
                          size_t idx, LazyJoinStats* stats) {
  StackEntry entry;
  entry.seg = ctx.sl_a.nodes[idx];
  if (ctx.options.optimize_stack) {
    entry.scan = fetcher->FetchFiltered(ctx.ancestor_tid, *entry.seg, stats);
  } else if (ctx.compact != nullptr) {
    entry.cursor = fetcher->FetchCursor(
        ctx.ancestor_tid, ctx.sl_a.entries[idx].sid(), stats);
  } else {
    entry.scan =
        fetcher->Fetch(ctx.ancestor_tid, ctx.sl_a.entries[idx].sid(), stats);
  }
  return entry;
}

}  // namespace

Status RunJoinPartition(const JoinContext& ctx, const PartitionSeed& seed,
                        LazyJoinResult* out) {
  // Per-partition rounds span + latency: on pool threads the span opens
  // its own trace (correlate with the query's "join.rounds" span by
  // time); the histogram is what the scaling analysis reads.
  obs::TraceSpan partition_span("join.partition");
  LAZYXML_METRIC_HISTOGRAM(partition_hist, "join.partition_us");
  obs::ScopedLatency partition_latency(partition_hist);
  LAZYXML_METRIC_COUNTER(rounds_counter, "join.rounds");
  rounds_counter.Add(seed.d_end - seed.d_begin);
  const std::span<const TagListEntry> sl_a = ctx.sl_a.entries;
  const std::span<const TagListEntry> sl_d = ctx.sl_d.entries;
  const LazyJoinOptions& options = ctx.options;
  LazyJoinStats& stats = out->stats;
  ScanFetcher fetcher(ctx.index, ctx.cache, ctx.cache_epoch, ctx.compact,
                      ctx.versions);
  SpliceMemo memo(&ctx.resolver);

  // Seed reconstruction: rebuild the entries live at round d_begin. Their
  // cached splice positions are recomputed from the entry directly above
  // (the path to anything nested inside the entry above enters `below`
  // through the same child, so the value matches what the serial run
  // cached at push time). Prune cursors start at 0 — pruning is a pure
  // optimization; the `a.start >= p` / `a.end <= p` guards re-filter.
  // Seeded entries are NOT counted as pushes: the serial run pushed them
  // in an earlier partition's rounds.
  std::vector<StackEntry> stack;
  stack.reserve(seed.live_stack.size() + 8);
  for (size_t idx : seed.live_stack) {
    StackEntry entry = MakeStackEntry(ctx, &fetcher, idx, &stats);
    if (!stack.empty()) {
      StackEntry& below = stack.back();
      uint64_t p = 0;
      if (memo.Find(sl_a[idx].path, below.seg->sid, &p)) {
        below.cached_p = p;
        below.has_cached_p = true;
      }
    }
    stack.push_back(std::move(entry));
  }

  size_t ia = seed.ia_begin;
  for (size_t id = seed.d_begin; id < seed.d_end; ++id) {
    const TagListEntry& de = sl_d[id];
    const SegmentNode* sd = ctx.sl_d.nodes[id];

    // Step 1 (pop): segments ending at or before sd's start are done —
    // SL_D is position-ordered, so they can never contain a later segment.
    while (!stack.empty() && sd->gp >= stack.back().seg->end()) {
      stack.pop_back();
    }

    // Step 2 (push): consume A-segments positioned before sd. Each either
    // contains sd (candidate ancestor: push) or is disjoint (skip — it
    // ends before sd starts, so it ends before everything later too).
    while (ia < sl_a.size()) {
      const TagListEntry& ae = sl_a[ia];
      const SegmentNode* sa = ctx.sl_a.nodes[ia];
      if (sa->gp >= sd->gp) break;
      ++ia;
      if (!sa->ContainsSegment(*sd)) {
        ++stats.segments_skipped;
        continue;
      }
      if (options.optimize_stack && sa->children.empty()) {
        // No child segments: no descendant segments, no cross joins.
        ++stats.segments_skipped;
        continue;
      }
      StackEntry entry = MakeStackEntry(ctx, &fetcher, ia - 1, &stats);
      if (options.optimize_stack && entry.count() == 0) {
        ++stats.segments_skipped;
        continue;
      }
      if (!stack.empty()) {
        // Cache the splice position of the previous top toward the new
        // top: every future descendant segment handled while the new top
        // lives enters the previous top through this same child. Also
        // prune previous-top elements that end at or before it — splice
        // positions only grow, so they are dead.
        StackEntry& below = stack.back();
        uint64_t p = 0;
        if (memo.Find(ae.path, below.seg->sid, &p)) {
          below.cached_p = p;
          below.has_cached_p = true;
          if (options.optimize_stack) {
            const size_t bn = below.count();
            while (below.live < bn && below.At(below.live).end <= p) {
              ++below.live;
            }
          }
        }
      }
      stack.push_back(std::move(entry));
      ++stats.segments_pushed;
    }

    // Step 3 (join generation): every stack entry contains sd; emit cross
    // joins by Proposition 3(2), then in-segment joins if sd itself also
    // carries A-elements.
    ElementScan delems;
    auto load_delems = [&]() {
      if (delems == nullptr) {
        delems = fetcher.Fetch(ctx.descendant_tid, de.sid(), &stats);
      }
    };

    for (size_t si = 0; si < stack.size(); ++si) {
      StackEntry& e = stack[si];
      uint64_t p = 0;
      if (si + 1 < stack.size()) {
        if (!e.has_cached_p) continue;
        p = e.cached_p;
      } else {
        if (!memo.Find(de.path, e.seg->sid, &p)) continue;
      }
      const bool is_top = (si + 1 == stack.size());
      const size_t en = e.count();
      for (size_t ei = e.live; ei < en; ++ei) {
        // Copy, not reference: a cursor-backed entry's At() buffer is
        // re-filled on the next block load.
        const LocalElement a = e.At(ei);
        if (a.start >= p) break;  // frozen order: no later element straddles
        if (a.end <= p) {
          if (options.optimize_stack && is_top && ei == e.live) {
            ++e.live;  // dead for every future splice position too
          }
          continue;
        }
        load_delems();
        for (const LocalElement& d : *delems) {
          if (options.parent_child && a.level + 1 != d.level) continue;
          out->pairs.push_back(
              LazyJoinPair{e.seg->sid, a.start, de.sid(), d.start});
          ++stats.cross_segment_pairs;
        }
      }
    }

    // In-segment joins: sd appears in SL_A too iff the current A cursor
    // points at the very same segment (both lists are position-ordered).
    // The A-scan fetched here is served again from the fetcher's slot by
    // the Step 2 push attempt of the same segment next round (and, in a
    // self-join, by load_delems below) instead of re-reading the index.
    if (ia < sl_a.size() && sl_a[ia].sid() == de.sid()) {
      ElementScan aelems = fetcher.Fetch(ctx.ancestor_tid, de.sid(), &stats);
      load_delems();
      // Frozen local coordinates nest properly within one segment, so any
      // traditional structural join applies (paper §4.2); Stack-Tree-Desc
      // is used as in the paper, directly over the frozen coordinates.
      const SegmentId sid = de.sid();
      StackTreeDescVisit(
          *aelems, *delems, options.parent_child,
          [out, &stats, sid](const LocalElement& a, const LocalElement& d) {
            out->pairs.push_back(LazyJoinPair{sid, a.start, sid, d.start});
            ++stats.in_segment_pairs;
          });
      // Do not advance ia: the same segment is also a cross-join ancestor
      // candidate for later descendant segments (Step 2 next round).
    }
  }
  return Status::OK();
}

}  // namespace internal

Result<LazyJoinResult> LazyJoin(const UpdateLog& log,
                                const ElementIndex& index, TagId ancestor_tid,
                                TagId descendant_tid,
                                const LazyJoinOptions& options,
                                const CompactElementIndex* compact) {
  obs::TraceSpan query_span("join.query");
  LAZYXML_METRIC_COUNTER(queries_counter, "join.queries");
  queries_counter.Increment();
  internal::JoinContext ctx;
  bool empty = false;
  {
    obs::TraceSpan prepare_span("join.prepare");
    LAZYXML_RETURN_NOT_OK(internal::PrepareJoinContext(
        log, index, ancestor_tid, descendant_tid, options,
        /*cache=*/nullptr, /*cache_epoch=*/0, compact, &ctx, &empty));
  }
  LazyJoinResult out;
  out.stats.segments_pruned = ctx.segments_pruned;
  out.stats.elements_skipped = ctx.elements_skipped;
  if (empty) return out;
  internal::PartitionSeed whole;
  whole.d_begin = 0;
  whole.d_end = ctx.sl_d.entries.size();
  LAZYXML_RETURN_NOT_OK(internal::RunJoinPartition(ctx, whole, &out));
  return out;
}

}  // namespace lazyxml
