#include "core/lazy_database.h"

#include <algorithm>
#include <map>

#include "check/database_check.h"
#include "common/strings.h"
#include "obs/trace.h"
#include "xml/parser.h"

namespace lazyxml {

namespace {

// In paranoid builds every mutating facade operation re-verifies the full
// cross-structure state, so a latent violation surfaces at the op that
// introduced it instead of at some later query.
Status ParanoidCheck(const LazyDatabase& db) {
#if defined(LAZYXML_PARANOID_CHECKS)
  auto report = check::CheckDatabase(db);
  LAZYXML_RETURN_NOT_OK(report.status());
  return report.ValueOrDie().ToStatus();
#else
  (void)db;
  return Status::OK();
#endif
}

}  // namespace

LazyDatabase::LazyDatabase(LazyDatabaseOptions options)
    : options_(options),
      log_(UpdateLog::Options{options.mode, options.sb_tree_options}),
      index_(options.element_index_options) {
  SetQueryOptions(options.query);
}

void LazyDatabase::SetQueryOptions(const QueryOptions& query) {
  options_.query = query;
  if (query.num_threads == 0) {
    // Auto: the process-wide shared pool, so N databases in one process
    // share one set of workers instead of spawning N * hw_concurrency
    // threads (docs/PARALLELISM.md).
    owned_pool_.reset();
    query_pool_ = ThreadPool::Shared();
  } else if (query.num_threads == 1) {
    owned_pool_.reset();
    query_pool_ = nullptr;
  } else {
    if (owned_pool_ == nullptr ||
        owned_pool_->num_threads() != query.num_threads) {
      owned_pool_ = std::make_unique<ThreadPool>(query.num_threads);
    }
    query_pool_ = owned_pool_.get();
  }
  if (query.cache_bytes == 0) {
    scan_cache_.reset();
  } else if (scan_cache_ == nullptr ||
             scan_cache_->options().capacity_bytes != query.cache_bytes) {
    ElementScanCacheOptions copts;
    copts.capacity_bytes = query.cache_bytes;
    scan_cache_ = std::make_unique<ElementScanCache>(copts);
  }
  // Build failures (corrupt structure) surface on the scrubber / the
  // next restore; a failed build just leaves the summary stale, which
  // silently disables pruning.
  (void)EnsurePathSummary();
}

ElementScan LazyDatabase::GetScan(TagId tid, SegmentId sid) {
  if (scan_cache_ != nullptr) {
    if (ElementScan hit = scan_cache_->Get(tid, sid, mutation_epoch_)) {
      return hit;
    }
  }
  ElementScan scan =
      std::make_shared<std::vector<LocalElement>>(index_.GetElements(tid, sid));
  if (scan_cache_ != nullptr) {
    scan_cache_->Put(tid, sid, mutation_epoch_, scan);
  }
  return scan;
}

Result<SegmentId> LazyDatabase::InsertSegment(std::string_view text,
                                              uint64_t gp) {
  // Bumped up front: cached scans must not survive even a partially
  // applied mutation. A failure *before* the first structural mutation
  // rolls the bump back — the state is provably unchanged, so cached
  // scans (and their eviction history) survive a rejected op.
  ++mutation_epoch_;
  SummaryBeginMutation();
  bool mutated = false;
  Result<SegmentId> r = InsertSegmentImpl(text, gp, nullptr, &mutated);
  if (!r.ok() && !mutated) --mutation_epoch_;
  // Committed even on failure: a pre-mutation failure (parse error) left
  // tracking armed and the summary still matches the unchanged state; a
  // mid-mutation failure disarmed it, leaving the summary stale.
  SummaryCommit();
  LAZYXML_ASSIGN_OR_RETURN(SegmentId sid, std::move(r));
  if (capture_ != nullptr) {
    LAZYXML_RETURN_NOT_OK(capture_->OnInsertSegment(sid, text, gp));
  }
  LAZYXML_RETURN_NOT_OK(ParanoidCheck(*this));
  return sid;
}

Result<SegmentId> LazyDatabase::InsertSegmentImpl(
    std::string_view text, uint64_t gp,
    std::vector<ElementIndexRecord>* deferred, bool* mutated) {
  // Parse first: a malformed segment must not touch any structure.
  ParseOptions popts;
  popts.require_single_root = true;
  auto parsed_r = ParseFragment(text, &dict_, popts);
  if (!parsed_r.ok()) {
    return parsed_r.status().WithContext("inserting segment");
  }
  ParsedFragment parsed = std::move(parsed_r).ValueOrDie();

  // First structural mutation: disarm summary tracking until the
  // maintenance at the end of this method succeeds. (AddSegment is
  // conservatively counted as mutating even when it rejects the
  // position — the epoch bump then stays, which is always safe.)
  const bool summary_was_tracking = summary_track_;
  summary_track_ = false;
  if (mutated != nullptr) *mutated = true;
  LAZYXML_ASSIGN_OR_RETURN(UpdateLog::InsertInfo info,
                           log_.AddSegment(gp, text.size()));

  // Depth of the splice point: the innermost parent-segment element
  // containing it (via the parent's nesting summary), else the parent's
  // own splice depth (recursively established at its insertion).
  const uint32_t base_level =
      info.parent->LevelAt(info.frozen_point, info.parent->base_level);
  info.node->base_level = base_level;
  info.node->distinct_tags = parsed.distinct_tags;
  if (base_level > 0) {
    for (ElementRecord& r : parsed.records) r.level += base_level;
  }

  // Build the segment's nesting summary (records are in preorder; parent
  // links fall out of an interval stack).
  info.node->summary.reserve(parsed.records.size());
  {
    std::vector<uint32_t> stack;
    for (uint32_t i = 0; i < parsed.records.size(); ++i) {
      const ElementRecord& r = parsed.records[i];
      while (!stack.empty() &&
             parsed.records[stack.back()].end <= r.start) {
        stack.pop_back();
      }
      NestingEntry e;
      e.start = r.start;
      e.end = r.end;
      e.level = r.level;
      e.tid = r.tid;
      e.parent = stack.empty() ? kNoParentEntry : stack.back();
      info.node->summary.push_back(e);
      stack.push_back(i);
    }
  }

  if (deferred == nullptr) {
    LAZYXML_RETURN_NOT_OK(index_.InsertRecords(info.sid, parsed.records));
  } else {
    // ApplyBatch defers the index work of a run of consecutive inserts
    // into one sorted-batch tree apply; nothing on this path reads the
    // element index, so the deferral is unobservable.
    for (const ElementRecord& r : parsed.records) {
      deferred->push_back(
          ElementIndexRecord{r.tid, info.sid, r.start, r.end, r.level});
    }
  }

  // Tag-list: one path entry per distinct tag, with occurrence counts
  // (paper §3.3: counts decide when a path dies on deletion).
  std::map<TagId, uint64_t> counts;
  for (const ElementRecord& r : parsed.records) ++counts[r.tid];
  for (const auto& [tid, count] : counts) {
    LAZYXML_RETURN_NOT_OK(
        log_.tag_list().AddEntry(tid, info.path, count, log_));
  }

  if (summary_was_tracking) {
    LAZYXML_METRIC_HISTOGRAM(update_hist, "summary.update_us");
    obs::ScopedLatency update_latency(update_hist);
    const uint32_t ctx = SummaryContextOf(*info.parent, info.frozen_point);
    if (SummaryAddSegment(*info.node, ctx)) summary_track_ = true;
    // else: unattributable (stale pre-v4 entries at the splice point) —
    // tracking stays off, the summary goes stale instead of wrong.
  }
  return info.sid;
}

Status LazyDatabase::RemoveSegment(uint64_t gp, uint64_t length) {
  ++mutation_epoch_;
  SummaryBeginMutation();
  bool mutated = false;
  Status st = RemoveSegmentImpl(gp, length, &mutated);
  // A rejected removal (out of bounds, element split) fails in the
  // read-only pre-pass: nothing changed, cached scans stay valid.
  if (!st.ok() && !mutated) --mutation_epoch_;
  SummaryCommit();
  LAZYXML_RETURN_NOT_OK(st);
  if (capture_ != nullptr) {
    LAZYXML_RETURN_NOT_OK(capture_->OnRemoveRange(gp, length));
  }
  return ParanoidCheck(*this);
}

Status LazyDatabase::RemoveSegmentImpl(uint64_t gp, uint64_t length,
                                       bool* mutated) {
  LAZYXML_ASSIGN_OR_RETURN(UpdateLog::RemovalEffects effects,
                           log_.CollectRemovalEffects(gp, length));

  // Summary decrements are resolved *before* anything is deleted (the
  // element records and nesting chains must still be readable) and
  // applied only after the whole removal succeeded. The partial filter
  // is exactly ElementIndex::DeleteRange's entirely-inside predicate:
  // start >= begin && end <= end implies the other two half-tests.
  const bool summary_was_tracking = summary_track_;
  summary_track_ = false;
  std::vector<std::pair<uint32_t, SegmentId>> summary_decrements;
  bool summary_ok = summary_was_tracking;
  if (summary_was_tracking) {
    LAZYXML_METRIC_HISTOGRAM(update_hist, "summary.update_us");
    obs::ScopedLatency update_latency(update_hist);
    for (const auto& partial : effects.partial) {
      const SegmentNode* seg = log_.NodeOf(partial.sid);
      if (seg == nullptr) {
        summary_ok = false;
        break;
      }
      for (TagId tid : partial.tags) {
        for (const LocalElement& el : index_.GetElements(tid, partial.sid)) {
          if (el.start < partial.frozen_begin || el.end > partial.frozen_end) {
            continue;
          }
          const uint32_t node = SummaryNodeOfElement(*seg, el.start);
          if (node == PathSummary::kNoNode) {
            summary_ok = false;
            break;
          }
          summary_decrements.emplace_back(node, partial.sid);
        }
        if (!summary_ok) break;
      }
      if (!summary_ok) break;
    }
  }

  if (mutated != nullptr) *mutated = true;
  // MVCC: every (tag, segment) list this removal touches diverges from
  // its state at earlier epochs — capture the pre-images now, while the
  // index still holds them, for any open pinned view (docs/MVCC.md).
  if (mvcc_.HasOpenViews()) {
    for (const auto& partial : effects.partial) {
      for (TagId tid : partial.tags) {
        mvcc_.CaptureScan(tid, partial.sid, mutation_epoch_,
                          std::make_shared<std::vector<LocalElement>>(
                              index_.GetElements(tid, partial.sid)));
      }
    }
    for (const auto& full : effects.full) {
      for (TagId tid : full.tags) {
        mvcc_.CaptureScan(tid, full.sid, mutation_epoch_,
                          std::make_shared<std::vector<LocalElement>>(
                              index_.GetElements(tid, full.sid)));
      }
    }
  }

  // Element index first (it needs the pre-removal frozen intervals), then
  // the tag-list (it needs the per-tag deletion counts and the
  // pre-removal global positions), then the tree mutation.
  for (const auto& partial : effects.partial) {
    LAZYXML_ASSIGN_OR_RETURN(
        RemovedCounts counts,
        index_.DeleteRange(partial.sid, partial.tags, partial.frozen_begin,
                           partial.frozen_end));
    for (const auto& [tid, count] : counts) {
      LAZYXML_RETURN_NOT_OK(
          log_.tag_list().RemoveOccurrences(tid, partial.sid, count, log_));
    }
  }
  for (const auto& full : effects.full) {
    LAZYXML_ASSIGN_OR_RETURN(RemovedCounts counts,
                             index_.DeleteSegment(full.sid, full.tags));
    for (const auto& [tid, count] : counts) {
      LAZYXML_RETURN_NOT_OK(
          log_.tag_list().RemoveOccurrences(tid, full.sid, count, log_));
    }
  }
  LAZYXML_RETURN_NOT_OK(log_.ApplyRemoval(effects));

  if (summary_ok) {
    LAZYXML_METRIC_HISTOGRAM(update_hist, "summary.update_us");
    obs::ScopedLatency update_latency(update_hist);
    for (const auto& [node, sid] : summary_decrements) {
      // An underflow here is a real divergence (the I-SUMMARY scrubber
      // flags the same state); surface it like ParanoidCheck would.
      LAZYXML_RETURN_NOT_OK(summary_->RemoveElement(node, sid));
    }
    for (const auto& full : effects.full) {
      summary_->RemoveSegmentAll(full.sid);
    }
    summary_track_ = true;
  }
  return Status::OK();
}

Result<BatchStats> LazyDatabase::ApplyBatch(std::span<const UpdateOp> ops) {
  BatchStats stats;
  LAZYXML_RETURN_NOT_OK(ApplyBatch(ops, &stats));
  return stats;
}

Status LazyDatabase::ApplyBatch(std::span<const UpdateOp> ops,
                                BatchStats* stats_out) {
  obs::TraceSpan batch_span("batch.apply");
  LAZYXML_METRIC_HISTOGRAM(apply_hist, "batch.apply_us");
  obs::ScopedLatency apply_latency(apply_hist);
  BatchStats local;
  BatchStats& stats = stats_out != nullptr ? *stats_out : local;
  stats = BatchStats{};
  stats.ops = ops.size();
  stats.sids.assign(ops.size(), 0);
  if (ops.empty()) return Status::OK();
  ++mutation_epoch_;
  SummaryBeginMutation();
  // Set at the first structural mutation (or burned sid) of any op; a
  // batch failing with it still false provably changed nothing, so the
  // epoch bump is rolled back and cached scans survive.
  bool batch_mutated = false;
  if (capture_ != nullptr) {
    Status begin_status = capture_->OnBatchBegin(ops.size());
    if (!begin_status.ok()) {
      --mutation_epoch_;  // nothing mutated: cached scans stay valid
      SummaryCommit();    // and the summary still matches
      return begin_status;
    }
  }

  // Plan cancellations: an insert immediately followed by a remove of
  // exactly the inserted range is a no-op on the final state, so the
  // structural work can be skipped. Eligibility is simulated against
  // the running super-document length; once an op would fail a bounds
  // check the batch will stop there anyway, so planning ends too.
  std::vector<bool> cancelled(ops.size(), false);
  {
    uint64_t len = log_.super_document_length();
    for (size_t i = 0; i < ops.size(); ++i) {
      const UpdateOp& op = ops[i];
      if (op.kind == UpdateOp::Kind::kInsert) {
        if (op.gp > len) break;  // sequential apply fails here
        if (i + 1 < ops.size() && !op.text.empty()) {
          const UpdateOp& next = ops[i + 1];
          if (next.kind == UpdateOp::Kind::kRemove && next.gp == op.gp &&
              next.length == op.text.size()) {
            // The removal range is exactly the new segment's characters
            // (existing content at >= gp shifted past it), so the pair
            // cancels without touching any neighbour.
            cancelled[i] = cancelled[i + 1] = true;
            ++i;  // skip the remove; len is net unchanged
            continue;
          }
        }
        len += op.text.size();
      } else {
        if (op.gp + op.length > len) break;  // sequential apply fails here
        len -= op.length;
      }
    }
  }

  // Index records deferred across a run of consecutive (non-cancelled)
  // inserts, flushed in one sorted-batch apply before anything that
  // reads the index (a removal) and at batch end. A fresh database gets
  // the bottom-up bulk load instead.
  std::vector<ElementIndexRecord> pending;
  auto flush = [&]() -> Status {
    if (pending.empty()) return Status::OK();
    ++stats.index_flushes;
    stats.index_records += pending.size();
    if (index_.size() == 0) {
      Status s = index_.BuildFrom(std::move(pending));
      pending = std::vector<ElementIndexRecord>();
      return s;
    }
    Status s = index_.InsertRecordsBatch(pending);
    pending.clear();
    return s;
  };

  Status op_status;
  size_t i = 0;
  // Element records in `pending` deferred by the op that ultimately
  // failed. They are still flushed (sequential InsertSegment applies
  // index records before the failure point too) but must not be counted:
  // stats cover exactly the applied prefix.
  size_t rejected_records = 0;
  for (; i < ops.size(); ++i) {
    const UpdateOp& op = ops[i];
    if (cancelled[i]) {
      if (op.kind == UpdateOp::Kind::kInsert) {
        // The pair's net structural effect is zero, but the sequential
        // hidden effects must still happen: the parse surfaces the same
        // error and interns the segment's tags, the sid the insert
        // would take is burned (later sids must match sequential
        // application exactly), and both ops are captured so WAL replay
        // — which knows nothing of batching — reproduces the state.
        ParseOptions popts;
        popts.require_single_root = true;
        auto parsed = ParseFragment(op.text, &dict_, popts);
        if (!parsed.ok()) {
          op_status = parsed.status().WithContext("inserting segment");
          break;
        }
        const SegmentId sid = log_.AllocateSid();
        batch_mutated = true;  // the burned sid is observable state
        stats.sids[i] = sid;
        if (capture_ != nullptr) {
          op_status = capture_->OnInsertSegment(sid, op.text, op.gp);
          if (!op_status.ok()) stats.sids[i] = 0;  // op rejected
        }
      } else {
        if (capture_ != nullptr) {
          op_status = capture_->OnRemoveRange(op.gp, op.length);
        }
        // Counted only once the pair's closing op is fully applied: a
        // capture failure here rejects the remove, and a rejected op
        // must contribute nothing to the stats.
        if (op_status.ok()) ++stats.cancelled_pairs;
      }
      if (!op_status.ok()) break;
      ++stats.applied;
      continue;
    }
    if (op.kind == UpdateOp::Kind::kInsert) {
      const size_t pending_before = pending.size();
      bool op_mutated = false;
      auto r = InsertSegmentImpl(op.text, op.gp, &pending, &op_mutated);
      batch_mutated |= op_mutated;
      if (!r.ok()) {
        op_status = r.status();
        rejected_records = pending.size() - pending_before;
        break;
      }
      stats.sids[i] = r.ValueOrDie();
      if (capture_ != nullptr) {
        op_status = capture_->OnInsertSegment(stats.sids[i], op.text, op.gp);
        if (!op_status.ok()) {
          stats.sids[i] = 0;  // op rejected
          rejected_records = pending.size() - pending_before;
        }
      }
    } else {
      // Removals read the element index; the deferred run must land first.
      op_status = flush();
      if (!op_status.ok()) break;
      bool op_mutated = false;
      op_status = RemoveSegmentImpl(op.gp, op.length, &op_mutated);
      batch_mutated |= op_mutated;
      if (op_status.ok() && capture_ != nullptr) {
        op_status = capture_->OnRemoveRange(op.gp, op.length);
      }
    }
    if (!op_status.ok()) break;
    ++stats.applied;
  }

  // Even on an op error the applied prefix must be complete (flush) and
  // the capture must be closed (the durability layer flushes its
  // buffered records — prefix durability). The op error wins.
  const bool flush_only_rejected =
      rejected_records > 0 && pending.size() == rejected_records;
  Status flush_status = flush();
  Status end_status =
      capture_ != nullptr ? capture_->OnBatchEnd() : Status::OK();
  // A failed deferred flush leaves the element index short of what the
  // per-op maintenance already counted — the summary must go stale too.
  if (!flush_status.ok()) summary_track_ = false;
  // A batch that failed before any structural mutation (first op's parse
  // or bounds error, capture rejection before any sid) changed nothing:
  // roll the epoch back so cached scans survive. Must precede
  // SummaryCommit, which stamps the (restored) epoch.
  if (!batch_mutated &&
      (!op_status.ok() || !flush_status.ok() || !end_status.ok())) {
    --mutation_epoch_;
  }
  // Committed on every outcome: each op's Impl kept tracking armed only
  // while the summary matched the applied prefix (prefix semantics).
  SummaryCommit();
  if (rejected_records > 0) {
    // The rejected op's deferred records were applied by the flush (a
    // sequential InsertSegment writes the element index before the
    // failure point too, so the states match) but belong to no applied
    // op — take them back out of the prefix-exact counters.
    stats.index_records -= rejected_records;
    if (flush_only_rejected) --stats.index_flushes;
  }
  // Registry mirror of the prefix-exact BatchStats (the struct stays the
  // public API; the registry aggregates across batches / databases).
  LAZYXML_METRIC_COUNTER(ops_counter, "batch.ops");
  LAZYXML_METRIC_COUNTER(applied_counter, "batch.applied");
  LAZYXML_METRIC_COUNTER(cancelled_counter, "batch.cancelled_pairs");
  LAZYXML_METRIC_COUNTER(flushes_counter, "batch.index_flushes");
  LAZYXML_METRIC_COUNTER(records_counter, "batch.index_records");
  LAZYXML_METRIC_COUNTER(failures_counter, "batch.failures");
  ops_counter.Add(stats.ops);
  applied_counter.Add(stats.applied);
  cancelled_counter.Add(stats.cancelled_pairs);
  flushes_counter.Add(stats.index_flushes);
  records_counter.Add(stats.index_records);
  if (!op_status.ok()) {
    failures_counter.Increment();
    return op_status.WithContext(StringPrintf("applying batch step %zu", i));
  }
  LAZYXML_RETURN_NOT_OK(flush_status);
  LAZYXML_RETURN_NOT_OK(end_status);
  LAZYXML_RETURN_NOT_OK(ParanoidCheck(*this));
  return Status::OK();
}

Status LazyDatabase::ApplyPlan(std::span<const SegmentInsertion> plan) {
  std::vector<UpdateOp> ops;
  ops.reserve(plan.size());
  for (const SegmentInsertion& s : plan) {
    ops.push_back(UpdateOp::Insert(s.text, s.gp));
  }
  return ApplyBatch(ops).status();
}

Result<SegmentId> LazyDatabase::CollapseSubtree(SegmentId sid) {
  // Validation precedes the epoch bump so a rejected collapse does not
  // stale the path summary (cached scans are unaffected either way).
  SegmentNode* top = log_.NodeOf(sid);
  if (top == nullptr) {
    return Status::NotFound("segment does not exist");
  }
  if (top->sid == kRootSegmentId) {
    return Status::InvalidArgument("cannot collapse the dummy root");
  }
  ++mutation_epoch_;
  SummaryBeginMutation();
  const bool summary_was_tracking = summary_track_;
  summary_track_ = false;
  const uint64_t base_gp = top->gp;

  // 1. Globalize every element of the subtree into the new segment's
  //    frozen coordinates (current global offsets relative to the top).
  struct NewRecord {
    TagId tid;
    ElementRecord rec;
  };
  std::vector<NewRecord> records;
  std::vector<std::pair<SegmentId, std::vector<TagId>>> old_segments;
  std::vector<SegmentNode*> work{top};
  while (!work.empty()) {
    SegmentNode* n = work.back();
    work.pop_back();
    old_segments.emplace_back(n->sid, n->distinct_tags);
    for (TagId tid : n->distinct_tags) {
      for (const LocalElement& e : index_.GetElements(tid, n->sid)) {
        ElementRecord r;
        r.tid = tid;
        r.start = n->FrozenToGlobal(e.start, true) - base_gp;
        r.end = n->FrozenToGlobal(e.end, false) - base_gp;
        r.level = e.level;
        records.push_back(NewRecord{tid, r});
      }
    }
    for (SegmentNode* c : n->children) work.push_back(c);
  }
  std::sort(records.begin(), records.end(),
            [](const NewRecord& a, const NewRecord& b) {
              return a.rec.start < b.rec.start;
            });

  // MVCC: the old segments' element lists die below — capture their
  // pre-images for any open pinned view before the index forgets them.
  if (mvcc_.HasOpenViews()) {
    for (const auto& [old_sid, tags] : old_segments) {
      for (TagId tid : tags) {
        mvcc_.CaptureScan(tid, old_sid, mutation_epoch_,
                          std::make_shared<std::vector<LocalElement>>(
                              index_.GetElements(tid, old_sid)));
      }
    }
  }

  // 2. Retire the old records and tag-list entries (resolver still knows
  //    the old segments at this point).
  for (const auto& [old_sid, tags] : old_segments) {
    LAZYXML_ASSIGN_OR_RETURN(RemovedCounts counts,
                             index_.DeleteSegment(old_sid, tags));
    for (const auto& [tid, count] : counts) {
      LAZYXML_RETURN_NOT_OK(
          log_.tag_list().RemoveOccurrences(tid, old_sid, count, log_));
    }
  }

  // 3. Structural collapse, then re-key everything into the new segment.
  LAZYXML_ASSIGN_OR_RETURN(UpdateLog::InsertInfo info,
                           log_.CollapseSubtree(sid));
  info.node->summary.reserve(records.size());
  std::map<TagId, uint64_t> counts;
  {
    std::vector<uint32_t> stack;
    for (uint32_t i = 0; i < records.size(); ++i) {
      const ElementRecord& r = records[i].rec;
      while (!stack.empty() &&
             records[stack.back()].rec.end <= r.start) {
        stack.pop_back();
      }
      NestingEntry e;
      e.start = r.start;
      e.end = r.end;
      e.level = r.level;
      e.tid = r.tid;
      e.parent = stack.empty() ? kNoParentEntry : stack.back();
      info.node->summary.push_back(e);
      stack.push_back(i);
      ++counts[records[i].tid];
      LAZYXML_RETURN_NOT_OK(index_.InsertRecords(
          info.sid, std::span<const ElementRecord>(&r, 1)));
    }
  }
  for (const auto& [tid, count] : counts) {
    info.node->distinct_tags.push_back(tid);
    LAZYXML_RETURN_NOT_OK(
        log_.tag_list().AddEntry(tid, info.path, count, log_));
  }

  if (summary_was_tracking) {
    // A collapse moves elements between segments without changing any
    // root-to-tag path: retire the old segments' attributions wholesale,
    // then re-attribute everything through the new segment's nesting
    // summary (same paths, new sid in the seg_counts).
    LAZYXML_METRIC_HISTOGRAM(update_hist, "summary.update_us");
    obs::ScopedLatency update_latency(update_hist);
    for (const auto& [old_sid, tags] : old_segments) {
      summary_->RemoveSegmentAll(old_sid);
    }
    const uint32_t ctx = SummaryContextOf(*info.parent, info.frozen_point);
    if (SummaryAddSegment(*info.node, ctx)) summary_track_ = true;
  }
  if (capture_ != nullptr) {
    LAZYXML_RETURN_NOT_OK(capture_->OnCollapseSubtree(sid, info.sid));
  }
  SummaryCommit();
  LAZYXML_RETURN_NOT_OK(ParanoidCheck(*this));
  return info.sid;
}

Status LazyDatabase::CompactAll() {
  // Snapshot the top-level sids first: collapsing mutates the child list.
  std::vector<SegmentId> tops;
  for (const SegmentNode* c : log_.root()->children) tops.push_back(c->sid);
  for (SegmentId sid : tops) {
    LAZYXML_RETURN_NOT_OK(CollapseSubtree(sid).status());
  }
  return Status::OK();
}

void LazyDatabase::Freeze() {
  log_.Freeze();
  // Build failures (only possible on a corrupt element index) surface on
  // the next JoinByName, which runs EnsureCompactIndex with a Status
  // return; Freeze keeps its historical void signature.
  (void)EnsureCompactIndex();
  (void)EnsurePathSummary();
}

Status LazyDatabase::EnsurePathSummary() {
  if (!options_.query.use_path_summary) return Status::OK();
  if (summary_ != nullptr && summary_built_epoch_ == mutation_epoch_) {
    return Status::OK();
  }
  LAZYXML_METRIC_HISTOGRAM(build_hist, "summary.build_us");
  obs::ScopedLatency build_latency(build_hist);
  LAZYXML_ASSIGN_OR_RETURN(summary_, BuildPathSummary(log_, index_));
  summary_built_epoch_ = mutation_epoch_;
  LAZYXML_METRIC_GAUGE(nodes_gauge, "summary.nodes");
  LAZYXML_METRIC_GAUGE(bytes_gauge, "summary.bytes");
  nodes_gauge.Set(static_cast<double>(summary_->num_nodes()));
  bytes_gauge.Set(static_cast<double>(summary_->MemoryBytes()));
  return Status::OK();
}

Result<std::unique_ptr<PathSummary>> LazyDatabase::BuildPathSummary(
    const UpdateLog& log, const ElementIndex& index) {
  auto summary = std::make_unique<PathSummary>();
  summary->SetSegmentContext(kRootSegmentId, PathSummary::kRootNode);

  // Innermost own-element entry of `s` strictly containing frozen `f`
  // (index into s.summary), or kNoParentEntry. Same walk as
  // SegmentNode::LevelAt.
  const auto innermost = [](const SegmentNode& s, uint64_t f) -> uint32_t {
    auto it = std::lower_bound(
        s.summary.begin(), s.summary.end(), f,
        [](const NestingEntry& e, uint64_t t) { return e.start < t; });
    if (it == s.summary.begin()) return kNoParentEntry;
    uint32_t j = static_cast<uint32_t>(it - s.summary.begin()) - 1;
    while (j != kNoParentEntry) {
      if (s.summary[j].end > f) return j;
      j = s.summary[j].parent;
    }
    return kNoParentEntry;
  };

  struct Frame {
    const SegmentNode* seg;
    uint32_t ctx;
  };
  std::vector<Frame> work{{log.root(), PathSummary::kRootNode}};
  std::vector<uint32_t> node_of;
  while (!work.empty()) {
    const auto [seg, ctx] = work.back();
    work.pop_back();
    summary->SetSegmentContext(seg->sid, ctx);

    // Summary node per nesting entry. Entries are in preorder, so every
    // parent is resolved before its children. Stale entries (pre-v4
    // snapshot restore) carry kNoEntryTag and map to kNoNode — harmless
    // unless a *live* record or splice point hangs off one, which the
    // checks below turn into a hard error.
    node_of.assign(seg->summary.size(), PathSummary::kNoNode);
    for (uint32_t i = 0; i < seg->summary.size(); ++i) {
      const NestingEntry& e = seg->summary[i];
      const uint32_t base =
          e.parent == kNoParentEntry ? ctx : node_of[e.parent];
      if (base == PathSummary::kNoNode || e.tid == kNoEntryTag) continue;
      node_of[i] = summary->Extend(base, e.tid);
    }

    for (TagId tid : seg->distinct_tags) {
      for (const LocalElement& el : index.GetElements(tid, seg->sid)) {
        auto it = std::lower_bound(
            seg->summary.begin(), seg->summary.end(), el.start,
            [](const NestingEntry& e, uint64_t t) { return e.start < t; });
        if (it == seg->summary.end() || it->start != el.start ||
            it->tid != tid) {
          return Status::Internal(
              "path summary build: element record without a matching "
              "nesting entry");
        }
        const uint32_t idx =
            static_cast<uint32_t>(it - seg->summary.begin());
        if (node_of[idx] == PathSummary::kNoNode) {
          return Status::Internal(
              "path summary build: live element on an unattributable "
              "nesting chain");
        }
        summary->AddElement(node_of[idx], seg->sid);
      }
    }

    for (const SegmentNode* c : seg->children) {
      const uint32_t entry = innermost(*seg, c->lp);
      uint32_t cctx = ctx;
      if (entry != kNoParentEntry) {
        cctx = node_of[entry];
        if (cctx == PathSummary::kNoNode) {
          return Status::Internal(
              "path summary build: splice point inside an unattributable "
              "nesting chain");
        }
      }
      work.push_back(Frame{c, cctx});
    }
  }
  return summary;
}

uint32_t LazyDatabase::SummaryContextOf(const SegmentNode& parent,
                                        uint64_t lp) {
  uint32_t node = summary_->SegmentContext(parent.sid);
  if (node == PathSummary::kNoNode) return PathSummary::kNoNode;
  for (TagId tid : parent.AncestorTagsAt(lp)) {
    if (tid == kNoEntryTag) return PathSummary::kNoNode;
    node = summary_->Extend(node, tid);
  }
  return node;
}

bool LazyDatabase::SummaryAddSegment(const SegmentNode& seg, uint32_t ctx) {
  if (ctx == PathSummary::kNoNode) return false;
  summary_->SetSegmentContext(seg.sid, ctx);
  std::vector<uint32_t> node_of(seg.summary.size(), PathSummary::kNoNode);
  for (uint32_t i = 0; i < seg.summary.size(); ++i) {
    const NestingEntry& e = seg.summary[i];
    const uint32_t base = e.parent == kNoParentEntry ? ctx : node_of[e.parent];
    // A freshly built nesting summary (insert / collapse) covers exactly
    // the live elements, every entry with a real tag — anything else
    // means the summary cannot be maintained.
    if (base == PathSummary::kNoNode || e.tid == kNoEntryTag) return false;
    node_of[i] = summary_->Extend(base, e.tid);
    summary_->AddElement(node_of[i], seg.sid);
  }
  return true;
}

uint32_t LazyDatabase::SummaryNodeOfElement(const SegmentNode& seg,
                                            uint64_t start) {
  const uint32_t ctx = summary_->SegmentContext(seg.sid);
  if (ctx == PathSummary::kNoNode) return PathSummary::kNoNode;
  auto it = std::lower_bound(
      seg.summary.begin(), seg.summary.end(), start,
      [](const NestingEntry& e, uint64_t t) { return e.start < t; });
  if (it == seg.summary.end() || it->start != start) {
    return PathSummary::kNoNode;
  }
  // Tag chain outermost-first: entry start offsets are unique within a
  // segment, so the exact-start entry IS the element's entry, and live
  // entries only have live ancestors.
  std::vector<TagId> tags;
  for (uint32_t j = static_cast<uint32_t>(it - seg.summary.begin());
       j != kNoParentEntry; j = seg.summary[j].parent) {
    if (seg.summary[j].tid == kNoEntryTag) return PathSummary::kNoNode;
    tags.push_back(seg.summary[j].tid);
  }
  uint32_t node = ctx;
  for (auto rit = tags.rbegin(); rit != tags.rend(); ++rit) {
    node = summary_->Extend(node, *rit);
  }
  return node;
}

Status LazyDatabase::EnsureCompactIndex() {
  if (!options_.query.use_compact_index) return Status::OK();
  if (compact_index_ != nullptr && compact_built_epoch_ == mutation_epoch_) {
    return Status::OK();
  }
  LAZYXML_METRIC_HISTOGRAM(build_hist, "compact.build_us");
  obs::ScopedLatency build_latency(build_hist);
  LAZYXML_ASSIGN_OR_RETURN(compact_index_, CompactElementIndex::Build(index_));
  compact_built_epoch_ = mutation_epoch_;
  LAZYXML_METRIC_GAUGE(raw_gauge, "index.frozen_raw_bytes");
  LAZYXML_METRIC_GAUGE(compact_gauge, "index.frozen_compact_bytes");
  raw_gauge.Set(static_cast<double>(index_.MemoryBytes()));
  compact_gauge.Set(static_cast<double>(compact_index_->MemoryBytes()));
  return Status::OK();
}

void LazyDatabase::AdoptCompactIndex(
    std::shared_ptr<const CompactElementIndex> compact) {
  compact_index_ = std::move(compact);
  compact_built_epoch_ = mutation_epoch_;
  if (compact_index_ != nullptr) {
    LAZYXML_METRIC_GAUGE(raw_gauge, "index.frozen_raw_bytes");
    LAZYXML_METRIC_GAUGE(compact_gauge, "index.frozen_compact_bytes");
    raw_gauge.Set(static_cast<double>(index_.MemoryBytes()));
    compact_gauge.Set(static_cast<double>(compact_index_->MemoryBytes()));
  }
}

Result<LazyJoinResult> LazyDatabase::JoinByName(
    std::string_view ancestor_tag, std::string_view descendant_tag,
    const LazyJoinOptions& options) {
  log_.Freeze();  // no-op in LD / when already clean
  LAZYXML_RETURN_NOT_OK(EnsureCompactIndex());
  auto a = dict_.Lookup(ancestor_tag);
  auto d = dict_.Lookup(descendant_tag);
  if (!a.ok() || !d.ok()) return LazyJoinResult{};  // unknown tag: empty
  const TagId atid = a.ValueOrDie();
  const TagId dtid = d.ValueOrDie();

  // Path-summary pruning. Consult-only: a stale summary yields nullptr
  // and the join simply runs unpruned — never rebuilt here, because this
  // path executes under ConcurrentLazyDatabase's *shared* lock (rebuilds
  // happen in Freeze / SetQueryOptions / restore, all exclusive).
  JoinPrune prune;
  if (const PathSummary* ps = path_summary()) {
    prune = ps->ComputeJoinPrune(atid, dtid, options.parent_child);
  }
  LazyJoinOptions jopts = options;
  if (prune.usable) {
    if (prune.provably_empty) {
      // Answered in O(summary): no tag list is scanned, no element is
      // fetched. The stats report what the unpruned join would have had
      // to consider.
      LazyJoinResult out;
      for (const TagListEntry& e : log_.tag_list().EntriesFor(atid)) {
        ++out.stats.segments_pruned;
        out.stats.elements_skipped += e.count;
      }
      for (const TagListEntry& e : log_.tag_list().EntriesFor(dtid)) {
        ++out.stats.segments_pruned;
        out.stats.elements_skipped += e.count;
      }
      LAZYXML_METRIC_COUNTER(pruned_joins, "query.joins_pruned_total");
      LAZYXML_METRIC_COUNTER(pruned_segs, "query.segments_pruned_total");
      LAZYXML_METRIC_COUNTER(skipped, "query.elements_skipped_total");
      pruned_joins.Increment();
      pruned_segs.Add(out.stats.segments_pruned);
      skipped.Add(out.stats.elements_skipped);
      return out;
    }
    jopts.ancestor_sid_filter = &prune.ancestor_sids;
    jopts.descendant_sid_filter = &prune.descendant_sids;
  }
  ParallelJoinOptions popts;
  popts.join = jopts;
  return ParallelLazyJoin(log_, index_, atid, dtid, popts,
                          query_pool_, scan_cache_.get(), mutation_epoch_,
                          options_.query.use_compact_index
                              ? compact_index()
                              : nullptr);
}

bool LazyDatabase::QueryNeedsExclusive() const {
  if (!log_.frozen() || !log_.tag_list().sorted()) return true;
  if (options_.query.use_compact_index &&
      (compact_index_ == nullptr ||
       compact_built_epoch_ != mutation_epoch_)) {
    return true;
  }
  if (options_.query.use_path_summary &&
      (summary_ == nullptr || summary_built_epoch_ != mutation_epoch_)) {
    return true;
  }
  return false;
}

Result<std::unique_ptr<SnapshotReader>> LazyDatabase::OpenReadView() {
  // No-ops when the state is already serviceable (the shared-lock fast
  // path of ConcurrentLazyDatabase::OpenView relies on exactly that).
  Freeze();
  if (!log_.frozen() || !log_.tag_list().sorted()) {
    return Status::Internal("cannot pin a view on an unserviceable log");
  }
  LAZYXML_METRIC_HISTOGRAM(pin_hist, "mvcc.pin_us");
  obs::ScopedLatency pin_latency(pin_hist);
  std::shared_ptr<const ReadSnapshot> snap = mvcc_.Pin(mutation_epoch_);
  if (snap == nullptr) {
    auto fresh = std::make_shared<ReadSnapshot>();
    fresh->epoch = mutation_epoch_;
    fresh->log = log_.Clone();
    fresh->dict = &dict_;
    if (const PathSummary* ps = path_summary()) {
      fresh->summary = std::make_unique<const PathSummary>(*ps);
    }
    if (compact_index() != nullptr) fresh->compact = compact_index_;
    snap = mvcc_.PinNew(std::move(fresh));
  }
  return std::make_unique<SnapshotReader>(&mvcc_, std::move(snap), &index_,
                                          scan_cache_.get(), query_pool_,
                                          options_.query);
}

LazyDatabaseStats LazyDatabase::Stats() const {
  LazyDatabaseStats s;
  s.num_segments = log_.num_segments();
  s.num_elements = index_.size();
  s.num_tags = dict_.size();
  s.super_document_length = log_.super_document_length();
  s.sb_tree_bytes = log_.SbTreeMemoryBytes();
  s.tag_list_bytes = log_.TagListMemoryBytes();
  s.element_index_bytes = index_.MemoryBytes();
  return s;
}

obs::MetricsSnapshot LazyDatabase::Metrics() const {
  return obs::MetricsRegistry::Global().Snapshot();
}

Status LazyDatabase::CheckInvariants() const {
  // The heavy lifting lives in the consistency scrubber (src/check/);
  // this facade method keeps the historical Status-based contract by
  // collapsing the graded report into OK-or-Corruption.
  auto report = check::CheckDatabase(*this);
  LAZYXML_RETURN_NOT_OK(report.status());
  return report.ValueOrDie().ToStatus();
}

}  // namespace lazyxml
