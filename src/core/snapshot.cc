#include "core/snapshot.h"

#include <map>

#include "common/file_io.h"
#include "common/serial.h"
#include "common/strings.h"

namespace lazyxml {

namespace {

constexpr char kMagic[] = "LZXMLSNP";
// v2 adds the sid counter after the mode byte (sid-exact restores, which
// WAL replay depends on); v1 files still load, deriving it as max(sid)+1.
// v3 appends an optional compact-index section (u8 flag + blob) after the
// tag-list entries; v1/v2 files still load and rebuild it on demand.
// v4 adds the element tag to every nesting-summary entry (the path
// summary attributes elements to root-to-tag paths through the summary
// chains); v1-v3 files still load, backfilling the tags from the
// segment's element records (entries with no surviving record are stale
// and get kNoEntryTag — they are never on a reachable ancestor chain).
constexpr uint32_t kVersion = 4;

void SerializeSegment(const SegmentNode& node, const ElementIndex& index,
                      ByteWriter* w) {
  w->PutU64(node.sid);
  w->PutU64(node.parent->sid);
  w->PutU64(node.gp);
  w->PutU64(node.l);
  w->PutU64(node.lp);
  w->PutU32(node.base_level);
  w->PutU64(node.gaps.size());
  for (const FrozenGap& g : node.gaps) {
    w->PutU64(g.begin);
    w->PutU64(g.end);
  }
  w->PutU32(static_cast<uint32_t>(node.distinct_tags.size()));
  for (TagId tid : node.distinct_tags) w->PutU32(tid);
  w->PutU64(node.summary.size());
  for (const NestingEntry& e : node.summary) {
    w->PutU64(e.start);
    w->PutU64(e.end);
    w->PutU32(e.parent);
    w->PutU32(e.level);
    w->PutU32(e.tid);
  }
  // Element records, grouped by tag.
  for (TagId tid : node.distinct_tags) {
    const auto elems = index.GetElements(tid, node.sid);
    w->PutU64(elems.size());
    for (const LocalElement& e : elems) {
      w->PutU64(e.start);
      w->PutU64(e.end);
      w->PutU32(e.level);
    }
  }
}

void SerializeSubtree(const SegmentNode& node, const ElementIndex& index,
                      ByteWriter* w) {
  SerializeSegment(node, index, w);
  for (const SegmentNode* c : node.children) {
    SerializeSubtree(*c, index, w);
  }
}

size_t CountSubtree(const SegmentNode& node) {
  size_t n = 1;
  for (const SegmentNode* c : node.children) n += CountSubtree(*c);
  return n;
}

}  // namespace

Result<std::string> SerializeDatabase(const LazyDatabase& db) {
  const UpdateLog& log = db.update_log();
  if (!log.frozen()) {
    return Status::InvalidArgument(
        "serialize requires a serviceable log; query or Freeze() first");
  }
  ByteWriter w;
  w.PutString(kMagic);
  w.PutU32(kVersion);
  w.PutU8(log.mode() == LogMode::kLazyDynamic ? 0 : 1);
  w.PutU64(log.next_sid());

  // Tag dictionary (dense ids, first-seen order).
  const TagDict& dict = db.tag_dict();
  w.PutU32(static_cast<uint32_t>(dict.size()));
  for (TagId t = 0; t < dict.size(); ++t) {
    w.PutString(dict.Name(t));
  }

  // ER-tree preorder (excluding the dummy root), with per-segment
  // element records.
  w.PutU64(log.super_document_length());
  size_t segments = 0;
  for (const SegmentNode* c : log.root()->children) {
    segments += CountSubtree(*c);
  }
  w.PutU64(segments);
  for (const SegmentNode* c : log.root()->children) {
    SerializeSubtree(*c, db.element_index(), &w);
  }

  // Tag-list entries.
  w.PutU64(log.tag_list().num_entries());
  log.tag_list().ForEachEntry([&](TagId tid, const TagListEntry& e) {
    w.PutU32(tid);
    w.PutU64(e.count);
    w.PutU32(static_cast<uint32_t>(e.path.size()));
    for (SegmentId sid : e.path) w.PutU64(sid);
    return true;
  });

  // Compact-index section: serialized only when one is built AND fresh
  // (compact_index() is epoch-gated), so a snapshot can never resurrect
  // a compact index that disagrees with the records above.
  const CompactElementIndex* compact = db.compact_index();
  w.PutU8(compact != nullptr ? 1 : 0);
  if (compact != nullptr) compact->SerializeTo(&w);
  return w.TakeBuffer();
}

Result<std::unique_ptr<LazyDatabase>> DeserializeDatabase(
    std::string_view data, const LazyDatabaseOptions& options) {
  ByteReader r(data);
  LAZYXML_ASSIGN_OR_RETURN(std::string magic, r.GetString());
  if (magic != kMagic) {
    return Status::Corruption("not a lazyxml snapshot (bad magic)");
  }
  LAZYXML_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
  if (version < 1 || version > kVersion) {
    return Status::NotSupported(
        StringPrintf("snapshot version %u not supported", version));
  }
  LAZYXML_ASSIGN_OR_RETURN(uint8_t mode, r.GetU8());
  if (mode > 1) return Status::Corruption("bad maintenance mode");
  uint64_t next_sid = 0;  // 0 = not stored (v1): derive as max(sid)+1
  if (version >= 2) {
    LAZYXML_ASSIGN_OR_RETURN(next_sid, r.GetU64());
  }

  LazyDatabaseOptions opts = options;
  opts.mode = mode == 0 ? LogMode::kLazyDynamic : LogMode::kLazyStatic;
  auto db = std::make_unique<LazyDatabase>(opts);
  UpdateLog& log = db->mutable_update_log();
  TagDict& dict = db->mutable_tag_dict();

  LAZYXML_ASSIGN_OR_RETURN(uint32_t num_tags, r.GetU32());
  for (uint32_t t = 0; t < num_tags; ++t) {
    LAZYXML_ASSIGN_OR_RETURN(std::string name, r.GetString());
    if (name.empty()) return Status::Corruption("empty tag name");
    if (dict.Intern(name) != t) {
      return Status::Corruption("tag ids are not dense in snapshot");
    }
  }

  LAZYXML_ASSIGN_OR_RETURN(uint64_t root_len, r.GetU64());
  log.RestoreRootLength(root_len);
  // Element records are collected across ALL segments and applied with
  // one bottom-up bulk load at the end — a restore fills a fresh index,
  // so there is nothing to merge with and the per-segment insert path
  // (descent per leaf run, node splits) is pure overhead.
  std::vector<ElementIndexRecord> all_records;
  LAZYXML_ASSIGN_OR_RETURN(uint64_t num_segments, r.GetU64());
  for (uint64_t s = 0; s < num_segments; ++s) {
    LAZYXML_ASSIGN_OR_RETURN(uint64_t sid, r.GetU64());
    LAZYXML_ASSIGN_OR_RETURN(uint64_t parent_sid, r.GetU64());
    LAZYXML_ASSIGN_OR_RETURN(uint64_t gp, r.GetU64());
    LAZYXML_ASSIGN_OR_RETURN(uint64_t l, r.GetU64());
    LAZYXML_ASSIGN_OR_RETURN(uint64_t lp, r.GetU64());
    LAZYXML_ASSIGN_OR_RETURN(uint32_t base_level, r.GetU32());
    LAZYXML_ASSIGN_OR_RETURN(
        SegmentNode * node,
        log.RestoreSegment(sid, parent_sid, gp, l, lp, base_level));
    LAZYXML_ASSIGN_OR_RETURN(uint64_t num_gaps, r.GetU64());
    for (uint64_t g = 0; g < num_gaps; ++g) {
      LAZYXML_ASSIGN_OR_RETURN(uint64_t begin, r.GetU64());
      LAZYXML_ASSIGN_OR_RETURN(uint64_t end, r.GetU64());
      if (begin >= end) return Status::Corruption("bad gap interval");
      node->AddGap(begin, end);
    }
    LAZYXML_ASSIGN_OR_RETURN(uint32_t num_dtags, r.GetU32());
    for (uint32_t t = 0; t < num_dtags; ++t) {
      LAZYXML_ASSIGN_OR_RETURN(uint32_t tid, r.GetU32());
      if (tid >= dict.size()) return Status::Corruption("bad tag id");
      node->distinct_tags.push_back(tid);
    }
    LAZYXML_ASSIGN_OR_RETURN(uint64_t num_summary, r.GetU64());
    if (num_summary > r.remaining() / 24) {
      return Status::Corruption("summary count exceeds snapshot size");
    }
    node->summary.reserve(num_summary);
    for (uint64_t i = 0; i < num_summary; ++i) {
      NestingEntry e;
      LAZYXML_ASSIGN_OR_RETURN(e.start, r.GetU64());
      LAZYXML_ASSIGN_OR_RETURN(e.end, r.GetU64());
      LAZYXML_ASSIGN_OR_RETURN(e.parent, r.GetU32());
      LAZYXML_ASSIGN_OR_RETURN(e.level, r.GetU32());
      if (version >= 4) {
        LAZYXML_ASSIGN_OR_RETURN(e.tid, r.GetU32());
        if (e.tid != kNoEntryTag && e.tid >= dict.size()) {
          return Status::Corruption("summary entry with unknown tag id");
        }
      }
      if (e.parent != kNoParentEntry && e.parent >= i) {
        return Status::Corruption("summary parent out of order");
      }
      node->summary.push_back(e);
    }
    const size_t seg_records_begin = all_records.size();
    for (TagId tid : node->distinct_tags) {
      LAZYXML_ASSIGN_OR_RETURN(uint64_t num_elems, r.GetU64());
      if (num_elems > r.remaining() / 20) {
        return Status::Corruption("element count exceeds snapshot size");
      }
      for (uint64_t i = 0; i < num_elems; ++i) {
        ElementIndexRecord rec;
        rec.tid = tid;
        rec.sid = sid;
        LAZYXML_ASSIGN_OR_RETURN(rec.start, r.GetU64());
        LAZYXML_ASSIGN_OR_RETURN(rec.end, r.GetU64());
        LAZYXML_ASSIGN_OR_RETURN(rec.level, r.GetU32());
        if (rec.start >= rec.end) {
          return Status::Corruption("bad element interval");
        }
        all_records.push_back(rec);
      }
    }
    if (version < 4 && !node->summary.empty()) {
      // Backfill the entry tags from the element records just read:
      // within one segment element starts are unique, so the start is
      // the join key. A start with no surviving record marks a stale
      // entry (its element was removed) — provably never on the
      // ancestor chain of a reachable offset, so kNoEntryTag is safe.
      std::map<uint64_t, TagId> tid_by_start;
      for (size_t i = seg_records_begin; i < all_records.size(); ++i) {
        tid_by_start[all_records[i].start] = all_records[i].tid;
      }
      for (NestingEntry& e : node->summary) {
        auto it = tid_by_start.find(e.start);
        e.tid = it != tid_by_start.end() ? it->second : kNoEntryTag;
      }
    }
  }
  LAZYXML_RETURN_NOT_OK(
      db->mutable_element_index().BuildFrom(std::move(all_records)));

  LAZYXML_ASSIGN_OR_RETURN(uint64_t num_entries, r.GetU64());
  for (uint64_t i = 0; i < num_entries; ++i) {
    LAZYXML_ASSIGN_OR_RETURN(uint32_t tid, r.GetU32());
    if (tid >= dict.size()) {
      return Status::Corruption("tag-list entry with unknown tag id");
    }
    LAZYXML_ASSIGN_OR_RETURN(uint64_t count, r.GetU64());
    LAZYXML_ASSIGN_OR_RETURN(uint32_t path_len, r.GetU32());
    if (path_len == 0) return Status::Corruption("empty tag-list path");
    if (static_cast<uint64_t>(path_len) > r.remaining() / 8) {
      return Status::Corruption("path length exceeds snapshot size");
    }
    std::vector<SegmentId> path;
    path.reserve(path_len);
    for (uint32_t p = 0; p < path_len; ++p) {
      LAZYXML_ASSIGN_OR_RETURN(uint64_t sid, r.GetU64());
      path.push_back(sid);
    }
    LAZYXML_RETURN_NOT_OK(
        log.tag_list()
            .AddEntry(tid, std::move(path), count, log)
            .WithContext("restoring tag-list"));
  }
  std::shared_ptr<const CompactElementIndex> compact;
  if (version >= 3) {
    LAZYXML_ASSIGN_OR_RETURN(uint8_t has_compact, r.GetU8());
    if (has_compact > 1) {
      return Status::Corruption("bad compact-index flag");
    }
    if (has_compact == 1) {
      LAZYXML_ASSIGN_OR_RETURN(compact,
                               CompactElementIndex::DeserializeFrom(&r));
    }
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after snapshot");
  }
  if (next_sid != 0) {
    LAZYXML_RETURN_NOT_OK(log.RestoreNextSid(next_sid));
  }
  // Adopt after the last mutable accessor touch (each bump stales the
  // adoption epoch) and before CheckInvariants, whose compact validator
  // then cross-proves the restored blocks against the restored B+-tree.
  if (compact != nullptr) db->AdoptCompactIndex(std::move(compact));
  // Rebuild the path summary against the restored state (the mutable
  // accessor bumps staled the one built at construction). Restore runs
  // with exclusive ownership, so the rebuild is race-free here.
  LAZYXML_RETURN_NOT_OK(db->EnsurePathSummary().WithContext(
      "rebuilding path summary after restore"));
  LAZYXML_RETURN_NOT_OK(
      db->CheckInvariants().WithContext("snapshot failed validation"));
  return db;
}

Status SaveSnapshot(const LazyDatabase& db, const std::string& path) {
  LAZYXML_ASSIGN_OR_RETURN(std::string blob, SerializeDatabase(db));
  return WriteFileAtomic(path, blob).WithContext("saving snapshot");
}

Result<std::unique_ptr<LazyDatabase>> LoadSnapshot(
    const std::string& path, const LazyDatabaseOptions& options) {
  // A missing file is NotFound (caller may treat it as "start empty"); a
  // file that reads but does not decode is Corruption via Deserialize.
  auto blob = ReadFileToString(path);
  if (!blob.ok()) return blob.status();
  return DeserializeDatabase(blob.ValueOrDie(), options);
}

}  // namespace lazyxml
