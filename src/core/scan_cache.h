// ElementScanCache: a sharded, read-mostly LRU cache of element scans.
//
// Lazy-Join and the materialization paths repeatedly read the same
// (tag, segment) element lists out of the element-index B+-tree — within
// one query (an A-scan is fetched for the in-segment join and again for
// the stack push; a self-join fetches the same list under both roles) and
// across queries (twig evaluation issues one Lazy-Join per branch over
// overlapping tags). This cache memoizes whole scans as immutable
// shared_ptr vectors so concurrent queries share them without copying.
//
// Keying and invalidation: entries are keyed by (tag, sid,
// mutation epoch). Every mutating facade operation bumps the database's
// epoch, so entries recorded under an older epoch can never be returned
// again — invalidation is O(1) and needs no enumeration of affected
// tags. Stale entries age out of the LRU ring; writers that want the
// memory back immediately (ConcurrentLazyDatabase does, on write-lock
// acquisition) call Invalidate() to purge eagerly.
//
// Concurrency: the cache is sharded by key hash; each shard has its own
// mutex, LRU list and byte budget, so concurrent readers on different
// shards never contend. Returned scans are shared_ptr<const ...>:
// eviction while a reader still holds the scan is safe.
//
// Scan-thrash resistance: a cyclic scan over a working set larger than
// the budget is LRU's worst case — every fill evicts, no fill is ever
// re-hit, and the churn makes the cache slower than no cache. Once a
// shard is at budget, Put therefore admits only one candidate in
// kAdmissionSample: residents survive long enough to be re-hit on the
// next pass and the churn cost drops by the sampling factor.

#ifndef LAZYXML_CORE_SCAN_CACHE_H_
#define LAZYXML_CORE_SCAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/compact_index.h"
#include "core/element_index.h"
#include "core/segment.h"
#include "xml/tag_dict.h"

namespace lazyxml {

/// An immutable, shareable element scan.
using ElementScan = std::shared_ptr<const std::vector<LocalElement>>;

/// Pinned-epoch override source for element scans (docs/MVCC.md). A join
/// running against a historical read view consults one of these before
/// the live element index: a (tag, segment) list that has been mutated
/// *after* the view's epoch is served from the retired pre-image the
/// writer captured, while untouched lists — element-index records are
/// write-once per segment and delete-only afterwards — fall through to
/// the live index, which still holds exactly their pinned-epoch state.
class ScanVersionSource {
 public:
  virtual ~ScanVersionSource() = default;
  /// The raw (tid, sid) scan as of the pinned epoch, or nullptr when the
  /// live element index is still exact for that epoch.
  virtual ElementScan ScanAt(TagId tid, SegmentId sid) const = 0;
};

/// Cache configuration.
struct ElementScanCacheOptions {
  /// Total byte budget across all shards (approximate; per-shard budgets
  /// are capacity_bytes / shards).
  size_t capacity_bytes = 8u << 20;
  /// Number of independent shards (rounded up to a power of two, >= 1).
  size_t shards = 8;
};

/// Point-in-time counters (monotonic except bytes/entries).
struct ElementScanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;     ///< LRU byte-budget evictions
  uint64_t invalidations = 0; ///< entries purged by Invalidate()
  uint64_t admission_rejects = 0; ///< fills skipped under eviction pressure
  size_t bytes_used = 0;
  size_t entries = 0;
};

/// What a cached scan holds; part of the cache key.
enum class ScanKind : uint32_t {
  kRaw = 0,       ///< the element-index list as stored
  kStraddle = 1,  ///< Fig. 9 push filter applied (child-splice straddlers)
};

/// The sharded scan cache.
class ElementScanCache {
 public:
  /// Under eviction pressure, 1 out of this many fill candidates is
  /// admitted (see Put).
  static constexpr uint64_t kAdmissionSample = 8;

  explicit ElementScanCache(ElementScanCacheOptions options = {});
  ElementScanCache(const ElementScanCache&) = delete;
  ElementScanCache& operator=(const ElementScanCache&) = delete;

  /// The scan cached for (tid, sid) at `epoch`, or nullptr. Thread-safe.
  ElementScan Get(TagId tid, SegmentId sid, uint64_t epoch,
                  ScanKind kind = ScanKind::kRaw);

  /// Caches `scan` for (tid, sid) at `epoch`, evicting LRU entries past
  /// the shard budget. A scan larger than a whole shard budget is not
  /// cached at all, and once a shard is at budget only one candidate in
  /// kAdmissionSample is admitted (scan-thrash resistance). Thread-safe.
  void Put(TagId tid, SegmentId sid, uint64_t epoch, ElementScan scan,
           ScanKind kind = ScanKind::kRaw);

  /// The *compressed* scan cached for (tid, sid) at `epoch`, or nullptr.
  /// Compressed and decoded entries live under distinct keys, so a mixed
  /// workload (A/B flag flips) can never alias them. Thread-safe.
  CompactScanHandle GetCompact(TagId tid, SegmentId sid, uint64_t epoch,
                               ScanKind kind = ScanKind::kRaw);

  /// Caches a compressed scan. The entry is charged its *actual* stored
  /// bytes — encoded blocks + skip headers (CompactTagScan::MemoryBytes)
  /// — not count * sizeof(LocalElement), so a fixed cache_bytes budget
  /// holds more records by exactly the compression ratio. Same admission
  /// and eviction rules as Put. Thread-safe.
  void PutCompact(TagId tid, SegmentId sid, uint64_t epoch,
                  CompactScanHandle scan, ScanKind kind = ScanKind::kRaw);

  /// Drops every entry (all epochs). Readers holding scans are unaffected.
  void Invalidate();

  /// Aggregated counters over all shards. Safe to call concurrently with
  /// fills/evictions/invalidations: each shard is snapshotted under its
  /// mutex (and the counter cells are additionally relaxed atomics), so a
  /// reader can never observe a torn multi-word update — at worst it sees
  /// a shard-consistent point between operations.
  ElementScanCacheStats Stats() const;

  /// Number of shards (options().shards rounded up to a power of two).
  size_t num_shards() const { return shards_.size(); }

  /// Counters of each shard individually, in shard order. Skew across
  /// shards (one hot shard taking most hits/evictions) means the key
  /// hash is funneling contention onto one mutex — bench_parallel_join
  /// surfaces these per shard to make that visible.
  std::vector<ElementScanCacheStats> PerShardStats() const;

  const ElementScanCacheOptions& options() const { return options_; }

 private:
  struct Key {
    TagId tid = 0;
    SegmentId sid = 0;
    uint64_t epoch = 0;
    uint32_t kind = 0;
    bool operator==(const Key& o) const {
      return tid == o.tid && sid == o.sid && epoch == o.epoch &&
             kind == o.kind;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = k.sid * 0x9e3779b97f4a7c15ull;
      h ^= (static_cast<uint64_t>(k.tid) << 32) ^ k.epoch;
      h += static_cast<uint64_t>(k.kind) << 17;
      h *= 0xff51afd7ed558ccdull;
      return static_cast<size_t>(h ^ (h >> 33));
    }
  };
  struct Entry {
    Key key;
    ElementScan scan;            ///< decoded representation (or null)
    CompactScanHandle compact;   ///< compressed representation (or null)
    size_t bytes = 0;            ///< actual stored footprint of the above
  };

  /// Bit folded into Key::kind so compressed entries can never be
  /// returned to a decoded Get (and vice versa).
  static constexpr uint32_t kCompactKindBit = 0x100;
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map;
    size_t bytes = 0;
    // Counters are written under `mu` but stored as relaxed atomics so a
    // stats reader can never tear a cell even if a future caller reads
    // them without the lock (Stats()/PerShardStats() still lock, which
    // also keeps bytes/entries consistent with the counters).
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> insertions{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> invalidations{0};
    std::atomic<uint64_t> admission_rejects{0};
    uint64_t admission_tick = 0;
  };

  Shard& ShardFor(const Key& k) {
    return *shards_[KeyHash{}(k) & shard_mask_];
  }

  /// Shared fill path of Put/PutCompact: admission sampling, LRU insert,
  /// budget eviction. `entry.bytes` must already hold the entry's actual
  /// stored footprint.
  void PutEntry(Entry entry);

  ElementScanCacheOptions options_;
  size_t shard_mask_ = 0;
  size_t per_shard_budget_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Approximate heap footprint of one cached scan (for budget accounting).
inline size_t ElementScanBytes(const std::vector<LocalElement>& scan) {
  return sizeof(std::vector<LocalElement>) +
         scan.capacity() * sizeof(LocalElement);
}

}  // namespace lazyxml

#endif  // LAZYXML_CORE_SCAN_CACHE_H_
