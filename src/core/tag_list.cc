#include "core/tag_list.h"

#include <algorithm>

#include "common/strings.h"

namespace lazyxml {

std::vector<TagListEntry>& TagList::ListFor(TagId tid) {
  if (tid >= lists_.size()) lists_.resize(tid + 1);
  return lists_[tid];
}

Status TagList::AddEntry(TagId tid, std::vector<SegmentId> path,
                         uint64_t count, const SegmentGpResolver& resolver) {
  if (path.empty()) {
    return Status::InvalidArgument("tag-list entry with empty path");
  }
  if (count == 0) {
    return Status::InvalidArgument("tag-list entry with zero count");
  }
  if (!resolver.SegmentExists(path.back())) {
    return Status::NotFound("tag-list entry for a nonexistent segment");
  }
  auto& list = ListFor(tid);
  TagListEntry entry{std::move(path), count};
  if (!keep_sorted_) {
    list.push_back(std::move(entry));
    frozen_clean_ = false;
    return Status::OK();
  }
  const uint64_t gp = resolver.GlobalPositionOf(entry.sid());
  auto it = std::lower_bound(
      list.begin(), list.end(), gp,
      [&resolver](const TagListEntry& e, uint64_t target) {
        return resolver.GlobalPositionOf(e.sid()) < target;
      });
  if (it != list.end() && it->sid() == entry.sid()) {
    return Status::AlreadyExists(
        StringPrintf("tag %u already has an entry for segment %llu", tid,
                     static_cast<unsigned long long>(entry.sid())));
  }
  list.insert(it, std::move(entry));
  return Status::OK();
}

Status TagList::RemoveOccurrences(TagId tid, SegmentId sid, uint64_t removed,
                                  const SegmentGpResolver& resolver) {
  if (tid >= lists_.size()) {
    return Status::NotFound("tag has no list");
  }
  if (!resolver.SegmentExists(sid)) {
    return Status::NotFound("segment does not exist");
  }
  auto& list = lists_[tid];
  auto it = list.end();
  if (sorted()) {
    const uint64_t gp = resolver.GlobalPositionOf(sid);
    it = std::lower_bound(
        list.begin(), list.end(), gp,
        [&resolver](const TagListEntry& e, uint64_t target) {
          return resolver.GlobalPositionOf(e.sid()) < target;
        });
    if (it != list.end() && it->sid() != sid) it = list.end();
  } else {
    it = std::find_if(list.begin(), list.end(),
                      [sid](const TagListEntry& e) { return e.sid() == sid; });
  }
  if (it == list.end()) {
    return Status::NotFound(StringPrintf(
        "no tag-list entry for tag %u in segment %llu", tid,
        static_cast<unsigned long long>(sid)));
  }
  if (it->count < removed) {
    return Status::InvalidArgument("removing more occurrences than tracked");
  }
  it->count -= removed;
  if (it->count == 0) list.erase(it);
  return Status::OK();
}

void TagList::DropSegment(SegmentId sid) {
  for (auto& list : lists_) {
    list.erase(std::remove_if(
                   list.begin(), list.end(),
                   [sid](const TagListEntry& e) { return e.sid() == sid; }),
               list.end());
  }
}

std::span<const TagListEntry> TagList::EntriesFor(TagId tid) const {
  if (tid >= lists_.size()) return {};
  return lists_[tid];
}

void TagList::Freeze(const SegmentGpResolver& resolver) {
  if (keep_sorted_ || frozen_clean_) return;
  for (auto& list : lists_) {
    std::sort(list.begin(), list.end(),
              [&resolver](const TagListEntry& a, const TagListEntry& b) {
                return resolver.GlobalPositionOf(a.sid()) <
                       resolver.GlobalPositionOf(b.sid());
              });
  }
  frozen_clean_ = true;
}

void TagList::ForEachEntry(
    const std::function<bool(TagId, const TagListEntry&)>& fn) const {
  for (TagId tid = 0; tid < lists_.size(); ++tid) {
    for (const TagListEntry& e : lists_[tid]) {
      if (!fn(tid, e)) return;
    }
  }
}

size_t TagList::num_tags() const {
  size_t n = 0;
  for (const auto& list : lists_) {
    if (!list.empty()) ++n;
  }
  return n;
}

size_t TagList::num_entries() const {
  size_t n = 0;
  for (const auto& list : lists_) n += list.size();
  return n;
}

size_t TagList::MemoryBytes() const {
  size_t bytes = lists_.capacity() * sizeof(std::vector<TagListEntry>);
  for (const auto& list : lists_) {
    bytes += list.capacity() * sizeof(TagListEntry);
    for (const TagListEntry& e : list) {
      bytes += e.path.capacity() * sizeof(SegmentId);
    }
  }
  return bytes;
}

void TagList::Clear() {
  lists_.clear();
  frozen_clean_ = false;
}

}  // namespace lazyxml
