#include "core/twig_query.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "common/strings.h"
#include "xml/scanner.h"

namespace lazyxml {

namespace {

struct RefHash {
  size_t operator()(const LazyElementRef& r) const {
    return std::hash<uint64_t>()(r.sid * 0x9e3779b97f4a7c15ull ^ r.start);
  }
};

using RefSet = std::unordered_set<LazyElementRef, RefHash>;

// ---- Parsing --------------------------------------------------------------

struct Cursor {
  std::string_view s;
  size_t i = 0;

  bool AtEnd() const { return i >= s.size(); }
  char Peek() const { return s[i]; }
};

Result<std::string> ParseTag(Cursor* c) {
  if (c->AtEnd() || !IsNameStartChar(c->Peek())) {
    return Status::InvalidArgument(
        StringPrintf("expected tag name at offset %zu", c->i));
  }
  const size_t begin = c->i;
  while (!c->AtEnd() && IsNameChar(c->Peek())) ++c->i;
  return std::string(c->s.substr(begin, c->i - begin));
}

// Parses an axis ('//' or '/'); `required` controls whether absence is an
// error. Returns descendant_axis.
Result<bool> ParseAxis(Cursor* c, bool* present) {
  *present = false;
  if (c->AtEnd() || c->Peek() != '/') return true;
  *present = true;
  ++c->i;
  if (!c->AtEnd() && c->Peek() == '/') {
    ++c->i;
    return true;
  }
  return false;
}

Result<std::unique_ptr<TwigNode>> ParseRelPath(Cursor* c, int depth);

// step := tag predicate*
Result<std::unique_ptr<TwigNode>> ParseStep(Cursor* c, int depth) {
  if (depth > 32) {
    return Status::InvalidArgument("twig nesting too deep");
  }
  auto node = std::make_unique<TwigNode>();
  LAZYXML_ASSIGN_OR_RETURN(node->tag, ParseTag(c));
  while (!c->AtEnd() && c->Peek() == '[') {
    ++c->i;
    LAZYXML_ASSIGN_OR_RETURN(auto pred, ParseRelPath(c, depth + 1));
    if (c->AtEnd() || c->Peek() != ']') {
      return Status::InvalidArgument("unterminated predicate (missing ']')");
    }
    ++c->i;
    node->children.push_back(std::move(pred));
    node->on_main_path.push_back(0);
  }
  return node;
}

// relpath := axis? step (axis step)*
Result<std::unique_ptr<TwigNode>> ParseRelPath(Cursor* c, int depth) {
  bool present = false;
  LAZYXML_ASSIGN_OR_RETURN(bool axis, ParseAxis(c, &present));
  LAZYXML_ASSIGN_OR_RETURN(auto head, ParseStep(c, depth));
  head->descendant_axis = axis;
  TwigNode* tail = head.get();
  for (;;) {
    bool more = false;
    LAZYXML_ASSIGN_OR_RETURN(bool next_axis, ParseAxis(c, &more));
    if (!more) break;
    LAZYXML_ASSIGN_OR_RETURN(auto step, ParseStep(c, depth));
    step->descendant_axis = next_axis;
    TwigNode* next = step.get();
    tail->children.push_back(std::move(step));
    tail->on_main_path.push_back(1);
    tail = next;
  }
  return head;
}

// ---- Evaluation -----------------------------------------------------------

class TwigEvaluator {
 public:
  TwigEvaluator(QueryFacade* db, const LazyJoinOptions& options)
      : db_(db), options_(options) {}

  Result<TwigQueryResult> Run(const TwigNode& root) {
    TwigQueryResult out;
    LAZYXML_ASSIGN_OR_RETURN(RefSet root_set, MatchSet(root));
    // Top-down refinement along the main path.
    const TwigNode* node = &root;
    RefSet frontier = std::move(root_set);
    for (;;) {
      const TwigNode* next = nullptr;
      for (size_t i = 0; i < node->children.size(); ++i) {
        if (node->on_main_path[i]) {
          next = node->children[i].get();
          break;
        }
      }
      if (next == nullptr) break;
      LAZYXML_ASSIGN_OR_RETURN(const JoinCacheEntry* join,
                               JoinFor(node->tag, next->tag,
                                       next->descendant_axis));
      LAZYXML_ASSIGN_OR_RETURN(RefSet next_set, MatchSet(*next));
      RefSet refined;
      for (const LazyJoinPair& p : join->pairs) {
        const LazyElementRef anc{p.ancestor_sid, p.ancestor_start};
        const LazyElementRef desc{p.descendant_sid, p.descendant_start};
        if (frontier.count(anc) > 0 && next_set.count(desc) > 0) {
          refined.insert(desc);
        }
      }
      frontier = std::move(refined);
      node = next;
      if (frontier.empty()) break;
    }
    out.elements.assign(frontier.begin(), frontier.end());
    std::sort(out.elements.begin(), out.elements.end());
    out.intermediate_pairs = pairs_;
    out.joins = joins_;
    return out;
  }

 private:
  struct JoinCacheEntry {
    std::vector<LazyJoinPair> pairs;
  };

  // All elements of `tag` as a RefSet.
  Result<RefSet> AllOf(const std::string& tag) {
    RefSet out;
    db_->Freeze();
    auto tid = db_->tag_dict().Lookup(tag);
    if (!tid.ok()) return out;
    for (const TagListEntry& e :
         db_->update_log().tag_list().EntriesFor(tid.ValueOrDie())) {
      // Through the shared scan cache: twig branches over overlapping
      // tags re-read the same scans query after query.
      ElementScan scan = db_->GetScan(tid.ValueOrDie(), e.sid());
      for (const LocalElement& el : *scan) {
        out.insert(LazyElementRef{e.sid(), el.start});
      }
    }
    return out;
  }

  Result<const JoinCacheEntry*> JoinFor(const std::string& anc,
                                        const std::string& desc,
                                        bool descendant_axis) {
    auto key = std::make_tuple(anc, desc, descendant_axis);
    auto it = join_cache_.find(key);
    if (it == join_cache_.end()) {
      LazyJoinOptions jopts = options_;
      jopts.parent_child = !descendant_axis;
      LAZYXML_ASSIGN_OR_RETURN(LazyJoinResult r,
                               db_->JoinByName(anc, desc, jopts));
      pairs_ += r.pairs.size();
      ++joins_;
      it = join_cache_
               .emplace(std::move(key), JoinCacheEntry{std::move(r.pairs)})
               .first;
    }
    return &it->second;
  }

  // Bottom-up match set: elements of node.tag satisfying every branch.
  Result<RefSet> MatchSet(const TwigNode& node) {
    LAZYXML_ASSIGN_OR_RETURN(RefSet set, AllOf(node.tag));
    for (size_t i = 0; i < node.children.size(); ++i) {
      if (set.empty()) break;
      const TwigNode& child = *node.children[i];
      LAZYXML_ASSIGN_OR_RETURN(RefSet child_set, MatchSet(child));
      LAZYXML_ASSIGN_OR_RETURN(
          const JoinCacheEntry* join,
          JoinFor(node.tag, child.tag, child.descendant_axis));
      RefSet kept;
      for (const LazyJoinPair& p : join->pairs) {
        const LazyElementRef anc{p.ancestor_sid, p.ancestor_start};
        const LazyElementRef desc{p.descendant_sid, p.descendant_start};
        if (child_set.count(desc) > 0 && set.count(anc) > 0) {
          kept.insert(anc);
        }
      }
      set = std::move(kept);
    }
    return set;
  }

  QueryFacade* db_;
  LazyJoinOptions options_;
  std::map<std::tuple<std::string, std::string, bool>, JoinCacheEntry>
      join_cache_;
  uint64_t pairs_ = 0;
  uint64_t joins_ = 0;
};

}  // namespace

size_t TwigNode::CountNodes() const {
  size_t n = 1;
  for (const auto& c : children) n += c->CountNodes();
  return n;
}

Result<std::unique_ptr<TwigNode>> ParseTwigExpression(std::string_view expr) {
  Cursor c{expr, 0};
  LAZYXML_ASSIGN_OR_RETURN(auto root, ParseRelPath(&c, 0));
  if (!c.AtEnd()) {
    return Status::InvalidArgument(
        StringPrintf("trailing characters at offset %zu in twig", c.i));
  }
  return root;
}

Result<TwigQueryResult> EvaluateTwig(QueryFacade* db, const TwigNode& root,
                                     const LazyJoinOptions& options) {
  if (db == nullptr) {
    return Status::InvalidArgument("EvaluateTwig: null database");
  }
  TwigEvaluator eval(db, options);
  return eval.Run(root);
}

Result<TwigQueryResult> EvaluateTwig(QueryFacade* db, std::string_view expr,
                                     const LazyJoinOptions& options) {
  LAZYXML_ASSIGN_OR_RETURN(auto root, ParseTwigExpression(expr));
  return EvaluateTwig(db, *root, options);
}

}  // namespace lazyxml
