#include "core/compact_index.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/strings.h"
#include "obs/metrics.h"

namespace lazyxml {

namespace compactenc {

void PutVarint(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

bool GetVarintScalar(const uint8_t** p, const uint8_t* end, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  const uint8_t* cur = *p;
  while (cur < end && shift < 64) {
    const uint8_t byte = *cur++;
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      // The 10th byte may only carry the top bit of a uint64.
      if (shift == 63 && byte > 1) return false;
      *p = cur;
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;  // truncated, or longer than 10 bytes
}

bool GetVarint(const uint8_t** p, const uint8_t* end, uint64_t* v) {
  const uint8_t* cur = *p;
  // Single-byte encodings dominate delta/extent/level streams; answer
  // them with one load before any SWAR setup.
  if (cur < end && *cur < 0x80) {
    *v = *cur;
    *p = cur + 1;
    return true;
  }
  if constexpr (std::endian::native == std::endian::little) {
    if (end - cur >= 8) {
      uint64_t word;
      std::memcpy(&word, cur, 8);
      const uint64_t stops = ~word & 0x8080808080808080ull;
      if (stops != 0) {
        // Terminator within the loaded word: n encoded bytes (1..8), so
        // the value fits in 56 bits and no length/top-bit checks apply.
        const int n = std::countr_zero(stops) / 8 + 1;
        if (n < 8) word &= (uint64_t{1} << (8 * n)) - 1;
        // Fold the per-byte 7-bit groups pairwise: 8x7 -> 4x14 -> 2x28
        // -> 1x56 bits.
        uint64_t x = word & 0x7f7f7f7f7f7f7f7full;
        x = (x & 0x007f007f007f007full) | ((x & 0x7f007f007f007f00ull) >> 1);
        x = (x & 0x00003fff00003fffull) | ((x & 0x3fff00003fff0000ull) >> 2);
        x = (x & 0x000000000fffffffull) | ((x & 0x0fffffff00000000ull) >> 4);
        *p = cur + n;
        *v = x;
        return true;
      }
      // 9-10-byte encodings (values above 2^56) are rare: scalar.
    }
  }
  return GetVarintScalar(p, end, v);
}

}  // namespace compactenc

namespace {

using compactenc::GetVarint;
using compactenc::PutVarint;
using compactenc::ZigzagDecode;
using compactenc::ZigzagEncode;

}  // namespace

Result<CompactTagScan> CompactTagScan::Encode(
    std::span<const LocalElement> elems) {
  CompactTagScan scan;
  scan.count_ = elems.size();
  if (elems.empty()) return scan;

  CompactBlockHeader hdr;
  size_t block_records = 0;
  uint64_t prev_start = 0;
  auto open_block = [&](const LocalElement& e) {
    hdr = CompactBlockHeader{};
    hdr.first_start = e.start;
    hdr.byte_offset = scan.bytes_.size();
    block_records = 0;
  };
  auto close_block = [&]() {
    hdr.count = static_cast<uint32_t>(block_records);
    hdr.byte_len =
        static_cast<uint32_t>(scan.bytes_.size() - hdr.byte_offset);
    scan.headers_.push_back(hdr);
  };

  for (size_t i = 0; i < elems.size(); ++i) {
    const LocalElement& e = elems[i];
    if (e.end <= e.start) {
      return Status::InvalidArgument(StringPrintf(
          "compact encode: empty or inverted interval [%llu, %llu)",
          static_cast<unsigned long long>(e.start),
          static_cast<unsigned long long>(e.end)));
    }
    if (i > 0 && e.start <= prev_start) {
      return Status::InvalidArgument(
          "compact encode: starts not strictly ascending");
    }
    const bool block_full =
        i > 0 && (block_records >= kCompactBlockMaxRecords ||
                  scan.bytes_.size() - hdr.byte_offset >=
                      kCompactBlockTargetBytes);
    if (i == 0 || block_full) {
      if (i > 0) close_block();
      open_block(e);
    } else {
      PutVarint(&scan.bytes_, e.start - prev_start);
    }
    PutVarint(&scan.bytes_, ZigzagEncode(static_cast<int64_t>(e.end) -
                                         static_cast<int64_t>(e.start)));
    PutVarint(&scan.bytes_, e.level);
    hdr.max_end = std::max(hdr.max_end, e.end);
    prev_start = e.start;
    ++block_records;
  }
  close_block();
  scan.bytes_.shrink_to_fit();
  scan.headers_.shrink_to_fit();
  return scan;
}

Status CompactTagScan::DecodeBlock(size_t b, LocalElement* out) const {
  if (b >= headers_.size()) {
    return Status::Corruption("compact block index out of range");
  }
  const CompactBlockHeader& hdr = headers_[b];
  if (hdr.count == 0 || hdr.count > kCompactBlockMaxRecords) {
    return Status::Corruption(StringPrintf(
        "compact block %zu declares %u records (cap %zu)", b, hdr.count,
        kCompactBlockMaxRecords));
  }
  if (hdr.byte_offset > bytes_.size() ||
      hdr.byte_len > bytes_.size() - hdr.byte_offset) {
    return Status::Corruption("compact block bytes out of range");
  }
  const uint8_t* p = bytes_.data() + hdr.byte_offset;
  const uint8_t* end = p + hdr.byte_len;
  uint64_t start = hdr.first_start;
  uint64_t max_end = 0;
  for (uint32_t i = 0; i < hdr.count; ++i) {
    if (i > 0) {
      uint64_t delta = 0;
      if (!GetVarint(&p, end, &delta) || delta == 0) {
        return Status::Corruption("compact block: bad start delta");
      }
      if (start > UINT64_MAX - delta) {
        return Status::Corruption("compact block: start overflow");
      }
      start += delta;
    }
    uint64_t zz_extent = 0;
    uint64_t level = 0;
    if (!GetVarint(&p, end, &zz_extent) || !GetVarint(&p, end, &level)) {
      return Status::Corruption("compact block: truncated record");
    }
    const int64_t extent = ZigzagDecode(zz_extent);
    if (extent <= 0 ||
        static_cast<uint64_t>(extent) > UINT64_MAX - start) {
      return Status::Corruption("compact block: non-positive extent");
    }
    if (level > UINT32_MAX) {
      return Status::Corruption("compact block: level exceeds uint32");
    }
    out[i].start = start;
    out[i].end = start + static_cast<uint64_t>(extent);
    out[i].level = static_cast<uint32_t>(level);
    max_end = std::max(max_end, out[i].end);
  }
  if (p != end) {
    return Status::Corruption("compact block: trailing bytes");
  }
  if (max_end != hdr.max_end) {
    return Status::Corruption("compact block: max_end header mismatch");
  }
  return Status::OK();
}

Status CompactTagScan::DecodeAll(std::vector<LocalElement>* out) const {
  out->reserve(out->size() + count_);
  LocalElement buf[kCompactBlockMaxRecords];
  for (size_t b = 0; b < headers_.size(); ++b) {
    LAZYXML_RETURN_NOT_OK(DecodeBlock(b, buf));
    out->insert(out->end(), buf, buf + headers_[b].count);
  }
  return Status::OK();
}

Status CompactTagScan::Validate() const {
  uint64_t total = 0;
  uint64_t prev_last_start = 0;
  LocalElement buf[kCompactBlockMaxRecords];
  for (size_t b = 0; b < headers_.size(); ++b) {
    const CompactBlockHeader& hdr = headers_[b];
    LAZYXML_RETURN_NOT_OK(DecodeBlock(b, buf));
    if (hdr.first_start != buf[0].start) {
      return Status::Corruption("compact block: first_start mismatch");
    }
    if (b > 0 && hdr.first_start <= prev_last_start) {
      return Status::Corruption(
          "compact blocks: starts not ascending across blocks");
    }
    if (b > 0 &&
        hdr.byte_offset != headers_[b - 1].byte_offset +
                               headers_[b - 1].byte_len) {
      return Status::Corruption("compact blocks: byte ranges not contiguous");
    }
    prev_last_start = buf[hdr.count - 1].start;
    total += hdr.count;
  }
  if (total != count_) {
    return Status::Corruption("compact scan: record count mismatch");
  }
  const size_t stream_end =
      headers_.empty() ? 0
                       : headers_.back().byte_offset + headers_.back().byte_len;
  if (stream_end != bytes_.size()) {
    return Status::Corruption("compact scan: trailing stream bytes");
  }
  return Status::OK();
}

void CompactTagScan::SerializeTo(ByteWriter* w) const {
  w->PutU64(count_);
  w->PutU64(headers_.size());
  for (const CompactBlockHeader& h : headers_) {
    w->PutU64(h.first_start);
    w->PutU64(h.max_end);
    w->PutU32(h.count);
    w->PutU32(h.byte_len);
  }
  w->PutString(std::string_view(reinterpret_cast<const char*>(bytes_.data()),
                                bytes_.size()));
}

Result<CompactTagScan> CompactTagScan::DeserializeFrom(ByteReader* r) {
  CompactTagScan scan;
  LAZYXML_ASSIGN_OR_RETURN(scan.count_, r->GetU64());
  LAZYXML_ASSIGN_OR_RETURN(uint64_t num_blocks, r->GetU64());
  // Every block holds at least one record encoded in >= 2 bytes, so a
  // count beyond remaining() is corrupt without allocating anything.
  if (num_blocks > r->remaining() / 2 || scan.count_ < num_blocks ||
      scan.count_ > num_blocks * kCompactBlockMaxRecords) {
    return Status::Corruption("compact scan: implausible block count");
  }
  scan.headers_.reserve(num_blocks);
  uint64_t offset = 0;
  for (uint64_t b = 0; b < num_blocks; ++b) {
    CompactBlockHeader h;
    LAZYXML_ASSIGN_OR_RETURN(h.first_start, r->GetU64());
    LAZYXML_ASSIGN_OR_RETURN(h.max_end, r->GetU64());
    LAZYXML_ASSIGN_OR_RETURN(h.count, r->GetU32());
    LAZYXML_ASSIGN_OR_RETURN(h.byte_len, r->GetU32());
    h.byte_offset = offset;
    if (offset > UINT64_MAX - h.byte_len) {
      return Status::Corruption("compact scan: byte offset overflow");
    }
    offset += h.byte_len;
    scan.headers_.push_back(h);
  }
  LAZYXML_ASSIGN_OR_RETURN(std::string bytes, r->GetString());
  if (bytes.size() != offset) {
    return Status::Corruption("compact scan: stream length mismatch");
  }
  scan.bytes_.assign(bytes.begin(), bytes.end());
  LAZYXML_RETURN_NOT_OK(scan.Validate());
  return scan;
}

Result<std::shared_ptr<const CompactElementIndex>> CompactElementIndex::Build(
    const ElementIndex& index) {
  auto compact = std::shared_ptr<CompactElementIndex>(
      new CompactElementIndex());
  // ForEachRecord yields (tid, sid, start) key order: lists arrive whole,
  // already start-sorted. Encode each run as it completes.
  std::vector<LocalElement> run;
  TagId run_tid = 0;
  SegmentId run_sid = 0;
  Status status;
  auto flush_run = [&]() {
    if (run.empty()) return;
    auto encoded = CompactTagScan::Encode(run);
    if (!encoded.ok()) {
      status = encoded.status();
      return;
    }
    compact->lists_.emplace(
        std::make_pair(run_tid, run_sid),
        std::make_shared<const CompactTagScan>(
            std::move(encoded).ValueOrDie()));
    compact->total_records_ += run.size();
    run.clear();
  };
  index.ForEachRecord([&](const ElementIndexRecord& rec) {
    if (!run.empty() && (rec.tid != run_tid || rec.sid != run_sid)) {
      flush_run();
      if (!status.ok()) return false;
    }
    run_tid = rec.tid;
    run_sid = rec.sid;
    run.push_back(LocalElement{rec.start, rec.end, rec.level});
    return true;
  });
  LAZYXML_RETURN_NOT_OK(status);
  flush_run();
  LAZYXML_RETURN_NOT_OK(status);
  return std::shared_ptr<const CompactElementIndex>(std::move(compact));
}

size_t CompactElementIndex::MemoryBytes() const {
  size_t bytes = sizeof(CompactElementIndex);
  for (const auto& [key, scan] : lists_) {
    // Map node: key/value pair plus the red-black bookkeeping (~3 ptrs +
    // color, rounded to 4 words).
    bytes += sizeof(key) + sizeof(scan) + 4 * sizeof(void*);
    bytes += scan->MemoryBytes();
  }
  return bytes;
}

void CompactElementIndex::ForEachList(
    const std::function<bool(TagId, SegmentId, const CompactTagScan&)>& fn)
    const {
  for (const auto& [key, scan] : lists_) {
    if (!fn(key.first, key.second, *scan)) return;
  }
}

void CompactElementIndex::SerializeTo(ByteWriter* w) const {
  w->PutU64(lists_.size());
  for (const auto& [key, scan] : lists_) {
    w->PutU32(key.first);
    w->PutU64(key.second);
    scan->SerializeTo(w);
  }
}

Result<std::shared_ptr<const CompactElementIndex>>
CompactElementIndex::DeserializeFrom(ByteReader* r) {
  auto compact = std::shared_ptr<CompactElementIndex>(
      new CompactElementIndex());
  LAZYXML_ASSIGN_OR_RETURN(uint64_t num_lists, r->GetU64());
  // Each serialized list is at least 2 u64s + a length-prefixed string.
  if (num_lists > r->remaining() / 16) {
    return Status::Corruption("compact index: implausible list count");
  }
  std::pair<TagId, SegmentId> prev_key{};
  for (uint64_t i = 0; i < num_lists; ++i) {
    LAZYXML_ASSIGN_OR_RETURN(uint32_t tid, r->GetU32());
    LAZYXML_ASSIGN_OR_RETURN(uint64_t sid, r->GetU64());
    const std::pair<TagId, SegmentId> key{tid, sid};
    if (i > 0 && key <= prev_key) {
      return Status::Corruption("compact index: list keys not ascending");
    }
    prev_key = key;
    LAZYXML_ASSIGN_OR_RETURN(CompactTagScan scan,
                             CompactTagScan::DeserializeFrom(r));
    if (scan.count() == 0) {
      return Status::Corruption("compact index: empty list serialized");
    }
    compact->total_records_ += scan.count();
    compact->lists_.emplace(
        key, std::make_shared<const CompactTagScan>(std::move(scan)));
  }
  return std::shared_ptr<const CompactElementIndex>(std::move(compact));
}

}  // namespace lazyxml
