// Twig (branching) pattern queries over the lazy store.
//
// Path queries cover a//b/c chains; real XML queries branch:
// person[profile//interest]/watches//watch asks for watch elements under
// persons that *also* have an interest. This module parses a bracketed
// twig syntax and evaluates the pattern bottom-up with semi-joins: each
// query node's match set is its tag's elements filtered by the existence
// of a matching (child/descendant) partner per branch — every existence
// test is one Lazy-Join, so the whole twig runs on lazy labels without
// materializing global positions.
//
// Syntax:   step        := tag predicate*
//           predicate   := '[' relpath ']'
//           relpath     := ('//' | '/')? step (('//' | '/') step)*
//           twig        := relpath
// The *last* step of the outermost path is the output node. Example:
//   person[profile//interest][address/city]//watch
// returns watch elements under matching persons.

#ifndef LAZYXML_CORE_TWIG_QUERY_H_
#define LAZYXML_CORE_TWIG_QUERY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/query_facade.h"
#include "core/path_query.h"

namespace lazyxml {

/// One node of a parsed twig pattern.
struct TwigNode {
  std::string tag;
  /// Axis leading into this node from its parent node (ignored at root).
  bool descendant_axis = true;
  /// Predicate branches plus (for inner main-path nodes) the next main
  /// step; the *output* node is the main path's last step.
  std::vector<std::unique_ptr<TwigNode>> children;
  /// True on the main-path child (at most one per node).
  std::vector<uint8_t> on_main_path;

  size_t CountNodes() const;
};

/// Parses the twig syntax above.
Result<std::unique_ptr<TwigNode>> ParseTwigExpression(std::string_view expr);

/// Twig evaluation result.
struct TwigQueryResult {
  /// Output-node elements on at least one full match, sorted.
  std::vector<LazyElementRef> elements;
  /// Lazy-Join pairs generated across all semi-joins (work measure).
  uint64_t intermediate_pairs = 0;
  /// Semi-joins executed.
  uint64_t joins = 0;
};

/// Evaluates a parsed twig over `db`.
Result<TwigQueryResult> EvaluateTwig(QueryFacade* db, const TwigNode& root,
                                     const LazyJoinOptions& options = {});

/// Convenience: parse + evaluate.
Result<TwigQueryResult> EvaluateTwig(QueryFacade* db, std::string_view expr,
                                     const LazyJoinOptions& options = {});

}  // namespace lazyxml

#endif  // LAZYXML_CORE_TWIG_QUERY_H_
