// JoinWorkloadBuilder: segment-insertion plans with a controlled
// percentage of cross-segment joins.
//
// Reproduces the paper's first group of experiments (§5.3, Fig. 12): fix
// the number of segments and the numbers of A- and D-elements, then vary
// the fraction of A//D join pairs that cross segment boundaries, over a
// nested (chain) or balanced (star) ER-tree.
//
// Construction:
//  * in-segment joins: <A><D/></A> pairs placed in the top segment — one
//    join each, invisible to every other segment;
//  * cross-segment joins: an <A> element wrapping a child segment's
//    insertion hole is an ancestor of every element in that child (paper
//    Prop. 3), so wrapping W holes over P reachable D-elements yields W*P
//    cross pairs;
//  * element-count padding: inert <A></A> / <D/> fillers inside an <F>
//    block that neither contain nor are contained by anything that joins.

#ifndef LAZYXML_XMLGEN_JOIN_WORKLOAD_H_
#define LAZYXML_XMLGEN_JOIN_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace lazyxml {

/// Shape of the ER-tree the plan produces.
enum class ErTreeShape {
  kNested,    ///< chain: segment i directly contains segment i+1 (worst case)
  kBalanced,  ///< star: every segment a direct child of the first one
};

/// Human-readable shape name ("nested"/"balanced").
const char* ErTreeShapeName(ErTreeShape shape);

/// Knobs for the Fig. 12 workload.
struct JoinWorkloadConfig {
  /// Number of segments (>= 3: top + at least one child + D-carrier).
  uint32_t num_segments = 50;
  ErTreeShape shape = ErTreeShape::kBalanced;
  /// Total number of A//D join result pairs to aim for.
  uint64_t total_joins = 10000;
  /// Fraction of joins that must be cross-segment, in [0,1].
  double cross_fraction = 0.2;
  /// Total A-element / D-element targets; must be large enough for the
  /// joins requested (builder checks).
  uint64_t num_a_elements = 20000;
  uint64_t num_d_elements = 20000;
};

/// One step of a segment-insertion plan: insert `text` at global position
/// `gp` of the current super document.
struct SegmentInsertion {
  std::string text;
  uint64_t gp = 0;
};

/// The plan plus the exactly-achieved workload statistics (the nested
/// shape cannot hit every cross-join count exactly; the builder reports
/// what it built).
struct JoinWorkloadPlan {
  std::vector<SegmentInsertion> insertions;
  uint64_t in_segment_joins = 0;
  uint64_t cross_segment_joins = 0;
  uint64_t num_a_elements = 0;
  uint64_t num_d_elements = 0;

  uint64_t total_joins() const { return in_segment_joins + cross_segment_joins; }
  double achieved_cross_fraction() const {
    const uint64_t t = total_joins();
    return t == 0 ? 0.0 : static_cast<double>(cross_segment_joins) / t;
  }
};

/// Builds the insertion plan. Tags used: "A", "D", "seg" (segment roots),
/// "F" (filler container), "W" (non-A hole wrappers).
Result<JoinWorkloadPlan> BuildJoinWorkload(const JoinWorkloadConfig& config);

}  // namespace lazyxml

#endif  // LAZYXML_XMLGEN_JOIN_WORKLOAD_H_
