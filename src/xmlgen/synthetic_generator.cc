#include "xmlgen/synthetic_generator.h"

#include "common/strings.h"

namespace lazyxml {

namespace {
constexpr char kLoremChars[] =
    "abcdefghijklmnopqrstuvwxyz    ";
constexpr size_t kLoremLen = sizeof(kLoremChars) - 1;
}  // namespace

SyntheticGenerator::SyntheticGenerator(SyntheticConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

std::string SyntheticGenerator::PickTag() {
  uint64_t idx;
  if (config_.tag_skew > 0.0) {
    idx = rng_.Zipf(config_.num_tags, config_.tag_skew);
  } else {
    idx = rng_.Uniform(config_.num_tags);
  }
  return "t" + std::to_string(idx);
}

void SyntheticGenerator::EmitText(std::string* out) {
  const uint32_t len = static_cast<uint32_t>(rng_.UniformRange(
      config_.min_text_len, config_.max_text_len));
  for (uint32_t i = 0; i < len; ++i) {
    out->push_back(kLoremChars[rng_.Uniform(kLoremLen)]);
  }
}

void SyntheticGenerator::EmitElement(std::string* out, uint32_t depth,
                                     uint64_t* remaining) {
  if (*remaining == 0) return;
  const std::string tag = PickTag();
  --*remaining;
  out->append("<").append(tag).append(">");
  if (rng_.Bernoulli(config_.text_probability)) EmitText(out);
  if (depth < config_.max_depth) {
    const uint32_t fanout = static_cast<uint32_t>(rng_.UniformRange(
        config_.min_fanout, config_.max_fanout));
    for (uint32_t i = 0; i < fanout && *remaining > 0; ++i) {
      EmitElement(out, depth + 1, remaining);
    }
  }
  out->append("</").append(tag).append(">");
}

void SyntheticGenerator::EmitSpine(std::string* out, uint32_t levels) {
  if (levels == 0) return;
  out->append("<spine>");
  // A little flesh on each vertebra so spine segments are not empty.
  uint64_t one = 1;
  EmitElement(out, config_.max_depth, &one);  // depth-capped: one leaf
  EmitSpine(out, levels - 1);
  out->append("</spine>");
}

Result<std::string> SyntheticGenerator::Generate() {
  if (config_.target_elements < 1) {
    return Status::InvalidArgument("target_elements must be >= 1");
  }
  if (config_.num_tags < 1) {
    return Status::InvalidArgument("num_tags must be >= 1");
  }
  if (config_.max_depth < 1) {
    return Status::InvalidArgument("max_depth must be >= 1");
  }
  if (config_.min_fanout > config_.max_fanout) {
    return Status::InvalidArgument("min_fanout > max_fanout");
  }
  if (config_.min_text_len > config_.max_text_len) {
    return Status::InvalidArgument("min_text_len > max_text_len");
  }
  std::string out;
  // Rough size reservation: ~24 bytes of markup + text per element.
  out.reserve(config_.target_elements * 24 + config_.spine_depth * 32);
  out.append("<").append(config_.root_tag).append(">");
  if (config_.spine_depth > 0) EmitSpine(&out, config_.spine_depth);
  uint64_t remaining = config_.target_elements;
  // The root itself counts as one element.
  if (remaining > 0) --remaining;
  while (remaining > 0) {
    const uint64_t before = remaining;
    EmitElement(&out, 1, &remaining);
    if (remaining == before) break;  // Defensive: guarantee progress.
  }
  out.append("</").append(config_.root_tag).append(">");
  return out;
}

}  // namespace lazyxml
