// SyntheticGenerator: controllable random XML documents.
//
// Replaces the IBM AlphaWorks XML Generator the paper used for its
// synthetic datasets (the tool is no longer distributed). The paper only
// needs documents "with the characteristics we need" — controlled element
// counts, tag alphabets, nesting depth and segment-friendly shapes — all of
// which are direct knobs here. Deterministic given the seed.

#ifndef LAZYXML_XMLGEN_SYNTHETIC_GENERATOR_H_
#define LAZYXML_XMLGEN_SYNTHETIC_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace lazyxml {

/// Knobs for SyntheticGenerator.
struct SyntheticConfig {
  /// PRNG seed; identical configs+seeds produce identical documents.
  uint64_t seed = 42;

  /// Approximate number of elements to emit (the generator stops opening
  /// new elements once reached; the actual count may exceed by at most the
  /// current open path). Must be >= 1.
  uint64_t target_elements = 1000;

  /// Distinct tag names (t0, t1, ...). Must be >= 1.
  uint32_t num_tags = 8;

  /// Tag selection skew (0 = uniform; larger = more skew toward t0).
  double tag_skew = 0.0;

  /// Maximum element nesting depth (>= 1).
  uint32_t max_depth = 12;

  /// Children per element drawn uniformly from [min_fanout, max_fanout].
  uint32_t min_fanout = 1;
  uint32_t max_fanout = 5;

  /// Probability that an element carries character content.
  double text_probability = 0.5;

  /// Character-content length drawn uniformly from [min, max].
  uint32_t min_text_len = 5;
  uint32_t max_text_len = 40;

  /// Name of the single root element.
  std::string root_tag = "root";

  /// When > 0, the document additionally contains a "spine": a chain of
  /// `spine_depth` nested elements (tag "spine") hanging under the root,
  /// each carrying a little sibling content. Needed to chop a document
  /// into a deeply *nested* ER-tree (paper §5: nested vs balanced).
  uint32_t spine_depth = 0;
};

/// Generates random XML documents per a SyntheticConfig.
class SyntheticGenerator {
 public:
  explicit SyntheticGenerator(SyntheticConfig config);

  /// Produces one well-formed single-rooted document. Each call advances
  /// the PRNG, so successive calls give different documents.
  Result<std::string> Generate();

 private:
  void EmitElement(std::string* out, uint32_t depth, uint64_t* remaining);
  void EmitSpine(std::string* out, uint32_t levels);
  std::string PickTag();
  void EmitText(std::string* out);

  SyntheticConfig config_;
  Random rng_;
};

}  // namespace lazyxml

#endif  // LAZYXML_XMLGEN_SYNTHETIC_GENERATOR_H_
