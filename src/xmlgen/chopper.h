// Chopper: splits one XML document into a sequence of segment insertions
// that reconstruct it, with a chosen ER-tree shape (paper §5.1: "we
// chopped the data sets into many small segments and inserted these
// segments into an initially dummy XML document").
//
//  * balanced: one big top segment plus K-1 disjoint element subtrees
//    carved out and re-inserted as its children (a star — the paper's
//    "more reasonable real situation");
//  * nested: a root-to-leaf chain of K nested element subtrees, each
//    segment directly containing the next (the paper's worst case; the
//    document must be at least K deep — see SyntheticConfig::spine_depth).

#ifndef LAZYXML_XMLGEN_CHOPPER_H_
#define LAZYXML_XMLGEN_CHOPPER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xmlgen/join_workload.h"

namespace lazyxml {

/// Chopper knobs.
struct ChopConfig {
  /// Number of segments to produce (>= 2).
  uint32_t num_segments = 50;
  ErTreeShape shape = ErTreeShape::kBalanced;
  /// When true, a document that cannot support `num_segments` (e.g. a
  /// shallow document under a nested chop) yields as many segments as it
  /// can instead of failing.
  bool allow_fewer = false;
};

/// The insertion plan plus what was achieved.
struct ChopPlan {
  /// Apply in order (each gp is valid at its own insertion time).
  std::vector<SegmentInsertion> insertions;

  /// Segments actually produced (== config unless allow_fewer kicked in).
  uint32_t num_segments() const {
    return static_cast<uint32_t>(insertions.size());
  }
};

/// Builds a chop plan for `document` (must be well-formed,
/// single-rooted). Fails if the document cannot support the requested
/// shape (e.g. nested chop deeper than the document).
Result<ChopPlan> BuildChopPlan(std::string_view document,
                               const ChopConfig& config);

}  // namespace lazyxml

#endif  // LAZYXML_XMLGEN_CHOPPER_H_
