#include "xmlgen/xmark_generator.h"

#include "common/strings.h"

namespace lazyxml {

namespace {

// A tiny word list in the spirit of xmlgen's Shakespeare excerpts.
constexpr const char* kWords[] = {
    "auction",  "gold",    "silver",   "vintage", "rare",   "estate",
    "antique",  "modern",  "classic",  "mint",    "signed", "original",
    "limited",  "edition", "preceded", "summer",  "winter", "harvest",
    "northern", "quiet",   "bright",   "amber",   "cobalt", "ivory"};
constexpr size_t kNumWords = sizeof(kWords) / sizeof(kWords[0]);

constexpr const char* kFirstNames[] = {"Ada",   "Ben",  "Chen", "Dana",
                                       "Eli",   "Fumi", "Gita", "Hugo",
                                       "Ines",  "Jun",  "Kofi", "Lena"};
constexpr const char* kLastNames[] = {"Moreau", "Nakata", "Okafor", "Petrov",
                                      "Quint",  "Rossi",  "Silva",  "Tanaka",
                                      "Ueda",   "Varga",  "Weiss",  "Xu"};
constexpr const char* kCities[] = {"Genova", "Singapore", "Shanghai",
                                   "Baltimore", "Lisbon", "Kyoto"};
constexpr const char* kCountries[] = {"Italy", "Singapore", "China",
                                      "United States", "Portugal", "Japan"};

}  // namespace

XMarkGenerator::XMarkGenerator(XMarkConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

void XMarkGenerator::EmitWords(std::string* out, uint32_t min_words,
                               uint32_t max_words) {
  const uint32_t n =
      static_cast<uint32_t>(rng_.UniformRange(min_words, max_words));
  for (uint32_t i = 0; i < n; ++i) {
    if (i > 0) out->push_back(' ');
    out->append(kWords[rng_.Uniform(kNumWords)]);
  }
}

double XMarkGenerator::MeanElementsPerPerson() const {
  const double phones =
      (config_.min_phones + config_.max_phones) / 2.0;
  const double interests =
      (config_.min_interests + config_.max_interests) / 2.0;
  const double watches =
      (config_.min_watches + config_.max_watches) / 2.0;
  // person + name + emailaddress + address(5) + phones
  //  + profile_probability * (profile + interests + business + age)
  //  + watches_probability * (watches + watch*)
  return 1 + 1 + 1 + 5 + phones +
         config_.profile_probability * (1 + interests + 2) +
         config_.watches_probability * (1 + watches);
}

void XMarkGenerator::EmitPerson(std::string* out, uint32_t id) {
  out->append(StringPrintf("<person id=\"person%u\">", id));
  out->append("<name>");
  out->append(kFirstNames[rng_.Uniform(12)]);
  out->push_back(' ');
  out->append(kLastNames[rng_.Uniform(12)]);
  out->append("</name>");
  out->append(StringPrintf("<emailaddress>mailto:p%u@example.net"
                           "</emailaddress>",
                           id));
  const uint32_t phones = static_cast<uint32_t>(
      rng_.UniformRange(config_.min_phones, config_.max_phones));
  for (uint32_t i = 0; i < phones; ++i) {
    out->append(StringPrintf("<phone>+%llu (%llu) %llu</phone>",
                             static_cast<unsigned long long>(rng_.Uniform(99)),
                             static_cast<unsigned long long>(rng_.Uniform(999)),
                             static_cast<unsigned long long>(
                                 rng_.Uniform(9999999) + 1000000)));
  }
  const size_t city = rng_.Uniform(6);
  out->append("<address>");
  out->append(StringPrintf("<street>%llu ",
                           static_cast<unsigned long long>(
                               rng_.Uniform(99) + 1)));
  EmitWords(out, 1, 2);
  out->append(" St</street>");
  out->append("<city>").append(kCities[city]).append("</city>");
  out->append("<country>").append(kCountries[city]).append("</country>");
  out->append(StringPrintf("<zipcode>%llu</zipcode>",
                           static_cast<unsigned long long>(
                               rng_.Uniform(89999) + 10000)));
  out->append("</address>");
  if (rng_.Bernoulli(config_.profile_probability)) {
    out->append(StringPrintf("<profile income=\"%.2f\">",
                             20000.0 + rng_.NextDouble() * 80000.0));
    const uint32_t interests = static_cast<uint32_t>(
        rng_.UniformRange(config_.min_interests, config_.max_interests));
    for (uint32_t i = 0; i < interests; ++i) {
      out->append(StringPrintf(
          "<interest category=\"category%llu\"/>",
          static_cast<unsigned long long>(
              rng_.Uniform(config_.num_categories ? config_.num_categories
                                                  : 1))));
    }
    out->append("<business>");
    out->append(rng_.Bernoulli(0.3) ? "Yes" : "No");
    out->append("</business>");
    out->append(StringPrintf("<age>%llu</age>",
                             static_cast<unsigned long long>(
                                 rng_.Uniform(60) + 18)));
    out->append("</profile>");
  }
  if (rng_.Bernoulli(config_.watches_probability)) {
    out->append("<watches>");
    const uint32_t watches = static_cast<uint32_t>(
        rng_.UniformRange(config_.min_watches, config_.max_watches));
    for (uint32_t i = 0; i < watches; ++i) {
      out->append(StringPrintf(
          "<watch open_auction=\"open_auction%llu\"/>",
          static_cast<unsigned long long>(
              rng_.Uniform(config_.num_open_auctions
                               ? config_.num_open_auctions
                               : 1))));
    }
    out->append("</watches>");
  }
  out->append("</person>");
}

void XMarkGenerator::EmitItem(std::string* out, uint32_t id,
                              const char* region) {
  out->append(StringPrintf("<item id=\"item%u\">", id));
  out->append("<location>").append(region).append("</location>");
  out->append("<quantity>1</quantity>");
  out->append("<name>");
  EmitWords(out, 2, 4);
  out->append("</name>");
  out->append("<payment>Creditcard</payment>");
  out->append("<description><text>");
  EmitWords(out, 8, 30);
  out->append("</text></description>");
  out->append("<shipping>Will ship internationally</shipping>");
  out->append(StringPrintf(
      "<incategory category=\"category%llu\"/>",
      static_cast<unsigned long long>(
          rng_.Uniform(config_.num_categories ? config_.num_categories : 1))));
  out->append("</item>");
}

void XMarkGenerator::EmitCategory(std::string* out, uint32_t id) {
  out->append(StringPrintf("<category id=\"category%u\">", id));
  out->append("<name>");
  EmitWords(out, 1, 3);
  out->append("</name>");
  out->append("<description><text>");
  EmitWords(out, 5, 20);
  out->append("</text></description>");
  out->append("</category>");
}

void XMarkGenerator::EmitOpenAuction(std::string* out, uint32_t id) {
  out->append(StringPrintf("<open_auction id=\"open_auction%u\">", id));
  out->append(StringPrintf("<initial>%.2f</initial>",
                           1.0 + rng_.NextDouble() * 200.0));
  const uint32_t bidders = static_cast<uint32_t>(rng_.Uniform(4));
  for (uint32_t i = 0; i < bidders; ++i) {
    out->append("<bidder>");
    out->append(StringPrintf("<date>%02llu/%02llu/2004</date>",
                             static_cast<unsigned long long>(
                                 rng_.Uniform(12) + 1),
                             static_cast<unsigned long long>(
                                 rng_.Uniform(28) + 1)));
    out->append(StringPrintf(
        "<personref person=\"person%llu\"/>",
        static_cast<unsigned long long>(
            rng_.Uniform(config_.num_persons ? config_.num_persons : 1))));
    out->append(StringPrintf("<increase>%.2f</increase>",
                             1.5 + rng_.NextDouble() * 20.0));
    out->append("</bidder>");
  }
  out->append(StringPrintf("<current>%.2f</current>",
                           10.0 + rng_.NextDouble() * 500.0));
  out->append(StringPrintf(
      "<itemref item=\"item%llu\"/>",
      static_cast<unsigned long long>(
          rng_.Uniform(config_.num_items ? config_.num_items : 1))));
  out->append(StringPrintf(
      "<seller person=\"person%llu\"/>",
      static_cast<unsigned long long>(
          rng_.Uniform(config_.num_persons ? config_.num_persons : 1))));
  out->append("<quantity>1</quantity>");
  out->append("<type>Regular</type>");
  out->append("<interval><start>01/01/2004</start>"
              "<end>12/31/2004</end></interval>");
  out->append("</open_auction>");
}

void XMarkGenerator::EmitClosedAuction(std::string* out, uint32_t id) {
  out->append("<closed_auction>");
  out->append(StringPrintf(
      "<seller person=\"person%llu\"/>",
      static_cast<unsigned long long>(
          rng_.Uniform(config_.num_persons ? config_.num_persons : 1))));
  out->append(StringPrintf(
      "<buyer person=\"person%llu\"/>",
      static_cast<unsigned long long>(
          rng_.Uniform(config_.num_persons ? config_.num_persons : 1))));
  out->append(StringPrintf(
      "<itemref item=\"item%llu\"/>",
      static_cast<unsigned long long>(
          rng_.Uniform(config_.num_items ? config_.num_items : 1))));
  out->append(StringPrintf("<price>%.2f</price>",
                           5.0 + rng_.NextDouble() * 800.0));
  out->append(StringPrintf("<date>%02llu/%02llu/2004</date>",
                           static_cast<unsigned long long>(
                               rng_.Uniform(12) + 1),
                           static_cast<unsigned long long>(
                               rng_.Uniform(28) + 1)));
  out->append("<quantity>1</quantity>");
  out->append("<type>Regular</type>");
  out->append(StringPrintf("(id %u)", id));
  out->append("</closed_auction>");
}

Result<std::string> XMarkGenerator::Generate() {
  std::string out;
  out.reserve(static_cast<size_t>(config_.num_persons) * 520 +
              static_cast<size_t>(config_.num_items) * 260 +
              static_cast<size_t>(config_.num_open_auctions) * 380 + 4096);
  out.append("<site>");

  out.append("<regions>");
  static constexpr const char* kRegions[] = {"africa", "asia", "europe",
                                             "namerica", "samerica"};
  const uint32_t per_region = config_.num_items / 5;
  uint32_t item_id = 0;
  for (const char* region : kRegions) {
    out.append("<").append(region).append(">");
    const uint32_t n = (region == kRegions[4])
                           ? config_.num_items - 4 * per_region
                           : per_region;
    for (uint32_t i = 0; i < n; ++i) EmitItem(&out, item_id++, region);
    out.append("</").append(region).append(">");
  }
  out.append("</regions>");

  out.append("<categories>");
  for (uint32_t i = 0; i < config_.num_categories; ++i) {
    EmitCategory(&out, i);
  }
  out.append("</categories>");

  out.append("<catgraph>");
  for (uint32_t i = 0; i + 1 < config_.num_categories; ++i) {
    out.append(StringPrintf("<edge from=\"category%u\" to=\"category%u\"/>",
                            i, i + 1));
  }
  out.append("</catgraph>");

  out.append("<people>");
  for (uint32_t i = 0; i < config_.num_persons; ++i) EmitPerson(&out, i);
  out.append("</people>");

  out.append("<open_auctions>");
  for (uint32_t i = 0; i < config_.num_open_auctions; ++i) {
    EmitOpenAuction(&out, i);
  }
  out.append("</open_auctions>");

  out.append("<closed_auctions>");
  for (uint32_t i = 0; i < config_.num_closed_auctions; ++i) {
    EmitClosedAuction(&out, i);
  }
  out.append("</closed_auctions>");

  out.append("</site>");
  return out;
}

}  // namespace lazyxml
