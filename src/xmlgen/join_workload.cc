#include "xmlgen/join_workload.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace lazyxml {

const char* ErTreeShapeName(ErTreeShape shape) {
  switch (shape) {
    case ErTreeShape::kNested:
      return "nested";
    case ErTreeShape::kBalanced:
      return "balanced";
  }
  return "?";
}

namespace {

void EmitInSegmentPairs(std::string* out, uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) out->append("<A><D/></A>");
}

// Inert elements that join nothing: D's outside any A, then empty A's as
// their siblings.
void EmitFillers(std::string* out, uint64_t a_fill, uint64_t d_fill) {
  if (a_fill == 0 && d_fill == 0) return;
  out->append("<F>");
  for (uint64_t i = 0; i < d_fill; ++i) out->append("<D/>");
  for (uint64_t i = 0; i < a_fill; ++i) out->append("<A></A>");
  out->append("</F>");
}

// Splits `total` into `parts` near-equal chunks (first chunks get the
// remainder).
std::vector<uint64_t> SplitEvenly(uint64_t total, uint64_t parts) {
  std::vector<uint64_t> out(parts, parts == 0 ? 0 : total / parts);
  if (parts == 0) return out;
  const uint64_t rem = total % parts;
  for (uint64_t i = 0; i < rem; ++i) ++out[i];
  return out;
}

// The balanced (star) shape. Layout, designed so that the lazy store can
// actually *skip* what does not join (the effect the paper measures):
//  * top segment: the in-segment <A><D/></A> pairs and one hole per child;
//    holes of cross-children are wrapped in <A>, others sit in <W>;
//  * cross children: only the cross-join D's;
//  * remaining children alternate between A-filler-only and
//    D-filler-only segments.
Result<JoinWorkloadPlan> BuildBalanced(const JoinWorkloadConfig& cfg,
                                       uint64_t cross, uint64_t inseg) {
  JoinWorkloadPlan plan;
  const uint32_t children = cfg.num_segments - 1;
  // Reserve a slice of the children as dedicated A-only / D-only filler
  // hosts so they stay skippable even when every cross child is wrapped.
  const uint32_t reserved =
      children >= 6 ? std::max<uint32_t>(2, children / 6) : 0;
  const uint32_t cross_children = children - reserved;
  std::vector<uint64_t> cross_d = SplitEvenly(cross, cross_children);
  cross_d.resize(children, 0);  // reserved children carry no cross D's
  uint64_t wrapped = 0;
  for (uint64_t c : cross_d) {
    if (c > 0) ++wrapped;
  }
  const uint64_t a_used = inseg + wrapped;
  const uint64_t d_used = inseg + cross;
  if (a_used > cfg.num_a_elements) {
    return Status::InvalidArgument(StringPrintf(
        "num_a_elements too small: need %llu",
        static_cast<unsigned long long>(a_used)));
  }
  if (d_used > cfg.num_d_elements) {
    return Status::InvalidArgument(StringPrintf(
        "num_d_elements too small: need %llu",
        static_cast<unsigned long long>(d_used)));
  }
  // Unwrapped children alternate A-filler / D-filler duty; with no
  // unwrapped children left, fillers fall back to the top segment (they
  // are inert there too, just not skippable).
  std::vector<uint32_t> a_hosts;
  std::vector<uint32_t> d_hosts;
  for (uint32_t i = 0; i < children; ++i) {
    if (cross_d[i] != 0) continue;
    if ((a_hosts.size() + d_hosts.size()) % 2 == 0) {
      a_hosts.push_back(i);
    } else {
      d_hosts.push_back(i);
    }
  }
  const uint64_t a_fill_total = cfg.num_a_elements - a_used;
  const uint64_t d_fill_total = cfg.num_d_elements - d_used;
  uint64_t top_a_fill = 0;
  uint64_t top_d_fill = 0;
  std::vector<uint64_t> a_fill = SplitEvenly(a_fill_total, a_hosts.size());
  std::vector<uint64_t> d_fill = SplitEvenly(d_fill_total, d_hosts.size());
  if (a_hosts.empty()) top_a_fill = a_fill_total;
  if (d_hosts.empty()) top_d_fill = d_fill_total;
  std::vector<uint64_t> child_a_fill(children, 0);
  std::vector<uint64_t> child_d_fill(children, 0);
  for (size_t i = 0; i < a_hosts.size(); ++i) {
    child_a_fill[a_hosts[i]] = a_fill[i];
  }
  for (size_t i = 0; i < d_hosts.size(); ++i) {
    child_d_fill[d_hosts[i]] = d_fill[i];
  }

  // Top segment.
  std::string top = "<seg>";
  EmitInSegmentPairs(&top, inseg);
  EmitFillers(&top, top_a_fill, top_d_fill);
  std::vector<uint64_t> hole_offsets(children);
  for (uint32_t i = 0; i < children; ++i) {
    if (cross_d[i] > 0) {
      top.append("<A>");
      hole_offsets[i] = top.size();
      top.append("</A>");
    } else {
      top.append("<W>");
      hole_offsets[i] = top.size();
      top.append("</W>");
    }
  }
  top.append("</seg>");
  plan.insertions.push_back(SegmentInsertion{std::move(top), 0});

  // Children, inserted in document order of their holes.
  uint64_t shift = 0;
  for (uint32_t i = 0; i < children; ++i) {
    std::string child = "<seg>";
    for (uint64_t k = 0; k < cross_d[i]; ++k) child.append("<D/>");
    EmitFillers(&child, child_a_fill[i], child_d_fill[i]);
    child.append("</seg>");
    const uint64_t len = child.size();
    plan.insertions.push_back(
        SegmentInsertion{std::move(child), hole_offsets[i] + shift});
    shift += len;
  }

  plan.in_segment_joins = inseg;
  plan.cross_segment_joins = cross;
  plan.num_a_elements = cfg.num_a_elements;
  plan.num_d_elements = cfg.num_d_elements;
  return plan;
}

// The nested (chain) shape: segment i directly contains segment i+1.
// Layout (D's may never sit below an <A>-wrapped hole they are not meant
// to join, and in a chain a wrap joins *everything* below it):
//  * segment 0: in-segment pairs + A fillers + unwrapped hole;
//  * segment 1: all D fillers + unwrapped hole (above every wrap, so its
//    D's join nothing — and the lazy store can skip the whole segment);
//  * segments 2..: wraps around their child holes, W of them, plus the
//    remaining A fillers;
//  * last segment: the P cross-join D's; cross = W * P.
Result<JoinWorkloadPlan> BuildNested(const JoinWorkloadConfig& cfg,
                                     uint64_t cross_target, uint64_t joins) {
  JoinWorkloadPlan plan;
  const uint32_t chain = cfg.num_segments;
  if (cross_target > 0 && chain < 4) {
    return Status::InvalidArgument(
        "nested cross-segment joins need at least 4 segments");
  }
  const uint64_t max_wraps = chain >= 4 ? chain - 3 : 0;
  uint64_t wraps = 0;
  uint64_t cross_d = 0;
  if (cross_target > 0) {
    cross_d = (cross_target + max_wraps - 1) / max_wraps;  // ceil
    wraps = static_cast<uint64_t>(std::llround(
        static_cast<double>(cross_target) / static_cast<double>(cross_d)));
    wraps = std::clamp<uint64_t>(wraps, 1, max_wraps);
  }
  const uint64_t cross = wraps * cross_d;
  const uint64_t inseg = joins > cross ? joins - cross : 0;
  const uint64_t a_used = inseg + wraps;
  const uint64_t d_used = inseg + cross_d;
  if (a_used > cfg.num_a_elements) {
    return Status::InvalidArgument(StringPrintf(
        "num_a_elements too small: need %llu",
        static_cast<unsigned long long>(a_used)));
  }
  if (d_used > cfg.num_d_elements) {
    return Status::InvalidArgument(StringPrintf(
        "num_d_elements too small: need %llu",
        static_cast<unsigned long long>(d_used)));
  }
  // A fillers spread over every segment except the D-filler one (index 1).
  std::vector<uint64_t> a_fill =
      SplitEvenly(cfg.num_a_elements - a_used, chain > 1 ? chain - 1 : 1);
  const uint64_t d_fill = cfg.num_d_elements - d_used;

  uint64_t next_gp = 0;
  size_t a_cursor = 0;
  for (uint32_t i = 0; i < chain; ++i) {
    const bool last = (i + 1 == chain);
    // Wraps occupy segments 2..2+wraps-1.
    const bool wrap_here = !last && i >= 2 && (i - 2) < wraps;
    std::string text = "<seg>";
    if (i == 0) {
      EmitInSegmentPairs(&text, inseg);
      EmitFillers(&text, a_fill[a_cursor++], 0);
    } else if (i == 1 && chain > 1) {
      EmitFillers(&text, 0, d_fill);
    } else if (last) {
      for (uint64_t k = 0; k < cross_d; ++k) text.append("<D/>");
      EmitFillers(&text, a_fill[a_cursor++], 0);
    } else {
      EmitFillers(&text, a_fill[a_cursor++], 0);
    }
    uint64_t hole_offset = 0;
    if (!last) {
      text.append(wrap_here ? "<A>" : "<W>");
      hole_offset = text.size();
      text.append(wrap_here ? "</A>" : "</W>");
    }
    text.append("</seg>");
    plan.insertions.push_back(SegmentInsertion{std::move(text), next_gp});
    next_gp += hole_offset;
  }

  plan.in_segment_joins = inseg;
  plan.cross_segment_joins = cross;
  plan.num_a_elements = cfg.num_a_elements;
  plan.num_d_elements = cfg.num_d_elements;
  return plan;
}

}  // namespace

Result<JoinWorkloadPlan> BuildJoinWorkload(const JoinWorkloadConfig& cfg) {
  if (cfg.num_segments < 3) {
    return Status::InvalidArgument("need at least 3 segments");
  }
  if (cfg.cross_fraction < 0.0 || cfg.cross_fraction > 1.0) {
    return Status::InvalidArgument("cross_fraction must be in [0,1]");
  }
  const uint64_t cross = static_cast<uint64_t>(
      std::llround(cfg.cross_fraction * static_cast<double>(cfg.total_joins)));
  const uint64_t inseg = cfg.total_joins - cross;
  switch (cfg.shape) {
    case ErTreeShape::kBalanced:
      return BuildBalanced(cfg, cross, inseg);
    case ErTreeShape::kNested:
      return BuildNested(cfg, cross, cfg.total_joins);
  }
  return Status::InvalidArgument("unknown ER-tree shape");
}

}  // namespace lazyxml
