// XMarkGenerator: auction-site documents in the shape of the XMark
// benchmark (xml-benchmark.org).
//
// Replaces the XMark `xmlgen` tool (no network access here). Emits the
// subset of the XMark schema the paper's Fig. 14 queries touch —
// site/people/person/{name,emailaddress,phone,address,profile/interest,
// watches/watch,...} plus regions/items, categories and auctions for bulk —
// with per-person multiplicities as knobs, mirroring the paper's "slightly
// modified to increase the number of cross-segment joins" dataset.

#ifndef LAZYXML_XMLGEN_XMARK_GENERATOR_H_
#define LAZYXML_XMLGEN_XMARK_GENERATOR_H_

#include <cstdint>
#include <string>

#include "common/random.h"
#include "common/result.h"

namespace lazyxml {

/// Size/shape knobs for XMarkGenerator.
struct XMarkConfig {
  uint64_t seed = 7;

  /// Entity counts. Defaults give a small smoke-test document; benches
  /// scale these up (the paper's 100 MB document has ~25k persons).
  uint32_t num_persons = 100;
  uint32_t num_items = 40;
  uint32_t num_categories = 10;
  uint32_t num_open_auctions = 30;
  uint32_t num_closed_auctions = 20;

  /// Per-person multiplicities, drawn uniformly from [min, max].
  uint32_t min_phones = 1;
  uint32_t max_phones = 3;
  uint32_t min_interests = 0;
  uint32_t max_interests = 5;
  uint32_t min_watches = 0;
  uint32_t max_watches = 8;

  /// Probability a person has a profile / a watches list at all.
  double profile_probability = 0.9;
  double watches_probability = 0.8;
};

/// Generates XMark-shaped auction documents.
class XMarkGenerator {
 public:
  explicit XMarkGenerator(XMarkConfig config);

  /// Produces one well-formed <site> document.
  Result<std::string> Generate();

  /// Rough element count per average person subtree with this config;
  /// benches use it to size documents.
  double MeanElementsPerPerson() const;

 private:
  void EmitPerson(std::string* out, uint32_t id);
  void EmitItem(std::string* out, uint32_t id, const char* region);
  void EmitCategory(std::string* out, uint32_t id);
  void EmitOpenAuction(std::string* out, uint32_t id);
  void EmitClosedAuction(std::string* out, uint32_t id);
  void EmitWords(std::string* out, uint32_t min_words, uint32_t max_words);

  XMarkConfig config_;
  Random rng_;
};

}  // namespace lazyxml

#endif  // LAZYXML_XMLGEN_XMARK_GENERATOR_H_
