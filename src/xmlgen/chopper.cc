#include "xmlgen/chopper.h"

#include <algorithm>

#include "common/strings.h"
#include "xml/parser.h"

namespace lazyxml {

namespace {

Result<ChopPlan> ChopBalanced(std::string_view doc,
                              const std::vector<ElementRecord>& records,
                              uint32_t num_segments, bool allow_fewer) {
  const uint32_t carve_target = num_segments - 1;
  const ElementRecord& root = records.front();
  // Greedy disjoint pick of preorder subtrees near doc_size/K bytes,
  // relaxing the size cap until enough candidates exist.
  uint64_t cap = std::max<uint64_t>(doc.size() / num_segments, 16) * 2;
  std::vector<const ElementRecord*> picked;
  for (int attempt = 0; attempt < 24; ++attempt) {
    picked.clear();
    uint64_t next_free = root.start + 1;  // strictly inside the root
    for (const ElementRecord& r : records) {
      if (&r == &root) continue;
      if (r.start < next_free) continue;
      if (r.end >= root.end) continue;
      const uint64_t size = r.end - r.start;
      if (size > cap) continue;
      picked.push_back(&r);
      next_free = r.end;
      if (picked.size() == carve_target) break;
    }
    if (picked.size() == carve_target) break;
    cap *= 2;
    if (cap > doc.size()) {
      // Even whole-sibling subtrees don't suffice; give up below.
      if (attempt > 4 && picked.size() < carve_target) break;
    }
  }
  if (picked.size() < carve_target && !(allow_fewer && !picked.empty())) {
    return Status::InvalidArgument(StringPrintf(
        "document has too few disjoint subtrees for %u balanced segments",
        num_segments));
  }

  ChopPlan plan;
  // Top segment: the document minus the carved byte ranges.
  std::string top;
  top.reserve(doc.size());
  uint64_t cursor = 0;
  for (const ElementRecord* r : picked) {
    top.append(doc.substr(cursor, r->start - cursor));
    cursor = r->end;
  }
  top.append(doc.substr(cursor));
  plan.insertions.push_back(SegmentInsertion{std::move(top), 0});
  // Carved subtrees in document order: with all earlier ones re-inserted
  // and all later ones still missing (they start after this one ends),
  // each goes back at its original offset.
  for (const ElementRecord* r : picked) {
    plan.insertions.push_back(SegmentInsertion{
        std::string(doc.substr(r->start, r->end - r->start)), r->start});
  }
  return plan;
}

Result<ChopPlan> ChopNested(std::string_view doc,
                            const std::vector<ElementRecord>& records,
                            uint32_t num_segments, bool allow_fewer) {
  // Deepest root-to-leaf element chain.
  size_t deepest = 0;
  for (size_t i = 1; i < records.size(); ++i) {
    if (records[i].level > records[deepest].level) deepest = i;
  }
  // Ancestors of the deepest element, outermost first (preorder: every
  // ancestor precedes it and spans it).
  std::vector<const ElementRecord*> chain;
  for (size_t i = 0; i <= deepest; ++i) {
    if (records[i].start <= records[deepest].start &&
        records[i].end >= records[deepest].end) {
      chain.push_back(&records[i]);
    }
  }
  // chain[0] is the document root element; cuts must be strictly inside,
  // so K-1 cut elements come from chain[1..].
  if (chain.size() < num_segments) {
    if (!allow_fewer || chain.size() < 2) {
      return Status::InvalidArgument(StringPrintf(
          "document depth %zu cannot support %u nested segments "
          "(generate with spine_depth >= num_segments)",
          chain.size(), num_segments));
    }
    num_segments = static_cast<uint32_t>(chain.size());
  }
  // Pick K-1 cut elements spread evenly along the chain below the root.
  std::vector<const ElementRecord*> cuts;
  const size_t avail = chain.size() - 1;
  const uint32_t need = num_segments - 1;
  for (uint32_t i = 0; i < need; ++i) {
    const size_t idx = 1 + (static_cast<size_t>(i) * avail) / need;
    cuts.push_back(chain[idx]);
  }
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  if (cuts.size() != need) {
    return Status::Internal("nested chop picked duplicate cut elements");
  }

  ChopPlan plan;
  // Segment i = (enclosing region) minus (next cut's bytes); the last
  // segment is the innermost cut whole.
  uint64_t region_start = 0;
  uint64_t region_end = doc.size();
  for (uint32_t i = 0; i <= need; ++i) {
    std::string text;
    if (i < need) {
      const ElementRecord* cut = cuts[i];
      text.append(doc.substr(region_start, cut->start - region_start));
      text.append(doc.substr(cut->end, region_end - cut->end));
      plan.insertions.push_back(SegmentInsertion{std::move(text),
                                                 region_start});
      region_start = cut->start;
      region_end = cut->end;
    } else {
      text.assign(doc.substr(region_start, region_end - region_start));
      plan.insertions.push_back(SegmentInsertion{std::move(text),
                                                 region_start});
    }
  }
  return plan;
}

}  // namespace

Result<ChopPlan> BuildChopPlan(std::string_view document,
                               const ChopConfig& config) {
  if (config.num_segments < 2) {
    return Status::InvalidArgument("need at least 2 segments");
  }
  TagDict dict;
  ParseOptions opts;
  opts.require_single_root = true;
  auto parsed = ParseFragment(document, &dict, opts);
  if (!parsed.ok()) {
    return parsed.status().WithContext("chopping document");
  }
  const auto& records = parsed.ValueOrDie().records;
  if (records.empty()) {
    return Status::InvalidArgument("cannot chop an empty document");
  }
  switch (config.shape) {
    case ErTreeShape::kBalanced:
      return ChopBalanced(document, records, config.num_segments,
                          config.allow_fewer);
    case ErTreeShape::kNested:
      return ChopNested(document, records, config.num_segments,
                        config.allow_fewer);
  }
  return Status::InvalidArgument("unknown chop shape");
}

}  // namespace lazyxml
