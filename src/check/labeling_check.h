// Labeling invariants for the consistency scrubber:
//  - RelabelingIndex: region-label well-formedness (non-empty intervals,
//    bounds, laminar containment) plus B+-tree shape,
//  - PrimeLabeling: label factorization / group-SC self-check,
//  - cross-consistency: PRIME's divisibility ancestry and
//    simultaneous-congruence document order must agree with the eager
//    region labels when both are built from the same document.

#ifndef LAZYXML_CHECK_LABELING_CHECK_H_
#define LAZYXML_CHECK_LABELING_CHECK_H_

#include <string_view>

#include "check/check_report.h"
#include "common/result.h"
#include "labeling/prime_labeling.h"
#include "labeling/relabeling_index.h"

namespace lazyxml {
namespace check {

/// Scrubs one RelabelingIndex (region labels): tree shape, interval
/// well-formedness, laminar containment across all tags.
void CheckRelabelingIndex(const RelabelingIndex& index, CheckReport* report);

/// Scrubs one PrimeLabeling structure (delegates to its deep self-check
/// and grades the outcome).
void CheckPrimeLabeling(const PrimeLabeling& prime, CheckReport* report);

/// Knobs for the cross-consistency check.
struct LabelingAgreementOptions {
  /// Node-pair sample cap for the quadratic ancestry comparison; pairs are
  /// taken deterministically (striding) when the document is larger.
  std::size_t max_pairs = 4096;
};

/// Builds both labeling schemes from `document_text` and verifies they
/// agree: same element count / tag names in document order, PRIME
/// ancestry (divisibility) ⟺ region containment, PRIME document order
/// (group seq + SC rank) consistent with region start order, and PRIME
/// parent links matching the region nesting stack. Returns the graded
/// report; the Result is only non-OK when the document itself fails to
/// parse into either structure.
Result<CheckReport> CheckLabelingAgreement(
    std::string_view document_text,
    const LabelingAgreementOptions& options = {});

}  // namespace check
}  // namespace lazyxml

#endif  // LAZYXML_CHECK_LABELING_CHECK_H_
