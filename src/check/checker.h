// Checker: one entry point over the whole consistency-scrubbing
// subsystem. Each Check* method runs the deep validators of one layer
// and returns a severity-graded CheckReport (check_report.h):
//
//   Check(LazyDatabase)         in-memory scrub — ER-tree, SB-tree and
//                               element-index B+-trees, element records,
//                               nesting summaries, tag-list cross-counts
//                               (database_check.h);
//   Check(DurableLazyDatabase)  the above, plus WAL/snapshot
//                               cross-consistency: the directory must
//                               replay into a state identical to the
//                               live one (storage_check.h);
//   CheckDirectory(dir)         offline scrub of a closed directory,
//                               strictly read-only;
//   CheckLabeling(text)         region labels vs PRIME labels built from
//                               the same document (labeling_check.h).
//
// A Result is non-OK only for environmental failures (unreadable files
// and the like); every data problem — including Corruption-grade damage —
// comes back as findings so one pass reports *all* of it.

#ifndef LAZYXML_CHECK_CHECKER_H_
#define LAZYXML_CHECK_CHECKER_H_

#include <string>
#include <string_view>

#include "check/check_report.h"
#include "check/labeling_check.h"
#include "check/storage_check.h"
#include "common/result.h"
#include "core/lazy_database.h"
#include "storage/durable_database.h"

namespace lazyxml {
namespace check {

struct CheckerOptions {
  /// Knobs for the offline directory scrub / durable cross-check.
  StorageCheckOptions storage;
  /// Knobs for the labeling agreement check.
  LabelingAgreementOptions labeling;
};

class Checker {
 public:
  explicit Checker(CheckerOptions options = {}) : options_(options) {}

  /// Deep in-memory scrub of `db` across every subsystem it composes.
  Result<CheckReport> Check(const LazyDatabase& db) const;

  /// In-memory scrub of the wrapped database plus the WAL/snapshot
  /// cross-consistency check against `db.dir()`.
  Result<CheckReport> Check(const DurableLazyDatabase& db) const;

  /// Offline scrub of a database directory nobody has open.
  Result<CheckReport> CheckDirectory(const std::string& dir) const;

  /// Builds both labeling schemes from `document_text` and verifies
  /// their internal invariants and mutual agreement.
  Result<CheckReport> CheckLabeling(std::string_view document_text) const;

  const CheckerOptions& options() const { return options_; }

 private:
  CheckerOptions options_;
};

}  // namespace check
}  // namespace lazyxml

#endif  // LAZYXML_CHECK_CHECKER_H_
