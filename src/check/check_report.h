// CheckReport: severity-graded findings produced by the consistency
// scrubber (src/check/). Header-only so that lower layers (core) can
// report through it without linking against lazyxml_check.

#ifndef LAZYXML_CHECK_CHECK_REPORT_H_
#define LAZYXML_CHECK_CHECK_REPORT_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace lazyxml {
namespace check {

/// How bad a finding is.
enum class Severity : int {
  kInfo = 0,     ///< Observation; state is still consistent.
  kWarning = 1,  ///< Suspicious but recoverable (e.g. stale superset data).
  kError = 2,    ///< Invariant violated; state is corrupt.
};

inline std::string_view SeverityToString(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "INFO";
    case Severity::kWarning:
      return "WARNING";
    case Severity::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}

/// Sentinel for findings not tied to a particular segment.
inline constexpr std::uint64_t kNoSid = ~static_cast<std::uint64_t>(0);

/// One observation made by a validator.
struct CheckFinding {
  Severity severity = Severity::kInfo;
  /// Which validator family produced this ("btree", "update_log",
  /// "element_index", "tag_list", "labeling", "wal", "snapshot", ...).
  std::string subsystem;
  /// Stable machine-readable code, e.g. "leaf-key-order".
  std::string code;
  /// Human-readable description with concrete values.
  std::string message;
  /// Segment id the finding refers to, or kNoSid.
  std::uint64_t sid = kNoSid;

  std::string ToString() const {
    std::ostringstream os;
    os << SeverityToString(severity) << " [" << subsystem << "/" << code
       << "]";
    if (sid != kNoSid) os << " sid=" << sid;
    if (!message.empty()) os << ": " << message;
    return os.str();
  }
};

/// Accumulated result of a scrub pass. `ok()` means no kError findings;
/// warnings and infos do not fail a check.
class CheckReport {
 public:
  void Add(CheckFinding finding) { findings_.push_back(std::move(finding)); }

  void AddError(std::string subsystem, std::string code, std::string message,
                std::uint64_t sid = kNoSid) {
    Add(CheckFinding{Severity::kError, std::move(subsystem), std::move(code),
                     std::move(message), sid});
  }
  void AddWarning(std::string subsystem, std::string code, std::string message,
                  std::uint64_t sid = kNoSid) {
    Add(CheckFinding{Severity::kWarning, std::move(subsystem), std::move(code),
                     std::move(message), sid});
  }
  void AddInfo(std::string subsystem, std::string code, std::string message,
               std::uint64_t sid = kNoSid) {
    Add(CheckFinding{Severity::kInfo, std::move(subsystem), std::move(code),
                     std::move(message), sid});
  }

  const std::vector<CheckFinding>& findings() const { return findings_; }

  std::size_t CountAtLeast(Severity floor) const {
    std::size_t n = 0;
    for (const CheckFinding& f : findings_) {
      if (static_cast<int>(f.severity) >= static_cast<int>(floor)) ++n;
    }
    return n;
  }
  std::size_t errors() const { return CountAtLeast(Severity::kError); }
  std::size_t warnings() const {
    return CountAtLeast(Severity::kWarning) - errors();
  }

  /// True iff the scrub found no invariant violations.
  bool ok() const { return errors() == 0; }

  /// True iff some finding carries the given validator code.
  bool HasCode(std::string_view code) const {
    for (const CheckFinding& f : findings_) {
      if (f.code == code) return true;
    }
    return false;
  }

  /// True iff some finding's subsystem matches.
  bool HasSubsystem(std::string_view subsystem) const {
    for (const CheckFinding& f : findings_) {
      if (f.subsystem == subsystem) return true;
    }
    return false;
  }

  /// Bookkeeping: how many objects (nodes, records, frames, ...) the scrub
  /// visited and how many distinct checks ran. Purely informational.
  void BumpObjectsScanned(std::size_t n = 1) { objects_scanned_ += n; }
  void BumpChecksRun(std::size_t n = 1) { checks_run_ += n; }
  std::size_t objects_scanned() const { return objects_scanned_; }
  std::size_t checks_run() const { return checks_run_; }

  /// Appends another report's findings and counters into this one.
  void Merge(CheckReport other) {
    for (CheckFinding& f : other.findings_) findings_.push_back(std::move(f));
    objects_scanned_ += other.objects_scanned_;
    checks_run_ += other.checks_run_;
  }

  /// Multi-line human-readable dump.
  std::string ToString() const {
    std::ostringstream os;
    os << "CheckReport: " << findings_.size() << " finding(s), " << errors()
       << " error(s), scanned " << objects_scanned_ << " object(s)\n";
    for (const CheckFinding& f : findings_) {
      os << "  " << f.ToString() << "\n";
    }
    return os.str();
  }

  /// Machine-readable JSON dump (used by the salvage damage report and CI).
  std::string ToJson() const {
    std::ostringstream os;
    os << "{\"ok\":" << (ok() ? "true" : "false")
       << ",\"errors\":" << errors() << ",\"warnings\":" << warnings()
       << ",\"objects_scanned\":" << objects_scanned_
       << ",\"checks_run\":" << checks_run_ << ",\"findings\":[";
    for (std::size_t i = 0; i < findings_.size(); ++i) {
      const CheckFinding& f = findings_[i];
      if (i > 0) os << ",";
      os << "{\"severity\":\"" << SeverityToString(f.severity)
         << "\",\"subsystem\":\"" << JsonEscape(f.subsystem)
         << "\",\"code\":\"" << JsonEscape(f.code) << "\",\"message\":\""
         << JsonEscape(f.message) << "\"";
      if (f.sid != kNoSid) os << ",\"sid\":" << f.sid;
      os << "}";
    }
    os << "]}";
    return os.str();
  }

  /// OK when clean; Corruption carrying the first error otherwise.
  Status ToStatus() const {
    for (const CheckFinding& f : findings_) {
      if (f.severity == Severity::kError) {
        return Status::Corruption(f.ToString());
      }
    }
    return Status::OK();
  }

 private:
  static std::string JsonEscape(std::string_view in) {
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        case '\r':
          out += "\\r";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            static const char kHex[] = "0123456789abcdef";
            out += "\\u00";
            out += kHex[(c >> 4) & 0xf];
            out += kHex[c & 0xf];
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  std::vector<CheckFinding> findings_;
  std::size_t objects_scanned_ = 0;
  std::size_t checks_run_ = 0;
};

}  // namespace check
}  // namespace lazyxml

#endif  // LAZYXML_CHECK_CHECK_REPORT_H_
