#include "check/checker.h"

#include "check/database_check.h"
#include "obs/metrics.h"

namespace lazyxml {
namespace check {

namespace {

// Scrub passes are rare and heavyweight; counting runs and findings lets
// a deployment alert on "scrubber started finding things".
void RecordScrub(const Result<CheckReport>& report) {
  LAZYXML_METRIC_COUNTER(runs_counter, "check.runs");
  LAZYXML_METRIC_COUNTER(findings_counter, "check.findings");
  LAZYXML_METRIC_COUNTER(errors_counter, "check.error_findings");
  runs_counter.Increment();
  if (!report.ok()) return;
  findings_counter.Add(report.ValueOrDie().findings().size());
  if (!report.ValueOrDie().ok()) errors_counter.Increment();
}

}  // namespace

Result<CheckReport> Checker::Check(const LazyDatabase& db) const {
  Result<CheckReport> report = CheckDatabase(db);
  RecordScrub(report);
  return report;
}

Result<CheckReport> Checker::Check(const DurableLazyDatabase& db) const {
  auto run = [&]() -> Result<CheckReport> {
    LAZYXML_ASSIGN_OR_RETURN(CheckReport report, CheckDatabase(db.database()));
    LAZYXML_ASSIGN_OR_RETURN(CheckReport storage, CheckDurableDatabase(db));
    report.Merge(storage);
    return report;
  };
  Result<CheckReport> report = run();
  RecordScrub(report);
  return report;
}

Result<CheckReport> Checker::CheckDirectory(const std::string& dir) const {
  Result<CheckReport> report = CheckDatabaseDirectory(dir, options_.storage);
  RecordScrub(report);
  return report;
}

Result<CheckReport> Checker::CheckLabeling(
    std::string_view document_text) const {
  return CheckLabelingAgreement(document_text, options_.labeling);
}

}  // namespace check
}  // namespace lazyxml
