#include "check/checker.h"

#include "check/database_check.h"

namespace lazyxml {
namespace check {

Result<CheckReport> Checker::Check(const LazyDatabase& db) const {
  return CheckDatabase(db);
}

Result<CheckReport> Checker::Check(const DurableLazyDatabase& db) const {
  LAZYXML_ASSIGN_OR_RETURN(CheckReport report, CheckDatabase(db.database()));
  LAZYXML_ASSIGN_OR_RETURN(CheckReport storage, CheckDurableDatabase(db));
  report.Merge(storage);
  return report;
}

Result<CheckReport> Checker::CheckDirectory(const std::string& dir) const {
  return CheckDatabaseDirectory(dir, options_.storage);
}

Result<CheckReport> Checker::CheckLabeling(
    std::string_view document_text) const {
  return CheckLabelingAgreement(document_text, options_.labeling);
}

}  // namespace check
}  // namespace lazyxml
