// Deep B+-tree structural validation for the consistency scrubber.
//
// Grades every node rather than stopping at the first violation, so a
// damage report can describe the full extent of a corrupted index:
//   - per-node occupancy (underflow / overflow) and fanout arity,
//   - leaf-chain key ordering via the public iterator,
//   - record count agreement between the chain and size(),
//   - the tree's own CheckInvariants() (separator bounds) as a backstop.
//
// Header-only template so it works for both concrete trees in the system
// (the element index and the SB-tree) without a link dependency.

#ifndef LAZYXML_CHECK_BTREE_CHECK_H_
#define LAZYXML_CHECK_BTREE_CHECK_H_

#include <sstream>
#include <string>

#include "btree/btree.h"
#include "check/check_report.h"

namespace lazyxml {
namespace check {

/// Grades one node's shape (arity, occupancy); reusable by surfaces that
/// expose only a BTreeNodeInfo walk (ElementIndex, UpdateLog SB-tree).
inline void GradeBTreeNode(const BTreeNodeInfo& n, std::string_view label,
                           CheckReport* report) {
  const std::string prefix = std::string(label) + ": ";
  report->BumpObjectsScanned();
  if (n.is_leaf) {
    if (n.values != n.keys) {
      std::ostringstream os;
      os << prefix << "leaf at depth " << n.depth << " holds " << n.keys
         << " keys but " << n.values << " values";
      report->AddError("btree", "leaf-arity", os.str());
    }
  } else {
    if (n.children != n.keys + 1) {
      std::ostringstream os;
      os << prefix << "internal node at depth " << n.depth << " holds "
         << n.keys << " keys but " << n.children << " children";
      report->AddError("btree", "internal-arity", os.str());
    }
  }
  if (n.underflow) {
    std::ostringstream os;
    os << prefix << (n.is_leaf ? "leaf" : "internal node") << " at depth "
       << n.depth << " underflows (" << (n.is_leaf ? n.keys : n.children)
       << " entries)";
    report->AddError("btree", "node-underflow", os.str());
  }
  if (n.overflow) {
    std::ostringstream os;
    os << prefix << (n.is_leaf ? "leaf" : "internal node") << " at depth "
       << n.depth << " overflows (" << (n.is_leaf ? n.keys : n.children)
       << " entries)";
    report->AddError("btree", "node-overflow", os.str());
  }
}

/// Scrubs one B+-tree; findings land in `report` under subsystem
/// "btree" with `label` prefixed to messages ("element-index", "sb-tree").
template <typename Key, typename Value, typename Compare>
void CheckBTree(const BTree<Key, Value, Compare>& tree, std::string_view label,
                CheckReport* report) {
  const std::string prefix = std::string(label) + ": ";

  // Per-node shape audit.
  tree.VisitNodes([&](const BTreeNodeInfo& n) {
    GradeBTreeNode(n, label, report);
    return true;
  });
  report->BumpChecksRun();

  // Leaf chain: keys strictly ascending end to end, count == size().
  const Compare& cmp = tree.key_comp();
  std::size_t chained = 0;
  const Key* prev = nullptr;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    if (prev != nullptr && !cmp(*prev, it.key())) {
      std::ostringstream os;
      os << prefix << "leaf chain keys out of order at record " << chained;
      report->AddError("btree", "leaf-key-order", os.str());
    }
    prev = &it.key();
    ++chained;
    if (chained > tree.size() + 1) break;  // chain cycle guard
  }
  if (chained != tree.size()) {
    std::ostringstream os;
    os << prefix << "leaf chain yields " << chained << " records but size() is "
       << tree.size();
    report->AddError("btree", "leaf-chain-count", os.str());
  }
  report->BumpChecksRun();

  // Backstop: the tree's own recursive invariant check (covers separator
  // bounds the shape walk cannot see).
  Status own = tree.CheckInvariants();
  if (!own.ok()) {
    report->AddError("btree", "self-check", prefix + own.ToString());
  }
  report->BumpChecksRun();
}

}  // namespace check
}  // namespace lazyxml

#endif  // LAZYXML_CHECK_BTREE_CHECK_H_
