// Deep cross-structure consistency scrub of a LazyDatabase: ER-tree
// geometry, SB-tree agreement, element-index ↔ update-log ↔ tag-list ↔
// tag-dictionary agreement, interval nesting, and nesting-summary
// coverage. This is the in-memory half of the scrubber; the on-disk half
// (WAL/snapshot cross-consistency) lives in check/storage_check.h.
//
// Header-only on purpose: LazyDatabase::CheckInvariants() delegates here,
// and core must not link against lazyxml_check (which depends on core).

#ifndef LAZYXML_CHECK_DATABASE_CHECK_H_
#define LAZYXML_CHECK_DATABASE_CHECK_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "check/btree_check.h"
#include "check/check_report.h"
#include "core/lazy_database.h"

namespace lazyxml {
namespace check {

namespace internal {

/// Walks the ER-tree from the dummy root, grading per-node geometry.
/// Returns the set of reachable sids.
inline std::set<SegmentId> CheckErTree(const UpdateLog& log,
                                       CheckReport* report) {
  std::set<SegmentId> reachable;
  const SegmentNode* root = log.root();
  if (root == nullptr) {
    report->AddError("update_log", "missing-root", "dummy root is null");
    return reachable;
  }
  if (root->sid != kRootSegmentId) {
    std::ostringstream os;
    os << "dummy root carries sid " << root->sid;
    report->AddError("update_log", "root-sid", os.str(), root->sid);
  }
  if (root->parent != nullptr) {
    report->AddError("update_log", "root-parent", "dummy root has a parent",
                     root->sid);
  }

  std::vector<const SegmentNode*> work{root};
  while (!work.empty()) {
    const SegmentNode* n = work.back();
    work.pop_back();
    report->BumpObjectsScanned();
    if (!reachable.insert(n->sid).second) {
      std::ostringstream os;
      os << "segment " << n->sid << " appears twice in the ER-tree";
      report->AddError("update_log", "duplicate-sid", os.str(), n->sid);
      continue;  // do not re-walk a shared subtree
    }
    // Gaps: disjoint, ascending, strictly ordered (AddGap merges
    // adjacent intervals, so touching gaps mean a missed merge).
    for (size_t i = 0; i < n->gaps.size(); ++i) {
      if (n->gaps[i].begin >= n->gaps[i].end) {
        std::ostringstream os;
        os << "segment " << n->sid << " gap " << i << " is empty or inverted ["
           << n->gaps[i].begin << ", " << n->gaps[i].end << ")";
        report->AddError("update_log", "gap-empty", os.str(), n->sid);
      }
      if (i > 0 && n->gaps[i - 1].end >= n->gaps[i].begin) {
        std::ostringstream os;
        os << "segment " << n->sid << " gaps " << (i - 1) << " and " << i
           << " overlap or touch";
        report->AddError("update_log", "gap-overlap", os.str(), n->sid);
      }
    }
    // distinct_tags ascending and unique.
    for (size_t i = 1; i < n->distinct_tags.size(); ++i) {
      if (n->distinct_tags[i - 1] >= n->distinct_tags[i]) {
        std::ostringstream os;
        os << "segment " << n->sid << " distinct_tags not strictly ascending";
        report->AddError("update_log", "distinct-tags-order", os.str(),
                         n->sid);
        break;
      }
    }
    // Children: parent links, position order, containment, disjointness,
    // monotone frozen positions, level monotonicity.
    const SegmentNode* prev = nullptr;
    for (const SegmentNode* c : n->children) {
      if (c == nullptr) {
        report->AddError("update_log", "null-child",
                         "null child pointer", n->sid);
        continue;
      }
      if (c->parent != n) {
        std::ostringstream os;
        os << "segment " << c->sid << " parent link does not point at "
           << n->sid;
        report->AddError("update_log", "parent-link", os.str(), c->sid);
      }
      if (!(n->gp <= c->gp && c->end() <= n->end())) {
        std::ostringstream os;
        os << "child " << c->sid << " [" << c->gp << ", " << c->end()
           << ") escapes parent " << n->sid << " [" << n->gp << ", "
           << n->end() << ")";
        report->AddError("update_log", "child-escapes-parent", os.str(),
                         c->sid);
      }
      if (prev != nullptr) {
        if (prev->end() > c->gp) {
          std::ostringstream os;
          os << "children " << prev->sid << " and " << c->sid
             << " of segment " << n->sid << " overlap globally";
          report->AddError("update_log", "sibling-overlap", os.str(), n->sid);
        }
        if (prev->lp > c->lp) {
          std::ostringstream os;
          os << "children " << prev->sid << " and " << c->sid
             << " of segment " << n->sid << " have decreasing frozen lp";
          report->AddError("update_log", "sibling-lp-order", os.str(),
                           n->sid);
        }
      }
      if (c->base_level < n->base_level) {
        std::ostringstream os;
        os << "child " << c->sid << " base_level " << c->base_level
           << " below parent " << n->sid << " base_level " << n->base_level;
        report->AddError("update_log", "base-level-order", os.str(), c->sid);
      }
      prev = c;
      work.push_back(c);
    }
  }
  report->BumpChecksRun();
  return reachable;
}

}  // namespace internal

/// Deep scrub of the in-memory database state. Never fails as a Result —
/// inconsistencies are findings, not statuses — but keeps the Result
/// signature so callers compose with the rest of the no-exception API.
inline Result<CheckReport> CheckDatabase(const LazyDatabase& db) {
  CheckReport report;
  const UpdateLog& log = db.update_log();
  const ElementIndex& index = db.element_index();
  const TagDict& dict = db.tag_dict();

  // ---- (b1) ER-tree geometry + reachability ------------------------------
  const std::set<SegmentId> reachable = internal::CheckErTree(log, &report);
  std::size_t registered = 0;
  log.ForEachSegment([&](const SegmentNode& n) {
    ++registered;
    if (reachable.count(n.sid) == 0) {
      std::ostringstream os;
      os << "segment " << n.sid << " is registered but unreachable from the"
         << " dummy root";
      report.AddError("update_log", "unreachable-segment", os.str(), n.sid);
    }
    return true;
  });
  if (registered < reachable.size()) {
    report.AddError("update_log", "phantom-segment",
                    "ER-tree reaches a segment missing from the registry");
  }
  report.BumpChecksRun();

  // ---- (b2) SB-tree agreement (only meaningful once frozen) --------------
  if (log.frozen()) {
    log.VisitSbTreeNodes([&](const BTreeNodeInfo& n) {
      GradeBTreeNode(n, "sb-tree", &report);
      return true;
    });
    for (SegmentId sid : reachable) {
      if (sid == kRootSegmentId) continue;  // root lives outside the tree
      auto found = log.FindSegment(sid);
      if (!found.ok() || found.ValueOrDie() == nullptr ||
          found.ValueOrDie()->sid != sid) {
        std::ostringstream os;
        os << "SB-tree lookup of live segment " << sid << " failed";
        report.AddError("update_log", "sb-tree-miss", os.str(), sid);
      }
    }
    report.BumpChecksRun();
  }

  // ---- Update-log self check (length accounting backstop) ----------------
  {
    Status own = log.CheckInvariants();
    if (!own.ok()) {
      report.AddError("update_log", "self-check", own.ToString());
    }
    report.BumpChecksRun();
  }

  // ---- (a) element-index B+-tree shape + self check ----------------------
  index.VisitTreeNodes([&](const BTreeNodeInfo& n) {
    GradeBTreeNode(n, "element-index", &report);
    return true;
  });
  {
    Status own = index.CheckInvariants();
    if (!own.ok()) {
      report.AddError("element_index", "self-check", own.ToString());
    }
    report.BumpChecksRun();
  }

  // ---- (b3) element records vs segments ----------------------------------
  // Group per segment for nesting and summary checks; tally per (tid,sid)
  // for the tag-list cross-check.
  struct Interval {
    uint64_t start, end;
    uint32_t level;
  };
  std::map<SegmentId, std::vector<Interval>> by_sid;
  std::map<std::pair<TagId, SegmentId>, uint64_t> index_counts;
  std::map<SegmentId, std::set<TagId>> live_tags;
  index.ForEachRecord([&](const ElementIndexRecord& r) {
    report.BumpObjectsScanned();
    if (r.tid >= dict.size()) {
      std::ostringstream os;
      os << "record (tid=" << r.tid << ", sid=" << r.sid << ", start="
         << r.start << ") references an uninterned tag";
      report.AddError("element_index", "dangling-tid", os.str(), r.sid);
    }
    if (r.end <= r.start) {
      std::ostringstream os;
      os << "record (tid=" << r.tid << ", sid=" << r.sid << ") has empty or"
         << " inverted interval [" << r.start << ", " << r.end << ")";
      report.AddError("element_index", "empty-interval", os.str(), r.sid);
    }
    const SegmentNode* node = log.NodeOf(r.sid);
    if (node == nullptr) {
      std::ostringstream os;
      os << "record (tid=" << r.tid << ", start=" << r.start
         << ") references dead segment " << r.sid;
      report.AddError("element_index", "dangling-sid", os.str(), r.sid);
      return true;
    }
    if (r.level <= node->base_level) {
      std::ostringstream os;
      os << "record (tid=" << r.tid << ", sid=" << r.sid << ", start="
         << r.start << ") level " << r.level
         << " not below its segment's splice depth " << node->base_level;
      report.AddError("element_index", "level-below-base", os.str(), r.sid);
    }
    by_sid[r.sid].push_back(Interval{r.start, r.end, r.level});
    ++index_counts[{r.tid, r.sid}];
    live_tags[r.sid].insert(r.tid);
    return true;
  });

  for (auto& [sid, intervals] : by_sid) {
    const SegmentNode* node = log.NodeOf(sid);
    if (node == nullptr) continue;  // already reported
    // Laminar nesting: sorted by (start asc, end desc), a stack walk must
    // never see a partial overlap.
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval& a, const Interval& b) {
                if (a.start != b.start) return a.start < b.start;
                return a.end > b.end;
              });
    std::vector<const Interval*> stack;
    bool overlap_reported = false;
    for (const Interval& iv : intervals) {
      while (!stack.empty() && stack.back()->end <= iv.start) {
        stack.pop_back();
      }
      if (!stack.empty() && stack.back()->end < iv.end &&
          !overlap_reported) {
        std::ostringstream os;
        os << "records [" << stack.back()->start << ", " << stack.back()->end
           << ") and [" << iv.start << ", " << iv.end
           << ") partially overlap in segment " << sid;
        report.AddError("element_index", "interval-overlap", os.str(), sid);
        overlap_reported = true;  // one finding per segment is enough
      }
      stack.push_back(&iv);
    }
    // Every live record must appear verbatim in the segment's nesting
    // summary (the summary may keep stale extra entries for removed
    // elements; that is by design and not a finding).
    std::set<std::tuple<uint64_t, uint64_t, uint32_t>> summary_set;
    for (const NestingEntry& e : node->summary) {
      summary_set.insert({e.start, e.end, e.level});
    }
    for (const Interval& iv : intervals) {
      if (summary_set.count({iv.start, iv.end, iv.level}) == 0) {
        std::ostringstream os;
        os << "record [" << iv.start << ", " << iv.end << ") level "
           << iv.level << " of segment " << sid
           << " is missing from the nesting summary";
        report.AddError("element_index", "summary-miss", os.str(), sid);
      }
    }
  }
  report.BumpChecksRun();

  // ---- distinct_tags coverage -------------------------------------------
  for (const auto& [sid, tags] : live_tags) {
    const SegmentNode* node = log.NodeOf(sid);
    if (node == nullptr) continue;
    for (TagId tid : tags) {
      if (!std::binary_search(node->distinct_tags.begin(),
                              node->distinct_tags.end(), tid)) {
        std::ostringstream os;
        os << "segment " << sid << " has live records of tag " << tid
           << " not listed in distinct_tags";
        report.AddError("update_log", "distinct-tags-miss", os.str(), sid);
      }
    }
    // Stale extra tags after partial removals are by-design laziness.
    if (node->distinct_tags.size() > tags.size()) {
      std::ostringstream os;
      os << "segment " << sid << " distinct_tags holds "
         << (node->distinct_tags.size() - tags.size())
         << " stale tag(s) with no live records";
      report.AddInfo("update_log", "distinct-tags-stale", os.str(), sid);
    }
  }
  report.BumpChecksRun();

  // ---- (b4) tag-list ↔ element-index agreement ---------------------------
  std::map<std::pair<TagId, SegmentId>, uint64_t> list_counts;
  log.tag_list().ForEachEntry([&](TagId tid, const TagListEntry& e) {
    report.BumpObjectsScanned();
    if (e.path.empty()) {
      report.AddError("tag_list", "empty-path", "entry with empty path");
      return true;
    }
    const SegmentId sid = e.sid();
    list_counts[{tid, sid}] += e.count;
    const SegmentNode* node = log.NodeOf(sid);
    if (node == nullptr) {
      std::ostringstream os;
      os << "entry for tag " << tid << " references dead segment " << sid;
      report.AddError("tag_list", "dead-segment", os.str(), sid);
      return true;
    }
    if (e.path.front() != kRootSegmentId) {
      std::ostringstream os;
      os << "path of entry (tag " << tid << ", segment " << sid
         << ") does not start at the dummy root";
      report.AddError("tag_list", "path-root", os.str(), sid);
    }
    const SegmentNode* walk = node;
    for (size_t i = e.path.size(); i-- > 0;) {
      if (walk == nullptr || walk->sid != e.path[i]) {
        std::ostringstream os;
        os << "path of entry (tag " << tid << ", segment " << sid
           << ") does not match the live parent chain";
        report.AddError("tag_list", "path-chain", os.str(), sid);
        break;
      }
      walk = walk->parent;
    }
    if (e.count == 0) {
      std::ostringstream os;
      os << "entry (tag " << tid << ", segment " << sid
         << ") has zero occurrences but was not erased";
      report.AddError("tag_list", "zero-count", os.str(), sid);
    }
    return true;
  });
  for (const auto& [key, count] : list_counts) {
    auto it = index_counts.find(key);
    const uint64_t indexed = it == index_counts.end() ? 0 : it->second;
    if (indexed != count) {
      std::ostringstream os;
      os << "tag-list holds " << count << " occurrence(s) of tag "
         << key.first << " in segment " << key.second
         << " but the element index holds " << indexed;
      report.AddError("tag_list", "count-mismatch", os.str(), key.second);
    }
  }
  for (const auto& [key, count] : index_counts) {
    if (list_counts.find(key) == list_counts.end()) {
      std::ostringstream os;
      os << "element index holds " << count << " record(s) of tag "
         << key.first << " in segment " << key.second
         << " with no tag-list entry";
      report.AddError("tag_list", "entry-miss", os.str(), key.second);
    }
  }
  report.BumpChecksRun();

  // ---- (b5) compact index ↔ element index (invariant I-COMPACT) ----------
  // When a succinct frozen index is installed for the current epoch, its
  // decoded lists must be record-for-record equal to the B+-tree — that
  // equality is what makes compact-scan joins byte-identical to tree-scan
  // joins (docs/COMPACT_INDEX.md).
  if (const CompactElementIndex* compact = db.compact_index()) {
    uint64_t lists_seen = 0;
    compact->ForEachList([&](TagId tid, SegmentId sid,
                             const CompactTagScan& scan) {
      report.BumpObjectsScanned();
      ++lists_seen;
      if (index_counts.find({tid, sid}) == index_counts.end()) {
        std::ostringstream os;
        os << "compact list (tag " << tid << ", segment " << sid
           << ") has no element-index records";
        report.AddError("compact_index", "phantom-list", os.str(), sid);
        return true;
      }
      std::vector<LocalElement> decoded;
      Status st = scan.DecodeAll(&decoded);
      if (!st.ok()) {
        std::ostringstream os;
        os << "compact list (tag " << tid << ", segment " << sid
           << ") fails to decode: " << st.ToString();
        report.AddError("compact_index", "decode-failure", os.str(), sid);
        return true;
      }
      const std::vector<LocalElement> tree = index.GetElements(tid, sid);
      if (decoded.size() != tree.size()) {
        std::ostringstream os;
        os << "compact list (tag " << tid << ", segment " << sid
           << ") decodes " << decoded.size() << " record(s) but the element"
           << " index holds " << tree.size();
        report.AddError("compact_index", "record-mismatch", os.str(), sid);
        return true;
      }
      for (size_t i = 0; i < decoded.size(); ++i) {
        if (decoded[i].start != tree[i].start ||
            decoded[i].end != tree[i].end ||
            decoded[i].level != tree[i].level) {
          std::ostringstream os;
          os << "compact list (tag " << tid << ", segment " << sid
             << ") record " << i << " decodes to [" << decoded[i].start
             << ", " << decoded[i].end << ") level " << decoded[i].level
             << " but the element index holds [" << tree[i].start << ", "
             << tree[i].end << ") level " << tree[i].level;
          report.AddError("compact_index", "record-mismatch", os.str(), sid);
          break;  // one finding per list is enough
        }
      }
      return true;
    });
    for (const auto& [key, count] : index_counts) {
      if (compact->GetList(key.first, key.second) == nullptr) {
        std::ostringstream os;
        os << "element index holds " << count << " record(s) of tag "
           << key.first << " in segment " << key.second
           << " with no compact list";
        report.AddError("compact_index", "list-miss", os.str(), key.second);
      }
    }
    if (compact->total_records() != index.size()) {
      std::ostringstream os;
      os << "compact index declares " << compact->total_records()
         << " record(s) but the element index holds " << index.size();
      report.AddError("compact_index", "count-mismatch", os.str());
    }
    if (compact->num_lists() != lists_seen) {
      std::ostringstream os;
      os << "compact index declares " << compact->num_lists()
         << " list(s) but enumerates " << lists_seen;
      report.AddError("compact_index", "count-mismatch", os.str());
    }
    report.BumpChecksRun();
  }

  // ---- (b6) path summary ↔ live structure (invariant I-SUMMARY) ----------
  // When a summary is installed for the current epoch, its canonical form
  // (every node's root path, element count, and per-segment breakdown)
  // must equal one rebuilt from scratch against the live update log and
  // element index — that equality is what makes summary-pruned joins
  // byte-identical to unpruned ones (docs/PATH_SUMMARY.md).
  if (const PathSummary* summary = db.path_summary()) {
    auto rebuilt = LazyDatabase::BuildPathSummary(db.update_log(), index);
    if (!rebuilt.ok()) {
      report.AddError("path_summary", "rebuild-failure",
                      "summary rebuild failed: " +
                          rebuilt.status().ToString());
    } else {
      const std::vector<std::string> live = summary->CanonicalLines();
      const std::vector<std::string> want =
          rebuilt.ValueOrDie()->CanonicalLines();
      report.BumpObjectsScanned();
      if (live != want) {
        std::set<std::string> live_set(live.begin(), live.end());
        std::set<std::string> want_set(want.begin(), want.end());
        for (const std::string& line : live) {
          if (want_set.find(line) == want_set.end()) {
            report.AddError("path_summary", "phantom-path",
                            "summary holds '" + line +
                                "' absent from a fresh rebuild");
          }
        }
        for (const std::string& line : want) {
          if (live_set.find(line) == live_set.end()) {
            report.AddError("path_summary", "missing-path",
                            "fresh rebuild holds '" + line +
                                "' absent from the summary");
          }
        }
        if (live_set == want_set) {
          report.AddError("path_summary", "order-mismatch",
                          "summary canonical lines are mis-ordered");
        }
      }
    }
    report.BumpChecksRun();
  }

  // ---- (b7) MVCC version store (invariant I-MVCC) ------------------------
  // Retired pre-image chains must ascend strictly by retire epoch, hold no
  // version that no open view can reach, and every cached snapshot must be
  // pinned by a live view (docs/MVCC.md).
  {
    Status mvcc = db.mvcc().CheckInvariants();
    if (!mvcc.ok()) {
      report.AddError("mvcc", "self-check", mvcc.ToString());
    }
    report.BumpChecksRun();
  }

  return report;
}

}  // namespace check
}  // namespace lazyxml

#endif  // LAZYXML_CHECK_DATABASE_CHECK_H_
