#include "check/labeling_check.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "check/btree_check.h"

namespace lazyxml {
namespace check {

void CheckRelabelingIndex(const RelabelingIndex& index, CheckReport* report) {
  index.VisitTreeNodes([&](const BTreeNodeInfo& n) {
    GradeBTreeNode(n, "relabeling-index", report);
    return true;
  });
  {
    Status own = index.CheckInvariants();
    if (!own.ok()) {
      report->AddError("labeling", "relabeling-self-check", own.ToString());
    }
  }

  // Collect every region label across all tags and sort into document
  // order; regions must be non-empty, inside the document, and laminar.
  struct Region {
    uint64_t start, end;
    uint32_t level;
  };
  std::vector<Region> regions;
  regions.reserve(index.size());
  const uint64_t doc_len = index.document_length();
  index.ForEachElement([&](const RelabeledElement& e) {
    report->BumpObjectsScanned();
    if (e.end <= e.start) {
      std::ostringstream os;
      os << "region [" << e.start << ", " << e.end << ") of tag " << e.tid
         << " is empty or inverted";
      report->AddError("labeling", "region-empty", os.str());
    }
    if (e.end > doc_len) {
      std::ostringstream os;
      os << "region [" << e.start << ", " << e.end
         << ") escapes the document (length " << doc_len << ")";
      report->AddError("labeling", "region-out-of-bounds", os.str());
    }
    if (e.level == 0) {
      std::ostringstream os;
      os << "region starting at " << e.start << " has level 0";
      report->AddError("labeling", "region-level-zero", os.str());
    }
    regions.push_back(Region{e.start, e.end, e.level});
    return true;
  });
  std::sort(regions.begin(), regions.end(),
            [](const Region& a, const Region& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.end > b.end;
            });
  // Stack walk: containment must be laminar and levels must follow the
  // nesting depth (+1 per enclosing region relative to its parent).
  std::vector<const Region*> stack;
  for (const Region& r : regions) {
    while (!stack.empty() && stack.back()->end <= r.start) stack.pop_back();
    if (!stack.empty()) {
      if (stack.back()->end < r.end) {
        std::ostringstream os;
        os << "regions [" << stack.back()->start << ", " << stack.back()->end
           << ") and [" << r.start << ", " << r.end << ") partially overlap";
        report->AddError("labeling", "region-overlap", os.str());
      }
      if (r.level != stack.back()->level + 1) {
        std::ostringstream os;
        os << "region [" << r.start << ", " << r.end << ") has level "
           << r.level << " under a parent of level " << stack.back()->level;
        report->AddError("labeling", "region-level-gap", os.str());
      }
    }
    stack.push_back(&r);
  }
  report->BumpChecksRun();
}

void CheckPrimeLabeling(const PrimeLabeling& prime, CheckReport* report) {
  report->BumpObjectsScanned(prime.num_nodes());
  Status own = prime.CheckInvariants();
  if (!own.ok()) {
    report->AddError("labeling", "prime-self-check", own.ToString());
  }
  report->BumpChecksRun();
}

Result<CheckReport> CheckLabelingAgreement(
    std::string_view document_text, const LabelingAgreementOptions& options) {
  CheckReport report;

  RelabelingIndex regions;
  LAZYXML_RETURN_NOT_OK(regions.BuildFromDocument(document_text));
  PrimeLabeling prime;
  LAZYXML_RETURN_NOT_OK(prime.BuildFromDocument(document_text));

  CheckRelabelingIndex(regions, &report);
  CheckPrimeLabeling(prime, &report);

  // Region labels in document (preorder) order. Starts are unique — each
  // element begins at its own '<' — so (start asc, end desc) is preorder.
  struct Region {
    uint64_t start, end;
    uint32_t level;
    TagId tid;
  };
  std::vector<Region> docorder;
  docorder.reserve(regions.size());
  regions.ForEachElement([&](const RelabeledElement& e) {
    docorder.push_back(Region{e.start, e.end, e.level, e.tid});
    return true;
  });
  std::sort(docorder.begin(), docorder.end(),
            [](const Region& a, const Region& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.end > b.end;
            });

  if (docorder.size() != prime.num_nodes()) {
    std::ostringstream os;
    os << "region index holds " << docorder.size()
       << " elements but PRIME labeled " << prime.num_nodes();
    report.AddError("labeling", "node-count-mismatch", os.str());
    return report;  // positional mapping below would be meaningless
  }

  // PRIME's BuildFromDocument numbers nodes in document preorder, so node
  // i corresponds to docorder[i]. Verify names, parents, order, ancestry.
  const TagDict& dict = regions.tag_dict();
  std::vector<std::size_t> parent_of(docorder.size(), docorder.size());
  {
    std::vector<std::size_t> stack;
    for (std::size_t i = 0; i < docorder.size(); ++i) {
      while (!stack.empty() &&
             docorder[stack.back()].end <= docorder[i].start) {
        stack.pop_back();
      }
      if (!stack.empty()) parent_of[i] = stack.back();
      stack.push_back(i);
    }
  }
  for (std::size_t i = 0; i < docorder.size(); ++i) {
    report.BumpObjectsScanned();
    auto name = prime.NodeName(i);
    if (!name.ok() || name.ValueOrDie() != dict.Name(docorder[i].tid)) {
      std::ostringstream os;
      os << "element " << i << " is <" << dict.Name(docorder[i].tid)
         << "> in the region index but <"
         << (name.ok() ? name.ValueOrDie() : "?") << "> in PRIME";
      report.AddError("labeling", "name-mismatch", os.str());
    }
    auto parent = prime.Parent(i);
    const bool region_has_parent = parent_of[i] != docorder.size();
    if (!parent.ok()) {
      report.AddError("labeling", "parent-miss",
                      "PRIME parent lookup failed");
    } else if (region_has_parent !=
               (parent.ValueOrDie() != PrimeLabeling::kNoNode)) {
      std::ostringstream os;
      os << "element " << i << " root-ness differs between schemes";
      report.AddError("labeling", "parent-mismatch", os.str());
    } else if (region_has_parent && parent.ValueOrDie() != parent_of[i]) {
      std::ostringstream os;
      os << "element " << i << " has parent " << parent_of[i]
         << " by region nesting but " << parent.ValueOrDie() << " in PRIME";
      report.AddError("labeling", "parent-mismatch", os.str());
    }
  }
  report.BumpChecksRun();

  // Pairwise ancestry + document order, deterministically sampled.
  const std::size_t n = docorder.size();
  const std::size_t total_pairs = n * (n - 1) / 2;
  std::size_t stride = 1;
  if (options.max_pairs > 0 && total_pairs > options.max_pairs) {
    stride = (total_pairs + options.max_pairs - 1) / options.max_pairs;
  }
  std::size_t pair_index = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j, ++pair_index) {
      if (pair_index % stride != 0) continue;
      const bool region_anc = docorder[i].start < docorder[j].start &&
                              docorder[i].end > docorder[j].end;
      auto prime_anc = prime.IsAncestor(i, j);
      if (!prime_anc.ok() || prime_anc.ValueOrDie() != region_anc) {
        std::ostringstream os;
        os << "elements " << i << " and " << j << ": region containment says "
           << (region_anc ? "ancestor" : "not ancestor")
           << " but PRIME divisibility says "
           << (prime_anc.ok() ? (prime_anc.ValueOrDie() ? "ancestor"
                                                        : "not ancestor")
                              : "error");
        report.AddError("labeling", "ancestry-mismatch", os.str());
      }
      // i precedes j in document order by construction; the SC machinery
      // must agree (this exercises CRT values, ranks and group seqs).
      auto prec = prime.Precedes(i, j);
      if (!prec.ok() || !prec.ValueOrDie()) {
        std::ostringstream os;
        os << "PRIME order places element " << j << " before " << i;
        report.AddError("labeling", "order-mismatch", os.str());
      }
    }
  }
  report.BumpChecksRun();

  return report;
}

}  // namespace check
}  // namespace lazyxml
