// Storage invariants for the consistency scrubber: offline scrub of a
// database directory (snapshot loadability, WAL chain contiguity, frame
// integrity, replay convergence) and the WAL/snapshot cross-consistency
// check — recovering the on-disk state into a scratch database must
// reproduce the live in-memory database exactly.
//
// Unlike storage/recovery.h (which truncates torn tails on disk) and
// storage/salvage.h (which quarantines damage), everything here is
// strictly read-only: a scrub never modifies the directory it inspects.

#ifndef LAZYXML_CHECK_STORAGE_CHECK_H_
#define LAZYXML_CHECK_STORAGE_CHECK_H_

#include <string>

#include "check/check_report.h"
#include "common/result.h"
#include "core/lazy_database.h"
#include "storage/durable_database.h"

namespace lazyxml {
namespace check {

/// Knobs for the offline directory scrub.
struct StorageCheckOptions {
  /// Tuning for the scratch replay database; the maintenance mode of an
  /// existing directory comes from its snapshot.
  LazyDatabaseOptions db;
  /// Also run the full in-memory scrub (CheckDatabase) on the state the
  /// directory replays into.
  bool deep_check_replayed_state = true;
};

/// Reports every way two databases' logical states differ (ER-tree
/// geometry, element records, tag dictionary, tag-list, sid counter).
/// Used by the WAL/snapshot cross-check with `expected` = the state
/// recovered from disk and `actual` = the live database; exposed for
/// tests. Purely observational.
void CompareDatabaseStates(const LazyDatabase& expected,
                           const LazyDatabase& actual, CheckReport* report);

/// Offline scrub of database directory `dir` without modifying it:
///  - file inventory (unknown files, leftover temp files, quarantine),
///  - every snapshot must deserialize; the newest one anchors replay,
///  - the WAL segment chain after the anchor must be contiguous,
///  - every frame must decode (a torn tail is only tolerable, as a
///    warning, at the very end of the final segment),
///  - the decoded records must replay cleanly onto the anchor snapshot,
///  - optionally, the replayed state must pass the full in-memory scrub.
/// The Result is non-OK only for environmental failures (e.g. the
/// directory is unreadable); damage is reported as findings.
Result<CheckReport> CheckDatabaseDirectory(
    const std::string& dir, const StorageCheckOptions& options = {});

/// WAL/snapshot cross-consistency for a live durable handle: scrubs the
/// directory (as above), then recovers the on-disk state into a scratch
/// database and requires it to be identical to `db.database()`. Any
/// divergence means the log on disk would not reproduce the state being
/// served — the worst kind of silent durability bug.
Result<CheckReport> CheckDurableDatabase(const DurableLazyDatabase& db);

}  // namespace check
}  // namespace lazyxml

#endif  // LAZYXML_CHECK_STORAGE_CHECK_H_
