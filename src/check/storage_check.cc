#include "check/storage_check.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <sstream>
#include <tuple>
#include <vector>

#include "check/database_check.h"
#include "common/file_io.h"
#include "core/snapshot.h"
#include "storage/recovery.h"
#include "storage/wal_layout.h"
#include "storage/wal_reader.h"

namespace lazyxml {
namespace check {
namespace {

struct DirectoryInventory {
  std::vector<uint64_t> snapshots;  // ascending
  std::vector<uint64_t> segments;   // ascending
  bool directory_exists = false;
};

Status ScanInventory(const std::string& dir, CheckReport* report,
                     DirectoryInventory* inv) {
  if (!FileExists(dir)) {
    report->AddInfo("storage", "dir-missing",
                    "database directory does not exist (empty database)");
    return Status::OK();
  }
  inv->directory_exists = true;
  LAZYXML_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDirectory(dir));
  for (const std::string& name : names) {
    report->BumpObjectsScanned();
    if (auto snap = ParseSnapshotFileName(name)) {
      inv->snapshots.push_back(*snap);
    } else if (auto seg = ParseWalSegmentFileName(name)) {
      inv->segments.push_back(*seg);
    } else if (name == "quarantine") {
      report->AddInfo("storage", "quarantine-present",
                      "quarantine/ exists: a past salvage moved damage aside");
    } else if (name.size() > 4 &&
               name.compare(name.size() - 4, 4, ".tmp") == 0) {
      report->AddInfo("storage", "tmp-file",
                      "leftover atomic-write temp file: " + name);
    } else {
      report->AddWarning("storage", "unknown-file",
                         "unrecognized file in database directory: " + name);
    }
  }
  std::sort(inv->snapshots.begin(), inv->snapshots.end());
  std::sort(inv->segments.begin(), inv->segments.end());
  report->BumpChecksRun();
  return Status::OK();
}

struct ReplayOutcome {
  /// The state the directory recovers to; null only when no replay was
  /// attempted (environmental failure reading a segment).
  std::unique_ptr<LazyDatabase> db;
  /// False when replay stopped on damage or divergence — the db then
  /// holds a prefix (or a partial op) and must not be compared against a
  /// live database or deep-checked as if it were the committed state.
  bool complete = true;
  uint64_t records_replayed = 0;
};

/// Picks the newest loadable snapshot, verifies the older ones load too,
/// then replays the contiguous WAL run after the anchor into a scratch
/// database. Strictly read-only; every anomaly becomes a finding.
Result<ReplayOutcome> ReplayDirectory(const std::string& dir,
                                      const DirectoryInventory& inv,
                                      const LazyDatabaseOptions& db_options,
                                      CheckReport* report) {
  ReplayOutcome out;
  uint64_t anchor = 0;
  for (auto it = inv.snapshots.rbegin(); it != inv.snapshots.rend(); ++it) {
    const std::string path = dir + "/" + SnapshotFileName(*it);
    auto loaded = LoadSnapshot(path, db_options);
    report->BumpObjectsScanned();
    if (loaded.ok()) {
      if (!out.db) {
        out.db = std::move(loaded).ValueOrDie();
        anchor = *it;
      }
      continue;
    }
    std::ostringstream os;
    os << SnapshotFileName(*it) << " does not load: "
       << loaded.status().ToString();
    if (!out.db) {
      // Damage on the newest snapshot: recovery would have to fall back.
      report->AddError("storage", "snapshot-unloadable", os.str());
    } else {
      // An already superseded snapshot; only a fallback would miss it.
      report->AddWarning("storage", "snapshot-unloadable-old", os.str());
    }
  }
  if (!out.db) out.db = std::make_unique<LazyDatabase>(db_options);
  report->BumpChecksRun();

  // The replayable run is the contiguous chain anchor+1, anchor+2, ...
  std::vector<uint64_t> run;
  uint64_t expected_next = anchor + 1;
  for (uint64_t idx : inv.segments) {
    if (idx <= anchor) {
      report->AddInfo("storage", "wal-covered-segment",
                      WalSegmentFileName(idx) +
                          " is fully covered by a snapshot (checkpoint "
                          "truncation did not finish)");
      continue;
    }
    if (idx != expected_next) {
      std::ostringstream os;
      os << "WAL chain breaks: expected " << WalSegmentFileName(expected_next)
         << " but the next segment on disk is " << WalSegmentFileName(idx);
      report->AddError("storage", "wal-chain-gap", os.str());
      report->AddWarning("storage", "wal-unreachable-segment",
                         WalSegmentFileName(idx) +
                             " lies beyond a chain gap and cannot be replayed");
      out.complete = false;
      continue;  // keep reporting every segment past the gap
    }
    run.push_back(idx);
    ++expected_next;
  }
  report->BumpChecksRun();

  for (std::size_t pos = 0; pos < run.size(); ++pos) {
    const uint64_t idx = run[pos];
    const bool final_segment = pos + 1 == run.size();
    LAZYXML_ASSIGN_OR_RETURN(
        std::string data,
        ReadFileToString(dir + "/" + WalSegmentFileName(idx)));
    WalSegmentReader reader(data);
    bool stop_all = false;
    for (;;) {
      LogRecord record;
      Status detail;
      const WalReadOutcome outcome = reader.Next(&record, &detail);
      if (outcome == WalReadOutcome::kEnd) break;
      if (outcome == WalReadOutcome::kTornTail) {
        std::ostringstream os;
        os << WalSegmentFileName(idx) << " has a torn tail at offset "
           << reader.valid_prefix_bytes() << ": " << detail.ToString();
        if (final_segment) {
          // The one place an interrupted append can legitimately land.
          report->AddWarning("storage", "wal-torn-tail", os.str());
        } else {
          report->AddError("storage", "wal-torn-mid-chain", os.str());
        }
        stop_all = !final_segment;
        out.complete = final_segment && out.complete;
        break;
      }
      if (outcome == WalReadOutcome::kCorrupt) {
        std::ostringstream os;
        os << WalSegmentFileName(idx) << " is corrupt at offset "
           << reader.valid_prefix_bytes() << ": " << detail.ToString();
        report->AddError("storage", "wal-corrupt", os.str());
        stop_all = true;
        out.complete = false;
        break;
      }
      report->BumpObjectsScanned();
      Status applied = ApplyLogRecord(out.db.get(), record);
      if (!applied.ok()) {
        std::ostringstream os;
        os << "record " << reader.records_read() << " of "
           << WalSegmentFileName(idx)
           << " does not replay onto the snapshot state: "
           << applied.ToString();
        report->AddError("storage", "wal-replay-divergence", os.str());
        stop_all = true;
        out.complete = false;
        break;
      }
      ++out.records_replayed;
    }
    if (stop_all) {
      for (std::size_t later = pos + 1; later < run.size(); ++later) {
        report->AddWarning(
            "storage", "wal-unreachable-segment",
            WalSegmentFileName(run[later]) +
                " lies beyond damaged history and cannot be replayed");
      }
      break;
    }
  }
  report->BumpChecksRun();
  return out;
}

std::string SegmentName(const SegmentNode& n) {
  std::ostringstream os;
  os << "segment " << n.sid;
  return os.str();
}

}  // namespace

void CompareDatabaseStates(const LazyDatabase& expected,
                           const LazyDatabase& actual, CheckReport* report) {
  const UpdateLog& elog = expected.update_log();
  const UpdateLog& alog = actual.update_log();

  if (elog.mode() != alog.mode()) {
    std::ostringstream os;
    os << "maintenance mode differs: disk state is " << LogModeName(elog.mode())
       << ", live state is " << LogModeName(alog.mode());
    report->AddError("storage", "state-mode", os.str());
  }
  if (elog.next_sid() != alog.next_sid()) {
    std::ostringstream os;
    os << "sid counter differs: disk state would assign " << elog.next_sid()
       << ", live state " << alog.next_sid();
    report->AddError("storage", "state-next-sid", os.str());
  }
  if (elog.super_document_length() != alog.super_document_length()) {
    std::ostringstream os;
    os << "super-document length differs: disk "
       << elog.super_document_length() << ", live "
       << alog.super_document_length();
    report->AddError("storage", "state-doc-length", os.str());
  }
  if (elog.num_segments() != alog.num_segments()) {
    std::ostringstream os;
    os << "segment count differs: disk " << elog.num_segments() << ", live "
       << alog.num_segments();
    report->AddError("storage", "state-segment-count", os.str());
  }

  elog.ForEachSegment([&](const SegmentNode& e) {
    report->BumpObjectsScanned();
    const SegmentNode* a = alog.NodeOf(e.sid);
    if (a == nullptr) {
      report->AddError("storage", "state-segment-missing",
                       SegmentName(e) + " exists on disk but not live", e.sid);
      return true;
    }
    if (e.gp != a->gp || e.l != a->l || e.lp != a->lp ||
        e.base_level != a->base_level) {
      std::ostringstream os;
      os << SegmentName(e) << " geometry differs: disk (gp=" << e.gp
         << ", l=" << e.l << ", lp=" << e.lp
         << ", base_level=" << e.base_level << ") vs live (gp=" << a->gp
         << ", l=" << a->l << ", lp=" << a->lp
         << ", base_level=" << a->base_level << ")";
      report->AddError("storage", "state-segment-geometry", os.str(), e.sid);
    }
    const SegmentId eparent = e.parent ? e.parent->sid : e.sid;
    const SegmentId aparent = a->parent ? a->parent->sid : a->sid;
    if (eparent != aparent || (e.parent == nullptr) != (a->parent == nullptr)) {
      report->AddError("storage", "state-segment-parent",
                       SegmentName(e) + " hangs under different parents",
                       e.sid);
    }
    auto child_sids = [](const SegmentNode& n) {
      std::vector<SegmentId> sids;
      sids.reserve(n.children.size());
      for (const SegmentNode* c : n.children) sids.push_back(c->sid);
      return sids;
    };
    if (child_sids(e) != child_sids(*a)) {
      report->AddError("storage", "state-segment-children",
                       SegmentName(e) + " has different child sequences",
                       e.sid);
    }
    auto gap_pairs = [](const SegmentNode& n) {
      std::vector<std::pair<uint64_t, uint64_t>> gaps;
      gaps.reserve(n.gaps.size());
      for (const FrozenGap& g : n.gaps) gaps.emplace_back(g.begin, g.end);
      return gaps;
    };
    if (gap_pairs(e) != gap_pairs(*a)) {
      report->AddError("storage", "state-segment-gaps",
                       SegmentName(e) + " has different frozen gaps", e.sid);
    }
    if (e.distinct_tags != a->distinct_tags) {
      report->AddError("storage", "state-segment-tags",
                       SegmentName(e) + " has different distinct-tag sets",
                       e.sid);
    }
    auto summary_rows = [](const SegmentNode& n) {
      std::vector<std::tuple<uint64_t, uint64_t, uint32_t, uint32_t>> rows;
      rows.reserve(n.summary.size());
      for (const NestingEntry& s : n.summary) {
        rows.emplace_back(s.start, s.end, s.parent, s.level);
      }
      return rows;
    };
    if (summary_rows(e) != summary_rows(*a)) {
      report->AddError("storage", "state-segment-summary",
                       SegmentName(e) + " has different nesting summaries",
                       e.sid);
    }
    return true;
  });
  alog.ForEachSegment([&](const SegmentNode& a) {
    if (elog.NodeOf(a.sid) == nullptr) {
      report->AddError("storage", "state-segment-extra",
                       SegmentName(a) + " exists live but not on disk", a.sid);
    }
    return true;
  });
  report->BumpChecksRun();

  // Element records arrive in key order from both sides, so the first
  // positional mismatch pinpoints the divergence; one finding is enough.
  auto collect_records = [](const LazyDatabase& db) {
    std::vector<ElementIndexRecord> records;
    records.reserve(db.element_index().size());
    db.element_index().ForEachRecord([&](const ElementIndexRecord& r) {
      records.push_back(r);
      return true;
    });
    return records;
  };
  const std::vector<ElementIndexRecord> erecs = collect_records(expected);
  const std::vector<ElementIndexRecord> arecs = collect_records(actual);
  report->BumpObjectsScanned(erecs.size());
  if (erecs.size() != arecs.size()) {
    std::ostringstream os;
    os << "element record count differs: disk " << erecs.size() << ", live "
       << arecs.size();
    report->AddError("storage", "state-record-count", os.str());
  }
  for (std::size_t i = 0; i < erecs.size() && i < arecs.size(); ++i) {
    const ElementIndexRecord& e = erecs[i];
    const ElementIndexRecord& a = arecs[i];
    if (e.tid != a.tid || e.sid != a.sid || e.start != a.start ||
        e.end != a.end || e.level != a.level) {
      std::ostringstream os;
      os << "element record " << i << " differs: disk (tid=" << e.tid
         << ", sid=" << e.sid << ", [" << e.start << ", " << e.end
         << "), level " << e.level << ") vs live (tid=" << a.tid
         << ", sid=" << a.sid << ", [" << a.start << ", " << a.end
         << "), level " << a.level << ")";
      report->AddError("storage", "state-record-mismatch", os.str(), e.sid);
      break;
    }
  }
  report->BumpChecksRun();

  const TagDict& edict = expected.tag_dict();
  const TagDict& adict = actual.tag_dict();
  if (edict.size() != adict.size()) {
    std::ostringstream os;
    os << "tag dictionary size differs: disk " << edict.size() << ", live "
       << adict.size();
    report->AddError("storage", "state-tag-dict", os.str());
  }
  for (TagId tid = 0; tid < edict.size() && tid < adict.size(); ++tid) {
    if (edict.Name(tid) != adict.Name(tid)) {
      std::ostringstream os;
      os << "tag " << tid << " is <" << edict.Name(tid) << "> on disk but <"
         << adict.Name(tid) << "> live";
      report->AddError("storage", "state-tag-dict", os.str());
      break;
    }
  }

  // The tag-list is compared as an order-free multiset: LS-mode lists are
  // append-ordered until Freeze(), and the append order is deterministic
  // anyway — but nothing semantic rides on it, the set of (tid, path,
  // count) triples is the contract.
  auto collect_tag_entries = [](const LazyDatabase& db) {
    std::vector<std::tuple<TagId, std::vector<SegmentId>, uint64_t>> entries;
    db.update_log().tag_list().ForEachEntry(
        [&](TagId tid, const TagListEntry& entry) {
          entries.emplace_back(tid, entry.path, entry.count);
          return true;
        });
    std::sort(entries.begin(), entries.end());
    return entries;
  };
  if (collect_tag_entries(expected) != collect_tag_entries(actual)) {
    report->AddError("storage", "state-tag-list",
                     "tag-list entries differ between disk and live state");
  }
  report->BumpChecksRun();
}

Result<CheckReport> CheckDatabaseDirectory(const std::string& dir,
                                           const StorageCheckOptions& options) {
  CheckReport report;
  DirectoryInventory inv;
  LAZYXML_RETURN_NOT_OK(ScanInventory(dir, &report, &inv));
  if (!inv.directory_exists) return report;
  LAZYXML_ASSIGN_OR_RETURN(ReplayOutcome replay,
                           ReplayDirectory(dir, inv, options.db, &report));
  if (options.deep_check_replayed_state && replay.db && replay.complete) {
    LAZYXML_ASSIGN_OR_RETURN(CheckReport deep, CheckDatabase(*replay.db));
    report.Merge(deep);
  }
  return report;
}

Result<CheckReport> CheckDurableDatabase(const DurableLazyDatabase& db) {
  CheckReport report;
  DirectoryInventory inv;
  LAZYXML_RETURN_NOT_OK(ScanInventory(db.dir(), &report, &inv));
  if (!inv.directory_exists) {
    report.AddError("storage", "dir-missing",
                    "live handle's directory vanished: " + db.dir());
    return report;
  }
  LAZYXML_ASSIGN_OR_RETURN(
      ReplayOutcome replay,
      ReplayDirectory(db.dir(), inv, db.options().db, &report));
  if (replay.db && replay.complete) {
    CompareDatabaseStates(*replay.db, db.database(), &report);
  } else {
    report.AddError("storage", "state-unverifiable",
                    "on-disk history is damaged; the live state cannot be "
                    "cross-checked against it");
  }
  return report;
}

}  // namespace check
}  // namespace lazyxml
