#include "join/path_stack.h"

#include <algorithm>
#include <map>

namespace lazyxml {

namespace {

struct Entry {
  GlobalElement elem;
  bool valid = false;  // a valid chain through the previous steps exists
};

struct StepStack {
  std::vector<Entry> entries;
  // Bookkeeping for O(1) validity probes.
  uint64_t valid_count = 0;
  std::map<uint32_t, uint64_t> valid_levels;  // level -> valid entries

  void Push(const GlobalElement& e, bool valid) {
    entries.push_back(Entry{e, valid});
    if (valid) {
      ++valid_count;
      ++valid_levels[e.level];
    }
  }

  void PopDeadBefore(uint64_t start) {
    while (!entries.empty() && entries.back().elem.end <= start) {
      const Entry& top = entries.back();
      if (top.valid) {
        --valid_count;
        auto it = valid_levels.find(top.elem.level);
        if (--it->second == 0) valid_levels.erase(it);
      }
      entries.pop_back();
    }
  }

  // Valid entries excluding a possible same-start entry (two streams can
  // carry the same element when tags repeat along the path; an element is
  // never its own strict ancestor).
  bool HasValidAncestorFor(const GlobalElement& e, bool descendant_axis) const {
    uint64_t count;
    if (descendant_axis) {
      count = valid_count;
      if (!entries.empty() && entries.back().valid &&
          entries.back().elem.start == e.start) {
        --count;
      }
    } else {
      if (e.level == 0) return false;
      auto it = valid_levels.find(e.level - 1);
      count = it == valid_levels.end() ? 0 : it->second;
      if (!entries.empty() && entries.back().valid &&
          entries.back().elem.start == e.start &&
          entries.back().elem.level + 1 == e.level) {
        --count;
      }
    }
    return count > 0;
  }
};

}  // namespace

Result<PathStackResult> PathStack(const std::vector<PathStackStep>& steps) {
  if (steps.empty()) {
    return Status::InvalidArgument("PathStack: empty pattern");
  }
  PathStackResult out;
  const size_t n = steps.size();
  std::vector<size_t> cursor(n, 0);
  std::vector<StepStack> stacks(n);

  for (;;) {
    // Next event: smallest start among stream heads; shallower step on
    // ties (the same element may appear in several streams).
    size_t best = n;
    for (size_t i = 0; i < n; ++i) {
      if (cursor[i] >= steps[i].elements.size()) continue;
      if (best == n || steps[i].elements[cursor[i]].start <
                           steps[best].elements[cursor[best]].start) {
        best = i;
      }
    }
    if (best == n) break;
    const GlobalElement& e = steps[best].elements[cursor[best]];
    ++cursor[best];
    ++out.stats.elements_scanned;

    // Clean every stack of entries that ended before this element.
    for (StepStack& s : stacks) s.PopDeadBefore(e.start);

    bool valid;
    if (best == 0) {
      valid = true;
    } else {
      valid = stacks[best - 1].HasValidAncestorFor(
          e, steps[best].descendant_axis);
    }
    if (best + 1 == n) {
      if (valid) out.matches.push_back(e);
      // Leaf elements never carry later matches; no need to push.
      continue;
    }
    // Skip hopeless pushes on AD-only prefixes? An invalid entry can
    // never become valid (validity is fixed at push time), but it still
    // occupies stack space; pushing only valid entries is both correct
    // and cheaper — an element that has no valid chain cannot lend one.
    if (valid) {
      stacks[best].Push(e, true);
      ++out.stats.pushes;
    }
    // Invalid inner elements are dropped entirely.
  }

  std::sort(out.matches.begin(), out.matches.end());
  out.matches.erase(std::unique(out.matches.begin(), out.matches.end()),
                    out.matches.end());
  return out;
}

}  // namespace lazyxml
