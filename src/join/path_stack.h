// PathStack — the linear-path case of the holistic twig join of Bruno,
// Koudas & Srivastava, "Holistic Twig Joins: Optimal XML Pattern
// Matching" (SIGMOD 2002), reference [2] of the paper.
//
// Evaluates a whole path pattern q1 axis q2 axis ... qn in one merge pass
// over the n element streams, keeping one stack per step: each pushed
// element records whether a valid ancestor chain exists at push time, so
// no quadratic intermediate pair lists are ever built (the weakness of a
// pairwise join pipeline the holistic approach was invented to fix).
//
// This reproduction returns the set of final-step elements on at least
// one valid chain — the same semantics as core/path_query.h — plus basic
// work counters, so the two strategies can be verified against each other
// and raced in bench_ablation.

#ifndef LAZYXML_JOIN_PATH_STACK_H_
#define LAZYXML_JOIN_PATH_STACK_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "join/global_element.h"

namespace lazyxml {

/// One step of the path pattern for PathStack.
struct PathStackStep {
  /// Elements with this step's tag, sorted by start offset.
  std::vector<GlobalElement> elements;
  /// Axis leading *into* this step: true = ancestor-descendant ('//'),
  /// false = parent-child ('/'). Ignored for the first step.
  bool descendant_axis = true;
};

/// PathStack statistics.
struct PathStackStats {
  uint64_t elements_scanned = 0;
  uint64_t pushes = 0;
};

/// Result: final-step elements matching the whole path (deduplicated,
/// sorted by start), plus stats.
struct PathStackResult {
  std::vector<GlobalElement> matches;
  PathStackStats stats;
};

/// Runs PathStack over the prepared streams. Streams must be sorted by
/// start offset and regions must nest properly.
Result<PathStackResult> PathStack(const std::vector<PathStackStep>& steps);

}  // namespace lazyxml

#endif  // LAZYXML_JOIN_PATH_STACK_H_
