// Stack-based structural joins over region-labeled element lists —
// Stack-Tree-Desc and Stack-Tree-Anc from Al-Khalifa et al., "Structural
// Joins: A Primitive for Efficient XML Query Pattern Matching" (ICDE
// 2002). Stack-Tree-Desc is the paper's STD baseline and also performs
// Lazy-Join's in-segment joins; a naive quadratic join acts as the test
// oracle.

#ifndef LAZYXML_JOIN_STACK_TREE_H_
#define LAZYXML_JOIN_STACK_TREE_H_

#include <cstddef>
#include <vector>

#include "join/global_element.h"

namespace lazyxml {

/// Options for the structural join algorithms.
struct StructuralJoinOptions {
  /// When true, emit only parent-child pairs (containment + level
  /// difference of exactly one) instead of all ancestor-descendant pairs.
  bool parent_child = false;
};

/// Stack-Tree-Desc: merges `ancestors` x `descendants` (each sorted by
/// start offset, properly nested regions) and returns every
/// ancestor-descendant pair, sorted by descendant.
///
/// Time O(|A| + |D| + output); space O(max nesting depth).
std::vector<JoinPair> StackTreeDesc(const std::vector<GlobalElement>& ancestors,
                                    const std::vector<GlobalElement>& descendants,
                                    const StructuralJoinOptions& options = {});

/// Generic Stack-Tree-Desc core over any element type exposing
/// start/end/level members (GlobalElement, LocalElement, ...) — the same
/// algorithm without forcing a copy into GlobalElement. `emit(a, d)` is
/// called for each pair, descendants-major order.
template <typename Element, typename Emit>
void StackTreeDescVisit(const std::vector<Element>& ancestors,
                        const std::vector<Element>& descendants,
                        bool parent_child, Emit&& emit) {
  std::vector<const Element*> stack;
  size_t a = 0;
  size_t d = 0;
  while (d < descendants.size()) {
    if (a < ancestors.size() &&
        ancestors[a].start <= descendants[d].start) {
      while (!stack.empty() && stack.back()->end <= ancestors[a].start) {
        stack.pop_back();
      }
      stack.push_back(&ancestors[a]);
      ++a;
      continue;
    }
    while (!stack.empty() && stack.back()->end <= descendants[d].start) {
      stack.pop_back();
    }
    for (const Element* s : stack) {
      if (s->start < descendants[d].start && s->end > descendants[d].end &&
          (!parent_child || s->level + 1 == descendants[d].level)) {
        emit(*s, descendants[d]);
      }
    }
    ++d;
  }
}

/// Stack-Tree-Anc: same join, output sorted by ancestor. Uses the
/// self-list / inherit-list bookkeeping from the original paper.
std::vector<JoinPair> StackTreeAnc(const std::vector<GlobalElement>& ancestors,
                                   const std::vector<GlobalElement>& descendants,
                                   const StructuralJoinOptions& options = {});

/// O(|A| * |D|) reference implementation (test oracle). Output sorted by
/// descendant.
std::vector<JoinPair> NaiveStructuralJoin(
    const std::vector<GlobalElement>& ancestors,
    const std::vector<GlobalElement>& descendants,
    const StructuralJoinOptions& options = {});

}  // namespace lazyxml

#endif  // LAZYXML_JOIN_STACK_TREE_H_
