// GlobalElement: an element in super-document (global) coordinates — the
// common currency of the structural join algorithms and baselines.

#ifndef LAZYXML_JOIN_GLOBAL_ELEMENT_H_
#define LAZYXML_JOIN_GLOBAL_ELEMENT_H_

#include <cstdint>
#include <tuple>

namespace lazyxml {

/// One element with global region label (start, end, level).
struct GlobalElement {
  uint64_t start = 0;  ///< global offset of '<' of the start tag
  uint64_t end = 0;    ///< global offset one past '>' of the end tag
  uint32_t level = 0;  ///< absolute depth (outermost element = 1)

  /// Strict ancestor-of test.
  bool Contains(const GlobalElement& o) const {
    return start < o.start && end > o.end;
  }

  bool operator<(const GlobalElement& o) const {
    return std::tie(start, end) < std::tie(o.start, o.end);
  }
  bool operator==(const GlobalElement& o) const {
    return start == o.start && end == o.end && level == o.level;
  }
};

/// One A//D (or A/D) join result, identified by global start offsets —
/// stable across store implementations, so lazy and baseline results can
/// be compared directly in tests.
struct JoinPair {
  uint64_t ancestor_start = 0;
  uint64_t descendant_start = 0;

  bool operator<(const JoinPair& o) const {
    return std::tie(descendant_start, ancestor_start) <
           std::tie(o.descendant_start, o.ancestor_start);
  }
  bool operator==(const JoinPair& o) const {
    return ancestor_start == o.ancestor_start &&
           descendant_start == o.descendant_start;
  }
};

}  // namespace lazyxml

#endif  // LAZYXML_JOIN_GLOBAL_ELEMENT_H_
