#include "join/stack_tree.h"

#include <algorithm>

namespace lazyxml {

namespace {

inline bool Emits(const GlobalElement& a, const GlobalElement& d,
                  bool parent_child) {
  if (!(a.start < d.start && a.end > d.end)) return false;
  return !parent_child || a.level + 1 == d.level;
}

}  // namespace

std::vector<JoinPair> StackTreeDesc(
    const std::vector<GlobalElement>& ancestors,
    const std::vector<GlobalElement>& descendants,
    const StructuralJoinOptions& options) {
  std::vector<JoinPair> out;
  std::vector<GlobalElement> stack;
  size_t a = 0;
  size_t d = 0;
  while (d < descendants.size()) {
    if (a < ancestors.size() &&
        ancestors[a].start <= descendants[d].start) {
      // The next event is an ancestor-list element: clear dead stack
      // entries (an entry ending exactly where the next element starts is
      // dead too — elements are often byte-adjacent), then push it.
      while (!stack.empty() && stack.back().end <= ancestors[a].start) {
        stack.pop_back();
      }
      stack.push_back(ancestors[a]);
      ++a;
      continue;
    }
    // The next event is a descendant-list element: clear dead entries and
    // join it with the whole stack (every live entry contains it).
    while (!stack.empty() && stack.back().end <= descendants[d].start) {
      stack.pop_back();
    }
    for (const GlobalElement& s : stack) {
      if (Emits(s, descendants[d], options.parent_child)) {
        out.push_back(JoinPair{s.start, descendants[d].start});
      }
    }
    ++d;
  }
  return out;
}

std::vector<JoinPair> StackTreeAnc(
    const std::vector<GlobalElement>& ancestors,
    const std::vector<GlobalElement>& descendants,
    const StructuralJoinOptions& options) {
  // Each stack entry defers its output: `self` holds pairs whose ancestor
  // is the entry itself; `inherit` holds already-ordered pairs of popped
  // descendants of the entry (their ancestors start later, so they are
  // appended after `self` when this entry is finally emitted).
  struct Entry {
    GlobalElement elem;
    std::vector<JoinPair> self;
    std::vector<JoinPair> inherit;
  };
  std::vector<JoinPair> out;
  std::vector<Entry> stack;

  auto pop = [&]() {
    Entry top = std::move(stack.back());
    stack.pop_back();
    if (stack.empty()) {
      out.insert(out.end(), top.self.begin(), top.self.end());
      out.insert(out.end(), top.inherit.begin(), top.inherit.end());
    } else {
      auto& dst = stack.back().inherit;
      dst.insert(dst.end(), top.self.begin(), top.self.end());
      dst.insert(dst.end(), top.inherit.begin(), top.inherit.end());
    }
  };

  size_t a = 0;
  size_t d = 0;
  while (d < descendants.size()) {
    if (a < ancestors.size() &&
        ancestors[a].start <= descendants[d].start) {
      while (!stack.empty() &&
             stack.back().elem.end <= ancestors[a].start) {
        pop();
      }
      stack.push_back(Entry{ancestors[a], {}, {}});
      ++a;
      continue;
    }
    while (!stack.empty() &&
           stack.back().elem.end <= descendants[d].start) {
      pop();
    }
    for (Entry& s : stack) {
      if (Emits(s.elem, descendants[d], options.parent_child)) {
        s.self.push_back(JoinPair{s.elem.start, descendants[d].start});
      }
    }
    ++d;
  }
  while (!stack.empty()) pop();
  return out;
}

std::vector<JoinPair> NaiveStructuralJoin(
    const std::vector<GlobalElement>& ancestors,
    const std::vector<GlobalElement>& descendants,
    const StructuralJoinOptions& options) {
  std::vector<JoinPair> out;
  for (const GlobalElement& d : descendants) {
    for (const GlobalElement& a : ancestors) {
      if (Emits(a, d, options.parent_child)) {
        out.push_back(JoinPair{a.start, d.start});
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace lazyxml
