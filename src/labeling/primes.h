// Prime generation for the PRIME labeling scheme.

#ifndef LAZYXML_LABELING_PRIMES_H_
#define LAZYXML_LABELING_PRIMES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lazyxml {

/// Returns the first `count` primes (2, 3, 5, ...) via a segmentless
/// Eratosthenes sieve with an over-approximated bound.
std::vector<uint64_t> GeneratePrimes(size_t count);

/// Incremental prime supply: NextPrime() hands out 2, 3, 5, ... extending
/// the sieve on demand. Used by PrimeLabeling to label new nodes.
class PrimeSupply {
 public:
  PrimeSupply() = default;

  /// The next unused prime.
  uint64_t NextPrime();

  /// Number of primes handed out so far.
  size_t consumed() const { return next_index_; }

 private:
  void Extend(size_t at_least);

  std::vector<uint64_t> primes_;
  size_t next_index_ = 0;
};

}  // namespace lazyxml

#endif  // LAZYXML_LABELING_PRIMES_H_
