#include "labeling/ordpath.h"

#include <algorithm>
#include <span>

#include "common/logging.h"
#include "common/strings.h"
#include "xml/parser.h"

namespace lazyxml {

namespace {

using Span = std::span<const int64_t>;

bool IsOdd(int64_t v) { return (v & 1) != 0; }

// Largest odd strictly below b.
int64_t OddBelow(int64_t b) { return IsOdd(b) ? b - 2 : b - 1; }
// Smallest odd strictly above a.
int64_t OddAbove(int64_t a) { return IsOdd(a) ? a + 2 : a + 1; }

// An odd ordinal strictly inside (a, b), near the middle for balance;
// requires OddAbove(a) < b.
int64_t OddBetween(int64_t a, int64_t b) {
  int64_t mid = a + (b - a) / 2;
  if (!IsOdd(mid)) ++mid;
  if (mid <= a) mid += 2;
  if (mid >= b) mid -= 2;
  LAZYXML_DCHECK(mid > a && mid < b && IsOdd(mid));
  return mid;
}

// Core of the ORDPATH careting rules: a component suffix strictly between
// `lo` (when has_lo) and `hi` (when has_hi), both relative to the same
// already-shared prefix. Complete labels end in an odd component and even
// carets are always followed by more components, which the cases below
// preserve.
std::vector<int64_t> BetweenSuffix(Span lo, bool has_lo, Span hi,
                                   bool has_hi) {
  if (!has_lo && !has_hi) return {1};
  if (!has_lo || lo.empty()) {
    // Anything below hi (or a fresh {1} when hi is absent too).
    if (!has_hi) return {1};
    LAZYXML_CHECK(!hi.empty());
    return {OddBelow(hi[0])};
  }
  if (!has_hi) {
    return {OddAbove(lo[0])};
  }
  LAZYXML_CHECK(!hi.empty());
  const int64_t a = lo[0];
  const int64_t b = hi[0];
  if (a == b) {
    std::vector<int64_t> rest = BetweenSuffix(
        lo.subspan(1), true, hi.subspan(1), true);
    rest.insert(rest.begin(), a);
    return rest;
  }
  LAZYXML_CHECK(a < b);
  if (OddAbove(a) < b) {
    return {OddBetween(a, b)};
  }
  if (b - a == 2) {
    // Only the even a+1 fits: caret and restart (e.g. between 5 and 7
    // comes 6.1).
    return {a + 1, 1};
  }
  // Adjacent (b == a + 1).
  if (lo.size() > 1) {
    // Extend after lo underneath its own head (odd-with-carets or caret).
    std::vector<int64_t> rest =
        BetweenSuffix(lo.subspan(1), true, {}, false);
    rest.insert(rest.begin(), a);
    return rest;
  }
  // lo is the single complete component a (odd); b = a+1 is a caret on
  // the hi side, so slot in below hi's continuation.
  std::vector<int64_t> rest = BetweenSuffix({}, false, hi.subspan(1), true);
  rest.insert(rest.begin(), b);
  return rest;
}

Span SuffixAfter(const OrdPathLabel& parent, const OrdPathLabel& label) {
  return Span(label.components()).subspan(parent.components().size());
}

}  // namespace

OrdPathLabel OrdPathLabel::FromComponents(std::vector<int64_t> comps) {
  OrdPathLabel l;
  l.comps_ = std::move(comps);
  return l;
}

uint32_t OrdPathLabel::Level() const {
  uint32_t n = 0;
  for (int64_t c : comps_) {
    if (IsOdd(c)) ++n;
  }
  return n;
}

bool OrdPathLabel::IsAncestorOf(const OrdPathLabel& other) const {
  if (comps_.size() >= other.comps_.size()) return false;
  return std::equal(comps_.begin(), comps_.end(), other.comps_.begin());
}

int OrdPathLabel::Compare(const OrdPathLabel& other) const {
  const size_t n = std::min(comps_.size(), other.comps_.size());
  for (size_t i = 0; i < n; ++i) {
    if (comps_[i] != other.comps_[i]) {
      return comps_[i] < other.comps_[i] ? -1 : 1;
    }
  }
  if (comps_.size() == other.comps_.size()) return 0;
  return comps_.size() < other.comps_.size() ? -1 : 1;  // prefix first
}

OrdPathLabel OrdPathLabel::FirstChild() const {
  OrdPathLabel l = *this;
  l.comps_.push_back(1);
  return l;
}

OrdPathLabel OrdPathLabel::After(const OrdPathLabel& parent,
                                 const OrdPathLabel& sibling) {
  LAZYXML_CHECK(parent.IsAncestorOf(sibling) || parent.comps_.empty());
  OrdPathLabel l = parent;
  auto rest = BetweenSuffix(SuffixAfter(parent, sibling), true, {}, false);
  l.comps_.insert(l.comps_.end(), rest.begin(), rest.end());
  return l;
}

OrdPathLabel OrdPathLabel::Before(const OrdPathLabel& parent,
                                  const OrdPathLabel& sibling) {
  LAZYXML_CHECK(parent.IsAncestorOf(sibling) || parent.comps_.empty());
  OrdPathLabel l = parent;
  auto rest = BetweenSuffix({}, false, SuffixAfter(parent, sibling), true);
  l.comps_.insert(l.comps_.end(), rest.begin(), rest.end());
  return l;
}

Result<OrdPathLabel> OrdPathLabel::Between(const OrdPathLabel& parent,
                                           const OrdPathLabel& left,
                                           const OrdPathLabel& right) {
  if (!(left < right)) {
    return Status::InvalidArgument("Between: left must precede right");
  }
  OrdPathLabel l = parent;
  auto rest = BetweenSuffix(SuffixAfter(parent, left), true,
                            SuffixAfter(parent, right), true);
  l.comps_.insert(l.comps_.end(), rest.begin(), rest.end());
  return l;
}

std::string OrdPathLabel::ToString() const {
  std::string out;
  for (size_t i = 0; i < comps_.size(); ++i) {
    if (i > 0) out += '.';
    out += std::to_string(comps_[i]);
  }
  return out;
}

size_t OrdPathLabel::EncodedBytes() const {
  size_t bytes = 0;
  for (int64_t c : comps_) {
    // ZigZag then LEB128 length.
    uint64_t z = (static_cast<uint64_t>(c) << 1) ^
                 static_cast<uint64_t>(c >> 63);
    do {
      ++bytes;
      z >>= 7;
    } while (z != 0);
  }
  return bytes;
}

// --- OrdPathLabeling -------------------------------------------------------

Status OrdPathLabeling::BuildFromDocument(std::string_view text) {
  nodes_.clear();
  roots_.clear();
  ParseOptions opts;
  opts.require_single_root = true;
  auto parsed = ParseFragment(text, &dict_, opts);
  if (!parsed.ok()) return parsed.status();
  const auto& records = parsed.ValueOrDie().records;
  if (records.empty()) return Status::InvalidArgument("empty document");
  nodes_.resize(records.size());
  std::vector<size_t> stack;
  for (size_t i = 0; i < records.size(); ++i) {
    while (!stack.empty() && records[stack.back()].end <= records[i].start) {
      stack.pop_back();
    }
    Node& n = nodes_[i];
    n.tid = records[i].tid;
    if (stack.empty()) {
      n.parent = kNoNode;
      n.label = OrdPathLabel::FromComponents({1});
      roots_.push_back(i);
    } else {
      Node& p = nodes_[stack.back()];
      n.parent = stack.back();
      // Initial allocation: odd ordinals 1, 3, 5, ...
      std::vector<int64_t> comps = p.label.components();
      comps.push_back(static_cast<int64_t>(2 * p.children.size() + 1));
      n.label = OrdPathLabel::FromComponents(std::move(comps));
      p.children.push_back(i);
    }
    stack.push_back(i);
  }
  return Status::OK();
}

Result<OrdPathLabeling::NodeId> OrdPathLabeling::InsertElement(
    std::string_view name, NodeId parent, NodeId left, NodeId right) {
  if (parent >= nodes_.size()) {
    return Status::InvalidArgument("InsertElement: bad parent");
  }
  Node& p = nodes_[parent];
  auto child_pos = [&](NodeId c) -> Result<size_t> {
    auto it = std::find(p.children.begin(), p.children.end(), c);
    if (it == p.children.end()) {
      return Status::InvalidArgument("sibling is not a child of parent");
    }
    return static_cast<size_t>(it - p.children.begin());
  };

  OrdPathLabel label;
  size_t insert_index = 0;
  if (p.children.empty()) {
    if (left != kNoNode || right != kNoNode) {
      return Status::InvalidArgument("parent has no children");
    }
    label = p.label.FirstChild();
    insert_index = 0;
  } else if (left == kNoNode && right == kNoNode) {
    label = OrdPathLabel::After(p.label, nodes_[p.children.back()].label);
    insert_index = p.children.size();
  } else if (left == kNoNode) {
    LAZYXML_ASSIGN_OR_RETURN(size_t ri, child_pos(right));
    if (ri == 0) {
      label = OrdPathLabel::Before(p.label, nodes_[right].label);
      insert_index = 0;
    } else {
      LAZYXML_ASSIGN_OR_RETURN(
          label, OrdPathLabel::Between(p.label,
                                       nodes_[p.children[ri - 1]].label,
                                       nodes_[right].label));
      insert_index = ri;
    }
  } else if (right == kNoNode) {
    LAZYXML_ASSIGN_OR_RETURN(size_t li, child_pos(left));
    if (li + 1 == p.children.size()) {
      label = OrdPathLabel::After(p.label, nodes_[left].label);
      insert_index = p.children.size();
    } else {
      LAZYXML_ASSIGN_OR_RETURN(
          label, OrdPathLabel::Between(p.label, nodes_[left].label,
                                       nodes_[p.children[li + 1]].label));
      insert_index = li + 1;
    }
  } else {
    LAZYXML_ASSIGN_OR_RETURN(size_t li, child_pos(left));
    LAZYXML_ASSIGN_OR_RETURN(size_t ri, child_pos(right));
    if (ri != li + 1) {
      return Status::InvalidArgument("left/right are not adjacent siblings");
    }
    LAZYXML_ASSIGN_OR_RETURN(
        label, OrdPathLabel::Between(p.label, nodes_[left].label,
                                     nodes_[right].label));
    insert_index = ri;
  }

  const NodeId id = nodes_.size();
  Node n;
  n.label = std::move(label);
  n.tid = dict_.Intern(name);
  n.parent = parent;
  nodes_.push_back(std::move(n));
  nodes_[parent].children.insert(
      nodes_[parent].children.begin() + static_cast<ptrdiff_t>(insert_index),
      id);
  return id;
}

Result<OrdPathLabeling::NodeId> OrdPathLabeling::InsertFragment(
    std::string_view text, NodeId parent, NodeId left, NodeId right) {
  ParseOptions opts;
  opts.require_single_root = true;
  auto parsed = ParseFragment(text, &dict_, opts);
  if (!parsed.ok()) return parsed.status();
  const auto& records = parsed.ValueOrDie().records;
  if (records.empty()) return Status::InvalidArgument("empty fragment");
  std::vector<NodeId> mapped(records.size(), kNoNode);
  std::vector<size_t> stack;
  NodeId root_id = kNoNode;
  for (size_t i = 0; i < records.size(); ++i) {
    while (!stack.empty() && records[stack.back()].end <= records[i].start) {
      stack.pop_back();
    }
    NodeId id;
    if (stack.empty()) {
      LAZYXML_ASSIGN_OR_RETURN(
          id, InsertElement(dict_.Name(records[i].tid), parent, left, right));
      root_id = id;
    } else {
      // Append as last child of the mapped parent.
      LAZYXML_ASSIGN_OR_RETURN(
          id, InsertElement(dict_.Name(records[i].tid), mapped[stack.back()],
                            kNoNode, kNoNode));
    }
    mapped[i] = id;
    stack.push_back(i);
  }
  return root_id;
}

Result<bool> OrdPathLabeling::IsAncestor(NodeId a, NodeId d) const {
  if (a >= nodes_.size() || d >= nodes_.size()) {
    return Status::InvalidArgument("IsAncestor: bad node id");
  }
  return nodes_[a].label.IsAncestorOf(nodes_[d].label);
}

Result<bool> OrdPathLabeling::Precedes(NodeId x, NodeId y) const {
  if (x >= nodes_.size() || y >= nodes_.size()) {
    return Status::InvalidArgument("Precedes: bad node id");
  }
  return nodes_[x].label.Compare(nodes_[y].label) < 0;
}

Result<const OrdPathLabel*> OrdPathLabeling::Label(NodeId n) const {
  if (n >= nodes_.size()) {
    return Status::InvalidArgument("Label: bad node id");
  }
  return &nodes_[n].label;
}

Result<uint32_t> OrdPathLabeling::LevelOf(NodeId n) const {
  if (n >= nodes_.size()) {
    return Status::InvalidArgument("LevelOf: bad node id");
  }
  return nodes_[n].label.Level();
}

Result<std::vector<OrdPathLabeling::NodeId>> OrdPathLabeling::ChildrenOf(
    NodeId n) const {
  if (n == kNoNode) return roots_;
  if (n >= nodes_.size()) {
    return Status::InvalidArgument("ChildrenOf: bad node id");
  }
  return nodes_[n].children;
}

size_t OrdPathLabeling::TotalLabelBytes() const {
  size_t bytes = 0;
  for (const Node& n : nodes_) bytes += n.label.EncodedBytes();
  return bytes;
}

size_t OrdPathLabeling::MaxLabelComponents() const {
  size_t longest = 0;
  for (const Node& n : nodes_) {
    longest = std::max(longest, n.label.components().size());
  }
  return longest;
}

}  // namespace lazyxml
