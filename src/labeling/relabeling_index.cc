#include "labeling/relabeling_index.h"

#include <algorithm>

#include "common/strings.h"
#include "xml/parser.h"

namespace lazyxml {

Status RelabelingIndex::BuildFromDocument(std::string_view text) {
  tree_.Clear();
  doc_len_ = 0;
  ParseOptions opts;
  opts.require_single_root = false;  // super documents are multi-rooted
  auto parsed = ParseFragment(text, &dict_, opts);
  if (!parsed.ok()) return parsed.status();
  for (const ElementRecord& r : parsed.ValueOrDie().records) {
    LAZYXML_RETURN_NOT_OK(
        tree_.Insert(Key{r.tid, r.start}, Val{r.end, r.level}));
  }
  doc_len_ = text.size();
  return Status::OK();
}

Status RelabelingIndex::InsertSegment(std::string_view text, uint64_t gp) {
  if (gp > doc_len_) {
    return Status::OutOfRange(
        StringPrintf("insert position %llu beyond document length %llu",
                     static_cast<unsigned long long>(gp),
                     static_cast<unsigned long long>(doc_len_)));
  }
  // Depth of the insertion point: number of elements spanning gp.
  uint32_t base_level = 0;
  for (auto it = tree_.Begin(); it.Valid(); it.Next()) {
    if (it.key().start < gp && it.value().end > gp) {
      base_level = std::max(base_level, it.value().level);
    }
  }
  ParseOptions opts;
  opts.require_single_root = true;  // segments are valid documents
  opts.base_offset = gp;
  opts.base_level = base_level;
  auto parsed = ParseFragment(text, &dict_, opts);
  if (!parsed.ok()) return parsed.status();
  const uint64_t len = text.size();

  // The traditional cost: drain, relabel, rebuild. Shifting start offsets
  // changes B+-tree keys, so the index cannot be patched in place.
  std::vector<std::pair<Key, Val>> all;
  all.reserve(tree_.size() + parsed.ValueOrDie().records.size());
  for (auto it = tree_.Begin(); it.Valid(); it.Next()) {
    Key k = it.key();
    Val v = it.value();
    if (k.start >= gp) {
      k.start += len;
      v.end += len;
    } else if (v.end > gp) {
      v.end += len;  // element spans the insertion point
    }
    all.emplace_back(k, v);
  }
  for (const ElementRecord& r : parsed.ValueOrDie().records) {
    all.emplace_back(Key{r.tid, r.start}, Val{r.end, r.level});
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  LAZYXML_RETURN_NOT_OK(tree_.BuildFrom(std::move(all)));
  doc_len_ += len;
  return Status::OK();
}

Status RelabelingIndex::RemoveSegment(uint64_t gp, uint64_t len) {
  if (gp + len > doc_len_) {
    return Status::OutOfRange("removal region beyond document");
  }
  const uint64_t hi = gp + len;
  std::vector<std::pair<Key, Val>> kept;
  kept.reserve(tree_.size());
  for (auto it = tree_.Begin(); it.Valid(); it.Next()) {
    Key k = it.key();
    Val v = it.value();
    const bool inside = k.start >= gp && v.end <= hi;
    if (inside) continue;
    const bool straddles_left = k.start < gp && v.end > gp && v.end <= hi;
    const bool straddles_right = k.start >= gp && k.start < hi && v.end > hi;
    if (straddles_left || straddles_right) {
      return Status::Corruption(
          "removal region splits an element; document would be malformed");
    }
    if (k.start >= hi) {
      k.start -= len;
      v.end -= len;
    } else if (v.end >= hi) {
      v.end -= len;  // element spans the whole removed region
    }
    kept.emplace_back(k, v);
  }
  LAZYXML_RETURN_NOT_OK(tree_.BuildFrom(std::move(kept)));
  doc_len_ -= len;
  return Status::OK();
}

Result<std::vector<GlobalElement>> RelabelingIndex::GetElements(
    std::string_view name) const {
  LAZYXML_ASSIGN_OR_RETURN(TagId tid, dict_.Lookup(name));
  std::vector<GlobalElement> out;
  const Key lo{tid, 0};
  const Key hi{tid + 1, 0};
  tree_.ScanRange(lo, hi, [&out](const Key& k, Val& v) {
    out.push_back(GlobalElement{k.start, v.end, v.level});
    return true;
  });
  return out;
}

}  // namespace lazyxml
