// RelabelingIndex: the "traditional approach" baseline of Fig. 16 —
// elements labeled by their (global start, global end, level) region, kept
// in a B+-tree keyed (tid, start). Inserting a segment at position gp
// forces every record at or after gp to be relabeled (+len), i.e. the
// index is rebuilt — exactly the cost the lazy scheme exists to avoid.

#ifndef LAZYXML_LABELING_RELABELING_INDEX_H_
#define LAZYXML_LABELING_RELABELING_INDEX_H_

#include <cstdint>
#include <string_view>
#include <tuple>
#include <vector>

#include "btree/btree.h"
#include "common/result.h"
#include "join/global_element.h"
#include "xml/tag_dict.h"

namespace lazyxml {

/// One region-labeled element surfaced to external auditors (src/check/),
/// in (tid, start) key order.
struct RelabeledElement {
  TagId tid = 0;
  uint64_t start = 0;
  uint64_t end = 0;
  uint32_t level = 0;
};

/// Eagerly-relabeled global element index (traditional region labeling).
class RelabelingIndex {
 public:
  RelabelingIndex() = default;

  /// Parses `text` and indexes every element with global positions.
  /// Replaces any previous content.
  Status BuildFromDocument(std::string_view text);

  /// Inserts a well-formed fragment at global position `gp`: parses it,
  /// shifts the labels of every existing element at/after `gp` by the
  /// fragment length (and the end labels of elements spanning `gp`), then
  /// adds the fragment's elements. O(total elements) by design — this is
  /// the baseline cost being measured.
  Status InsertSegment(std::string_view text, uint64_t gp);

  /// Removes the region [gp, gp+len): deletes elements fully inside it and
  /// shifts labels of later elements left. Elements straddling the region
  /// boundary make the removal invalid (Corruption).
  Status RemoveSegment(uint64_t gp, uint64_t len);

  /// All elements with tag `name`, in global document order.
  Result<std::vector<GlobalElement>> GetElements(std::string_view name) const;

  /// Number of indexed elements.
  size_t size() const { return tree_.size(); }

  /// Total document length in characters tracked so far.
  uint64_t document_length() const { return doc_len_; }

  const TagDict& tag_dict() const { return dict_; }

  /// Approximate index heap footprint.
  size_t MemoryBytes() const { return tree_.MemoryBytes(); }

  /// Visits every element in (tid, start) key order; `fn` returning false
  /// stops the walk. For the consistency scrubber.
  void ForEachElement(
      const std::function<bool(const RelabeledElement&)>& fn) const {
    for (auto it = tree_.Begin(); it.Valid(); it.Next()) {
      const Key& k = it.key();
      const Val& v = it.value();
      if (!fn(RelabeledElement{k.tid, k.start, v.end, v.level})) return;
    }
  }

  /// Preorder shape walk over the backing tree's nodes (occupancy audit).
  void VisitTreeNodes(
      const std::function<bool(const BTreeNodeInfo&)>& fn) const {
    tree_.VisitNodes(fn);
  }

  /// Structural invariants of the backing tree.
  Status CheckInvariants() const { return tree_.CheckInvariants(); }

 private:
  struct Key {
    TagId tid;
    uint64_t start;
    bool operator<(const Key& o) const {
      return std::tie(tid, start) < std::tie(o.tid, o.start);
    }
  };
  struct Val {
    uint64_t end;
    uint32_t level;
  };

  using Tree = BTree<Key, Val>;

  Tree tree_;
  TagDict dict_;
  uint64_t doc_len_ = 0;
};

}  // namespace lazyxml

#endif  // LAZYXML_LABELING_RELABELING_INDEX_H_
