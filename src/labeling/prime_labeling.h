// PrimeLabeling: the prime-number labeling scheme of Wu, Lee & Hsu
// (ICDE 2004) — the immutable-labeling baseline of the paper's Fig. 17.
//
// Every node gets a distinct prime as its *self label*; its full label is
// the product of the self labels on its root path, so X is an ancestor of
// Y iff label(X) divides label(Y). Document order is maintained *outside*
// the labels by a table of simultaneous-congruence (CRT) values: nodes are
// grouped K at a time, each group stores the unique SC with
// SC ≡ rank(n) (mod self(n)) for every member, where rank(n) is the node's
// 1-based position within the group. Global order is (group sequence
// number, rank). Recovering rank as SC mod p requires rank < p, so the
// supply skips primes ≤ 2K+2 (a group holds at most 2K+1 members before it
// splits).
//
// An insertion never relabels existing nodes, but it must recompute the
// CRT value of the group it lands in (and of both halves when the group
// splits) — the bignum work that dominates PRIME's insert cost in Fig. 17,
// and what the lazy paper measures against.

#ifndef LAZYXML_LABELING_PRIME_LABELING_H_
#define LAZYXML_LABELING_PRIME_LABELING_H_

#include <cstdint>
#include <list>
#include <string_view>
#include <vector>

#include "common/bignum.h"
#include "common/result.h"
#include "labeling/primes.h"
#include "xml/tag_dict.h"

namespace lazyxml {

/// PRIME knobs.
struct PrimeLabelingOptions {
  /// K: primes sharing one simultaneous-congruence value (paper Fig. 17).
  uint32_t group_size = 6;
  /// Spacing of group sequence numbers; splits bisect gaps and exhausting
  /// a gap triggers a (cheap, CRT-free) sequence renumbering.
  uint64_t group_seq_gap = 1 << 20;
};

/// The PRIME labeling structure over one document.
class PrimeLabeling {
 public:
  /// Stable node handle (index; nodes are never removed).
  using NodeId = uint64_t;
  static constexpr NodeId kNoNode = ~0ull;

  explicit PrimeLabeling(PrimeLabelingOptions options = {});
  PrimeLabeling(const PrimeLabeling&) = delete;
  PrimeLabeling& operator=(const PrimeLabeling&) = delete;

  /// Parses `text` (single-rooted) and labels every element. Replaces any
  /// previous content. Node 0 is the document root element.
  Status BuildFromDocument(std::string_view text);

  /// Inserts one new leaf element with tag `name`, as a child of `parent`,
  /// immediately after node `prev` in document order (`prev` may be the
  /// parent itself to insert as its first child). Returns the new node.
  Result<NodeId> InsertElement(std::string_view name, NodeId parent,
                               NodeId prev);

  /// Parses a fragment and inserts all its elements one by one (the way
  /// PRIME must ingest a segment), the fragment root becoming a child of
  /// `parent` placed right after `prev` in document order.
  Result<NodeId> InsertFragment(std::string_view text, NodeId parent,
                                NodeId prev);

  /// True iff `a` is a proper ancestor of `d` — the divisibility test.
  Result<bool> IsAncestor(NodeId a, NodeId d) const;

  /// The node's rank within its group, recovered from the group's
  /// simultaneous congruence: SC mod self-prime.
  Result<uint64_t> GroupRank(NodeId n) const;

  /// True iff `x` precedes `y` in document order (group seq, then rank).
  Result<bool> Precedes(NodeId x, NodeId y) const;

  /// The node's self prime.
  Result<uint64_t> SelfPrime(NodeId n) const;

  /// The node's full label (product along root path).
  Result<const BigUint*> Label(NodeId n) const;

  /// The node's parent (kNoNode for the document root).
  Result<NodeId> Parent(NodeId n) const;

  /// The node's tag name (view into the internal dictionary).
  Result<std::string_view> NodeName(NodeId n) const;

  size_t num_nodes() const { return nodes_.size(); }

  /// Deep self-verification of the labeling structure: label factorization
  /// along parent chains, group membership / back-pointer agreement, rank
  /// recoverability (SC ≡ rank mod self-prime for every member), group
  /// sequence monotonicity, and prime-supply floor. For the scrubber.
  Status CheckInvariants() const;

  /// Label + SC-table heap footprint — the storage-overhead story the
  /// paper tells about immutable schemes.
  size_t MemoryBytes() const;

  // -- Instrumentation (read by bench_fig17) --------------------------------
  uint64_t crt_recomputations() const { return crt_recomputations_; }
  uint64_t group_splits() const { return group_splits_; }
  uint64_t seq_renumbers() const { return seq_renumbers_; }

 private:
  struct Group {
    std::vector<NodeId> members;  // document order; rank = index + 1
    BigUint sc;
    uint64_t seq = 0;  // gap-spaced global ordering of groups
  };
  using GroupList = std::list<Group>;

  struct Node {
    uint64_t self_prime = 0;
    BigUint label;
    NodeId parent = kNoNode;
    TagId tid = kInvalidTagId;
    GroupList::iterator group;
  };

  Status RecomputeGroupSc(GroupList::iterator g);
  Status SplitGroupIfNeeded(GroupList::iterator g);
  void RenumberGroupSeqs();
  uint64_t TakePrime();

  PrimeLabelingOptions options_;
  PrimeSupply primes_;
  uint64_t first_usable_prime_ = 0;
  TagDict dict_;
  std::vector<Node> nodes_;
  GroupList groups_;
  uint64_t crt_recomputations_ = 0;
  uint64_t group_splits_ = 0;
  uint64_t seq_renumbers_ = 0;
};

}  // namespace lazyxml

#endif  // LAZYXML_LABELING_PRIME_LABELING_H_
