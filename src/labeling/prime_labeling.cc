#include "labeling/prime_labeling.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"
#include "xml/parser.h"

namespace lazyxml {

PrimeLabeling::PrimeLabeling(PrimeLabelingOptions options)
    : options_(options) {
  LAZYXML_CHECK(options_.group_size >= 1);
  LAZYXML_CHECK(options_.group_seq_gap >= 2);
  // Ranks go up to 2K+1 (a group's maximum size just before it splits);
  // SC mod p must recover the rank, so only primes > 2K+1 are usable.
  const uint64_t min_prime = 2 * options_.group_size + 2;
  while (true) {
    // Peek by consuming: the supply is exclusively ours.
    const uint64_t p = primes_.NextPrime();
    if (p > min_prime) {
      first_usable_prime_ = p;
      break;
    }
  }
}

uint64_t PrimeLabeling::TakePrime() {
  if (first_usable_prime_ != 0) {
    const uint64_t p = first_usable_prime_;
    first_usable_prime_ = 0;
    return p;
  }
  return primes_.NextPrime();
}

Status PrimeLabeling::RecomputeGroupSc(GroupList::iterator g) {
  std::vector<uint64_t> primes;
  std::vector<uint64_t> residues;
  primes.reserve(g->members.size());
  residues.reserve(g->members.size());
  for (size_t i = 0; i < g->members.size(); ++i) {
    primes.push_back(nodes_[g->members[i]].self_prime);
    residues.push_back(i + 1);  // rank, guaranteed < every member prime
  }
  auto sc = CrtSolve(primes, residues);
  if (!sc.ok()) return sc.status();
  g->sc = std::move(sc).ValueOrDie();
  ++crt_recomputations_;
  return Status::OK();
}

void PrimeLabeling::RenumberGroupSeqs() {
  uint64_t seq = options_.group_seq_gap;
  for (Group& g : groups_) {
    g.seq = seq;
    seq += options_.group_seq_gap;
  }
  ++seq_renumbers_;
}

Status PrimeLabeling::SplitGroupIfNeeded(GroupList::iterator g) {
  if (g->members.size() <= 2 * options_.group_size) return Status::OK();
  const size_t half = g->members.size() / 2;
  Group right;
  right.members.assign(g->members.begin() + half, g->members.end());
  g->members.resize(half);
  // Sequence number between g and its successor; renumber on exhaustion.
  auto after = std::next(g);
  const uint64_t hi =
      after == groups_.end() ? g->seq + 2 * options_.group_seq_gap
                             : after->seq;
  if (hi <= g->seq + 1) {
    auto right_it = groups_.insert(after, std::move(right));
    for (NodeId id : right_it->members) nodes_[id].group = right_it;
    RenumberGroupSeqs();
    ++group_splits_;
    LAZYXML_RETURN_NOT_OK(RecomputeGroupSc(g));
    return RecomputeGroupSc(right_it);
  }
  right.seq = g->seq + (hi - g->seq) / 2;
  auto right_it = groups_.insert(after, std::move(right));
  for (NodeId id : right_it->members) nodes_[id].group = right_it;
  ++group_splits_;
  LAZYXML_RETURN_NOT_OK(RecomputeGroupSc(g));
  return RecomputeGroupSc(right_it);
}

Status PrimeLabeling::BuildFromDocument(std::string_view text) {
  nodes_.clear();
  groups_.clear();
  crt_recomputations_ = group_splits_ = seq_renumbers_ = 0;
  ParseOptions opts;
  opts.require_single_root = true;
  auto parsed_r = ParseFragment(text, &dict_, opts);
  if (!parsed_r.ok()) return parsed_r.status();
  const auto& records = parsed_r.ValueOrDie().records;
  if (records.empty()) return Status::InvalidArgument("empty document");

  nodes_.reserve(records.size());
  // Records are in preorder; recover parent links with an interval stack.
  std::vector<size_t> stack;
  for (size_t i = 0; i < records.size(); ++i) {
    while (!stack.empty() && records[stack.back()].end <= records[i].start) {
      stack.pop_back();
    }
    Node n;
    n.self_prime = TakePrime();
    n.tid = records[i].tid;
    n.parent = stack.empty() ? kNoNode : static_cast<NodeId>(stack.back());
    n.label = n.parent == kNoNode
                  ? BigUint(n.self_prime)
                  : nodes_[n.parent].label.MulSmall(n.self_prime);
    nodes_.push_back(std::move(n));
    stack.push_back(i);
  }
  // Chunk into groups of K and solve each group's congruences.
  uint64_t seq = options_.group_seq_gap;
  for (size_t i = 0; i < nodes_.size(); i += options_.group_size) {
    Group g;
    g.seq = seq;
    seq += options_.group_seq_gap;
    const size_t hi = std::min(nodes_.size(),
                               i + static_cast<size_t>(options_.group_size));
    for (size_t j = i; j < hi; ++j) g.members.push_back(j);
    groups_.push_back(std::move(g));
    auto it = std::prev(groups_.end());
    for (NodeId id : it->members) nodes_[id].group = it;
    LAZYXML_RETURN_NOT_OK(RecomputeGroupSc(it));
  }
  return Status::OK();
}

Result<PrimeLabeling::NodeId> PrimeLabeling::InsertElement(
    std::string_view name, NodeId parent, NodeId prev) {
  if (parent >= nodes_.size() || prev >= nodes_.size()) {
    return Status::InvalidArgument("InsertElement: bad node id");
  }
  Node n;
  n.self_prime = TakePrime();
  n.tid = dict_.Intern(name);
  n.parent = parent;
  n.label = nodes_[parent].label.MulSmall(n.self_prime);

  GroupList::iterator g = nodes_[prev].group;
  auto pos = std::find(g->members.begin(), g->members.end(), prev);
  LAZYXML_CHECK_OR_INTERNAL(pos != g->members.end(),
                            "prev missing from its group");
  const size_t index = static_cast<size_t>(pos - g->members.begin()) + 1;
  n.group = g;
  const NodeId id = nodes_.size();
  nodes_.push_back(std::move(n));
  g->members.insert(g->members.begin() + index, id);
  LAZYXML_RETURN_NOT_OK(RecomputeGroupSc(g));
  LAZYXML_RETURN_NOT_OK(SplitGroupIfNeeded(g));
  return id;
}

Result<PrimeLabeling::NodeId> PrimeLabeling::InsertFragment(
    std::string_view text, NodeId parent, NodeId prev) {
  ParseOptions opts;
  opts.require_single_root = true;
  auto parsed_r = ParseFragment(text, &dict_, opts);
  if (!parsed_r.ok()) return parsed_r.status();
  const auto& records = parsed_r.ValueOrDie().records;
  if (records.empty()) return Status::InvalidArgument("empty fragment");

  std::vector<NodeId> mapped(records.size(), kNoNode);
  std::vector<size_t> stack;
  NodeId doc_prev = prev;
  NodeId root_id = kNoNode;
  for (size_t i = 0; i < records.size(); ++i) {
    while (!stack.empty() && records[stack.back()].end <= records[i].start) {
      stack.pop_back();
    }
    const NodeId p = stack.empty() ? parent : mapped[stack.back()];
    LAZYXML_ASSIGN_OR_RETURN(
        NodeId id, InsertElement(dict_.Name(records[i].tid), p, doc_prev));
    mapped[i] = id;
    if (i == 0) root_id = id;
    doc_prev = id;
    stack.push_back(i);
  }
  return root_id;
}

Result<bool> PrimeLabeling::IsAncestor(NodeId a, NodeId d) const {
  if (a >= nodes_.size() || d >= nodes_.size()) {
    return Status::InvalidArgument("IsAncestor: bad node id");
  }
  if (a == d) return false;
  return nodes_[d].label.DivisibleBy(nodes_[a].label);
}

Result<uint64_t> PrimeLabeling::GroupRank(NodeId n) const {
  if (n >= nodes_.size()) {
    return Status::InvalidArgument("GroupRank: bad node id");
  }
  return nodes_[n].group->sc.ModSmall(nodes_[n].self_prime);
}

Result<bool> PrimeLabeling::Precedes(NodeId x, NodeId y) const {
  if (x >= nodes_.size() || y >= nodes_.size()) {
    return Status::InvalidArgument("Precedes: bad node id");
  }
  const Group& gx = *nodes_[x].group;
  const Group& gy = *nodes_[y].group;
  if (gx.seq != gy.seq) return gx.seq < gy.seq;
  LAZYXML_ASSIGN_OR_RETURN(uint64_t rx, GroupRank(x));
  LAZYXML_ASSIGN_OR_RETURN(uint64_t ry, GroupRank(y));
  return rx < ry;
}

Result<uint64_t> PrimeLabeling::SelfPrime(NodeId n) const {
  if (n >= nodes_.size()) {
    return Status::InvalidArgument("SelfPrime: bad node id");
  }
  return nodes_[n].self_prime;
}

Result<const BigUint*> PrimeLabeling::Label(NodeId n) const {
  if (n >= nodes_.size()) {
    return Status::InvalidArgument("Label: bad node id");
  }
  return &nodes_[n].label;
}

Result<PrimeLabeling::NodeId> PrimeLabeling::Parent(NodeId n) const {
  if (n >= nodes_.size()) {
    return Status::InvalidArgument("Parent: bad node id");
  }
  return nodes_[n].parent;
}

Result<std::string_view> PrimeLabeling::NodeName(NodeId n) const {
  if (n >= nodes_.size()) {
    return Status::InvalidArgument("NodeName: bad node id");
  }
  return dict_.Name(nodes_[n].tid);
}

Status PrimeLabeling::CheckInvariants() const {
  const uint64_t min_prime = 2 * options_.group_size + 1;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.self_prime <= min_prime) {
      return Status::Corruption(StringPrintf(
          "node %llu self prime %llu cannot encode ranks up to %llu",
          static_cast<unsigned long long>(id),
          static_cast<unsigned long long>(n.self_prime),
          static_cast<unsigned long long>(min_prime)));
    }
    // label == label(parent) * self_prime, and a root label is the self
    // prime itself — checked as exact division, not just divisibility.
    auto dm = BigUint::DivMod(n.label, BigUint(n.self_prime));
    if (!dm.ok()) return dm.status();
    const auto& [quot, rem] = dm.ValueOrDie();
    if (!rem.IsZero()) {
      return Status::Corruption(StringPrintf(
          "node %llu label is not a multiple of its self prime",
          static_cast<unsigned long long>(id)));
    }
    if (n.parent == kNoNode) {
      if (!(quot == BigUint(1))) {
        return Status::Corruption(StringPrintf(
            "root node %llu label is not exactly its self prime",
            static_cast<unsigned long long>(id)));
      }
    } else {
      if (n.parent >= nodes_.size()) {
        return Status::Corruption(StringPrintf(
            "node %llu has dangling parent %llu",
            static_cast<unsigned long long>(id),
            static_cast<unsigned long long>(n.parent)));
      }
      if (!(quot == nodes_[n.parent].label)) {
        return Status::Corruption(StringPrintf(
            "node %llu label is not parent label times self prime",
            static_cast<unsigned long long>(id)));
      }
    }
  }
  // Groups: partition of the nodes, back-pointers agree, SC recovers each
  // member's 1-based rank, sequence numbers strictly increase.
  size_t grouped = 0;
  uint64_t prev_seq = 0;
  bool first_group = true;
  for (auto it = groups_.begin(); it != groups_.end(); ++it) {
    if (!first_group && it->seq <= prev_seq) {
      return Status::Corruption("group sequence numbers not increasing");
    }
    first_group = false;
    prev_seq = it->seq;
    if (it->members.empty()) {
      return Status::Corruption("empty labeling group");
    }
    if (it->members.size() > 2 * options_.group_size + 1) {
      return Status::Corruption("labeling group over split threshold");
    }
    for (size_t i = 0; i < it->members.size(); ++i) {
      const NodeId id = it->members[i];
      if (id >= nodes_.size()) {
        return Status::Corruption("group member id out of range");
      }
      if (nodes_[id].group != it) {
        return Status::Corruption(StringPrintf(
            "node %llu group back-pointer mismatch",
            static_cast<unsigned long long>(id)));
      }
      auto rank = it->sc.ModSmall(nodes_[id].self_prime);
      if (!rank.ok()) return rank.status();
      if (rank.ValueOrDie() != i + 1) {
        return Status::Corruption(StringPrintf(
            "SC of group does not recover rank %zu for node %llu", i + 1,
            static_cast<unsigned long long>(id)));
      }
      ++grouped;
    }
  }
  if (grouped != nodes_.size()) {
    return Status::Corruption("groups do not partition the node set");
  }
  return Status::OK();
}

size_t PrimeLabeling::MemoryBytes() const {
  size_t bytes = nodes_.capacity() * sizeof(Node);
  for (const Node& n : nodes_) bytes += n.label.MemoryBytes();
  for (const Group& g : groups_) {
    bytes += sizeof(Group) + g.members.capacity() * sizeof(NodeId) +
             g.sc.MemoryBytes();
  }
  return bytes;
}

}  // namespace lazyxml
