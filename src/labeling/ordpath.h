// ORDPATH labels — O'Neil et al., "ORDPATHs: Insert-Friendly XML Node
// Labels" (SIGMOD 2004), reference [8] of the paper.
//
// A label is a sequence of integer components. Initial allocation uses
// only odd ordinals (1, 3, 5, ...); insertions between existing siblings
// spill into even "caret" components that extend the label without
// claiming a tree level, so existing labels never change. A node X is an
// ancestor of Y iff X's label is a proper prefix of Y's (complete labels
// always end in an odd component, carets are always followed by more
// components, so prefix == ancestry). Document order is component-wise
// lexicographic with prefixes first (preorder).
//
// Built here as a second immutable-labeling baseline beside PRIME: it
// demonstrates the §1/§2 storage-overhead story — label length grows with
// depth and with insert-heavy workloads (the Ω(N)-bits result of [4]
// applies to any immutable scheme).

#ifndef LAZYXML_LABELING_ORDPATH_H_
#define LAZYXML_LABELING_ORDPATH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/tag_dict.h"

namespace lazyxml {

/// One ORDPATH label.
class OrdPathLabel {
 public:
  /// The empty label (super-root; ancestor of everything).
  OrdPathLabel() = default;

  /// From explicit components (tests).
  static OrdPathLabel FromComponents(std::vector<int64_t> comps);

  const std::vector<int64_t>& components() const { return comps_; }

  /// Number of tree levels = number of odd components (carets don't
  /// count).
  uint32_t Level() const;

  /// True iff *this is a proper ancestor of `other` (proper prefix).
  bool IsAncestorOf(const OrdPathLabel& other) const;

  /// Document-order comparison: lexicographic, prefixes first.
  int Compare(const OrdPathLabel& other) const;
  bool operator<(const OrdPathLabel& o) const { return Compare(o) < 0; }
  bool operator==(const OrdPathLabel& o) const { return comps_ == o.comps_; }
  bool operator!=(const OrdPathLabel& o) const { return !(*this == o); }

  /// First-child label of *this (appends ordinal 1).
  OrdPathLabel FirstChild() const;

  /// A label sorting strictly after `sibling` under the same parent.
  static OrdPathLabel After(const OrdPathLabel& parent,
                            const OrdPathLabel& sibling);

  /// A label sorting strictly before `sibling` under the same parent.
  static OrdPathLabel Before(const OrdPathLabel& parent,
                             const OrdPathLabel& sibling);

  /// A label strictly between two siblings of `parent` (left < right).
  static Result<OrdPathLabel> Between(const OrdPathLabel& parent,
                                      const OrdPathLabel& left,
                                      const OrdPathLabel& right);

  /// "1.5.6.1" — dotted rendering.
  std::string ToString() const;

  /// Bytes of a simple varint (LEB128-with-sign) encoding — the storage
  /// cost tracked by the label-size study. (The original paper uses a
  /// tuned prefix-free bit encoding; varint preserves the growth shape.)
  size_t EncodedBytes() const;

  size_t MemoryBytes() const {
    return comps_.capacity() * sizeof(int64_t) + sizeof(*this);
  }

 private:
  std::vector<int64_t> comps_;
};

/// ORDPATH labeling of one document, with order-preserving insertion.
class OrdPathLabeling {
 public:
  using NodeId = uint64_t;
  static constexpr NodeId kNoNode = ~0ull;

  OrdPathLabeling() = default;
  OrdPathLabeling(const OrdPathLabeling&) = delete;
  OrdPathLabeling& operator=(const OrdPathLabeling&) = delete;

  /// Parses and labels a single-rooted document (odd ordinals only).
  Status BuildFromDocument(std::string_view text);

  /// Inserts a new leaf with tag `name` under `parent`, positioned
  /// between `left` and `right` (either may be kNoNode for first/last;
  /// both kNoNode appends as only/last child). Existing labels are
  /// untouched — the immutability contract.
  Result<NodeId> InsertElement(std::string_view name, NodeId parent,
                               NodeId left, NodeId right);

  /// Parses a fragment, inserting its elements under `parent` between
  /// `left` and `right`. Returns the fragment root's node.
  Result<NodeId> InsertFragment(std::string_view text, NodeId parent,
                                NodeId left, NodeId right);

  Result<bool> IsAncestor(NodeId a, NodeId d) const;
  Result<bool> Precedes(NodeId x, NodeId y) const;
  Result<const OrdPathLabel*> Label(NodeId n) const;
  Result<uint32_t> LevelOf(NodeId n) const;

  /// Children of `n` in document order (kNoNode for the root list).
  Result<std::vector<NodeId>> ChildrenOf(NodeId n) const;

  size_t num_nodes() const { return nodes_.size(); }

  /// Total encoded label bytes (the storage-overhead metric).
  size_t TotalLabelBytes() const;

  /// Longest label, in components.
  size_t MaxLabelComponents() const;

 private:
  struct Node {
    OrdPathLabel label;
    TagId tid = kInvalidTagId;
    NodeId parent = kNoNode;
    std::vector<NodeId> children;  // document order
  };

  TagDict dict_;
  std::vector<Node> nodes_;
  std::vector<NodeId> roots_;  // single element after BuildFromDocument
};

}  // namespace lazyxml

#endif  // LAZYXML_LABELING_ORDPATH_H_
