#include "labeling/primes.h"

#include <cmath>

namespace lazyxml {

std::vector<uint64_t> GeneratePrimes(size_t count) {
  std::vector<uint64_t> primes;
  if (count == 0) return primes;
  primes.reserve(count);
  // Upper bound on the n-th prime: n (ln n + ln ln n) for n >= 6.
  size_t bound = 16;
  if (count >= 6) {
    const double n = static_cast<double>(count);
    bound = static_cast<size_t>(n * (std::log(n) + std::log(std::log(n)))) + 8;
  }
  for (;;) {
    std::vector<bool> composite(bound + 1, false);
    primes.clear();
    for (size_t i = 2; i <= bound && primes.size() < count; ++i) {
      if (composite[i]) continue;
      primes.push_back(i);
      for (size_t j = i * i; j <= bound; j += i) composite[j] = true;
    }
    if (primes.size() >= count) return primes;
    bound *= 2;  // Bound estimate too tight; retry larger.
  }
}

uint64_t PrimeSupply::NextPrime() {
  if (next_index_ >= primes_.size()) {
    Extend(next_index_ + 1);
  }
  return primes_[next_index_++];
}

void PrimeSupply::Extend(size_t at_least) {
  size_t target = primes_.size() == 0 ? 1024 : primes_.size() * 2;
  if (target < at_least) target = at_least;
  primes_ = GeneratePrimes(target);
}

}  // namespace lazyxml
