#include "query/xpath.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/strings.h"
#include "obs/metrics.h"
#include "query/path_summary.h"

namespace lazyxml {

namespace {

// ---------------------------------------------------------------------------
// Parser

bool IsNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool IsNameChar(char c) {
  return IsNameStart(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

struct Parser {
  std::string_view s;
  size_t pos = 0;

  Status Error(const char* what) const {
    return Status::InvalidArgument(
        StringPrintf("xpath: %s at offset %zu", what, pos));
  }

  bool AtEnd() const { return pos >= s.size(); }
  char Peek() const { return s[pos]; }

  /// axis := '//' | '/'. Sets *descendant on success.
  bool TryAxis(bool* descendant) {
    if (AtEnd() || s[pos] != '/') return false;
    if (pos + 1 < s.size() && s[pos + 1] == '/') {
      pos += 2;
      *descendant = true;
    } else {
      pos += 1;
      *descendant = false;
    }
    return true;
  }

  Result<std::vector<XPathStep>> ParsePath(size_t depth) {
    if (depth > kMaxXPathPredicateDepth) {
      return Error("predicates nested too deeply");
    }
    std::vector<XPathStep> steps;
    // Optional leading axis. Omitted means descendant — at top level the
    // first step's axis is ignored anyway, inside a predicate it selects
    // the first hop from the context element.
    bool axis_desc = true;
    TryAxis(&axis_desc);
    for (;;) {
      if (steps.size() >= kMaxXPathSteps) return Error("too many steps");
      XPathStep step;
      step.descendant_axis = axis_desc;
      if (AtEnd()) return Error("expected a name test");
      if (Peek() == '*') {
        step.wildcard = true;
        ++pos;
      } else if (IsNameStart(Peek())) {
        const size_t begin = pos;
        while (!AtEnd() && IsNameChar(Peek())) ++pos;
        step.name.assign(s.substr(begin, pos - begin));
      } else {
        return Error("expected a name test");
      }
      while (!AtEnd() && Peek() == '[') {
        ++pos;
        LAZYXML_ASSIGN_OR_RETURN(std::vector<XPathStep> pred,
                                 ParsePath(depth + 1));
        if (AtEnd() || Peek() != ']') return Error("expected ']'");
        ++pos;
        step.predicates.push_back(std::move(pred));
      }
      steps.push_back(std::move(step));
      if (AtEnd() || Peek() == ']') break;
      if (!TryAxis(&axis_desc)) return Error("expected '/' or '//'");
    }
    return steps;
  }
};

void FormatSteps(const std::vector<XPathStep>& steps, bool leading_axis,
                 std::string* out) {
  for (size_t i = 0; i < steps.size(); ++i) {
    if (i > 0 || leading_axis) {
      out->append(steps[i].descendant_axis ? "//" : "/");
    }
    if (steps[i].wildcard) {
      out->push_back('*');
    } else {
      out->append(steps[i].name);
    }
    for (const auto& pred : steps[i].predicates) {
      out->push_back('[');
      // Always print the predicate's leading axis: '[x]' parses as
      // '[//x]', so printing it makes the round trip canonical.
      FormatSteps(pred, true, out);
      out->push_back(']');
    }
  }
}

// ---------------------------------------------------------------------------
// Summary pattern matching
//
// Matches the pattern against the path summary: a summary node "matches
// step i" when its tag passes the name test, it holds a live element,
// its path chains from a step i-1 match along the step's axis, and
// every predicate of the step is satisfiable beneath it. Each condition
// is NECESSARY for a real element chain (every element lies on its
// root-to-tag path; axes translate to path-tree edges; existence needs
// count > 0), so an empty match set proves the answer empty and the
// matched tags are a complete wildcard expansion (docs/PATH_SUMMARY.md).

bool StepTagMatches(const PathSummary& ps, uint32_t node,
                    const XPathStep& step, const TagDict& dict) {
  if (step.wildcard) return true;
  const std::string_view name = dict.Name(ps.tag(node));
  return !name.empty() && name == step.name;
}

bool PredsSatisfiable(const PathSummary& ps, const TagDict& dict,
                      uint32_t node, const XPathStep& step);

/// True when some chain matching steps[idx..] hangs below `node` (first
/// hop along steps[idx]'s axis).
bool ChainBelow(const PathSummary& ps, const TagDict& dict, uint32_t node,
                const std::vector<XPathStep>& steps, size_t idx) {
  if (idx == steps.size()) return true;
  const XPathStep& step = steps[idx];
  std::vector<uint32_t> work(ps.children(node).begin(),
                             ps.children(node).end());
  while (!work.empty()) {
    const uint32_t n = work.back();
    work.pop_back();
    if (ps.count(n) > 0 && StepTagMatches(ps, n, step, dict) &&
        PredsSatisfiable(ps, dict, n, step) &&
        ChainBelow(ps, dict, n, steps, idx + 1)) {
      return true;
    }
    if (step.descendant_axis) {
      for (uint32_t c : ps.children(n)) work.push_back(c);
    }
  }
  return false;
}

bool PredsSatisfiable(const PathSummary& ps, const TagDict& dict,
                      uint32_t node, const XPathStep& step) {
  for (const auto& pred : step.predicates) {
    if (!ChainBelow(ps, dict, node, pred, 0)) return false;
  }
  return true;
}

/// Summary nodes matching each step of the outermost path. An empty set
/// at any step proves the answer empty. The first step matches anywhere
/// (implicit descendant-of-root), like EvaluatePath.
std::vector<std::vector<uint32_t>> MatchSummary(
    const PathSummary& ps, const TagDict& dict,
    const std::vector<XPathStep>& steps) {
  std::vector<std::vector<uint32_t>> matched(steps.size());
  for (uint32_t n = 1; n < ps.num_nodes(); ++n) {
    if (ps.count(n) > 0 && StepTagMatches(ps, n, steps[0], dict) &&
        PredsSatisfiable(ps, dict, n, steps[0])) {
      matched[0].push_back(n);
    }
  }
  for (size_t i = 1; i < steps.size() && !matched[i - 1].empty(); ++i) {
    const XPathStep& step = steps[i];
    const std::unordered_set<uint32_t> prev(matched[i - 1].begin(),
                                            matched[i - 1].end());
    for (uint32_t n = 1; n < ps.num_nodes(); ++n) {
      if (ps.count(n) == 0 || !StepTagMatches(ps, n, step, dict)) continue;
      bool chained = false;
      if (step.descendant_axis) {
        for (uint32_t a = ps.parent(n);
             a != PathSummary::kNoNode && a != PathSummary::kRootNode;
             a = ps.parent(a)) {
          if (prev.count(a) != 0) {
            chained = true;
            break;
          }
        }
      } else {
        const uint32_t par = ps.parent(n);
        chained = par != PathSummary::kNoNode && prev.count(par) != 0;
      }
      if (chained && PredsSatisfiable(ps, dict, n, step)) {
        matched[i].push_back(n);
      }
    }
  }
  return matched;
}

// ---------------------------------------------------------------------------
// Lazy-Join compilation
//
// Element sets are keyed by global start offset (unique per element:
// each element owns the byte of its opening '<'), partitioned by tag so
// every axis edge maps onto JoinByName plans — which prune through the
// path summary internally. Predicates are backward semi-joins: the
// predicate chain is evaluated forward keeping each hop's
// descendant->context edges, then survivors propagate back.

using StartSet = std::unordered_set<uint64_t>;
using TagSets = std::unordered_map<TagId, StartSet>;

struct Evaluator {
  QueryFacade* db = nullptr;
  LazyJoinOptions options;  // parent_child overridden per edge
  const PathSummary* summary = nullptr;
  XPathResult result;
  /// start -> element per materialized tag (for the final output).
  std::unordered_map<TagId, std::unordered_map<uint64_t, GlobalElement>>
      materialized;

  /// Tags that can occur at a pattern position: the summary-matched tags
  /// when a match list is given, else the name's tid (every interned tag
  /// for a wildcard).
  std::vector<TagId> CandidateTags(const XPathStep& step,
                                   const std::vector<uint32_t>* match) {
    std::vector<TagId> tags;
    const TagDict& dict = db->tag_dict();
    if (match != nullptr) {
      std::unordered_set<TagId> seen;
      for (uint32_t n : *match) {
        if (seen.insert(summary->tag(n)).second) {
          tags.push_back(summary->tag(n));
        }
      }
      return tags;
    }
    if (!step.wildcard) {
      auto tid = dict.Lookup(step.name);
      if (tid.ok()) tags.push_back(tid.ValueOrDie());
      return tags;
    }
    tags.reserve(dict.size());
    for (TagId t = 0; t < dict.size(); ++t) tags.push_back(t);
    return tags;
  }

  Status Materialize(TagId tid) {
    if (materialized.count(tid) != 0) return Status::OK();
    LAZYXML_ASSIGN_OR_RETURN(
        std::vector<GlobalElement> elems,
        db->MaterializeGlobalElements(db->tag_dict().Name(tid)));
    auto& by_start = materialized[tid];
    by_start.reserve(elems.size());
    for (const GlobalElement& e : elems) by_start.emplace(e.start, e);
    return Status::OK();
  }

  /// One pattern hop: joins every nonempty context tag against every
  /// candidate tag, keeping pairs whose ancestor is in the context set.
  /// Fills the hop's elements (by tag) and the (dstart, atag, astart)
  /// edges the backward pass needs.
  struct Edge {
    uint64_t dstart;
    TagId atag;
    uint64_t astart;
  };
  Status Hop(const TagSets& ctx, const XPathStep& step,
             const std::vector<uint32_t>* match, TagSets* hop,
             std::vector<Edge>* edges) {
    const TagDict& dict = db->tag_dict();
    const std::vector<TagId> dtags = CandidateTags(step, match);
    LazyJoinOptions jopts = options;
    jopts.parent_child = !step.descendant_axis;
    for (const auto& [atag, aset] : ctx) {
      if (aset.empty()) continue;
      for (TagId dtag : dtags) {
        LAZYXML_ASSIGN_OR_RETURN(
            LazyJoinResult join,
            db->JoinByName(dict.Name(atag), dict.Name(dtag), jopts));
        ++result.joins_executed;
        result.intermediate_pairs += join.pairs.size();
        result.segments_pruned += join.stats.segments_pruned;
        result.elements_skipped += join.stats.elements_skipped;
        for (const LazyJoinPair& p : join.pairs) {
          LAZYXML_ASSIGN_OR_RETURN(JoinPair g, db->ToGlobalPair(p));
          if (aset.count(g.ancestor_start) != 0) {
            (*hop)[dtag].insert(g.descendant_start);
            edges->push_back(Edge{g.descendant_start, atag, g.ancestor_start});
          }
        }
      }
    }
    return Status::OK();
  }

  /// Applies `step`'s predicates to `elems`, most selective first when a
  /// summary is available (pure existence tests commute, so the order
  /// only affects how fast the candidate sets shrink).
  Result<TagSets> FilterPredicates(TagSets elems, const XPathStep& step) {
    std::vector<size_t> order(step.predicates.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    if (summary != nullptr && order.size() > 1) {
      std::vector<uint64_t> estimate(order.size());
      for (size_t i = 0; i < order.size(); ++i) {
        const XPathStep& first = step.predicates[i][0];
        if (first.wildcard) {
          estimate[i] = summary->total_count();
        } else {
          auto tid = db->tag_dict().Lookup(first.name);
          estimate[i] =
              tid.ok() ? summary->TagCount(tid.ValueOrDie()) : 0;
        }
      }
      std::stable_sort(order.begin(), order.end(),
                       [&estimate](size_t a, size_t b) {
                         return estimate[a] < estimate[b];
                       });
    }
    for (size_t i : order) {
      LAZYXML_ASSIGN_OR_RETURN(
          elems, Chain(std::move(elems), step.predicates[i], 0));
      uint64_t remaining = 0;
      for (const auto& [tag, set] : elems) remaining += set.size();
      if (remaining == 0) break;
    }
    return elems;
  }

  /// Backward semi-join: the subset of `ctx` rooting at least one chain
  /// matching steps[idx..].
  Result<TagSets> Chain(TagSets ctx, const std::vector<XPathStep>& steps,
                        size_t idx) {
    if (idx == steps.size()) return ctx;
    TagSets hop;
    std::vector<Edge> edges;
    LAZYXML_RETURN_NOT_OK(Hop(ctx, steps[idx], nullptr, &hop, &edges));
    LAZYXML_ASSIGN_OR_RETURN(hop, FilterPredicates(std::move(hop),
                                                   steps[idx]));
    LAZYXML_ASSIGN_OR_RETURN(hop, Chain(std::move(hop), steps, idx + 1));
    StartSet surviving;
    for (const auto& [tag, set] : hop) {
      surviving.insert(set.begin(), set.end());
    }
    TagSets out;
    for (const Edge& e : edges) {
      if (surviving.count(e.dstart) != 0) out[e.atag].insert(e.astart);
    }
    return out;
  }

  Status Run(const std::vector<XPathStep>& steps,
             const std::vector<std::vector<uint32_t>>* matched) {
    // Step 0: every element of the candidate tags.
    TagSets cur;
    for (TagId tid :
         CandidateTags(steps[0], matched != nullptr ? &(*matched)[0]
                                                    : nullptr)) {
      LAZYXML_RETURN_NOT_OK(Materialize(tid));
      StartSet& set = cur[tid];
      for (const auto& [start, elem] : materialized[tid]) set.insert(start);
    }
    LAZYXML_ASSIGN_OR_RETURN(cur,
                             FilterPredicates(std::move(cur), steps[0]));
    for (size_t i = 1; i < steps.size(); ++i) {
      TagSets hop;
      std::vector<Edge> edges;
      LAZYXML_RETURN_NOT_OK(
          Hop(cur, steps[i],
              matched != nullptr ? &(*matched)[i] : nullptr, &hop, &edges));
      LAZYXML_ASSIGN_OR_RETURN(cur,
                               FilterPredicates(std::move(hop), steps[i]));
    }
    for (const auto& [tid, set] : cur) {
      LAZYXML_RETURN_NOT_OK(Materialize(tid));
      const auto& by_start = materialized[tid];
      for (uint64_t start : set) {
        auto it = by_start.find(start);
        if (it == by_start.end()) {
          return Status::Internal("xpath: join produced an unknown element");
        }
        result.elements.push_back(it->second);
      }
    }
    std::sort(result.elements.begin(), result.elements.end());
    result.elements.erase(
        std::unique(result.elements.begin(), result.elements.end()),
        result.elements.end());
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// Naive oracle

struct NaiveNode {
  GlobalElement elem;
  TagId tid = kInvalidTagId;
  size_t parent = SIZE_MAX;
  size_t subtree_end = 0;  ///< one past the last node in the subtree
};

bool NaiveTagMatches(const TagDict& dict, TagId tid, const XPathStep& step) {
  return step.wildcard || dict.Name(tid) == step.name;
}

bool NaivePredsHold(const std::vector<NaiveNode>& nodes, const TagDict& dict,
                    size_t n, const XPathStep& step);

/// True when some chain matching steps[idx..] hangs below node `n`.
bool NaiveChainBelow(const std::vector<NaiveNode>& nodes, const TagDict& dict,
                     size_t n, const std::vector<XPathStep>& steps,
                     size_t idx) {
  if (idx == steps.size()) return true;
  const XPathStep& step = steps[idx];
  for (size_t c = n + 1; c < nodes[n].subtree_end; ++c) {
    if (!step.descendant_axis && nodes[c].parent != n) continue;
    if (NaiveTagMatches(dict, nodes[c].tid, step) &&
        NaivePredsHold(nodes, dict, c, step) &&
        NaiveChainBelow(nodes, dict, c, steps, idx + 1)) {
      return true;
    }
  }
  return false;
}

bool NaivePredsHold(const std::vector<NaiveNode>& nodes, const TagDict& dict,
                    size_t n, const XPathStep& step) {
  for (const auto& pred : step.predicates) {
    if (!NaiveChainBelow(nodes, dict, n, pred, 0)) return false;
  }
  return true;
}

}  // namespace

Result<std::vector<XPathStep>> ParseXPath(std::string_view expr) {
  if (expr.size() > kMaxXPathLength) {
    return Status::InvalidArgument("xpath: expression too long");
  }
  Parser p{expr};
  LAZYXML_ASSIGN_OR_RETURN(std::vector<XPathStep> steps, p.ParsePath(0));
  if (!p.AtEnd()) return p.Error("trailing characters");
  return steps;
}

std::string FormatXPath(const std::vector<XPathStep>& steps) {
  std::string out;
  FormatSteps(steps, false, &out);
  return out;
}

Result<XPathResult> EvaluateXPath(QueryFacade* db,
                                  const std::vector<XPathStep>& steps,
                                  const LazyJoinOptions& options) {
  if (steps.empty()) {
    return Status::InvalidArgument("xpath: empty expression");
  }
  Evaluator ev;
  ev.db = db;
  ev.options = options;
  ev.summary = db->path_summary();
  std::vector<std::vector<uint32_t>> matched;
  if (ev.summary != nullptr) {
    matched = MatchSummary(*ev.summary, db->tag_dict(), steps);
    for (const auto& m : matched) {
      if (!m.empty()) continue;
      // The summary proved the answer empty: no tag list is scanned.
      ev.result.summary_empty = true;
      LAZYXML_METRIC_COUNTER(pruned_joins, "query.joins_pruned_total");
      pruned_joins.Increment();
      return std::move(ev.result);
    }
  }
  LAZYXML_RETURN_NOT_OK(
      ev.Run(steps, ev.summary != nullptr ? &matched : nullptr));
  return std::move(ev.result);
}

Result<XPathResult> EvaluateXPath(QueryFacade* db, std::string_view expr,
                                  const LazyJoinOptions& options) {
  LAZYXML_ASSIGN_OR_RETURN(std::vector<XPathStep> steps, ParseXPath(expr));
  return EvaluateXPath(db, steps, options);
}

Result<std::vector<GlobalElement>> EvaluateXPathNaive(
    QueryFacade* db, const std::vector<XPathStep>& steps) {
  if (steps.empty()) {
    return Status::InvalidArgument("xpath: empty expression");
  }
  const TagDict& dict = db->tag_dict();
  std::vector<NaiveNode> nodes;
  for (TagId tid = 0; tid < dict.size(); ++tid) {
    LAZYXML_ASSIGN_OR_RETURN(std::vector<GlobalElement> elems,
                             db->MaterializeGlobalElements(dict.Name(tid)));
    for (const GlobalElement& e : elems) {
      nodes.push_back(NaiveNode{e, tid, SIZE_MAX, 0});
    }
  }
  // Preorder: by start ascending; containers before their first child
  // (equal starts impossible — each element owns its '<' byte).
  std::sort(nodes.begin(), nodes.end(),
            [](const NaiveNode& a, const NaiveNode& b) {
              return a.elem.start < b.elem.start;
            });
  {
    std::vector<size_t> stack;
    for (size_t i = 0; i < nodes.size(); ++i) {
      while (!stack.empty() &&
             nodes[stack.back()].elem.end <= nodes[i].elem.start) {
        nodes[stack.back()].subtree_end = i;
        stack.pop_back();
      }
      nodes[i].parent = stack.empty() ? SIZE_MAX : stack.back();
      stack.push_back(i);
    }
    while (!stack.empty()) {
      nodes[stack.back()].subtree_end = nodes.size();
      stack.pop_back();
    }
  }

  std::vector<uint8_t> cur(nodes.size(), 0);
  for (size_t i = 0; i < nodes.size(); ++i) {
    cur[i] = NaiveTagMatches(dict, nodes[i].tid, steps[0]) &&
             NaivePredsHold(nodes, dict, i, steps[0]);
  }
  for (size_t si = 1; si < steps.size(); ++si) {
    const XPathStep& step = steps[si];
    std::vector<uint8_t> next(nodes.size(), 0);
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (!NaiveTagMatches(dict, nodes[i].tid, step)) continue;
      bool chained = false;
      if (step.descendant_axis) {
        for (size_t a = nodes[i].parent; a != SIZE_MAX; a = nodes[a].parent) {
          if (cur[a]) {
            chained = true;
            break;
          }
        }
      } else {
        chained = nodes[i].parent != SIZE_MAX && cur[nodes[i].parent];
      }
      if (chained && NaivePredsHold(nodes, dict, i, step)) next[i] = 1;
    }
    cur.swap(next);
  }

  std::vector<GlobalElement> out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (cur[i]) out.push_back(nodes[i].elem);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace lazyxml
