// PathSummary: the document's DataGuide — one node per distinct
// root-to-tag path that occurs in the super document, annotated with the
// number of live elements on that path and the segments that hold them
// (Arion et al., "Path Summaries and Path Partitioning in Modern XML
// Databases", PAPERS.md).
//
// The summary is a pure data structure: it knows nothing about the
// update log or the element index. LazyDatabase owns one, builds it from
// a live traversal (LazyDatabase::BuildPathSummary) and maintains it
// incrementally through every lazy update path, epoch-stamping it like
// the scan cache so a stale summary can never be consulted (see
// docs/PATH_SUMMARY.md). The structural join planner interrogates it
// through ComputeJoinPrune: a join whose descendant tag reaches no
// summary node under the ancestor tag is provably empty and is answered
// in O(summary) without touching a tag list; otherwise the qualifying
// segment sets narrow the tag-list scans before the Lazy-Join kernel
// starts — with output byte-identical to the unpruned join (the
// soundness argument lives in docs/PATH_SUMMARY.md).
//
// Attribution invariant the maintenance relies on: an element's
// root-to-tag path is immutable for its lifetime. Splice insertions
// never re-parent existing elements (a new segment's text nests strictly
// inside the innermost element containing the splice point) and
// removals always take whole elements together with everything inside
// them, so the ancestor tag chain recorded at insertion time — the
// segment's NestingEntry chain plus the segment's splice-point context —
// stays the truth until the element dies.

#ifndef LAZYXML_QUERY_PATH_SUMMARY_H_
#define LAZYXML_QUERY_PATH_SUMMARY_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "core/segment.h"
#include "xml/tag_dict.h"

namespace lazyxml {

/// What the summary proves about one A//D (or A/D) structural join
/// before the kernel starts.
struct JoinPrune {
  /// True when a fresh summary was consulted (false => no claims below).
  bool usable = false;
  /// No live descendant-tag element has a qualifying ancestor-tag
  /// element: the join is empty, no tag list needs to be touched.
  bool provably_empty = false;
  /// Segments that can contribute ancestor-side (resp. descendant-side)
  /// elements to the join. Tag-list entries outside these sets are
  /// dropped before the kernel scans anything; completeness is proven in
  /// docs/PATH_SUMMARY.md.
  std::unordered_set<SegmentId> ancestor_sids;
  std::unordered_set<SegmentId> descendant_sids;
  /// Live descendant-tag elements on qualifying paths — the summary's
  /// selectivity estimate for this edge (twig planners order by it).
  uint64_t qualifying_descendants = 0;
};

/// The path summary (DataGuide).
class PathSummary {
 public:
  /// Node index of the synthetic root (the empty path).
  static constexpr uint32_t kRootNode = 0;
  /// "No node" sentinel (Find miss, root's parent).
  static constexpr uint32_t kNoNode = 0xffffffffu;

  PathSummary();

  // -- Structure -------------------------------------------------------------

  /// The child of `node` with tag `tid`, created (count 0) if absent.
  uint32_t Extend(uint32_t node, TagId tid);

  /// The child of `node` with tag `tid`, or kNoNode.
  uint32_t Find(uint32_t node, TagId tid) const;

  size_t num_nodes() const { return nodes_.size(); }
  TagId tag(uint32_t node) const { return nodes_[node].tag; }
  uint32_t parent(uint32_t node) const { return nodes_[node].parent; }
  uint32_t depth(uint32_t node) const { return nodes_[node].depth; }
  uint64_t count(uint32_t node) const { return nodes_[node].count; }
  const std::vector<uint32_t>& children(uint32_t node) const {
    return nodes_[node].children;
  }
  /// Per-segment live-element counts of `node` (ascending sid).
  const std::map<SegmentId, uint64_t>& seg_counts(uint32_t node) const {
    return nodes_[node].seg_counts;
  }

  /// Summary nodes whose tag is `tid` (creation order; includes nodes
  /// whose count has dropped to zero).
  std::span<const uint32_t> Postings(TagId tid) const;

  // -- Element accounting ----------------------------------------------------

  void AddElement(uint32_t node, SegmentId sid);

  /// Internal error on underflow (an element removed twice / never added
  /// — the I-SUMMARY scrubber would flag the same divergence).
  Status RemoveElement(uint32_t node, SegmentId sid);

  /// Drops every count attributed to `sid` (whole-segment removal).
  void RemoveSegmentAll(SegmentId sid);

  // -- Segment splice contexts -----------------------------------------------

  /// The summary node of the innermost element containing the segment's
  /// splice point — the prefix every element path of the segment hangs
  /// off. kNoNode when the segment is unknown.
  uint32_t SegmentContext(SegmentId sid) const;
  void SetSegmentContext(SegmentId sid, uint32_t node);
  void DropSegmentContext(SegmentId sid);

  // -- Planning --------------------------------------------------------------

  /// Live elements with tag `tid` (sum over the tag's posting nodes).
  uint64_t TagCount(TagId tid) const;

  /// Total live elements.
  uint64_t total_count() const { return total_count_; }

  /// Prunes the structural join ancestor//descendant (or / when
  /// `parent_child`). O(postings(descendant) * depth).
  JoinPrune ComputeJoinPrune(TagId ancestor, TagId descendant,
                             bool parent_child) const;

  // -- Introspection ---------------------------------------------------------

  size_t MemoryBytes() const;

  /// Canonical deep-equality form: one sorted line per count>0 node,
  /// "tid/tid/...=count@sid:n,sid:n". Two summaries describe the same
  /// live document iff their lines match — zero-count nodes (paths that
  /// existed once) are deliberately excluded, so an incrementally
  /// maintained summary compares equal to a freshly built one. Used by
  /// the I-SUMMARY scrubber and the property tests.
  std::vector<std::string> CanonicalLines() const;

 private:
  struct Node {
    TagId tag = kInvalidTagId;
    uint32_t parent = kNoNode;
    uint32_t depth = 0;
    uint64_t count = 0;
    std::vector<uint32_t> children;
    std::map<SegmentId, uint64_t> seg_counts;
  };

  std::vector<Node> nodes_;
  /// tid -> summary nodes with that tag.
  std::vector<std::vector<uint32_t>> postings_;
  /// sid -> splice-point context node.
  std::unordered_map<SegmentId, uint32_t> segment_ctx_;
  uint64_t total_count_ = 0;
};

}  // namespace lazyxml

#endif  // LAZYXML_QUERY_PATH_SUMMARY_H_
