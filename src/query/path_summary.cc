#include "query/path_summary.h"

#include <algorithm>

#include "common/strings.h"

namespace lazyxml {

PathSummary::PathSummary() {
  nodes_.push_back(Node{});  // kRootNode: the empty path
}

uint32_t PathSummary::Extend(uint32_t node, TagId tid) {
  for (uint32_t c : nodes_[node].children) {
    if (nodes_[c].tag == tid) return c;
  }
  const uint32_t id = static_cast<uint32_t>(nodes_.size());
  Node n;
  n.tag = tid;
  n.parent = node;
  n.depth = nodes_[node].depth + 1;
  nodes_[node].children.push_back(id);
  nodes_.push_back(std::move(n));
  if (postings_.size() <= tid) postings_.resize(tid + 1);
  postings_[tid].push_back(id);
  return id;
}

uint32_t PathSummary::Find(uint32_t node, TagId tid) const {
  for (uint32_t c : nodes_[node].children) {
    if (nodes_[c].tag == tid) return c;
  }
  return kNoNode;
}

std::span<const uint32_t> PathSummary::Postings(TagId tid) const {
  if (tid >= postings_.size()) return {};
  return postings_[tid];
}

void PathSummary::AddElement(uint32_t node, SegmentId sid) {
  ++nodes_[node].count;
  ++nodes_[node].seg_counts[sid];
  ++total_count_;
}

Status PathSummary::RemoveElement(uint32_t node, SegmentId sid) {
  Node& n = nodes_[node];
  auto it = n.seg_counts.find(sid);
  if (it == n.seg_counts.end() || n.count == 0) {
    return Status::Internal("path summary underflow: removing an element "
                            "never attributed to this node/segment");
  }
  if (--it->second == 0) n.seg_counts.erase(it);
  --n.count;
  --total_count_;
  return Status::OK();
}

void PathSummary::RemoveSegmentAll(SegmentId sid) {
  // Whole-segment death: subtract the segment's slice from every node.
  // Walked over all nodes rather than via a reverse index — removals are
  // already O(elements of the segment) in the index and tag-list, and
  // summaries are small (one node per distinct path, not per element).
  for (Node& n : nodes_) {
    auto it = n.seg_counts.find(sid);
    if (it == n.seg_counts.end()) continue;
    n.count -= it->second;
    total_count_ -= it->second;
    n.seg_counts.erase(it);
  }
  DropSegmentContext(sid);
}

uint32_t PathSummary::SegmentContext(SegmentId sid) const {
  auto it = segment_ctx_.find(sid);
  return it == segment_ctx_.end() ? kNoNode : it->second;
}

void PathSummary::SetSegmentContext(SegmentId sid, uint32_t node) {
  segment_ctx_[sid] = node;
}

void PathSummary::DropSegmentContext(SegmentId sid) {
  segment_ctx_.erase(sid);
}

uint64_t PathSummary::TagCount(TagId tid) const {
  uint64_t total = 0;
  for (uint32_t n : Postings(tid)) total += nodes_[n].count;
  return total;
}

JoinPrune PathSummary::ComputeJoinPrune(TagId ancestor, TagId descendant,
                                        bool parent_child) const {
  JoinPrune p;
  p.usable = true;
  for (uint32_t m : Postings(descendant)) {
    if (nodes_[m].count == 0) continue;
    // A descendant node qualifies iff its path has the ancestor tag at a
    // proper prefix (direct parent for the / axis). Every live element
    // on the path then has a live ancestor element at that position, and
    // that ancestor's segment is one of the prefix node's seg_counts —
    // so the union below is exactly the set of segments able to
    // contribute a side of a pair (docs/PATH_SUMMARY.md).
    bool qualifies = false;
    if (parent_child) {
      const uint32_t par = nodes_[m].parent;
      if (par != kNoNode && nodes_[par].tag == ancestor) {
        qualifies = true;
        for (const auto& [sid, c] : nodes_[par].seg_counts) {
          p.ancestor_sids.insert(sid);
        }
      }
    } else {
      for (uint32_t a = nodes_[m].parent; a != kNoNode && a != kRootNode;
           a = nodes_[a].parent) {
        if (nodes_[a].tag != ancestor) continue;
        qualifies = true;
        for (const auto& [sid, c] : nodes_[a].seg_counts) {
          p.ancestor_sids.insert(sid);
        }
      }
    }
    if (!qualifies) continue;
    p.qualifying_descendants += nodes_[m].count;
    for (const auto& [sid, c] : nodes_[m].seg_counts) {
      p.descendant_sids.insert(sid);
    }
  }
  p.provably_empty = p.descendant_sids.empty();
  return p;
}

size_t PathSummary::MemoryBytes() const {
  size_t bytes = sizeof(PathSummary) + nodes_.capacity() * sizeof(Node);
  for (const Node& n : nodes_) {
    bytes += n.children.capacity() * sizeof(uint32_t);
    // Map node: key/value plus red-black bookkeeping (~4 words).
    bytes += n.seg_counts.size() *
             (sizeof(SegmentId) + sizeof(uint64_t) + 4 * sizeof(void*));
  }
  for (const auto& list : postings_) {
    bytes += list.capacity() * sizeof(uint32_t);
  }
  bytes += segment_ctx_.size() *
           (sizeof(SegmentId) + sizeof(uint32_t) + 2 * sizeof(void*));
  return bytes;
}

std::vector<std::string> PathSummary::CanonicalLines() const {
  std::vector<std::string> lines;
  // Iterative DFS carrying the path string; node order within the tree
  // does not matter because the lines are sorted at the end.
  std::vector<std::pair<uint32_t, std::string>> work;
  work.emplace_back(kRootNode, "");
  while (!work.empty()) {
    auto [id, path] = std::move(work.back());
    work.pop_back();
    const Node& n = nodes_[id];
    if (id != kRootNode && n.count > 0) {
      std::string line = path;
      line += StringPrintf("=%llu@", static_cast<unsigned long long>(n.count));
      bool first = true;
      for (const auto& [sid, c] : n.seg_counts) {
        line += StringPrintf(first ? "%llu:%llu" : ",%llu:%llu",
                             static_cast<unsigned long long>(sid),
                             static_cast<unsigned long long>(c));
        first = false;
      }
      lines.push_back(std::move(line));
    }
    for (uint32_t c : n.children) {
      std::string child_path = path;
      if (id != kRootNode) child_path += '/';
      child_path += StringPrintf("%u", nodes_[c].tag);
      work.emplace_back(c, std::move(child_path));
    }
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

}  // namespace lazyxml
