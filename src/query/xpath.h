// XPath-subset queries over the lazy store.
//
// Grammar (a strict superset of the path/twig syntaxes in
// core/path_query.h and core/twig_query.h, adding wildcards):
//
//   xpath     := axis? step (axis step)*
//   axis      := '//' | '/'
//   step      := nametest predicate*
//   nametest  := '*' | tagname
//   predicate := '[' xpath ']'            (structural existence test)
//
// As in EvaluatePath, the axis *into the first step* is ignored: the
// first step selects all elements of its name test anywhere in the super
// document (every query is implicitly rooted at the dummy root with a
// descendant axis). Inside a predicate, an omitted leading axis means
// descendant ('person[profile]' == 'person[.//profile]' in full XPath).
//
// Compilation targets the existing Lazy-Join machinery: each axis edge
// becomes one QueryFacade::JoinByName per (context tag, step tag) pair
// — which prunes through the path summary internally — and predicates
// become backward semi-joins over the same plans. Before any join runs,
// the whole pattern (predicates included) is matched against the path
// summary (query/path_summary.h) when one is fresh:
//  * a pattern reaching no summary node is answered empty with ZERO tag
//    list scans (XPathResult::summary_empty);
//  * wildcard steps expand to exactly the tags the summary proved can
//    occur at that pattern position (without a summary: every tag);
//  * predicates are reordered most-selective-first by the summary's
//    qualifying counts (pure existence tests commute).
// The result is byte-identical with and without the summary — pruning
// only removes provably pairless work (docs/PATH_SUMMARY.md).

#ifndef LAZYXML_QUERY_XPATH_H_
#define LAZYXML_QUERY_XPATH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/query_facade.h"
#include "join/global_element.h"

namespace lazyxml {

/// One step of a parsed XPath expression.
struct XPathStep {
  /// Name test; empty iff `wildcard`.
  std::string name;
  bool wildcard = false;
  /// Axis leading into this step: true for '//', false for '/'. Ignored
  /// on the first step of the outermost path; inside predicates the
  /// first step's axis is relative to the context element.
  bool descendant_axis = true;
  /// Structural predicates, each a relative path evaluated for
  /// existence at this step's elements.
  std::vector<std::vector<XPathStep>> predicates;
};

/// Parse limits (inputs come over the wire / from the fuzzer).
inline constexpr size_t kMaxXPathLength = 4096;
inline constexpr size_t kMaxXPathPredicateDepth = 16;
inline constexpr size_t kMaxXPathSteps = 256;

/// Parses the grammar above; InvalidArgument with a position-annotated
/// message on malformed input.
Result<std::vector<XPathStep>> ParseXPath(std::string_view expr);

/// Serializes a parsed path back to canonical text (tests/fuzzing:
/// parse(Format(p)) == p).
std::string FormatXPath(const std::vector<XPathStep>& steps);

/// XPath evaluation result.
struct XPathResult {
  /// Matching final-step elements in global coordinates, sorted,
  /// deduplicated.
  std::vector<GlobalElement> elements;
  /// Lazy-Joins executed (0 when the summary answered the query).
  uint64_t joins_executed = 0;
  /// Join pairs materialized across all edges (work measure).
  uint64_t intermediate_pairs = 0;
  /// True when the path summary proved the answer empty before any tag
  /// list was scanned.
  bool summary_empty = false;
  /// Aggregated pruning counters from the underlying joins (plus the
  /// whole lists skipped on a summary_empty answer; see LazyJoinStats).
  uint64_t segments_pruned = 0;
  uint64_t elements_skipped = 0;
};

/// Evaluates `steps` over `db` by compiling to Lazy-Join plans.
Result<XPathResult> EvaluateXPath(QueryFacade* db,
                                  const std::vector<XPathStep>& steps,
                                  const LazyJoinOptions& options = {});

/// Convenience: parse + evaluate.
Result<XPathResult> EvaluateXPath(QueryFacade* db, std::string_view expr,
                                  const LazyJoinOptions& options = {});

/// Oracle: evaluates `steps` by materializing every element of the super
/// document and walking the tree directly — no joins, no summary, no
/// pruning. Quadratic; for tests and the fuzz compile-oracle only.
Result<std::vector<GlobalElement>> EvaluateXPathNaive(
    QueryFacade* db, const std::vector<XPathStep>& steps);

}  // namespace lazyxml

#endif  // LAZYXML_QUERY_XPATH_H_
