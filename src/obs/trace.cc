#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>

namespace lazyxml {
namespace obs {
namespace {

// Per-thread nesting state: the open trace id and depth. A top-level
// span (depth 0) mints a trace id; nested spans inherit it.
struct ThreadTraceState {
  uint64_t trace_id = 0;
  uint32_t depth = 0;
};

ThreadTraceState& ThisThreadTrace() {
  thread_local ThreadTraceState state;
  return state;
}

}  // namespace

TraceRing::TraceRing(size_t capacity) {
  ring_.resize(capacity == 0 ? 1 : capacity);
}

TraceRing& TraceRing::Global() {
  static TraceRing* const kGlobal = new TraceRing();
  return *kGlobal;
}

uint64_t TraceRing::NowMicros() {
  static const std::chrono::steady_clock::time_point kEpoch =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - kEpoch)
          .count());
}

void TraceRing::Record(const SpanRecord& span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (size_ == ring_.size()) ++dropped_;
  ring_[next_] = span;
  next_ = (next_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
}

std::vector<SpanRecord> TraceRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(size_);
  // Oldest entry sits at next_ once the ring has wrapped, else at 0.
  const size_t start = size_ == ring_.size() ? next_ : 0;
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::string TraceRing::DumpJson() const {
  std::vector<SpanRecord> spans = Snapshot();
  const uint64_t dropped_count = dropped();
  std::string out = "{\"spans\":[";
  char buf[160];
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    if (i != 0) out.push_back(',');
    std::snprintf(buf, sizeof(buf),
                  "{\"trace\":%" PRIu64 ",\"depth\":%" PRIu32
                  ",\"name\":\"%s\",\"start_us\":%" PRIu64
                  ",\"dur_us\":%" PRIu64 "}",
                  s.trace_id, s.depth, s.name, s.start_us, s.duration_us);
    out.append(buf);
  }
  std::snprintf(buf, sizeof(buf), "],\"dropped\":%" PRIu64 "}", dropped_count);
  out.append(buf);
  return out;
}

void TraceRing::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  next_ = 0;
  size_ = 0;
  dropped_ = 0;
}

uint64_t TraceRing::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

TraceSpan::TraceSpan(const char* name, TraceRing* ring)
    : ring_(ring != nullptr && ring->enabled() ? ring : nullptr),
      name_(name) {
  if (ring_ == nullptr) return;
  ThreadTraceState& t = ThisThreadTrace();
  if (t.depth == 0) t.trace_id = ring_->NextTraceId();
  trace_id_ = t.trace_id;
  depth_ = t.depth++;
  start_us_ = TraceRing::NowMicros();
}

TraceSpan::~TraceSpan() {
  if (ring_ == nullptr) return;
  SpanRecord span;
  span.trace_id = trace_id_;
  span.depth = depth_;
  span.name = name_;
  span.start_us = start_us_;
  span.duration_us = TraceRing::NowMicros() - start_us_;
  ring_->Record(span);
  ThreadTraceState& t = ThisThreadTrace();
  if (t.depth > 0 && --t.depth == 0) t.trace_id = 0;
}

}  // namespace obs
}  // namespace lazyxml
