// Query trace spans: RAII scopes that record per-phase wall-clock
// timings into a bounded ring buffer.
//
// A span is cheap but not free (two steady_clock reads plus one
// mutex-protected ring push), so spans mark per-query *phases* — parse,
// element scan, partition-seed pre-pass, join rounds, splice — never
// per-element work. Spans started on one thread nest via a thread-local
// (trace id, depth) pair: the first span on a thread opens a new trace,
// nested spans inherit its id with depth+1, so the dump reconstructs the
// phase tree per query even when partitions run on pool threads (each
// pool thread's partition span opens its own trace; correlate by time).
//
// The ring is bounded (default 4096 spans) and overwrites the oldest
// entry, so tracing can stay on in production without unbounded memory;
// `dropped()` counts overwritten spans. `DumpJson()` emits the ring
// oldest-first. See docs/OBSERVABILITY.md for the span catalog.

#ifndef LAZYXML_OBS_TRACE_H_
#define LAZYXML_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace lazyxml {
namespace obs {

/// One completed span. `name` must point at a string literal (spans
/// store the pointer, not a copy).
struct SpanRecord {
  uint64_t trace_id = 0;   ///< Groups spans of one top-level scope.
  uint32_t depth = 0;      ///< 0 = top-level scope on its thread.
  const char* name = "";   ///< Static phase name, e.g. "join.rounds".
  uint64_t start_us = 0;   ///< Microseconds since process trace epoch.
  uint64_t duration_us = 0;
};

/// Fixed-capacity overwrite-oldest span sink.
class TraceRing {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit TraceRing(size_t capacity = kDefaultCapacity);
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// The process-wide ring every TraceSpan uses by default (never
  /// destroyed).
  static TraceRing& Global();

  /// Runtime switch; enabled by default. Disabled TraceSpans skip the
  /// clock reads entirely.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Record(const SpanRecord& span);

  /// The retained spans, oldest first.
  std::vector<SpanRecord> Snapshot() const;

  /// {"spans":[{"trace":..,"depth":..,"name":..,"start_us":..,
  ///   "dur_us":..},...],"dropped":N}
  std::string DumpJson() const;

  void Clear();

  /// Spans overwritten because the ring was full.
  uint64_t dropped() const;

  /// Fresh trace id for a new top-level span (starts at 1; 0 = none).
  uint64_t NextTraceId() {
    return next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Microseconds since the process trace epoch (first use anchors it).
  static uint64_t NowMicros();

 private:
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> next_trace_id_{1};
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;  // capacity fixed at construction
  size_t next_ = 0;               // ring_[next_] is overwritten next
  size_t size_ = 0;               // live entries (<= capacity)
  uint64_t dropped_ = 0;
};

/// RAII phase scope. Construct at phase entry with a string-literal
/// name; the destructor records the span into the ring. When the ring is
/// disabled at construction the span is inert (no clock reads).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, TraceRing* ring = &TraceRing::Global());
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceRing* ring_;  // nullptr when inert
  const char* name_;
  uint64_t trace_id_ = 0;
  uint32_t depth_ = 0;
  uint64_t start_us_ = 0;
};

}  // namespace obs
}  // namespace lazyxml

#endif  // LAZYXML_OBS_TRACE_H_
