// Unified observability: a process-wide metrics registry.
//
// The paper's headline claims are quantitative — update cost, I/Os, and
// structural-join time under lazy vs. eager maintenance (§5) — and the
// per-subsystem stats structs (LazyJoinStats, BatchStats,
// ElementScanCacheStats, RecoveryStats) that measure them have no common
// export and already produced one counter bug (the double-counted
// elements_fetched fixed in the parallel-executor PR). This registry is
// the single sink those structs now feed: named counters, gauges and
// log-bucketed latency histograms with stable text/JSON exports
// (docs/OBSERVABILITY.md).
//
// Cost model: every instrument is a handle resolved once by name
// (GetCounter et al. return a stable reference for the registry's
// lifetime) whose hot-path write is one relaxed load of the enabled flag
// plus one relaxed fetch_add on a cache-line-padded per-thread-shard
// cell — a few nanoseconds enabled-but-idle, one predictable branch when
// the registry is disabled. Reads (Snapshot) sum the shards; they are
// monotonic-correct but not an atomic cut across metrics, which is all a
// monitoring export needs.
//
// Naming scheme: dot-separated "<subsystem>.<metric>" with unit suffixes
// on histograms ("_us" = microseconds). See docs/OBSERVABILITY.md for
// the catalog.

#ifndef LAZYXML_OBS_METRICS_H_
#define LAZYXML_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace lazyxml {
namespace obs {

/// Number of per-thread shards per instrument (power of two). Eight
/// shards decorrelate the common few-writer case; a pathological 9th
/// thread shares a cell, which costs contention, never correctness.
inline constexpr size_t kMetricShards = 8;

/// Histogram buckets: bucket 0 holds the value 0; bucket i >= 1 holds
/// values in [2^(i-1), 2^i). 65 buckets cover the whole uint64 range.
inline constexpr size_t kHistogramBuckets = 65;

namespace internal {

/// Stable shard index for the calling thread (assigned round-robin on
/// first use, so the first kMetricShards threads never share a cell).
inline size_t ThisThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) & (kMetricShards - 1);
  return shard;
}

/// One cache-line-padded counter cell.
struct alignas(64) Cell {
  std::atomic<uint64_t> v{0};
};

/// Bucket index for `value` under the log2 layout above.
inline size_t BucketIndex(uint64_t value) {
  return value == 0 ? 0 : static_cast<size_t>(std::bit_width(value));
}

/// Inclusive-exclusive upper bound of bucket `i` (0 for bucket 0).
inline uint64_t BucketUpperBound(size_t i) {
  if (i == 0) return 0;
  if (i >= 64) return UINT64_MAX;
  return uint64_t{1} << i;
}

}  // namespace internal

/// A monotonically increasing counter.
class Counter {
 public:
  void Add(uint64_t n) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    cells_[internal::ThisThreadShard()].v.fetch_add(n,
                                                    std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Sum over all shards. Monotonic; concurrent Adds may or may not be
  /// included.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Counter(std::string name, const std::atomic<bool>* enabled)
      : name_(std::move(name)), enabled_(enabled) {}
  void Reset() {
    for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

  std::string name_;
  const std::atomic<bool>* enabled_;
  std::array<internal::Cell, kMetricShards> cells_;
};

/// A last-write-wins instantaneous value (double so ratios like
/// commits-per-fsync fit without fixed-point games).
class Gauge {
 public:
  void Set(double v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Gauge(std::string name, const std::atomic<bool>* enabled)
      : name_(std::move(name)), enabled_(enabled) {}
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  std::string name_;
  const std::atomic<bool>* enabled_;
  std::atomic<double> value_{0};
};

/// Point-in-time histogram contents (see MetricsSnapshot).
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Upper-bound estimate of the q-quantile (q in [0,1]): the upper
  /// boundary of the first bucket whose cumulative count reaches
  /// ceil(q * count). Exact to within one power-of-two bucket.
  uint64_t PercentileUpperBound(double q) const;
};

/// A log-bucketed distribution (latencies, sizes). Record() costs the
/// same few nanoseconds as Counter::Add (three relaxed fetch_adds on one
/// shard's cache lines).
class Histogram {
 public:
  void Record(uint64_t value) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    Shard& s = shards_[internal::ThisThreadShard()];
    s.buckets[internal::BucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot out;
    for (const Shard& s : shards_) {
      out.count += s.count.load(std::memory_order_relaxed);
      out.sum += s.sum.load(std::memory_order_relaxed);
      for (size_t b = 0; b < kHistogramBuckets; ++b) {
        out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
      }
    }
    return out;
  }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  friend class ScopedLatency;
  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
  };
  Histogram(std::string name, const std::atomic<bool>* enabled)
      : name_(std::move(name)), enabled_(enabled) {}
  void Reset() {
    for (Shard& s : shards_) {
      s.count.store(0, std::memory_order_relaxed);
      s.sum.store(0, std::memory_order_relaxed);
      for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    }
  }

  std::string name_;
  const std::atomic<bool>* enabled_;
  std::array<Shard, kMetricShards> shards_;
};

/// A consistent-enough copy of every registered instrument. Exports:
///  * ExportText — one line per metric, sorted by name, zero-valued
///    metrics suppressed (the golden-test schema);
///  * ExportJson — {"counters":{},"gauges":{},"histograms":{}} with
///    zero buckets suppressed (the schema bench/run_all.sh embeds into
///    BENCH_PR.json).
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  std::string ExportText() const;
  std::string ExportJson() const;
};

/// The registry. One process-wide instance (Global()) serves every
/// subsystem; tests may build private instances.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (never destroyed; safe during static
  /// teardown of other objects).
  static MetricsRegistry& Global();

  /// The instrument registered under `name`, created on first use. The
  /// returned reference is stable for the registry's lifetime, so hot
  /// paths resolve it once and keep the handle.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// Runtime on/off switch. Disabled instruments drop writes (one
  /// relaxed load + branch); reads still see everything recorded while
  /// enabled. Enabled by default.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Zeroes every registered instrument (names stay registered). For
  /// tests and benchmark harnesses that want a per-run snapshot.
  void Reset();

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::atomic<bool> enabled_{true};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// RAII latency sample: records elapsed wall-time microseconds into
/// `hist` on destruction. The clock is only read when the owning
/// registry is enabled at construction.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& hist)
      : hist_(hist.enabled_->load(std::memory_order_relaxed) ? &hist
                                                             : nullptr) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedLatency() {
    if (hist_ == nullptr) return;
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start_);
    hist_->Record(static_cast<uint64_t>(us.count()));
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace lazyxml

/// Resolves a registry instrument once per call site and caches the
/// handle in a function-local static (magic-static init is thread-safe;
/// steady-state cost is the guard check).
#define LAZYXML_METRIC_COUNTER(var, name)          \
  static ::lazyxml::obs::Counter& var =            \
      ::lazyxml::obs::MetricsRegistry::Global().GetCounter(name)
#define LAZYXML_METRIC_GAUGE(var, name)            \
  static ::lazyxml::obs::Gauge& var =              \
      ::lazyxml::obs::MetricsRegistry::Global().GetGauge(name)
#define LAZYXML_METRIC_HISTOGRAM(var, name)        \
  static ::lazyxml::obs::Histogram& var =          \
      ::lazyxml::obs::MetricsRegistry::Global().GetHistogram(name)

#endif  // LAZYXML_OBS_METRICS_H_
