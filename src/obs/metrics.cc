#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <utility>

namespace lazyxml {
namespace obs {
namespace {

// JSON string escaping for metric names (conservative: names are ASCII
// identifiers by convention, but the exporter must never emit invalid
// JSON regardless of input).
void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(double v, std::string* out) {
  char buf[64];
  // %.17g round-trips doubles; trim a trailing ".0"-less integer look by
  // using %g which drops redundant zeros already.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

}  // namespace

uint64_t HistogramSnapshot::PercentileUpperBound(double q) const {
  if (count == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(
                                std::ceil(q * static_cast<double>(count))));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) return internal::BucketUpperBound(i);
  }
  return internal::BucketUpperBound(kHistogramBuckets - 1);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked singleton: instruments are referenced from function-local
  // statics all over the tree, so the registry must outlive every other
  // static.
  static MetricsRegistry* const kGlobal = new MetricsRegistry();
  return *kGlobal;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    auto owned = std::unique_ptr<Counter>(
        new Counter(std::string(name), &enabled_));
    it = counters_.emplace(std::string(name), std::move(owned)).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    auto owned =
        std::unique_ptr<Gauge>(new Gauge(std::string(name), &enabled_));
    it = gauges_.emplace(std::string(name), std::move(owned)).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    auto owned = std::unique_ptr<Histogram>(
        new Histogram(std::string(name), &enabled_));
    it = histograms_.emplace(std::string(name), std::move(owned)).first;
  }
  return *it->second;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) out.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) out.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) {
    out.histograms[name] = h->Snapshot();
  }
  return out;
}

std::string MetricsSnapshot::ExportText() const {
  // One line per metric, sorted within each kind (the maps are ordered).
  // Zero-valued instruments are suppressed so the export reflects what
  // actually happened, not what was merely registered.
  std::string out;
  char buf[256];
  for (const auto& [name, v] : counters) {
    if (v == 0) continue;
    std::snprintf(buf, sizeof(buf), "counter %s %" PRIu64 "\n", name.c_str(),
                  v);
    out.append(buf);
  }
  for (const auto& [name, v] : gauges) {
    if (v == 0.0) continue;
    std::snprintf(buf, sizeof(buf), "gauge %s %.6g\n", name.c_str(), v);
    out.append(buf);
  }
  for (const auto& [name, h] : histograms) {
    if (h.count == 0) continue;
    std::snprintf(buf, sizeof(buf),
                  "histogram %s count=%" PRIu64 " sum=%" PRIu64
                  " mean=%.6g p50<=%" PRIu64 " p99<=%" PRIu64 "\n",
                  name.c_str(), h.count, h.sum, h.Mean(),
                  h.PercentileUpperBound(0.50), h.PercentileUpperBound(0.99));
    out.append(buf);
  }
  return out;
}

std::string MetricsSnapshot::ExportJson() const {
  std::string out;
  char buf[64];
  out.append("{\"counters\":{");
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (v == 0) continue;
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    std::snprintf(buf, sizeof(buf), ":%" PRIu64, v);
    out.append(buf);
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& [name, v] : gauges) {
    if (v == 0.0) continue;
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    out.push_back(':');
    AppendDouble(v, &out);
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& [name, h] : histograms) {
    if (h.count == 0) continue;
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    std::snprintf(buf, sizeof(buf), ":{\"count\":%" PRIu64, h.count);
    out.append(buf);
    std::snprintf(buf, sizeof(buf), ",\"sum\":%" PRIu64, h.sum);
    out.append(buf);
    out.append(",\"mean\":");
    AppendDouble(h.Mean(), &out);
    std::snprintf(buf, sizeof(buf), ",\"p50_le\":%" PRIu64,
                  h.PercentileUpperBound(0.50));
    out.append(buf);
    std::snprintf(buf, sizeof(buf), ",\"p99_le\":%" PRIu64,
                  h.PercentileUpperBound(0.99));
    out.append(buf);
    // Buckets keyed by their upper bound; zero buckets suppressed.
    out.append(",\"buckets\":{");
    bool first_bucket = true;
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      if (!first_bucket) out.push_back(',');
      first_bucket = false;
      std::snprintf(buf, sizeof(buf), "\"%" PRIu64 "\":%" PRIu64,
                    internal::BucketUpperBound(i), h.buckets[i]);
      out.append(buf);
    }
    out.append("}}");
  }
  out.append("}}");
  return out;
}

}  // namespace obs
}  // namespace lazyxml
