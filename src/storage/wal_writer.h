// WalWriter: the append side of the write-ahead log. Frames each logical
// record (CRC32C + length prefix, wal_layout.h), appends it to the
// current segment file, applies the configured sync policy, and rotates
// to a fresh segment when the current one exceeds the size threshold.
// A segment is always fdatasync'd before rotation completes, so every
// non-final segment on disk is whole — recovery treats damage in them
// as Corruption, while damage at the tail of the final segment is an
// expected torn write.

#ifndef LAZYXML_STORAGE_WAL_WRITER_H_
#define LAZYXML_STORAGE_WAL_WRITER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/file_io.h"
#include "common/result.h"
#include "storage/log_record.h"

namespace lazyxml {

/// When appended records reach stable storage.
enum class WalSyncPolicy {
  kNever,        ///< OS page cache only; fastest, loses the tail on crash
  kEveryRecord,  ///< fdatasync per record; every acked update survives
  kBatchBytes,   ///< fdatasync once per `batch_bytes` of frames
};

const char* WalSyncPolicyName(WalSyncPolicy policy);

struct WalWriterOptions {
  WalSyncPolicy sync_policy = WalSyncPolicy::kEveryRecord;
  /// kBatchBytes: unsynced frame bytes that trigger an fdatasync.
  uint64_t batch_bytes = 1 << 20;
  /// Segment size that triggers rotation (checked after each append).
  uint64_t segment_bytes = 64ull << 20;
};

class WalWriter {
 public:
  /// Starts segment `start_index` (must not already exist as a completed
  /// segment — recovery always hands out a fresh index) in `dir`.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& dir,
                                                 uint64_t start_index,
                                                 const WalWriterOptions& options);

  /// Frames and appends one record, then applies the sync policy and
  /// rotates if the segment is full. On OK the record is acknowledged:
  /// durable under kEveryRecord, page-cached otherwise.
  Status Append(const LogRecord& record);

  /// Frames `records` into one contiguous buffered write, applies the
  /// sync policy ONCE at the tail (kEveryRecord pays one fdatasync for
  /// the whole batch instead of one per record), and checks rotation
  /// once. All frames land in the current segment, so a crash mid-batch
  /// tears at most the tail of one segment: recovery truncates to the
  /// last whole frame and the batch is prefix-durable — records
  /// [0, k) survive for some k <= n, never a gap (docs/WAL_FORMAT.md).
  Status AppendBatch(std::span<const LogRecord> records);

  /// Pointer-span overload for callers that aggregate records from
  /// several owners without copying (the group-commit leader).
  Status AppendBatch(std::span<const LogRecord* const> records);

  /// Forces everything appended so far to stable storage.
  Status Sync();

  /// Finishes the current segment (sync + close) and starts the next.
  /// The snapshot/checkpoint protocol rotates before serializing so the
  /// snapshot's coverage boundary falls exactly between two segments.
  Status Rotate();

  /// Index of the segment currently being appended to.
  uint64_t current_segment() const { return index_; }

  /// Bytes appended to the current segment so far.
  uint64_t current_segment_bytes() const { return file_->size(); }

  /// Records appended through this writer (all segments).
  uint64_t records_appended() const { return records_appended_; }

  /// fdatasync calls issued (policy syncs, explicit Sync, rotations).
  /// The batching win is visible here: AppendBatch of N records under
  /// kEveryRecord advances this by 1, not N.
  uint64_t syncs_performed() const { return syncs_; }

 private:
  WalWriter(std::string dir, uint64_t index, WalWriterOptions options,
            std::unique_ptr<AppendFile> file)
      : dir_(std::move(dir)),
        index_(index),
        options_(options),
        file_(std::move(file)) {}

  /// Encodes `record` and appends its frame (header + payload) to
  /// `frame_buf_`, reusing `payload_buf_` for the encode. Fails only if
  /// the payload exceeds kWalMaxRecordBytes.
  Status EncodeFrame(const LogRecord& record);

  /// Writes `frame_buf_` (holding `n` whole frames) to the segment,
  /// applies the sync policy once, and checks rotation once.
  Status FlushFrames(size_t n);

  std::string dir_;
  uint64_t index_;
  WalWriterOptions options_;
  std::unique_ptr<AppendFile> file_;
  uint64_t unsynced_bytes_ = 0;
  uint64_t records_appended_ = 0;
  uint64_t syncs_ = 0;
  // Reused across appends so the steady-state encode path is
  // allocation-free: payload_buf_ holds one record's payload,
  // frame_buf_ accumulates the framed bytes of the pending write.
  std::string payload_buf_;
  std::string frame_buf_;
};

}  // namespace lazyxml

#endif  // LAZYXML_STORAGE_WAL_WRITER_H_
