#include "storage/wal_writer.h"

#include "common/crc32c.h"
#include "common/serial.h"
#include "storage/wal_layout.h"

namespace lazyxml {

const char* WalSyncPolicyName(WalSyncPolicy policy) {
  switch (policy) {
    case WalSyncPolicy::kNever:
      return "never";
    case WalSyncPolicy::kEveryRecord:
      return "every_record";
    case WalSyncPolicy::kBatchBytes:
      return "batch_bytes";
  }
  return "unknown";
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    const std::string& dir, uint64_t start_index,
    const WalWriterOptions& options) {
  if (start_index == 0) {
    return Status::InvalidArgument("WAL segment indices start at 1");
  }
  LAZYXML_RETURN_NOT_OK(CreateDirIfMissing(dir));
  LAZYXML_ASSIGN_OR_RETURN(
      std::unique_ptr<AppendFile> file,
      AppendFile::Open(dir + "/" + WalSegmentFileName(start_index)));
  return std::unique_ptr<WalWriter>(
      new WalWriter(dir, start_index, options, std::move(file)));
}

Status WalWriter::Append(const LogRecord& record) {
  const std::string payload = EncodeLogRecord(record);
  if (payload.size() > kWalMaxRecordBytes) {
    return Status::InvalidArgument("WAL record exceeds the size ceiling");
  }
  ByteWriter frame;
  frame.PutU32(crc32c::Mask(crc32c::Value(payload)));
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  std::string bytes = frame.TakeBuffer();
  bytes += payload;

  LAZYXML_RETURN_NOT_OK(file_->Append(bytes));
  ++records_appended_;
  switch (options_.sync_policy) {
    case WalSyncPolicy::kNever:
      break;
    case WalSyncPolicy::kEveryRecord:
      LAZYXML_RETURN_NOT_OK(file_->Sync());
      break;
    case WalSyncPolicy::kBatchBytes:
      unsynced_bytes_ += bytes.size();
      if (unsynced_bytes_ >= options_.batch_bytes) {
        LAZYXML_RETURN_NOT_OK(Sync());
      }
      break;
  }
  if (file_->size() >= options_.segment_bytes) {
    LAZYXML_RETURN_NOT_OK(Rotate());
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  LAZYXML_RETURN_NOT_OK(file_->Sync());
  unsynced_bytes_ = 0;
  return Status::OK();
}

Status WalWriter::Rotate() {
  // A completed segment must be whole on disk regardless of policy:
  // recovery trusts every non-final segment.
  LAZYXML_RETURN_NOT_OK(Sync());
  LAZYXML_RETURN_NOT_OK(file_->Close());
  ++index_;
  LAZYXML_ASSIGN_OR_RETURN(
      file_, AppendFile::Open(dir_ + "/" + WalSegmentFileName(index_)));
  // Make the new segment's directory entry durable so recovery sees a
  // contiguous run of indices.
  return SyncDirectory(dir_);
}

}  // namespace lazyxml
