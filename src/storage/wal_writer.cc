#include "storage/wal_writer.h"

#include "common/crc32c.h"
#include "common/serial.h"
#include "obs/metrics.h"
#include "storage/wal_layout.h"

namespace lazyxml {

const char* WalSyncPolicyName(WalSyncPolicy policy) {
  switch (policy) {
    case WalSyncPolicy::kNever:
      return "never";
    case WalSyncPolicy::kEveryRecord:
      return "every_record";
    case WalSyncPolicy::kBatchBytes:
      return "batch_bytes";
  }
  return "unknown";
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    const std::string& dir, uint64_t start_index,
    const WalWriterOptions& options) {
  if (start_index == 0) {
    return Status::InvalidArgument("WAL segment indices start at 1");
  }
  LAZYXML_RETURN_NOT_OK(CreateDirIfMissing(dir));
  LAZYXML_ASSIGN_OR_RETURN(
      std::unique_ptr<AppendFile> file,
      AppendFile::Open(dir + "/" + WalSegmentFileName(start_index)));
  return std::unique_ptr<WalWriter>(
      new WalWriter(dir, start_index, options, std::move(file)));
}

Status WalWriter::EncodeFrame(const LogRecord& record) {
  EncodeLogRecordInto(record, &payload_buf_);
  if (payload_buf_.size() > kWalMaxRecordBytes) {
    return Status::InvalidArgument("WAL record exceeds the size ceiling");
  }
  const uint32_t crc = crc32c::Mask(crc32c::Value(payload_buf_));
  const uint32_t size = static_cast<uint32_t>(payload_buf_.size());
  // Header layout matches ByteWriter: two little-endian u32s.
  char header[kWalFrameHeaderBytes];
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<char>((crc >> (8 * i)) & 0xff);
    header[4 + i] = static_cast<char>((size >> (8 * i)) & 0xff);
  }
  frame_buf_.append(header, sizeof(header));
  frame_buf_ += payload_buf_;
  return Status::OK();
}

Status WalWriter::FlushFrames(size_t n) {
  if (n == 0) return Status::OK();
  LAZYXML_RETURN_NOT_OK(file_->Append(frame_buf_));
  records_appended_ += n;
  LAZYXML_METRIC_COUNTER(records_counter, "wal.records_appended");
  LAZYXML_METRIC_COUNTER(bytes_counter, "wal.bytes_appended");
  records_counter.Add(n);
  bytes_counter.Add(frame_buf_.size());
  switch (options_.sync_policy) {
    case WalSyncPolicy::kNever:
      break;
    case WalSyncPolicy::kEveryRecord:
      // One fdatasync for the whole write: a batch of N records is N×
      // cheaper here than N singleton appends, and recovery still sees a
      // clean prefix if the tail tears.
      LAZYXML_RETURN_NOT_OK(Sync());
      break;
    case WalSyncPolicy::kBatchBytes:
      unsynced_bytes_ += frame_buf_.size();
      if (unsynced_bytes_ >= options_.batch_bytes) {
        LAZYXML_RETURN_NOT_OK(Sync());
      }
      break;
  }
  if (file_->size() >= options_.segment_bytes) {
    LAZYXML_RETURN_NOT_OK(Rotate());
  }
  return Status::OK();
}

Status WalWriter::Append(const LogRecord& record) {
  frame_buf_.clear();
  LAZYXML_RETURN_NOT_OK(EncodeFrame(record));
  return FlushFrames(1);
}

Status WalWriter::AppendBatch(std::span<const LogRecord> records) {
  frame_buf_.clear();
  for (const LogRecord& r : records) {
    LAZYXML_RETURN_NOT_OK(EncodeFrame(r));
  }
  return FlushFrames(records.size());
}

Status WalWriter::AppendBatch(std::span<const LogRecord* const> records) {
  frame_buf_.clear();
  for (const LogRecord* r : records) {
    LAZYXML_RETURN_NOT_OK(EncodeFrame(*r));
  }
  return FlushFrames(records.size());
}

Status WalWriter::Sync() {
  LAZYXML_METRIC_COUNTER(fsync_counter, "wal.fsyncs");
  LAZYXML_METRIC_HISTOGRAM(fsync_hist, "wal.fsync_us");
  {
    obs::ScopedLatency fsync_latency(fsync_hist);
    LAZYXML_RETURN_NOT_OK(file_->Sync());
  }
  fsync_counter.Increment();
  ++syncs_;
  unsynced_bytes_ = 0;
  return Status::OK();
}

Status WalWriter::Rotate() {
  LAZYXML_METRIC_COUNTER(rotations_counter, "wal.rotations");
  rotations_counter.Increment();
  // A completed segment must be whole on disk regardless of policy:
  // recovery trusts every non-final segment.
  LAZYXML_RETURN_NOT_OK(Sync());
  LAZYXML_RETURN_NOT_OK(file_->Close());
  ++index_;
  LAZYXML_ASSIGN_OR_RETURN(
      file_, AppendFile::Open(dir_ + "/" + WalSegmentFileName(index_)));
  // Make the new segment's directory entry durable so recovery sees a
  // contiguous run of indices.
  return SyncDirectory(dir_);
}

}  // namespace lazyxml
