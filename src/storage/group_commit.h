// GroupCommitQueue: leader/follower fsync sharing for concurrent WAL
// writers. Each committer hands its records to the queue; the first
// thread to arrive while the writer is free becomes the leader, drains
// every queued request in FIFO order, flushes them through
// WalWriter::AppendBatch (one buffered write + one policy sync for the
// whole group), and wakes the followers with their individual statuses.
// Under kEveryRecord this turns N concurrent commits into ~1 fdatasync
// instead of N, without weakening the durability contract: a commit
// only returns OK after the sync covering its records has completed.
//
// Ordering: requests are flushed in arrival order, and all records of
// one request are contiguous in the WAL, so per-thread record order is
// preserved and recovery replays a serial interleaving of the commits.

#ifndef LAZYXML_STORAGE_GROUP_COMMIT_H_
#define LAZYXML_STORAGE_GROUP_COMMIT_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "storage/log_record.h"
#include "storage/wal_writer.h"

namespace lazyxml {

class GroupCommitQueue {
 public:
  /// `writer` must outlive the queue. The queue serializes ALL access to
  /// the writer made through Commit(); callers must not append to the
  /// writer directly while commits are in flight.
  explicit GroupCommitQueue(WalWriter* writer) : writer_(writer) {}

  GroupCommitQueue(const GroupCommitQueue&) = delete;
  GroupCommitQueue& operator=(const GroupCommitQueue&) = delete;

  /// Appends `records` to the WAL as one contiguous batch and applies
  /// the writer's sync policy. Blocks until the covering flush has
  /// completed (possibly performed by another thread acting as leader).
  /// An empty vector returns OK without touching the writer.
  Status Commit(std::vector<LogRecord> records);

  /// Leader flushes performed (each covers >= 1 request).
  uint64_t groups_committed() const;

  /// Requests committed across all groups.
  uint64_t requests_committed() const;

 private:
  struct Request {
    std::vector<LogRecord> records;
    Status status = Status::OK();
    bool done = false;
  };

  WalWriter* writer_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request*> queue_;
  bool leader_active_ = false;
  uint64_t groups_ = 0;
  uint64_t requests_ = 0;
};

}  // namespace lazyxml

#endif  // LAZYXML_STORAGE_GROUP_COMMIT_H_
