#include "storage/salvage.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/file_io.h"
#include "common/logging.h"
#include "common/strings.h"
#include "core/snapshot.h"
#include "storage/wal_layout.h"
#include "storage/wal_reader.h"

namespace lazyxml {

namespace {

struct DirectoryContents {
  std::vector<uint64_t> wal_segments;  // ascending
  std::vector<uint64_t> snapshots;     // ascending
};

Result<DirectoryContents> ScanDirectory(const std::string& dir) {
  LAZYXML_ASSIGN_OR_RETURN(std::vector<std::string> names,
                           ListDirectory(dir));
  DirectoryContents out;
  for (const std::string& name : names) {
    if (auto idx = ParseWalSegmentFileName(name)) {
      out.wal_segments.push_back(*idx);
    } else if (auto idx = ParseSnapshotFileName(name)) {
      out.snapshots.push_back(*idx);
    }
  }
  std::sort(out.wal_segments.begin(), out.wal_segments.end());
  std::sort(out.snapshots.begin(), out.snapshots.end());
  return out;
}

std::string JsonEscape(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += ' ';
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Moves `<dir>/<name>` into the quarantine subdirectory under a
/// collision-safe name; returns the name used (relative to quarantine/).
Result<std::string> Quarantine(const std::string& dir,
                               const std::string& name,
                               DamageReport* damage) {
  const std::string qdir = dir + "/quarantine";
  LAZYXML_RETURN_NOT_OK(CreateDirIfMissing(qdir));
  damage->quarantine_dir = qdir;
  std::string target = name;
  for (int attempt = 1; FileExists(qdir + "/" + target); ++attempt) {
    target = name + "." + std::to_string(attempt);
  }
  LAZYXML_RETURN_NOT_OK(RenameFile(dir + "/" + name, qdir + "/" + target));
  return target;
}

/// One decoded, not-yet-applied WAL record with its provenance.
struct PendingRecord {
  LogRecord record;
  uint64_t segment = 0;
  uint64_t frame_begin = 0;  // byte offset of the record's frame
  uint64_t frame_end = 0;    // one past the frame
};

}  // namespace

std::string DamageReport::ToString() const {
  std::ostringstream os;
  os << "DamageReport: " << artifacts.size() << " damaged artifact(s), "
     << records_recovered << " record(s) recovered, " << records_dropped
     << " dropped";
  if (!quarantine_dir.empty()) os << ", quarantine at " << quarantine_dir;
  os << "\n";
  for (const DamagedArtifact& a : artifacts) {
    os << "  " << a.file << " [" << a.reason << "]";
    if (!a.quarantined_as.empty()) {
      os << " -> quarantine/" << a.quarantined_as;
    }
    if (!a.detail.empty()) os << ": " << a.detail;
    os << " (kept " << a.kept_bytes << " B, dropped " << a.dropped_bytes
       << " B / " << a.dropped_records << " record(s))\n";
  }
  return os.str();
}

std::string DamageReport::ToJson() const {
  std::ostringstream os;
  os << "{\"clean\":" << (clean() ? "true" : "false")
     << ",\"records_recovered\":" << records_recovered
     << ",\"records_dropped\":" << records_dropped << ",\"quarantine_dir\":\""
     << JsonEscape(quarantine_dir) << "\",\"artifacts\":[";
  for (size_t i = 0; i < artifacts.size(); ++i) {
    const DamagedArtifact& a = artifacts[i];
    if (i > 0) os << ",";
    os << "{\"file\":\"" << JsonEscape(a.file) << "\",\"quarantined_as\":\""
       << JsonEscape(a.quarantined_as) << "\",\"reason\":\""
       << JsonEscape(a.reason) << "\",\"detail\":\"" << JsonEscape(a.detail)
       << "\",\"kept_bytes\":" << a.kept_bytes
       << ",\"dropped_bytes\":" << a.dropped_bytes
       << ",\"dropped_records\":" << a.dropped_records << "}";
  }
  os << "]}";
  return os.str();
}

Result<SalvageResult> SalvageDatabase(const std::string& dir,
                                      const RecoveryOptions& options) {
  LAZYXML_RETURN_NOT_OK(CreateDirIfMissing(dir));
  LAZYXML_ASSIGN_OR_RETURN(DirectoryContents contents, ScanDirectory(dir));

  SalvageResult out;

  // ---- 1. Base snapshot: newest that loads; quarantine the rest ----------
  uint64_t snap_index = 0;
  for (size_t i = contents.snapshots.size(); i-- > 0;) {
    const uint64_t index = contents.snapshots[i];
    const std::string name = SnapshotFileName(index);
    auto loaded = LoadSnapshot(dir + "/" + name, options.db);
    if (loaded.ok()) {
      out.db = std::move(loaded).ValueOrDie();
      snap_index = index;
      break;
    }
    const uint64_t size =
        FileSize(dir + "/" + name).ValueOr(0);
    LAZYXML_ASSIGN_OR_RETURN(std::string qname,
                             Quarantine(dir, name, &out.damage));
    DamagedArtifact a;
    a.file = name;
    a.quarantined_as = qname;
    a.reason = "snapshot-unloadable";
    a.detail = loaded.status().ToString();
    a.dropped_bytes = size;
    out.damage.artifacts.push_back(std::move(a));
    LAZYXML_LOG(Warning) << "salvage: snapshot " << index
                         << " quarantined: " << loaded.status().ToString();
  }
  if (out.db == nullptr) {
    out.db = std::make_unique<LazyDatabase>(options.db);
  }
  out.stats.snapshot_index = snap_index;

  // ---- 2. The replayable run: contiguous segments after the base ---------
  // Segments <= snap_index are legitimately stale (checkpoint leftovers)
  // and ignored, exactly as in normal recovery. Segments past a numbering
  // gap can never be replayed (their predecessors are gone) and are
  // quarantined as orphaned.
  std::vector<uint64_t> run;
  uint64_t expected = snap_index + 1;
  for (uint64_t seg : contents.wal_segments) {
    if (seg <= snap_index) continue;
    if (seg == expected) {
      run.push_back(seg);
      ++expected;
    } else {
      const std::string name = WalSegmentFileName(seg);
      const uint64_t size = FileSize(dir + "/" + name).ValueOr(0);
      LAZYXML_ASSIGN_OR_RETURN(std::string qname,
                               Quarantine(dir, name, &out.damage));
      DamagedArtifact a;
      a.file = name;
      a.quarantined_as = qname;
      a.reason = "wal-orphaned";
      a.detail = StringPrintf(
          "segment %llu follows a gap in the chain (expected %llu)",
          static_cast<unsigned long long>(seg),
          static_cast<unsigned long long>(expected));
      a.dropped_bytes = size;
      out.damage.artifacts.push_back(std::move(a));
    }
  }

  // ---- 3. Decode the run up to the first damaged frame -------------------
  // Decoding is separated from application so a replay divergence can cut
  // the history at a *record* boundary and rebuild without re-reading
  // damaged bytes.
  std::vector<PendingRecord> pending;
  std::vector<std::string> segment_data(run.size());
  size_t cut_run_pos = run.size();  // first run position NOT fully kept
  uint64_t cut_offset = 0;          // verified prefix of that segment
  std::string cut_reason;
  std::string cut_detail;
  for (size_t ri = 0; ri < run.size(); ++ri) {
    const uint64_t seg = run[ri];
    LAZYXML_ASSIGN_OR_RETURN(
        segment_data[ri],
        ReadFileToString(dir + "/" + WalSegmentFileName(seg)));
    WalSegmentReader reader(segment_data[ri]);
    LogRecord record;
    Status detail;
    bool damaged = false;
    for (;;) {
      const uint64_t before = reader.valid_prefix_bytes();
      const WalReadOutcome outcome = reader.Next(&record, &detail);
      if (outcome == WalReadOutcome::kEnd) break;
      if (outcome == WalReadOutcome::kRecord) {
        PendingRecord p;
        p.record = std::move(record);
        p.segment = seg;
        p.frame_begin = before;
        p.frame_end = reader.valid_prefix_bytes();
        pending.push_back(std::move(p));
        continue;
      }
      // Torn or corrupt: the history ends here.
      cut_run_pos = ri;
      cut_offset = reader.valid_prefix_bytes();
      cut_reason =
          outcome == WalReadOutcome::kTornTail ? "wal-torn" : "wal-corrupt";
      cut_detail = detail.ToString();
      damaged = true;
      break;
    }
    if (damaged) break;
  }

  // ---- 4. Apply the decoded records; a divergence also cuts --------------
  size_t applied = 0;
  for (; applied < pending.size(); ++applied) {
    Status s = ApplyLogRecord(out.db.get(), pending[applied].record);
    if (s.ok()) continue;
    // The history is cut at this record. The database may hold a partial
    // effect of the failed op (e.g. an insert that produced an unexpected
    // sid), so rebuild cleanly: reload the base and re-apply the verified
    // prefix, which is deterministic.
    const PendingRecord& bad = pending[applied];
    const size_t bad_run_pos = static_cast<size_t>(
        std::lower_bound(run.begin(), run.end(), bad.segment) - run.begin());
    if (bad_run_pos < cut_run_pos ||
        (bad_run_pos == cut_run_pos && bad.frame_begin < cut_offset)) {
      cut_run_pos = bad_run_pos;
      cut_offset = bad.frame_begin;
      cut_reason = "wal-diverged";
      cut_detail = s.ToString();
    }
    if (snap_index != 0) {
      auto reloaded = LoadSnapshot(
          dir + "/" + SnapshotFileName(snap_index), options.db);
      if (!reloaded.ok()) {
        return reloaded.status().WithContext(
            "salvage: base snapshot vanished during rebuild");
      }
      out.db = std::move(reloaded).ValueOrDie();
    } else {
      out.db = std::make_unique<LazyDatabase>(options.db);
    }
    for (size_t k = 0; k < applied; ++k) {
      LAZYXML_RETURN_NOT_OK(
          ApplyLogRecord(out.db.get(), pending[k].record)
              .WithContext("salvage: verified prefix failed to re-apply"));
    }
    break;
  }
  out.damage.records_recovered = applied;
  out.stats.records_replayed = applied;

  // ---- 5. Prune the damaged segment and quarantine the rest --------------
  if (cut_run_pos < run.size()) {
    // Count what the cut drops.
    uint64_t dropped_records = 0;
    for (const PendingRecord& p : pending) {
      const size_t pos = static_cast<size_t>(
          std::lower_bound(run.begin(), run.end(), p.segment) - run.begin());
      if (pos > cut_run_pos ||
          (pos == cut_run_pos && p.frame_begin >= cut_offset)) {
        ++dropped_records;
      }
    }
    // Records decoded cleanly before an intra-segment tear but after the
    // divergence point are included above; bytes past the verified prefix
    // of the cut segment are dropped too.
    const uint64_t seg = run[cut_run_pos];
    const std::string name = WalSegmentFileName(seg);
    const uint64_t total = segment_data[cut_run_pos].size();
    LAZYXML_ASSIGN_OR_RETURN(std::string qname,
                             Quarantine(dir, name, &out.damage));
    // Write the verified prefix back (possibly empty): the chain stays
    // contiguous and the next open sees a clean segment.
    LAZYXML_RETURN_NOT_OK(WriteFileAtomic(
        dir + "/" + name, std::string_view(segment_data[cut_run_pos])
                              .substr(0, cut_offset)));
    DamagedArtifact a;
    a.file = name;
    a.quarantined_as = qname;
    a.reason = cut_reason;
    a.detail = cut_detail;
    a.kept_bytes = cut_offset;
    a.dropped_bytes = total - cut_offset;
    a.dropped_records = dropped_records;
    out.damage.artifacts.push_back(std::move(a));
    out.damage.records_dropped += dropped_records;
    // Later segments are beyond the cut: unreachable history.
    for (size_t ri = cut_run_pos + 1; ri < run.size(); ++ri) {
      const std::string later = WalSegmentFileName(run[ri]);
      const uint64_t size = FileSize(dir + "/" + later).ValueOr(0);
      // Count records we may have decoded from it (or not, if decode
      // stopped earlier) — decoded ones are already in dropped_records.
      LAZYXML_ASSIGN_OR_RETURN(std::string later_q,
                               Quarantine(dir, later, &out.damage));
      DamagedArtifact la;
      la.file = later;
      la.quarantined_as = later_q;
      la.reason = "wal-unreachable";
      la.detail = StringPrintf(
          "history cut in segment %llu",
          static_cast<unsigned long long>(seg));
      la.dropped_bytes = size;
      out.damage.artifacts.push_back(std::move(la));
    }
    out.next_wal_index = seg + 1;
    out.stats.torn_tail = true;
    out.stats.torn_segment = seg;
    out.stats.valid_prefix_bytes = cut_offset;
    out.stats.segments_replayed = cut_run_pos + 1;
  } else {
    out.next_wal_index =
        std::max(run.empty() ? 0 : run.back(), snap_index) + 1;
    out.stats.segments_replayed = run.size();
  }

  LAZYXML_RETURN_NOT_OK(out.db->CheckInvariants().WithContext(
      "salvaged database failed validation"));
  LAZYXML_RETURN_NOT_OK(SyncDirectory(dir));
  return out;
}

}  // namespace lazyxml
