#include "storage/log_record.h"

#include "common/serial.h"
#include "common/strings.h"

namespace lazyxml {

std::string EncodeLogRecord(const LogRecord& record) {
  std::string out;
  EncodeLogRecordInto(record, &out);
  return out;
}

void EncodeLogRecordInto(const LogRecord& record, std::string* out) {
  ByteWriter w(std::move(*out));
  w.PutU8(static_cast<uint8_t>(record.type));
  switch (record.type) {
    case LogRecordType::kInsertSegment:
      w.PutU64(record.sid);
      w.PutU64(record.gp);
      w.PutString(record.text);
      break;
    case LogRecordType::kRemoveRange:
      w.PutU64(record.gp);
      w.PutU64(record.length);
      break;
    case LogRecordType::kCollapseSubtree:
      w.PutU64(record.sid);
      w.PutU64(record.new_sid);
      break;
    case LogRecordType::kFreeze:
      break;
  }
  *out = w.TakeBuffer();
}

Result<LogRecord> DecodeLogRecord(std::string_view payload) {
  ByteReader r(payload);
  LAZYXML_ASSIGN_OR_RETURN(uint8_t raw_type, r.GetU8());
  LogRecord rec;
  switch (raw_type) {
    case static_cast<uint8_t>(LogRecordType::kInsertSegment): {
      rec.type = LogRecordType::kInsertSegment;
      LAZYXML_ASSIGN_OR_RETURN(rec.sid, r.GetU64());
      LAZYXML_ASSIGN_OR_RETURN(rec.gp, r.GetU64());
      LAZYXML_ASSIGN_OR_RETURN(rec.text, r.GetString());
      if (rec.sid == kRootSegmentId) {
        return Status::Corruption("insert record with the dummy-root sid");
      }
      if (rec.text.empty()) {
        return Status::Corruption("insert record with empty text");
      }
      break;
    }
    case static_cast<uint8_t>(LogRecordType::kRemoveRange): {
      rec.type = LogRecordType::kRemoveRange;
      LAZYXML_ASSIGN_OR_RETURN(rec.gp, r.GetU64());
      LAZYXML_ASSIGN_OR_RETURN(rec.length, r.GetU64());
      if (rec.length == 0) {
        return Status::Corruption("remove record with zero length");
      }
      break;
    }
    case static_cast<uint8_t>(LogRecordType::kCollapseSubtree): {
      rec.type = LogRecordType::kCollapseSubtree;
      LAZYXML_ASSIGN_OR_RETURN(rec.sid, r.GetU64());
      LAZYXML_ASSIGN_OR_RETURN(rec.new_sid, r.GetU64());
      if (rec.sid == kRootSegmentId || rec.new_sid == kRootSegmentId) {
        return Status::Corruption("collapse record with the dummy-root sid");
      }
      break;
    }
    case static_cast<uint8_t>(LogRecordType::kFreeze):
      rec.type = LogRecordType::kFreeze;
      break;
    default:
      return Status::Corruption(
          StringPrintf("unknown WAL record type %u", raw_type));
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes in WAL record payload");
  }
  return rec;
}

}  // namespace lazyxml
