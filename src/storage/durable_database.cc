#include "storage/durable_database.h"

#include "common/file_io.h"
#include "core/snapshot.h"
#include "storage/wal_layout.h"

namespace lazyxml {

Result<std::unique_ptr<DurableLazyDatabase>> DurableLazyDatabase::Open(
    const std::string& dir, const DurableOptions& options) {
  RecoveryOptions recovery;
  recovery.db = options.db;
  recovery.strict = options.strict_recovery;
  DamageReport damage;
  std::unique_ptr<LazyDatabase> db;
  RecoveryStats stats;
  uint64_t next_wal_index = 1;
  auto recovered = RecoverDatabase(dir, recovery);
  if (recovered.ok()) {
    RecoveredDatabase r = std::move(recovered).ValueOrDie();
    db = std::move(r.db);
    stats = r.stats;
    next_wal_index = r.next_wal_index;
  } else if (options.open_policy == OpenPolicy::kBestEffort &&
             recovered.status().IsCorruption()) {
    // Environmental failures (IOError) still propagate: salvage repairs
    // data damage, not a broken filesystem.
    LAZYXML_ASSIGN_OR_RETURN(SalvageResult salvaged,
                             SalvageDatabase(dir, recovery));
    db = std::move(salvaged.db);
    stats = salvaged.stats;
    next_wal_index = salvaged.next_wal_index;
    damage = std::move(salvaged.damage);
  } else {
    return recovered.status();
  }
  LAZYXML_ASSIGN_OR_RETURN(
      std::unique_ptr<WalWriter> wal,
      WalWriter::Open(dir, next_wal_index, options.wal));
  auto out = std::unique_ptr<DurableLazyDatabase>(new DurableLazyDatabase(
      dir, options, std::move(db), std::move(wal), stats));
  out->damage_report_ = std::move(damage);
  return out;
}

DurableLazyDatabase::DurableLazyDatabase(std::string dir,
                                         DurableOptions options,
                                         std::unique_ptr<LazyDatabase> db,
                                         std::unique_ptr<WalWriter> wal,
                                         RecoveryStats recovery_stats)
    : dir_(std::move(dir)),
      options_(options),
      db_(std::move(db)),
      wal_(std::move(wal)),
      commit_queue_(wal_.get()),
      recovery_stats_(recovery_stats) {
  db_->set_update_capture(this);
}

DurableLazyDatabase::~DurableLazyDatabase() {
  db_->set_update_capture(nullptr);
}

Status DurableLazyDatabase::Freeze() {
  if (db_->update_log().mode() != LogMode::kLazyStatic) return Status::OK();
  if (db_->update_log().frozen()) return Status::OK();  // marker already holds
  db_->Freeze();
  return wal_->Append(LogRecord::Freeze());
}

Status DurableLazyDatabase::Checkpoint() {
  // LS snapshots require a frozen log; journal the freeze point so a
  // crash right after the rotation still replays deterministically.
  if (db_->update_log().mode() == LogMode::kLazyStatic) {
    LAZYXML_RETURN_NOT_OK(Freeze());
  }
  // Rotate first: the snapshot then covers segments [1, K] exactly, and
  // records appended after this call land in K+1, beyond its coverage.
  const uint64_t covered = wal_->current_segment();
  LAZYXML_RETURN_NOT_OK(wal_->Rotate());

  LAZYXML_ASSIGN_OR_RETURN(std::string blob, SerializeDatabase(*db_));
  LAZYXML_RETURN_NOT_OK(
      WriteFileAtomic(dir_ + "/" + SnapshotFileName(covered), blob)
          .WithContext("writing checkpoint snapshot"));

  // The snapshot is durable; everything it covers is now garbage (WAL
  // segments <= covered, snapshots < covered, stray atomic-write temp
  // files). Recovery ignores all of these, so a crash mid-truncation
  // only wastes space.
  LAZYXML_ASSIGN_OR_RETURN(std::vector<std::string> names,
                           ListDirectory(dir_));
  for (const std::string& name : names) {
    bool obsolete = false;
    if (auto seg = ParseWalSegmentFileName(name)) {
      obsolete = *seg <= covered;
    } else if (auto snap = ParseSnapshotFileName(name)) {
      obsolete = *snap < covered;
    } else {
      obsolete = name.size() > 4 &&
                 name.compare(name.size() - 4, 4, ".tmp") == 0;
    }
    if (obsolete) {
      LAZYXML_RETURN_NOT_OK(RemoveFileIfExists(dir_ + "/" + name));
    }
  }
  return SyncDirectory(dir_);
}

Status DurableLazyDatabase::Emit(LogRecord record) {
  if (batching_) {
    // Inside an ApplyBatch: defer to the OnBatchEnd group commit so the
    // whole batch pays one buffered write + one policy sync.
    pending_.push_back(std::move(record));
    return Status::OK();
  }
  return wal_->Append(record);
}

Status DurableLazyDatabase::OnInsertSegment(SegmentId sid,
                                            std::string_view text,
                                            uint64_t gp) {
  return Emit(LogRecord::InsertSegment(sid, text, gp));
}

Status DurableLazyDatabase::OnRemoveRange(uint64_t gp, uint64_t length) {
  return Emit(LogRecord::RemoveRange(gp, length));
}

Status DurableLazyDatabase::OnCollapseSubtree(SegmentId old_sid,
                                              SegmentId new_sid) {
  return Emit(LogRecord::CollapseSubtree(old_sid, new_sid));
}

Status DurableLazyDatabase::OnBatchBegin(size_t size) {
  batching_ = true;
  pending_.clear();
  pending_.reserve(size);
  return Status::OK();
}

Status DurableLazyDatabase::OnBatchEnd() {
  batching_ = false;
  if (pending_.empty()) return Status::OK();
  // Also called on the error path of ApplyBatch: the records of the
  // applied prefix are flushed so disk state matches memory state.
  Status s = commit_queue_.Commit(std::move(pending_));
  pending_ = std::vector<LogRecord>();
  return s;
}

}  // namespace lazyxml
