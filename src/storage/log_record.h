// Logical WAL records: the durable form of the update stream captured
// from LazyDatabase (core/update_capture.h). One record per primitive
// operation; payloads use the bounds-checked ByteWriter/ByteReader
// encoding (common/serial.h). Framing (CRC + length) is the writer's
// and reader's concern (wal_writer.h / wal_reader.h); this file is only
// the payload codec. Format details: docs/WAL_FORMAT.md.

#ifndef LAZYXML_STORAGE_LOG_RECORD_H_
#define LAZYXML_STORAGE_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "core/segment.h"

namespace lazyxml {

/// Wire tag of a record. Values are part of the on-disk format; never
/// renumber.
enum class LogRecordType : uint8_t {
  kInsertSegment = 1,   ///< sid, gp, text
  kRemoveRange = 2,     ///< gp, length
  kCollapseSubtree = 3, ///< old_sid, new_sid
  kFreeze = 4,          ///< no payload (LS-mode freeze marker)
};

/// One decoded record. Unused fields are zero / empty per type.
struct LogRecord {
  LogRecordType type = LogRecordType::kFreeze;
  SegmentId sid = 0;      ///< insert: assigned sid; collapse: old sid
  SegmentId new_sid = 0;  ///< collapse: resulting sid
  uint64_t gp = 0;        ///< insert / remove: global position
  uint64_t length = 0;    ///< remove: width of the removed region
  std::string text;       ///< insert: the segment text

  static LogRecord InsertSegment(SegmentId sid, std::string_view text,
                                 uint64_t gp) {
    LogRecord r;
    r.type = LogRecordType::kInsertSegment;
    r.sid = sid;
    r.gp = gp;
    r.text = std::string(text);
    return r;
  }
  static LogRecord RemoveRange(uint64_t gp, uint64_t length) {
    LogRecord r;
    r.type = LogRecordType::kRemoveRange;
    r.gp = gp;
    r.length = length;
    return r;
  }
  static LogRecord CollapseSubtree(SegmentId old_sid, SegmentId new_sid) {
    LogRecord r;
    r.type = LogRecordType::kCollapseSubtree;
    r.sid = old_sid;
    r.new_sid = new_sid;
    return r;
  }
  static LogRecord Freeze() { return LogRecord{}; }

  friend bool operator==(const LogRecord& a, const LogRecord& b) {
    return a.type == b.type && a.sid == b.sid && a.new_sid == b.new_sid &&
           a.gp == b.gp && a.length == b.length && a.text == b.text;
  }
};

/// Encodes the payload (type byte + body). Never fails.
std::string EncodeLogRecord(const LogRecord& record);

/// Encodes into `out` (cleared first), reusing its allocation — the
/// WAL writer's per-record hot path encodes into a member buffer so
/// steady-state appends allocate nothing.
void EncodeLogRecordInto(const LogRecord& record, std::string* out);

/// Decodes one payload produced by EncodeLogRecord. The whole input must
/// be consumed; anything malformed is Corruption.
Result<LogRecord> DecodeLogRecord(std::string_view payload);

}  // namespace lazyxml

#endif  // LAZYXML_STORAGE_LOG_RECORD_H_
