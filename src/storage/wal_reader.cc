#include "storage/wal_reader.h"

#include "common/crc32c.h"
#include "common/strings.h"
#include "storage/wal_layout.h"

namespace lazyxml {

namespace {

uint32_t LoadU32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24);
}

}  // namespace

WalReadOutcome WalSegmentReader::Next(LogRecord* record, Status* detail) {
  const uint64_t remaining = data_.size() - pos_;
  if (remaining == 0) return WalReadOutcome::kEnd;
  if (remaining < kWalFrameHeaderBytes) {
    *detail = Status::Corruption(StringPrintf(
        "torn frame header at offset %llu (%llu trailing bytes)",
        static_cast<unsigned long long>(pos_),
        static_cast<unsigned long long>(remaining)));
    return WalReadOutcome::kTornTail;
  }
  const char* base = data_.data() + pos_;
  const uint32_t stored_crc = LoadU32(base);
  const uint64_t length = LoadU32(base + 4);
  if (length > kWalMaxRecordBytes) {
    *detail = Status::Corruption(StringPrintf(
        "frame length %llu exceeds the record ceiling at offset %llu",
        static_cast<unsigned long long>(length),
        static_cast<unsigned long long>(pos_)));
    // An interrupted append can leave garbage in the length field only
    // at the tail; an insane length mid-file would also surface as
    // "runs past EOF", so classify by position like the other cases.
    return pos_ + kWalFrameHeaderBytes + length >= data_.size()
               ? WalReadOutcome::kTornTail
               : WalReadOutcome::kCorrupt;
  }
  if (length > remaining - kWalFrameHeaderBytes) {
    *detail = Status::Corruption(StringPrintf(
        "frame at offset %llu runs past end of segment",
        static_cast<unsigned long long>(pos_)));
    return WalReadOutcome::kTornTail;
  }
  const std::string_view payload =
      data_.substr(pos_ + kWalFrameHeaderBytes, length);
  const uint32_t actual_crc = crc32c::Mask(crc32c::Value(payload));
  const bool frame_at_eof =
      pos_ + kWalFrameHeaderBytes + length == data_.size();
  if (stored_crc != actual_crc) {
    *detail = Status::Corruption(StringPrintf(
        "bad record CRC at offset %llu",
        static_cast<unsigned long long>(pos_)));
    // A torn append can only be the last thing in the file; a CRC
    // mismatch with valid frames after it is damage, not a crash.
    return frame_at_eof ? WalReadOutcome::kTornTail
                        : WalReadOutcome::kCorrupt;
  }
  auto decoded = DecodeLogRecord(payload);
  if (!decoded.ok()) {
    // CRC-valid bytes that do not decode were written that way; this is
    // never a torn append.
    *detail = decoded.status().WithContext(StringPrintf(
        "record at offset %llu", static_cast<unsigned long long>(pos_)));
    return WalReadOutcome::kCorrupt;
  }
  *record = std::move(decoded).ValueOrDie();
  pos_ += kWalFrameHeaderBytes + length;
  ++records_read_;
  return WalReadOutcome::kRecord;
}

}  // namespace lazyxml
