// Crash recovery: rebuilds a LazyDatabase from a database directory —
// newest valid snapshot first, then replay of the WAL tail.
//
// Guarantees:
//  * Determinism: replaying the captured op stream against the restored
//    snapshot reproduces the exact pre-crash database (same sids, same
//    frozen coordinates, same query results); insert/collapse records
//    carry the sids the original run assigned and replay verifies them,
//    so silent divergence is impossible — a mismatch is Corruption.
//  * Torn-write safety: a damaged tail of the *final* segment (the only
//    place an interrupted append can land) ends replay cleanly at the
//    last whole record, and the tear is truncated away on disk so the
//    segment is whole again for the next recovery; damage anywhere else
//    — or anywhere at all under `strict` — fails with Corruption. Never
//    UB, never a crash.
//  * A missing snapshot with no WAL is an empty database, not an error;
//    a snapshot that exists but will not load is Corruption (recovery
//    falls back to an older snapshot only when its WAL coverage is
//    still contiguous on disk).

#ifndef LAZYXML_STORAGE_RECOVERY_H_
#define LAZYXML_STORAGE_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "core/lazy_database.h"
#include "core/snapshot.h"
#include "storage/log_record.h"

namespace lazyxml {

struct RecoveryOptions {
  /// Tuning for the rebuilt database; the maintenance mode comes from
  /// the snapshot when one exists.
  LazyDatabaseOptions db;
  /// When true, a torn tail is Corruption too (deployments that sync
  /// every record and want loss surfaced rather than truncated away).
  bool strict = false;
};

struct RecoveryStats {
  uint64_t snapshot_index = 0;  ///< 0 = recovered without a snapshot
  uint64_t segments_replayed = 0;
  uint64_t records_replayed = 0;
  bool torn_tail = false;       ///< replay stopped at a damaged tail
  uint64_t torn_segment = 0;    ///< segment index of the torn tail
  uint64_t valid_prefix_bytes = 0;  ///< usable bytes of that segment
};

struct RecoveredDatabase {
  std::unique_ptr<LazyDatabase> db;
  RecoveryStats stats;
  /// First segment index the writer may use (past everything on disk).
  uint64_t next_wal_index = 1;
};

/// Applies one replayed record to `db`, verifying sid determinism.
/// Exposed for tests; RecoverDatabase drives it.
Status ApplyLogRecord(LazyDatabase* db, const LogRecord& record);

/// Recovers from `dir`. See the file comment for semantics.
Result<RecoveredDatabase> RecoverDatabase(const std::string& dir,
                                          const RecoveryOptions& options = {});

}  // namespace lazyxml

#endif  // LAZYXML_STORAGE_RECOVERY_H_
