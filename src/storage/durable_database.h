// DurableLazyDatabase: LazyDatabase + durability. Composes the in-memory
// lazy store with a write-ahead log (wal_writer.h) and the logical
// snapshot (core/snapshot.h) into a crash-safe database directory:
//
//   open        load newest valid snapshot, replay the WAL tail
//               (storage/recovery.h), start a fresh WAL segment;
//   update      apply in memory, then append one WAL record (via the
//               core/update_capture.h hook) and sync per policy — on OK
//               the update is acknowledged;
//   checkpoint  rotate the WAL, atomically persist a snapshot covering
//               everything before the rotation point, then truncate the
//               obsolete WAL segments and older snapshots.
//
// Queries read the in-memory database and never touch the log. The
// class is not thread-safe (compose with ConcurrentLazyDatabase-style
// locking externally if needed); durability and concurrency are
// orthogonal layers here.

#ifndef LAZYXML_STORAGE_DURABLE_DATABASE_H_
#define LAZYXML_STORAGE_DURABLE_DATABASE_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "core/lazy_database.h"
#include "core/update_capture.h"
#include "storage/group_commit.h"
#include "storage/recovery.h"
#include "storage/salvage.h"
#include "storage/wal_writer.h"

namespace lazyxml {

/// How Open treats a damaged directory.
enum class OpenPolicy {
  /// Damage (beyond a repairable torn tail) is Corruption; nothing on
  /// disk is altered beyond the standard tail repair.
  kStrict,
  /// On Corruption, fall back to salvage (storage/salvage.h): quarantine
  /// the damage, open the maximal verified prefix, and surface what
  /// happened in damage_report().
  kBestEffort,
};

struct DurableOptions {
  /// In-memory database tuning; the mode of an existing directory comes
  /// from its snapshot.
  LazyDatabaseOptions db;
  WalWriterOptions wal;
  /// Torn WAL tails become Corruption instead of being truncated away.
  bool strict_recovery = false;
  /// Salvage fallback policy; see OpenPolicy.
  OpenPolicy open_policy = OpenPolicy::kStrict;
};

class DurableLazyDatabase : private UpdateCapture {
 public:
  /// Opens (or creates) the database directory `dir`.
  static Result<std::unique_ptr<DurableLazyDatabase>> Open(
      const std::string& dir, const DurableOptions& options = {});

  ~DurableLazyDatabase() override;
  DurableLazyDatabase(const DurableLazyDatabase&) = delete;
  DurableLazyDatabase& operator=(const DurableLazyDatabase&) = delete;

  // -- Updates: in-memory apply + WAL append ----------------------------------

  Result<SegmentId> InsertSegment(std::string_view text, uint64_t gp) {
    return db_->InsertSegment(text, gp);
  }
  Status RemoveSegment(uint64_t gp, uint64_t length) {
    return db_->RemoveSegment(gp, length);
  }
  Status ApplyPlan(std::span<const SegmentInsertion> plan) {
    return db_->ApplyPlan(plan);
  }

  /// Batched ingestion: the in-memory apply runs through
  /// LazyDatabase::ApplyBatch, and the captured records are buffered
  /// between the OnBatchBegin/OnBatchEnd hooks and committed as ONE
  /// WAL batch — one buffered write, one policy sync (kEveryRecord pays
  /// one fdatasync per batch instead of per op). A crash mid-commit
  /// tears at most the frame tail; recovery truncates to the last whole
  /// frame and replays a strict prefix of the batch (prefix durability,
  /// docs/WAL_FORMAT.md).
  Result<BatchStats> ApplyBatch(std::span<const UpdateOp> ops) {
    return db_->ApplyBatch(ops);
  }
  /// Stats-out form: `*stats_out` covers exactly the applied prefix even
  /// when the batch fails (core/lazy_database.h).
  Status ApplyBatch(std::span<const UpdateOp> ops, BatchStats* stats_out) {
    return db_->ApplyBatch(ops, stats_out);
  }
  Result<SegmentId> CollapseSubtree(SegmentId sid) {
    return db_->CollapseSubtree(sid);
  }
  Status CompactAll() { return db_->CompactAll(); }

  /// LS mode: freezes and journals a freeze marker so replay reproduces
  /// the freeze point; skipped when already frozen. No-op in LD mode.
  Status Freeze();

  // -- Durability control ------------------------------------------------------

  /// Forces every appended record to stable storage (the manual
  /// counterpart of WalSyncPolicy::kEveryRecord).
  Status Sync() { return wal_->Sync(); }

  /// Persists a snapshot and truncates the WAL it covers. On return the
  /// directory recovers to exactly the current state without replaying
  /// pre-checkpoint records.
  Status Checkpoint();

  // -- Queries (forwarded) -----------------------------------------------------
  //
  // In LS mode a query on an unfrozen log freezes it, and freeze points
  // shape the frozen coordinates replay must reproduce — so the facade
  // journals the marker (via Freeze()) before forwarding. On an already
  // frozen log the queries append nothing.

  Result<LazyJoinResult> JoinByName(std::string_view anc, std::string_view desc,
                                    const LazyJoinOptions& options = {}) {
    LAZYXML_RETURN_NOT_OK(Freeze());
    return db_->JoinByName(anc, desc, options);
  }
  Result<std::vector<JoinPair>> JoinGlobal(std::string_view anc,
                                           std::string_view desc,
                                           const LazyJoinOptions& options = {}) {
    LAZYXML_RETURN_NOT_OK(Freeze());
    return db_->JoinGlobal(anc, desc, options);
  }
  Result<std::vector<GlobalElement>> MaterializeGlobalElements(
      std::string_view tag) {
    LAZYXML_RETURN_NOT_OK(Freeze());
    return db_->MaterializeGlobalElements(tag);
  }

  /// Reconfigures join threading + scan caching (core/parallel_join.h);
  /// purely in-memory, nothing is journaled.
  void SetQueryOptions(const QueryOptions& query) {
    db_->SetQueryOptions(query);
  }

  /// The wrapped in-memory database (queries, stats, invariants). Going
  /// around the facade for *updates* forfeits durability only if the
  /// capture hook is detached; it is attached for the facade's lifetime.
  LazyDatabase& database() { return *db_; }
  const LazyDatabase& database() const { return *db_; }

  /// Snapshot of the process-wide metrics registry (docs/OBSERVABILITY.md)
  /// — includes the WAL/group-commit instruments this layer feeds
  /// (wal.fsyncs, wal.fsync_us, wal.group_commit.commits_per_fsync).
  obs::MetricsSnapshot Metrics() const { return db_->Metrics(); }

  /// What recovery did when this handle was opened.
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  /// What salvage did when this handle was opened with
  /// OpenPolicy::kBestEffort; clean() when the strict path sufficed.
  const DamageReport& damage_report() const { return damage_report_; }

  /// The live WAL writer (introspection: segment index, record counts).
  const WalWriter& wal() const { return *wal_; }

  /// The group-commit queue draining into the WAL. ApplyBatch flushes
  /// its buffered records through it; callers that serialize the
  /// in-memory apply externally but let WAL commits overlap can Commit
  /// concurrently and share one fsync per group (kEveryRecord). Records
  /// committed here must come from the capture stream — arbitrary
  /// records would diverge replay from the in-memory state.
  GroupCommitQueue& commit_queue() { return commit_queue_; }

  /// The database directory this handle was opened on.
  const std::string& dir() const { return dir_; }

  /// The options this handle was opened with.
  const DurableOptions& options() const { return options_; }

 private:
  DurableLazyDatabase(std::string dir, DurableOptions options,
                      std::unique_ptr<LazyDatabase> db,
                      std::unique_ptr<WalWriter> wal,
                      RecoveryStats recovery_stats);

  // UpdateCapture: one WAL record per captured primitive. Between
  // OnBatchBegin and OnBatchEnd records are buffered and committed as
  // one group; outside a batch each record is appended (and synced, per
  // policy) individually, as before.
  Status OnInsertSegment(SegmentId sid, std::string_view text,
                         uint64_t gp) override;
  Status OnRemoveRange(uint64_t gp, uint64_t length) override;
  Status OnCollapseSubtree(SegmentId old_sid, SegmentId new_sid) override;
  Status OnBatchBegin(size_t size) override;
  Status OnBatchEnd() override;

  Status Emit(LogRecord record);

  std::string dir_;
  DurableOptions options_;
  std::unique_ptr<LazyDatabase> db_;
  std::unique_ptr<WalWriter> wal_;
  GroupCommitQueue commit_queue_;
  bool batching_ = false;
  std::vector<LogRecord> pending_;
  RecoveryStats recovery_stats_;
  DamageReport damage_report_;
};

}  // namespace lazyxml

#endif  // LAZYXML_STORAGE_DURABLE_DATABASE_H_
