#include "storage/recovery.h"

#include <algorithm>
#include <vector>

#include "common/file_io.h"
#include "common/logging.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/wal_layout.h"
#include "storage/wal_reader.h"

namespace lazyxml {

namespace {

struct DirectoryContents {
  std::vector<uint64_t> wal_segments;  // ascending
  std::vector<uint64_t> snapshots;     // ascending
};

Result<DirectoryContents> ScanDirectory(const std::string& dir) {
  LAZYXML_ASSIGN_OR_RETURN(std::vector<std::string> names,
                           ListDirectory(dir));
  DirectoryContents out;
  for (const std::string& name : names) {
    if (auto idx = ParseWalSegmentFileName(name)) {
      out.wal_segments.push_back(*idx);
    } else if (auto idx = ParseSnapshotFileName(name)) {
      out.snapshots.push_back(*idx);
    }
  }
  std::sort(out.wal_segments.begin(), out.wal_segments.end());
  std::sort(out.snapshots.begin(), out.snapshots.end());
  return out;
}

}  // namespace

Status ApplyLogRecord(LazyDatabase* db, const LogRecord& record) {
  switch (record.type) {
    case LogRecordType::kInsertSegment: {
      auto sid = db->InsertSegment(record.text, record.gp);
      if (!sid.ok()) {
        return Status::Corruption(
            "WAL replay diverged; insert failed: " + sid.status().ToString());
      }
      if (sid.ValueOrDie() != record.sid) {
        return Status::Corruption(StringPrintf(
            "WAL replay diverged: insert produced sid %llu, log says %llu",
            static_cast<unsigned long long>(sid.ValueOrDie()),
            static_cast<unsigned long long>(record.sid)));
      }
      return Status::OK();
    }
    case LogRecordType::kRemoveRange: {
      Status s = db->RemoveSegment(record.gp, record.length);
      if (!s.ok()) {
        return Status::Corruption(
            "WAL replay diverged; remove failed: " + s.ToString());
      }
      return Status::OK();
    }
    case LogRecordType::kCollapseSubtree: {
      auto sid = db->CollapseSubtree(record.sid);
      if (!sid.ok()) {
        return Status::Corruption(
            "WAL replay diverged; collapse failed: " +
            sid.status().ToString());
      }
      if (sid.ValueOrDie() != record.new_sid) {
        return Status::Corruption(StringPrintf(
            "WAL replay diverged: collapse produced sid %llu, log says %llu",
            static_cast<unsigned long long>(sid.ValueOrDie()),
            static_cast<unsigned long long>(record.new_sid)));
      }
      return Status::OK();
    }
    case LogRecordType::kFreeze:
      db->Freeze();
      return Status::OK();
  }
  return Status::Corruption("unknown WAL record type in replay");
}

Result<RecoveredDatabase> RecoverDatabase(const std::string& dir,
                                          const RecoveryOptions& options) {
  obs::TraceSpan recovery_span("recovery.run");
  LAZYXML_METRIC_COUNTER(runs_counter, "recovery.runs");
  LAZYXML_METRIC_HISTOGRAM(replay_hist, "recovery.replay_us");
  runs_counter.Increment();
  obs::ScopedLatency replay_latency(replay_hist);
  LAZYXML_RETURN_NOT_OK(CreateDirIfMissing(dir));
  LAZYXML_ASSIGN_OR_RETURN(DirectoryContents contents, ScanDirectory(dir));

  RecoveredDatabase out;

  // 1. Newest snapshot that both loads and still has its WAL tail on
  //    disk. Checkpointing deletes WAL segments <= the snapshot index
  //    only after the snapshot is durable, so under crashes (not media
  //    damage) the newest snapshot always qualifies.
  Status snapshot_failure;  // best (newest) failure, reported if none load
  for (size_t i = contents.snapshots.size(); i-- > 0;) {
    const uint64_t snap_index = contents.snapshots[i];
    auto loaded = LoadSnapshot(dir + "/" + SnapshotFileName(snap_index),
                               options.db);
    if (!loaded.ok()) {
      if (snapshot_failure.ok()) snapshot_failure = loaded.status();
      LAZYXML_LOG(Warning) << "snapshot " << snap_index
                           << " unusable: " << loaded.status().ToString();
      continue;
    }
    // Coverage check: every existing segment in (snap_index, max] must
    // form a contiguous run starting at snap_index + 1 — replayable —
    // or there must be none newer than the snapshot.
    bool contiguous = true;
    uint64_t expected = snap_index + 1;
    for (uint64_t seg : contents.wal_segments) {
      if (seg <= snap_index) continue;  // covered; stale, ignored
      if (seg != expected) {
        contiguous = false;
        break;
      }
      ++expected;
    }
    if (!contiguous) {
      if (snapshot_failure.ok()) {
        snapshot_failure = Status::Corruption(StringPrintf(
            "WAL segments after snapshot %llu are not contiguous",
            static_cast<unsigned long long>(snap_index)));
      }
      continue;
    }
    out.db = std::move(loaded).ValueOrDie();
    out.stats.snapshot_index = snap_index;
    break;
  }
  if (out.db == nullptr) {
    if (!contents.snapshots.empty()) {
      // Snapshots exist but none is usable: starting empty would
      // silently drop data.
      return Status::Corruption("no usable snapshot: " +
                                snapshot_failure.ToString());
    }
    out.db = std::make_unique<LazyDatabase>(options.db);
    // Without a snapshot the whole WAL must be present from segment 1.
    uint64_t expected = 1;
    for (uint64_t seg : contents.wal_segments) {
      if (seg != expected++) {
        return Status::Corruption("WAL segments do not start at 1 or have "
                                  "gaps, and no snapshot covers them");
      }
    }
  }

  // 2. Replay segments newer than the snapshot, in order.
  const uint64_t max_segment =
      contents.wal_segments.empty() ? 0 : contents.wal_segments.back();
  for (uint64_t seg : contents.wal_segments) {
    if (seg <= out.stats.snapshot_index) continue;
    const bool final_segment = seg == max_segment;
    LAZYXML_ASSIGN_OR_RETURN(
        std::string data,
        ReadFileToString(dir + "/" + WalSegmentFileName(seg)));
    WalSegmentReader reader(data);
    LogRecord record;
    Status detail;
    for (;;) {
      const WalReadOutcome outcome = reader.Next(&record, &detail);
      if (outcome == WalReadOutcome::kEnd) break;
      if (outcome == WalReadOutcome::kRecord) {
        LAZYXML_RETURN_NOT_OK(
            ApplyLogRecord(out.db.get(), record)
                .WithContext(StringPrintf(
                    "segment %llu offset %llu",
                    static_cast<unsigned long long>(seg),
                    static_cast<unsigned long long>(
                        reader.valid_prefix_bytes()))));
        continue;
      }
      // Damage. Tolerable only as a torn tail of the final segment.
      if (outcome == WalReadOutcome::kTornTail && final_segment &&
          !options.strict) {
        out.stats.torn_tail = true;
        out.stats.torn_segment = seg;
        out.stats.valid_prefix_bytes = reader.valid_prefix_bytes();
        LAZYXML_LOG(Warning)
            << "WAL tail truncated at segment " << seg << " offset "
            << reader.valid_prefix_bytes() << ": " << detail.ToString();
        // Repair the tear on disk. The writer will start a segment after
        // this one, making it non-final — where leftover damage would
        // (rightly) read as Corruption on the next recovery.
        LAZYXML_RETURN_NOT_OK(
            TruncateFile(dir + "/" + WalSegmentFileName(seg),
                         reader.valid_prefix_bytes())
                .WithContext("repairing torn WAL tail"));
        break;
      }
      return detail.WithContext(
          StringPrintf("WAL segment %llu unrecoverable",
                       static_cast<unsigned long long>(seg)));
    }
    out.stats.records_replayed += reader.records_read();
    ++out.stats.segments_replayed;
  }
  // Registry mirror of RecoveryStats (the struct stays the API).
  LAZYXML_METRIC_COUNTER(records_counter, "recovery.records_replayed");
  LAZYXML_METRIC_COUNTER(segments_counter, "recovery.segments_replayed");
  LAZYXML_METRIC_COUNTER(torn_counter, "recovery.torn_tails");
  records_counter.Add(out.stats.records_replayed);
  segments_counter.Add(out.stats.segments_replayed);
  if (out.stats.torn_tail) torn_counter.Increment();

  out.next_wal_index = std::max(max_segment, out.stats.snapshot_index) + 1;
  LAZYXML_RETURN_NOT_OK(out.db->CheckInvariants().WithContext(
      "recovered database failed validation"));
  return out;
}

}  // namespace lazyxml
