// On-disk layout shared by the WAL writer, reader and recovery: the
// directory file-naming scheme and the record frame geometry.
//
// A database directory contains:
//   wal-NNNNNN.log      append-only record segments, NNNNNN ascending
//   snapshot-NNNNNN.bin full logical snapshot covering every record in
//                       wal segments with index <= NNNNNN
// plus transient "*.tmp" files from atomic writes (ignored / reclaimed).
//
// Each record in a segment is framed as
//   u32 crc     masked CRC32C of the payload (common/crc32c.h)
//   u32 length  payload size in bytes
//   payload     type byte + body (storage/log_record.h)
// in little-endian. See docs/WAL_FORMAT.md for the full story.

#ifndef LAZYXML_STORAGE_WAL_LAYOUT_H_
#define LAZYXML_STORAGE_WAL_LAYOUT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace lazyxml {

/// Frame header: u32 masked crc + u32 payload length.
inline constexpr size_t kWalFrameHeaderBytes = 8;

/// Upper bound on one payload; a length field above this is corruption,
/// not a huge record (segments rotate long before this).
inline constexpr uint64_t kWalMaxRecordBytes = 1ull << 30;

/// "wal-000007.log" for index 7. Indices start at 1.
std::string WalSegmentFileName(uint64_t index);

/// "snapshot-000007.bin" for index 7.
std::string SnapshotFileName(uint64_t index);

/// Parses a WAL segment file name; nullopt if `name` is not one.
std::optional<uint64_t> ParseWalSegmentFileName(std::string_view name);

/// Parses a snapshot file name; nullopt if `name` is not one.
std::optional<uint64_t> ParseSnapshotFileName(std::string_view name);

}  // namespace lazyxml

#endif  // LAZYXML_STORAGE_WAL_LAYOUT_H_
