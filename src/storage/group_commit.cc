#include "storage/group_commit.h"

#include "obs/metrics.h"

namespace lazyxml {

Status GroupCommitQueue::Commit(std::vector<LogRecord> records) {
  if (records.empty()) return Status::OK();
  Request req;
  req.records = std::move(records);

  std::unique_lock<std::mutex> lock(mu_);
  queue_.push_back(&req);
  // Followers wait for their own completion OR for the chance to lead:
  // the previous leader may finish a flush that did not include us.
  cv_.wait(lock, [&] { return req.done || (!leader_active_ && queue_.front() == &req); });
  if (req.done) return req.status;

  // Lead: keep draining until the queue is empty so late arrivals ride
  // the next group instead of each paying their own flush.
  leader_active_ = true;
  while (!queue_.empty()) {
    std::vector<Request*> group(queue_.begin(), queue_.end());
    queue_.clear();
    lock.unlock();

    std::vector<const LogRecord*> flat;
    size_t total = 0;
    for (Request* r : group) total += r->records.size();
    flat.reserve(total);
    for (Request* r : group) {
      for (const LogRecord& rec : r->records) flat.push_back(&rec);
    }
    // One buffered write + one policy sync for the whole group.
    const Status flush = writer_->AppendBatch(
        std::span<const LogRecord* const>(flat.data(), flat.size()));

    lock.lock();
    ++groups_;
    requests_ += group.size();
    // Commits-per-fsync is the fsync-sharing ratio the ROADMAP
    // group-commit follow-up asks for: requests / groups over the queue's
    // lifetime (each group is exactly one AppendBatch = one policy sync).
    LAZYXML_METRIC_COUNTER(groups_counter, "wal.group_commit.groups");
    LAZYXML_METRIC_COUNTER(requests_counter, "wal.group_commit.requests");
    LAZYXML_METRIC_GAUGE(ratio_gauge, "wal.group_commit.commits_per_fsync");
    groups_counter.Increment();
    requests_counter.Add(group.size());
    ratio_gauge.Set(static_cast<double>(requests_) /
                    static_cast<double>(groups_));
    for (Request* r : group) {
      // A flush failure fails every request in the group: none of their
      // records are known durable, and retrying piecemeal could reorder.
      r->status = flush;
      r->done = true;
    }
    cv_.notify_all();
  }
  leader_active_ = false;
  // Wake a queued request (if any raced in) so it can take over leading.
  cv_.notify_all();
  return req.status;
}

uint64_t GroupCommitQueue::groups_committed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return groups_;
}

uint64_t GroupCommitQueue::requests_committed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return requests_;
}

}  // namespace lazyxml
