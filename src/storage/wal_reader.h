// WalSegmentReader: decodes the record frames of one WAL segment held in
// memory, distinguishing three end states:
//
//  * clean end     — the last frame ends exactly at EOF;
//  * torn tail     — the bytes after the valid prefix look like an
//                    interrupted append (incomplete header, frame
//                    running past EOF, or a CRC-bad frame that is the
//                    last thing in the file). Expected after a crash;
//                    recovery truncates replay here.
//  * corruption    — a CRC-bad frame with more data after it, or a
//                    CRC-valid frame whose payload does not decode.
//                    Never expected; recovery fails. (A frame whose
//                    length field runs past EOF is classified as torn
//                    even mid-damage: it is exactly what an interrupted
//                    large append looks like.)
//
// The valid-prefix offset is exposed so callers (and the fault-injection
// tests) can assert exactly how much of a damaged log remains usable.

#ifndef LAZYXML_STORAGE_WAL_READER_H_
#define LAZYXML_STORAGE_WAL_READER_H_

#include <cstdint>
#include <string_view>

#include "common/result.h"
#include "storage/log_record.h"

namespace lazyxml {

enum class WalReadOutcome {
  kRecord,    ///< one record decoded
  kEnd,       ///< clean end of segment
  kTornTail,  ///< interrupted append at the tail; prefix is usable
  kCorrupt,   ///< damage that cannot be a torn append
};

class WalSegmentReader {
 public:
  explicit WalSegmentReader(std::string_view data) : data_(data) {}

  /// Advances past the next frame. On kRecord fills `record`; on
  /// kTornTail / kCorrupt fills `detail` with a description (the reader
  /// stays at the valid prefix and repeats the same outcome).
  WalReadOutcome Next(LogRecord* record, Status* detail);

  /// Offset one past the last cleanly decoded frame.
  uint64_t valid_prefix_bytes() const { return pos_; }

  /// Records decoded so far.
  uint64_t records_read() const { return records_read_; }

 private:
  std::string_view data_;
  uint64_t pos_ = 0;
  uint64_t records_read_ = 0;
};

}  // namespace lazyxml

#endif  // LAZYXML_STORAGE_WAL_READER_H_
