#include "storage/wal_layout.h"

#include "common/strings.h"

namespace lazyxml {

namespace {

/// Parses "<prefix><digits><suffix>" into the digit run's value.
std::optional<uint64_t> ParseIndexed(std::string_view name,
                                     std::string_view prefix,
                                     std::string_view suffix) {
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.substr(0, prefix.size()) != prefix) return std::nullopt;
  if (name.substr(name.size() - suffix.size()) != suffix) return std::nullopt;
  const std::string_view digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty() || digits.size() > 19) return std::nullopt;
  uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

std::string WalSegmentFileName(uint64_t index) {
  return StringPrintf("wal-%06llu.log",
                      static_cast<unsigned long long>(index));
}

std::string SnapshotFileName(uint64_t index) {
  return StringPrintf("snapshot-%06llu.bin",
                      static_cast<unsigned long long>(index));
}

std::optional<uint64_t> ParseWalSegmentFileName(std::string_view name) {
  return ParseIndexed(name, "wal-", ".log");
}

std::optional<uint64_t> ParseSnapshotFileName(std::string_view name) {
  return ParseIndexed(name, "snapshot-", ".bin");
}

}  // namespace lazyxml
