// Salvage: best-effort recovery of a damaged database directory.
//
// Where storage/recovery.h refuses (Corruption) when a snapshot will not
// load or a WAL segment is damaged before its end, SalvageDatabase opens
// with the *maximal verified prefix* of the logical history instead:
//
//  1. the newest snapshot that loads is the base; unloadable newer
//     snapshots are quarantined;
//  2. the contiguous WAL run after the base is replayed record by record;
//     the first damaged or diverging frame cuts the history there — the
//     damaged segment is quarantined, its verified prefix is written back
//     in place (possibly as an empty file, keeping the segment chain
//     contiguous for the next open), and every later segment is
//     quarantined as unreachable;
//  3. the outcome is described by a machine-readable DamageReport rather
//     than a refusal or a silent truncation.
//
// Quarantined files move into `<dir>/quarantine/` (collision-safe names),
// so no byte of the damaged store is destroyed — a deeper forensic pass
// can still look at them.

#ifndef LAZYXML_STORAGE_SALVAGE_H_
#define LAZYXML_STORAGE_SALVAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/lazy_database.h"
#include "storage/recovery.h"

namespace lazyxml {

/// One damaged artifact the salvage pass dealt with.
struct DamagedArtifact {
  /// Original file name within the database directory.
  std::string file;
  /// Name under quarantine/ the original bytes were moved to; empty when
  /// nothing was moved (e.g. a gap recorded without a file).
  std::string quarantined_as;
  /// Machine-readable reason: "snapshot-unloadable", "wal-torn",
  /// "wal-corrupt", "wal-diverged", "wal-unreachable", "wal-orphaned".
  std::string reason;
  /// Human-readable description with concrete offsets.
  std::string detail;
  /// Bytes of the artifact kept in the opened state (written back).
  uint64_t kept_bytes = 0;
  /// Bytes dropped from the opened state.
  uint64_t dropped_bytes = 0;
  /// Whole records dropped from the opened state.
  uint64_t dropped_records = 0;
};

/// Machine-readable outcome of a salvage pass.
struct DamageReport {
  std::vector<DamagedArtifact> artifacts;
  /// Absolute-ish path of the quarantine directory; empty when clean.
  std::string quarantine_dir;
  /// Records replayed into the opened database.
  uint64_t records_recovered = 0;
  /// Records visible on disk but dropped (damaged or past the cut).
  uint64_t records_dropped = 0;

  /// True iff the directory needed no repairs at all.
  bool clean() const { return artifacts.empty(); }

  std::string ToString() const;
  std::string ToJson() const;
};

/// What SalvageDatabase hands back.
struct SalvageResult {
  std::unique_ptr<LazyDatabase> db;
  RecoveryStats stats;
  /// First segment index the writer may use.
  uint64_t next_wal_index = 1;
  DamageReport damage;
};

/// Best-effort opens `dir` (see the file comment). Fails only on
/// environmental errors (IOError) or when even the verified prefix does
/// not form a consistent database — never on data damage per se.
Result<SalvageResult> SalvageDatabase(const std::string& dir,
                                      const RecoveryOptions& options = {});

}  // namespace lazyxml

#endif  // LAZYXML_STORAGE_SALVAGE_H_
