// Batched-ingestion benchmark: ApplyBatch vs per-op application across
// batch size and WAL sync policy (EXPERIMENTS.md "Batched ingestion").
//
// Three amortizations are in play, and the sweep separates them:
//  * core     — deferred element-index inserts (one sorted tree apply per
//               batch instead of a descent per op), one epoch bump;
//  * storage  — one buffered WAL write and ONE policy fsync per batch
//               instead of one per record (the dominant term under
//               kEveryRecord, where a singleton pays a full fdatasync);
//  * fresh DB — a batch landing in an empty index takes the bottom-up
//               bulk load instead of top-down inserts.
//
// BM_InMemoryIngest isolates the core-layer term on a bare LazyDatabase;
// BM_DurableIngest runs the full durable path, where the sync-policy ×
// batch-size product shows the headline kEveryRecord win.

#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/metrics_hook.h"
#include "common/file_io.h"
#include "common/logging.h"
#include "core/lazy_database.h"
#include "core/update_batch.h"
#include "storage/durable_database.h"

namespace lazyxml {
namespace {

// One registration-form-sized segment (paper §1 scale).
const char* kSegment =
    "<person><name>New Person</name>"
    "<emailaddress>new@example.net</emailaddress>"
    "<phone>+1 (555) 0100000</phone>"
    "<address><street>1 Lazy St</street><city>Baltimore</city>"
    "<zipcode>21201</zipcode></address></person>";

std::string FreshBenchDir(const std::string& name) {
  const std::string dir = "/tmp/lazyxml_bench_batch_" + name;
  LAZYXML_CHECK(CreateDirIfMissing(dir).ok());
  auto names = ListDirectory(dir);
  LAZYXML_CHECK(names.ok());
  for (const auto& n : names.ValueOrDie()) {
    LAZYXML_CHECK(RemoveFileIfExists(dir + "/" + n).ok());
  }
  return dir;
}

// `n` flat appends inside <doc>...</doc> starting from super-document
// offset `at`: the steady-state ingest shape (new records arriving at the
// tail), so every run exercises the insert-run coalescing.
std::vector<UpdateOp> AppendOps(size_t n, uint64_t at) {
  const uint64_t seg_len = std::string(kSegment).size();
  std::vector<UpdateOp> ops;
  ops.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ops.push_back(UpdateOp::Insert(kSegment, at + i * seg_len));
  }
  return ops;
}

// ---------------------------------------------------------------------------
// Core layer only: no WAL, no locks. batch_size == 1 degenerates to the
// sequential path (one descent + one epoch bump per op).

void BM_InMemoryIngest(benchmark::State& state) {
  const size_t batch_size = static_cast<size_t>(state.range(0));
  constexpr size_t kOpsPerIter = 256;
  for (auto _ : state) {
    state.PauseTiming();
    LazyDatabase db;
    LAZYXML_CHECK(db.InsertSegment("<doc></doc>", 0).ok());
    const std::vector<UpdateOp> ops = AppendOps(kOpsPerIter, 5);
    state.ResumeTiming();
    for (size_t at = 0; at < ops.size(); at += batch_size) {
      const size_t len = std::min(batch_size, ops.size() - at);
      auto r = db.ApplyBatch({ops.data() + at, len});
      LAZYXML_CHECK(r.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerIter);
  state.SetLabel("batch=" + std::to_string(batch_size));
}
BENCHMARK(BM_InMemoryIngest)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

// ---------------------------------------------------------------------------
// Full durable path: the batch is journaled as one group commit (one
// buffered write, one policy sync). batch_size == 1 is the singleton
// baseline the ISSUE acceptance criterion compares against.

void RunDurableIngest(benchmark::State& state, WalSyncPolicy policy) {
  const size_t batch_size = static_cast<size_t>(state.range(0));
  const std::string dir = FreshBenchDir(std::string(WalSyncPolicyName(policy)) +
                                        "_" + std::to_string(batch_size));
  constexpr size_t kOpsPerIter = 256;
  DurableOptions options;
  options.wal.sync_policy = policy;
  const std::vector<UpdateOp> ops = AppendOps(kOpsPerIter, 5);
  uint64_t fsyncs = 0;
  for (auto _ : state) {
    // Fresh store per iteration: ingestion cost must not depend on how
    // many timing iterations ran before (segment count, WAL size).
    state.PauseTiming();
    auto names = ListDirectory(dir);
    LAZYXML_CHECK(names.ok());
    for (const auto& n : names.ValueOrDie()) {
      LAZYXML_CHECK(RemoveFileIfExists(dir + "/" + n).ok());
    }
    auto db = DurableLazyDatabase::Open(dir, options).ValueOrDie();
    LAZYXML_CHECK(db->InsertSegment("<doc></doc>", 0).ok());
    const uint64_t base_syncs = db->wal().syncs_performed();
    state.ResumeTiming();
    if (batch_size == 1) {
      for (const UpdateOp& op : ops) {
        LAZYXML_CHECK(db->InsertSegment(op.text, op.gp).ok());
      }
    } else {
      for (size_t i = 0; i < ops.size(); i += batch_size) {
        const size_t len = std::min(batch_size, ops.size() - i);
        auto r = db->ApplyBatch({ops.data() + i, len});
        LAZYXML_CHECK(r.ok());
      }
    }
    fsyncs += db->wal().syncs_performed() - base_syncs;
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerIter);
  state.counters["fsyncs_per_iter"] = benchmark::Counter(
      static_cast<double>(fsyncs),
      benchmark::Counter::kAvgIterations);
  state.SetLabel(std::string(WalSyncPolicyName(policy)) +
                 " batch=" + std::to_string(batch_size));
}

void BM_DurableIngestNever(benchmark::State& state) {
  RunDurableIngest(state, WalSyncPolicy::kNever);
}
void BM_DurableIngestBatchBytes(benchmark::State& state) {
  RunDurableIngest(state, WalSyncPolicy::kBatchBytes);
}
void BM_DurableIngestEveryRecord(benchmark::State& state) {
  RunDurableIngest(state, WalSyncPolicy::kEveryRecord);
}
BENCHMARK(BM_DurableIngestNever)->Arg(1)->Arg(8)->Arg(64)->Arg(256);
BENCHMARK(BM_DurableIngestBatchBytes)->Arg(1)->Arg(8)->Arg(64)->Arg(256);
BENCHMARK(BM_DurableIngestEveryRecord)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lazyxml

BENCHMARK_MAIN();
