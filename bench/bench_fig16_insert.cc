// Figure 16: elapsed time to insert one segment into documents of growing
// size — the lazy approach (LD) vs the traditional start/end-position
// labeling that must relabel every subsequent element. The paper plots
// this in logscale: the traditional curve grows with document size, LD
// stays flat.
//
// Methodology: the inserted segment lands at the document midpoint, so
// roughly half the elements change their global position (the paper's
// "average case"). Each timed sample inserts the segment and the removal
// that undoes it runs outside the timer.

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "xml/parser.h"
#include "xmlgen/chopper.h"
#include "xmlgen/xmark_generator.h"

namespace lazyxml {
namespace {

// One registration-form-sized segment (~20-30 elements, paper §1).
const char* kSegment =
    "<person id=\"pnew\"><name>New Person</name>"
    "<emailaddress>new@example.net</emailaddress>"
    "<phone>+1 (555) 0100000</phone><phone>+1 (555) 0100001</phone>"
    "<address><street>1 Lazy St</street><city>Baltimore</city>"
    "<country>United States</country><zipcode>21201</zipcode></address>"
    "<profile income=\"50000.00\"><interest category=\"category0\"/>"
    "<interest category=\"category1\"/><business>No</business>"
    "<age>30</age></profile>"
    "<watches><watch open_auction=\"open_auction0\"/>"
    "<watch open_auction=\"open_auction1\"/></watches></person>";

struct Fixture {
  std::string document;
  uint64_t insert_at = 0;  // midpoint, snapped to an element boundary
  size_t num_elements = 0;
};

const Fixture& FixtureFor(uint32_t persons) {
  static std::map<uint32_t, Fixture>* cache = new std::map<uint32_t, Fixture>();
  auto it = cache->find(persons);
  if (it == cache->end()) {
    Fixture f;
    XMarkConfig cfg;
    cfg.num_persons = persons;
    cfg.num_items = persons / 5;
    cfg.num_open_auctions = persons / 4;
    auto doc = XMarkGenerator(cfg).Generate();
    LAZYXML_CHECK(doc.ok());
    f.document = std::move(doc).ValueOrDie();
    // Snap the midpoint to the nearest following element start so the
    // splice is valid.
    TagDict dict;
    auto parsed = ParseFragment(f.document, &dict);
    LAZYXML_CHECK(parsed.ok());
    f.num_elements = parsed.ValueOrDie().records.size();
    const uint64_t mid = f.document.size() / 2;
    for (const ElementRecord& r : parsed.ValueOrDie().records) {
      if (r.start >= mid) {
        f.insert_at = r.start;
        break;
      }
    }
    it = cache->emplace(persons, std::move(f)).first;
  }
  return it->second;
}

void BM_Fig16_LazyDynamic(benchmark::State& state) {
  const Fixture& f = FixtureFor(static_cast<uint32_t>(state.range(0)));
  ChopConfig chop;
  chop.num_segments = 100;
  chop.shape = ErTreeShape::kBalanced;
  auto plan = BuildChopPlan(f.document, chop);
  LAZYXML_CHECK(plan.ok());
  auto db = bench::BuildDatabase(plan.ValueOrDie().insertions,
                                 LogMode::kLazyDynamic);
  const size_t seg_len = std::string(kSegment).size();
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    auto r = db->InsertSegment(kSegment, f.insert_at);
    const auto t1 = std::chrono::steady_clock::now();
    LAZYXML_CHECK(r.ok());
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count());
    LAZYXML_CHECK(db->RemoveSegment(f.insert_at, seg_len).ok());  // undo
  }
  state.counters["elements"] = static_cast<double>(f.num_elements);
  state.counters["doc_MB"] =
      static_cast<double>(f.document.size()) / (1024.0 * 1024.0);
  state.SetLabel("LD");
}

void BM_Fig16_Traditional(benchmark::State& state) {
  const Fixture& f = FixtureFor(static_cast<uint32_t>(state.range(0)));
  auto idx = bench::BuildTraditionalIndex(f.document);
  const size_t seg_len = std::string(kSegment).size();
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    LAZYXML_CHECK(idx->InsertSegment(kSegment, f.insert_at).ok());
    const auto t1 = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count());
    LAZYXML_CHECK(idx->RemoveSegment(f.insert_at, seg_len).ok());  // undo
  }
  state.counters["elements"] = static_cast<double>(f.num_elements);
  state.counters["doc_MB"] =
      static_cast<double>(f.document.size()) / (1024.0 * 1024.0);
  state.SetLabel("traditional");
}

// Document sizes: ~9k .. ~290k elements (persons sweep).
const std::vector<std::vector<int64_t>> kSizes = {{250, 500, 1000, 2000,
                                                   4000, 8000}};

BENCHMARK(BM_Fig16_LazyDynamic)
    ->ArgsProduct(kSizes)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(20);
BENCHMARK(BM_Fig16_Traditional)
    ->ArgsProduct(kSizes)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);

}  // namespace
}  // namespace lazyxml

BENCHMARK_MAIN();
