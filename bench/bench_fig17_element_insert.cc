// Figure 17: per-element insertion time for the lazy approaches (LD, LS)
// against the PRIME labeling scheme, varying (a) the number of elements
// in the inserted segment, (b) the number of distinct tag names in it,
// and (c) — LD only — the number of segments already in the database.
//
// Reported time is *per element*: segment insertion time divided by the
// element count (exactly the paper's methodology), so curves are directly
// comparable with PRIME's per-element inserts.
//
// Paper shape to reproduce: LS <= LD << PRIME; per-element time falls
// with segment size (fixed cost amortized), rises with tag count (more
// path lists) and with segment count (gp renumbering); nested ER-trees
// slightly worse than balanced (longer paths).

#include <chrono>
#include <map>
#include <string>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "labeling/prime_labeling.h"

namespace lazyxml {
namespace {

// Fragment with `elements` elements over `tags` distinct tag names: a
// root plus a flat run of children cycling through the alphabet.
std::string MakeFragment(uint32_t elements, uint32_t tags) {
  std::string out = "<t0>";
  for (uint32_t i = 1; i < elements; ++i) {
    out += StringPrintf("<t%u></t%u>", i % tags, i % tags);
  }
  out += "</t0>";
  return out;
}

// Base database: `segments` segments, each holding every tag, chained
// (nested) or star-shaped (balanced). Same construction as Fig. 11.
std::vector<SegmentInsertion> BasePlan(uint32_t segments, uint32_t tags,
                                       ErTreeShape shape) {
  std::string body;
  for (uint32_t t = 0; t < tags; ++t) {
    body += StringPrintf("<t%u>x</t%u>", t, t);
  }
  std::vector<SegmentInsertion> plan;
  if (shape == ErTreeShape::kBalanced) {
    std::string top = "<seg>" + body;
    std::vector<uint64_t> holes;
    for (uint32_t i = 1; i < segments; ++i) {
      top += "<h>";
      holes.push_back(top.size());
      top += "</h>";
    }
    top += "</seg>";
    plan.push_back(SegmentInsertion{std::move(top), 0});
    uint64_t shift = 0;
    const std::string child = "<seg>" + body + "</seg>";
    for (uint64_t hole : holes) {
      plan.push_back(SegmentInsertion{child, hole + shift});
      shift += child.size();
    }
  } else {
    uint64_t gp = 0;
    for (uint32_t i = 0; i < segments; ++i) {
      std::string text = "<seg>" + body;
      uint64_t hole = 0;
      if (i + 1 < segments) {
        text += "<h>";
        hole = text.size();
        text += "</h>";
      }
      text += "</seg>";
      plan.push_back(SegmentInsertion{std::move(text), gp});
      gp += hole;
    }
  }
  return plan;
}

// Lazy side: insert the fragment right after the top segment's "<seg>",
// time it, undo, report time / element count.
void RunLazy(benchmark::State& state, LogMode mode, uint32_t elements,
             uint32_t tags, uint32_t segments, ErTreeShape shape) {
  const auto plan = BasePlan(segments, /*tags=*/8, shape);
  const std::string fragment = MakeFragment(elements, tags);
  auto db = bench::BuildDatabase(plan, mode);
  const uint64_t at = 5;  // just inside the top segment's root element
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    auto r = db->InsertSegment(fragment, at);
    const auto t1 = std::chrono::steady_clock::now();
    LAZYXML_CHECK(r.ok());
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count() /
                           elements);
    LAZYXML_CHECK(db->RemoveSegment(at, fragment.size()).ok());
  }
  state.counters["elements"] = elements;
  state.counters["tags"] = tags;
  state.counters["segments"] = segments;
  state.SetLabel(std::string(LogModeName(mode)) + "/" +
                 ErTreeShapeName(shape));
}

// PRIME side: same fragment inserted element-by-element into a labeled
// base document; K is the simultaneous-congruence group size.
void RunPrime(benchmark::State& state, uint32_t elements, uint32_t tags,
              uint32_t k) {
  const std::string fragment = MakeFragment(elements, tags);
  // Base document roughly matching the lazy base (100 segments x 8 tags).
  std::string base = "<root>";
  for (int i = 0; i < 100; ++i) {
    for (int t = 0; t < 8; ++t) base += StringPrintf("<t%d>x</t%d>", t, t);
  }
  base += "</root>";
  PrimeLabelingOptions opts;
  opts.group_size = k;
  for (auto _ : state) {
    PrimeLabeling pl(opts);
    LAZYXML_CHECK(pl.BuildFromDocument(base).ok());
    const auto t0 = std::chrono::steady_clock::now();
    auto r = pl.InsertFragment(fragment, /*parent=*/0, /*prev=*/0);
    const auto t1 = std::chrono::steady_clock::now();
    LAZYXML_CHECK(r.ok());
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count() /
                           elements);
  }
  state.counters["elements"] = elements;
  state.counters["tags"] = tags;
  state.counters["K"] = k;
  state.SetLabel("PRIME(K=" + std::to_string(k) + ")");
}

// --- (a) vary the number of elements in the inserted segment -------------

void BM_Fig17a_LD(benchmark::State& state) {
  RunLazy(state, LogMode::kLazyDynamic,
          static_cast<uint32_t>(state.range(0)), 8, 100,
          state.range(1) == 0 ? ErTreeShape::kBalanced
                              : ErTreeShape::kNested);
}
void BM_Fig17a_LS(benchmark::State& state) {
  RunLazy(state, LogMode::kLazyStatic,
          static_cast<uint32_t>(state.range(0)), 8, 100,
          state.range(1) == 0 ? ErTreeShape::kBalanced
                              : ErTreeShape::kNested);
}
void BM_Fig17a_PRIME(benchmark::State& state) {
  RunPrime(state, static_cast<uint32_t>(state.range(0)), 8,
           static_cast<uint32_t>(state.range(1)));
}

BENCHMARK(BM_Fig17a_LD)
    ->ArgsProduct({{10, 50, 100, 500, 1000}, {0, 1}})
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(30);
BENCHMARK(BM_Fig17a_LS)
    ->ArgsProduct({{10, 50, 100, 500, 1000}, {0, 1}})
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(30);
BENCHMARK(BM_Fig17a_PRIME)
    ->ArgsProduct({{10, 50, 100, 500, 1000}, {6, 24}})
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(3);

// --- (b) vary the number of distinct tag names ---------------------------

void BM_Fig17b_LD(benchmark::State& state) {
  RunLazy(state, LogMode::kLazyDynamic, 200,
          static_cast<uint32_t>(state.range(0)), 100,
          state.range(1) == 0 ? ErTreeShape::kBalanced
                              : ErTreeShape::kNested);
}
void BM_Fig17b_LS(benchmark::State& state) {
  RunLazy(state, LogMode::kLazyStatic, 200,
          static_cast<uint32_t>(state.range(0)), 100,
          state.range(1) == 0 ? ErTreeShape::kBalanced
                              : ErTreeShape::kNested);
}
void BM_Fig17b_PRIME(benchmark::State& state) {
  RunPrime(state, 200, static_cast<uint32_t>(state.range(0)), 6);
}

BENCHMARK(BM_Fig17b_LD)
    ->ArgsProduct({{1, 5, 10, 20, 40}, {0, 1}})
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(30);
BENCHMARK(BM_Fig17b_LS)
    ->ArgsProduct({{1, 5, 10, 20, 40}, {0, 1}})
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(30);
BENCHMARK(BM_Fig17b_PRIME)
    ->ArgsProduct({{1, 5, 10, 20, 40}})
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(3);

// --- (c) LD insert time vs number of segments ----------------------------

void BM_Fig17c_LD(benchmark::State& state) {
  RunLazy(state, LogMode::kLazyDynamic, 100, 8,
          static_cast<uint32_t>(state.range(0)),
          state.range(1) == 0 ? ErTreeShape::kBalanced
                              : ErTreeShape::kNested);
}

BENCHMARK(BM_Fig17c_LD)
    ->ArgsProduct({{50, 100, 150, 200, 250, 300}, {0, 1}})
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(30);

}  // namespace
}  // namespace lazyxml

BENCHMARK_MAIN();
