// Label-storage study (extension): quantifies §1/§2's motivation — any
// immutable labeling needs Ω(N)-bit labels [4], while the lazy scheme
// keeps constant-size (sid, start, end, level) records. Series:
//  * interval/lazy: bytes per element of the positional record (constant);
//  * ORDPATH: varint-encoded label bytes per element, before and after a
//    hot-spot insertion storm (carets stretch labels);
//  * PRIME: bignum label bytes per element (products along root paths).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "labeling/ordpath.h"
#include "labeling/prime_labeling.h"
#include "xmlgen/synthetic_generator.h"

namespace lazyxml {
namespace {

std::string DocFor(int64_t elements) {
  SyntheticConfig cfg;
  cfg.target_elements = static_cast<uint64_t>(elements);
  cfg.seed = 21;
  cfg.max_depth = 10;
  return SyntheticGenerator(cfg).Generate().ValueOrDie();
}

void BM_LabelBytes_Interval(benchmark::State& state) {
  const std::string doc = DocFor(state.range(0));
  std::unique_ptr<LazyDatabase> db;
  for (auto _ : state) {
    db = std::make_unique<LazyDatabase>();
    LAZYXML_CHECK(db->InsertSegment(doc, 0).ok());
    benchmark::DoNotOptimize(db.get());
  }
  const auto stats = db->Stats();
  // (sid, start) key + (end, level) value per record.
  state.counters["bytes_per_elem"] =
      static_cast<double>(sizeof(SegmentId) + 2 * sizeof(uint64_t) +
                          sizeof(uint32_t));
  state.counters["elements"] = static_cast<double>(stats.num_elements);
  state.SetLabel("interval(lazy)");
}

void BM_LabelBytes_OrdPath(benchmark::State& state) {
  const std::string doc = DocFor(state.range(0));
  const bool churn = state.range(1) != 0;
  std::unique_ptr<OrdPathLabeling> lab;
  for (auto _ : state) {
    lab = std::make_unique<OrdPathLabeling>();
    LAZYXML_CHECK(lab->BuildFromDocument(doc).ok());
    if (churn) {
      // Hot spot: 200 inserts squeezed into the same sibling gap — every
      // bisection of an exhausted gap spills into carets, stretching the
      // labels (the update-cost/label-size tax of immutable schemes).
      auto kids = lab->ChildrenOf(0).ValueOrDie();
      LAZYXML_CHECK(!kids.empty());
      const OrdPathLabeling::NodeId left = kids[0];
      OrdPathLabeling::NodeId right;
      if (kids.size() >= 2) {
        right = kids[1];
      } else {
        auto anchor = lab->InsertElement("anchor", 0, left,
                                         OrdPathLabeling::kNoNode);
        LAZYXML_CHECK(anchor.ok());
        right = anchor.ValueOrDie();
      }
      for (int i = 0; i < 200; ++i) {
        auto r = lab->InsertElement("hot", 0, left, right);
        LAZYXML_CHECK(r.ok());
        right = r.ValueOrDie();
      }
    }
    benchmark::DoNotOptimize(lab.get());
  }
  state.counters["bytes_per_elem"] =
      static_cast<double>(lab->TotalLabelBytes()) /
      static_cast<double>(lab->num_nodes());
  state.counters["max_components"] =
      static_cast<double>(lab->MaxLabelComponents());
  state.counters["elements"] = static_cast<double>(lab->num_nodes());
  state.SetLabel(churn ? "ordpath+hotspot" : "ordpath");
}

void BM_LabelBytes_Prime(benchmark::State& state) {
  const std::string doc = DocFor(state.range(0));
  std::unique_ptr<PrimeLabeling> lab;
  for (auto _ : state) {
    lab = std::make_unique<PrimeLabeling>();
    LAZYXML_CHECK(lab->BuildFromDocument(doc).ok());
    benchmark::DoNotOptimize(lab.get());
  }
  state.counters["bytes_per_elem"] =
      static_cast<double>(lab->MemoryBytes()) /
      static_cast<double>(lab->num_nodes());
  state.counters["elements"] = static_cast<double>(lab->num_nodes());
  state.SetLabel("prime");
}

BENCHMARK(BM_LabelBytes_Interval)
    ->Args({1000})
    ->Args({10000})
    ->Args({50000})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LabelBytes_OrdPath)
    ->ArgsProduct({{1000, 10000, 50000}, {0, 1}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LabelBytes_Prime)
    ->Args({1000})
    ->Args({10000})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lazyxml

BENCHMARK_MAIN();
