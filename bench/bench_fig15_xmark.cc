// Figures 14 and 15: the XMark query table (Q1-Q5 XPath expressions and
// result cardinalities) and per-query elapsed time for LS, LD and STD over
// an XMark-style document chopped into 100 balanced segments.
//
// Paper shape to reproduce: for all five queries LD beats STD and LS is
// the slowest (it pays the deferred sorting/building at query time). The
// paper's document is 100 MB / ~3M elements on 2005 hardware; scale here
// defaults to ~per-machine-minute size and is overridable:
//   LAZYXML_XMARK_PERSONS=25000 ./bench_fig15_xmark

#include <chrono>
#include <cstdlib>
#include <memory>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "xmlgen/chopper.h"
#include "xmlgen/xmark_generator.h"

namespace lazyxml {
namespace fig15 {

struct XMarkQuery {
  const char* id;
  const char* anc;
  const char* desc;
};
constexpr XMarkQuery kQueries[] = {
    {"Q1", "person", "phone"},   {"Q2", "profile", "interest"},
    {"Q3", "watches", "watch"},  {"Q4", "person", "watch"},
    {"Q5", "person", "interest"}};

uint32_t NumPersons() {
  const char* env = std::getenv("LAZYXML_XMARK_PERSONS");
  return env != nullptr ? static_cast<uint32_t>(std::atoi(env)) : 8000;
}

struct Fixture {
  ChopPlan plan;
  std::string document;
  std::unique_ptr<LazyDatabase> ld;
  std::unique_ptr<RelabelingIndex> traditional;
};

// Built once; the paper's "slightly modified to increase cross-segment
// joins" dataset is approximated with per-person multiplicities high
// enough that person subtrees span segment boundaries when chopped.
const Fixture& GetFixture() {
  static Fixture* f = [] {
    auto* fx = new Fixture();
    XMarkConfig cfg;
    cfg.num_persons = NumPersons();
    cfg.num_items = cfg.num_persons / 5;
    cfg.num_open_auctions = cfg.num_persons / 4;
    cfg.num_closed_auctions = cfg.num_persons / 8;
    cfg.profile_probability = 1.0;
    cfg.watches_probability = 1.0;
    cfg.min_phones = 1;
    cfg.max_phones = 4;
    cfg.min_interests = 1;
    cfg.max_interests = 6;
    cfg.min_watches = 1;
    cfg.max_watches = 8;
    auto doc = XMarkGenerator(cfg).Generate();
    LAZYXML_CHECK(doc.ok());
    fx->document = std::move(doc).ValueOrDie();
    ChopConfig chop;
    chop.num_segments = 100;
    chop.shape = ErTreeShape::kBalanced;
    auto plan = BuildChopPlan(fx->document, chop);
    LAZYXML_CHECK(plan.ok());
    fx->plan = std::move(plan).ValueOrDie();
    fx->ld = bench::BuildDatabase(fx->plan.insertions,
                                  LogMode::kLazyDynamic);
    fx->traditional = bench::BuildTraditionalIndex(fx->document);
    return fx;
  }();
  return *f;
}

const XMarkQuery& QueryFor(const benchmark::State& state) {
  return kQueries[state.range(0)];
}

void Annotate(benchmark::State& state, const XMarkQuery& q, size_t pairs) {
  state.counters["cardinality"] = static_cast<double>(pairs);
  state.SetLabel(std::string(q.id) + ":" + q.anc + "//" + q.desc);
}

void BM_Fig15_LD(benchmark::State& state) {
  const Fixture& f = GetFixture();
  const XMarkQuery& q = QueryFor(state);
  size_t pairs = 0;
  for (auto _ : state) {
    pairs = bench::RunLazyQuery(f.ld.get(), q.anc, q.desc);
    benchmark::DoNotOptimize(pairs);
  }
  Annotate(state, q, pairs);
}

void BM_Fig15_LS(benchmark::State& state) {
  const Fixture& f = GetFixture();
  const XMarkQuery& q = QueryFor(state);
  size_t pairs = 0;
  for (auto _ : state) {
    auto db = bench::BuildDatabase(f.plan.insertions, LogMode::kLazyStatic);
    const auto t0 = std::chrono::steady_clock::now();
    pairs = bench::RunLazyQuery(db.get(), q.anc, q.desc);
    const auto t1 = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count());
    benchmark::DoNotOptimize(pairs);
  }
  Annotate(state, q, pairs);
}

void BM_Fig15_STD(benchmark::State& state) {
  const Fixture& f = GetFixture();
  const XMarkQuery& q = QueryFor(state);
  size_t pairs = 0;
  for (auto _ : state) {
    pairs = bench::RunStdQuery(f.ld.get(), q.anc, q.desc);
    benchmark::DoNotOptimize(pairs);
  }
  Annotate(state, q, pairs);
}

// Extension beyond the paper: STD over a traditional eagerly-relabeled
// global index.
void BM_Fig15_STDIDX(benchmark::State& state) {
  const Fixture& f = GetFixture();
  const XMarkQuery& q = QueryFor(state);
  size_t pairs = 0;
  for (auto _ : state) {
    pairs = bench::RunStdIndexQuery(*f.traditional, q.anc, q.desc);
    benchmark::DoNotOptimize(pairs);
  }
  Annotate(state, q, pairs);
}

BENCHMARK(BM_Fig15_LD)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig15_LS)
    ->DenseRange(0, 4)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);
BENCHMARK(BM_Fig15_STD)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig15_STDIDX)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace fig15
}  // namespace lazyxml

// Prints the Fig. 14 table before the timing runs (to stderr, so
// --benchmark_format=json output on stdout stays machine-parseable).
int main(int argc, char** argv) {
  const auto& f = lazyxml::fig15::GetFixture();
  std::fprintf(stderr, "Figure 14 — XMark queries (document: %zu bytes, %zu "
              "segments):\n",
              f.document.size(), f.plan.insertions.size());
  std::fprintf(stderr, "%-6s %-22s %s\n", "Query", "XPath expression",
              "Result cardinality");
  for (const auto& q : lazyxml::fig15::kQueries) {
    const size_t n =
        lazyxml::bench::RunStdIndexQuery(*f.traditional, q.anc, q.desc);
    std::fprintf(stderr, "%-6s %-22s %zu\n", q.id,
                (std::string(q.anc) + "//" + q.desc).c_str(), n);
  }
  std::fprintf(stderr, "\n");
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
