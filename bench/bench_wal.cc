// WAL subsystem benchmark: logical-update throughput through the durable
// facade under each sync policy, plus the recovery cost of replaying the
// log those updates leave behind.
//
// The interesting comparison is the gap between kNever (in-memory apply +
// buffered append: the cost of journaling itself), kBatchBytes (amortized
// fdatasync), and kEveryRecord (one fdatasync per acknowledged update —
// the durability ceiling). Each timed iteration is one insert/remove pair,
// i.e. two WAL records.

#include <chrono>
#include <string>

#include <benchmark/benchmark.h>

#include "bench/metrics_hook.h"
#include "common/file_io.h"
#include "common/logging.h"
#include "storage/durable_database.h"
#include "storage/recovery.h"

namespace lazyxml {
namespace {

// One registration-form-sized segment (paper §1 scale).
const char* kSegment =
    "<person><name>New Person</name>"
    "<emailaddress>new@example.net</emailaddress>"
    "<phone>+1 (555) 0100000</phone>"
    "<address><street>1 Lazy St</street><city>Baltimore</city>"
    "<zipcode>21201</zipcode></address></person>";

std::string FreshBenchDir(const std::string& name) {
  const std::string dir = "/tmp/lazyxml_bench_wal_" + name;
  LAZYXML_CHECK(CreateDirIfMissing(dir).ok());
  auto names = ListDirectory(dir);
  LAZYXML_CHECK(names.ok());
  for (const auto& n : names.ValueOrDie()) {
    LAZYXML_CHECK(RemoveFileIfExists(dir + "/" + n).ok());
  }
  return dir;
}

void RunUpdateThroughput(benchmark::State& state, WalSyncPolicy policy) {
  const std::string dir = FreshBenchDir(WalSyncPolicyName(policy));
  DurableOptions options;
  options.wal.sync_policy = policy;
  auto db = DurableLazyDatabase::Open(dir, options).ValueOrDie();
  LAZYXML_CHECK(db->InsertSegment("<doc></doc>", 0).ok());
  const uint64_t hole = 5;  // between <doc> and </doc>
  const uint64_t seg_len = std::string(kSegment).size();
  for (auto _ : state) {
    LAZYXML_CHECK(db->InsertSegment(kSegment, hole).ok());
    LAZYXML_CHECK(db->RemoveSegment(hole, seg_len).ok());
  }
  // Each iteration acknowledges two logical updates.
  state.SetItemsProcessed(state.iterations() * 2);
  state.counters["wal_MB"] =
      static_cast<double>(db->wal().current_segment_bytes()) /
      (1024.0 * 1024.0);
  state.SetLabel(WalSyncPolicyName(policy));
}

void BM_WalUpdate_Never(benchmark::State& state) {
  RunUpdateThroughput(state, WalSyncPolicy::kNever);
}
void BM_WalUpdate_BatchBytes(benchmark::State& state) {
  RunUpdateThroughput(state, WalSyncPolicy::kBatchBytes);
}
void BM_WalUpdate_EveryRecord(benchmark::State& state) {
  RunUpdateThroughput(state, WalSyncPolicy::kEveryRecord);
}

BENCHMARK(BM_WalUpdate_Never)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WalUpdate_BatchBytes)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WalUpdate_EveryRecord)->Unit(benchmark::kMicrosecond);

// Recovery: replay a WAL of `state.range(0)` update records (no snapshot,
// worst case) into a fresh database.
void BM_WalRecovery(benchmark::State& state) {
  const std::string dir = FreshBenchDir("recovery");
  const int updates = static_cast<int>(state.range(0));
  {
    DurableOptions options;
    options.wal.sync_policy = WalSyncPolicy::kNever;
    auto db = DurableLazyDatabase::Open(dir, options).ValueOrDie();
    LAZYXML_CHECK(db->InsertSegment("<doc></doc>", 0).ok());
    const uint64_t hole = 5;
    const uint64_t seg_len = std::string(kSegment).size();
    for (int i = 1; i < updates; i += 2) {
      LAZYXML_CHECK(db->InsertSegment(kSegment, hole).ok());
      LAZYXML_CHECK(db->RemoveSegment(hole, seg_len).ok());
    }
  }
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    auto recovered = RecoverDatabase(dir, {});
    const auto t1 = std::chrono::steady_clock::now();
    LAZYXML_CHECK(recovered.ok());
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count());
    benchmark::DoNotOptimize(recovered.ValueOrDie().db);
  }
  state.counters["records"] =
      static_cast<double>(updates);
}

BENCHMARK(BM_WalRecovery)
    ->Arg(1000)
    ->Arg(10000)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lazyxml

BENCHMARK_MAIN();
