// Succinct frozen element index (core/compact_index.h): space and join
// throughput of the compact columnar representation against the B+-tree
// it re-packs, on an XMark document chopped into segments.
//
// Three series (docs/COMPACT_INDEX.md quotes these in EXPERIMENTS.md):
//   * BM_FreezeBuild      — one-time Encode cost of Freeze() and the
//                           compression ratio (tree bytes / compact bytes;
//                           the ISSUE 8 acceptance bar is >= 3x);
//   * BM_XMarkJoin/<rep>  — the Fig. 14/15 XMark join set under tree
//                           scans (rep=tree) vs block cursors
//                           (rep=compact), same shared scan-cache budget,
//                           pair counts asserted identical;
//   * BM_StraddleSkips    — a low-cross ancestor//descendant pair where
//                           most blocks provably hold no straddler: the
//                           skip-header test prunes them undecoded
//                           (blocks_skipped counter is the evidence).
//
//   LAZYXML_XMARK_PERSONS=25000 ./bench_compact_index   # bigger doc

#include <cstdlib>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/compact_index.h"
#include "xmlgen/chopper.h"
#include "xmlgen/xmark_generator.h"

namespace lazyxml {

bool g_quick = false;

namespace {

uint32_t NumPersons() {
  const char* env = std::getenv("LAZYXML_XMARK_PERSONS");
  if (env != nullptr) return static_cast<uint32_t>(std::atoi(env));
  return g_quick ? 1000 : 8000;
}

struct Fixture {
  std::unique_ptr<LazyDatabase> db;
  size_t tree_bytes = 0;
  size_t compact_bytes = 0;
};

const Fixture& GetFixture() {
  static Fixture* f = [] {
    auto* fx = new Fixture();
    XMarkConfig cfg;
    cfg.num_persons = NumPersons();
    cfg.num_items = cfg.num_persons / 5;
    cfg.num_open_auctions = cfg.num_persons / 4;
    cfg.profile_probability = 1.0;
    cfg.watches_probability = 1.0;
    cfg.min_phones = 1;
    cfg.max_phones = 4;
    cfg.min_interests = 1;
    cfg.max_interests = 6;
    cfg.min_watches = 1;
    cfg.max_watches = 8;
    auto doc = XMarkGenerator(cfg).Generate();
    LAZYXML_CHECK(doc.ok());
    ChopConfig chop;
    chop.num_segments = 100;
    chop.shape = ErTreeShape::kBalanced;
    auto plan = BuildChopPlan(doc.ValueOrDie(), chop);
    LAZYXML_CHECK(plan.ok());
    fx->db = bench::BuildDatabase(plan.ValueOrDie().insertions,
                                  LogMode::kLazyDynamic);
    fx->db->Freeze();
    fx->tree_bytes = fx->db->element_index().MemoryBytes();
    auto compact = CompactElementIndex::Build(fx->db->element_index());
    LAZYXML_CHECK(compact.ok());
    fx->compact_bytes = compact.ValueOrDie()->MemoryBytes();
    return fx;
  }();
  return *f;
}

// One-time build cost of the compact index (what Freeze() adds when
// QueryOptions::use_compact_index is set), plus the space story.
void BM_FreezeBuild(benchmark::State& state) {
  const Fixture& f = GetFixture();
  const ElementIndex& index = f.db->element_index();
  size_t compact_bytes = 0;
  for (auto _ : state) {
    auto compact = CompactElementIndex::Build(index);
    LAZYXML_CHECK(compact.ok());
    compact_bytes = compact.ValueOrDie()->MemoryBytes();
    benchmark::DoNotOptimize(compact_bytes);
  }
  state.counters["records"] = static_cast<double>(index.size());
  state.counters["tree_bytes"] = static_cast<double>(f.tree_bytes);
  state.counters["compact_bytes"] = static_cast<double>(compact_bytes);
  state.counters["compression_ratio"] =
      static_cast<double>(f.tree_bytes) / static_cast<double>(compact_bytes);
  state.counters["tree_bytes_per_record"] =
      static_cast<double>(f.tree_bytes) / static_cast<double>(index.size());
  state.counters["compact_bytes_per_record"] =
      static_cast<double>(compact_bytes) / static_cast<double>(index.size());
}

// The XMark join set under both representations at the same cache
// budget. arg: 0 = tree scans, 1 = compact block cursors.
void BM_XMarkJoin(benchmark::State& state) {
  const Fixture& f = GetFixture();
  const bool use_compact = state.range(0) == 1;
  QueryOptions q;
  q.cache_bytes = 8u << 20;
  q.use_compact_index = use_compact;
  f.db->SetQueryOptions(q);

  static size_t tree_pairs = 0;  // representation-identity oracle
  size_t pairs = 0;
  uint64_t skipped = 0;
  uint64_t fetched = 0;
  for (auto _ : state) {
    pairs = 0;
    skipped = 0;
    fetched = 0;
    for (const auto& [anc, desc] :
         {std::pair{"person", "phone"}, {"profile", "interest"},
          {"watches", "watch"}, {"person", "watch"},
          {"person", "interest"}}) {
      auto r = f.db->JoinByName(anc, desc);
      LAZYXML_CHECK(r.ok());
      pairs += r.ValueOrDie().pairs.size();
      skipped += r.ValueOrDie().stats.blocks_skipped;
      fetched += r.ValueOrDie().stats.elements_fetched;
    }
    benchmark::DoNotOptimize(pairs);
  }
  if (!use_compact) {
    tree_pairs = pairs;
  } else if (tree_pairs != 0) {
    LAZYXML_CHECK(pairs == tree_pairs);  // byte-identical contract
  }
  state.counters["pairs"] = static_cast<double>(pairs);
  state.counters["blocks_skipped"] = static_cast<double>(skipped);
  state.counters["elements_fetched"] = static_cast<double>(fetched);
  state.SetLabel(use_compact ? "compact" : "tree");
}

// Straddle skipping needs multi-block ancestor lists whose spans exclude
// the segment's few splice positions — a low-cross workload with dense
// per-segment lists, which the join-workload generator produces directly
// (XMark's chopped lists are mostly single-block at bench scale). With
// no cache every round pays the straddle filter, so the skip headers are
// on the critical path: tree filters record-by-record, compact prunes
// whole blocks undecoded.
void BM_StraddleSkips(benchmark::State& state) {
  // One database per cross-percentage, built lazily and kept for the
  // paired tree/compact runs.
  static std::map<int, LazyDatabase*> dbs;
  const int cross_pct = static_cast<int>(state.range(1));
  LazyDatabase*& db = dbs[cross_pct];
  if (db == nullptr) {
    JoinWorkloadConfig cfg;
    cfg.num_segments = 8;
    cfg.shape = ErTreeShape::kBalanced;
    cfg.total_joins = g_quick ? 2000 : 20000;
    cfg.cross_fraction = cross_pct / 100.0;
    cfg.num_a_elements = g_quick ? 20000 : 200000;
    cfg.num_d_elements = g_quick ? 20000 : 200000;
    auto plan = BuildJoinWorkload(cfg);
    LAZYXML_CHECK(plan.ok());
    auto built = bench::BuildDatabase(plan.ValueOrDie().insertions,
                                      LogMode::kLazyDynamic);
    built->Freeze();
    db = built.release();
  }
  const bool use_compact = state.range(0) == 1;
  QueryOptions q;
  q.cache_bytes = 0;  // no cache: every round pays the straddle filter
  q.use_compact_index = use_compact;
  db->SetQueryOptions(q);

  static std::map<int, size_t> tree_pairs;  // per-cross identity oracle
  size_t pairs = 0;
  uint64_t skipped = 0;
  for (auto _ : state) {
    auto r = db->JoinByName("A", "D");
    LAZYXML_CHECK(r.ok());
    pairs = r.ValueOrDie().pairs.size();
    skipped = r.ValueOrDie().stats.blocks_skipped;
    benchmark::DoNotOptimize(pairs);
  }
  if (!use_compact) {
    tree_pairs[cross_pct] = pairs;
  } else {
    if (tree_pairs[cross_pct] != 0) {
      LAZYXML_CHECK(pairs == tree_pairs[cross_pct]);
    }
    // At the lowest cross share most blocks provably hold no straddler;
    // the headers must actually prune there.
    if (cross_pct <= 5) LAZYXML_CHECK(skipped > 0);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
  state.counters["blocks_skipped"] = static_cast<double>(skipped);
  state.SetLabel(std::string(use_compact ? "compact" : "tree") + "/cross=" +
                 std::to_string(cross_pct) + "%");
}

// Raw varint decode throughput: the scalar loop (arg0 0) vs the SWAR
// fast path (arg0 1) behind compactenc::GetVarint. The counters give
// the decode-µs delta the ISSUE 9 satellite asks for (values asserted
// equal first). Two stream shapes: arg1 0 = every encoded stream of the
// XMark compact index (1-byte varints dominate — the early exit keeps
// SWAR at parity); arg1 1 = synthetic wide values spanning 1-8 encoded
// bytes (where the 8-byte folds win outright).
void BM_VarintDecode(benchmark::State& state) {
  const bool wide = state.range(1) == 1;
  static std::shared_ptr<const CompactElementIndex> compact = [] {
    auto built = CompactElementIndex::Build(GetFixture().db->element_index());
    LAZYXML_CHECK(built.ok());
    return built.ValueOrDie();
  }();
  static const std::vector<uint8_t> wide_stream = [] {
    // xorshift so the byte-length mix (1..8) is deterministic.
    std::vector<uint8_t> bytes;
    uint64_t x = 0x9e3779b97f4a7c15ull;
    for (size_t i = 0; i < 200000; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      compactenc::PutVarint(&bytes, x >> (8 + x % 40));
    }
    return bytes;
  }();
  std::vector<std::span<const uint8_t>> streams;
  uint64_t total_varints = 0;
  if (wide) {
    streams.push_back(wide_stream);
  } else {
    compact->ForEachList([&](TagId, SegmentId, const CompactTagScan& scan) {
      if (!scan.bytes().empty()) streams.push_back(scan.bytes());
      return true;
    });
  }
  {
    // Identity check: both decoders must read the same values from the
    // same byte positions.
    for (std::span<const uint8_t> s : streams) {
      const uint8_t* a = s.data();
      const uint8_t* b = s.data();
      const uint8_t* end = s.data() + s.size();
      while (a < end) {
        uint64_t va = 0;
        uint64_t vb = 0;
        LAZYXML_CHECK(compactenc::GetVarint(&a, end, &va));
        LAZYXML_CHECK(compactenc::GetVarintScalar(&b, end, &vb));
        LAZYXML_CHECK(a == b && va == vb);
        ++total_varints;
      }
    }
  }
  const bool swar = state.range(0) == 1;
  uint64_t sink = 0;
  for (auto _ : state) {
    for (std::span<const uint8_t> s : streams) {
      const uint8_t* p = s.data();
      const uint8_t* end = s.data() + s.size();
      uint64_t v = 0;
      if (swar) {
        while (p < end && compactenc::GetVarint(&p, end, &v)) sink += v;
      } else {
        while (p < end && compactenc::GetVarintScalar(&p, end, &v)) sink += v;
      }
    }
    benchmark::DoNotOptimize(sink);
  }
  state.counters["varints"] = static_cast<double>(total_varints);
  state.counters["varints_per_s"] = benchmark::Counter(
      static_cast<double>(total_varints),
      benchmark::Counter::kIsIterationInvariantRate);
  state.SetLabel(std::string(swar ? "swar" : "scalar") + "/" +
                 (wide ? "wide" : "xmark"));
}

// Full block decode (headers + bounds checks + zigzag) through the
// dispatching GetVarint — the end-to-end path joins actually pay.
void BM_BlockDecode(benchmark::State& state) {
  auto built = CompactElementIndex::Build(GetFixture().db->element_index());
  LAZYXML_CHECK(built.ok());
  std::shared_ptr<const CompactElementIndex> compact = built.ValueOrDie();
  uint64_t records = 0;
  std::vector<LocalElement> out;
  for (auto _ : state) {
    records = 0;
    compact->ForEachList(
        [&](TagId, SegmentId, const CompactTagScan& scan) {
          out.clear();
          LAZYXML_CHECK(scan.DecodeAll(&out).ok());
          records += out.size();
          return true;
        });
    benchmark::DoNotOptimize(records);
  }
  state.counters["records"] = static_cast<double>(records);
  state.counters["records_per_s"] = benchmark::Counter(
      static_cast<double>(records),
      benchmark::Counter::kIsIterationInvariantRate);
}

BENCHMARK(BM_FreezeBuild)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VarintDecode)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BlockDecode)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_XMarkJoin)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StraddleSkips)
    ->Args({0, 5})
    ->Args({1, 5})
    ->Args({0, 20})
    ->Args({1, 20})
    ->Args({0, 60})
    ->Args({1, 60})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lazyxml

// Custom main: google-benchmark rejects flags it does not know, so the
// CI smoke mode's --quick is stripped (and applied) before Initialize.
int main(int argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") {
      lazyxml::g_quick = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
