// Succinct frozen element index (core/compact_index.h): space and join
// throughput of the compact columnar representation against the B+-tree
// it re-packs, on an XMark document chopped into segments.
//
// Three series (docs/COMPACT_INDEX.md quotes these in EXPERIMENTS.md):
//   * BM_FreezeBuild      — one-time Encode cost of Freeze() and the
//                           compression ratio (tree bytes / compact bytes;
//                           the ISSUE 8 acceptance bar is >= 3x);
//   * BM_XMarkJoin/<rep>  — the Fig. 14/15 XMark join set under tree
//                           scans (rep=tree) vs block cursors
//                           (rep=compact), same shared scan-cache budget,
//                           pair counts asserted identical;
//   * BM_StraddleSkips    — a low-cross ancestor//descendant pair where
//                           most blocks provably hold no straddler: the
//                           skip-header test prunes them undecoded
//                           (blocks_skipped counter is the evidence).
//
//   LAZYXML_XMARK_PERSONS=25000 ./bench_compact_index   # bigger doc

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/compact_index.h"
#include "xmlgen/chopper.h"
#include "xmlgen/xmark_generator.h"

namespace lazyxml {

bool g_quick = false;

namespace {

uint32_t NumPersons() {
  const char* env = std::getenv("LAZYXML_XMARK_PERSONS");
  if (env != nullptr) return static_cast<uint32_t>(std::atoi(env));
  return g_quick ? 1000 : 8000;
}

struct Fixture {
  std::unique_ptr<LazyDatabase> db;
  size_t tree_bytes = 0;
  size_t compact_bytes = 0;
};

const Fixture& GetFixture() {
  static Fixture* f = [] {
    auto* fx = new Fixture();
    XMarkConfig cfg;
    cfg.num_persons = NumPersons();
    cfg.num_items = cfg.num_persons / 5;
    cfg.num_open_auctions = cfg.num_persons / 4;
    cfg.profile_probability = 1.0;
    cfg.watches_probability = 1.0;
    cfg.min_phones = 1;
    cfg.max_phones = 4;
    cfg.min_interests = 1;
    cfg.max_interests = 6;
    cfg.min_watches = 1;
    cfg.max_watches = 8;
    auto doc = XMarkGenerator(cfg).Generate();
    LAZYXML_CHECK(doc.ok());
    ChopConfig chop;
    chop.num_segments = 100;
    chop.shape = ErTreeShape::kBalanced;
    auto plan = BuildChopPlan(doc.ValueOrDie(), chop);
    LAZYXML_CHECK(plan.ok());
    fx->db = bench::BuildDatabase(plan.ValueOrDie().insertions,
                                  LogMode::kLazyDynamic);
    fx->db->Freeze();
    fx->tree_bytes = fx->db->element_index().MemoryBytes();
    auto compact = CompactElementIndex::Build(fx->db->element_index());
    LAZYXML_CHECK(compact.ok());
    fx->compact_bytes = compact.ValueOrDie()->MemoryBytes();
    return fx;
  }();
  return *f;
}

// One-time build cost of the compact index (what Freeze() adds when
// QueryOptions::use_compact_index is set), plus the space story.
void BM_FreezeBuild(benchmark::State& state) {
  const Fixture& f = GetFixture();
  const ElementIndex& index = f.db->element_index();
  size_t compact_bytes = 0;
  for (auto _ : state) {
    auto compact = CompactElementIndex::Build(index);
    LAZYXML_CHECK(compact.ok());
    compact_bytes = compact.ValueOrDie()->MemoryBytes();
    benchmark::DoNotOptimize(compact_bytes);
  }
  state.counters["records"] = static_cast<double>(index.size());
  state.counters["tree_bytes"] = static_cast<double>(f.tree_bytes);
  state.counters["compact_bytes"] = static_cast<double>(compact_bytes);
  state.counters["compression_ratio"] =
      static_cast<double>(f.tree_bytes) / static_cast<double>(compact_bytes);
  state.counters["tree_bytes_per_record"] =
      static_cast<double>(f.tree_bytes) / static_cast<double>(index.size());
  state.counters["compact_bytes_per_record"] =
      static_cast<double>(compact_bytes) / static_cast<double>(index.size());
}

// The XMark join set under both representations at the same cache
// budget. arg: 0 = tree scans, 1 = compact block cursors.
void BM_XMarkJoin(benchmark::State& state) {
  const Fixture& f = GetFixture();
  const bool use_compact = state.range(0) == 1;
  QueryOptions q;
  q.cache_bytes = 8u << 20;
  q.use_compact_index = use_compact;
  f.db->SetQueryOptions(q);

  static size_t tree_pairs = 0;  // representation-identity oracle
  size_t pairs = 0;
  uint64_t skipped = 0;
  uint64_t fetched = 0;
  for (auto _ : state) {
    pairs = 0;
    skipped = 0;
    fetched = 0;
    for (const auto& [anc, desc] :
         {std::pair{"person", "phone"}, {"profile", "interest"},
          {"watches", "watch"}, {"person", "watch"},
          {"person", "interest"}}) {
      auto r = f.db->JoinByName(anc, desc);
      LAZYXML_CHECK(r.ok());
      pairs += r.ValueOrDie().pairs.size();
      skipped += r.ValueOrDie().stats.blocks_skipped;
      fetched += r.ValueOrDie().stats.elements_fetched;
    }
    benchmark::DoNotOptimize(pairs);
  }
  if (!use_compact) {
    tree_pairs = pairs;
  } else if (tree_pairs != 0) {
    LAZYXML_CHECK(pairs == tree_pairs);  // byte-identical contract
  }
  state.counters["pairs"] = static_cast<double>(pairs);
  state.counters["blocks_skipped"] = static_cast<double>(skipped);
  state.counters["elements_fetched"] = static_cast<double>(fetched);
  state.SetLabel(use_compact ? "compact" : "tree");
}

// Straddle skipping needs multi-block ancestor lists whose spans exclude
// the segment's few splice positions — a low-cross workload with dense
// per-segment lists, which the join-workload generator produces directly
// (XMark's chopped lists are mostly single-block at bench scale). With
// no cache every round pays the straddle filter, so the skip headers are
// on the critical path: tree filters record-by-record, compact prunes
// whole blocks undecoded.
void BM_StraddleSkips(benchmark::State& state) {
  // One database per cross-percentage, built lazily and kept for the
  // paired tree/compact runs.
  static std::map<int, LazyDatabase*> dbs;
  const int cross_pct = static_cast<int>(state.range(1));
  LazyDatabase*& db = dbs[cross_pct];
  if (db == nullptr) {
    JoinWorkloadConfig cfg;
    cfg.num_segments = 8;
    cfg.shape = ErTreeShape::kBalanced;
    cfg.total_joins = g_quick ? 2000 : 20000;
    cfg.cross_fraction = cross_pct / 100.0;
    cfg.num_a_elements = g_quick ? 20000 : 200000;
    cfg.num_d_elements = g_quick ? 20000 : 200000;
    auto plan = BuildJoinWorkload(cfg);
    LAZYXML_CHECK(plan.ok());
    auto built = bench::BuildDatabase(plan.ValueOrDie().insertions,
                                      LogMode::kLazyDynamic);
    built->Freeze();
    db = built.release();
  }
  const bool use_compact = state.range(0) == 1;
  QueryOptions q;
  q.cache_bytes = 0;  // no cache: every round pays the straddle filter
  q.use_compact_index = use_compact;
  db->SetQueryOptions(q);

  static std::map<int, size_t> tree_pairs;  // per-cross identity oracle
  size_t pairs = 0;
  uint64_t skipped = 0;
  for (auto _ : state) {
    auto r = db->JoinByName("A", "D");
    LAZYXML_CHECK(r.ok());
    pairs = r.ValueOrDie().pairs.size();
    skipped = r.ValueOrDie().stats.blocks_skipped;
    benchmark::DoNotOptimize(pairs);
  }
  if (!use_compact) {
    tree_pairs[cross_pct] = pairs;
  } else {
    if (tree_pairs[cross_pct] != 0) {
      LAZYXML_CHECK(pairs == tree_pairs[cross_pct]);
    }
    // At the lowest cross share most blocks provably hold no straddler;
    // the headers must actually prune there.
    if (cross_pct <= 5) LAZYXML_CHECK(skipped > 0);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
  state.counters["blocks_skipped"] = static_cast<double>(skipped);
  state.SetLabel(std::string(use_compact ? "compact" : "tree") + "/cross=" +
                 std::to_string(cross_pct) + "%");
}

BENCHMARK(BM_FreezeBuild)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_XMarkJoin)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StraddleSkips)
    ->Args({0, 5})
    ->Args({1, 5})
    ->Args({0, 20})
    ->Args({1, 20})
    ->Args({0, 60})
    ->Args({1, 60})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lazyxml

// Custom main: google-benchmark rejects flags it does not know, so the
// CI smoke mode's --quick is stripped (and applied) before Initialize.
int main(int argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") {
      lazyxml::g_quick = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
