#!/usr/bin/env bash
# Runs the benchmark binaries and merges their google-benchmark JSON
# reports into one file (default: BENCH_PR.json at the repo root), with
# a context block recording the host and the per-binary benchmark
# context. Intended for recording the numbers quoted in EXPERIMENTS.md.
#
# Usage:
#   bench/run_all.sh [bench_name ...]      # default: every built binary
#
# Environment knobs:
#   BUILD_DIR   build tree containing bench/ binaries   (default: build)
#   OUT         merged output path                      (default: BENCH_PR.json)
#   MIN_TIME    --benchmark_min_time per run, seconds   (default: 0.5)
#   FILTER      --benchmark_filter regex                (default: all)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
OUT="${OUT:-BENCH_PR.json}"
MIN_TIME="${MIN_TIME:-0.5}"
FILTER="${FILTER:-}"

if [[ $# -gt 0 ]]; then
  benches=("$@")
else
  benches=()
  for b in "$BUILD_DIR"/bench/bench_*; do
    [[ -x $b && -f $b ]] && benches+=("$(basename "$b")")
  done
fi
if [[ ${#benches[@]} -eq 0 ]]; then
  echo "no benchmark binaries under $BUILD_DIR/bench — build them first" >&2
  exit 1
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

for b in "${benches[@]}"; do
  bin="$BUILD_DIR/bench/$b"
  if [[ ! -x $bin ]]; then
    echo "== skipping $b (not built)" >&2
    continue
  fi
  echo "== $b" >&2
  args=(--benchmark_format=json --benchmark_min_time="$MIN_TIME")
  [[ -n $FILTER ]] && args+=(--benchmark_filter="$FILTER")
  # Each binary dumps its process-wide metrics registry at exit (see
  # bench/metrics_hook.h); the dump is embedded under "metrics" below.
  LAZYXML_METRICS_OUT="$tmpdir/$b.metrics.json" \
      "$bin" "${args[@]}" > "$tmpdir/$b.json"
done

python3 - "$OUT" "$tmpdir" <<'PY'
import glob, json, sys

out_path, tmpdir = sys.argv[1], sys.argv[2]
reports = sorted(p for p in glob.glob(f"{tmpdir}/*.json")
                 if not p.endswith(".metrics.json"))
merged = {"context": None, "benchmarks": [], "metrics": {}}
for path in reports:
    with open(path) as f:
        rep = json.load(f)
    name = path.rsplit("/", 1)[-1][: -len(".json")]
    if merged["context"] is None:
        merged["context"] = rep.get("context", {})
    for bm in rep.get("benchmarks", []):
        bm["binary"] = name
        merged["benchmarks"].append(bm)
    # The per-binary registry dump (obs::MetricsSnapshot::ExportJson):
    # counters/gauges/histograms of what the benchmarked run really did,
    # e.g. bench_wal's wal.fsync_us histogram and
    # wal.group_commit.commits_per_fsync gauge.
    try:
        with open(f"{tmpdir}/{name}.metrics.json") as f:
            merged["metrics"][name] = json.load(f)
    except (OSError, ValueError):
        pass
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}: {len(merged['benchmarks'])} benchmarks "
      f"from {len(reports)} binaries "
      f"({len(merged['metrics'])} metrics dumps)")
PY
