// Substrate micro-benchmarks: the in-memory B+-tree backing the element
// index and the SB-tree — insert/lookup/scan across node fan-outs
// (design-decision ablation #4 in DESIGN.md).

#include <benchmark/benchmark.h>

#include "bench/metrics_hook.h"
#include "btree/btree.h"
#include "common/random.h"

namespace lazyxml {
namespace {

BTreeOptions Caps(int64_t c) {
  BTreeOptions o;
  o.leaf_capacity = static_cast<size_t>(c);
  o.internal_capacity = static_cast<size_t>(c);
  return o;
}

void BM_BTreeInsertRandom(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    BTree<uint64_t, uint64_t> tree(Caps(state.range(1)));
    Random rng(7);
    for (int64_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(tree.InsertOrAssign(rng.Next(), i));
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_BTreeInsertSequential(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    BTree<uint64_t, uint64_t> tree(Caps(state.range(1)));
    for (int64_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(tree.Insert(i, i));
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_BTreeLookup(benchmark::State& state) {
  const int64_t n = state.range(0);
  BTree<uint64_t, uint64_t> tree(Caps(state.range(1)));
  Random rng(11);
  std::vector<uint64_t> keys;
  for (int64_t i = 0; i < n; ++i) {
    uint64_t k = rng.Next();
    if (tree.Insert(k, i).ok()) keys.push_back(k);
  }
  size_t cursor = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Find(keys[cursor]));
    cursor = (cursor + 1) % keys.size();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_BTreeScan(benchmark::State& state) {
  const int64_t n = state.range(0);
  BTree<uint64_t, uint64_t> tree(Caps(state.range(1)));
  for (int64_t i = 0; i < n; ++i) {
    benchmark::DoNotOptimize(tree.Insert(i, i));
  }
  for (auto _ : state) {
    uint64_t sum = 0;
    for (auto it = tree.Begin(); it.Valid(); it.Next()) sum += it.value();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_BTreeErase(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    BTree<uint64_t, uint64_t> tree(Caps(state.range(1)));
    for (int64_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(tree.Insert(i, i));
    }
    state.ResumeTiming();
    for (int64_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(tree.Erase(i));
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_BTreeBulkLoad(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<std::pair<uint64_t, uint64_t>> input;
  for (int64_t i = 0; i < n; ++i) {
    input.emplace_back(static_cast<uint64_t>(i), static_cast<uint64_t>(i));
  }
  for (auto _ : state) {
    BTree<uint64_t, uint64_t> tree(Caps(state.range(1)));
    benchmark::DoNotOptimize(tree.BuildFrom(input));
  }
  state.SetItemsProcessed(state.iterations() * n);
}

const std::vector<std::vector<int64_t>> kSweep = {{100000},
                                                  {8, 16, 64, 256}};

BENCHMARK(BM_BTreeInsertRandom)->ArgsProduct(kSweep);
BENCHMARK(BM_BTreeInsertSequential)->ArgsProduct(kSweep);
BENCHMARK(BM_BTreeLookup)->ArgsProduct(kSweep);
BENCHMARK(BM_BTreeScan)->ArgsProduct(kSweep);
BENCHMARK(BM_BTreeErase)->ArgsProduct(kSweep);
BENCHMARK(BM_BTreeBulkLoad)->ArgsProduct(kSweep);

}  // namespace
}  // namespace lazyxml

BENCHMARK_MAIN();
