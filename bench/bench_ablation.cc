// Ablations of the design choices DESIGN.md calls out:
//  1. Lazy-Join stack optimizations (Fig. 9) on vs off, across
//     cross-segment-join shares;
//  2. in-segment join algorithm: Stack-Tree-Desc vs Stack-Tree-Anc vs the
//     naive quadratic join over materialized lists (paper §4.2: "any
//     traditional structural join algorithm" slots in);
//  3. parse cost vs index cost of a segment insert (what portion of the
//     lazy insert is the unavoidable XML parse).

#include <map>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/path_query.h"
#include "xml/parser.h"

namespace lazyxml {
namespace {

constexpr uint64_t kJoins = 20000;
constexpr uint64_t kElems = 60000;

const JoinWorkloadPlan& PlanFor(int cross_pct, ErTreeShape shape) {
  static std::map<std::pair<int, int>, JoinWorkloadPlan> cache;
  auto key = std::make_pair(cross_pct, static_cast<int>(shape));
  auto it = cache.find(key);
  if (it == cache.end()) {
    JoinWorkloadConfig cfg;
    cfg.num_segments = 100;
    cfg.shape = shape;
    cfg.cross_fraction = cross_pct / 100.0;
    cfg.total_joins = kJoins;
    cfg.num_a_elements = kElems;
    cfg.num_d_elements = kElems;
    auto plan = BuildJoinWorkload(cfg);
    LAZYXML_CHECK(plan.ok());
    it = cache.emplace(key, std::move(plan).ValueOrDie()).first;
  }
  return it->second;
}

// --- 1. stack optimizations on/off ---------------------------------------

void BM_LazyJoinStackOpt(benchmark::State& state) {
  const int cross = static_cast<int>(state.range(0));
  const bool optimized = state.range(1) != 0;
  const auto& plan = PlanFor(cross, ErTreeShape::kBalanced);
  auto db = bench::BuildDatabase(plan.insertions, LogMode::kLazyDynamic);
  LazyJoinOptions opts;
  opts.optimize_stack = optimized;
  size_t pairs = 0;
  for (auto _ : state) {
    pairs = bench::RunLazyQuery(db.get(), "A", "D", opts);
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["cross_pct"] = cross;
  state.counters["pairs"] = static_cast<double>(pairs);
  state.SetLabel(optimized ? "optimized" : "unoptimized");
}

BENCHMARK(BM_LazyJoinStackOpt)
    ->ArgsProduct({{0, 20, 40, 60, 80, 100}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

// --- 2. in-segment / baseline join algorithm choice ----------------------

void BM_JoinAlgorithm(benchmark::State& state) {
  const auto& plan = PlanFor(20, ErTreeShape::kBalanced);
  auto idx = bench::BuildTraditionalIndex(bench::PlanToText(plan.insertions));
  auto a = idx->GetElements("A").ValueOrDie();
  auto d = idx->GetElements("D").ValueOrDie();
  size_t pairs = 0;
  for (auto _ : state) {
    switch (state.range(0)) {
      case 0:
        pairs = StackTreeDesc(a, d).size();
        break;
      case 1:
        pairs = StackTreeAnc(a, d).size();
        break;
      case 2: {
        // The naive oracle is quadratic; subsample to keep it feasible.
        std::vector<GlobalElement> a_small(a.begin(),
                                           a.begin() + a.size() / 20);
        std::vector<GlobalElement> d_small(d.begin(),
                                           d.begin() + d.size() / 20);
        pairs = NaiveStructuralJoin(a_small, d_small).size();
        break;
      }
    }
    benchmark::DoNotOptimize(pairs);
  }
  static const char* kNames[] = {"stack-tree-desc", "stack-tree-anc",
                                 "naive(1/20th)"};
  state.SetLabel(kNames[state.range(0)]);
  state.counters["pairs"] = static_cast<double>(pairs);
}

BENCHMARK(BM_JoinAlgorithm)
    ->DenseRange(0, 2)
    ->Unit(benchmark::kMillisecond);

// --- 3. parse vs index share of a lazy insert ----------------------------

void BM_SegmentParseOnly(benchmark::State& state) {
  std::string seg = "<seg>";
  for (int i = 0; i < 500; ++i) seg += "<a>text</a>";
  seg += "</seg>";
  for (auto _ : state) {
    TagDict dict;
    auto f = ParseFragment(seg, &dict);
    benchmark::DoNotOptimize(f.ok());
  }
  state.SetBytesProcessed(state.iterations() * seg.size());
}

void BM_SegmentFullInsert(benchmark::State& state) {
  std::string seg = "<seg>";
  for (int i = 0; i < 500; ++i) seg += "<a>text</a>";
  seg += "</seg>";
  LazyDatabase db;
  LAZYXML_CHECK(db.InsertSegment("<root><h></h></root>", 0).ok());
  for (auto _ : state) {
    auto r = db.InsertSegment(seg, 9);
    benchmark::DoNotOptimize(r.ok());
    LAZYXML_CHECK(r.ok());
    LAZYXML_CHECK(db.RemoveSegment(9, seg.size()).ok());
  }
  state.SetBytesProcessed(state.iterations() * seg.size());
}

BENCHMARK(BM_SegmentParseOnly)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SegmentFullInsert)->Unit(benchmark::kMicrosecond);

// --- 4. segment compaction (paper §5.3 collapse / §1 maintenance) --------
// Query cost at high segment counts, before vs after CompactAll().

void BM_QueryAfterCompaction(benchmark::State& state) {
  const bool compacted = state.range(1) != 0;
  JoinWorkloadConfig cfg;
  cfg.num_segments = static_cast<uint32_t>(state.range(0));
  cfg.shape = ErTreeShape::kBalanced;
  cfg.cross_fraction = 0.2;
  cfg.total_joins = kJoins;
  cfg.num_a_elements = kElems;
  cfg.num_d_elements = kElems;
  auto plan = BuildJoinWorkload(cfg);
  LAZYXML_CHECK(plan.ok());
  auto db = bench::BuildDatabase(plan.ValueOrDie().insertions,
                                 LogMode::kLazyDynamic);
  if (compacted) {
    LAZYXML_CHECK(db->CompactAll().ok());
  }
  size_t pairs = 0;
  for (auto _ : state) {
    pairs = bench::RunLazyQuery(db.get(), "A", "D");
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["segments"] = static_cast<double>(
      db->Stats().num_segments);
  state.counters["pairs"] = static_cast<double>(pairs);
  state.SetLabel(compacted ? "compacted" : "as-loaded");
}

BENCHMARK(BM_QueryAfterCompaction)
    ->ArgsProduct({{1000, 3000}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

// --- 5. path evaluation strategy: join pipeline vs holistic PathStack ----

void BM_PathStrategy(benchmark::State& state) {
  const auto& plan = PlanFor(20, ErTreeShape::kBalanced);
  auto db = bench::BuildDatabase(plan.insertions, LogMode::kLazyDynamic);
  // seg//A//D: a three-step path over the workload's tags.
  const char* expr = "seg//A//D";
  const bool holistic = state.range(0) != 0;
  size_t n = 0;
  for (auto _ : state) {
    if (holistic) {
      auto r = EvaluatePathHolistic(db.get(), expr);
      LAZYXML_CHECK(r.ok());
      n = r.ValueOrDie().size();
    } else {
      auto r = EvaluatePath(db.get(), expr);
      LAZYXML_CHECK(r.ok());
      n = r.ValueOrDie().elements.size();
    }
    benchmark::DoNotOptimize(n);
  }
  state.counters["matches"] = static_cast<double>(n);
  state.SetLabel(holistic ? "holistic(PathStack)" : "lazy-join pipeline");
}

BENCHMARK(BM_PathStrategy)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lazyxml

BENCHMARK_MAIN();
