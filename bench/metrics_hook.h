// Metrics export hook for the benchmark binaries: when the environment
// variable LAZYXML_METRICS_OUT names a path, the process-wide metrics
// registry is dumped there as JSON at exit. bench/run_all.sh sets the
// variable per binary and embeds each dump into BENCH_PR.json under
// "metrics", so every recorded benchmark run carries the registry view
// of what it actually did (WAL fsync latency histogram, batch counters,
// scan-cache traffic, ...) next to its timings.
//
// Included from bench_util.h so every figure binary gets the hook; the
// micro-bench binaries that skip bench_util.h include it directly.

#ifndef LAZYXML_BENCH_METRICS_HOOK_H_
#define LAZYXML_BENCH_METRICS_HOOK_H_

#include <cstdlib>
#include <fstream>

#include "obs/metrics.h"

namespace lazyxml {
namespace bench {
namespace internal {

/// Registers the atexit dump once per process (the inline variable below
/// has one instance program-wide no matter how many TUs include this).
struct MetricsDumpAtExit {
  MetricsDumpAtExit() {
    const char* path = std::getenv("LAZYXML_METRICS_OUT");
    if (path == nullptr || *path == '\0') return;
    static std::string out;  // atexit callbacks cannot capture
    out = path;
    std::atexit(+[] {
      std::ofstream f(out);
      if (f) f << obs::MetricsRegistry::Global().Snapshot().ExportJson()
               << "\n";
    });
  }
};

inline MetricsDumpAtExit metrics_dump_at_exit;

}  // namespace internal
}  // namespace bench
}  // namespace lazyxml

#endif  // LAZYXML_BENCH_METRICS_HOOK_H_
