// Path-summary (DataGuide) benchmark: what the tentpole buys on an
// XMark-style mix — summary build cost, per-update incremental
// maintenance overhead, and structural joins / XPath twigs with pruning
// on vs off, including a summary-provably-empty query answered with ZERO
// tag-list scans. The fixture asserts pruned output byte-identical to
// unpruned before any timing runs, so the numbers can't come from a
// wrong answer. Scale knob: LAZYXML_XMARK_PERSONS (default 4000).
//
// The process-wide metrics dump at exit (bench/metrics_hook.h, embedded
// into BENCH_PR.json by bench/run_all.sh) records what really happened:
// query.joins_pruned_total, query.segments_pruned_total,
// query.elements_skipped_total, summary.{nodes,bytes}, and the
// summary.build_us / summary.update_us histograms.

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "query/xpath.h"
#include "xmlgen/chopper.h"
#include "xmlgen/xmark_generator.h"

namespace lazyxml {
namespace pathsum {

/// A//D join queries over XMark tags. interest//person is the
/// empty-proof: both tags are populated, but no person ever nests below
/// an interest, which the summary proves in O(summary).
struct Query {
  const char* id;
  const char* anc;
  const char* desc;
  bool provably_empty;
};
constexpr Query kJoins[] = {
    {"J1", "person", "interest", false},
    {"J2", "watches", "watch", false},
    {"J3", "person", "phone", false},
    {"JE", "interest", "person", true},
};

constexpr const char* kTwigs[] = {
    "person[profile]//interest",
    "people/person/watches/watch",
    "site//profile/interest",
    "interest//person",  // empty-proof again, through the XPath planner
};

uint32_t NumPersons() {
  const char* env = std::getenv("LAZYXML_XMARK_PERSONS");
  return env != nullptr ? static_cast<uint32_t>(std::atoi(env)) : 4000;
}

struct Fixture {
  ChopPlan plan;
  std::string document;
  uint64_t splice_gp = 0;  ///< just inside the <site> root
  std::unique_ptr<LazyDatabase> with_summary;
  std::unique_ptr<LazyDatabase> without_summary;
};

std::unique_ptr<LazyDatabase> BuildWith(std::span<const SegmentInsertion> plan,
                                        bool use_summary) {
  LazyDatabaseOptions opts;
  opts.query.use_path_summary = use_summary;
  auto db = std::make_unique<LazyDatabase>(opts);
  LAZYXML_CHECK(db->ApplyPlan(plan).ok());
  db->Freeze();  // builds the summary when enabled; a no-op sort in LD
  LAZYXML_CHECK((db->path_summary() != nullptr) == use_summary);
  return db;
}

const Fixture& GetFixture() {
  static Fixture* f = [] {
    auto* fx = new Fixture();
    XMarkConfig cfg;
    cfg.num_persons = NumPersons();
    cfg.num_items = cfg.num_persons / 5;
    cfg.num_open_auctions = cfg.num_persons / 4;
    cfg.num_closed_auctions = cfg.num_persons / 8;
    cfg.profile_probability = 1.0;
    cfg.watches_probability = 1.0;
    auto doc = XMarkGenerator(cfg).Generate();
    LAZYXML_CHECK(doc.ok());
    fx->document = std::move(doc).ValueOrDie();
    ChopConfig chop;
    chop.num_segments = 100;
    chop.shape = ErTreeShape::kBalanced;
    auto plan = BuildChopPlan(fx->document, chop);
    LAZYXML_CHECK(plan.ok());
    fx->plan = std::move(plan).ValueOrDie();
    fx->splice_gp = fx->document.find('>') + 1;
    fx->with_summary = BuildWith(fx->plan.insertions, true);
    fx->without_summary = BuildWith(fx->plan.insertions, false);

    // Acceptance gate, checked before anything is timed: every join and
    // every twig must be byte-identical pruned vs unpruned, and the
    // empty-proof join must touch no tag list.
    for (const Query& q : kJoins) {
      auto pruned = fx->with_summary->JoinGlobal(q.anc, q.desc);
      auto full = fx->without_summary->JoinGlobal(q.anc, q.desc);
      LAZYXML_CHECK(pruned.ok() && full.ok());
      LAZYXML_CHECK(pruned.ValueOrDie() == full.ValueOrDie());
      if (q.provably_empty) {
        auto r = fx->with_summary->JoinByName(q.anc, q.desc);
        LAZYXML_CHECK(r.ok() && r.ValueOrDie().pairs.empty());
        LAZYXML_CHECK(r.ValueOrDie().stats.elements_fetched == 0);
      }
    }
    for (const char* expr : kTwigs) {
      auto pruned = EvaluateXPath(fx->with_summary.get(), expr);
      auto full = EvaluateXPath(fx->without_summary.get(), expr);
      LAZYXML_CHECK(pruned.ok() && full.ok());
      LAZYXML_CHECK(pruned.ValueOrDie().elements ==
                    full.ValueOrDie().elements);
    }
    std::fprintf(stderr,
                 "path-summary fixture: %zu bytes, %zu segments, summary "
                 "nodes=%zu bytes=%zu; pruned == unpruned for %zu joins + "
                 "%zu twigs; empty-proof join fetched 0 elements\n",
                 fx->document.size(), fx->plan.insertions.size(),
                 fx->with_summary->path_summary()->num_nodes(),
                 fx->with_summary->path_summary()->MemoryBytes(),
                 std::size(kJoins), std::size(kTwigs));
    return fx;
  }();
  return *f;
}

// -- Summary construction ----------------------------------------------------

void BM_SummaryBuild(benchmark::State& state) {
  const Fixture& f = GetFixture();
  const LazyDatabase& db = *f.with_summary;
  size_t nodes = 0;
  for (auto _ : state) {
    auto s = LazyDatabase::BuildPathSummary(db.update_log(),
                                            db.element_index());
    LAZYXML_CHECK(s.ok());
    nodes = s.ValueOrDie()->num_nodes();
    benchmark::DoNotOptimize(nodes);
  }
  state.counters["summary_nodes"] = static_cast<double>(nodes);
  state.counters["summary_bytes"] = static_cast<double>(
      f.with_summary->path_summary()->MemoryBytes());
  state.counters["elements"] = static_cast<double>(
      f.with_summary->path_summary()->total_count());
}

// -- Incremental maintenance overhead ----------------------------------------

/// Insert + remove a small subtree at the same splice point (net zero,
/// so state never grows): the per-update cost of a maintained summary
/// vs none. arg0: 0 = summary off, 1 = summary maintained.
void BM_UpdateMaintenance(benchmark::State& state) {
  const Fixture& f = GetFixture();
  LazyDatabase* db = state.range(0) == 1 ? f.with_summary.get()
                                         : f.without_summary.get();
  const std::string frag = "<person><phone>1</phone></person>";
  for (auto _ : state) {
    auto sid = db->InsertSegment(frag, f.splice_gp);
    LAZYXML_CHECK(sid.ok());
    LAZYXML_CHECK(db->RemoveSegment(f.splice_gp, frag.size()).ok());
  }
  // The maintained variant must still be fresh after the churn.
  LAZYXML_CHECK((db->path_summary() != nullptr) == (state.range(0) == 1));
  state.SetLabel(state.range(0) == 1 ? "summary_on" : "summary_off");
  state.counters["updates_per_s"] = benchmark::Counter(
      2.0, benchmark::Counter::kIsIterationInvariantRate);
}

// -- Structural joins, pruning on vs off -------------------------------------

/// arg0: query index into kJoins; arg1: 0 = pruning off, 1 = on.
void BM_Join(benchmark::State& state) {
  const Fixture& f = GetFixture();
  const Query& q = kJoins[state.range(0)];
  LazyDatabase* db = state.range(1) == 1 ? f.with_summary.get()
                                         : f.without_summary.get();
  LazyJoinResult last;
  for (auto _ : state) {
    auto r = db->JoinByName(q.anc, q.desc);
    LAZYXML_CHECK(r.ok());
    benchmark::DoNotOptimize(r.ValueOrDie().pairs.size());
    last = std::move(r).ValueOrDie();
  }
  state.SetLabel(std::string(q.id) + ":" + q.anc + "//" + q.desc +
                 (state.range(1) == 1 ? "/pruned" : "/full"));
  state.counters["pairs"] = static_cast<double>(last.pairs.size());
  state.counters["elements_fetched"] =
      static_cast<double>(last.stats.elements_fetched);
  state.counters["segments_pruned"] =
      static_cast<double>(last.stats.segments_pruned);
  state.counters["elements_skipped"] =
      static_cast<double>(last.stats.elements_skipped);
}

// -- XPath twigs through the planner -----------------------------------------

/// arg0: twig index into kTwigs; arg1: 0 = no summary, 1 = summary.
void BM_XPathTwig(benchmark::State& state) {
  const Fixture& f = GetFixture();
  const char* expr = kTwigs[state.range(0)];
  LazyDatabase* db = state.range(1) == 1 ? f.with_summary.get()
                                         : f.without_summary.get();
  XPathResult last;
  for (auto _ : state) {
    auto r = EvaluateXPath(db, expr);
    LAZYXML_CHECK(r.ok());
    benchmark::DoNotOptimize(r.ValueOrDie().elements.size());
    last = std::move(r).ValueOrDie();
  }
  state.SetLabel(std::string(expr) +
                 (state.range(1) == 1 ? " /pruned" : " /full"));
  state.counters["results"] = static_cast<double>(last.elements.size());
  state.counters["joins"] = static_cast<double>(last.joins_executed);
  state.counters["intermediate_pairs"] =
      static_cast<double>(last.intermediate_pairs);
  state.counters["summary_empty"] = last.summary_empty ? 1.0 : 0.0;
  state.counters["elements_skipped"] =
      static_cast<double>(last.elements_skipped);
}

BENCHMARK(BM_SummaryBuild)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_UpdateMaintenance)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Join)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_XPathTwig)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace pathsum
}  // namespace lazyxml

BENCHMARK_MAIN();
