// Parallel Lazy-Join executor: elapsed time of the Fig. 12 cross-join
// workload under the partitioned multi-threaded executor
// (core/parallel_join.h), sweeping worker threads {1,2,4,8} x shared
// element-scan cache {off, 8 MiB}. The workload is the balanced ER-tree
// at a larger scale than the figure (more segments and elements) so each
// partition carries real work. Pair counts are asserted identical to the
// serial executor on every sample — the executor's contract is
// byte-identical output, the threads only buy elapsed time.

#include <map>
#include <string_view>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace lazyxml {

// --quick (CI smoke mode, see .github/workflows/ci.yml): a workload an
// order of magnitude smaller, sized so the metrics-overhead check runs
// in seconds on a shared runner while each join still does real work.
bool g_quick = false;

namespace {

constexpr uint32_t kNumSegments = 400;
constexpr uint64_t kTotalJoins = 60000;
constexpr uint64_t kNumA = 200000;
constexpr uint64_t kNumD = 200000;
constexpr double kCrossFraction = 0.6;

JoinWorkloadConfig Config() {
  JoinWorkloadConfig cfg;
  cfg.num_segments = g_quick ? kNumSegments / 8 : kNumSegments;
  cfg.shape = ErTreeShape::kBalanced;
  cfg.total_joins = g_quick ? kTotalJoins / 20 : kTotalJoins;
  cfg.cross_fraction = kCrossFraction;
  cfg.num_a_elements = g_quick ? kNumA / 20 : kNumA;
  cfg.num_d_elements = g_quick ? kNumD / 20 : kNumD;
  return cfg;
}

// The database is expensive to build (hundreds of thousands of element
// inserts); all thread/cache configurations share one instance and only
// flip its query options.
LazyDatabase* SharedDatabase() {
  static LazyDatabase* db = [] {
    auto plan = BuildJoinWorkload(Config());
    LAZYXML_CHECK(plan.ok());
    return bench::BuildDatabase(plan.ValueOrDie().insertions,
                                LogMode::kLazyDynamic)
        .release();
  }();
  return db;
}

size_t SerialPairCount() {
  static const size_t pairs = [] {
    LazyDatabase* db = SharedDatabase();
    db->SetQueryOptions(QueryOptions{});  // 1 thread, no cache
    return bench::RunLazyQuery(db, "A", "D");
  }();
  return pairs;
}

void BM_ParallelJoin(benchmark::State& state) {
  LazyDatabase* db = SharedDatabase();
  const size_t serial_pairs = SerialPairCount();
  QueryOptions q;
  q.num_threads = static_cast<size_t>(state.range(0));
  q.cache_bytes = static_cast<size_t>(state.range(1)) << 20;
  db->SetQueryOptions(q);

  size_t pairs = 0;
  uint64_t partitions = 1;
  uint64_t cache_hits = 0;
  for (auto _ : state) {
    auto r = db->JoinByName("A", "D");
    LAZYXML_CHECK(r.ok());
    pairs = r.ValueOrDie().pairs.size();
    partitions = r.ValueOrDie().stats.partitions;
    cache_hits = r.ValueOrDie().stats.scan_cache_hits;
    benchmark::DoNotOptimize(pairs);
  }
  LAZYXML_CHECK(pairs == serial_pairs);  // byte-identical contract

  state.counters["threads"] = static_cast<double>(q.num_threads);
  state.counters["cache_mb"] = static_cast<double>(state.range(1));
  state.counters["partitions"] = static_cast<double>(partitions);
  state.counters["scan_cache_hits"] = static_cast<double>(cache_hits);
  state.counters["pairs"] = static_cast<double>(pairs);
  state.SetLabel(state.range(1) == 0 ? "nocache" : "cache");
}

BENCHMARK(BM_ParallelJoin)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 8}})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Cache-sizing curve on a scan-heavy join (seg//D touches every segment's
// D scan — a working set of several MB). Three regimes: no cache (reads
// the index each round, but streams through two hot reused buffers), a
// cache smaller than the working set (partial hits; admission sampling
// bounds the eviction churn but misses plus evictions still cost more
// than they save), and a cache that fits (pure hits, the win). The
// counters expose the regime: c_evict/c_reject > 0 means undersized.
void BM_ScanCacheSizing(benchmark::State& state) {
  LazyDatabase* db = SharedDatabase();
  QueryOptions q;
  q.num_threads = static_cast<size_t>(state.range(0));
  q.cache_bytes = static_cast<size_t>(state.range(1)) << 20;
  db->SetQueryOptions(q);
  size_t results = 0;
  LazyJoinStats last_stats;
  for (auto _ : state) {
    auto r = db->JoinByName("seg", "D");
    LAZYXML_CHECK(r.ok());
    results = r.ValueOrDie().pairs.size();
    last_stats = r.ValueOrDie().stats;
    benchmark::DoNotOptimize(results);
  }
  state.counters["fetched"] = static_cast<double>(last_stats.elements_fetched);
  state.counters["q_hits"] = static_cast<double>(last_stats.scan_cache_hits);
  state.counters["pairs"] = static_cast<double>(results);
  state.counters["threads"] = static_cast<double>(q.num_threads);
  state.counters["cache_mb"] = static_cast<double>(state.range(1));
  if (const ElementScanCache* c = db->scan_cache()) {
    const auto cs = c->Stats();
    state.counters["c_hits"] = static_cast<double>(cs.hits);
    state.counters["c_miss"] = static_cast<double>(cs.misses);
    state.counters["c_evict"] = static_cast<double>(cs.evictions);
    state.counters["c_reject"] = static_cast<double>(cs.admission_rejects);
    state.counters["c_bytes"] = static_cast<double>(cs.bytes_used);
    // Per-shard breakdown: heavy skew here means the key hash is
    // funnelling hot tags into one shard's lock and LRU budget.
    const auto per_shard = c->PerShardStats();
    for (size_t i = 0; i < per_shard.size(); ++i) {
      const std::string p = "s" + std::to_string(i) + "_";
      state.counters[p + "hits"] = static_cast<double>(per_shard[i].hits);
      state.counters[p + "miss"] = static_cast<double>(per_shard[i].misses);
      state.counters[p + "evict"] =
          static_cast<double>(per_shard[i].evictions);
      state.counters[p + "reject"] =
          static_cast<double>(per_shard[i].admission_rejects);
    }
  }
  state.SetLabel(state.range(1) == 0 ? "nocache" : "cache");
}

BENCHMARK(BM_ScanCacheSizing)
    ->ArgsProduct({{1, 4}, {0, 8, 32}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Metrics-registry overhead: the same serial, uncached join with the
// process-wide registry enabled (the default) vs disabled. The join path
// writes a handful of instruments per query — the two labels must agree
// within run-to-run noise, which CI's metrics-overhead smoke asserts
// with a generous bound (see docs/OBSERVABILITY.md "Overhead").
void BM_SerialJoinObs(benchmark::State& state) {
  LazyDatabase* db = SharedDatabase();
  const size_t serial_pairs = SerialPairCount();
  const bool obs_on = state.range(0) != 0;
  obs::MetricsRegistry::Global().SetEnabled(obs_on);
  db->SetQueryOptions(QueryOptions{});  // 1 thread, no cache
  size_t pairs = 0;
  for (auto _ : state) {
    pairs = bench::RunLazyQuery(db, "A", "D");
    benchmark::DoNotOptimize(pairs);
  }
  obs::MetricsRegistry::Global().SetEnabled(true);
  LAZYXML_CHECK(pairs == serial_pairs);
  state.counters["pairs"] = static_cast<double>(pairs);
  state.SetLabel(obs_on ? "obs_on" : "obs_off");
}

BENCHMARK(BM_SerialJoinObs)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace lazyxml

// Custom main: google-benchmark rejects flags it does not know, so the
// CI smoke mode's --quick is stripped (and applied) before Initialize.
int main(int argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") {
      lazyxml::g_quick = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
